(* Command-line interface: generate a synthetic document database, pose
   VQL queries interactively or one-shot, and inspect what the semantic
   optimizer does — the closest thing to the paper's interactive VQL
   mode with the tracing demonstrator (Section 7). *)

open Cmdliner
open Soqm_core

let docs_arg =
  let doc = "Number of documents in the synthetic database." in
  Arg.(value & opt int 40 & info [ "docs" ] ~docv:"N" ~doc)

let hit_arg =
  let doc = "Probability that a paragraph contains the query word." in
  Arg.(value & opt float 0.05 & info [ "hit-probability" ] ~docv:"P" ~doc)

let seed_arg =
  let doc = "Random seed of the data generator." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for query execution: 1 (default) is the serial block \
     executor, N >= 2 the morsel-driven parallel executor (same results, \
     same row order)."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let pool_pages_arg =
  let doc =
    "Buffer-pool capacity in 4 KiB page frames for the paged disk store \
     (default 256)."
  in
  Arg.(value & opt (some int) None & info [ "pool-pages" ] ~docv:"N" ~doc)

let make_db ?(jobs = 1) docs hit_probability seed =
  Db.create
    ~params:{ Datagen.default with n_docs = docs; hit_probability; seed }
    ~jobs ()

let classes_conv =
  let parse s =
    match
      List.find_opt
        (fun c -> String.equal (Doc_knowledge.class_name c) s)
        Doc_knowledge.all_classes
    with
    | Some c -> Ok c
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown knowledge class %S (expected one of %s)" s
              (String.concat ", "
                 (List.map Doc_knowledge.class_name Doc_knowledge.all_classes))))
  in
  Arg.conv (parse, fun ppf c -> Format.pp_print_string ppf (Doc_knowledge.class_name c))

let disable_arg =
  let doc =
    "Disable a knowledge class (repeatable): path-methods, \
     index-equivalences, inverse-links, query-method-equivs, implications."
  in
  Arg.(value & opt_all classes_conv [] & info [ "disable" ] ~docv:"CLASS" ~doc)

let trace_arg =
  let doc = "Print the full optimization trace (the Section 7 demonstrator)." in
  Arg.(value & flag & info [ "trace" ] ~doc)

let saturate_arg =
  let doc =
    "Saturate the knowledge base: close the declared specifications under \
     derivation (transitivity, composition, substitution) and compile the \
     derived rewrites into the rule set too."
  in
  Arg.(value & flag & info [ "saturate" ] ~doc)

let naive_arg =
  let doc = "Also run the query without optimization and compare costs." in
  Arg.(value & flag & info [ "naive" ] ~doc)

let dot_arg =
  let doc =
    "Write the optimization derivation as a Graphviz graph to $(docv) \
     (render with dot -Tsvg)."
  in
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc)

let query_arg =
  let doc = "The VQL query to run." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc)

let print_report label (r : Engine.report) =
  Printf.printf "%s: %d tuple(s), logical cost %.1f, %.1f ms\n" label
    (Soqm_algebra.Relation.cardinality r.Engine.result)
    (Soqm_vml.Counters.total_cost r.Engine.counters)
    (r.Engine.elapsed_s *. 1000.)

(* Every subcommand that opens a paged database directory funnels its
   failure modes through this: a one-line diagnostic and a non-zero
   exit, never a backtrace. *)
let store_errors f =
  try f () with
  | Soqm_disk.Store.Format_error msg -> `Error (false, "bad database: " ^ msg)
  | Soqm_disk.Store.Locked msg -> `Error (false, msg)
  | Soqm_disk.Codec.Corrupt msg -> `Error (false, "corrupt database: " ^ msg)
  | Sys_error msg -> `Error (false, msg)
  | Unix.Unix_error (e, fn, arg) ->
    `Error
      ( false,
        Printf.sprintf "%s: %s (%s)" (if arg = "" then fn else arg)
          (Unix.error_message e) fn )

let run_cmd =
  let run query docs hit seed jobs disabled saturate trace naive dot =
    try
      let db = make_db ~jobs docs hit seed in
      let classes =
        List.filter (fun c -> not (List.mem c disabled)) Doc_knowledge.all_classes
      in
      let engine = Engine.generate ~classes ~saturate db in
      let opt = Engine.run_optimized engine query in
      (match opt.Engine.opt with
      | Some o when trace ->
        Format.printf "%a@."
          (Soqm_optimizer.Trace.pp_result
             ~provenance:(Engine.provenance engine))
          o
      | Some o -> Format.printf "%a@." Soqm_optimizer.Trace.pp_summary o
      | None -> ());
      (match opt.Engine.opt, dot with
      | Some o, Some path ->
        let oc = open_out path in
        output_string oc (Soqm_optimizer.Dot.of_derivation o);
        close_out oc;
        Printf.printf "derivation graph written to %s\n" path
      | _ -> ());
      Format.printf "%a@." Soqm_algebra.Relation.pp opt.Engine.result;
      print_report "optimized" opt;
      if naive then (
        let nv = Engine.run_naive db query in
        print_report "naive" nv;
        if not (Soqm_algebra.Relation.equal nv.Engine.result opt.Engine.result) then (
          prerr_endline "ERROR: naive and optimized results differ!";
          exit 2));
      `Ok ()
    with
    | Soqm_vql.Parser.Error msg -> `Error (false, "parse error: " ^ msg)
    | Soqm_vql.Typecheck.Error msg -> `Error (false, "type error: " ^ msg)
    | Soqm_algebra.Eval.Error msg | Soqm_physical.Exec.Error msg ->
      `Error (false, "execution error: " ^ msg)
  in
  let doc = "Run a VQL query against a synthetic document database." in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(
      ret
        (const run $ query_arg $ docs_arg $ hit_arg $ seed_arg $ jobs_arg
       $ disable_arg $ saturate_arg $ trace_arg $ naive_arg $ dot_arg))

(* ------------------------------------------------------------------ *)
(* explain: the slot-compiled operator tree                            *)
(* ------------------------------------------------------------------ *)

let explain_cmd =
  let analyze_arg =
    let doc =
      "Also execute the plan and annotate every operator with the actual \
       rows and blocks it emitted (from the executor's per-node counters)."
    in
    Arg.(value & flag & info [ "analyze" ] ~doc)
  in
  let db_dir_arg =
    let doc =
      "Explain against this paged database directory instead of a fresh \
       synthetic database; with $(b,--analyze), full-scan operators then \
       also report the disk pages they touched ($(b,pages=))."
    in
    Arg.(value & opt (some string) None & info [ "db" ] ~docv:"DIR" ~doc)
  in
  let explain query docs hit seed jobs disabled analyze db_dir pool_pages =
    store_errors @@ fun () ->
    try
      let db =
        match db_dir with
        | Some dir -> Db.open_disk ~jobs ?pool_pages dir
        | None -> make_db ~jobs docs hit seed
      in
      let classes =
        List.filter (fun c -> not (List.mem c disabled)) Doc_knowledge.all_classes
      in
      let engine = Engine.generate ~classes db in
      let logical = Engine.logical_of_query db query in
      match Engine.safe_to_optimize db logical with
      | Error msg -> `Error (false, "cannot optimize: " ^ msg)
      | Ok () ->
        let opt, compiled = Engine.optimize_compiled engine logical in
        let actuals =
          if analyze then begin
            let ns = Soqm_physical.Exec.make_stats compiled in
            ignore
              (Soqm_physical.Exec.run_compiled ~stats:ns ~jobs
                 (Engine.exec_ctx db) compiled);
            Some ns
          end
          else None
        in
        let annot (c : Soqm_physical.Plan.compiled) =
          let e = Soqm_physical.Cost.estimate db.Db.stats c.Soqm_physical.Plan.source in
          let fused =
            match Soqm_physical.Plan.fused_count c with
            | 0 -> ""
            | n -> Printf.sprintf " fused=%d" n
          in
          let est =
            Printf.sprintf "width=%d est_rows=%.0f%s"
              (Soqm_algebra.Relation.Layout.width c.Soqm_physical.Plan.layout)
              e.Soqm_physical.Cost.card fused
          in
          match actuals with
          | Some ns ->
            let cid = c.Soqm_physical.Plan.cid in
            let parallel =
              if jobs > 1 then
                Printf.sprintf " morsels=%d parts=%d"
                  ns.Soqm_physical.Exec.node_morsels.(cid)
                  ns.Soqm_physical.Exec.node_partitions.(cid)
              else ""
            in
            let pages =
              if db.Db.disk <> None then
                Printf.sprintf " pages=%d bytes=%d"
                  ns.Soqm_physical.Exec.node_pages.(cid)
                  ns.Soqm_physical.Exec.node_bytes.(cid)
              else ""
            in
            Printf.sprintf "(%s actual_rows=%d blocks=%d%s%s)" est
              ns.Soqm_physical.Exec.node_rows.(cid)
              ns.Soqm_physical.Exec.node_blocks.(cid)
              parallel pages
          | None -> Printf.sprintf "(%s)" est
        in
        Printf.printf
          "plan: estimated cost %.1f, %d variant(s) explored, %d operator(s), \
           block size %d\n"
          opt.Soqm_optimizer.Search.best_cost
          opt.Soqm_optimizer.Search.variants_explored
          (Soqm_physical.Plan.node_count compiled)
          Soqm_physical.Exec.block_size;
        print_endline (Soqm_physical.Plan.compiled_to_string ~annot compiled);
        Db.close db;
        `Ok ()
    with
    | Soqm_vql.Parser.Error msg -> `Error (false, "parse error: " ^ msg)
    | Soqm_vql.Typecheck.Error msg -> `Error (false, "type error: " ^ msg)
    | Soqm_disk.Store.Format_error msg -> `Error (false, "bad database: " ^ msg)
    | Soqm_physical.Plan.Compile_error msg ->
      `Error (false, "compile error: " ^ msg)
    | Soqm_algebra.Eval.Error msg | Soqm_physical.Exec.Error msg ->
      `Error (false, "execution error: " ^ msg)
  in
  let doc =
    "Print the optimized query's slot-compiled operator tree: per operator \
     its output layout, layout width, estimated rows (from the collected \
     statistics) and the number of steps fused into one-pass kernels \
     ($(b,fused=)); with $(b,--analyze), also the actual rows and blocks \
     observed by executing the plan (plus per-node morsel and partition \
     counts when $(b,--jobs) is at least 2, and disk pages touched / bytes \
     decoded when run against a paged database, $(b,--db))."
  in
  Cmd.v
    (Cmd.info "explain" ~doc)
    Term.(
      ret
        (const explain $ query_arg $ docs_arg $ hit_arg $ seed_arg $ jobs_arg
       $ disable_arg $ analyze_arg $ db_dir_arg $ pool_pages_arg))

let schema_cmd =
  let show () =
    Format.printf "%a@." Soqm_vml.Schema.pp Doc_schema.schema;
    Printf.printf "schema-specific knowledge:\n";
    List.iter
      (fun spec -> Format.printf "  %a@." Soqm_semantics.Equivalence.pp spec)
      (Doc_knowledge.specs ())
  in
  let doc = "Print the document schema and its method knowledge." in
  Cmd.v (Cmd.info "schema" ~doc) Term.(const show $ const ())

let repl_cmd =
  let repl docs hit seed jobs disabled saturate trace =
    let db = make_db ~jobs docs hit seed in
    let classes =
      List.filter (fun c -> not (List.mem c disabled)) Doc_knowledge.all_classes
    in
    let engine = Engine.generate ~classes ~saturate db in
    Printf.printf
      "soqm interactive VQL (document schema, %d documents, %d rules)\n\
       type a query, or :schema / :quit\n"
      docs (Engine.rule_count engine);
    let rec loop () =
      print_string "vql> ";
      match read_line () with
      | exception End_of_file -> print_newline ()
      | ":quit" | ":q" -> ()
      | ":schema" ->
        Format.printf "%a@." Soqm_vml.Schema.pp Doc_schema.schema;
        loop ()
      | "" -> loop ()
      | query ->
        (try
           let opt = Engine.run_optimized engine query in
           (match opt.Engine.opt with
           | Some o when trace ->
             Format.printf "%a@."
               (Soqm_optimizer.Trace.pp_result
                  ~provenance:(Engine.provenance engine))
               o
           | Some o -> Format.printf "%a@." Soqm_optimizer.Trace.pp_summary o
           | None -> ());
           Format.printf "%a@." Soqm_algebra.Relation.pp opt.Engine.result;
           print_report "optimized" opt
         with
        | Soqm_vql.Parser.Error msg -> Printf.printf "parse error: %s\n" msg
        | Soqm_vql.Typecheck.Error msg -> Printf.printf "type error: %s\n" msg
        | Soqm_algebra.Eval.Error msg | Soqm_physical.Exec.Error msg ->
          Printf.printf "execution error: %s\n" msg);
        loop ()
    in
    loop ()
  in
  let doc = "Interactive VQL session (the paper's interactive mode)." in
  Cmd.v
    (Cmd.info "repl" ~doc)
    Term.(
      const repl $ docs_arg $ hit_arg $ seed_arg $ jobs_arg $ disable_arg
      $ saturate_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* DML: insert / update / delete on a saved database dump              *)
(* ------------------------------------------------------------------ *)

let db_file_arg =
  let doc =
    "Paged database directory to operate on (create one with $(b,save) \
     below or [Db.save]); changes are WAL-logged and checkpointed on \
     close."
  in
  Arg.(required & opt (some string) None & info [ "db" ] ~docv:"DIR" ~doc)

(* value literals: null, true/false, integers, '@Cls#id' object
   references, everything else a string *)
let parse_value s =
  match s with
  | "null" -> Soqm_vml.Value.Null
  | "true" -> Soqm_vml.Value.Bool true
  | "false" -> Soqm_vml.Value.Bool false
  | _ -> (
    match int_of_string_opt s with
    | Some n -> Soqm_vml.Value.Int n
    | None ->
      if String.length s > 1 && s.[0] = '@' then
        match
          String.split_on_char '#' (String.sub s 1 (String.length s - 1))
        with
        | [ cls; id ] when int_of_string_opt id <> None ->
          Soqm_vml.Value.Obj
            (Soqm_vml.Oid.make ~cls ~id:(int_of_string id))
        | _ -> Soqm_vml.Value.Str s
      else Soqm_vml.Value.Str s)

let parse_oid s =
  match String.split_on_char '#' s with
  | [ cls; id ] when int_of_string_opt id <> None ->
    Ok (Soqm_vml.Oid.make ~cls ~id:(int_of_string id))
  | _ -> Error (`Msg (Printf.sprintf "expected CLASS#ID, got %S" s))

let oid_conv =
  Arg.conv
    ( parse_oid,
      fun ppf o -> Format.pp_print_string ppf (Soqm_vml.Oid.to_string o) )

let prop_assign_conv =
  let parse s =
    match String.index_opt s '=' with
    | Some i ->
      Ok
        ( String.sub s 0 i,
          parse_value (String.sub s (i + 1) (String.length s - i - 1)) )
    | None -> Error (`Msg (Printf.sprintf "expected PROP=VALUE, got %S" s))
  in
  Arg.conv
    (parse, fun ppf (p, _) -> Format.pp_print_string ppf (p ^ "=..."))

(* Open the database directory attached (every DML event is WAL-logged
   before the maintenance observers run), run one maintained DML action
   through the engine, checkpoint on close, and report what maintenance
   did. *)
let with_dml_engine ?pool_pages file f =
  store_errors @@ fun () ->
  try
    let db = Db.open_disk ?pool_pages file in
    let engine = Engine.generate db in
    let c = Db.counters db in
    Soqm_vml.Counters.reset_maintenance c;
    f db engine;
    Db.close db;
    Format.printf "%a@." Soqm_vml.Counters.pp_maintenance
      (Soqm_vml.Counters.snapshot c);
    (match Db.maintenance db with
    | Some m ->
      Printf.printf "epoch %d, staleness %.3f\n"
        (Soqm_maintenance.Maintenance.epoch m)
        (Soqm_maintenance.Maintenance.staleness m)
    | None -> ());
    `Ok ()
  with
  | Soqm_disk.Store.Format_error msg -> `Error (false, "bad database: " ^ msg)
  | Failure msg | Sys_error msg | Invalid_argument msg -> `Error (false, msg)
  | Not_found -> `Error (false, "no such object")
  | Soqm_vml.Runtime.Error msg -> `Error (false, "runtime error: " ^ msg)

let insert_cmd =
  let cls_arg =
    let doc = "Class of the new object." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"CLASS" ~doc)
  in
  let props_arg =
    let doc =
      "Initial property values, e.g. word_count=750 content='...' \
       section=@Section#3."
    in
    Arg.(value & pos_right 0 prop_assign_conv [] & info [] ~docv:"PROP=VALUE" ~doc)
  in
  let run file cls props =
    with_dml_engine file (fun _db engine ->
        let oid = Engine.insert engine ~cls props in
        Printf.printf "inserted %s\n" (Soqm_vml.Oid.to_string oid))
  in
  let doc =
    "Insert an object; indexes, implication sets, inverse links and \
     statistics are maintained incrementally."
  in
  Cmd.v (Cmd.info "insert" ~doc)
    Term.(ret (const run $ db_file_arg $ cls_arg $ props_arg))

let update_cmd =
  let oid_arg =
    let doc = "Object to update, as CLASS#ID." in
    Arg.(required & pos 0 (some oid_conv) None & info [] ~docv:"OID" ~doc)
  in
  let assign_arg =
    let doc = "Property assignments, e.g. word_count=750." in
    Arg.(non_empty & pos_right 0 prop_assign_conv [] & info [] ~docv:"PROP=VALUE" ~doc)
  in
  let run file oid assigns =
    with_dml_engine file (fun _db engine ->
        List.iter (fun (prop, v) -> Engine.update engine oid ~prop v) assigns;
        Printf.printf "updated %s (%d propert%s)\n"
          (Soqm_vml.Oid.to_string oid) (List.length assigns)
          (if List.length assigns = 1 then "y" else "ies"))
  in
  let doc = "Update properties of an object (incrementally maintained)." in
  Cmd.v (Cmd.info "update" ~doc)
    Term.(ret (const run $ db_file_arg $ oid_arg $ assign_arg))

let delete_cmd =
  let oid_arg =
    let doc = "Object to delete, as CLASS#ID." in
    Arg.(required & pos 0 (some oid_conv) None & info [] ~docv:"OID" ~doc)
  in
  let run file oid =
    with_dml_engine file (fun _db engine ->
        Engine.delete engine oid;
        Printf.printf "deleted %s\n" (Soqm_vml.Oid.to_string oid))
  in
  let doc = "Delete an object (incrementally maintained)." in
  Cmd.v (Cmd.info "delete" ~doc)
    Term.(ret (const run $ db_file_arg $ oid_arg))

let save_cmd =
  let out_arg =
    let doc =
      "Database directory to write (one slotted-page heap segment per \
       class, a meta file and an empty WAL)."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc)
  in
  let run docs hit seed out =
    let db = make_db docs hit seed in
    Db.save db out;
    Printf.printf "wrote %s (%d documents, %d paragraphs)\n" out docs
      (Soqm_vml.Object_store.extent_size db.Db.store "Paragraph");
    `Ok ()
  in
  let doc =
    "Generate a synthetic database and save it as a paged database \
     directory for the $(b,open) / DML commands."
  in
  Cmd.v (Cmd.info "save" ~doc)
    Term.(ret (const run $ docs_arg $ hit_arg $ seed_arg $ out_arg))

(* ------------------------------------------------------------------ *)
(* open / checkpoint: the paged disk store                             *)
(* ------------------------------------------------------------------ *)

let dir_pos_arg =
  let doc = "The paged database directory." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc)

(* Anything wrong with the directory — missing, foreign, corrupt, locked
   by another process, unreadable — is reported as a one-line diagnostic
   with a non-zero exit, never a backtrace. *)
let open_cmd =
  let run dir pool_pages =
    store_errors @@ fun () ->
      let d = Soqm_disk.Store.open_dir ?pool_pages dir in
      let schema = Soqm_disk.Store.schema d in
      Printf.printf
        "opened %s: format ok, %d recovered WAL batch(es), %d WAL byte(s) \
         pending, pool %d page(s)\n"
        dir
        (Soqm_disk.Store.recovered_batches d)
        (Soqm_disk.Store.wal_bytes d)
        (Soqm_disk.Store.pool_pages d);
      List.iter
        (fun name ->
          let chains = Soqm_disk.Store.overflow_chains d name in
          Printf.printf "  %-12s %6d object(s) in %4d page(s)%s%s%s\n" name
            (List.length (Soqm_disk.Store.extent d name))
            (Soqm_disk.Store.data_pages d name)
            (match Soqm_disk.Store.clustering_parent d name with
            | Some p -> Printf.sprintf ", clusters by %s" p
            | None -> "")
            (if chains > 0 then Printf.sprintf ", %d overflow chain(s)" chains
             else "")
            (if Soqm_disk.Store.is_columnar d name then ", columnar" else ""))
        (Soqm_vml.Schema.class_names schema);
      Printf.printf "  next OID serial %d, %d data page(s) total\n"
        (Soqm_disk.Store.next_id d)
        (Soqm_disk.Store.total_data_pages d);
      (* cold-start profile: a derived image whose stamp matches the
         checkpoint sequence makes the next [Db.load] O(dirty) — it
         skips the index rebuild and replays only the WAL tail *)
      Printf.printf "  checkpoint seq %d, derived image %s\n"
        (Soqm_disk.Store.checkpoint_seq d)
        (match Soqm_maintenance.Persist.read ~dir with
        | Some img when img.Soqm_maintenance.Persist.seq
                        = Soqm_disk.Store.checkpoint_seq d ->
          "fresh (next open skips the index rebuild)"
        | Some img ->
          Printf.sprintf "stale (stamp %d; next open rebuilds indexes)"
            img.Soqm_maintenance.Persist.seq
        | None -> "absent (next open rebuilds indexes)");
      Soqm_disk.Store.close ~checkpoint:false d;
      `Ok ()
  in
  let doc =
    "Open a paged database directory (running WAL crash recovery if \
     needed) and print its layout: per-class object and page counts, \
     recovered batches, pending WAL bytes.  Read-only apart from the \
     recovery truncation."
  in
  Cmd.v (Cmd.info "open" ~doc)
    Term.(ret (const run $ dir_pos_arg $ pool_pages_arg))

let checkpoint_cmd =
  let run dir pool_pages =
    store_errors @@ fun () ->
      (* checkpoint through the Db layer: Db.checkpoint rewrites the
         derived image against the new meta sequence, so the next open
         keeps the fast path — a Store-level checkpoint would leave the
         image stale and force a full index rebuild *)
      let db = Db.open_disk ?pool_pages dir in
      let d = Option.get db.Db.disk in
      let pending = Soqm_disk.Store.wal_bytes d in
      let recovered = Soqm_disk.Store.recovered_batches d in
      Db.checkpoint db;
      let written =
        Soqm_vml.Counters.pages_written (Soqm_disk.Store.counters d)
      in
      Db.close db;
      Printf.printf
        "checkpointed %s: %d WAL batch(es) replayed, %d WAL byte(s) \
         truncated, %d page write(s)\n"
        dir recovered pending written;
      `Ok ()
  in
  let doc =
    "Replay any committed WAL batches into the heap segments, flush and \
     fsync every dirty page, and truncate the WAL — after this the \
     database directory is clean (recovery on the next open is a no-op)."
  in
  Cmd.v (Cmd.info "checkpoint" ~doc)
    Term.(ret (const run $ dir_pos_arg $ pool_pages_arg))

let vacuum_cmd =
  let cls_arg =
    let doc =
      "Class to vacuum (repeatable); without it, every schema class is \
       vacuumed."
    in
    Arg.(value & opt_all string [] & info [ "class" ] ~docv:"CLASS" ~doc)
  in
  let cluster_arg =
    let doc =
      "Re-cluster instead of going columnar: repack the class's rows in \
       parent-child traversal order (heap pages, or chunk boundaries for \
       an already-columnar class), so path queries touch the fewest \
       pages.  The heap representation is kept."
    in
    Arg.(value & flag & info [ "cluster" ] ~doc)
  in
  let run dir pool_pages classes cluster =
    store_errors @@ fun () ->
      (* vacuum through the Db layer: each class's vacuum ends in a
         checkpoint, and Db.vacuum rewrites the derived image to match
         the new stamp — a Store-level vacuum would leave the image
         stale and the next open would rebuild its indexes for nothing *)
      let db = Db.open_disk ?pool_pages dir in
      let d = Option.get db.Db.disk in
      let schema = Soqm_disk.Store.schema d in
      let classes =
        match classes with
        | [] -> Soqm_vml.Schema.class_names schema
        | cs -> cs
      in
      List.iter
        (fun cls ->
          let heap_bytes =
            Soqm_disk.Store.data_pages d cls * Soqm_disk.Page.size
          in
          if cluster then begin
            let rows = Db.vacuum ~mode:`Cluster db cls in
            Printf.printf
              "clustered %-12s %6d row(s): %7d heap byte(s) -> %4d page(s) \
               in %s-major order\n"
              cls rows heap_bytes
              (Soqm_disk.Store.data_pages d cls)
              (Option.value ~default:"allocation"
                 (Soqm_disk.Store.clustering_parent d cls))
          end
          else begin
            let rows = Db.vacuum db cls in
            Printf.printf
              "vacuumed %-12s %6d row(s): %7d heap byte(s) -> %7d columnar \
               byte(s)\n"
              cls rows heap_bytes
              (Soqm_disk.Store.columnar_bytes d cls)
          end)
        classes;
      Db.close db;
      `Ok ()
  in
  let doc =
    "Rewrite classes of a paged database.  Default: columnar segments — \
     dictionary-encoded column chunks replace the slotted heap pages, \
     the heap is emptied (subsequent DML lands there and shadows the \
     columnar rows until the next vacuum), and scans decode only the \
     columns they need.  With $(b,--cluster): repack in parent-child \
     traversal order instead, keeping the heap representation.  Ends \
     with a full checkpoint."
  in
  Cmd.v (Cmd.info "vacuum" ~doc)
    Term.(
      ret (const run $ dir_pos_arg $ pool_pages_arg $ cls_arg $ cluster_arg))

(* ------------------------------------------------------------------ *)
(* stats: mixed read/write workload + maintenance report               *)
(* ------------------------------------------------------------------ *)

let stats_cmd =
  let rounds_arg =
    let doc = "Number of query/update rounds of the mixed workload." in
    Arg.(value & opt int 5 & info [ "rounds" ] ~docv:"N" ~doc)
  in
  let db_dir_arg =
    let doc =
      "Run against this paged database directory instead of a fresh \
       synthetic database; prints the storage counters (page reads/writes, \
       pool hits/evictions, WAL records/commits) of the workload."
    in
    Arg.(value & opt (some string) None & info [ "db" ] ~docv:"DIR" ~doc)
  in
  let json_arg =
    let doc =
      "Emit the counters as a single JSON object on stdout instead of the \
       human-readable report."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run docs hit seed jobs rounds db_dir pool_pages saturate json =
    store_errors @@ fun () ->
    let db =
      match db_dir with
      | Some dir -> Db.open_disk ~jobs ?pool_pages dir
      | None -> make_db ~jobs docs hit seed
    in
    let c = Db.counters db in
    Soqm_vml.Counters.reset_knowledge c;
    let engine = Engine.generate ~saturate db in
    Soqm_vml.Counters.reset_maintenance c;
    let queries =
      [
        "ACCESS p FROM p IN Paragraph WHERE \
         p->contains_string('Implementation') AND (p->document()).title == \
         'Query Optimization'";
        "ACCESS d FROM d IN Document WHERE d.title == 'Query Optimization'";
        "ACCESS p FROM p IN Paragraph WHERE p->wordCount() > 500";
      ]
    in
    let paras =
      Soqm_vml.Object_store.extent db.Db.store "Paragraph" |> Array.of_list
    in
    for round = 1 to rounds do
      List.iter (fun q -> ignore (Engine.run_optimized engine q)) queries;
      (* touch a handful of paragraphs per round: flip word counts across
         the 500 boundary and rewrite content words *)
      Array.iteri
        (fun i oid ->
          if i mod rounds = round - 1 && i mod 17 = 0 then (
            let wc =
              match
                Soqm_vml.Object_store.peek_prop db.Db.store oid "word_count"
              with
              | Soqm_vml.Value.Int n when n > 500 -> 100 + i
              | _ -> 600 + i
            in
            Engine.update engine oid ~prop:"word_count"
              (Soqm_vml.Value.Int wc);
            Engine.update engine oid ~prop:"content"
              (Soqm_vml.Value.Str (Printf.sprintf "revised draft %d" i))))
        paras
    done;
    let hits, misses = Engine.cache_stats engine in
    let s = Soqm_vml.Counters.snapshot c in
    if json then begin
      let module C = Soqm_vml.Counters in
      let buf = Buffer.create 512 in
      let first = ref true in
      let field k v =
        if not !first then Buffer.add_string buf ", ";
        first := false;
        Buffer.add_string buf (Printf.sprintf "%S: %s" k v)
      in
      let int k v = field k (string_of_int v) in
      int "postings_touched" (C.postings_touched s);
      int "implication_updates" (C.implication_updates s);
      int "stats_deltas" (C.stats_deltas s);
      int "plan_cache_hits" hits;
      int "plan_cache_misses" misses;
      int "plans_cached" (Engine.cache_size engine);
      (match Db.maintenance db with
      | Some m ->
        int "maintenance_epoch" (Soqm_maintenance.Maintenance.epoch m);
        field "staleness"
          (Printf.sprintf "%.6f" (Soqm_maintenance.Maintenance.staleness m));
        int "recollects" (Soqm_maintenance.Maintenance.recollects m)
      | None -> ());
      (match db.Db.disk with
      | Some d ->
        int "pages_read" (C.pages_read s);
        int "pages_written" (C.pages_written s);
        int "pool_hits" (C.pool_hits s);
        int "pool_evictions" (C.pool_evictions s);
        int "wal_records" (C.wal_records s);
        int "wal_commits" (C.wal_commits s);
        int "wal_fsyncs" (C.wal_fsyncs s);
        int "bytes_read" (C.bytes_read s);
        int "values_decoded" (C.values_decoded s);
        let columnar = Soqm_disk.Store.columnar_classes d in
        field "columnar_classes"
          (Printf.sprintf "[%s]"
             (String.concat ", "
                (List.map (Printf.sprintf "%S") columnar)));
        int "columnar_rows"
          (List.fold_left
             (fun acc cls -> acc + Soqm_disk.Store.columnar_rows d cls)
             0 columnar);
        int "columnar_tombstones"
          (List.fold_left
             (fun acc cls -> acc + Soqm_disk.Store.columnar_tombstones d cls)
             0 columnar)
      | None -> ());
      int "txn_begins" (C.txn_begins s);
      int "txn_commits" (C.txn_commits s);
      int "txn_conflicts" (C.txn_conflicts s);
      int "txn_aborts" (C.txn_aborts s);
      int "rules_derived" (C.rules_derived s);
      int "rules_subsumed" (C.rules_subsumed s);
      int "models_checked" (C.models_checked s);
      int "counterexamples_found" (C.counterexamples_found s);
      Printf.printf "{%s}\n" (Buffer.contents buf)
    end
    else begin
      Format.printf "%a@." Soqm_vml.Counters.pp_maintenance s;
      if saturate then Format.printf "%a@." Soqm_vml.Counters.pp_knowledge s;
      Printf.printf
        "plan cache: %d hit(s), %d miss(es), %.1f%% hit rate, %d cached\n" hits
        misses
        (100. *. float_of_int hits /. float_of_int (max 1 (hits + misses)))
        (Engine.cache_size engine);
      (match Db.maintenance db with
      | Some m ->
        Printf.printf
          "maintenance: epoch %d, staleness %.3f, %d recollect(s)\n"
          (Soqm_maintenance.Maintenance.epoch m)
          (Soqm_maintenance.Maintenance.staleness m)
          (Soqm_maintenance.Maintenance.recollects m)
      | None -> ());
      if db.Db.disk <> None then
        Format.printf "%a@." Soqm_vml.Counters.pp_storage s
    end;
    Db.close db;
    `Ok ()
  in
  let doc =
    "Run a mixed read/write workload and print the maintenance counters: \
     index postings touched, implication-set updates, statistics deltas, \
     plan-cache hits/misses — plus the storage counters when run against \
     a paged database directory ($(b,--db))."
  in
  Cmd.v (Cmd.info "stats" ~doc)
    Term.(
      ret
        (const run $ docs_arg $ hit_arg $ seed_arg $ jobs_arg $ rounds_arg
       $ db_dir_arg $ pool_pages_arg $ saturate_arg $ json_arg))

(* ------------------------------------------------------------------ *)
(* serve: the concurrent TCP serving subsystem                         *)
(* ------------------------------------------------------------------ *)

let serve_cmd =
  let port_arg =
    let doc = "TCP port to listen on (0 picks an ephemeral port)." in
    Arg.(value & opt int 0 & info [ "port"; "p" ] ~docv:"PORT" ~doc)
  in
  let sessions_arg =
    let doc = "Number of concurrent client sessions served." in
    Arg.(value & opt int 4 & info [ "sessions" ] ~docv:"N" ~doc)
  in
  let window_arg =
    let doc =
      "Group-commit coalescing window in milliseconds: how long a commit \
       leader waits for followers before the shared fsync."
    in
    Arg.(value & opt float 2.0 & info [ "group-window" ] ~docv:"MS" ~doc)
  in
  let db_dir_arg =
    let doc =
      "Serve this paged database directory (durable commits through the \
       WAL) instead of a fresh synthetic database."
    in
    Arg.(value & opt (some string) None & info [ "db" ] ~docv:"DIR" ~doc)
  in
  let run docs hit seed port sessions window db_dir pool_pages =
    store_errors @@ fun () ->
      let db =
        match db_dir with
        | Some dir -> Db.open_disk ~jobs:1 ?pool_pages dir
        | None -> make_db ~jobs:1 docs hit seed
      in
      let server =
        Soqm_server.Server.create ~port ~sessions
          ~group_window:(window /. 1000.) db
      in
      Printf.printf "soqm: serving %s on 127.0.0.1:%d (%d session(s))\n%!"
        (match db_dir with Some d -> d | None -> "a synthetic database")
        (Soqm_server.Server.port server)
        sessions;
      let stop _ = Soqm_server.Server.stop server in
      Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
      Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
      Soqm_server.Server.serve server;
      Printf.printf "soqm: served %d connection(s), shutting down\n"
        (Soqm_server.Server.connections_served server);
      Db.close db;
      `Ok ()
  in
  let doc =
    "Serve the database over the length-prefixed binary TCP protocol: \
     concurrent sessions on the morsel domain pool, snapshot-isolation \
     transactions, group-committed durable writes.  Stop with SIGINT."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      ret
        (const run $ docs_arg $ hit_arg $ seed_arg $ port_arg $ sessions_arg
       $ window_arg $ db_dir_arg $ pool_pages_arg))

let rules_cmd =
  let show docs hit seed =
    let db = make_db docs hit seed in
    let engine = Engine.generate db in
    Printf.printf "generated optimizer has %d rule(s)\n" (Engine.rule_count engine)
  in
  let doc = "Report the size of the generated optimizer's rule set." in
  Cmd.v (Cmd.info "rules" ~doc) Term.(const show $ docs_arg $ hit_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* knowledge compiler: saturate / check-rules                          *)
(* ------------------------------------------------------------------ *)

let spec_arg =
  let doc =
    "Declare an extra specification in the textual specification language \
     (repeatable), e.g. 'FORALL p IN Paragraph: p->wordCount() > 800 => \
     p->wordCount() > 500'."
  in
  Arg.(value & opt_all string [] & info [ "spec" ] ~docv:"SPEC" ~doc)

let family_arg =
  let doc =
    "Also declare the generated word-count rule family, whose closure \
     exceeds 100 derived rules (the saturation scaling demonstration)."
  in
  Arg.(value & flag & info [ "family" ] ~doc)

let parse_extra_specs schema specs =
  List.concat_map (Soqm_semantics.Spec_lang.parse_specs schema) specs

let saturate_cmd =
  let show_rules_arg =
    let doc = "Print every fact of the closed knowledge base, not only the summary." in
    Arg.(value & flag & info [ "rules" ] ~doc)
  in
  let run docs hit seed specs family show_rules =
    try
      let db = make_db docs hit seed in
      let schema = Soqm_vml.Object_store.schema db.Db.store in
      let extra = parse_extra_specs schema specs in
      let extra =
        if family then extra @ Soqm_knowledge.Rulegen.family () else extra
      in
      let engine = Engine.generate ~extra_specs:extra ~saturate:true db in
      let stats = Option.get (Engine.saturation_stats engine) in
      Printf.printf
        "declared %d specification(s); derived %d, subsumed %d candidate(s) \
         in %d round(s)%s\n"
        stats.Soqm_knowledge.Saturate.declared
        stats.Soqm_knowledge.Saturate.derived
        stats.Soqm_knowledge.Saturate.subsumed
        stats.Soqm_knowledge.Saturate.rounds
        (if stats.Soqm_knowledge.Saturate.truncated then " (truncated)" else "");
      Printf.printf "generated optimizer has %d rule(s)\n"
        (Engine.rule_count engine);
      if show_rules then
        List.iter
          (fun (f : Soqm_knowledge.Saturate.fact) ->
            match f.Soqm_knowledge.Saturate.prov with
            | Soqm_knowledge.Saturate.Declared ->
              Format.printf "  %a@." Soqm_semantics.Equivalence.pp
                f.Soqm_knowledge.Saturate.spec
            | Soqm_knowledge.Saturate.Derived trace ->
              Format.printf "  [derived: %s] %a@." trace
                Soqm_semantics.Equivalence.pp f.Soqm_knowledge.Saturate.spec)
          (Engine.knowledge engine);
      `Ok ()
    with
    | Soqm_semantics.Spec_lang.Error msg ->
      `Error (false, "bad specification: " ^ msg)
    | Invalid_argument msg -> `Error (false, msg)
  in
  let doc =
    "Close the declared knowledge base under derivation (implication \
     transitivity, equivalence composition, substitution) and report the \
     closure: how many rules were derived, how many candidates were \
     subsumed, and — with $(b,--rules) — every fact with its derivation \
     trace."
  in
  Cmd.v (Cmd.info "saturate" ~doc)
    Term.(
      ret
        (const run $ docs_arg $ hit_arg $ seed_arg $ spec_arg $ family_arg
       $ show_rules_arg))

let check_rules_cmd =
  let bound_arg =
    let doc = "Maximum objects per class in candidate stores." in
    Arg.(value & opt int 3 & info [ "bound" ] ~docv:"K" ~doc)
  in
  let models_arg =
    let doc = "Candidate stores generated per store size." in
    Arg.(value & opt int 30 & info [ "models" ] ~docv:"N" ~doc)
  in
  let declared_only_arg =
    let doc = "Check only the declared specifications (skip saturation)." in
    Arg.(value & flag & info [ "declared-only" ] ~doc)
  in
  let run docs hit seed jobs specs family bound models declared_only =
    try
      let db = make_db docs hit seed in
      let schema = Soqm_vml.Object_store.schema db.Db.store in
      (* --spec rules are *candidates* being vetted: they are checked
         against the shipped knowledge base but are not part of the
         trusted base themselves — a candidate must never justify its
         own derived data *)
      let candidates = parse_extra_specs schema specs in
      let extra = if family then Soqm_knowledge.Rulegen.family () else [] in
      let engine =
        Engine.generate ~extra_specs:extra ~saturate:(not declared_only) db
      in
      let config =
        {
          Soqm_knowledge.Check.default_config with
          bound;
          models_per_size = models;
          seed;
          jobs;
        }
      in
      let install store =
        Doc_schema.install_internal_methods store;
        Doc_schema.install_scan_methods store
      in
      let results =
        Engine.check_rules ~config engine
        @ Soqm_knowledge.Check.check_specs ~config ~install
            ~counters:(Db.counters db)
            ~trusted:(Engine.declared_specs engine)
            schema candidates
      in
      let unsound = ref 0 in
      List.iter
        (fun (spec, verdict) ->
          let name = Soqm_semantics.Equivalence.name spec in
          let tag =
            match Engine.provenance engine name with
            | Some trace -> Printf.sprintf " [derived: %s]" trace
            | None -> ""
          in
          match verdict with
          | Soqm_knowledge.Check.Sound { models } ->
            Printf.printf "  sound      %s%s (%d models)\n" name tag models
          | Soqm_knowledge.Check.Unsupported msg ->
            Printf.printf "  unsupported %s%s: %s\n" name tag msg
          | Soqm_knowledge.Check.Refuted _ as v ->
            incr unsound;
            Format.printf "@[<v>UNSOUND %s%s: %a@]@." name tag
              Soqm_knowledge.Check.pp_verdict v)
        results;
      Printf.printf "%d rule(s) checked, %d unsound\n" (List.length results)
        !unsound;
      if !unsound > 0 then
        `Error (false, Printf.sprintf "%d unsound rule(s)" !unsound)
      else `Ok ()
    with
    | Soqm_semantics.Spec_lang.Error msg ->
      `Error (false, "bad specification: " ^ msg)
    | Invalid_argument msg -> `Error (false, msg)
  in
  let doc =
    "Bounded-soundness-check the knowledge base — declared rules, \
     saturation-derived rules (unless $(b,--declared-only)) and any \
     $(b,--spec) candidates (vetted against the shipped knowledge, never \
     against themselves) — by searching for counterexample stores of up \
     to $(b,--bound) objects per class.  Prints a minimal witness store \
     for every unsound rule and exits non-zero if any rule is refuted."
  in
  Cmd.v (Cmd.info "check-rules" ~doc)
    Term.(
      ret
        (const run $ docs_arg $ hit_arg $ seed_arg $ jobs_arg $ spec_arg
       $ family_arg $ bound_arg $ models_arg $ declared_only_arg))

let main =
  let doc =
    "semantic query optimization for methods in an object-oriented database"
  in
  Cmd.group (Cmd.info "soqm" ~version:"1.0.0" ~doc)
    [
      run_cmd; explain_cmd; repl_cmd; schema_cmd; rules_cmd; saturate_cmd;
      check_rules_cmd; save_cmd; open_cmd; checkpoint_cmd; vacuum_cmd;
      insert_cmd; update_cmd; delete_cmd; stats_cmd; serve_cmd;
    ]

let () = exit (Cmd.eval main)
