(* Tests for the VQL front-end: lexer, parser, typechecker and the
   canonical translation to the general algebra, exercised on the
   paper's example queries. *)

open Soqm_vml
open Soqm_algebra
open Soqm_vql
module Vml_schema = Soqm_vml.Schema
module F = Soqm_testlib.Fixtures

let check = Alcotest.check
let schema = Soqm_core.Doc_schema.schema

let db = lazy (F.tiny_db ())
let store () = (Lazy.force db).Soqm_core.Db.store

let run_query src =
  Eval.run (store ()) (To_algebra.query_to_algebra schema src)

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let token_list = Alcotest.testable (Fmt.Dump.list Token.pp) ( = )

let test_lex_basics () =
  check token_list "keywords and operators"
    [ Token.ACCESS; Token.IDENT "p"; Token.FROM; Token.IDENT "p"; Token.IN;
      Token.IDENT "Paragraph"; Token.EOF ]
    (Lexer.tokenize "ACCESS p FROM p IN Paragraph")

let test_lex_is_in () =
  check token_list "IS-IN is one token"
    [ Token.IDENT "x"; Token.IS_IN; Token.IDENT "S"; Token.EOF ]
    (Lexer.tokenize "x IS-IN S");
  check token_list "IS-SUBSET is one token"
    [ Token.IDENT "x"; Token.IS_SUBSET; Token.IDENT "S"; Token.EOF ]
    (Lexer.tokenize "x IS-SUBSET S")

let test_lex_strings () =
  check token_list "single quotes"
    [ Token.STRING_LIT "Implementation"; Token.EOF ]
    (Lexer.tokenize "'Implementation'");
  check token_list "double quotes and escape"
    [ Token.STRING_LIT "a'b\n"; Token.EOF ]
    (Lexer.tokenize "\"a'b\\n\"")

let test_lex_numbers_arrows () =
  check token_list "numbers, arrow, comparisons"
    [ Token.INT_LIT 42; Token.REAL_LIT 2.5; Token.ARROW; Token.EQ; Token.NEQ;
      Token.LE; Token.GE; Token.MINUS; Token.EOF ]
    (Lexer.tokenize "42 2.5 -> == != <= >= -")

let test_lex_comment () =
  check token_list "comments skipped"
    [ Token.INT_LIT 1; Token.INT_LIT 2; Token.EOF ]
    (Lexer.tokenize "1 // note\n2")

let test_lex_error () =
  Alcotest.match_raises "bad char"
    (function Lexer.Error _ -> true | _ -> false)
    (fun () -> ignore (Lexer.tokenize "a # b"));
  Alcotest.match_raises "unterminated string"
    (function Lexer.Error _ -> true | _ -> false)
    (fun () -> ignore (Lexer.tokenize "'abc"))

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parse_example1 () =
  (* Example 1: method call as join predicate, tuple-valued ACCESS *)
  let q =
    Parser.parse_query
      "ACCESS [p: p.number, q: q.number] FROM p IN Paragraph, q IN Paragraph \
       WHERE p->sameDocument(q)"
  in
  check Alcotest.int "two ranges" 2 (List.length q.Ast.ranges);
  (match q.Ast.access with
  | Ast.Tuple_lit [ ("p", _); ("q", _) ] -> ()
  | _ -> Alcotest.fail "expected tuple access");
  match q.Ast.where with
  | Some (Ast.Method_call (Ast.Var "p", "sameDocument", [ Ast.Var "q" ])) -> ()
  | _ -> Alcotest.fail "expected method-call predicate"

let test_parse_example2 () =
  (* Example 2: dependent range through a method call *)
  let q =
    Parser.parse_query
      "ACCESS d.title FROM d IN Document, p IN d->paragraphs() WHERE \
       p->contains_string('Implementation')"
  in
  (match (List.nth q.Ast.ranges 1).Ast.source with
  | Ast.Method_call (Ast.Var "d", "paragraphs", []) -> ()
  | _ -> Alcotest.fail "expected dependent method range");
  check Alcotest.bool "where present" true (Option.is_some q.Ast.where)

let test_parse_example3 () =
  (* Example 3: methods in the ACCESS clause, no WHERE *)
  let q =
    Parser.parse_query
      "ACCESS [doc: d.title, paras: d->paragraphs()] FROM d IN Document"
  in
  check Alcotest.bool "no where" true (Option.is_none q.Ast.where)

let test_parse_precedence () =
  let e = Parser.parse_expr "a OR b AND NOT c == 1" in
  (* OR(a, AND(b, NOT (c == 1))) *)
  match e with
  | Ast.Binop (Expr.Or, Ast.Var "a", Ast.Binop (Expr.And, Ast.Var "b", Ast.Not _)) -> ()
  | _ -> Alcotest.fail "precedence mismatch"

let test_parse_path () =
  match Parser.parse_expr "p.section.document.title" with
  | Ast.Prop_access (Ast.Prop_access (Ast.Prop_access (Ast.Var "p", "section"), "document"), "title") -> ()
  | _ -> Alcotest.fail "path parse mismatch"

let test_parse_set_ops () =
  match Parser.parse_expr "A UNION B INTERSECTION C" with
  (* INTERSECTION binds tighter than UNION *)
  | Ast.Binop (Expr.UnionOp, Ast.Var "A", Ast.Binop (Expr.InterOp, Ast.Var "B", Ast.Var "C")) -> ()
  | _ -> Alcotest.fail "set-operator precedence mismatch"

let test_parse_errors () =
  let bad s =
    Alcotest.match_raises s
      (function Parser.Error _ -> true | _ -> false)
      (fun () -> ignore (Parser.parse_query s))
  in
  bad "ACCESS FROM p IN Paragraph";
  bad "ACCESS p FROM p Paragraph";
  bad "ACCESS p FROM p IN Paragraph WHERE";
  bad "ACCESS p FROM p IN Paragraph trailing"

(* ------------------------------------------------------------------ *)
(* Typechecker                                                         *)
(* ------------------------------------------------------------------ *)

let tc src = Typecheck.check_query schema (Parser.parse_query src)

let test_typecheck_q () =
  let q =
    tc
      "ACCESS p FROM p IN Paragraph WHERE p->contains_string('Implementation') \
       AND (p->document()).title == 'Query Optimization'"
  in
  check Alcotest.bool "range over class" true
    (match (List.hd q.Typecheck.ranges).Typecheck.source with
    | Typecheck.Class_extent "Paragraph" -> true
    | _ -> false);
  check Alcotest.bool "access typed as paragraph" true
    (q.Typecheck.access_type = Vtype.TObj "Paragraph")

let test_typecheck_set_lifting () =
  (* D.sections.paragraphs over the class object: {Document}.sections ->
     {Section}, .paragraphs -> {Paragraph} *)
  let _, ty =
    Typecheck.check_expr schema ~env:[]
      (Parser.parse_expr "Document.sections.paragraphs")
  in
  check Alcotest.string "lifted path type" "{Paragraph}" (Vtype.to_string ty)

let test_typecheck_class_method () =
  let _, ty =
    Typecheck.check_expr schema ~env:[]
      (Parser.parse_expr "Document->select_by_index('x')")
  in
  check Alcotest.string "own method type" "{Document}" (Vtype.to_string ty)

let test_typecheck_errors () =
  let bad name src =
    Alcotest.match_raises name
      (function Typecheck.Error _ -> true | _ -> false)
      (fun () -> ignore (tc src))
  in
  bad "unknown class" "ACCESS x FROM x IN Nowhere";
  bad "unknown property" "ACCESS p.nope FROM p IN Paragraph";
  bad "unknown method" "ACCESS p FROM p IN Paragraph WHERE p->nope()";
  bad "arity" "ACCESS p FROM p IN Paragraph WHERE p->contains_string()";
  bad "argument type" "ACCESS p FROM p IN Paragraph WHERE p->contains_string(3)";
  bad "non-boolean where" "ACCESS p FROM p IN Paragraph WHERE p.number";
  bad "non-set range" "ACCESS x FROM p IN Paragraph, x IN p.number";
  bad "duplicate variable" "ACCESS p FROM p IN Paragraph, p IN Section";
  bad "ordering on objects" "ACCESS p FROM p IN Paragraph WHERE p < p";
  bad "is-in mismatch" "ACCESS p FROM p IN Paragraph WHERE p IS-IN Document"

let test_typecheck_dependent_range () =
  let q = tc "ACCESS p FROM d IN Document, p IN d->paragraphs()" in
  match (List.nth q.Typecheck.ranges 1).Typecheck.source with
  | Typecheck.Set_expr (Expr.Call (Expr.Ref "d", "paragraphs", [])) -> ()
  | _ -> Alcotest.fail "dependent range not resolved"

(* ------------------------------------------------------------------ *)
(* Translation                                                         *)
(* ------------------------------------------------------------------ *)

let test_translate_canonical_shape () =
  let g =
    To_algebra.query_to_algebra schema
      "ACCESS [a: p.number] FROM p IN Paragraph, q IN Paragraph WHERE \
       p->sameDocument(q)"
  in
  match g with
  | General.Project
      ( [ "result" ],
        General.Map
          ( "result",
            _,
            General.Select
              ( Expr.Call (Expr.Ref "p", "sameDocument", [ Expr.Ref "q" ]),
                General.Join
                  ( Expr.Const (Value.Bool true),
                    General.Get ("p", "Paragraph"),
                    General.Get ("q", "Paragraph") ) ) ) ) ->
    ()
  | _ ->
    Alcotest.failf "unexpected canonical shape:@.%s" (General.to_string g)

let test_translate_simple_access_projects () =
  let g = To_algebra.query_to_algebra schema "ACCESS p FROM p IN Paragraph" in
  check F.general "direct projection"
    (General.Project ([ "p" ], General.Get ("p", "Paragraph")))
    g

let test_translate_dependent_range_is_flat () =
  let g =
    To_algebra.query_to_algebra schema
      "ACCESS p FROM d IN Document, p IN d->paragraphs()"
  in
  match g with
  | General.Project
      ([ "p" ], General.Flat ("p", Expr.Call (Expr.Ref "d", "paragraphs", []),
                              General.Get ("d", "Document"))) ->
    ()
  | _ -> Alcotest.failf "expected flat:@.%s" (General.to_string g)

let test_translate_method_source () =
  let g =
    To_algebra.query_to_algebra schema
      "ACCESS p FROM p IN Paragraph->retrieve_by_string('Implementation')"
  in
  match g with
  | General.Project ([ "p" ], General.MethodSource ("p", _)) -> ()
  | _ -> Alcotest.failf "expected method source:@.%s" (General.to_string g)

(* ------------------------------------------------------------------ *)
(* End-to-end evaluation of the paper's queries                        *)
(* ------------------------------------------------------------------ *)

let test_eval_query_q () =
  (* Q from Section 2.3, straightforwardly evaluated *)
  let r =
    run_query
      "ACCESS p FROM p IN Paragraph WHERE p->contains_string('Implementation') \
       AND (p->document()).title == 'Query Optimization'"
  in
  (* oracle: manual filter over the extent *)
  let store = store () in
  let expected =
    List.filter
      (fun p ->
        Value.truthy
          (Runtime.invoke store (Value.Obj p) "contains_string"
             [ Value.Str "Implementation" ])
        &&
        let d = Runtime.invoke store (Value.Obj p) "document" [] in
        match d with
        | Value.Obj doid ->
          Object_store.peek_prop store doid "title" = Value.Str "Query Optimization"
        | _ -> false)
      (Object_store.extent store "Paragraph")
  in
  check F.relation "Q against oracle"
    (Relation.of_values "p" (List.map (fun p -> Value.Obj p) expected))
    r

let test_eval_example2 () =
  let r =
    run_query
      "ACCESS d.title FROM d IN Document, p IN d->paragraphs() WHERE \
       p->contains_string('Implementation')"
  in
  check Alcotest.bool "some documents found" true (Relation.cardinality r > 0)

let test_eval_q_equals_pq_via_vql () =
  (* The paper's final plan PQ written directly in VQL evaluates to the
     same set as Q. *)
  let q =
    run_query
      "ACCESS p FROM p IN Paragraph WHERE p->contains_string('Implementation') \
       AND (p->document()).title == 'Query Optimization'"
  in
  let pq =
    run_query
      "ACCESS p FROM p IN Paragraph->retrieve_by_string('Implementation') \
       INTERSECTION (Document->select_by_index('Query \
       Optimization')).sections.paragraphs"
  in
  check F.relation "Q == PQ via VQL" q pq

let test_eval_intermediate_transforms () =
  (* Q' ... Q'''' of Section 2.3 are all equivalent to Q. *)
  let q =
    run_query
      "ACCESS p FROM p IN Paragraph WHERE p->contains_string('Implementation') \
       AND (p->document()).title == 'Query Optimization'"
  in
  let variants =
    [
      (* Q' : E2 applied *)
      "ACCESS p FROM p IN Paragraph WHERE p->contains_string('Implementation') \
       AND p->document() IS-IN Document->select_by_index('Query Optimization')";
      (* Q'' : E1 applied *)
      "ACCESS p FROM p IN Paragraph WHERE p->contains_string('Implementation') \
       AND p.section.document IS-IN Document->select_by_index('Query \
       Optimization')";
      (* Q''' : E3 applied *)
      "ACCESS p FROM p IN Paragraph WHERE p->contains_string('Implementation') \
       AND p.section IS-IN (Document->select_by_index('Query \
       Optimization')).sections";
      (* Q'''' : E4 applied *)
      "ACCESS p FROM p IN Paragraph WHERE p->contains_string('Implementation') \
       AND p IS-IN (Document->select_by_index('Query \
       Optimization')).sections.paragraphs";
    ]
  in
  List.iteri
    (fun i src -> check F.relation (Printf.sprintf "Q%d" (i + 1)) q (run_query src))
    variants

(* ------------------------------------------------------------------ *)
(* Nested queries (the future work of Section 8)                       *)
(* ------------------------------------------------------------------ *)

let test_nested_from_source () =
  (* sections of the documents found by a nested query *)
  let r =
    run_query
      "ACCESS s FROM d IN (ACCESS d2 FROM d2 IN Document WHERE d2.title == \
       'Query Optimization'), s IN d.sections"
  in
  check Alcotest.int "sections of the matching document"
    F.tiny_params.Soqm_core.Datagen.sections_per_doc
    (Relation.cardinality r)

let test_nested_isin_conjunct () =
  (* Q with the document restriction phrased as a nested query *)
  let nested =
    run_query
      "ACCESS p FROM p IN Paragraph WHERE \
       p->contains_string('Implementation') AND p->document() IS-IN (ACCESS d \
       FROM d IN Document WHERE d.title == 'Query Optimization')"
  in
  let flat =
    run_query
      "ACCESS p FROM p IN Paragraph WHERE \
       p->contains_string('Implementation') AND (p->document()).title == \
       'Query Optimization'"
  in
  check F.relation "nested IS-IN equals the flat formulation" flat nested

let test_nested_no_capture () =
  (* inner and outer range variables may share names *)
  let r =
    run_query
      "ACCESS p.number FROM p IN (ACCESS p FROM p IN Paragraph WHERE p.number \
       < 1), q IN Paragraph WHERE q.number == p.number"
  in
  check Alcotest.bool "shared names do not capture" true
    (Relation.cardinality r > 0)

let test_nested_optimizes () =
  (* the optimizer still improves a query containing a nested source *)
  let db = F.shared_db () in
  let eng = Soqm_core.Engine.generate db in
  let q =
    "ACCESS p FROM p IN Paragraph WHERE p->contains_string('Implementation') \
     AND p->document() IS-IN (ACCESS d FROM d IN Document WHERE d.title == \
     'Query Optimization')"
  in
  let naive = Soqm_core.Engine.run_naive db q in
  let opt = Soqm_core.Engine.run_optimized eng q in
  check F.relation "nested query optimized soundly" naive.Soqm_core.Engine.result
    opt.Soqm_core.Engine.result;
  check Alcotest.bool "and profitably" true
    (Soqm_vml.Counters.total_cost opt.Soqm_core.Engine.counters
    < Soqm_vml.Counters.total_cost naive.Soqm_core.Engine.counters)

let test_nested_rejected_positions () =
  let bad name src =
    Alcotest.match_raises name
      (function Typecheck.Error _ -> true | _ -> false)
      (fun () -> ignore (tc src))
  in
  bad "subquery in ACCESS"
    "ACCESS (ACCESS d FROM d IN Document) FROM p IN Paragraph";
  bad "subquery under OR"
    "ACCESS p FROM p IN Paragraph WHERE p.number == 0 OR p IS-IN (ACCESS q \
     FROM q IN Paragraph)";
  bad "correlated subquery"
    "ACCESS p FROM p IN Paragraph WHERE p IS-IN (ACCESS q FROM q IN Paragraph \
     WHERE q.number == p.number)"

(* ------------------------------------------------------------------ *)
(* ARRAY / DICTIONARY subscription                                     *)
(* ------------------------------------------------------------------ *)

let array_schema_text =
  {|
CLASS Measurement
  INSTTYPE OBJECTTYPE
    PROPERTIES:
      samples: ARRAY<INT>;
      labels: DICTIONARY<STRING, INT>;
    METHODS:
      first_sample(): INT { RETURN samples[0]; };
  END;
END;
|}

let measurement_store () =
  let store = Schema_parser.load array_schema_text in
  let m =
    Object_store.create_object store ~cls:"Measurement"
      [
        ("samples", Value.Arr [| Value.Int 7; Value.Int 8; Value.Int 9 |]);
        ("labels", Value.dict [ (Value.Str "hi", Value.Int 2) ]);
      ]
  in
  (store, m)

let test_index_array () =
  let store, m = measurement_store () in
  check F.value "samples[1]" (Value.Int 8)
    (Runtime.eval (Runtime.env store)
       Expr.(Binop (IndexOp, Prop (Const (Value.Obj m), "samples"), Const (Value.Int 1))));
  check F.value "method body subscription" (Value.Int 7)
    (Runtime.invoke store (Value.Obj m) "first_sample" []);
  Alcotest.match_raises "out of bounds"
    (function Runtime.Error _ -> true | _ -> false)
    (fun () ->
      ignore
        (Runtime.eval (Runtime.env store)
           Expr.(
             Binop (IndexOp, Prop (Const (Value.Obj m), "samples"), Const (Value.Int 9)))))

let test_index_dict () =
  let store, m = measurement_store () in
  check F.value "present key" (Value.Int 2)
    (Runtime.eval (Runtime.env store)
       Expr.(
         Binop (IndexOp, Prop (Const (Value.Obj m), "labels"), Const (Value.Str "hi"))));
  check F.value "missing key is NULL" Value.Null
    (Runtime.eval (Runtime.env store)
       Expr.(
         Binop (IndexOp, Prop (Const (Value.Obj m), "labels"), Const (Value.Str "no"))))

let test_index_in_query () =
  let store, _ = measurement_store () in
  let r =
    Eval.run store
      (To_algebra.query_to_algebra (Object_store.schema store)
         "ACCESS m.samples[2] FROM m IN Measurement WHERE m.samples[0] == 7")
  in
  check (Alcotest.list F.value) "subscription in query" [ Value.Int 9 ]
    (Relation.column r "result")

let test_index_typecheck_errors () =
  let store, _ = measurement_store () in
  let schema' = Object_store.schema store in
  let bad name src =
    Alcotest.match_raises name
      (function Typecheck.Error _ -> true | _ -> false)
      (fun () -> ignore (Typecheck.check_query schema' (Parser.parse_query src)))
  in
  bad "array index must be int"
    "ACCESS m FROM m IN Measurement WHERE m.samples['x'] == 1";
  bad "dict key type"
    "ACCESS m FROM m IN Measurement WHERE m.labels[1] == 1";
  bad "scalar not indexable"
    "ACCESS m FROM m IN Measurement WHERE m.samples[0][0] == 1"

(* ------------------------------------------------------------------ *)
(* The schema definition language (Section 2.1)                        *)
(* ------------------------------------------------------------------ *)

(* the paper's schema, written as in its Section 2.1 figure (plus the
   cost/selectivity annotations our signatures carry) *)
let paper_schema_text =
  {|
CLASS Document
  OWNTYPE OBJECTTYPE
    METHODS:
      select_by_index(t: STRING): {Document} EXTERNAL COST 5.0 SELECTIVITY 0.01;
  END;
  INSTTYPE OBJECTTYPE
    PROPERTIES:
      title: STRING;
      author: STRING;
      sections: {Section} INVERSE Section.document;
    METHODS:
      paragraphs(): {Paragraph} { RETURN sections.paragraphs; };
  END;
END;

CLASS Section
  INSTTYPE OBJECTTYPE
    PROPERTIES:
      number: INT;
      title: STRING;
      document: Document INVERSE Document.sections;
      paragraphs: {Paragraph} INVERSE Paragraph.section;
  END;
END;

CLASS Paragraph
  OWNTYPE OBJECTTYPE
    METHODS:
      retrieve_by_string(s: STRING): {Paragraph} EXTERNAL COST 25.0 SELECTIVITY 0.05;
  END;
  INSTTYPE OBJECTTYPE
    PROPERTIES:
      number: INT;
      section: Section INVERSE Section.paragraphs;
      content: STRING;
    METHODS:
      document(): Document { RETURN section.document; };
      contains_string(s: STRING): BOOL EXTERNAL COST 10.0 SELECTIVITY 0.05;
      sameDocument(p: Paragraph): BOOL
        { RETURN SELF->document() == p->document(); };
  END;
END;
|}

let test_schema_parse_paper () =
  let parsed_schema, bodies = Schema_parser.parse paper_schema_text in
  check (Alcotest.list Alcotest.string) "classes"
    [ "Document"; "Paragraph"; "Section" ]
    (List.sort String.compare (Vml_schema.class_names parsed_schema));
  check Alcotest.int "three internal bodies" 3 (List.length bodies);
  (* metadata round-trips *)
  check (Alcotest.float 0.01) "retrieve cost" 25.0
    (Vml_schema.method_cost parsed_schema ~cls:"Paragraph" ~meth:"retrieve_by_string");
  (match Vml_schema.inverse_of parsed_schema ~cls:"Section" ~prop:"document" with
  | Some ("Document", "sections") -> ()
  | _ -> Alcotest.fail "inverse link lost");
  match Vml_schema.inst_method parsed_schema ~cls:"Paragraph" ~meth:"contains_string" with
  | Some m ->
    check Alcotest.bool "external" true (m.Vml_schema.kind = Vml_schema.External)
  | None -> Alcotest.fail "contains_string missing"

let test_schema_parse_bodies_run () =
  (* the parsed bodies execute: build a store from the text, add two
     documents, and call the path methods *)
  let store = Schema_parser.load paper_schema_text in
  let d = Object_store.create_object store ~cls:"Document" [ ("title", Value.Str "T") ] in
  let s = Object_store.create_object store ~cls:"Section" [ ("document", Value.Obj d) ] in
  let p = Object_store.create_object store ~cls:"Paragraph" [ ("section", Value.Obj s) ] in
  check F.value "document() navigates" (Value.Obj d)
    (Runtime.invoke store (Value.Obj p) "document" []);
  check F.value "sameDocument" (Value.Bool true)
    (Runtime.invoke store (Value.Obj p) "sameDocument" [ Value.Obj p ]);
  check F.value "paragraphs() unions" (Value.set [ Value.Obj p ])
    (Runtime.invoke store (Value.Obj d) "paragraphs" [])

let test_schema_parse_impure_annotation () =
  let src =
    {|
CLASS C
  INSTTYPE OBJECTTYPE
    PROPERTIES: x: INT;
    METHODS: bump(): INT EXTERNAL UPDATES COST 2.0;
  END;
END;
|}
  in
  let parsed, _ = Schema_parser.parse src in
  check Alcotest.bool "impure recorded" false
    (Vml_schema.method_is_pure parsed ~meth:"bump")

let test_schema_parse_errors () =
  let bad name src =
    Alcotest.match_raises name
      (function Schema_parser.Error _ -> true | _ -> false)
      (fun () -> ignore (Schema_parser.parse src))
  in
  bad "internal without body"
    "CLASS C INSTTYPE OBJECTTYPE METHODS: m(): INT; END; END;";
  bad "external with body"
    "CLASS C INSTTYPE OBJECTTYPE METHODS: m(): INT EXTERNAL { RETURN 1; }; END; END;";
  bad "ill-typed body"
    "CLASS C INSTTYPE OBJECTTYPE PROPERTIES: x: INT; METHODS: m(): STRING { \
     RETURN x; }; END; END;";
  bad "undeclared class in property"
    "CLASS C INSTTYPE OBJECTTYPE PROPERTIES: y: Nowhere; END; END;";
  bad "non-mutual inverse"
    "CLASS C INSTTYPE OBJECTTYPE PROPERTIES: y: D INVERSE D.cs; END; END; \
     CLASS D INSTTYPE OBJECTTYPE PROPERTIES: cs: {C}; END; END;";
  bad "truncated" "CLASS C INSTTYPE OBJECTTYPE"

(* ------------------------------------------------------------------ *)
(* Property: parse . print = parse                                     *)
(* ------------------------------------------------------------------ *)

let query_src_gen =
  QCheck2.Gen.oneofl
    [
      "ACCESS p FROM p IN Paragraph";
      "ACCESS p.number FROM p IN Paragraph WHERE p.number < 3";
      "ACCESS [a: d.title, b: d.author] FROM d IN Document";
      "ACCESS d.title FROM d IN Document, p IN d->paragraphs() WHERE \
       p->contains_string('x')";
      "ACCESS p FROM p IN Paragraph WHERE p IS-IN \
       (Document->select_by_index('t')).sections.paragraphs";
      "ACCESS s FROM s IN Section WHERE s.number < 2 AND s.number > 0 OR NOT \
       (s.title == 'x')";
    ]

let prop_print_parse_roundtrip =
  QCheck2.Test.make ~count:30 ~name:"printing then reparsing is stable"
    query_src_gen
    (fun src ->
      let q1 = Parser.parse_query src in
      let q2 = Parser.parse_query (Ast.to_string q1) in
      q1 = q2)

let () =
  Alcotest.run "vql"
    [
      ( "lexer",
        [
          F.case "basics" test_lex_basics;
          F.case "IS-IN / IS-SUBSET" test_lex_is_in;
          F.case "strings" test_lex_strings;
          F.case "numbers & arrows" test_lex_numbers_arrows;
          F.case "comments" test_lex_comment;
          F.case "errors" test_lex_error;
        ] );
      ( "parser",
        [
          F.case "example 1" test_parse_example1;
          F.case "example 2" test_parse_example2;
          F.case "example 3" test_parse_example3;
          F.case "precedence" test_parse_precedence;
          F.case "path expressions" test_parse_path;
          F.case "set operators" test_parse_set_ops;
          F.case "errors" test_parse_errors;
        ] );
      ( "typecheck",
        [
          F.case "query Q" test_typecheck_q;
          F.case "set lifting" test_typecheck_set_lifting;
          F.case "class method" test_typecheck_class_method;
          F.case "errors" test_typecheck_errors;
          F.case "dependent range" test_typecheck_dependent_range;
        ] );
      ( "translate",
        [
          F.case "canonical shape" test_translate_canonical_shape;
          F.case "simple access" test_translate_simple_access_projects;
          F.case "dependent range" test_translate_dependent_range_is_flat;
          F.case "method source" test_translate_method_source;
        ] );
      ( "nested-queries",
        [
          F.case "FROM source" test_nested_from_source;
          F.case "IS-IN conjunct" test_nested_isin_conjunct;
          F.case "no variable capture" test_nested_no_capture;
          F.case "optimized soundly" test_nested_optimizes;
          F.case "rejected positions" test_nested_rejected_positions;
        ] );
      ( "subscription",
        [
          F.case "array indexing" test_index_array;
          F.case "dictionary lookup" test_index_dict;
          F.case "in a query" test_index_in_query;
          F.case "type errors" test_index_typecheck_errors;
        ] );
      ( "schema-language",
        [
          F.case "paper schema parses" test_schema_parse_paper;
          F.case "parsed bodies run" test_schema_parse_bodies_run;
          F.case "UPDATES annotation" test_schema_parse_impure_annotation;
          F.case "errors" test_schema_parse_errors;
        ] );
      ( "end-to-end",
        [
          F.case "query Q" test_eval_query_q;
          F.case "example 2" test_eval_example2;
          F.case "Q == PQ" test_eval_q_equals_pq_via_vql;
          F.case "intermediate transforms" test_eval_intermediate_transforms;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_print_parse_roundtrip ] );
    ]
