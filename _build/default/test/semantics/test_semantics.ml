(* Tests for the schema-specific knowledge layer: specification
   validation, inverse-link derivation, and the compilation of each of
   the four specification kinds into optimizer rules (Section 4.2). *)

open Soqm_vml
open Soqm_algebra
open Soqm_optimizer
open Soqm_semantics
module F = Soqm_testlib.Fixtures
module R = Restricted

let check = Alcotest.check
let schema = Soqm_core.Doc_schema.schema
let db = lazy (F.tiny_db ())
let eval_restricted t = Eval.run (Lazy.force db).Soqm_core.Db.store (R.to_general t)

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let test_validate_good_specs () =
  List.iter
    (fun spec ->
      match Equivalence.validate schema spec with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s rejected: %s" (Equivalence.name spec) msg)
    (Soqm_core.Doc_knowledge.specs ())

let test_validate_unknown_class () =
  let spec =
    Equivalence.Expr_equiv
      { name = "bad"; cls = "Nowhere"; var = "x"; lhs = Expr.Ref "x"; rhs = Expr.Ref "x" }
  in
  check Alcotest.bool "rejected" true (Result.is_error (Equivalence.validate schema spec))

let test_validate_foreign_ref () =
  let spec =
    Equivalence.Cond_equiv
      {
        name = "bad";
        cls = "Paragraph";
        var = "p";
        lhs = Expr.Binop (Expr.Eq, Expr.Ref "q", Expr.Const (Value.Int 1));
        rhs = Expr.Const (Value.Bool true);
      }
  in
  check Alcotest.bool "rejected" true (Result.is_error (Equivalence.validate schema spec))

let test_validate_non_boolean_cond () =
  let spec =
    Equivalence.Cond_equiv
      {
        name = "bad";
        cls = "Paragraph";
        var = "p";
        lhs = Expr.Prop (Expr.Ref "p", "number");
        rhs = Expr.Const (Value.Bool true);
      }
  in
  check Alcotest.bool "rejected" true (Result.is_error (Equivalence.validate schema spec))

let test_validate_query_method_return () =
  let spec =
    Equivalence.Query_method
      {
        name = "bad";
        cls = "Document";
        var = "d";
        cond = Expr.Const (Value.Bool true);
        meth_cls = "Paragraph";
        meth = "retrieve_by_string";
        args = [ Equivalence.Arg_param "s" ];
      }
  in
  (* returns {Paragraph}, not {Document} *)
  check Alcotest.bool "rejected" true (Result.is_error (Equivalence.validate schema spec))

(* ------------------------------------------------------------------ *)
(* Inverse-link derivation                                             *)
(* ------------------------------------------------------------------ *)

let test_from_inverse_links () =
  let specs = Equivalence.from_inverse_links schema in
  let names = List.map Equivalence.name specs in
  check Alcotest.bool "Section.document link" true
    (List.mem "inverse-Section.document" names);
  check Alcotest.bool "Paragraph.section link" true
    (List.mem "inverse-Paragraph.section" names);
  (* only the scalar sides induce specs: exactly two *)
  check Alcotest.int "two links" 2 (List.length specs);
  List.iter
    (fun spec ->
      match Equivalence.validate schema spec with
      | Ok () -> ()
      | Error m -> Alcotest.failf "derived spec invalid: %s" m)
    specs

(* ------------------------------------------------------------------ *)
(* Rule derivation shapes                                              *)
(* ------------------------------------------------------------------ *)

let doc_spec name =
  List.find
    (fun s -> Equivalence.name s = name)
    (Soqm_core.Doc_knowledge.specs ())

let test_derive_counts () =
  (* E1 gives map+flat lifts; E2 one rule; E5 one implementation;
     implication one apply-once rule *)
  check Alcotest.int "E1 rules" 2
    (List.length (Derive.transformations schema (doc_spec "E1-document-path")));
  check Alcotest.int "E2 rules" 1
    (List.length (Derive.transformations schema (doc_spec "E2-title-index")));
  check Alcotest.int "E5 transformation rules" 0
    (List.length (Derive.transformations schema (doc_spec "E5-retrieve-by-string")));
  check Alcotest.int "E5 implementation rules" 1
    (List.length (Derive.implementations schema (doc_spec "E5-retrieve-by-string")));
  match Derive.transformations schema (doc_spec "large-paragraphs") with
  | [ rule ] -> check Alcotest.bool "apply once" true rule.Rule.t_apply_once
  | _ -> Alcotest.fail "implication yields one rule"

let test_derive_rejects_self () =
  let spec =
    Equivalence.Expr_equiv
      {
        name = "bad-self";
        cls = "Paragraph";
        var = "p";
        lhs = Expr.Self;
        rhs = Expr.Ref "p";
      }
  in
  Alcotest.match_raises "SELF underivable"
    (function Derive.Underivable _ -> true | _ -> false)
    (fun () -> ignore (Derive.transformations schema spec))

(* E1's derived rule must rewrite exactly the paper's Section 4.2 form:
   map<?a2, ?a1->document()>(?A<?a1, Paragraph>)
     <-> map<?a2, ?a1.section.document>(?A<?a1, Paragraph>) *)
let test_e1_rule_rewrites_both_ways () =
  let rules = Derive.transformations schema (doc_spec "E1-document-path") in
  let map_rule = List.find (fun r -> r.Rule.t_name = "E1-document-path/map") rules in
  let lhs_term =
    R.MapMethod ("d", "document", R.RRef "p", [], R.Get ("p", "Paragraph"))
  in
  let forward = Rule.root_rewrites schema map_rule lhs_term in
  (match forward with
  | [ R.MapProperty ("d", "document", sec, R.MapProperty (sec', "section", "p", R.Get ("p", "Paragraph"))) ]
    when String.equal sec sec' ->
    ()
  | _ -> Alcotest.failf "unexpected forward rewrite (%d results)" (List.length forward));
  (* reverse direction: starting from the path form *)
  let rhs_term =
    R.MapProperty ("d", "document", "s1", R.MapProperty ("s1", "section", "p", R.Get ("p", "Paragraph")))
  in
  let backward = Rule.root_rewrites schema map_rule rhs_term in
  check Alcotest.bool "reverse produces the method form" true
    (List.exists
       (function R.MapMethod ("d", "document", R.RRef "p", [], _) -> true | _ -> false)
       backward)

let test_e1_rule_requires_class () =
  (* the ranging constraint: a 'document' method on a Section-typed ref
     must not trigger the Paragraph rule *)
  let rules = Derive.transformations schema (doc_spec "E1-document-path") in
  let map_rule = List.find (fun r -> r.Rule.t_name = "E1-document-path/map") rules in
  let wrong_class =
    R.MapMethod ("d", "document", R.RRef "s", [], R.Get ("s", "Section"))
  in
  check Alcotest.int "no rewrite on Section" 0
    (List.length (Rule.root_rewrites schema map_rule wrong_class))

let test_e2_rule_parametrized () =
  let rules = Derive.transformations schema (doc_spec "E2-title-index") in
  let rule = List.hd rules in
  let term =
    R.SelectCmp
      ( R.CEq,
        R.ORef "t",
        R.OConst (Value.Str "Some Title"),
        R.MapProperty ("t", "title", "d", R.Get ("d", "Document")) )
  in
  let rewrites = Rule.root_rewrites schema rule term in
  check Alcotest.bool "rewrites" true (rewrites <> []);
  (* the parameter s must be carried into the method call *)
  check Alcotest.bool "parameter forwarded" true
    (List.exists
       (fun t ->
         List.exists
           (function
             | R.MapMethod (_, "select_by_index", R.RClass "Document",
                            [ R.OConst (Value.Str "Some Title") ], _) ->
               true
             | _ -> false)
           (R.subtrees t))
       rewrites)

(* every derived transformation rule preserves semantics on terms it
   matches, for the real database *)
let test_derived_rules_preserve_semantics () =
  let specs = Soqm_core.Doc_knowledge.specs () in
  let rules = List.concat_map (Derive.transformations schema) specs in
  let test_terms =
    [
      R.MapMethod ("d", "document", R.RRef "p", [], R.Get ("p", "Paragraph"));
      R.SelectCmp
        ( R.CEq,
          R.ORef "t",
          R.OConst (Value.Str "Query Optimization"),
          R.MapProperty ("t", "title", "d", R.Get ("d", "Document")) );
      R.Project
        ( [ "p" ],
          R.SelectCmp
            ( R.CGt,
              R.ORef "w",
              R.OConst (Value.Int 500),
              R.MapMethod ("w", "wordCount", R.RRef "p", [], R.Get ("p", "Paragraph"))
            ) );
      R.FlatMethod ("q", "paragraphs", R.RRef "d", [], R.Get ("d", "Document"));
    ]
  in
  List.iter
    (fun term ->
      List.iter
        (fun rule ->
          List.iter
            (fun t' ->
              (* rewrites may add references (consumed temps); compare on
                 the common projection *)
              let shared =
                List.filter
                  (fun r -> List.mem r (R.refs t'))
                  (R.refs term)
              in
              let project t = R.Project (shared, t) in
              if
                not
                  (Relation.equal
                     (eval_restricted (project term))
                     (eval_restricted (project t')))
              then
                Alcotest.failf "rule %s broke semantics on@.%s@.->@.%s"
                  rule.Rule.t_name (R.to_string term) (R.to_string t'))
            (Rule.root_rewrites schema rule term))
        rules)
    test_terms

(* the implication rule introduces the natural_join form and evaluates
   to the same set *)
let test_implication_shape () =
  let rules = Derive.transformations schema (doc_spec "large-paragraphs") in
  let rule = List.hd rules in
  let term =
    R.SelectCmp
      ( R.CGt,
        R.ORef "w",
        R.OConst (Value.Int 500),
        R.MapMethod ("w", "wordCount", R.RRef "p", [], R.Get ("p", "Paragraph")) )
  in
  let rewrites = Rule.root_rewrites schema rule term in
  check Alcotest.bool "rewrites to a natural join" true
    (List.exists (function R.NaturalJoin _ -> true | _ -> false) rewrites)

(* E5's implementation rule produces a method scan for a full-extent
   selection and an intersection for a restricted one *)
let test_e5_implementation () =
  let impls = Derive.implementations schema (doc_spec "E5-retrieve-by-string") in
  let impl = List.hd impls in
  let ctx = Soqm_core.Engine.opt_ctx_of (Lazy.force db) in
  let full_extent =
    R.SelectCmp
      ( R.CEq,
        R.ORef "c",
        R.OConst (Value.Bool true),
        R.MapMethod
          ( "c",
            "contains_string",
            R.RRef "p",
            [ R.OConst (Value.Str "Implementation") ],
            R.Get ("p", "Paragraph") ) )
  in
  let implement sub = Soqm_physical.Plan.default_implementation sub in
  (match Pattern.matches schema impl.Rule.i_lhs full_extent with
  | b :: _ -> (
    match impl.Rule.i_build ctx b implement with
    | Some (Soqm_physical.Plan.MethodScan (_, "Paragraph", "retrieve_by_string", _)) -> ()
    | Some p -> Alcotest.failf "expected method scan:@.%s" (Soqm_physical.Plan.to_string p)
    | None -> Alcotest.fail "rule did not build")
  | [] -> Alcotest.fail "pattern did not match");
  (* restricted input: intersection *)
  let restricted_input =
    R.SelectCmp
      ( R.CEq,
        R.ORef "c",
        R.OConst (Value.Bool true),
        R.MapMethod
          ( "c",
            "contains_string",
            R.RRef "p",
            [ R.OConst (Value.Str "Implementation") ],
            R.SelectCmp
              ( R.CLe,
                R.ORef "n",
                R.OConst (Value.Int 0),
                R.MapProperty ("n", "number", "p", R.Get ("p", "Paragraph")) ) ) )
  in
  match Pattern.matches schema impl.Rule.i_lhs restricted_input with
  | b :: _ -> (
    match impl.Rule.i_build ctx b implement with
    | Some (Soqm_physical.Plan.NaturalJoin (Soqm_physical.Plan.MethodScan _, _)) -> ()
    | Some p -> Alcotest.failf "expected intersection:@.%s" (Soqm_physical.Plan.to_string p)
    | None -> Alcotest.fail "rule did not build")
  | [] -> Alcotest.fail "pattern did not match restricted input"

(* the E5 rule must not fire when the argument is not constant *)
let test_e5_requires_constant_args () =
  let impls = Derive.implementations schema (doc_spec "E5-retrieve-by-string") in
  let impl = List.hd impls in
  let ctx = Soqm_core.Engine.opt_ctx_of (Lazy.force db) in
  let variable_arg =
    R.SelectCmp
      ( R.CEq,
        R.ORef "c",
        R.OConst (Value.Bool true),
        R.MapMethod
          ( "c",
            "contains_string",
            R.RRef "p",
            [ R.ORef "other" ],
            R.MapProperty ("other", "content", "p", R.Get ("p", "Paragraph")) ) )
  in
  let built =
    List.filter_map
      (fun b ->
        impl.Rule.i_build ctx b Soqm_physical.Plan.default_implementation)
      (Pattern.matches schema impl.Rule.i_lhs variable_arg)
  in
  check Alcotest.int "no plan for variable argument" 0 (List.length built)

(* ------------------------------------------------------------------ *)
(* The specification surface language                                   *)
(* ------------------------------------------------------------------ *)

let test_spec_lang_e1 () =
  let spec =
    Spec_lang.parse_spec schema
      "[E1] FORALL p IN Paragraph: p->document() == p.section.document"
  in
  match spec with
  | Equivalence.Expr_equiv { name = "E1"; cls = "Paragraph"; var = "p"; lhs; rhs } ->
    check Alcotest.bool "lhs" true (lhs = Expr.Call (Expr.Ref "p", "document", []));
    check Alcotest.bool "rhs" true
      (rhs = Expr.Prop (Expr.Prop (Expr.Ref "p", "section"), "document"))
  | _ -> Alcotest.fail "expected an expression equivalence"

let test_spec_lang_e2 () =
  let spec =
    Spec_lang.parse_spec schema
      "[E2] FORALL d IN Document (s: STRING): d.title == s <=> d IS-IN \
       Document->select_by_index(s)"
  in
  match spec with
  | Equivalence.Cond_equiv { name = "E2"; cls = "Document"; var = "d"; lhs; rhs } ->
    check Alcotest.bool "parameter became Param" true
      (lhs = Expr.Binop (Expr.Eq, Expr.Prop (Expr.Ref "d", "title"), Expr.Param "s"));
    check Alcotest.bool "rhs call carries Param" true
      (rhs
      = Expr.Binop
          ( Expr.IsIn,
            Expr.Ref "d",
            Expr.Call (Expr.ClassObj "Document", "select_by_index", [ Expr.Param "s" ])
          ))
  | _ -> Alcotest.fail "expected a condition equivalence"

let test_spec_lang_implication () =
  let spec =
    Spec_lang.parse_spec schema
      "FORALL p IN Paragraph: p->wordCount() > 500 => p IS-IN \
       p->document().largeParagraphs"
  in
  match spec with
  | Equivalence.Implication { cls = "Paragraph"; var = "p"; _ } -> ()
  | _ -> Alcotest.fail "expected an implication"

let test_spec_lang_query () =
  let spec =
    Spec_lang.parse_spec schema
      "[E5] QUERY p IN Paragraph (s: STRING): p->contains_string(s) == \
       Paragraph->retrieve_by_string(s)"
  in
  match spec with
  | Equivalence.Query_method
      { name = "E5"; cls = "Paragraph"; meth_cls = "Paragraph";
        meth = "retrieve_by_string"; args = [ Equivalence.Arg_param "s" ]; _ } ->
    ()
  | _ -> Alcotest.fail "expected a query/method equivalence"

let test_spec_lang_matches_builtin_knowledge () =
  (* the textual specs derive the same rules as the hand-built ones *)
  let text =
    "[E1] FORALL p IN Paragraph: p->document() == p.section.document\n\
     [E2] FORALL d IN Document (s: STRING): d.title == s <=> d IS-IN \
     Document->select_by_index(s)\n\
     [E5] QUERY p IN Paragraph (s: STRING): p->contains_string(s) == \
     Paragraph->retrieve_by_string(s)"
  in
  let specs = Spec_lang.parse_specs schema text in
  check Alcotest.int "three specs" 3 (List.length specs);
  let t_parsed, i_parsed = Derive.rules_of_specs schema specs in
  check Alcotest.bool "transformations derived" true (List.length t_parsed >= 3);
  check Alcotest.int "one implementation" 1 (List.length i_parsed);
  (* the E1 rule from the parsed spec rewrites exactly like the
     hand-built one *)
  let term =
    R.MapMethod ("d", "document", R.RRef "p", [], R.Get ("p", "Paragraph"))
  in
  let rewrites_of rules =
    List.concat_map (fun r -> Rule.root_rewrites schema r term) rules
    |> List.map R.alpha_canonical
    |> List.sort_uniq R.compare
  in
  let hand = Derive.transformations schema (doc_spec "E1-document-path") in
  let e1_parsed =
    List.filter
      (fun (r : Rule.transformation) ->
        String.length r.Rule.t_name >= 2 && String.sub r.Rule.t_name 0 2 = "E1")
      t_parsed
  in
  check Alcotest.bool "identical rewrites" true
    (rewrites_of hand = rewrites_of e1_parsed)

let test_spec_lang_errors () =
  let bad name src =
    Alcotest.match_raises name
      (function Spec_lang.Error _ -> true | _ -> false)
      (fun () -> ignore (Spec_lang.parse_spec schema src))
  in
  bad "unknown class" "FORALL x IN Nowhere: x == x";
  bad "missing connective" "FORALL p IN Paragraph: p.number";
  bad "non-boolean iff" "FORALL p IN Paragraph: p.number <=> p.number";
  bad "unknown property" "FORALL p IN Paragraph: p.nope == p.number";
  bad "query rhs not a call"
    "QUERY p IN Paragraph (s: STRING): p->contains_string(s) == s";
  bad "query arg not a parameter"
    "QUERY p IN Paragraph: p->contains_string('x') == \
     Paragraph->retrieve_by_string(p)";
  bad "bad type" "FORALL p IN Paragraph (s: NOPE): p.number == s"

let test_spec_lang_end_to_end () =
  (* an engine generated from textual knowledge optimizes Q like the
     builtin one *)
  let db = F.tiny_db () in
  let text =
    "[E1] FORALL p IN Paragraph: p->document() == p.section.document\n\
     [E2] FORALL d IN Document (s: STRING): d.title == s <=> d IS-IN \
     Document->select_by_index(s)\n\
     [E5] QUERY p IN Paragraph (s: STRING): p->contains_string(s) == \
     Paragraph->retrieve_by_string(s)"
  in
  let specs = Spec_lang.parse_specs schema text in
  let eng =
    Soqm_core.Engine.generate
      ~classes:[ Soqm_core.Doc_knowledge.Inverse_links ]
      ~extra_specs:specs db
  in
  let q =
    "ACCESS p FROM p IN Paragraph WHERE p->contains_string('Implementation') \
     AND (p->document()).title == 'Query Optimization'"
  in
  let opt = Soqm_core.Engine.run_optimized eng q in
  let naive = Soqm_core.Engine.run_naive db q in
  check F.relation "same result" naive.Soqm_core.Engine.result
    opt.Soqm_core.Engine.result;
  check Alcotest.bool "cheaper" true
    (Soqm_vml.Counters.total_cost opt.Soqm_core.Engine.counters
    < Soqm_vml.Counters.total_cost naive.Soqm_core.Engine.counters)

(* ------------------------------------------------------------------ *)
(* The path method generator (Section 5.2 / [21])                       *)
(* ------------------------------------------------------------------ *)

let test_pmg_generates_document () =
  let g = Pmg.generate schema ~cls:"Paragraph" ~name:"doc2" ~path:[ "section"; "document" ] in
  check Alcotest.bool "return type" true
    (g.Pmg.meth_sig.Schema.returns = Vtype.TObj "Document");
  check Alcotest.bool "body navigates from SELF" true
    (g.Pmg.body = Expr.Prop (Expr.Prop (Expr.Self, "section"), "document"));
  (* the generated equivalence is the hand-written E1 (up to names) *)
  match g.Pmg.equivalence with
  | Equivalence.Expr_equiv { cls = "Paragraph"; lhs = Expr.Call (_, "doc2", []); rhs; _ } ->
    check Alcotest.bool "rhs is the path" true
      (rhs = Expr.Prop (Expr.Prop (Expr.Ref "x", "section"), "document"))
  | _ -> Alcotest.fail "expected an expression equivalence"

let test_pmg_set_lifted_path () =
  let g =
    Pmg.generate schema ~cls:"Document" ~name:"paras2"
      ~path:[ "sections"; "paragraphs" ]
  in
  check Alcotest.bool "lifted set return" true
    (g.Pmg.meth_sig.Schema.returns = Vtype.TSet (Vtype.TObj "Paragraph"))

let test_pmg_errors () =
  let bad name f =
    Alcotest.match_raises name
      (function Pmg.Error _ -> true | _ -> false)
      (fun () -> ignore (f ()))
  in
  bad "empty path" (fun () -> Pmg.generate schema ~cls:"Paragraph" ~name:"m" ~path:[]);
  bad "unknown class" (fun () ->
      Pmg.generate schema ~cls:"Nope" ~name:"m" ~path:[ "x" ]);
  bad "unknown property" (fun () ->
      Pmg.generate schema ~cls:"Paragraph" ~name:"m" ~path:[ "nope" ]);
  bad "navigating a scalar" (fun () ->
      Pmg.generate schema ~cls:"Paragraph" ~name:"m" ~path:[ "number"; "x" ]);
  bad "name clash on declare" (fun () ->
      let g = Pmg.generate schema ~cls:"Paragraph" ~name:"document" ~path:[ "section"; "document" ] in
      Pmg.add_to_schema schema ~cls:"Paragraph" g)

let test_pmg_end_to_end () =
  (* generate a brand-new path method on a fresh schema, install it, and
     watch the optimizer treat it like E1 *)
  let g =
    Pmg.generate Soqm_core.Doc_schema.schema ~cls:"Paragraph" ~name:"docTitle"
      ~path:[ "section"; "document"; "title" ]
  in
  let schema' =
    Pmg.add_to_schema Soqm_core.Doc_schema.schema ~cls:"Paragraph" g
  in
  let d = Soqm_core.Db.create ~schema:schema' ~params:F.small_params () in
  Pmg.register d.Soqm_core.Db.store ~cls:"Paragraph" g;
  let eng =
    Soqm_core.Engine.generate ~extra_specs:[ g.Pmg.equivalence ] d
  in
  let q =
    "ACCESS p FROM p IN Paragraph WHERE p->docTitle() == 'Query Optimization'"
  in
  let naive = Soqm_core.Engine.run_naive d q in
  let opt = Soqm_core.Engine.run_optimized eng q in
  check F.relation "generated method optimized soundly"
    naive.Soqm_core.Engine.result opt.Soqm_core.Engine.result;
  check Alcotest.bool "nonempty" true
    (Relation.cardinality opt.Soqm_core.Engine.result > 0);
  (* the equivalence opens the index path: far cheaper than calling the
     method per paragraph *)
  check Alcotest.bool "equivalence exploited" true
    (Soqm_vml.Counters.total_cost opt.Soqm_core.Engine.counters
    < Soqm_vml.Counters.total_cost naive.Soqm_core.Engine.counters /. 3.)

let () =
  Alcotest.run "semantics"
    [
      ( "validation",
        [
          F.case "document knowledge valid" test_validate_good_specs;
          F.case "unknown class" test_validate_unknown_class;
          F.case "foreign reference" test_validate_foreign_ref;
          F.case "non-boolean condition" test_validate_non_boolean_cond;
          F.case "query/method return type" test_validate_query_method_return;
        ] );
      ("inverse-links", [ F.case "derivation" test_from_inverse_links ]);
      ( "derivation",
        [
          F.case "rule counts" test_derive_counts;
          F.case "SELF rejected" test_derive_rejects_self;
          F.case "E1 both directions" test_e1_rule_rewrites_both_ways;
          F.case "E1 class constraint" test_e1_rule_requires_class;
          F.case "E2 parameter forwarding" test_e2_rule_parametrized;
          F.case "semantics preservation" test_derived_rules_preserve_semantics;
          F.case "implication shape" test_implication_shape;
          F.case "E5 implementation" test_e5_implementation;
          F.case "E5 constant arguments" test_e5_requires_constant_args;
        ] );
      ( "path-method-generator",
        [
          F.case "generates document()" test_pmg_generates_document;
          F.case "set-lifted paths" test_pmg_set_lifted_path;
          F.case "errors" test_pmg_errors;
          F.case "end to end" test_pmg_end_to_end;
        ] );
      ( "spec-language",
        [
          F.case "E1 form" test_spec_lang_e1;
          F.case "E2 form with parameter" test_spec_lang_e2;
          F.case "implication form" test_spec_lang_implication;
          F.case "query form" test_spec_lang_query;
          F.case "matches hand-built knowledge" test_spec_lang_matches_builtin_knowledge;
          F.case "errors" test_spec_lang_errors;
          F.case "end to end" test_spec_lang_end_to_end;
        ] );
    ]
