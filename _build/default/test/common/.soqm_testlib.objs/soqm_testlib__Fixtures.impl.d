test/common/fixtures.ml: Alcotest Lazy List Object_store Soqm_algebra Soqm_core Soqm_vml Value
