test/common/gen.ml: Expr General List Printf QCheck2 Soqm_algebra Soqm_vml Value
