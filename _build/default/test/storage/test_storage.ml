(* Tests for the access-path substrates: tokenizer, inverted text index,
   hash index, statistics. *)

open Soqm_vml
open Soqm_ir
open Soqm_storage
module F = Soqm_testlib.Fixtures

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Tokenizer                                                           *)
(* ------------------------------------------------------------------ *)

let test_words () =
  check (Alcotest.list Alcotest.string) "basic split"
    [ "the"; "query"; "optimizer" ]
    (Tokenizer.words "The  query, optimizer!");
  check (Alcotest.list Alcotest.string) "digits kept" [ "a1"; "2b" ]
    (Tokenizer.words "a1 2b");
  check (Alcotest.list Alcotest.string) "empty" [] (Tokenizer.words " .,;! ")

let test_vocabulary () =
  check (Alcotest.list Alcotest.string) "sorted, unique"
    [ "a"; "b" ]
    (Tokenizer.vocabulary "b a B A b")

let test_contains_word () =
  check Alcotest.bool "case-insensitive whole word" true
    (Tokenizer.contains_word "The Implementation section" "implementation");
  check Alcotest.bool "no substring match" false
    (Tokenizer.contains_word "reimplementation" "implementation");
  check Alcotest.bool "absent" false (Tokenizer.contains_word "abc" "x")

let prop_tokenizer_agrees_with_index =
  QCheck2.Test.make ~count:200
    ~name:"contains_word agrees with vocabulary membership"
    QCheck2.Gen.(pair (string_size ~gen:printable (int_range 0 30)) (string_size ~gen:(char_range 'a' 'e') (int_range 1 3)))
    (fun (text, w) ->
      Tokenizer.contains_word text w
      = List.mem (String.lowercase_ascii w) (Tokenizer.vocabulary text))

(* ------------------------------------------------------------------ *)
(* Inverted index                                                      *)
(* ------------------------------------------------------------------ *)

let test_inverted_basic () =
  let idx = Inverted_index.create () in
  Inverted_index.add idx ~key:1 ~text:"alpha beta gamma";
  Inverted_index.add idx ~key:2 ~text:"beta delta";
  check (Alcotest.list Alcotest.int) "single word"
    [ 1; 2 ]
    (List.sort compare (Inverted_index.lookup idx "beta"));
  check (Alcotest.list Alcotest.int) "case insensitive"
    [ 1 ]
    (Inverted_index.lookup idx "ALPHA");
  check (Alcotest.list Alcotest.int) "unknown word" [] (Inverted_index.lookup idx "nope");
  check Alcotest.int "posting count" 2 (Inverted_index.posting_count idx "beta")

let test_inverted_conjunctive () =
  let idx = Inverted_index.create () in
  Inverted_index.add idx ~key:1 ~text:"alpha beta";
  Inverted_index.add idx ~key:2 ~text:"alpha gamma";
  check (Alcotest.list Alcotest.int) "conjunction"
    [ 1 ]
    (Inverted_index.lookup_all idx "beta alpha");
  check (Alcotest.list Alcotest.int) "empty query" [] (Inverted_index.lookup_all idx " ")

let test_inverted_remove_clear () =
  let idx = Inverted_index.create () in
  Inverted_index.add idx ~key:1 ~text:"alpha beta";
  Inverted_index.remove idx ~key:1 ~text:"alpha beta";
  check (Alcotest.list Alcotest.int) "removed" [] (Inverted_index.lookup idx "alpha");
  check Alcotest.int "words dropped" 0 (Inverted_index.word_count idx);
  Inverted_index.add idx ~key:2 ~text:"x y";
  Inverted_index.clear idx;
  check Alcotest.int "cleared" 0 (Inverted_index.word_count idx)

let prop_inverted_index_complete =
  QCheck2.Test.make ~count:100
    ~name:"inverted index finds exactly the matching documents"
    QCheck2.Gen.(
      list_size (int_range 1 10)
        (string_size ~gen:(char_range 'a' 'd') (int_range 1 6)))
    (fun texts ->
      let idx = Inverted_index.create () in
      List.iteri (fun i text -> Inverted_index.add idx ~key:i ~text) texts;
      List.for_all
        (fun w ->
          let via_index = List.sort compare (Inverted_index.lookup idx w) in
          let via_scan =
            List.mapi (fun i text -> (i, text)) texts
            |> List.filter (fun (_, text) -> Tokenizer.contains_word text w)
            |> List.map fst
          in
          via_index = via_scan)
        [ "a"; "ab"; "abc"; "d" ])

(* ------------------------------------------------------------------ *)
(* Hash index                                                          *)
(* ------------------------------------------------------------------ *)

let oid i = Oid.make ~cls:"C" ~id:i

let test_hash_index_basic () =
  let idx = Hash_index.create ~cls:"C" ~prop:"p" in
  let counters = Counters.create () in
  Hash_index.insert idx (Value.Str "x") (oid 1);
  Hash_index.insert idx (Value.Str "x") (oid 2);
  Hash_index.insert idx (Value.Str "y") (oid 3);
  check Alcotest.int "probe x" 2
    (List.length (Hash_index.probe idx counters (Value.Str "x")));
  check Alcotest.int "probe missing" 0
    (List.length (Hash_index.probe idx counters (Value.Str "z")));
  check Alcotest.int "distinct keys" 2 (Hash_index.distinct_keys idx);
  check Alcotest.int "entries" 3 (Hash_index.entries idx);
  check Alcotest.int "probes charged" 2 (Counters.index_probes counters)

let test_hash_index_delete () =
  let idx = Hash_index.create ~cls:"C" ~prop:"p" in
  let counters = Counters.create () in
  Hash_index.insert idx (Value.Str "x") (oid 1);
  Hash_index.delete idx (Value.Str "x") (oid 1);
  check Alcotest.int "deleted" 0
    (List.length (Hash_index.probe idx counters (Value.Str "x")));
  check Alcotest.int "bucket dropped" 0 (Hash_index.distinct_keys idx)

let test_hash_index_build_from_store () =
  let db = F.tiny_db () in
  let idx = Hash_index.create ~cls:"Document" ~prop:"author" in
  Hash_index.build idx db.Soqm_core.Db.store;
  check Alcotest.int "all documents indexed"
    (Object_store.extent_size db.Soqm_core.Db.store "Document")
    (Hash_index.entries idx);
  (* rebuilding is idempotent *)
  Hash_index.build idx db.Soqm_core.Db.store;
  check Alcotest.int "idempotent"
    (Object_store.extent_size db.Soqm_core.Db.store "Document")
    (Hash_index.entries idx)

let prop_hash_index_agrees_with_scan =
  QCheck2.Test.make ~count:100 ~name:"index probe = extent filter"
    QCheck2.Gen.(list_size (int_range 0 30) (int_range 0 5))
    (fun values ->
      let idx = Hash_index.create ~cls:"C" ~prop:"p" in
      let counters = Counters.create () in
      List.iteri (fun i v -> Hash_index.insert idx (Value.Int v) (oid i)) values;
      List.for_all
        (fun probe ->
          let via_index =
            List.length (Hash_index.probe idx counters (Value.Int probe))
          in
          let via_scan = List.length (List.filter (( = ) probe) values) in
          via_index = via_scan)
        [ 0; 1; 2; 3; 4; 5; 6 ])

(* ------------------------------------------------------------------ *)
(* Sorted index                                                        *)
(* ------------------------------------------------------------------ *)

let test_sorted_index_ranges () =
  let idx = Sorted_index.create ~cls:"C" ~prop:"p" in
  let counters = Counters.create () in
  List.iteri (fun i v -> Sorted_index.insert idx (Value.Int v) (oid i)) [ 5; 1; 9; 3; 7 ];
  let probe ~lo ~hi = List.length (Sorted_index.probe_range idx counters ~lo ~hi) in
  check Alcotest.int "unbounded" 5
    (probe ~lo:Sorted_index.Unbounded ~hi:Sorted_index.Unbounded);
  check Alcotest.int "upper exclusive" 2
    (probe ~lo:Sorted_index.Unbounded ~hi:(Sorted_index.Exclusive (Value.Int 5)));
  check Alcotest.int "upper inclusive" 3
    (probe ~lo:Sorted_index.Unbounded ~hi:(Sorted_index.Inclusive (Value.Int 5)));
  check Alcotest.int "lower exclusive" 2
    (probe ~lo:(Sorted_index.Exclusive (Value.Int 5)) ~hi:Sorted_index.Unbounded);
  check Alcotest.int "window" 3
    (probe
       ~lo:(Sorted_index.Inclusive (Value.Int 3))
       ~hi:(Sorted_index.Inclusive (Value.Int 7)));
  check Alcotest.int "empty window" 0
    (probe
       ~lo:(Sorted_index.Exclusive (Value.Int 9))
       ~hi:Sorted_index.Unbounded);
  check Alcotest.int "point probe" 1
    (List.length (Sorted_index.probe_eq idx counters (Value.Int 7)))

let test_sorted_index_maintenance () =
  let idx = Sorted_index.create ~cls:"C" ~prop:"p" in
  let counters = Counters.create () in
  Sorted_index.insert idx (Value.Int 1) (oid 1);
  Sorted_index.insert idx (Value.Int 1) (oid 1);
  check Alcotest.int "no duplicate entries" 1 (Sorted_index.entries idx);
  Sorted_index.delete idx (Value.Int 1) (oid 1);
  check Alcotest.int "deleted" 0
    (List.length (Sorted_index.probe_eq idx counters (Value.Int 1)))

let test_sorted_index_build () =
  let db = F.tiny_db () in
  let counters = Counters.create () in
  let idx = db.Soqm_core.Db.word_count_index in
  let store = db.Soqm_core.Db.store in
  let via_index =
    Sorted_index.probe_range idx counters
      ~lo:(Sorted_index.Exclusive (Value.Int 500))
      ~hi:Sorted_index.Unbounded
    |> List.sort Oid.compare
  in
  let via_scan =
    List.filter
      (fun p ->
        match Object_store.peek_prop store p "word_count" with
        | Value.Int n -> n > 500
        | _ -> false)
      (Object_store.extent store "Paragraph")
    |> List.sort Oid.compare
  in
  check Alcotest.bool "index agrees with scan" true (via_index = via_scan);
  check Alcotest.bool "nonempty" true (via_index <> [])

let prop_sorted_index_agrees =
  QCheck2.Test.make ~count:100 ~name:"range probe = filtered scan"
    QCheck2.Gen.(
      pair (list_size (int_range 0 25) (int_range 0 20)) (int_range 0 20))
    (fun (values, threshold) ->
      let idx = Sorted_index.create ~cls:"C" ~prop:"p" in
      let counters = Counters.create () in
      List.iteri (fun i v -> Sorted_index.insert idx (Value.Int v) (oid i)) values;
      let via_index =
        List.length
          (Sorted_index.probe_range idx counters
             ~lo:(Sorted_index.Inclusive (Value.Int threshold))
             ~hi:Sorted_index.Unbounded)
      in
      via_index = List.length (List.filter (fun v -> v >= threshold) values))

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

let test_statistics_cardinalities () =
  let db = F.tiny_db () in
  let stats = Statistics.collect db.Soqm_core.Db.store in
  let p = F.tiny_params in
  check (Alcotest.float 0.1) "documents"
    (float_of_int p.Soqm_core.Datagen.n_docs)
    (Statistics.cardinality stats "Document");
  check (Alcotest.float 0.1) "paragraphs"
    (float_of_int
       (p.Soqm_core.Datagen.n_docs * p.Soqm_core.Datagen.sections_per_doc
      * p.Soqm_core.Datagen.paras_per_section))
    (Statistics.cardinality stats "Paragraph");
  check (Alcotest.float 0.01) "unknown class" 0.0 (Statistics.cardinality stats "Nope")

let test_statistics_fanout_distinct () =
  let db = F.tiny_db () in
  let stats = Statistics.collect db.Soqm_core.Db.store in
  let p = F.tiny_params in
  check (Alcotest.float 0.1) "sections per document"
    (float_of_int p.Soqm_core.Datagen.sections_per_doc)
    (Statistics.fanout stats ~cls:"Document" ~prop:"sections");
  check (Alcotest.float 0.1) "paragraphs per section"
    (float_of_int p.Soqm_core.Datagen.paras_per_section)
    (Statistics.fanout stats ~cls:"Section" ~prop:"paragraphs");
  (* titles are unique per document *)
  check (Alcotest.float 0.1) "distinct titles"
    (float_of_int p.Soqm_core.Datagen.n_docs)
    (Statistics.distinct stats ~cls:"Document" ~prop:"title");
  check (Alcotest.float 0.001) "eq selectivity"
    (1.0 /. float_of_int p.Soqm_core.Datagen.n_docs)
    (Statistics.eq_selectivity stats ~cls:"Document" ~prop:"title")

let test_statistics_method_metadata () =
  let db = F.tiny_db () in
  let stats = db.Soqm_core.Db.stats in
  check (Alcotest.float 0.001) "declared selectivity"
    Soqm_core.Doc_schema.selectivity_contains_string
    (Statistics.method_selectivity stats ~cls:"Paragraph" ~meth:"contains_string");
  check (Alcotest.float 0.001) "unknown method default" 0.5
    (Statistics.method_selectivity stats ~cls:"Paragraph" ~meth:"document");
  check Alcotest.bool "result card positive" true
    (Statistics.method_result_card stats ~cls:"Paragraph" ~meth:"retrieve_by_string"
    > 0.)

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

let test_counters_snapshot_independent () =
  let c = Counters.create () in
  Counters.charge_object_fetch c;
  Counters.charge_method_call c ~meth:"m" ~cost:3.0;
  let snap = Counters.snapshot c in
  Counters.charge_object_fetch c;
  Counters.charge_method_call c ~meth:"m" ~cost:3.0;
  check Alcotest.int "snapshot frozen fetches" 1 (Counters.objects_fetched snap);
  check Alcotest.int "snapshot frozen calls" 1 (Counters.method_call_count snap "m");
  check Alcotest.int "original moved on" 2 (Counters.objects_fetched c);
  Counters.reset c;
  check Alcotest.int "reset" 0 (Counters.objects_fetched c);
  check (Alcotest.float 0.001) "reset cost" 0.0 (Counters.charged_cost c)

let test_counters_total_cost_monotone () =
  let c = Counters.create () in
  let before = Counters.total_cost c in
  Counters.charge_index_probe c;
  Counters.charge_tuple c;
  Counters.charge_property_read c;
  check Alcotest.bool "total grows" true (Counters.total_cost c > before)

let () =
  Alcotest.run "storage"
    [
      ( "tokenizer",
        [
          F.case "words" test_words;
          F.case "vocabulary" test_vocabulary;
          F.case "contains_word" test_contains_word;
          QCheck_alcotest.to_alcotest prop_tokenizer_agrees_with_index;
        ] );
      ( "inverted-index",
        [
          F.case "basic" test_inverted_basic;
          F.case "conjunctive" test_inverted_conjunctive;
          F.case "remove & clear" test_inverted_remove_clear;
          QCheck_alcotest.to_alcotest prop_inverted_index_complete;
        ] );
      ( "hash-index",
        [
          F.case "basic" test_hash_index_basic;
          F.case "delete" test_hash_index_delete;
          F.case "build from store" test_hash_index_build_from_store;
          QCheck_alcotest.to_alcotest prop_hash_index_agrees_with_scan;
        ] );
      ( "sorted-index",
        [
          F.case "range probes" test_sorted_index_ranges;
          F.case "maintenance" test_sorted_index_maintenance;
          F.case "build from store" test_sorted_index_build;
          QCheck_alcotest.to_alcotest prop_sorted_index_agrees;
        ] );
      ( "statistics",
        [
          F.case "cardinalities" test_statistics_cardinalities;
          F.case "fanout & distinct" test_statistics_fanout_distinct;
          F.case "method metadata" test_statistics_method_metadata;
        ] );
      ( "counters",
        [
          F.case "snapshot independence" test_counters_snapshot_independent;
          F.case "total cost monotone" test_counters_total_cost_monotone;
        ] );
    ]
