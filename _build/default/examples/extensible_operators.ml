(* Methods as algebraic operators (Section 3.2, Example 7): a
   system-defined class Set_object whose instances store sets of object
   identifiers and whose methods select/map are bulk algebra operators —
   "methods like select and map may be used as physical implementations
   of query algebra expressions".

   The paper parametrizes them with VML_Method values; here the method to
   apply is named by a string and dispatched through the regular method
   runtime.

   Run with: dune exec examples/extensible_operators.exe *)

open Soqm_vml

let schema =
  let open Schema in
  Schema.make
    [
      cls "Employee"
        ~properties:
          [ prop "name" Vtype.TString; prop "salary" Vtype.TInt ]
        ~inst_methods:
          [
            meth "well_paid" [] Vtype.TBool ~selectivity:0.3;
            meth "boss" [] (Vtype.TObj "Employee");
          ];
      cls "Set_object"
        ~properties:[ prop "elements" (Vtype.TSet Vtype.TAnyObj) ]
        ~inst_methods:
          [
            meth "select" [ ("m1", Vtype.TString) ] (Vtype.TObj "Set_object");
            meth "map" [ ("m2", Vtype.TString) ] (Vtype.TObj "Set_object");
            meth "contents" [] (Vtype.TSet Vtype.TAnyObj);
          ];
    ]

let install store =
  (* well_paid() { RETURN salary > 1000; } *)
  Object_store.register_inst_method store ~cls:"Employee" ~meth:"well_paid"
    (Object_store.Body
       Expr.(Binop (Gt, Prop (Self, "salary"), Const (Value.Int 1000))));
  (* boss() — everyone reports to employee #0 *)
  Object_store.register_inst_method store ~cls:"Employee" ~meth:"boss"
    (Object_store.Native
       (fun store _self _args ->
         match Object_store.extent store "Employee" with
         | boss :: _ -> Value.Obj boss
         | [] -> Value.Null));
  let elements store self =
    match self with
    | Value.Obj oid -> Value.set_elements (Object_store.get_prop store oid "elements")
    | _ -> raise (Runtime.Error "Set_object method on non-object")
  in
  let fresh store members =
    Value.Obj
      (Object_store.create_object store ~cls:"Set_object"
         [ ("elements", Value.set members) ])
  in
  (* select(m1) keeps the elements for which method m1 yields TRUE... *)
  Object_store.register_inst_method store ~cls:"Set_object" ~meth:"select"
    (Object_store.Native
       (fun store self args ->
         match args with
         | [ Value.Str m1 ] ->
           fresh store
             (List.filter
                (fun e -> Value.truthy (Runtime.invoke store e m1 []))
                (elements store self))
         | _ -> raise (Runtime.Error "select expects a method name")));
  (* ... and map(m2) applies m2 to every element. *)
  Object_store.register_inst_method store ~cls:"Set_object" ~meth:"map"
    (Object_store.Native
       (fun store self args ->
         match args with
         | [ Value.Str m2 ] ->
           fresh store (List.map (fun e -> Runtime.invoke store e m2 []) (elements store self))
         | _ -> raise (Runtime.Error "map expects a method name")));
  Object_store.register_inst_method store ~cls:"Set_object" ~meth:"contents"
    (Object_store.Native
       (fun store self _args -> Value.set (elements store self)))

let () =
  let store = Object_store.create schema in
  install store;
  let names = [ "ada"; "grace"; "edsger"; "barbara"; "donald" ] in
  List.iteri
    (fun i name ->
      ignore
        (Object_store.create_object store ~cls:"Employee"
           [ ("name", Value.Str name); ("salary", Value.Int (600 + (i * 300))) ]))
    names;
  let everyone =
    Object_store.create_object store ~cls:"Set_object"
      [
        ( "elements",
          Value.set
            (List.map (fun o -> Value.Obj o) (Object_store.extent store "Employee"))
        );
      ]
  in
  (* select<well_paid> then map<boss>: an algebra expression evaluated
     entirely through methods of Set_object *)
  let result =
    Runtime.eval
      (Runtime.env store)
      Expr.(
        Call
          ( Call
              ( Call (Const (Value.Obj everyone), "select", [ Const (Value.Str "well_paid") ]),
                "map",
                [ Const (Value.Str "boss") ] ),
            "contents",
            [] ))
  in
  Format.printf
    "everyone -> select(well_paid) -> map(boss) -> contents():@.  %a@."
    Value.pp result;
  (* the same computation through the query algebra, as a check *)
  let algebra =
    Soqm_algebra.General.Map
      ( "b",
        Expr.(Call (Ref "e", "boss", [])),
        Soqm_algebra.General.Select
          ( Expr.(Call (Ref "e", "well_paid", [])),
            Soqm_algebra.General.Get ("e", "Employee") ) )
  in
  let rel = Soqm_algebra.Eval.run store algebra in
  Format.printf "via the query algebra: %d qualifying employee(s)@."
    (Soqm_algebra.Relation.cardinality rel);
  assert (
    Value.equal result
      (Value.set (Soqm_algebra.Relation.column rel "b")));
  Printf.printf "method-level and algebra-level evaluation agree.\n"
