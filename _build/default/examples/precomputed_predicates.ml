(* Implication rules and precomputed information (Section 4.2): the
   schema guarantees

     p IN Paragraph: p->wordCount() > 500
                     => p IS-IN p->document().largeParagraphs

   so a query with the expensive wordCount predicate can first be
   restricted to the precomputed largeParagraphs sets — the implication
   is "very interesting for finding efficient execution plans in the
   presence of precomputed information".

   Run with: dune exec examples/precomputed_predicates.exe *)

open Soqm_vml
open Soqm_core

let query = "ACCESS p FROM p IN Paragraph WHERE p->wordCount() > 500"

let () =
  Printf.printf "query:\n  %s\n\n" query;
  Printf.printf "%12s  %14s  %14s  %16s\n" "large frac" "without impl"
    "with impl" "wordCount calls";
  List.iter
    (fun large_fraction ->
      let db =
        Db.create
          ~params:{ Datagen.default with n_docs = 40; large_fraction }
          ()
      in
      let with_impl = Engine.generate db in
      let without_impl =
        Engine.generate
          ~classes:
            Doc_knowledge.
              [ Path_methods; Index_equivalences; Inverse_links; Query_method_equivs ]
          db
      in
      let r_with = Engine.run_optimized with_impl query in
      let r_without = Engine.run_optimized without_impl query in
      assert (Soqm_algebra.Relation.equal r_with.Engine.result r_without.Engine.result);
      Printf.printf "%11.0f%%  %14.1f  %14.1f  %7d -> %6d\n"
        (large_fraction *. 100.)
        (Counters.total_cost r_without.Engine.counters)
        (Counters.total_cost r_with.Engine.counters)
        (Counters.method_call_count r_without.Engine.counters "Paragraph.wordCount")
        (Counters.method_call_count r_with.Engine.counters "Paragraph.wordCount"))
    [ 0.01; 0.10; 0.50 ];
  Printf.printf
    "\nthe implication lets the optimizer check the cheap precomputed\n\
     membership first, calling the expensive method only on candidates.\n"
