examples/quickstart.ml: Datagen Db Engine Format Printf Soqm_algebra Soqm_core Soqm_optimizer Soqm_physical Soqm_vml
