examples/quickstart.mli:
