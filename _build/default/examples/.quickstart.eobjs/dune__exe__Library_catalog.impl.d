examples/library_catalog.ml: Counters Format Hash_index List Object_store Printf Runtime Soqm_algebra Soqm_core Soqm_optimizer Soqm_physical Soqm_semantics Soqm_storage Soqm_vml Soqm_vql Value
