examples/inverse_links.mli:
