examples/precomputed_predicates.mli:
