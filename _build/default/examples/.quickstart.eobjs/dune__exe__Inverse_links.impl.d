examples/inverse_links.ml: Counters Datagen Db Doc_knowledge Doc_schema Engine Format List Object_store Oid Printf Soqm_algebra Soqm_core Soqm_semantics Soqm_vml Value
