examples/document_retrieval.mli:
