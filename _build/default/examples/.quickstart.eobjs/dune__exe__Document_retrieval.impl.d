examples/document_retrieval.ml: Datagen Db Doc_knowledge Engine Format List Printf Soqm_algebra Soqm_core Soqm_optimizer Soqm_semantics Soqm_vml
