examples/precomputed_predicates.ml: Counters Datagen Db Doc_knowledge Engine List Printf Soqm_algebra Soqm_core Soqm_vml
