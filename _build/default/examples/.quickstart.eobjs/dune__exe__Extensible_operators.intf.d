examples/extensible_operators.mli:
