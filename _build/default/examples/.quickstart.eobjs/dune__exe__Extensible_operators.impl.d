examples/extensible_operators.ml: Expr Format List Object_store Printf Runtime Schema Soqm_algebra Soqm_vml Value Vtype
