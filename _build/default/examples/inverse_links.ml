(* Inverse links as a source of semantic knowledge (Sections 4.2 and
   5.1): the redundant structures object-oriented schemas keep for
   navigation are maintained consistent by the store, and the
   equivalences they induce (E3, E4) are derived automatically from the
   schema — no designer input needed.

   Run with: dune exec examples/inverse_links.exe *)

open Soqm_vml
open Soqm_core

let () =
  (* The equivalences below come from the inverse-link declarations of
     the document schema alone. *)
  Printf.printf "equivalences derived from the schema's inverse links:\n";
  List.iter
    (fun spec -> Format.printf "  %a@." Soqm_semantics.Equivalence.pp spec)
    (Soqm_semantics.Equivalence.from_inverse_links Doc_schema.schema);

  let db = Db.create ~params:{ Datagen.default with n_docs = 20 } () in
  let store = db.Db.store in

  (* The store maintains the redundancy: moving a section from one
     document to another updates both 'sections' sets. *)
  let docs = Object_store.extent store "Document" in
  let d1 = List.nth docs 0 and d2 = List.nth docs 1 in
  let sec =
    match Object_store.peek_prop store d1 "sections" with
    | Value.Set (Value.Obj s :: _) -> s
    | _ -> failwith "expected sections"
  in
  Printf.printf "\nmoving %s from %s to %s...\n" (Oid.to_string sec)
    (Oid.to_string d1) (Oid.to_string d2);
  Object_store.set_prop store sec "document" (Value.Obj d2);
  let count d =
    match Object_store.peek_prop store d "sections" with
    | Value.Set xs -> List.length xs
    | _ -> 0
  in
  Printf.printf "  %s now has %d sections, %s has %d (inverse maintained)\n"
    (Oid.to_string d1) (count d1) (Oid.to_string d2) (count d2);
  Db.refresh db;

  (* A membership query that the inverse-link knowledge turns around:
     find paragraphs whose document is among the ones a title probe
     returns.  Without E3/E4 the optimizer must navigate upwards from
     every paragraph; with them it navigates downwards from the few
     selected documents. *)
  let query =
    "ACCESS p FROM p IN Paragraph WHERE p.section.document IS-IN \
     Document->select_by_index('Query Optimization')"
  in
  Printf.printf "\nquery:\n  %s\n\n" query;
  let with_links = Engine.generate db in
  let without_links =
    Engine.generate
      ~classes:
        Doc_knowledge.
          [ Path_methods; Index_equivalences; Query_method_equivs; Implications ]
      db
  in
  let r1 = Engine.run_optimized with_links query in
  let r2 = Engine.run_optimized without_links query in
  assert (Soqm_algebra.Relation.equal r1.Engine.result r2.Engine.result);
  Printf.printf "optimized with inverse-link knowledge:    cost %8.1f\n"
    (Counters.total_cost r1.Engine.counters);
  Printf.printf "optimized without inverse-link knowledge: cost %8.1f\n"
    (Counters.total_cost r2.Engine.counters);
  Printf.printf "(%d paragraph(s) in the result either way)\n"
    (Soqm_algebra.Relation.cardinality r1.Engine.result)
