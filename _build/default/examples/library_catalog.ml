(* A complete custom application domain, end to end: schema written in
   the VML surface syntax, method knowledge written in the specification
   language, external access paths registered as natives, and a
   per-schema optimizer generated for it — nothing here mentions the
   paper's document schema.

   Run with: dune exec examples/library_catalog.exe *)

open Soqm_vml
open Soqm_storage

let schema_text =
  {|
CLASS Author
  INSTTYPE OBJECTTYPE
    PROPERTIES:
      name: STRING;
      books: {Book} INVERSE Book.author;
  END;
END;

CLASS Book
  OWNTYPE OBJECTTYPE
    METHODS:
      by_author_name(n: STRING): {Book} EXTERNAL COST 3.0 SELECTIVITY 0.02;
  END;
  INSTTYPE OBJECTTYPE
    PROPERTIES:
      isbn: STRING;
      title: STRING;
      year: INT;
      author: Author INVERSE Author.books;
      loans: {Loan} INVERSE Loan.book;
    METHODS:
      author_name(): STRING { RETURN author.name; };
      is_available(): BOOL EXTERNAL COST 6.0 SELECTIVITY 0.7;
  END;
END;

CLASS Loan
  INSTTYPE OBJECTTYPE
    PROPERTIES:
      book: Book INVERSE Book.loans;
      member: STRING;
      returned: BOOL;
  END;
END;
|}

let knowledge_text =
  {|
[AuthorIndex] FORALL b IN Book (n: STRING):
  b.author.name == n <=> b IS-IN Book->by_author_name(n)
[AuthorPath] FORALL b IN Book: b->author_name() == b.author.name
|}

let () =
  (* 1. schema + internal method bodies from the surface syntax *)
  let store = Soqm_vql.Schema_parser.load schema_text in
  let schema = Object_store.schema store in

  (* 2. external access paths: a value index on the author name behind
     Book->by_author_name, and availability from the loans *)
  let author_index = Hash_index.create ~cls:"Book" ~prop:"author" in
  Object_store.register_own_method store ~cls:"Book" ~meth:"by_author_name"
    (Object_store.Native
       (fun store _recv args ->
         match args with
         | [ (Value.Str _ as name) ] ->
           Value.set
             (List.map
                (fun o -> Value.Obj o)
                (Hash_index.probe author_index (Object_store.counters store) name))
         | _ -> raise (Runtime.Error "by_author_name expects a string")));
  Object_store.register_inst_method store ~cls:"Book" ~meth:"is_available"
    (Object_store.Native
       (fun store recv _args ->
         match recv with
         | Value.Obj b ->
           let loans =
             match Object_store.get_prop store b "loans" with
             | Value.Set xs -> xs
             | _ -> []
           in
           Value.Bool
             (List.for_all
                (fun l ->
                  match l with
                  | Value.Obj loan ->
                    Object_store.get_prop store loan "returned" = Value.Bool true
                  | _ -> true)
                loans)
         | _ -> raise (Runtime.Error "is_available on non-book")));

  (* 3. data *)
  let authors =
    List.map
      (fun name -> Object_store.create_object store ~cls:"Author" [ ("name", Value.Str name) ])
      [ "Knuth"; "Liskov"; "Dijkstra"; "Hopper"; "Lovelace" ]
  in
  List.iteri
    (fun i author ->
      for k = 0 to 19 do
        let b =
          Object_store.create_object store ~cls:"Book"
            [
              ("isbn", Value.Str (Printf.sprintf "isbn-%d-%d" i k));
              ("title", Value.Str (Printf.sprintf "Volume %d" k));
              ("year", Value.Int (1965 + ((i + k) mod 50)));
              ("author", Value.Obj author);
            ]
        in
        if k mod 3 = 0 then
          ignore
            (Object_store.create_object store ~cls:"Loan"
               [
                 ("book", Value.Obj b);
                 ("member", Value.Str "m1");
                 ("returned", Value.Bool (k mod 6 = 0));
               ])
      done)
    authors;
  (* index the books under their author's *name* (what by_author_name probes) *)
  List.iter
    (fun b ->
      match Object_store.peek_prop store b "author" with
      | Value.Obj a -> Hash_index.insert author_index (Object_store.peek_prop store a "name") b
      | _ -> ())
    (Object_store.extent store "Book");

  (* 4. knowledge + a generated optimizer for this schema *)
  let specs = Soqm_semantics.Spec_lang.parse_specs schema knowledge_text in
  Printf.printf "knowledge for the library schema:\n";
  List.iter (fun s -> Format.printf "  %a@." Soqm_semantics.Equivalence.pp s) specs;
  let exec_ctx = Soqm_physical.Exec.basic_ctx store in
  let engine =
    Soqm_core.Engine.generate_custom ~specs ~store ~exec_ctx
      ~has_index:(fun ~cls:_ ~prop:_ -> false)
      ()
  in
  Printf.printf "\ngenerated optimizer: %d rules\n\n" (Soqm_core.Engine.rule_count engine);

  (* 5. a natural query: available books by Knuth *)
  let query =
    "ACCESS [title: b.title, year: b.year] FROM b IN Book WHERE \
     b->author_name() == 'Knuth' AND b->is_available()"
  in
  Printf.printf "query:\n  %s\n\n" query;
  let naive = Soqm_core.Engine.run_query engine query in
  let optimized = Soqm_core.Engine.run_optimized engine query in
  assert (
    Soqm_algebra.Relation.equal naive.Soqm_core.Engine.result
      optimized.Soqm_core.Engine.result);
  Printf.printf "%d matching book(s)\n"
    (Soqm_algebra.Relation.cardinality optimized.Soqm_core.Engine.result);
  Printf.printf "naive:     cost %8.1f\n"
    (Counters.total_cost naive.Soqm_core.Engine.counters);
  Printf.printf "optimized: cost %8.1f\n"
    (Counters.total_cost optimized.Soqm_core.Engine.counters);
  match optimized.Soqm_core.Engine.opt with
  | Some o ->
    Format.printf "\nchosen plan:@.%a@." Soqm_physical.Plan.pp
      o.Soqm_optimizer.Search.best_plan
  | None -> ()
