(* Quickstart: build a synthetic document database, pose a VQL query, and
   compare straightforward evaluation with semantically optimized
   execution.

   Run with: dune exec examples/quickstart.exe *)

open Soqm_core

let () =
  (* 1. A database: the paper's Document/Section/Paragraph schema,
     populated with a deterministic synthetic corpus, with a title index
     and an inverted text index built. *)
  let db = Db.create ~params:{ Datagen.default with n_docs = 40 } () in

  (* 2. A generated optimizer: the predefined relational rules plus the
     rules derived from the schema-specific method knowledge (E1..E5 and
     the inverse links). *)
  let engine = Engine.generate db in
  Printf.printf "optimizer generated with %d rules\n\n" (Engine.rule_count engine);

  (* 3. A query, exactly as a user would write it. *)
  let query =
    "ACCESS p FROM p IN Paragraph \
     WHERE p->contains_string('Implementation') \
     AND (p->document()).title == 'Query Optimization'"
  in
  Printf.printf "query:\n  %s\n\n" query;

  (* 4. Straightforward evaluation... *)
  let naive = Engine.run_naive db query in
  Printf.printf "straightforward evaluation: %d paragraph(s), logical cost %.1f\n"
    (Soqm_algebra.Relation.cardinality naive.Engine.result)
    (Soqm_vml.Counters.total_cost naive.Engine.counters);

  (* 5. ... versus semantic optimization. *)
  let opt = Engine.run_optimized engine query in
  Printf.printf "semantically optimized:    %d paragraph(s), logical cost %.1f\n"
    (Soqm_algebra.Relation.cardinality opt.Engine.result)
    (Soqm_vml.Counters.total_cost opt.Engine.counters);
  (match opt.Engine.opt with
  | Some o ->
    Format.printf "\n%a@." Soqm_optimizer.Trace.pp_summary o;
    Format.printf "\nchosen plan:@.%a@." Soqm_physical.Plan.pp
      o.Soqm_optimizer.Search.best_plan
  | None -> ());
  assert (Soqm_algebra.Relation.equal naive.Engine.result opt.Engine.result);
  Printf.printf "\nboth executions returned the same result set.\n"
