(* Command-line interface: generate a synthetic document database, pose
   VQL queries interactively or one-shot, and inspect what the semantic
   optimizer does — the closest thing to the paper's interactive VQL
   mode with the tracing demonstrator (Section 7). *)

open Cmdliner
open Soqm_core

let docs_arg =
  let doc = "Number of documents in the synthetic database." in
  Arg.(value & opt int 40 & info [ "docs" ] ~docv:"N" ~doc)

let hit_arg =
  let doc = "Probability that a paragraph contains the query word." in
  Arg.(value & opt float 0.05 & info [ "hit-probability" ] ~docv:"P" ~doc)

let seed_arg =
  let doc = "Random seed of the data generator." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let make_db docs hit_probability seed =
  Db.create
    ~params:{ Datagen.default with n_docs = docs; hit_probability; seed }
    ()

let classes_conv =
  let parse s =
    match
      List.find_opt
        (fun c -> String.equal (Doc_knowledge.class_name c) s)
        Doc_knowledge.all_classes
    with
    | Some c -> Ok c
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown knowledge class %S (expected one of %s)" s
              (String.concat ", "
                 (List.map Doc_knowledge.class_name Doc_knowledge.all_classes))))
  in
  Arg.conv (parse, fun ppf c -> Format.pp_print_string ppf (Doc_knowledge.class_name c))

let disable_arg =
  let doc =
    "Disable a knowledge class (repeatable): path-methods, \
     index-equivalences, inverse-links, query-method-equivs, implications."
  in
  Arg.(value & opt_all classes_conv [] & info [ "disable" ] ~docv:"CLASS" ~doc)

let trace_arg =
  let doc = "Print the full optimization trace (the Section 7 demonstrator)." in
  Arg.(value & flag & info [ "trace" ] ~doc)

let naive_arg =
  let doc = "Also run the query without optimization and compare costs." in
  Arg.(value & flag & info [ "naive" ] ~doc)

let dot_arg =
  let doc =
    "Write the optimization derivation as a Graphviz graph to $(docv) \
     (render with dot -Tsvg)."
  in
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc)

let query_arg =
  let doc = "The VQL query to run." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc)

let print_report label (r : Engine.report) =
  Printf.printf "%s: %d tuple(s), logical cost %.1f, %.1f ms\n" label
    (Soqm_algebra.Relation.cardinality r.Engine.result)
    (Soqm_vml.Counters.total_cost r.Engine.counters)
    (r.Engine.elapsed_s *. 1000.)

let run_cmd =
  let run query docs hit seed disabled trace naive dot =
    try
      let db = make_db docs hit seed in
      let classes =
        List.filter (fun c -> not (List.mem c disabled)) Doc_knowledge.all_classes
      in
      let engine = Engine.generate ~classes db in
      let opt = Engine.run_optimized engine query in
      (match opt.Engine.opt with
      | Some o when trace -> Format.printf "%a@." Soqm_optimizer.Trace.pp_result o
      | Some o -> Format.printf "%a@." Soqm_optimizer.Trace.pp_summary o
      | None -> ());
      (match opt.Engine.opt, dot with
      | Some o, Some path ->
        let oc = open_out path in
        output_string oc (Soqm_optimizer.Dot.of_derivation o);
        close_out oc;
        Printf.printf "derivation graph written to %s\n" path
      | _ -> ());
      Format.printf "%a@." Soqm_algebra.Relation.pp opt.Engine.result;
      print_report "optimized" opt;
      if naive then (
        let nv = Engine.run_naive db query in
        print_report "naive" nv;
        if not (Soqm_algebra.Relation.equal nv.Engine.result opt.Engine.result) then (
          prerr_endline "ERROR: naive and optimized results differ!";
          exit 2));
      `Ok ()
    with
    | Soqm_vql.Parser.Error msg -> `Error (false, "parse error: " ^ msg)
    | Soqm_vql.Typecheck.Error msg -> `Error (false, "type error: " ^ msg)
    | Soqm_algebra.Eval.Error msg | Soqm_physical.Exec.Error msg ->
      `Error (false, "execution error: " ^ msg)
  in
  let doc = "Run a VQL query against a synthetic document database." in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(
      ret
        (const run $ query_arg $ docs_arg $ hit_arg $ seed_arg $ disable_arg
       $ trace_arg $ naive_arg $ dot_arg))

let schema_cmd =
  let show () =
    Format.printf "%a@." Soqm_vml.Schema.pp Doc_schema.schema;
    Printf.printf "schema-specific knowledge:\n";
    List.iter
      (fun spec -> Format.printf "  %a@." Soqm_semantics.Equivalence.pp spec)
      (Doc_knowledge.specs ())
  in
  let doc = "Print the document schema and its method knowledge." in
  Cmd.v (Cmd.info "schema" ~doc) Term.(const show $ const ())

let repl_cmd =
  let repl docs hit seed disabled trace =
    let db = make_db docs hit seed in
    let classes =
      List.filter (fun c -> not (List.mem c disabled)) Doc_knowledge.all_classes
    in
    let engine = Engine.generate ~classes db in
    Printf.printf
      "soqm interactive VQL (document schema, %d documents, %d rules)\n\
       type a query, or :schema / :quit\n"
      docs (Engine.rule_count engine);
    let rec loop () =
      print_string "vql> ";
      match read_line () with
      | exception End_of_file -> print_newline ()
      | ":quit" | ":q" -> ()
      | ":schema" ->
        Format.printf "%a@." Soqm_vml.Schema.pp Doc_schema.schema;
        loop ()
      | "" -> loop ()
      | query ->
        (try
           let opt = Engine.run_optimized engine query in
           (match opt.Engine.opt with
           | Some o when trace ->
             Format.printf "%a@." Soqm_optimizer.Trace.pp_result o
           | Some o -> Format.printf "%a@." Soqm_optimizer.Trace.pp_summary o
           | None -> ());
           Format.printf "%a@." Soqm_algebra.Relation.pp opt.Engine.result;
           print_report "optimized" opt
         with
        | Soqm_vql.Parser.Error msg -> Printf.printf "parse error: %s\n" msg
        | Soqm_vql.Typecheck.Error msg -> Printf.printf "type error: %s\n" msg
        | Soqm_algebra.Eval.Error msg | Soqm_physical.Exec.Error msg ->
          Printf.printf "execution error: %s\n" msg);
        loop ()
    in
    loop ()
  in
  let doc = "Interactive VQL session (the paper's interactive mode)." in
  Cmd.v
    (Cmd.info "repl" ~doc)
    Term.(const repl $ docs_arg $ hit_arg $ seed_arg $ disable_arg $ trace_arg)

let rules_cmd =
  let show docs hit seed =
    let db = make_db docs hit seed in
    let engine = Engine.generate db in
    Printf.printf "generated optimizer has %d rule(s)\n" (Engine.rule_count engine)
  in
  let doc = "Report the size of the generated optimizer's rule set." in
  Cmd.v (Cmd.info "rules" ~doc) Term.(const show $ docs_arg $ hit_arg $ seed_arg)

let main =
  let doc =
    "semantic query optimization for methods in an object-oriented database"
  in
  Cmd.group (Cmd.info "soqm" ~version:"1.0.0" ~doc)
    [ run_cmd; repl_cmd; schema_cmd; rules_cmd ]

let () = exit (Cmd.eval main)
