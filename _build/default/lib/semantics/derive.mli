(** Derivation of optimizer rules from equivalence specifications — the
    mapping of Section 4.2, carried out at the restricted-algebra level
    of Section 6.2.

    Each side of a specification is compiled (with {!Soqm_algebra.Translate})
    into a chain of restricted-algebra operators over a placeholder input
    [?A<?x, C>]; the chain is then turned into an operator pattern whose
    references are pattern variables and whose specification parameters
    are operand variables.  Thus:

    - equivalent expressions ↦ bidirectional transformation rules lifted
      through [map] (and, for set-valued expressions, [flat]);
    - equivalent conditions ↦ bidirectional transformation rules lifted
      through [select];
    - implications ↦ apply-once transformation rules conjoining the
      implied restriction via [natural_join];
    - query ≡ method call ↦ one-directional implementation rules whose
      plan is a {!Soqm_physical.Plan.MethodScan} (intersected with the
      matched input when it is not the full extent). *)

open Soqm_vml
open Soqm_optimizer

exception Underivable of string

val transformations : Schema.t -> Equivalence.t -> Rule.transformation list
(** Transformation rules of a specification ([] for query/method
    equivalences).  @raise Underivable when a side uses constructs the
    restricted compilation cannot express. *)

val implementations : Schema.t -> Equivalence.t -> Rule.implementation list
(** Implementation rules of a specification ([] except for query/method
    equivalences). *)

val rules_of_specs :
  Schema.t ->
  Equivalence.t list ->
  Rule.transformation list * Rule.implementation list
(** Validate and derive all given specifications.  Inverse-link
    equivalences are {e not} added implicitly — append
    {!Equivalence.from_inverse_links} to the list to include them.
    @raise Underivable on an invalid or underivable specification. *)
