open Soqm_vml

type generated = {
  meth_sig : Schema.method_sig;
  body : Expr.t;
  equivalence : Equivalence.t;
}

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* one navigation step, with the set lifting of Section 2.3 *)
let step schema ty prop =
  let lift pty = function
    | `Scalar -> pty
    | `Lifted -> (
      match pty with Vtype.TSet _ -> pty | scalar -> Vtype.TSet scalar)
  in
  match ty with
  | Vtype.TObj c -> (
    match Schema.property_type schema ~cls:c ~prop with
    | Some pty -> lift pty `Scalar
    | None -> error "class %s has no property %S" c prop)
  | Vtype.TSet (Vtype.TObj c) -> (
    match Schema.property_type schema ~cls:c ~prop with
    | Some pty -> lift pty `Lifted
    | None -> error "class %s has no property %S" c prop)
  | ty -> error "cannot navigate %S through type %s" prop (Vtype.to_string ty)

let generate ?(cost = 1.0) schema ~cls ~name ~path =
  if path = [] then error "empty path";
  if Option.is_none (Schema.find_class schema cls) then
    error "unknown class %S" cls;
  let returns =
    List.fold_left (fun ty prop -> step schema ty prop) (Vtype.TObj cls) path
  in
  let navigate base = List.fold_left (fun e p -> Expr.Prop (e, p)) base path in
  let var = "x" in
  {
    meth_sig = Schema.meth ~cost name [] returns;
    body = navigate Expr.Self;
    equivalence =
      Equivalence.Expr_equiv
        {
          name = Printf.sprintf "pmg-%s.%s" cls name;
          cls;
          var;
          lhs = Expr.Call (Expr.Ref var, name, []);
          rhs = navigate (Expr.Ref var);
        };
  }

let add_to_schema schema ~cls g =
  try Schema.add_inst_method schema ~cls g.meth_sig
  with Invalid_argument msg -> error "%s" msg

let register store ~cls g =
  Object_store.register_inst_method store ~cls ~meth:g.meth_sig.Schema.meth_name
    (Object_store.Body g.body)
