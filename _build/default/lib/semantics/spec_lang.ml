open Soqm_vml
module Token = Soqm_vql.Token
module Lexer = Soqm_vql.Lexer
module Parser = Soqm_vql.Parser
module Ast = Soqm_vql.Ast
module Typecheck = Soqm_vql.Typecheck

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let counter = ref 0

(* ------------------------------------------------------------------ *)
(* Token-list utilities                                                *)
(* ------------------------------------------------------------------ *)

let pop = function
  | tok :: rest -> (tok, rest)
  | [] -> error "unexpected end of specification"

let expect expected tokens =
  let tok, rest = pop tokens in
  if tok = expected then rest
  else
    error "expected %s but found %s" (Token.to_string expected)
      (Token.to_string tok)

let expect_ident tokens =
  match pop tokens with
  | Token.IDENT x, rest -> (x, rest)
  | tok, _ -> error "expected identifier, found %s" (Token.to_string tok)

(* Split a token list at the first occurrence of [sep] at parenthesis
   depth 0.  Returns None if [sep] does not occur at the top level. *)
let split_top sep tokens =
  let rec go depth before = function
    | [] -> None
    | tok :: rest when tok = sep && depth = 0 -> Some (List.rev before, rest)
    | tok :: rest ->
      let depth =
        match tok with
        | Token.LPAREN | Token.LBRACKET | Token.LBRACE -> depth + 1
        | Token.RPAREN | Token.RBRACKET | Token.RBRACE -> depth - 1
        | _ -> depth
      in
      go depth (tok :: before) rest
  in
  go 0 [] tokens

let strip_eof tokens =
  List.filter (fun t -> t <> Token.EOF) tokens

(* ------------------------------------------------------------------ *)
(* Types of parameters                                                 *)
(* ------------------------------------------------------------------ *)

let rec parse_type schema tokens =
  match pop tokens with
  | Token.IDENT "STRING", rest -> (Vtype.TString, rest)
  | Token.IDENT "INT", rest -> (Vtype.TInt, rest)
  | Token.IDENT "REAL", rest -> (Vtype.TReal, rest)
  | Token.IDENT "BOOL", rest -> (Vtype.TBool, rest)
  | Token.IDENT c, rest when Option.is_some (Schema.find_class schema c) ->
    (Vtype.TObj c, rest)
  | Token.LBRACE, rest ->
    let elt, rest = parse_type schema rest in
    (Vtype.TSet elt, expect Token.RBRACE rest)
  | tok, _ -> error "expected a type, found %s" (Token.to_string tok)

let parse_params schema tokens =
  match tokens with
  | Token.LPAREN :: rest ->
    let rec go acc rest =
      let name, rest = expect_ident rest in
      let rest = expect Token.COLON rest in
      let ty, rest = parse_type schema rest in
      match pop rest with
      | Token.COMMA, rest -> go ((name, ty) :: acc) rest
      | Token.RPAREN, rest -> (List.rev ((name, ty) :: acc), rest)
      | tok, _ -> error "expected ',' or ')', found %s" (Token.to_string tok)
    in
    go [] rest
  | _ -> ([], tokens)

(* ------------------------------------------------------------------ *)
(* Sides: parse, typecheck, and parameterize                           *)
(* ------------------------------------------------------------------ *)

let check_side schema ~env ~params tokens =
  let ast =
    try Parser.parse_expr_tokens (strip_eof tokens @ [ Token.EOF ])
    with Parser.Error msg -> error "%s" msg
  in
  let typed, ty =
    try Typecheck.check_expr schema ~env ast
    with Typecheck.Error msg -> error "%s" msg
  in
  (* declared parameters become Expr.Param placeholders *)
  let parameterized =
    List.fold_left
      (fun e (p, _) -> Expr.subst_ref p (Expr.Param p) e)
      typed params
  in
  (parameterized, ty)

(* ------------------------------------------------------------------ *)
(* Specification forms                                                 *)
(* ------------------------------------------------------------------ *)

let parse_forall schema ~name ~var ~cls ~params body =
  let env = (var, Vtype.TObj cls) :: params in
  let side = check_side schema ~env ~params in
  match split_top Token.IFF body with
  | Some (l, r) ->
    let lhs, lty = side l and rhs, rty = side r in
    if lty <> Vtype.TBool || rty <> Vtype.TBool then
      error "%s: both sides of <=> must be boolean" name;
    Equivalence.Cond_equiv { name; cls; var; lhs; rhs }
  | None -> (
    match split_top Token.IMPLIES body with
    | Some (l, r) ->
      let lhs, lty = side l and rhs, rty = side r in
      if lty <> Vtype.TBool || rty <> Vtype.TBool then
        error "%s: both sides of => must be boolean" name;
      Equivalence.Implication { name; cls; var; antecedent = lhs; consequent = rhs }
    | None -> (
      match split_top Token.EQ body with
      | Some (l, r) -> (
        if Option.is_some (split_top Token.EQ r) then
          error "%s: more than one top-level '=='" name;
        let lhs, lty = side l and rhs, rty = side r in
        match lty, rty with
        | Vtype.TBool, Vtype.TBool -> Equivalence.Cond_equiv { name; cls; var; lhs; rhs }
        | _ -> Equivalence.Expr_equiv { name; cls; var; lhs; rhs })
      | None -> error "%s: expected '==', '<=>' or '=>'" name))

let parse_query_form schema ~name ~var ~cls ~params body =
  let env = (var, Vtype.TObj cls) :: params in
  match split_top Token.EQ body with
  | None -> error "%s: QUERY form needs 'cond == Class->method(args)'" name
  | Some (l, r) ->
    let cond, cty = check_side schema ~env ~params l in
    if cty <> Vtype.TBool then error "%s: the query condition must be boolean" name;
    let rhs_ast =
      try Parser.parse_expr_tokens (strip_eof r @ [ Token.EOF ])
      with Parser.Error msg -> error "%s" msg
    in
    (match rhs_ast with
    | Ast.Method_call (Ast.Var meth_cls, meth, args) ->
      let args =
        List.map
          (function
            | Ast.Var p when List.mem_assoc p params -> Equivalence.Arg_param p
            | Ast.Str_lit s -> Equivalence.Arg_const (Value.Str s)
            | Ast.Int_lit i -> Equivalence.Arg_const (Value.Int i)
            | Ast.Real_lit f -> Equivalence.Arg_const (Value.Real f)
            | Ast.Bool_lit b -> Equivalence.Arg_const (Value.Bool b)
            | a ->
              error "%s: method argument %s must be a parameter or literal" name
                (Format.asprintf "%a" Ast.pp_expr a))
          args
      in
      Equivalence.Query_method { name; cls; var; cond; meth_cls; meth; args }
    | _ -> error "%s: right side must be a class method call" name)

let parse_spec_tokens schema tokens =
  (* optional [name] *)
  let name, tokens =
    match tokens with
    | Token.LBRACKET :: Token.IDENT n :: Token.RBRACKET :: rest -> (Some n, rest)
    | _ -> (None, tokens)
  in
  let form, tokens =
    match pop tokens with
    | Token.IDENT "FORALL", rest -> (`Forall, rest)
    | Token.IDENT "QUERY", rest -> (`Query, rest)
    | tok, _ -> error "expected FORALL or QUERY, found %s" (Token.to_string tok)
  in
  let var, tokens = expect_ident tokens in
  let tokens = expect Token.IN tokens in
  let cls, tokens = expect_ident tokens in
  if Option.is_none (Schema.find_class schema cls) then
    error "unknown class %S" cls;
  let params, tokens = parse_params schema tokens in
  let tokens = expect Token.COLON tokens in
  let body = strip_eof tokens in
  let name =
    match name with
    | Some n -> n
    | None ->
      incr counter;
      Printf.sprintf "spec-%s-%d" cls !counter
  in
  let spec =
    match form with
    | `Forall -> parse_forall schema ~name ~var ~cls ~params body
    | `Query -> parse_query_form schema ~name ~var ~cls ~params body
  in
  match Equivalence.validate schema spec with
  | Ok () -> spec
  | Error msg -> error "%s" msg

let parse_spec schema src =
  match Lexer.tokenize src with
  | exception Lexer.Error (msg, pos) -> error "lexical error at %d: %s" pos msg
  | tokens -> parse_spec_tokens schema tokens

let parse_specs schema src =
  match Lexer.tokenize src with
  | exception Lexer.Error (msg, pos) -> error "lexical error at %d: %s" pos msg
  | tokens ->
    let statements =
      (* statements are separated by the FORALL/QUERY keywords
         (optionally preceded by a [name] bracket); the keyword-with-
         bracket prefix is consumed as one unit so the bracket stays with
         its statement.  [current] holds the tokens in reverse. *)
      let is_start = function
        | Token.IDENT ("FORALL" | "QUERY") -> true
        | _ -> false
      in
      let flush acc current = if current = [] then acc else List.rev current :: acc in
      let rec split acc current = function
        | [] -> List.rev (flush acc current)
        | Token.LBRACKET :: Token.IDENT n :: Token.RBRACKET :: next :: rest
          when is_start next ->
          split (flush acc current)
            [ next; Token.RBRACKET; Token.IDENT n; Token.LBRACKET ]
            rest
        | tok :: rest when is_start tok ->
          split (flush acc current) [ tok ] rest
        | tok :: rest -> split acc (tok :: current) rest
      in
      split [] [] (strip_eof tokens)
    in
    List.map (parse_spec_tokens schema) statements
