open Soqm_vml

type arg = Arg_param of string | Arg_const of Value.t

type t =
  | Expr_equiv of { name : string; cls : string; var : string; lhs : Expr.t; rhs : Expr.t }
  | Cond_equiv of { name : string; cls : string; var : string; lhs : Expr.t; rhs : Expr.t }
  | Implication of {
      name : string;
      cls : string;
      var : string;
      antecedent : Expr.t;
      consequent : Expr.t;
    }
  | Query_method of {
      name : string;
      cls : string;
      var : string;
      cond : Expr.t;
      meth_cls : string;
      meth : string;
      args : arg list;
    }

let name = function
  | Expr_equiv { name; _ }
  | Cond_equiv { name; _ }
  | Implication { name; _ }
  | Query_method { name; _ } ->
    name

let check_sides schema ~what ~cls ~var exprs =
  if Option.is_none (Schema.find_class schema cls) then
    Error (Printf.sprintf "%s: unknown class %s" what cls)
  else
    let bad_refs =
      List.concat_map
        (fun e -> List.filter (fun r -> not (String.equal r var)) (Expr.refs e))
        exprs
    in
    if bad_refs <> [] then
      Error
        (Printf.sprintf "%s: sides reference %s besides the spec variable %s"
           what (String.concat ", " bad_refs) var)
    else Ok ()

let validate schema = function
  | Expr_equiv { name; cls; var; lhs; rhs } ->
    check_sides schema ~what:name ~cls ~var [ lhs; rhs ]
  | Cond_equiv { name; cls; var; lhs; rhs } -> (
    match check_sides schema ~what:name ~cls ~var [ lhs; rhs ] with
    | Error _ as e -> e
    | Ok () ->
      if Expr.is_boolean_shape lhs && Expr.is_boolean_shape rhs then Ok ()
      else Error (name ^ ": condition equivalence sides must be boolean"))
  | Implication { name; cls; var; antecedent; consequent } -> (
    match check_sides schema ~what:name ~cls ~var [ antecedent; consequent ] with
    | Error _ as e -> e
    | Ok () ->
      if Expr.is_boolean_shape antecedent && Expr.is_boolean_shape consequent
      then Ok ()
      else Error (name ^ ": implication sides must be boolean"))
  | Query_method { name; cls; var; cond; meth_cls; meth; _ } -> (
    match check_sides schema ~what:name ~cls ~var [ cond ] with
    | Error _ as e -> e
    | Ok () -> (
      match Schema.own_method schema ~cls:meth_cls ~meth with
      | Some { Schema.returns = Vtype.TSet (Vtype.TObj c); _ } when String.equal c cls ->
        Ok ()
      | Some _ ->
        Error
          (Printf.sprintf "%s: %s->%s does not return a set of %s" name meth_cls
             meth cls)
      | None ->
        Error (Printf.sprintf "%s: %s has no OWNTYPE method %s" name meth_cls meth)))

let from_inverse_links schema =
  List.concat_map
    (fun (cd : Schema.class_def) ->
      List.filter_map
        (fun (p : Schema.property) ->
          match p.Schema.inverse, p.Schema.prop_type with
          (* only the scalar side induces the membership equivalence *)
          | Some (_c2, p2), Vtype.TObj _ ->
            let var = "x" in
            Some
              (Cond_equiv
                 {
                   name =
                     Printf.sprintf "inverse-%s.%s" cd.Schema.cls_name
                       p.Schema.prop_name;
                   cls = cd.Schema.cls_name;
                   var;
                   lhs =
                     Expr.Binop
                       (Expr.IsIn, Expr.Prop (Expr.Ref var, p.Schema.prop_name),
                        Expr.Param "D");
                   rhs =
                     Expr.Binop
                       (Expr.IsIn, Expr.Ref var, Expr.Prop (Expr.Param "D", p2));
                 })
          | _ -> None)
        cd.Schema.properties)
    (Schema.classes schema)

let pp ppf = function
  | Expr_equiv { name; cls; var; lhs; rhs } ->
    Format.fprintf ppf "%s: FORALL %s IN %s: %a == %a" name var cls Expr.pp lhs
      Expr.pp rhs
  | Cond_equiv { name; cls; var; lhs; rhs } ->
    Format.fprintf ppf "%s: FORALL %s IN %s: %a <=> %a" name var cls Expr.pp lhs
      Expr.pp rhs
  | Implication { name; cls; var; antecedent; consequent } ->
    Format.fprintf ppf "%s: FORALL %s IN %s: %a => %a" name var cls Expr.pp
      antecedent Expr.pp consequent
  | Query_method { name; cls; var; cond; meth_cls; meth; args } ->
    Format.fprintf ppf
      "%s: (ACCESS %s FROM %s IN %s WHERE %a) == %s->%s(%s)" name var var cls
      Expr.pp cond meth_cls meth
      (String.concat ", "
         (List.map
            (function Arg_param p -> p | Arg_const v -> Value.to_string v)
            args))
