(** Schema-specific knowledge about method semantics (Section 4.2).

    Four kinds of specifications, each quantified over one variable
    ranging over a class and optionally over parameters (written with
    [Expr.Param]):

    - {b Equivalent expressions} — [∀x IN C: expr1(x) == expr2(x)], e.g.
      the path method E1: [p→document() ≡ p.section.document].
    - {b Equivalent conditions} — [∀x IN C: cond1(x) ⇔ cond2(x)], e.g.
      the index equivalence E2 and the inverse-link equivalences E3/E4.
    - {b Implication of conditions} — [∀x IN C: cond1(x) ⇒ cond2(x)],
      e.g. [p→wordCount() > 500 ⇒ p IS-IN p→document().largeParagraphs].
    - {b Equivalence between queries and method calls} — a selection
      query equals a set-returning class-method call, e.g. E5:
      [ACCESS p FROM p IN Paragraph WHERE p→contains_string(s)
       ≡ Paragraph→retrieve_by_string(s)].

    The schema designer states these without revealing method
    implementations; {!Derive} compiles them into optimizer rules. *)

open Soqm_vml

(** Argument template of the method call in a query/method equivalence. *)
type arg = Arg_param of string | Arg_const of Value.t

type t =
  | Expr_equiv of { name : string; cls : string; var : string; lhs : Expr.t; rhs : Expr.t }
  | Cond_equiv of { name : string; cls : string; var : string; lhs : Expr.t; rhs : Expr.t }
  | Implication of {
      name : string;
      cls : string;
      var : string;
      antecedent : Expr.t;
      consequent : Expr.t;
    }
  | Query_method of {
      name : string;
      cls : string;  (** range class of the query *)
      var : string;
      cond : Expr.t;  (** WHERE condition of the selection query *)
      meth_cls : string;  (** class object providing the method *)
      meth : string;
      args : arg list;
    }

val name : t -> string

val validate : Schema.t -> t -> (unit, string) result
(** Sanity checks: the class exists, both sides mention only the spec
    variable and parameters, boolean sides are boolean-shaped, the
    method of a query/method equivalence is a declared OWNTYPE method. *)

val from_inverse_links : Schema.t -> t list
(** Derive the condition equivalences the schema's declared inverse links
    induce (Section 5.2: knowledge "may be derived from other
    information, like such about inverse links").  For each link
    [C1.p1 : C2] with inverse [C2.p2 : {C1}] this yields
    [∀x IN C1: x.p1 IS-IN D ⇔ x IS-IN D.p2] — e.g. E3 and E4 of the
    document schema. *)

val pp : Format.formatter -> t -> unit
