lib/semantics/equivalence.ml: Expr Format List Option Printf Schema Soqm_vml String Value Vtype
