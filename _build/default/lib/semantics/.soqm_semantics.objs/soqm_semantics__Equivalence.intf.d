lib/semantics/equivalence.mli: Expr Format Schema Soqm_vml Value
