lib/semantics/pmg.ml: Equivalence Expr Format List Object_store Option Printf Schema Soqm_vml Vtype
