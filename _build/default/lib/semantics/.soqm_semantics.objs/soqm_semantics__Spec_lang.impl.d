lib/semantics/spec_lang.ml: Equivalence Expr Format List Option Printf Schema Soqm_vml Soqm_vql Value Vtype
