lib/semantics/pmg.mli: Equivalence Expr Object_store Schema Soqm_vml
