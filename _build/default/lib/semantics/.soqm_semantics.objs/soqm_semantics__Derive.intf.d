lib/semantics/derive.mli: Equivalence Rule Schema Soqm_optimizer Soqm_vml
