lib/semantics/derive.ml: Equivalence Format List Option Pattern Restricted Rule Soqm_algebra Soqm_optimizer Soqm_physical String Translate
