lib/semantics/spec_lang.mli: Equivalence Schema Soqm_vml
