(** A textual surface language for equivalence specifications — the
    "descriptive way to reflect the intended semantics of the methods in
    the schema" (Section 2.3, observation 4), so the schema designer
    never touches optimizer internals.

    Grammar (one specification per line; [//] comments):

    {v
    spec  ::= FORALL x IN Class params? ':' body
            | QUERY  x IN Class params? ':' cond '==' Class '->' m '(' args ')'
    params ::= '(' name ':' type (',' name ':' type)* ')'
    type   ::= STRING | INT | REAL | BOOL | Class | '{' type '}'
    body   ::= expr '==' expr        equivalent expressions/conditions
             | cond '<=>' cond       equivalent conditions
             | cond '=>'  cond       implication (apply once)
    v}

    Expressions are full VQL expressions over the bound variable and the
    declared parameters.  Examples (the document schema's knowledge):

    {v
    FORALL p IN Paragraph: p->document() == p.section.document
    FORALL d IN Document (s: STRING):
        d.title == s <=> d IS-IN Document->select_by_index(s)
    FORALL p IN Paragraph:
        p->wordCount() > 500 => p IS-IN p->document().largeParagraphs
    QUERY p IN Paragraph (s: STRING):
        p->contains_string(s) == Paragraph->retrieve_by_string(s)
    v}

    An [==] body yields a condition equivalence when both sides type as
    BOOL, an expression equivalence otherwise. *)

open Soqm_vml

exception Error of string

val parse_spec : Schema.t -> string -> Equivalence.t
(** Parse and typecheck one specification.  A leading [[name]] names the
    specification (e.g. [[E2] FORALL d IN Document ...]); otherwise a
    name is synthesized from the class and a counter.
    @raise Error with a readable message. *)

val parse_specs : Schema.t -> string -> Equivalence.t list
(** Parse a whole text of consecutive specifications (each starting with
    FORALL/QUERY or a [[name]] bracket). *)
