open Soqm_optimizer
open Soqm_algebra

exception Underivable of string

let underivable fmt = Format.kasprintf (fun s -> raise (Underivable s)) fmt

(* Placeholder leaf marking "any input providing the spec variable".  The
   class is remembered for the PAnyRanging conversion. *)
let placeholder var cls = Restricted.Get (var, cls)

(* Convert a compiled restricted chain over [placeholder var cls] into a
   pattern/template.  [side] prefixes temp-reference variables so that
   the two sides of a rule do not share temp variables (shared ones
   would have to match positionally; unshared ones are generated fresh
   on instantiation). *)
let to_pattern ~side ~var ~cls (chain : Restricted.t) : Pattern.t =
  let pref r =
    if Restricted.is_temp_ref r then Pattern.PRefVar (side ^ r)
    else Pattern.PRefVar r
  in
  let conv_operand = function
    | Restricted.ORef r -> Pattern.PORefOf (pref r)
    | Restricted.OConst v -> Pattern.POperand (Restricted.OConst v)
    | Restricted.OParam p -> Pattern.POperandVar p
  in
  let conv_args xs = Pattern.PArgs (List.map conv_operand xs) in
  let conv_recv = function
    | Restricted.RRef r -> Pattern.PRecvRef (pref r)
    | Restricted.RClass c -> Pattern.PRecvClass (Pattern.PName c)
  in
  let rec go = function
    | Restricted.Get (v, c) when String.equal v var && String.equal c cls ->
      Pattern.PAnyRanging ("A", Pattern.PRefVar var, cls)
    | Restricted.Get _ -> underivable "specification side contains a class scan"
    | Restricted.SelectCmp (c, x, y, s) ->
      Pattern.PSelectCmp (Pattern.PCmp c, conv_operand x, conv_operand y, go s)
    | Restricted.MapProperty (a, p, a1, s) ->
      Pattern.PMapProperty (pref a, Pattern.PName p, pref a1, go s)
    | Restricted.MapMethod (a, m, r, xs, s) ->
      Pattern.PMapMethod (pref a, Pattern.PName m, conv_recv r, conv_args xs, go s)
    | Restricted.FlatProperty (a, p, a1, s) ->
      Pattern.PFlatProperty (pref a, Pattern.PName p, pref a1, go s)
    | Restricted.FlatMethod (a, m, r, xs, s) ->
      Pattern.PFlatMethod (pref a, Pattern.PName m, conv_recv r, conv_args xs, go s)
    | Restricted.MapOperator (a, op, xs, s) ->
      Pattern.PMapOperator (pref a, op, conv_args xs, go s)
    | Restricted.FlatOperator (a, op, xs, s) ->
      Pattern.PFlatOperator (pref a, op, conv_args xs, go s)
    | t ->
      underivable "specification side compiles to unsupported operator %s"
        (Restricted.to_string t)
  in
  go chain

let compile_map_side ~side ~var ~cls ~target expr =
  let chain =
    try Translate.compile_map ~target (placeholder var cls) expr
    with Translate.Unsupported msg -> underivable "%s" msg
  in
  to_pattern ~side ~var ~cls chain

let compile_flat_side ~side ~var ~cls ~target expr =
  let chain =
    try Translate.compile_flat ~target (placeholder var cls) expr
    with Translate.Unsupported msg -> underivable "%s" msg
  in
  to_pattern ~side ~var ~cls chain

let compile_select_side ~side ~var ~cls cond =
  let chain =
    try Translate.compile_select (placeholder var cls) cond
    with Translate.Unsupported msg -> underivable "%s" msg
  in
  to_pattern ~side ~var ~cls chain

(* The reference produced for the lifted expression: shared between both
   sides of an expression equivalence, like the paper's ?a1 in
   map<?a1, expr1(?a2)>(...) <-> map<?a1, expr2(?a2)>(...). *)
let result_var = "res"

let transformations schema (spec : Equivalence.t) : Rule.transformation list =
  match Equivalence.validate schema spec with
  | Error msg -> underivable "%s" msg
  | Ok () -> (
    match spec with
    | Equivalence.Expr_equiv { name; cls; var; lhs; rhs } ->
      (* Note: the compiled chains use a temp target that we convert to a
         shared pattern variable by compiling with a non-temp marker. *)
      let map_rule =
        Rule.rewrite (name ^ "/map")
          ~lhs:(compile_map_side ~side:"L" ~var ~cls ~target:result_var lhs)
          ~rhs:(compile_map_side ~side:"R" ~var ~cls ~target:result_var rhs)
      in
      let flat_rules =
        (* lift through flat as well; only meaningful (and only ever
           matching) for set-valued expressions *)
        match
          ( compile_flat_side ~side:"L" ~var ~cls ~target:result_var lhs,
            compile_flat_side ~side:"R" ~var ~cls ~target:result_var rhs )
        with
        | flhs, frhs -> [ Rule.rewrite (name ^ "/flat") ~lhs:flhs ~rhs:frhs ]
        | exception Underivable _ -> []
      in
      map_rule :: flat_rules
    | Equivalence.Cond_equiv { name; cls; var; lhs; rhs } ->
      [
        Rule.rewrite name
          ~lhs:(compile_select_side ~side:"L" ~var ~cls lhs)
          ~rhs:(compile_select_side ~side:"R" ~var ~cls rhs);
      ]
    | Equivalence.Implication { name; cls; var; antecedent; consequent } ->
      (* select<cond1>(?A) !-> natural_join(select<cond1>(?A),
                                            select<cond2>(?A)) *)
      let lhs = compile_select_side ~side:"L" ~var ~cls antecedent in
      let rhs =
        Pattern.PNaturalJoin
          (lhs, compile_select_side ~side:"R" ~var ~cls consequent)
      in
      [ Rule.rewrite name ~bidirectional:false ~apply_once:true ~lhs ~rhs ]
    | Equivalence.Query_method _ -> [])

let implementations schema (spec : Equivalence.t) : Rule.implementation list =
  match Equivalence.validate schema spec with
  | Error msg -> underivable "%s" msg
  | Ok () -> (
    match spec with
    | Equivalence.Query_method { name; cls; var; cond; meth_cls; meth; args } ->
      let lhs = compile_select_side ~side:"L" ~var ~cls cond in
      let build (_ctx : Rule.opt_ctx) (b : Pattern.bindings)
          (implement : Restricted.t -> Soqm_physical.Plan.t) =
        let scan_ref =
          match List.assoc_opt var b.Pattern.refs with
          | Some r -> r
          | None -> var
        in
        (* the method call needs constant arguments *)
        let resolve = function
          | Equivalence.Arg_const v -> Some v
          | Equivalence.Arg_param p -> (
            match List.assoc_opt p b.Pattern.operands with
            | Some (Restricted.OConst v) -> Some v
            | _ -> None)
        in
        match List.map resolve args with
        | resolved when List.for_all Option.is_some resolved ->
          let consts = List.map Option.get resolved in
          let scan =
            Soqm_physical.Plan.MethodScan (scan_ref, meth_cls, meth, consts)
          in
          (match List.assoc_opt "A" b.Pattern.plans with
          | Some (Restricted.Get _) ->
            (* selection over the full extent: the method call alone *)
            Some scan
          | Some input ->
            (* selection over a subset: intersect with it (the paper's
               INTERSECTION in plan PQ) *)
            Some (Soqm_physical.Plan.NaturalJoin (scan, implement input))
          | None -> None)
        | _ -> None
      in
      [ Rule.implementation name ~lhs ~build ]
    | Equivalence.Expr_equiv _ | Equivalence.Cond_equiv _
    | Equivalence.Implication _ ->
      [])

let rules_of_specs schema specs =
  let transforms = List.concat_map (transformations schema) specs in
  let impls = List.concat_map (implementations schema) specs in
  (transforms, impls)
