(** Type checking and name resolution for VQL queries.

    Resolves every [Ast.Var] to a range variable (becoming an
    [Expr.Ref]) or a class object (becoming an [Expr.ClassObj] receiver
    or a class-extent range source), checks property accesses and method
    calls against the schema — including the set-lifted access of
    Section 2.3 — and types all built-in operations. *)

open Soqm_vml

exception Error of string

type source =
  | Class_extent of string  (** [x IN ClassName] *)
  | Set_expr of Expr.t
      (** [x IN e] for a set-valued expression; may reference earlier
          range variables (dependent ranges, Example 2) *)
  | Subquery_src of t
      (** [x IN (ACCESS ...)] — an uncorrelated nested query as range
          source (the nested queries of Section 8) *)

and trange = { var : string; var_type : Vtype.t; source : source }

(** An [elem IS-IN (ACCESS ...)] conjunct of the WHERE clause. *)
and membership = { member : Expr.t; of_subquery : t }

and t = {
  access : Expr.t;
  access_type : Vtype.t;
  ranges : trange list;
  where : Expr.t option;  (** the remaining (non-subquery) condition *)
  memberships : membership list;
}

val check_query : Schema.t -> Ast.query -> t
(** @raise Error with a readable message on any type or resolution
    error. *)

val check_expr :
  Schema.t -> env:(string * Vtype.t) list -> Ast.expr -> Expr.t * Vtype.t
(** Type a stand-alone expression with the given variable typing; used by
    the equivalence-specification front-end. *)
