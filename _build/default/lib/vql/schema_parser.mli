(** Parser for the VML schema-definition syntax of Section 2.1.

    Accepts text in the paper's style and yields a validated
    {!Soqm_vml.Schema.t} plus the internal method bodies ready to be
    registered with a store:

    {v
    CLASS Paragraph
      OWNTYPE OBJECTTYPE
        METHODS:
          retrieve_by_string(s: STRING): {Paragraph}
            EXTERNAL COST 25.0 SELECTIVITY 0.05;
      END;
      INSTTYPE OBJECTTYPE
        PROPERTIES:
          number: INT;
          section: Section INVERSE Section.paragraphs;
          content: STRING;
        METHODS:
          document(): Document { RETURN SELF.section.document; };
          contains_string(s: STRING): BOOL EXTERNAL COST 10.0;
          sameDocument(p: Paragraph): BOOL
            { RETURN SELF->document() == p->document(); };
      END;
    END;
    v}

    Differences from the paper's figures: [/* ... */] comments are
    skipped (also by the VQL lexer); external implementations carry no
    body; internal bodies are a single [RETURN expression;], typechecked
    against the schema with [SELF] and the parameters bound.  The
    annotations [EXTERNAL], [UPDATES] (not side-effect free), [COST r]
    and [SELECTIVITY r] encode the signature metadata the optimizer
    uses. *)

open Soqm_vml

exception Error of string

type body = { body_cls : string; body_meth : string; body_own : bool; body : Expr.t }

val parse : string -> Schema.t * body list
(** Parse a schema text.  @raise Error with a readable message
    (including schema validation and body typechecking failures). *)

val install : Object_store.t -> body list -> unit
(** Register every parsed internal method body with the store. *)

val load : string -> Object_store.t
(** [parse] then create a store and [install] the bodies; external
    methods still need native registrations. *)
