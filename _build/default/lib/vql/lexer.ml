exception Error of string * int

let error pos fmt = Format.kasprintf (fun s -> raise (Error (s, pos))) fmt

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let keyword = function
  | "ACCESS" -> Some Token.ACCESS
  | "FROM" -> Some Token.FROM
  | "WHERE" -> Some Token.WHERE
  | "IN" -> Some Token.IN
  | "AND" -> Some Token.AND
  | "OR" -> Some Token.OR
  | "NOT" -> Some Token.NOT
  | "UNION" -> Some Token.UNION
  | "INTERSECTION" -> Some Token.INTERSECTION
  | "DIFF" -> Some Token.DIFF
  | "TRUE" -> Some Token.TRUE
  | "FALSE" -> Some Token.FALSE
  | "NULL" -> Some Token.NULL
  | _ -> None

let tokenize src =
  let n = String.length src in
  let peek i = if i < n then Some src.[i] else None in
  let rec ident i j =
    match peek j with
    | Some c when is_ident_char c -> ident i (j + 1)
    | _ -> (String.sub src i (j - i), j)
  in
  let rec number i j seen_dot =
    match peek j with
    | Some c when is_digit c -> number i (j + 1) seen_dot
    | Some '.' when not seen_dot && (match peek (j + 1) with Some d -> is_digit d | None -> false) ->
      number i (j + 1) true
    | _ ->
      let text = String.sub src i (j - i) in
      let tok =
        if seen_dot then Token.REAL_LIT (float_of_string text)
        else Token.INT_LIT (int_of_string text)
      in
      (tok, j)
  in
  let string_lit quote i =
    let buf = Buffer.create 16 in
    let rec go j =
      match peek j with
      | None -> error i "unterminated string literal"
      | Some c when c = quote -> (Token.STRING_LIT (Buffer.contents buf), j + 1)
      | Some '\\' -> (
        match peek (j + 1) with
        | Some 'n' -> Buffer.add_char buf '\n'; go (j + 2)
        | Some 't' -> Buffer.add_char buf '\t'; go (j + 2)
        | Some c -> Buffer.add_char buf c; go (j + 2)
        | None -> error j "dangling escape")
      | Some c ->
        Buffer.add_char buf c;
        go (j + 1)
    in
    go i
  in
  let rec go i acc =
    match peek i with
    | None -> List.rev (Token.EOF :: acc)
    | Some (' ' | '\t' | '\n' | '\r') -> go (i + 1) acc
    | Some '/' when peek (i + 1) = Some '/' ->
      let rec skip j = match peek j with Some '\n' -> j | Some _ -> skip (j + 1) | None -> j in
      go (skip (i + 2)) acc
    | Some '/' when peek (i + 1) = Some '*' ->
      let rec skip j =
        match peek j, peek (j + 1) with
        | Some '*', Some '/' -> j + 2
        | Some _, _ -> skip (j + 1)
        | None, _ -> error i "unterminated comment"
      in
      go (skip (i + 2)) acc
    | Some c when is_digit c ->
      let tok, j = number i i false in
      go j (tok :: acc)
    | Some c when is_ident_start c -> (
      let word, j = ident i i in
      (* IS-IN / IS-SUBSET are lexed as single tokens *)
      if String.equal word "IS" && peek j = Some '-' then
        let word2, k = ident (j + 1) (j + 1) in
        match word2 with
        | "IN" -> go k (Token.IS_IN :: acc)
        | "SUBSET" -> go k (Token.IS_SUBSET :: acc)
        | _ -> error i "expected IN or SUBSET after IS-"
      else
        match keyword word with
        | Some tok -> go j (tok :: acc)
        | None -> go j (Token.IDENT word :: acc))
    | Some ('\'' | '"' as quote) ->
      let tok, j = string_lit quote (i + 1) in
      go j (tok :: acc)
    | Some '(' -> go (i + 1) (Token.LPAREN :: acc)
    | Some ')' -> go (i + 1) (Token.RPAREN :: acc)
    | Some '[' -> go (i + 1) (Token.LBRACKET :: acc)
    | Some ']' -> go (i + 1) (Token.RBRACKET :: acc)
    | Some '{' -> go (i + 1) (Token.LBRACE :: acc)
    | Some '}' -> go (i + 1) (Token.RBRACE :: acc)
    | Some ',' -> go (i + 1) (Token.COMMA :: acc)
    | Some ':' -> go (i + 1) (Token.COLON :: acc)
    | Some ';' -> go (i + 1) (Token.SEMI :: acc)
    | Some '.' -> go (i + 1) (Token.DOT :: acc)
    | Some '-' when peek (i + 1) = Some '>' -> go (i + 2) (Token.ARROW :: acc)
    | Some '-' -> go (i + 1) (Token.MINUS :: acc)
    | Some '=' when peek (i + 1) = Some '=' -> go (i + 2) (Token.EQ :: acc)
    | Some '=' when peek (i + 1) = Some '>' -> go (i + 2) (Token.IMPLIES :: acc)
    | Some '!' when peek (i + 1) = Some '=' -> go (i + 2) (Token.NEQ :: acc)
    | Some '<' when peek (i + 1) = Some '=' && peek (i + 2) = Some '>' ->
      go (i + 3) (Token.IFF :: acc)
    | Some '<' when peek (i + 1) = Some '=' -> go (i + 2) (Token.LE :: acc)
    | Some '<' -> go (i + 1) (Token.LT :: acc)
    | Some '>' when peek (i + 1) = Some '=' -> go (i + 2) (Token.GE :: acc)
    | Some '>' -> go (i + 1) (Token.GT :: acc)
    | Some '+' when peek (i + 1) = Some '+' -> go (i + 2) (Token.CONCAT :: acc)
    | Some '+' -> go (i + 1) (Token.PLUS :: acc)
    | Some '*' -> go (i + 1) (Token.STAR :: acc)
    | Some '/' -> go (i + 1) (Token.SLASH :: acc)
    | Some c -> error i "unexpected character %C" c
  in
  go 0 []
