type t =
  | ACCESS
  | FROM
  | WHERE
  | IN
  | AND
  | OR
  | NOT
  | IS_IN
  | IS_SUBSET
  | UNION
  | INTERSECTION
  | DIFF
  | TRUE
  | FALSE
  | NULL
  | IDENT of string
  | INT_LIT of int
  | REAL_LIT of float
  | STRING_LIT of string
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | COMMA
  | COLON
  | SEMI
  | DOT
  | ARROW
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | CONCAT
  | IFF
  | IMPLIES
  | EOF

let to_string = function
  | ACCESS -> "ACCESS"
  | FROM -> "FROM"
  | WHERE -> "WHERE"
  | IN -> "IN"
  | AND -> "AND"
  | OR -> "OR"
  | NOT -> "NOT"
  | IS_IN -> "IS-IN"
  | IS_SUBSET -> "IS-SUBSET"
  | UNION -> "UNION"
  | INTERSECTION -> "INTERSECTION"
  | DIFF -> "DIFF"
  | TRUE -> "TRUE"
  | FALSE -> "FALSE"
  | NULL -> "NULL"
  | IDENT s -> s
  | INT_LIT i -> string_of_int i
  | REAL_LIT f -> string_of_float f
  | STRING_LIT s -> Printf.sprintf "%S" s
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | COMMA -> ","
  | COLON -> ":"
  | SEMI -> ";"
  | DOT -> "."
  | ARROW -> "->"
  | EQ -> "=="
  | NEQ -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | CONCAT -> "++"
  | IFF -> "<=>"
  | IMPLIES -> "=>"
  | EOF -> "<eof>"

let pp ppf t = Format.pp_print_string ppf (to_string t)
