(** Canonical translation of typed VQL queries to the general algebra
    (Section 4.1):

    {v
    ACCESS expression(x1,...,xn)
    FROM x1 IN C1, ..., xn IN Cn  WHERE condition(x1,...,xn)
    v}

    maps to

    {v
    project<a>(map<a, expression>(select<condition>(
        join<true>(get<a1,C1>, join<true>(...)))))
    v}

    Dependent ranges ([p IN d→paragraphs()], Example 2) become [flat]
    operators instead of products; closed set-valued sources become
    method sources.  An [ACCESS x] over a plain range variable skips the
    degenerate identity map and projects directly. *)

exception Error of string

val result_ref : string
(** Reference holding the ACCESS expression's value in the translated
    term (["result"]). *)

val translate : Typecheck.t -> Soqm_algebra.General.t
(** @raise Error when a dependent range references a variable bound later
    (cannot happen for typechecked queries) or a closed source is not
    translatable. *)

val query_to_algebra : Soqm_vml.Schema.t -> string -> Soqm_algebra.General.t
(** Parse, typecheck and translate in one step.
    @raise Parser.Error, Typecheck.Error or Error accordingly. *)
