(** Hand-written lexer for VQL.

    Strings are delimited by single or double quotes (the paper writes
    ['Implementation']).  [IS-IN] and [IS-SUBSET] are lexed as single
    tokens.  Comments run from [//] to end of line. *)

exception Error of string * int
(** Message and byte offset. *)

val tokenize : string -> Token.t list
(** All tokens, ending with [EOF].  @raise Error on bad input. *)
