open Soqm_vml
open Soqm_algebra

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let result_ref = "result"

let subset xs ys = List.for_all (fun x -> List.mem x ys) xs

(* every reference introduced anywhere in the tree, not just the output *)
let all_refs tree =
  List.sort_uniq String.compare
    (List.concat_map
       (fun sub -> try General.refs sub with Invalid_argument _ -> [])
       (General.subexpressions tree))

let fresh_sub_ref =
  let counter = ref 0 in
  fun base ->
    incr counter;
    Printf.sprintf "$q%d_%s" !counter base

let rec translate (q : Typecheck.t) : General.t =
  let from_clause =
    List.fold_left
      (fun acc { Typecheck.var; source; _ } ->
        let join_in acc tree =
          match acc with
          | None -> Some tree
          | Some t -> Some (General.Join (Expr.Const (Value.Bool true), t, tree))
        in
        match acc, source with
        | _, Typecheck.Class_extent c -> join_in acc (General.Get (var, c))
        | _, Typecheck.Subquery_src sub ->
          join_in acc (integrate_subquery ~target:var sub)
        | None, Typecheck.Set_expr e ->
          if Expr.refs e = [] then Some (General.MethodSource (var, e))
          else error "first range source for %S is not closed" var
        | Some t, Typecheck.Set_expr e ->
          let avail = General.refs t in
          if Expr.refs e = [] then
            Some
              (General.Join
                 (Expr.Const (Value.Bool true), t, General.MethodSource (var, e)))
          else if subset (Expr.refs e) avail then Some (General.Flat (var, e, t))
          else error "range source for %S references later variables" var)
      None q.Typecheck.ranges
  in
  let from_clause =
    match from_clause with
    | Some t -> t
    | None -> error "query has no FROM ranges"
  in
  (* IS-IN (subquery) conjuncts become semijoins: join the subquery in
     under a fresh reference, restrict to equality, and let the final
     projection drop the reference *)
  let with_memberships =
    List.fold_left
      (fun acc { Typecheck.member; of_subquery } ->
        let r = fresh_sub_ref "m" in
        let sub_tree = integrate_subquery ~target:r of_subquery in
        General.Select
          ( Expr.Binop (Expr.Eq, member, Expr.Ref r),
            General.Join (Expr.Const (Value.Bool true), acc, sub_tree) ))
      from_clause q.Typecheck.memberships
  in
  let selected =
    match q.Typecheck.where with
    | None -> with_memberships
    | Some cond -> General.Select (cond, with_memberships)
  in
  match q.Typecheck.access with
  | Expr.Ref x -> General.Project ([ x ], selected)
  | access -> General.Project ([ result_ref ], General.Map (result_ref, access, selected))

(* Translate a nested query and splice it in: all of its references are
   renamed fresh (they must not collide with the outer query's), and its
   single output reference becomes [target]. *)
and integrate_subquery ~target (sub : Typecheck.t) : General.t =
  let tree = translate sub in
  let out =
    match General.refs tree with
    | [ r ] -> r
    | rs ->
      error "nested query produces %d references (%s); exactly one expected"
        (List.length rs) (String.concat ", " rs)
  in
  let tree =
    List.fold_left
      (fun t r ->
        if String.equal r out then t
        else General.rename_ref ~old_ref:r ~new_ref:(fresh_sub_ref r) t)
      tree (all_refs tree)
  in
  if String.equal out target then tree
  else General.rename_ref ~old_ref:out ~new_ref:target tree

let query_to_algebra schema src =
  translate (Typecheck.check_query schema (Parser.parse_query src))
