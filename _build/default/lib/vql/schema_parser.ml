open Soqm_vml

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type body = { body_cls : string; body_meth : string; body_own : bool; body : Expr.t }

(* ------------------------------------------------------------------ *)
(* Token-stream helpers                                                *)
(* ------------------------------------------------------------------ *)

type state = { mutable tokens : Token.t list }

let peek st = match st.tokens with [] -> Token.EOF | t :: _ -> t
let advance st = match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let expect st tok =
  let got = peek st in
  if got = tok then advance st
  else error "expected %s but found %s" (Token.to_string tok) (Token.to_string got)

let expect_ident st =
  match peek st with
  | Token.IDENT x -> advance st; x
  | t -> error "expected identifier, found %s" (Token.to_string t)

let expect_keyword st kw =
  let got = expect_ident st in
  if not (String.equal got kw) then error "expected %s, found %s" kw got

let at_keyword st kw = peek st = Token.IDENT kw

let expect_float st =
  match peek st with
  | Token.REAL_LIT f -> advance st; f
  | Token.INT_LIT i -> advance st; float_of_int i
  | t -> error "expected a number, found %s" (Token.to_string t)

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let rec parse_type st =
  match peek st with
  | Token.IDENT "STRING" -> advance st; Vtype.TString
  | Token.IDENT "INT" -> advance st; Vtype.TInt
  | Token.IDENT "REAL" -> advance st; Vtype.TReal
  | Token.IDENT "BOOL" -> advance st; Vtype.TBool
  | Token.IDENT "OID" -> advance st; Vtype.TAnyObj
  | Token.IDENT "ARRAY" ->
    advance st;
    expect st Token.LT;
    let elt = parse_type st in
    expect st Token.GT;
    Vtype.TArray elt
  | Token.IDENT "DICTIONARY" ->
    advance st;
    expect st Token.LT;
    let k = parse_type st in
    expect st Token.COMMA;
    let v = parse_type st in
    expect st Token.GT;
    Vtype.TDict (k, v)
  | Token.IDENT c -> advance st; Vtype.TObj c
  | Token.LBRACE ->
    advance st;
    let elt = parse_type st in
    expect st Token.RBRACE;
    Vtype.TSet elt
  | t -> error "expected a type, found %s" (Token.to_string t)

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

type raw_body = {
  raw_cls : string;
  raw_meth : string;
  raw_own : bool;
  raw_params : (string * Vtype.t) list;
  raw_tokens : Token.t list;
}

let parse_property st =
  let name = expect_ident st in
  expect st Token.COLON;
  let ty = parse_type st in
  let inverse =
    if at_keyword st "INVERSE" then (
      advance st;
      let c = expect_ident st in
      expect st Token.DOT;
      let p = expect_ident st in
      Some (c, p))
    else None
  in
  expect st Token.SEMI;
  Schema.prop ?inverse name ty

(* tokens of a RETURN body up to its terminating ';' *)
let parse_body_tokens st =
  expect_keyword st "RETURN";
  let rec collect acc depth =
    match peek st with
    | Token.SEMI when depth = 0 -> advance st; List.rev acc
    | Token.EOF -> error "unterminated method body"
    | tok ->
      advance st;
      let depth =
        match tok with
        | Token.LPAREN | Token.LBRACKET | Token.LBRACE -> depth + 1
        | Token.RPAREN | Token.RBRACKET | Token.RBRACE -> depth - 1
        | _ -> depth
      in
      collect (tok :: acc) depth
  in
  let toks = collect [] 0 in
  expect st Token.RBRACE;
  toks

let parse_method st ~cls ~own bodies =
  let name = expect_ident st in
  expect st Token.LPAREN;
  let params =
    if peek st = Token.RPAREN then []
    else
      let rec go acc =
        let p = expect_ident st in
        expect st Token.COLON;
        let ty = parse_type st in
        match peek st with
        | Token.COMMA -> advance st; go ((p, ty) :: acc)
        | _ -> List.rev ((p, ty) :: acc)
      in
      go []
  in
  expect st Token.RPAREN;
  expect st Token.COLON;
  let returns = parse_type st in
  (* annotations *)
  let kind = ref Schema.Internal in
  let pure = ref true in
  let cost = ref None in
  let selectivity = ref None in
  let rec annots () =
    match peek st with
    | Token.IDENT "EXTERNAL" -> advance st; kind := Schema.External; annots ()
    | Token.IDENT "UPDATES" -> advance st; pure := false; annots ()
    | Token.IDENT "COST" -> advance st; cost := Some (expect_float st); annots ()
    | Token.IDENT "SELECTIVITY" ->
      advance st;
      selectivity := Some (expect_float st);
      annots ()
    | _ -> ()
  in
  annots ();
  (* optional body *)
  (if peek st = Token.LBRACE then (
     advance st;
     if !kind = Schema.External then
       error "%s.%s: external methods carry no body" cls name;
     if own then
       error "%s->%s: OWNTYPE method bodies must be EXTERNAL" cls name;
     let raw_tokens = parse_body_tokens st in
     bodies :=
       { raw_cls = cls; raw_meth = name; raw_own = own; raw_params = params; raw_tokens }
       :: !bodies)
   else if !kind = Schema.Internal then
     error "%s%s%s: internal methods need a { RETURN ...; } body" cls
       (if own then "->" else ".") name);
  expect st Token.SEMI;
  Schema.meth ~kind:!kind ~side_effect_free:!pure ?cost:!cost
    ?selectivity:!selectivity name params returns

let rec parse_sections st ~cls ~own props meths bodies =
  if at_keyword st "PROPERTIES" then (
    advance st;
    expect st Token.COLON;
    let rec go () =
      match peek st with
      | Token.IDENT ("METHODS" | "END" | "PROPERTIES") -> ()
      | _ ->
        props := parse_property st :: !props;
        go ()
    in
    go ();
    parse_sections st ~cls ~own props meths bodies)
  else if at_keyword st "METHODS" then (
    advance st;
    expect st Token.COLON;
    let rec go () =
      match peek st with
      | Token.IDENT ("METHODS" | "END" | "PROPERTIES") -> ()
      | _ ->
        meths := parse_method st ~cls ~own bodies :: !meths;
        go ()
    in
    go ();
    parse_sections st ~cls ~own props meths bodies)

let parse_class st bodies =
  expect_keyword st "CLASS";
  let cls = expect_ident st in
  let own_methods = ref [] in
  let properties = ref [] in
  let inst_methods = ref [] in
  let rec blocks () =
    if at_keyword st "OWNTYPE" then (
      advance st;
      expect_keyword st "OBJECTTYPE";
      let props = ref [] in
      parse_sections st ~cls ~own:true props own_methods bodies;
      if !props <> [] then error "CLASS %s: OWNTYPE properties not supported" cls;
      expect_keyword st "END";
      expect st Token.SEMI;
      blocks ())
    else if at_keyword st "INSTTYPE" then (
      advance st;
      expect_keyword st "OBJECTTYPE";
      parse_sections st ~cls ~own:false properties inst_methods bodies;
      expect_keyword st "END";
      expect st Token.SEMI;
      blocks ())
  in
  blocks ();
  expect_keyword st "END";
  expect st Token.SEMI;
  Schema.cls cls
    ~own_methods:(List.rev !own_methods)
    ~inst_methods:(List.rev !inst_methods)
    ~properties:(List.rev !properties)

(* ------------------------------------------------------------------ *)
(* Bodies: typecheck against the finished schema                       *)
(* ------------------------------------------------------------------ *)

(* The paper's bodies use the receiver's properties without
   qualification ([document() { RETURN section.document; }]): a bare
   identifier that is neither SELF, a parameter nor a class, but is a
   property or method of the receiver's class, means [SELF.x]. *)
let rec scope_self schema ~cls ~params (e : Ast.expr) : Ast.expr =
  let go = scope_self schema ~cls ~params in
  match e with
  | Ast.Var x
    when (not (String.equal x "SELF"))
         && (not (List.mem_assoc x params))
         && Option.is_none (Schema.find_class schema x)
         && Option.is_some (Schema.property schema ~cls ~prop:x) ->
    Ast.Prop_access (Ast.Var "SELF", x)
  | Ast.Subquery _ -> error "%s: nested queries not allowed in method bodies" cls
  | Ast.Var _ | Ast.Int_lit _ | Ast.Real_lit _ | Ast.Str_lit _ | Ast.Bool_lit _
  | Ast.Null_lit ->
    e
  | Ast.Prop_access (e', p) -> Ast.Prop_access (go e', p)
  | Ast.Method_call (e', m, args) -> Ast.Method_call (go e', m, List.map go args)
  | Ast.Binop (op, a, b) -> Ast.Binop (op, go a, go b)
  | Ast.Not e' -> Ast.Not (go e')
  | Ast.Tuple_lit fields -> Ast.Tuple_lit (List.map (fun (l, e') -> (l, go e')) fields)
  | Ast.Set_lit es -> Ast.Set_lit (List.map go es)

let check_body schema (raw : raw_body) : body =
  let ast =
    try Parser.parse_expr_tokens (raw.raw_tokens @ [ Token.EOF ])
    with Parser.Error msg ->
      error "body of %s.%s: %s" raw.raw_cls raw.raw_meth msg
  in
  let ast = scope_self schema ~cls:raw.raw_cls ~params:raw.raw_params ast in
  let env = ("SELF", Vtype.TObj raw.raw_cls) :: raw.raw_params in
  let typed, ty =
    try Typecheck.check_expr schema ~env ast
    with Typecheck.Error msg ->
      error "body of %s.%s: %s" raw.raw_cls raw.raw_meth msg
  in
  (match Schema.inst_method schema ~cls:raw.raw_cls ~meth:raw.raw_meth with
  | Some msig ->
    if not (Vtype.subtype ty msig.Schema.returns) then
      error "body of %s.%s has type %s, declared %s" raw.raw_cls raw.raw_meth
        (Vtype.to_string ty)
        (Vtype.to_string msig.Schema.returns)
  | None -> ());
  let body =
    List.fold_left
      (fun e (p, _) -> Expr.subst_ref p (Expr.Param p) e)
      (Expr.subst_ref "SELF" Expr.Self typed)
      raw.raw_params
  in
  { body_cls = raw.raw_cls; body_meth = raw.raw_meth; body_own = raw.raw_own; body }

let parse src =
  let tokens =
    match Lexer.tokenize src with
    | exception Lexer.Error (msg, pos) -> error "lexical error at %d: %s" pos msg
    | toks -> toks
  in
  let st = { tokens } in
  let bodies = ref [] in
  let rec classes acc =
    if peek st = Token.EOF then List.rev acc
    else classes (parse_class st bodies :: acc)
  in
  let class_defs = classes [] in
  let schema =
    try Schema.make class_defs with Invalid_argument msg -> error "%s" msg
  in
  (schema, List.rev_map (check_body schema) !bodies)

let install store bodies =
  List.iter
    (fun b ->
      if b.body_own then
        Object_store.register_own_method store ~cls:b.body_cls ~meth:b.body_meth
          (Object_store.Body b.body)
      else
        Object_store.register_inst_method store ~cls:b.body_cls ~meth:b.body_meth
          (Object_store.Body b.body))
    bodies

let load src =
  let schema, bodies = parse src in
  let store = Object_store.create schema in
  install store bodies;
  store
