lib/vql/to_algebra.mli: Soqm_algebra Soqm_vml Typecheck
