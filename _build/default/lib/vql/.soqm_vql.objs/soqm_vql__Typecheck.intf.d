lib/vql/typecheck.mli: Ast Expr Schema Soqm_vml Vtype
