lib/vql/parser.ml: Ast Expr Format Lexer List Soqm_vml Token
