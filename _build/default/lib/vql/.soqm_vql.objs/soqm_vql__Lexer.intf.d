lib/vql/lexer.mli: Token
