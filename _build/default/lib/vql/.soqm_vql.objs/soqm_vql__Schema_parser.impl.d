lib/vql/schema_parser.ml: Ast Expr Format Lexer List Object_store Option Parser Schema Soqm_vml String Token Typecheck Vtype
