lib/vql/ast.mli: Expr Format Soqm_vml
