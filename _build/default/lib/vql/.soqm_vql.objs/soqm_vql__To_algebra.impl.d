lib/vql/to_algebra.ml: Expr Format General List Parser Printf Soqm_algebra Soqm_vml String Typecheck Value
