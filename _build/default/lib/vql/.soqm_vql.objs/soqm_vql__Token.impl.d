lib/vql/token.ml: Format Printf
