lib/vql/ast.ml: Expr Format Soqm_vml
