lib/vql/parser.mli: Ast Token
