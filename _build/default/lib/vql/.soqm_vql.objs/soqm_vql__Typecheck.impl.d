lib/vql/typecheck.ml: Ast Expr Format List Option Schema Soqm_vml Value Vtype
