lib/vql/lexer.ml: Buffer Format List String Token
