lib/vql/schema_parser.mli: Expr Object_store Schema Soqm_vml
