lib/vql/token.mli: Format
