open Soqm_vml

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type state = { mutable tokens : Token.t list }

let peek st = match st.tokens with [] -> Token.EOF | t :: _ -> t

let advance st =
  match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let expect st tok =
  let got = peek st in
  if got = tok then advance st
  else error "expected %s but found %s" (Token.to_string tok) (Token.to_string got)

let expect_ident st =
  match peek st with
  | Token.IDENT x ->
    advance st;
    x
  | t -> error "expected identifier but found %s" (Token.to_string t)

(* primary := literal | ident | '(' expr ')' | '[' fields ']' | '{' exprs '}' *)
let rec primary st : Ast.expr =
  match peek st with
  | Token.INT_LIT i -> advance st; Ast.Int_lit i
  | Token.REAL_LIT f -> advance st; Ast.Real_lit f
  | Token.STRING_LIT s -> advance st; Ast.Str_lit s
  | Token.TRUE -> advance st; Ast.Bool_lit true
  | Token.FALSE -> advance st; Ast.Bool_lit false
  | Token.NULL -> advance st; Ast.Null_lit
  | Token.IDENT x -> advance st; Ast.Var x
  | Token.LPAREN when (match st.tokens with _ :: Token.ACCESS :: _ -> true | _ -> false) ->
    advance st;
    let q = query_body st in
    expect st Token.RPAREN;
    Ast.Subquery q
  | Token.LPAREN ->
    advance st;
    let e = expr st in
    expect st Token.RPAREN;
    e
  | Token.LBRACKET ->
    advance st;
    let rec fields acc =
      let label = expect_ident st in
      expect st Token.COLON;
      let e = expr st in
      let acc = (label, e) :: acc in
      match peek st with
      | Token.COMMA -> advance st; fields acc
      | _ -> List.rev acc
    in
    let fs = if peek st = Token.RBRACKET then [] else fields [] in
    expect st Token.RBRACKET;
    Ast.Tuple_lit fs
  | Token.LBRACE ->
    advance st;
    let rec elems acc =
      let e = expr st in
      let acc = e :: acc in
      match peek st with
      | Token.COMMA -> advance st; elems acc
      | _ -> List.rev acc
    in
    let es = if peek st = Token.RBRACE then [] else elems [] in
    expect st Token.RBRACE;
    Ast.Set_lit es
  | t -> error "unexpected token %s" (Token.to_string t)

(* postfix := primary (('.' ident) | ('->' ident '(' args ')'))* *)
and postfix st : Ast.expr =
  let rec go e =
    match peek st with
    | Token.DOT ->
      advance st;
      let p = expect_ident st in
      go (Ast.Prop_access (e, p))
    | Token.ARROW ->
      advance st;
      let m = expect_ident st in
      expect st Token.LPAREN;
      let args =
        if peek st = Token.RPAREN then []
        else
          let rec more acc =
            let a = expr st in
            match peek st with
            | Token.COMMA -> advance st; more (a :: acc)
            | _ -> List.rev (a :: acc)
          in
          more []
      in
      expect st Token.RPAREN;
      go (Ast.Method_call (e, m, args))
    | Token.LBRACKET ->
      advance st;
      let idx = expr st in
      expect st Token.RBRACKET;
      go (Ast.Binop (Expr.IndexOp, e, idx))
    | _ -> e
  in
  go (primary st)

and multiplicative st : Ast.expr =
  let rec go e =
    match peek st with
    | Token.STAR -> advance st; go (Ast.Binop (Expr.Mul, e, postfix st))
    | Token.SLASH -> advance st; go (Ast.Binop (Expr.Div, e, postfix st))
    | Token.INTERSECTION -> advance st; go (Ast.Binop (Expr.InterOp, e, postfix st))
    | _ -> e
  in
  go (postfix st)

and additive st : Ast.expr =
  let rec go e =
    match peek st with
    | Token.PLUS -> advance st; go (Ast.Binop (Expr.Add, e, multiplicative st))
    | Token.MINUS -> advance st; go (Ast.Binop (Expr.Sub, e, multiplicative st))
    | Token.CONCAT -> advance st; go (Ast.Binop (Expr.Concat, e, multiplicative st))
    | Token.UNION -> advance st; go (Ast.Binop (Expr.UnionOp, e, multiplicative st))
    | Token.DIFF -> advance st; go (Ast.Binop (Expr.DiffOp, e, multiplicative st))
    | _ -> e
  in
  go (multiplicative st)

and comparison st : Ast.expr =
  let lhs = additive st in
  let cmp op =
    advance st;
    Ast.Binop (op, lhs, additive st)
  in
  match peek st with
  | Token.EQ -> cmp Expr.Eq
  | Token.NEQ -> cmp Expr.Neq
  | Token.LT -> cmp Expr.Lt
  | Token.LE -> cmp Expr.Le
  | Token.GT -> cmp Expr.Gt
  | Token.GE -> cmp Expr.Ge
  | Token.IS_IN -> cmp Expr.IsIn
  | Token.IS_SUBSET -> cmp Expr.IsSubset
  | _ -> lhs

and negation st : Ast.expr =
  match peek st with
  | Token.NOT ->
    advance st;
    Ast.Not (negation st)
  | _ -> comparison st

and conjunction st : Ast.expr =
  let rec go e =
    match peek st with
    | Token.AND -> advance st; go (Ast.Binop (Expr.And, e, negation st))
    | _ -> e
  in
  go (negation st)

and expr st : Ast.expr =
  let rec go e =
    match peek st with
    | Token.OR -> advance st; go (Ast.Binop (Expr.Or, e, conjunction st))
    | _ -> e
  in
  go (conjunction st)

and range st : Ast.range =
  let var = expect_ident st in
  expect st Token.IN;
  let source = expr st in
  { Ast.var; source }

and query_body st : Ast.query =
  expect st Token.ACCESS;
  let access = expr st in
  expect st Token.FROM;
  let rec ranges acc =
    let r = range st in
    match peek st with
    | Token.COMMA -> advance st; ranges (r :: acc)
    | _ -> List.rev (r :: acc)
  in
  let ranges = ranges [] in
  let where =
    match peek st with
    | Token.WHERE ->
      advance st;
      Some (expr st)
    | _ -> None
  in
  { Ast.access; ranges; where }

let query st : Ast.query =
  let q = query_body st in
  expect st Token.EOF;
  q

let with_tokens src f =
  match Lexer.tokenize src with
  | exception Lexer.Error (msg, pos) -> error "lexical error at offset %d: %s" pos msg
  | tokens -> f { tokens }

let parse_query src = with_tokens src query

let parse_expr src =
  with_tokens src (fun st ->
      let e = expr st in
      expect st Token.EOF;
      e)

let parse_expr_tokens tokens =
  let st = { tokens } in
  let e = expr st in
  expect st Token.EOF;
  e
