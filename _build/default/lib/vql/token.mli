(** Lexical tokens of VQL. *)

type t =
  | ACCESS
  | FROM
  | WHERE
  | IN
  | AND
  | OR
  | NOT
  | IS_IN
  | IS_SUBSET
  | UNION
  | INTERSECTION
  | DIFF
  | TRUE
  | FALSE
  | NULL
  | IDENT of string
  | INT_LIT of int
  | REAL_LIT of float
  | STRING_LIT of string
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | COMMA
  | COLON
  | SEMI
  | DOT
  | ARROW  (** [->] *)
  | EQ  (** [==] *)
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | CONCAT  (** [++] *)
  | IFF  (** [<=>], in equivalence specifications *)
  | IMPLIES  (** [=>], in equivalence specifications *)
  | EOF

val pp : Format.formatter -> t -> unit
val to_string : t -> string
