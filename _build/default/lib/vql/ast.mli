(** Surface abstract syntax of VQL (Section 2.2).

    A query has the form
    {v
    ACCESS expr(x1,...,xn)
    FROM x1 IN S1, ..., xn IN Sn
    WHERE cond(x1,...,xn)
    v}
    where the [Si] are class names or set-valued expressions (possibly
    depending on earlier range variables — Example 2), and methods may
    appear in any clause.  Identifiers are unresolved here; the
    typechecker decides whether a [Var] names a range variable or a
    class. *)

open Soqm_vml

type expr =
  | Var of string
  | Subquery of query
      (** a parenthesized [ACCESS ... FROM ... WHERE ...] used as a
          set-valued expression — the nested queries the paper defers to
          future work (Section 8).  Supported (uncorrelated) positions:
          FROM sources and the right operand of IS-IN. *)
  | Int_lit of int
  | Real_lit of float
  | Str_lit of string
  | Bool_lit of bool
  | Null_lit
  | Prop_access of expr * string  (** [e.p] *)
  | Method_call of expr * string * expr list  (** [e->m(args)] *)
  | Binop of Expr.binop * expr * expr
  | Not of expr
  | Tuple_lit of (string * expr) list  (** [[l1: e1, ...]] *)
  | Set_lit of expr list  (** [{e1, ..., en}] *)

and range = { var : string; source : expr }

and query = {
  access : expr;
  ranges : range list;
  where : expr option;
}

val pp_expr : Format.formatter -> expr -> unit
val pp : Format.formatter -> query -> unit
val to_string : query -> string
