open Soqm_vml

type expr =
  | Var of string
  | Subquery of query
  | Int_lit of int
  | Real_lit of float
  | Str_lit of string
  | Bool_lit of bool
  | Null_lit
  | Prop_access of expr * string
  | Method_call of expr * string * expr list
  | Binop of Expr.binop * expr * expr
  | Not of expr
  | Tuple_lit of (string * expr) list
  | Set_lit of expr list

and range = { var : string; source : expr }
and query = { access : expr; ranges : range list; where : expr option }

let rec pp_expr ppf = function
  | Var x -> Format.pp_print_string ppf x
  | Subquery q -> Format.fprintf ppf "(%a)" pp q
  | Int_lit i -> Format.pp_print_int ppf i
  | Real_lit f -> Format.fprintf ppf "%g" f
  | Str_lit s -> Format.fprintf ppf "'%s'" s
  | Bool_lit b -> Format.pp_print_string ppf (if b then "TRUE" else "FALSE")
  | Null_lit -> Format.pp_print_string ppf "NULL"
  | Prop_access (e, p) -> Format.fprintf ppf "%a.%s" pp_atom e p
  | Method_call (e, m, args) ->
    Format.fprintf ppf "%a->%s(%a)" pp_atom e m
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         pp_expr)
      args
  | Binop (op, a, b) ->
    Format.fprintf ppf "%a %a %a" pp_atom a Expr.pp_binop op pp_atom b
  | Not e -> Format.fprintf ppf "NOT %a" pp_atom e
  | Tuple_lit fields ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         (fun ppf (l, e) -> Format.fprintf ppf "%s: %a" l pp_expr e))
      fields
  | Set_lit es ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_expr)
      es

and pp_atom ppf e =
  match e with
  | Binop _ | Not _ -> Format.fprintf ppf "(%a)" pp_expr e
  | _ -> pp_expr ppf e

and pp ppf q =
  Format.fprintf ppf "@[<v>ACCESS %a@,FROM %a" pp_expr q.access
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf r -> Format.fprintf ppf "%s IN %a" r.var pp_expr r.source))
    q.ranges;
  (match q.where with
  | Some cond -> Format.fprintf ppf "@,WHERE %a" pp_expr cond
  | None -> ());
  Format.fprintf ppf "@]"

let to_string q = Format.asprintf "%a" pp q
