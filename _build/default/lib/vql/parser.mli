(** Recursive-descent parser for VQL.

    Precedence, loosest first: [OR] < [AND] < [NOT] < comparisons
    ([==], [!=], [<], [<=], [>], [>=], [IS-IN], [IS-SUBSET]) < additive
    ([+], [-], [UNION], [DIFF], [++]) < multiplicative ([*], [/],
    [INTERSECTION]) < postfix ([.p], [->m(...)]) < primary. *)

exception Error of string

val parse_query : string -> Ast.query
(** Parse a complete [ACCESS ... FROM ... [WHERE ...]] query.
    @raise Error with a readable message on syntax errors. *)

val parse_expr : string -> Ast.expr
(** Parse a stand-alone expression (used by tests and the equivalence
    specification front-end). *)

val parse_expr_tokens : Token.t list -> Ast.expr
(** Parse an expression from a complete token list (ending in [EOF]);
    used by the specification-language parser, which splits its input at
    top-level connectives before delegating here. *)
