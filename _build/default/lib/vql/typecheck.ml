open Soqm_vml

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type source =
  | Class_extent of string
  | Set_expr of Expr.t
  | Subquery_src of t

and trange = { var : string; var_type : Vtype.t; source : source }
and membership = { member : Expr.t; of_subquery : t }

and t = {
  access : Expr.t;
  access_type : Vtype.t;
  ranges : trange list;
  where : Expr.t option;
  memberships : membership list;
}

let is_class schema name = Option.is_some (Schema.find_class schema name)

let compatible a b =
  Vtype.subtype a b || Vtype.subtype b a || a = Vtype.TAnyObj || b = Vtype.TAnyObj

let numeric = function Vtype.TInt | Vtype.TReal -> true | _ -> false

(* Result type of accessing property [p] on a receiver of type [ty],
   including set lifting. *)
let access_type schema ty p =
  match ty with
  | Vtype.TObj c -> (
    match Schema.property_type schema ~cls:c ~prop:p with
    | Some pty -> Some pty
    | None -> None)
  | Vtype.TSet (Vtype.TObj c) -> (
    match Schema.property_type schema ~cls:c ~prop:p with
    | Some (Vtype.TSet _ as pty) -> Some pty
    | Some scalar -> Some (Vtype.TSet scalar)
    | None -> None)
  | Vtype.TTuple fields -> List.assoc_opt p fields
  | _ -> None

let rec check_expr schema ~env (e : Ast.expr) : Expr.t * Vtype.t =
  match e with
  | Ast.Subquery _ ->
    error
      "nested queries are only supported as FROM sources and as the right \
       operand of a top-level IS-IN conjunct"
  | Ast.Int_lit i -> (Expr.Const (Value.Int i), Vtype.TInt)
  | Ast.Real_lit f -> (Expr.Const (Value.Real f), Vtype.TReal)
  | Ast.Str_lit s -> (Expr.Const (Value.Str s), Vtype.TString)
  | Ast.Bool_lit b -> (Expr.Const (Value.Bool b), Vtype.TBool)
  | Ast.Null_lit -> (Expr.Const Value.Null, Vtype.TAnyObj)
  | Ast.Var x -> (
    match List.assoc_opt x env with
    | Some ty -> (Expr.Ref x, ty)
    | None ->
      if is_class schema x then
        (* a bare class object: typed as the set of its instances so that
           [x IN ClassName] and class-method receivers both work *)
        (Expr.ClassObj x, Vtype.TSet (Vtype.TObj x))
      else error "unknown variable or class %S" x)
  | Ast.Prop_access (e', p) -> (
    let te, ty = check_expr schema ~env e' in
    match access_type schema ty p with
    | Some pty -> (Expr.Prop (te, p), pty)
    | None -> error "type %s has no property %S" (Vtype.to_string ty) p)
  | Ast.Method_call (Ast.Var c, m, args) when (not (List.mem_assoc c env)) && is_class schema c -> (
    (* OWNTYPE method on the class object *)
    match Schema.own_method schema ~cls:c ~meth:m with
    | Some msig ->
      let targs = check_args schema ~env (c ^ "->" ^ m) msig.Schema.params args in
      (Expr.Call (Expr.ClassObj c, m, targs), msig.Schema.returns)
    | None -> error "class %s has no OWNTYPE method %S" c m)
  | Ast.Method_call (recv, m, args) -> (
    let trecv, rty = check_expr schema ~env recv in
    let inst_call c lifted =
      match Schema.inst_method schema ~cls:c ~meth:m with
      | Some msig ->
        let targs = check_args schema ~env (c ^ "." ^ m) msig.Schema.params args in
        let ret = msig.Schema.returns in
        let ret =
          if not lifted then ret
          else match ret with Vtype.TSet _ -> ret | scalar -> Vtype.TSet scalar
        in
        (Expr.Call (trecv, m, targs), ret)
      | None -> (
        (* default property-access method *)
        match Schema.property_type schema ~cls:c ~prop:m with
        | Some pty when args = [] ->
          let pty =
            if not lifted then pty
            else match pty with Vtype.TSet _ -> pty | scalar -> Vtype.TSet scalar
          in
          (Expr.Call (trecv, m, []), pty)
        | _ -> error "class %s has no method %S" c m)
    in
    match rty with
    | Vtype.TObj c -> inst_call c false
    | Vtype.TSet (Vtype.TObj c) -> inst_call c true
    | ty -> error "method call ->%s on non-object type %s" m (Vtype.to_string ty))
  | Ast.Binop (op, a, b) -> check_binop schema ~env op a b
  | Ast.Not e' -> (
    let te, ty = check_expr schema ~env e' in
    match ty with
    | Vtype.TBool -> (Expr.Not te, Vtype.TBool)
    | _ -> error "NOT applied to non-boolean %s" (Vtype.to_string ty))
  | Ast.Tuple_lit fields ->
    let typed = List.map (fun (l, e') -> (l, check_expr schema ~env e')) fields in
    ( Expr.TupleE (List.map (fun (l, (te, _)) -> (l, te)) typed),
      Vtype.ttuple (List.map (fun (l, (_, ty)) -> (l, ty)) typed) )
  | Ast.Set_lit es ->
    let typed = List.map (check_expr schema ~env) es in
    let elt_ty =
      List.fold_left
        (fun acc (_, ty) ->
          match acc with
          | None -> Some ty
          | Some t ->
            if compatible t ty then Some (if Vtype.subtype t ty then ty else t)
            else error "heterogeneous set literal")
        None typed
    in
    ( Expr.SetE (List.map fst typed),
      Vtype.TSet (Option.value ~default:Vtype.TAnyObj elt_ty) )

and check_args schema ~env what params args =
  if List.length params <> List.length args then
    error "%s expects %d argument(s), got %d" what (List.length params)
      (List.length args);
  List.map2
    (fun (pname, pty) arg ->
      let targ, aty = check_expr schema ~env arg in
      if not (compatible aty pty) then
        error "%s: argument %s has type %s, expected %s" what pname
          (Vtype.to_string aty) (Vtype.to_string pty);
      targ)
    params args

and check_binop schema ~env op a b =
  let ta, tya = check_expr schema ~env a in
  let tb, tyb = check_expr schema ~env b in
  let result =
    match op with
    | Expr.Eq | Expr.Neq ->
      if compatible tya tyb then Vtype.TBool
      else
        error "incomparable types %s and %s" (Vtype.to_string tya)
          (Vtype.to_string tyb)
    | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge ->
      if (numeric tya && numeric tyb) || (tya = Vtype.TString && tyb = Vtype.TString)
      then Vtype.TBool
      else
        error "ordering comparison of %s and %s" (Vtype.to_string tya)
          (Vtype.to_string tyb)
    | Expr.IsIn -> (
      match tyb with
      | Vtype.TSet elt when compatible tya elt -> Vtype.TBool
      | Vtype.TSet _ ->
        error "IS-IN: element type %s does not match set %s"
          (Vtype.to_string tya) (Vtype.to_string tyb)
      | _ -> error "IS-IN: right operand is not a set")
    | Expr.IsSubset -> (
      match tya, tyb with
      | Vtype.TSet ea, Vtype.TSet eb when compatible ea eb -> Vtype.TBool
      | _ -> error "IS-SUBSET: operands must be compatible sets")
    | Expr.And | Expr.Or ->
      if tya = Vtype.TBool && tyb = Vtype.TBool then Vtype.TBool
      else error "boolean operator on non-boolean operands"
    | Expr.Add | Expr.Sub | Expr.Mul | Expr.Div ->
      if numeric tya && numeric tyb then
        if tya = Vtype.TInt && tyb = Vtype.TInt then Vtype.TInt else Vtype.TReal
      else error "arithmetic on non-numeric operands"
    | Expr.Concat ->
      if tya = Vtype.TString && tyb = Vtype.TString then Vtype.TString
      else error "++ on non-string operands"
    | Expr.IndexOp -> (
      match tya, tyb with
      | Vtype.TArray elt, Vtype.TInt -> elt
      | Vtype.TDict (k, v), ty when compatible k ty -> v
      | Vtype.TArray _, _ -> error "array index must be an INT"
      | _ ->
        error "[] applied to %s (neither ARRAY nor DICTIONARY)"
          (Vtype.to_string tya))
    | Expr.UnionOp | Expr.InterOp | Expr.DiffOp -> (
      match tya, tyb with
      | Vtype.TSet ea, Vtype.TSet eb when compatible ea eb ->
        if Vtype.subtype ea eb then Vtype.TSet eb else Vtype.TSet ea
      | _ -> error "set operation on incompatible operands")
  in
  (Expr.Binop (op, ta, tb), result)

(* top-level conjuncts of a WHERE clause *)
let rec conjuncts = function
  | Ast.Binop (Expr.And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let rec check_query schema (q : Ast.query) : t =
  let ranges, env =
    List.fold_left
      (fun (ranges, env) { Ast.var; source } ->
        if List.mem_assoc var env then error "duplicate range variable %S" var;
        match source with
        | Ast.Var c when (not (List.mem_assoc c env)) && is_class schema c ->
          ( { var; var_type = Vtype.TObj c; source = Class_extent c } :: ranges,
            (var, Vtype.TObj c) :: env )
        | Ast.Subquery sub ->
          (* nested queries are uncorrelated: checked in an empty scope *)
          let tsub = check_query schema sub in
          let elt = tsub.access_type in
          ( { var; var_type = elt; source = Subquery_src tsub } :: ranges,
            (var, elt) :: env )
        | _ -> (
          let te, ty = check_expr schema ~env source in
          match ty with
          | Vtype.TSet elt ->
            ( { var; var_type = elt; source = Set_expr te } :: ranges,
              (var, elt) :: env )
          | _ ->
            error "range source for %S has non-set type %s" var
              (Vtype.to_string ty)))
      ([], []) q.Ast.ranges
  in
  let ranges = List.rev ranges in
  let where, memberships =
    match q.Ast.where with
    | None -> (None, [])
    | Some cond ->
      let plain, members =
        List.partition_map
          (fun conjunct ->
            match conjunct with
            | Ast.Binop (Expr.IsIn, lhs, Ast.Subquery sub) ->
              let member, mty = check_expr schema ~env lhs in
              let tsub = check_query schema sub in
              if not (compatible mty tsub.access_type) then
                error "IS-IN: element type %s does not match the subquery's %s"
                  (Vtype.to_string mty)
                  (Vtype.to_string tsub.access_type);
              Right { member; of_subquery = tsub }
            | _ -> Left conjunct)
          (conjuncts cond)
      in
      let where =
        match plain with
        | [] -> None
        | c :: cs ->
          let recombined =
            List.fold_left (fun acc c' -> Ast.Binop (Expr.And, acc, c')) c cs
          in
          let tc, ty = check_expr schema ~env recombined in
          if ty <> Vtype.TBool then error "WHERE clause has non-boolean type";
          Some tc
      in
      (where, members)
  in
  let access, access_type = check_expr schema ~env q.Ast.access in
  { access; access_type; ranges; where; memberships }
