type binop =
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | IsIn
  | IsSubset
  | And
  | Or
  | Add
  | Sub
  | Mul
  | Div
  | Concat
  | IndexOp
  | UnionOp
  | InterOp
  | DiffOp

type t =
  | Const of Value.t
  | Self
  | Param of string
  | Ref of string
  | ClassObj of string
  | Prop of t * string
  | Call of t * string * t list
  | Binop of binop * t * t
  | Not of t
  | TupleE of (string * t) list
  | SetE of t list
  | If of t * t * t

let compare = Stdlib.compare
let equal a b = compare a b = 0

let rec refs_acc acc = function
  | Const _ | Self | Param _ | ClassObj _ -> acc
  | Ref r -> r :: acc
  | Prop (e, _) -> refs_acc acc e
  | Call (e, _, args) -> List.fold_left refs_acc (refs_acc acc e) args
  | Binop (_, a, b) -> refs_acc (refs_acc acc a) b
  | Not e -> refs_acc acc e
  | TupleE fields -> List.fold_left (fun acc (_, e) -> refs_acc acc e) acc fields
  | SetE es -> List.fold_left refs_acc acc es
  | If (c, a, b) -> refs_acc (refs_acc (refs_acc acc c) a) b

let refs e = List.sort_uniq String.compare (refs_acc [] e)

let rec map_sub f = function
  | (Const _ | Self | Param _ | Ref _ | ClassObj _) as e -> e
  | Prop (e, p) -> Prop (f e, p)
  | Call (e, m, args) -> Call (f e, m, List.map f args)
  | Binop (op, a, b) -> Binop (op, f a, f b)
  | Not e -> Not (f e)
  | TupleE fields -> TupleE (List.map (fun (l, e) -> (l, f e)) fields)
  | SetE es -> SetE (List.map f es)
  | If (c, a, b) -> If (f c, f a, f b)

and subst_ref r repl body =
  match body with
  | Ref r' when String.equal r r' -> repl
  | e -> map_sub (subst_ref r repl) e

let rename_ref ~old_ref ~new_ref e = subst_ref old_ref (Ref new_ref) e

let rec methods_acc acc = function
  | Const _ | Self | Param _ | Ref _ | ClassObj _ -> acc
  | Prop (e, _) -> methods_acc acc e
  | Call (e, m, args) ->
    List.fold_left methods_acc (methods_acc (m :: acc) e) args
  | Binop (_, a, b) -> methods_acc (methods_acc acc a) b
  | Not e -> methods_acc acc e
  | TupleE fields ->
    List.fold_left (fun acc (_, e) -> methods_acc acc e) acc fields
  | SetE es -> List.fold_left methods_acc acc es
  | If (c, a, b) -> methods_acc (methods_acc (methods_acc acc c) a) b

let methods_called e = List.sort_uniq String.compare (methods_acc [] e)

let is_boolean_shape = function
  | Binop ((Eq | Neq | Lt | Le | Gt | Ge | IsIn | IsSubset | And | Or), _, _)
  | Not _
  | Const (Value.Bool _) ->
    true
  | _ -> false

let rec size = function
  | Const _ | Self | Param _ | Ref _ | ClassObj _ -> 1
  | Prop (e, _) -> 1 + size e
  | Call (e, _, args) -> List.fold_left (fun n a -> n + size a) (1 + size e) args
  | Binop (_, a, b) -> 1 + size a + size b
  | Not e -> 1 + size e
  | TupleE fields -> List.fold_left (fun n (_, e) -> n + size e) 1 fields
  | SetE es -> List.fold_left (fun n e -> n + size e) 1 es
  | If (c, a, b) -> 1 + size c + size a + size b

let binop_name = function
  | Eq -> "=="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | IsIn -> "IS-IN"
  | IsSubset -> "IS-SUBSET"
  | And -> "AND"
  | Or -> "OR"
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Concat -> "++"
  | IndexOp -> "[]"
  | UnionOp -> "UNION"
  | InterOp -> "INTERSECTION"
  | DiffOp -> "DIFF"

let pp_binop ppf op = Format.pp_print_string ppf (binop_name op)

let rec pp ppf = function
  | Const v -> Value.pp ppf v
  | Self -> Format.pp_print_string ppf "SELF"
  | Param p -> Format.pp_print_string ppf p
  | Ref r -> Format.pp_print_string ppf r
  | ClassObj c -> Format.pp_print_string ppf c
  | Prop (e, p) -> Format.fprintf ppf "%a.%s" pp_atom e p
  | Call (e, m, args) ->
    Format.fprintf ppf "%a->%s(%a)" pp_atom e m
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp)
      args
  | Binop (IndexOp, a, b) -> Format.fprintf ppf "%a[%a]" pp_atom a pp b
  | Binop (op, a, b) ->
    Format.fprintf ppf "%a %s %a" pp_atom a (binop_name op) pp_atom b
  | Not e -> Format.fprintf ppf "NOT %a" pp_atom e
  | TupleE fields ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         (fun ppf (l, e) -> Format.fprintf ppf "%s: %a" l pp e))
      fields
  | SetE es ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp)
      es
  | If (c, a, b) -> Format.fprintf ppf "IF %a THEN %a ELSE %a" pp c pp a pp b

and pp_atom ppf e =
  match e with
  | Binop _ | Not _ | If _ -> Format.fprintf ppf "(%a)" pp e
  | _ -> pp ppf e

let to_string e = Format.asprintf "%a" pp e
