lib/vml/runtime.mli: Expr Object_store Value
