lib/vml/runtime.ml: Array Bool Counters Expr Float Format List Object_store Oid Option Schema String Value
