lib/vml/value.ml: Array Bool Float Format Hashtbl Int List Oid String
