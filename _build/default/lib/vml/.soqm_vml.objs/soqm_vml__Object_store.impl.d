lib/vml/object_store.ml: Counters Expr Format Fun Hashtbl List Marshal Oid Option Schema String Value Vtype
