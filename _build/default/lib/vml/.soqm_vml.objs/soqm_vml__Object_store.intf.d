lib/vml/object_store.mli: Counters Expr Oid Schema Value
