lib/vml/vtype.mli: Format Value
