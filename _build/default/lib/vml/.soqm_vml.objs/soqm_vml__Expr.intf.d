lib/vml/expr.mli: Format Value
