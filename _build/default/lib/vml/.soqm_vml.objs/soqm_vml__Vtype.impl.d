lib/vml/vtype.ml: Array Format List Oid Option String Value
