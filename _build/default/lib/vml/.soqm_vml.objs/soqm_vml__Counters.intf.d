lib/vml/counters.mli: Format
