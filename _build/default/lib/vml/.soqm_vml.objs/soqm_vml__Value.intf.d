lib/vml/value.mli: Format Oid
