lib/vml/oid.mli: Format
