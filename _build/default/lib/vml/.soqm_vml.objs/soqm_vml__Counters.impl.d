lib/vml/counters.ml: Format Hashtbl List Option String
