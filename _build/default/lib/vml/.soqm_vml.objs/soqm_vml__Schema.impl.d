lib/vml/schema.ml: Format Hashtbl List Option Printf String Vtype
