lib/vml/schema.mli: Format Vtype
