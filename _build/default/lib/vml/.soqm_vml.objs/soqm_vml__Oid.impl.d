lib/vml/oid.ml: Format Hashtbl Int String
