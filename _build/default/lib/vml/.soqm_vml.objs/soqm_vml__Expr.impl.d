lib/vml/expr.ml: Format List Stdlib String Value
