(** Typed object identifiers.

    In VML every object identifier carries the name of the class the object
    is an instance of ("typed object identifiers" in the paper's type
    system).  Identifiers are totally ordered so that they can be stored in
    sets and used as hash-table and index keys. *)

type t = private { cls : string; id : int }

val make : cls:string -> id:int -> t
(** [make ~cls ~id] builds the identifier of the [id]-th instance of class
    [cls].  Identifiers are only meaningful relative to the store that
    allocated them. *)

val cls : t -> string
(** Class the identified object is an instance of. *)

val id : t -> int
(** Store-local serial number. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints as [Class#id], e.g. [Paragraph#42]. *)

val to_string : t -> string
