(** The expression language shared by operator parameters and method
    bodies.

    The paper's algebra operators take "arbitrarily complex expressions"
    as parameters, built up from query variables (here {!const:Ref}),
    constants, path expressions, method calls and operations on the
    built-in data types (Sections 2.2 and 4.1).  The same language gives
    internal method implementations their bodies — e.g.
    [document() {RETURN section.document;}] is [Prop (Prop (Self,
    "section"), "document")] — which is what lets schema designers state
    method semantics without revealing procedural code. *)

type binop =
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | IsIn  (** set membership *)
  | IsSubset
  | And
  | Or
  | Add
  | Sub
  | Mul
  | Div
  | Concat  (** string concatenation *)
  | IndexOp
      (** [e[i]] — ARRAY subscription (0-based, INT index) or DICTIONARY
          lookup (missing keys yield [Null], like absent properties) *)
  | UnionOp  (** set union *)
  | InterOp  (** set intersection — the paper's INTERSECTION *)
  | DiffOp  (** set difference *)

type t =
  | Const of Value.t
  | Self  (** receiver object inside a method body *)
  | Param of string  (** method parameter inside a method body *)
  | Ref of string  (** reference (query variable) of the enclosing operator *)
  | ClassObj of string  (** a class as first-class object, e.g. [Document] *)
  | Prop of t * string
      (** [e.p] — property access via the default access method.  When [e]
          evaluates to a set, access is lifted over the members and
          set-valued results are unioned: [D.sections] denotes the union
          of all sections of the documents in [D] (Section 2.3). *)
  | Call of t * string * t list
      (** [e→m(args)] — method invocation; the receiver is an instance or,
          via {!const:ClassObj}, a class object (OWNTYPE method). *)
  | Binop of binop * t * t
  | Not of t
  | TupleE of (string * t) list  (** tuple construction [[l1: e1, ...]] *)
  | SetE of t list  (** set construction [{e1, ..., en}] *)
  | If of t * t * t  (** conditional, for method bodies *)

val equal : t -> t -> bool
val compare : t -> t -> int

val refs : t -> string list
(** Free references used by the expression, sorted, without duplicates. *)

val rename_ref : old_ref:string -> new_ref:string -> t -> t
(** Substitute one reference name for another throughout. *)

val subst_ref : string -> t -> t -> t
(** [subst_ref r e body] replaces every [Ref r] in [body] by [e]. *)

val methods_called : t -> string list
(** Names of all methods invoked anywhere in the expression, sorted,
    without duplicates. *)

val is_boolean_shape : t -> bool
(** Syntactic check: does the expression have a boolean top constructor
    (comparison, [And]/[Or]/[Not], boolean constant)? *)

val size : t -> int
(** Number of AST nodes. *)

val pp_binop : Format.formatter -> binop -> unit

val pp : Format.formatter -> t -> unit
(** Prints in VQL-like concrete syntax ([p.section.document],
    [p->sameDocument(q)], [x IS-IN S], ...). *)

val to_string : t -> string
