(** Database schemas: classes with OWNTYPE and INSTTYPE definitions.

    In VML classes are not only containers for their instances but first
    class objects themselves (Section 2.1): methods defined in a class's
    OWNTYPE (e.g. [Document→select_by_index]) are invoked on the class
    object, methods in its INSTTYPE on the instances.

    Besides signatures, a schema records the optimizer-relevant metadata
    the paper relies on: per-method cost and selectivity declarations
    (methods are not uniform-cost attributes, Section 2.3) and inverse-link
    declarations between properties (a prime source of equivalent
    conditions, Section 4.2). *)

type property = {
  prop_name : string;
  prop_type : Vtype.t;
  inverse : (string * string) option;
      (** [(class, property)] forming an inverse link with this one, e.g.
          [Section.document] inverse [("Document", "sections")]. *)
}

type method_kind =
  | Internal  (** body given in the expression language; cheap, inspectable *)
  | External  (** external implementation, e.g. an IR function *)

type method_sig = {
  meth_name : string;
  params : (string * Vtype.t) list;
  returns : Vtype.t;
  kind : method_kind;
  side_effect_free : bool;
      (** declared free of side effects.  VQL replaces SELECT by ACCESS
          precisely because "we cannot determine in advance whether a
          query is a pure retrieval query" (Section 2.2); the engine only
          optimizes queries whose methods are all declared pure. *)
  cost_per_call : float;
      (** declared evaluation cost of one invocation, in object-fetch
          units; feeds both accounting and the optimizer's cost model *)
  selectivity : float option;
      (** for boolean methods: estimated fraction of receivers satisfying
          the predicate *)
}

type class_def = {
  cls_name : string;
  own_methods : method_sig list;  (** OWNTYPE methods (class object) *)
  properties : property list;  (** INSTTYPE properties *)
  inst_methods : method_sig list;  (** INSTTYPE methods *)
}

type t

val make : class_def list -> t
(** Build a schema.  Validates that class names are unique, that property
    and method names are unique within their class and namespace, that
    property/parameter/return types mention only declared classes, and
    that declared inverse links are mutual and well-typed.
    @raise Invalid_argument when validation fails. *)

val classes : t -> class_def list
val class_names : t -> string list

val find_class : t -> string -> class_def option
val class_exn : t -> string -> class_def

val property : t -> cls:string -> prop:string -> property option
val inst_method : t -> cls:string -> meth:string -> method_sig option
val own_method : t -> cls:string -> meth:string -> method_sig option

val property_type : t -> cls:string -> prop:string -> Vtype.t option

val inverse_of : t -> cls:string -> prop:string -> (string * string) option
(** The declared inverse [(class, property)] of [cls.prop], if any. *)

val method_cost : t -> cls:string -> meth:string -> float
(** Declared cost of an instance or class method, 1.0 if unknown. *)

val method_selectivity : t -> cls:string -> meth:string -> float option

(** {1 Signature constructors} *)

val prop : ?inverse:string * string -> string -> Vtype.t -> property

val meth :
  ?kind:method_kind ->
  ?side_effect_free:bool ->
  ?cost:float ->
  ?selectivity:float ->
  string ->
  (string * Vtype.t) list ->
  Vtype.t ->
  method_sig
(** [meth name params returns] — defaults: [Internal], side-effect free,
    cost 1.0, no selectivity. *)

val method_is_pure : t -> meth:string -> bool
(** Is every declared method of this name (in any class, OWNTYPE or
    INSTTYPE) side-effect free?  Conservative check used before
    optimizing a query: method names in algebra terms are not
    class-resolved, so a name shared by a pure and an impure method is
    treated as impure. *)

val cls :
  ?own_methods:method_sig list ->
  ?inst_methods:method_sig list ->
  ?properties:property list ->
  string ->
  class_def

val add_inst_method : t -> cls:string -> method_sig -> t
(** A new schema with the method added to the class's INSTTYPE
    (re-validated).  Used by generators that extend schemas
    programmatically (Section 5.2).
    @raise Invalid_argument on unknown class or name clash. *)

val pp : Format.formatter -> t -> unit
(** Prints the schema in a VML-like surface syntax. *)
