type property = {
  prop_name : string;
  prop_type : Vtype.t;
  inverse : (string * string) option;
}

type method_kind = Internal | External

type method_sig = {
  meth_name : string;
  params : (string * Vtype.t) list;
  returns : Vtype.t;
  kind : method_kind;
  side_effect_free : bool;
  cost_per_call : float;
  selectivity : float option;
}

type class_def = {
  cls_name : string;
  own_methods : method_sig list;
  properties : property list;
  inst_methods : method_sig list;
}

type t = { class_list : class_def list; by_name : (string, class_def) Hashtbl.t }

let fail fmt = Format.kasprintf invalid_arg fmt

let check_unique what names =
  let sorted = List.sort String.compare names in
  let rec go = function
    | a :: (b :: _ as rest) ->
      if String.equal a b then fail "Schema: duplicate %s %S" what a else go rest
    | _ -> ()
  in
  go sorted

let rec classes_mentioned = function
  | Vtype.TObj c -> [ c ]
  | TString | TInt | TReal | TBool | TAnyObj -> []
  | TTuple fields -> List.concat_map (fun (_, t) -> classes_mentioned t) fields
  | TSet t | TArray t -> classes_mentioned t
  | TDict (k, v) -> classes_mentioned k @ classes_mentioned v

let validate class_list =
  check_unique "class" (List.map (fun c -> c.cls_name) class_list);
  let declared = List.map (fun c -> c.cls_name) class_list in
  let check_type ctx ty =
    List.iter
      (fun c ->
        if not (List.mem c declared) then
          fail "Schema: %s mentions undeclared class %S" ctx c)
      (classes_mentioned ty)
  in
  List.iter
    (fun cd ->
      check_unique
        (cd.cls_name ^ " property")
        (List.map (fun p -> p.prop_name) cd.properties);
      check_unique
        (cd.cls_name ^ " instance method")
        (List.map (fun m -> m.meth_name) cd.inst_methods);
      check_unique
        (cd.cls_name ^ " own method")
        (List.map (fun m -> m.meth_name) cd.own_methods);
      List.iter
        (fun p ->
          check_type (cd.cls_name ^ "." ^ p.prop_name) p.prop_type;
          (* A default access method must not be shadowed by an instance
             method of the same name: property access is method
             invocation in VML, so the two would be ambiguous. *)
          if List.exists (fun m -> String.equal m.meth_name p.prop_name)
               cd.inst_methods
          then
            fail "Schema: %s.%s is both a property and an instance method"
              cd.cls_name p.prop_name)
        cd.properties;
      List.iter
        (fun m ->
          check_type (cd.cls_name ^ "." ^ m.meth_name) m.returns;
          List.iter (fun (_, t) -> check_type (cd.cls_name ^ "." ^ m.meth_name) t)
            m.params)
        (cd.inst_methods @ cd.own_methods))
    class_list;
  (* Inverse links must be mutual: if C1.p1 declares inverse (C2, p2) then
     C2.p2 must exist and declare inverse (C1, p1). *)
  List.iter
    (fun cd ->
      List.iter
        (fun p ->
          match p.inverse with
          | None -> ()
          | Some (c2, p2) -> (
            match List.find_opt (fun c -> String.equal c.cls_name c2) class_list with
            | None -> fail "Schema: inverse of %s.%s names undeclared class %S"
                        cd.cls_name p.prop_name c2
            | Some cd2 -> (
              match
                List.find_opt (fun q -> String.equal q.prop_name p2) cd2.properties
              with
              | None ->
                fail "Schema: inverse of %s.%s names missing property %s.%s"
                  cd.cls_name p.prop_name c2 p2
              | Some q -> (
                match q.inverse with
                | Some (c1, p1)
                  when String.equal c1 cd.cls_name && String.equal p1 p.prop_name
                  ->
                  ()
                | _ ->
                  fail "Schema: inverse link %s.%s <-> %s.%s is not mutual"
                    cd.cls_name p.prop_name c2 p2))))
        cd.properties)
    class_list

let make class_list =
  validate class_list;
  let by_name = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace by_name c.cls_name c) class_list;
  { class_list; by_name }

let classes t = t.class_list
let class_names t = List.map (fun c -> c.cls_name) t.class_list
let find_class t name = Hashtbl.find_opt t.by_name name

let class_exn t name =
  match find_class t name with
  | Some c -> c
  | None -> fail "Schema: unknown class %S" name

let property t ~cls ~prop =
  Option.bind (find_class t cls) (fun cd ->
      List.find_opt (fun p -> String.equal p.prop_name prop) cd.properties)

let inst_method t ~cls ~meth =
  Option.bind (find_class t cls) (fun cd ->
      List.find_opt (fun m -> String.equal m.meth_name meth) cd.inst_methods)

let own_method t ~cls ~meth =
  Option.bind (find_class t cls) (fun cd ->
      List.find_opt (fun m -> String.equal m.meth_name meth) cd.own_methods)

let property_type t ~cls ~prop =
  Option.map (fun p -> p.prop_type) (property t ~cls ~prop)

let inverse_of t ~cls ~prop = Option.bind (property t ~cls ~prop) (fun p -> p.inverse)

let method_cost t ~cls ~meth =
  match inst_method t ~cls ~meth with
  | Some m -> m.cost_per_call
  | None -> (
    match own_method t ~cls ~meth with Some m -> m.cost_per_call | None -> 1.0)

let method_selectivity t ~cls ~meth =
  match inst_method t ~cls ~meth with
  | Some m -> m.selectivity
  | None -> (
    match own_method t ~cls ~meth with Some m -> m.selectivity | None -> None)

let prop ?inverse prop_name prop_type = { prop_name; prop_type; inverse }

let meth ?(kind = Internal) ?(side_effect_free = true) ?(cost = 1.0)
    ?selectivity meth_name params returns =
  {
    meth_name;
    params;
    returns;
    kind;
    side_effect_free;
    cost_per_call = cost;
    selectivity;
  }

let method_is_pure t ~meth =
  List.for_all
    (fun cd ->
      List.for_all
        (fun (m : method_sig) ->
          (not (String.equal m.meth_name meth)) || m.side_effect_free)
        (cd.inst_methods @ cd.own_methods))
    t.class_list

let cls ?(own_methods = []) ?(inst_methods = []) ?(properties = []) cls_name =
  { cls_name; own_methods; properties; inst_methods }

let add_inst_method t ~cls msig =
  if Option.is_none (find_class t cls) then fail "Schema: unknown class %S" cls;
  make
    (List.map
       (fun cd ->
         if String.equal cd.cls_name cls then
           { cd with inst_methods = cd.inst_methods @ [ msig ] }
         else cd)
       t.class_list)

let pp_sig ppf (m : method_sig) =
  Format.fprintf ppf "%s(%a): %a" m.meth_name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf (n, t) -> Format.fprintf ppf "%s: %a" n Vtype.pp t))
    m.params Vtype.pp m.returns

let pp ppf t =
  List.iter
    (fun cd ->
      Format.fprintf ppf "@[<v2>CLASS %s@," cd.cls_name;
      if cd.own_methods <> [] then (
        Format.fprintf ppf "@[<v2>OWNTYPE METHODS:@,";
        List.iter (fun m -> Format.fprintf ppf "%a;@," pp_sig m) cd.own_methods;
        Format.fprintf ppf "@]@,");
      Format.fprintf ppf "@[<v2>INSTTYPE@,";
      if cd.properties <> [] then (
        Format.fprintf ppf "@[<v2>PROPERTIES:@,";
        List.iter
          (fun p ->
            Format.fprintf ppf "%s: %a%s;@," p.prop_name Vtype.pp p.prop_type
              (match p.inverse with
              | Some (c, q) -> Printf.sprintf " /* inverse %s.%s */" c q
              | None -> ""))
          cd.properties;
        Format.fprintf ppf "@]@,");
      if cd.inst_methods <> [] then (
        Format.fprintf ppf "@[<v2>METHODS:@,";
        List.iter (fun m -> Format.fprintf ppf "%a;@," pp_sig m) cd.inst_methods;
        Format.fprintf ppf "@]@,");
      Format.fprintf ppf "@]@,END;@,@]@,")
    t.class_list
