type t =
  | TString
  | TInt
  | TReal
  | TBool
  | TObj of string
  | TAnyObj
  | TTuple of (string * t) list
  | TSet of t
  | TArray of t
  | TDict of t * t

let ttuple fields =
  TTuple (List.sort (fun (a, _) (b, _) -> String.compare a b) fields)

let rec equal a b =
  match a, b with
  | TString, TString | TInt, TInt | TReal, TReal | TBool, TBool
  | TAnyObj, TAnyObj ->
    true
  | TObj c, TObj d -> String.equal c d
  | TTuple xs, TTuple ys ->
    List.length xs = List.length ys
    && List.for_all2
         (fun (la, ta) (lb, tb) -> String.equal la lb && equal ta tb)
         xs ys
  | TSet x, TSet y | TArray x, TArray y -> equal x y
  | TDict (ka, va), TDict (kb, vb) -> equal ka kb && equal va vb
  | ( ( TString | TInt | TReal | TBool | TObj _ | TAnyObj | TTuple _ | TSet _
      | TArray _ | TDict _ ),
      _ ) ->
    false

let rec subtype a b =
  match a, b with
  | TObj _, TAnyObj -> true
  | TInt, TReal -> true
  | TTuple xs, TTuple ys ->
    List.length xs = List.length ys
    && List.for_all2
         (fun (la, ta) (lb, tb) -> String.equal la lb && subtype ta tb)
         xs ys
  | TSet x, TSet y | TArray x, TArray y -> subtype x y
  | TDict (ka, va), TDict (kb, vb) -> subtype ka kb && subtype va vb
  | _ -> equal a b

let rec check t (v : Value.t) =
  match t, v with
  | _, Value.Null -> true
  | TString, Str _ -> true
  | TInt, Int _ -> true
  | TReal, (Real _ | Int _) -> true
  | TBool, Bool _ -> true
  | TObj c, Obj o -> String.equal c (Oid.cls o)
  | TAnyObj, Obj _ -> true
  | TTuple fields, Tuple vs ->
    List.length fields = List.length vs
    && List.for_all2
         (fun (lt, ft) (lv, fv) -> String.equal lt lv && check ft fv)
         fields vs
  | TSet et, Set xs -> List.for_all (check et) xs
  | TArray et, Arr xs -> Array.for_all (check et) xs
  | TDict (kt, vt), Dict pairs ->
    List.for_all (fun (k, v) -> check kt k && check vt v) pairs
  | _ -> false

let element = function TSet t | TArray t -> Some t | _ -> None

(* Least common supertype, where one exists: used to type heterogeneous
   sets ({Int, Real} : {REAL}, {Obj A, Obj B} : {OID}). *)
let rec join a b =
  if equal a b then Some a
  else
    match a, b with
    | TInt, TReal | TReal, TInt -> Some TReal
    | (TObj _ | TAnyObj), (TObj _ | TAnyObj) -> Some TAnyObj
    | TSet x, TSet y -> Option.map (fun t -> TSet t) (join x y)
    | TArray x, TArray y -> Option.map (fun t -> TArray t) (join x y)
    | _ -> None

let rec of_value (v : Value.t) =
  match v with
  | Null | Cls _ -> None
  | Bool _ -> Some TBool
  | Int _ -> Some TInt
  | Real _ -> Some TReal
  | Str _ -> Some TString
  | Obj o -> Some (TObj (Oid.cls o))
  | Tuple fields ->
    let typed =
      List.filter_map
        (fun (l, fv) -> Option.map (fun t -> (l, t)) (of_value fv))
        fields
    in
    if List.length typed = List.length fields then Some (TTuple typed) else None
  | Set xs -> Option.map (fun t -> TSet t) (of_values xs)
  | Arr xs -> Option.map (fun t -> TArray t) (of_values (Array.to_list xs))
  | Dict pairs -> (
    match of_values (List.map fst pairs), of_values (List.map snd pairs) with
    | Some kt, Some vt -> Some (TDict (kt, vt))
    | _ -> None)

and of_values = function
  | [] -> Some TAnyObj
  | x :: xs ->
    List.fold_left
      (fun acc v ->
        match acc, of_value v with
        | Some t, Some t' -> join t t'
        | _ -> None)
      (of_value x) xs

let rec pp ppf = function
  | TString -> Format.pp_print_string ppf "STRING"
  | TInt -> Format.pp_print_string ppf "INT"
  | TReal -> Format.pp_print_string ppf "REAL"
  | TBool -> Format.pp_print_string ppf "BOOL"
  | TObj c -> Format.pp_print_string ppf c
  | TAnyObj -> Format.pp_print_string ppf "OID"
  | TTuple fields ->
    let pp_field ppf (l, t) = Format.fprintf ppf "%s: %a" l pp t in
    Format.fprintf ppf "TUPLE[%a]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_field)
      fields
  | TSet t -> Format.fprintf ppf "{%a}" pp t
  | TArray t -> Format.fprintf ppf "ARRAY<%a>" pp t
  | TDict (k, v) -> Format.fprintf ppf "DICTIONARY<%a, %a>" pp k pp v

let to_string t = Format.asprintf "%a" pp t
