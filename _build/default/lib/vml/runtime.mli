(** Evaluation of expressions and method invocation.

    This module ties the expression language to the store: evaluating a
    [Call] dispatches on the receiver's class, charges the method's
    declared cost, and runs the registered implementation (an internal
    expression body, or a native function for external methods).  Property
    access falls back to the system-provided default access methods, and
    access on set values is lifted member-wise with set-valued results
    unioned (the [D.sections] convention of Section 2.3). *)

exception Error of string
(** Raised on dynamic errors: unknown method, unbound reference or
    parameter, type mismatch in a built-in operation, arity mismatch. *)

type env
(** An evaluation environment: the store plus bindings for [SELF], method
    parameters and operator references. *)

val env :
  ?self:Value.t ->
  ?params:(string * Value.t) list ->
  ?binding:(string -> Value.t option) ->
  Object_store.t ->
  env

val eval : env -> Expr.t -> Value.t
(** Evaluate an expression.  @raise Error on dynamic failure. *)

val eval_binop : Expr.binop -> Value.t -> Value.t -> Value.t
(** The built-in binary operations on values ([==], [IS-IN], [+], ...).
    Comparison of [Null] with anything under [==] yields [FALSE] rather
    than an error, mirroring absent-property semantics.
    @raise Error on operand type mismatch. *)

val access : Object_store.t -> Value.t -> string -> Value.t
(** [access store v p] — property access [v.p] through the default access
    method, including set/class lifting; charges accounting like any
    property read.  @raise Error on non-object receivers. *)

val invoke : Object_store.t -> Value.t -> string -> Value.t list -> Value.t
(** [invoke store receiver meth args] — invoke [meth] on [receiver] (an
    object, or a class object [Value.Cls c] for OWNTYPE methods).  Charges
    the declared cost, then runs the implementation; a method name that is
    a property of the receiver's class resolves to the default access
    method.
    @raise Error on unknown method or bad receiver. *)
