type t = { cls : string; id : int }

let make ~cls ~id = { cls; id }
let cls t = t.cls
let id t = t.id

let compare a b =
  let c = String.compare a.cls b.cls in
  if c <> 0 then c else Int.compare a.id b.id

let equal a b = compare a b = 0
let hash t = Hashtbl.hash (t.cls, t.id)
let pp ppf t = Format.fprintf ppf "%s#%d" t.cls t.id
let to_string t = Format.asprintf "%a" pp t
