(** Runtime values of the VML data model.

    The primitive built-in data types are [STRING], [INT], [REAL], [BOOL]
    and typed object identifiers; the type constructors are [TUPLE], [SET],
    [ARRAY] and [DICTIONARY] (Section 2.1 of the paper).

    Values form a total order ({!compare}) so that sets and dictionaries
    can be kept in a canonical sorted representation; two values built from
    the same elements are structurally equal regardless of construction
    order.  Use the smart constructors {!set}, {!tuple} and {!dict} to
    obtain canonical values. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Real of float
  | Str of string
  | Obj of Oid.t
  | Cls of string
      (** a class as a first-class object (VML classes are objects too;
          receivers of OWNTYPE methods) *)
  | Tuple of (string * t) list  (** labelled components, sorted by label *)
  | Set of t list  (** sorted, duplicate-free *)
  | Arr of t array
  | Dict of (t * t) list  (** sorted by key, duplicate-free keys *)

val compare : t -> t -> int
(** Total structural order.  Values of different constructors are ordered
    by constructor rank; this order carries no data-model meaning beyond
    enabling canonical sets. *)

val equal : t -> t -> bool

val set : t list -> t
(** Canonical set: sorts and removes duplicates. *)

val tuple : (string * t) list -> t
(** Canonical tuple: sorts components by label.  Tuple components are
    unordered in the paper's algebra (Section 4.1).
    @raise Invalid_argument on duplicate labels. *)

val dict : (t * t) list -> t
(** Canonical dictionary: sorts by key.
    @raise Invalid_argument on duplicate keys. *)

val set_elements : t -> t list
(** Elements of a [Set].  @raise Invalid_argument on other values. *)

val tuple_get : t -> string -> t
(** [tuple_get v label] extracts a tuple component.
    @raise Not_found if the label is absent, [Invalid_argument] if [v] is
    not a tuple. *)

val is_in : t -> t -> bool
(** [is_in x s] is the [IS-IN] predicate: membership of [x] in set [s]. *)

val is_subset : t -> t -> bool
(** [is_subset s1 s2] is the [IS-SUBSET] predicate on two sets. *)

val set_union : t -> t -> t
val set_inter : t -> t -> t
val set_diff : t -> t -> t

val truthy : t -> bool
(** [truthy v] is [true] iff [v] is [Bool true].  Query conditions must
    evaluate to [TRUE] to select a tuple (Section 4.1). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val hash : t -> int
