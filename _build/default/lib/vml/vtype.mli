(** The VML type language.

    Signatures of properties and methods are given using the built-in
    complex data types of VML: the primitive types [STRING], [INT],
    [REAL], [BOOL], typed object identifiers, and the constructors
    [TUPLE], [SET], [ARRAY] and [DICTIONARY] (Section 2.1). *)

type t =
  | TString
  | TInt
  | TReal
  | TBool
  | TObj of string  (** typed object identifier: instances of the named class *)
  | TAnyObj  (** object identifier of statically unknown class *)
  | TTuple of (string * t) list  (** sorted by label *)
  | TSet of t
  | TArray of t
  | TDict of t * t

val ttuple : (string * t) list -> t
(** Canonical tuple type (labels sorted). *)

val equal : t -> t -> bool

val subtype : t -> t -> bool
(** [subtype t1 t2] — structural subtyping where [TObj c <= TAnyObj] and
    constructors are covariant.  The example schema uses no class
    inheritance, so object subtyping is by exact class name or [TAnyObj]. *)

val check : t -> Value.t -> bool
(** [check t v] — does runtime value [v] inhabit type [t]?  [Null]
    inhabits every type (absent property values). *)

val element : t -> t option
(** Element type of a [TSet]/[TArray], [None] otherwise. *)

val of_value : Value.t -> t option
(** Best-effort type of a runtime value; [None] for [Null], class objects
    and empty-set ambiguity is resolved as [TSet TAnyObj]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
