open Soqm_vml

type t = {
  schema : Schema.t;
  cards : (string, float) Hashtbl.t;
  fanouts : (string * string, float) Hashtbl.t;
  distincts : (string * string, float) Hashtbl.t;
}

let schema t = t.schema

let collect store =
  let schema = Object_store.schema store in
  let cards = Hashtbl.create 16 in
  let fanouts = Hashtbl.create 32 in
  let distincts = Hashtbl.create 32 in
  List.iter
    (fun (cd : Schema.class_def) ->
      let cls = cd.Schema.cls_name in
      let ext = Object_store.extent store cls in
      let n = List.length ext in
      Hashtbl.replace cards cls (float_of_int n);
      List.iter
        (fun (p : Schema.property) ->
          match p.Schema.prop_type with
          | Vtype.TSet _ ->
            let total =
              List.fold_left
                (fun acc oid ->
                  match Object_store.peek_prop store oid p.Schema.prop_name with
                  | Value.Set xs -> acc + List.length xs
                  | _ -> acc)
                0 ext
            in
            let fanout = if n = 0 then 1.0 else float_of_int total /. float_of_int n in
            Hashtbl.replace fanouts (cls, p.Schema.prop_name) fanout
          | _ ->
            let seen = Hashtbl.create 64 in
            List.iter
              (fun oid ->
                let v = Object_store.peek_prop store oid p.Schema.prop_name in
                Hashtbl.replace seen v ())
              ext;
            Hashtbl.replace distincts (cls, p.Schema.prop_name)
              (float_of_int (max 1 (Hashtbl.length seen))))
        cd.Schema.properties)
    (Schema.classes schema);
  { schema; cards; fanouts; distincts }

let cardinality t cls = Option.value ~default:0. (Hashtbl.find_opt t.cards cls)

let fanout t ~cls ~prop =
  Option.value ~default:1.0 (Hashtbl.find_opt t.fanouts (cls, prop))

let distinct t ~cls ~prop =
  Option.value ~default:1.0 (Hashtbl.find_opt t.distincts (cls, prop))

let eq_selectivity t ~cls ~prop = 1.0 /. distinct t ~cls ~prop

let method_selectivity t ~cls ~meth =
  Option.value ~default:0.5 (Schema.method_selectivity t.schema ~cls ~meth)

let method_cost t ~cls ~meth = Schema.method_cost t.schema ~cls ~meth

let method_result_card t ~cls ~meth =
  let msig =
    match Schema.own_method t.schema ~cls ~meth with
    | Some m -> Some m
    | None -> Schema.inst_method t.schema ~cls ~meth
  in
  match msig with
  | Some { Schema.returns = Vtype.TSet (Vtype.TObj c'); selectivity; _ } ->
    let s = Option.value ~default:0.1 selectivity in
    Float.max 1.0 (s *. cardinality t c')
  | Some { Schema.returns = Vtype.TSet _; _ } -> 10.0
  | _ -> 1.0

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Hashtbl.iter (fun c n -> Format.fprintf ppf "|%s| = %.0f@ " c n) t.cards;
  Hashtbl.iter
    (fun (c, p) f -> Format.fprintf ppf "fanout %s.%s = %.2f@ " c p f)
    t.fanouts;
  Hashtbl.iter
    (fun (c, p) d -> Format.fprintf ppf "distinct %s.%s = %.0f@ " c p d)
    t.distincts;
  Format.fprintf ppf "@]"
