(** Database statistics for cost estimation.

    The optimizer's cost model needs extent cardinalities, per-property
    fanouts and distinct counts, and the declared method selectivities
    from the schema.  Statistics are collected once from a populated
    store (administrative reads, not charged to query counters). *)

open Soqm_vml

type t

val collect : Object_store.t -> t
(** Scan extents and properties and record:
    - cardinality of every class extent;
    - for every set-valued property, the average fanout (average set
      size over live instances);
    - for every scalar property, the number of distinct values. *)

val schema : t -> Schema.t

val cardinality : t -> string -> float
(** Extent cardinality of a class (0 for unknown classes). *)

val fanout : t -> cls:string -> prop:string -> float
(** Average set size of a set-valued property; 1.0 for scalar properties
    and unknown ones. *)

val distinct : t -> cls:string -> prop:string -> float
(** Distinct values of a scalar property (≥ 1). *)

val eq_selectivity : t -> cls:string -> prop:string -> float
(** Estimated selectivity of [x.prop == const]: [1 / distinct]. *)

val method_selectivity : t -> cls:string -> meth:string -> float
(** Declared selectivity of a boolean method, default 0.5 (the classical
    unknown-predicate guess). *)

val method_cost : t -> cls:string -> meth:string -> float
(** Declared per-call cost of a method, default 1.0. *)

val method_result_card : t -> cls:string -> meth:string -> float
(** Estimated cardinality of a set-returning method's result.  For a
    class method declared with selectivity [s] returning a set of [C']
    instances, this is [s * cardinality C']; otherwise falls back to the
    average fanout heuristic. *)

val pp : Format.formatter -> t -> unit
