lib/storage/statistics.mli: Format Object_store Schema Soqm_vml
