lib/storage/statistics.ml: Float Format Hashtbl List Object_store Option Schema Soqm_vml Value Vtype
