lib/storage/hash_index.ml: Counters Hashtbl List Object_store Oid Soqm_vml Value
