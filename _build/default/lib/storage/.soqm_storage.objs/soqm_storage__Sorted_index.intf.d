lib/storage/sorted_index.mli: Counters Object_store Oid Soqm_vml Value
