lib/storage/sorted_index.ml: Array Counters List Object_store Oid Soqm_vml Value
