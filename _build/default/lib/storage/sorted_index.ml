open Soqm_vml

(* Entries sorted by (value, oid); a dynamic array would do better under
   heavy churn, but index maintenance is not what the experiments
   measure. *)
type t = { cls : string; prop : string; mutable entries : (Value.t * Oid.t) array }

let create ~cls ~prop = { cls; prop; entries = [||] }
let cls t = t.cls
let prop t = t.prop

let compare_entry (v1, o1) (v2, o2) =
  let c = Value.compare v1 v2 in
  if c <> 0 then c else Oid.compare o1 o2

let insert t v oid =
  let entry = (v, oid) in
  if not (Array.exists (fun e -> compare_entry e entry = 0) t.entries) then (
    t.entries <- Array.append t.entries [| entry |];
    Array.sort compare_entry t.entries)

let delete t v oid =
  let entry = (v, oid) in
  t.entries <-
    Array.of_list
      (List.filter
         (fun e -> compare_entry e entry <> 0)
         (Array.to_list t.entries))

type bound = Unbounded | Inclusive of Value.t | Exclusive of Value.t

let above lo v =
  match lo with
  | Unbounded -> true
  | Inclusive b -> Value.compare v b >= 0
  | Exclusive b -> Value.compare v b > 0

let below hi v =
  match hi with
  | Unbounded -> true
  | Inclusive b -> Value.compare v b <= 0
  | Exclusive b -> Value.compare v b < 0

(* binary search for the first entry satisfying the lower bound *)
let first_index t lo =
  let n = Array.length t.entries in
  let rec go l r =
    if l >= r then l
    else
      let m = (l + r) / 2 in
      let v, _ = t.entries.(m) in
      if above lo v then go l m else go (m + 1) r
  in
  go 0 n

let probe_range t counters ~lo ~hi =
  Counters.charge_index_probe counters;
  let n = Array.length t.entries in
  let rec collect i acc =
    if i >= n then List.rev acc
    else
      let v, oid = t.entries.(i) in
      if below hi v then collect (i + 1) (oid :: acc) else List.rev acc
  in
  collect (first_index t lo) []

let probe_eq t counters v =
  probe_range t counters ~lo:(Inclusive v) ~hi:(Inclusive v)

let entries t = Array.length t.entries

let build t store =
  let items =
    List.filter_map
      (fun oid ->
        match Object_store.peek_prop store oid t.prop with
        | Value.Null -> None
        | v -> Some (v, oid))
      (Object_store.extent store t.cls)
  in
  let arr = Array.of_list items in
  Array.sort compare_entry arr;
  t.entries <- arr
