(** Tokenization of document text for the IR substrate.

    The paper's external IR function ([retrieve_by_string],
    [contains_string]) is simulated with an inverted index over word
    tokens; this module defines the word segmentation both the index and
    the per-paragraph containment check use, so the two agree exactly. *)

val words : string -> string list
(** Lower-cased maximal runs of ASCII letters and digits, in text order,
    duplicates preserved. *)

val vocabulary : string -> string list
(** Sorted, duplicate-free words of the text. *)

val contains_word : string -> string -> bool
(** [contains_word text w] — does [text] contain the word [w] (whole-word,
    case-insensitive)? *)
