lib/ir/tokenizer.mli:
