lib/ir/inverted_index.mli:
