lib/ir/inverted_index.ml: Hashtbl List String Tokenizer
