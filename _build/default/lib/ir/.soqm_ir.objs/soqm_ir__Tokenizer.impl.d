lib/ir/tokenizer.ml: Buffer Char List String
