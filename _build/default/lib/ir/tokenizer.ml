let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')

let words text =
  let n = String.length text in
  let buf = Buffer.create 16 in
  let rec go i acc =
    if i >= n then
      if Buffer.length buf > 0 then List.rev (Buffer.contents buf :: acc)
      else List.rev acc
    else
      let c = text.[i] in
      if is_word_char c then (
        Buffer.add_char buf (Char.lowercase_ascii c);
        go (i + 1) acc)
      else if Buffer.length buf > 0 then (
        let w = Buffer.contents buf in
        Buffer.clear buf;
        go (i + 1) (w :: acc))
      else go (i + 1) acc
  in
  go 0 []

let vocabulary text = List.sort_uniq String.compare (words text)

let contains_word text w =
  let w = String.lowercase_ascii w in
  List.exists (String.equal w) (words text)
