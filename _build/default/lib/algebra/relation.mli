(** Relations: bulk values of type [set[tuple[domains]]].

    The query algebra of Section 4.1 manipulates complex values of type
    [{ [a1: D1, ..., an: Dn] }].  A relation here is a set of tuples over
    a fixed list of references [Ref(S) = {a1, ..., an}]; tuple components
    are unordered (we keep them sorted by reference name) and the tuple
    set is duplicate-free. *)

open Soqm_vml

type tuple = (string * Value.t) list
(** One tuple, sorted by reference name. *)

type t

val make : refs:string list -> tuple list -> t
(** Canonicalize (sort refs, sort tuple components, deduplicate tuples)
    and validate that every tuple binds exactly the declared references.
    @raise Invalid_argument on mismatched tuples. *)

val empty : refs:string list -> t

val refs : t -> string list
(** [Ref(S)], sorted. *)

val tuples : t -> tuple list
val cardinality : t -> int

val field : tuple -> string -> Value.t
(** @raise Not_found when the reference is absent. *)

val tuple_make : (string * Value.t) list -> tuple

val same_refs : t -> t -> bool
val equal : t -> t -> bool
(** Set equality over identical reference lists. *)

val of_values : string -> Value.t list -> t
(** [of_values a vs] is the unary relation [{ [a: v] | v in vs }]. *)

val column : t -> string -> Value.t list
(** Values of one reference, in tuple order (duplicates preserved). *)

val pp : Format.formatter -> t -> unit
