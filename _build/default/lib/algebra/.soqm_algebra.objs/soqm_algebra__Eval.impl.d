lib/algebra/eval.ml: Expr Format General List Object_store Relation Runtime Soqm_vml String Value
