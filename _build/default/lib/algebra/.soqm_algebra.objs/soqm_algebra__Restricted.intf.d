lib/algebra/restricted.mli: Expr Format General Schema Soqm_vml Value Vtype
