lib/algebra/eval.mli: Expr General Object_store Relation Soqm_vml Value
