lib/algebra/relation.mli: Format Soqm_vml Value
