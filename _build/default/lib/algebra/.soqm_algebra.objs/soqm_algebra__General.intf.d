lib/algebra/general.mli: Expr Format Soqm_vml
