lib/algebra/general.ml: Expr Format List Soqm_vml Stdlib String
