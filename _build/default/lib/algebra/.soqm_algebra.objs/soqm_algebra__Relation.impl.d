lib/algebra/relation.ml: Format List Soqm_vml String Value
