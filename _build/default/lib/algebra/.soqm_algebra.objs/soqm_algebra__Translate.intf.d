lib/algebra/translate.mli: General Restricted Soqm_vml
