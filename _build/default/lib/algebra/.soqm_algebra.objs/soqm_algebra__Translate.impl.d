lib/algebra/translate.ml: Expr Format General List Option Restricted Soqm_vml String Value
