lib/algebra/restricted.ml: Expr Format General Hashtbl List Option Printf Schema Soqm_vml Stdlib String Value Vtype
