open Soqm_vml

type t =
  | Unit
  | Get of string * string
  | NaturalJoin of t * t
  | Union of t * t
  | Diff of t * t
  | Select of Expr.t * t
  | Join of Expr.t * t * t
  | Map of string * Expr.t * t
  | Flat of string * Expr.t * t
  | Project of string list * t
  | MethodSource of string * Expr.t

let compare = Stdlib.compare
let equal a b = compare a b = 0

let fail fmt = Format.kasprintf invalid_arg fmt

let union_sorted a b = List.sort_uniq String.compare (a @ b)

let rec refs = function
  | Unit -> []
  | Get (a, _) | MethodSource (a, _) -> [ a ]
  | NaturalJoin (s1, s2) -> union_sorted (refs s1) (refs s2)
  | Union (s1, s2) | Diff (s1, s2) ->
    let r1 = refs s1 and r2 = refs s2 in
    if r1 <> r2 then
      fail "General.refs: union/diff arguments have differing references";
    r1
  | Select (_, s) -> refs s
  | Join (_, s1, s2) ->
    let r1 = refs s1 and r2 = refs s2 in
    if List.exists (fun r -> List.mem r r2) r1 then
      fail "General.refs: join arguments share references";
    union_sorted r1 r2
  | Map (a, _, s) | Flat (a, _, s) ->
    let r = refs s in
    if List.mem a r then fail "General.refs: map/flat reuses reference %S" a;
    union_sorted [ a ] r
  | Project (rs, _) -> List.sort_uniq String.compare rs

let rec well_formed t =
  let check_sub s k = match well_formed s with Error _ as e -> e | Ok () -> k () in
  let subset xs ys = List.for_all (fun x -> List.mem x ys) xs in
  match t with
  | Unit | Get _ -> Ok ()
  | MethodSource (_, e) ->
    if Expr.refs e = [] then Ok ()
    else Error "MethodSource expression must be closed (no references)"
  | NaturalJoin (s1, s2) -> check_sub s1 (fun () -> well_formed s2)
  | Union (s1, s2) | Diff (s1, s2) ->
    check_sub s1 (fun () ->
        check_sub s2 (fun () ->
            if refs s1 = refs s2 then Ok ()
            else Error "union/diff arguments must have equal references"))
  | Select (cond, s) ->
    check_sub s (fun () ->
        if subset (Expr.refs cond) (refs s) then Ok ()
        else Error "select condition uses unavailable references")
  | Join (cond, s1, s2) ->
    check_sub s1 (fun () ->
        check_sub s2 (fun () ->
            let r1 = refs s1 and r2 = refs s2 in
            if List.exists (fun r -> List.mem r r2) r1 then
              Error "join arguments must have disjoint references"
            else if subset (Expr.refs cond) (union_sorted r1 r2) then Ok ()
            else Error "join condition uses unavailable references"))
  | Map (a, e, s) | Flat (a, e, s) ->
    check_sub s (fun () ->
        let r = refs s in
        if List.mem a r then Error "map/flat target reference already present"
        else if subset (Expr.refs e) r then Ok ()
        else Error "map/flat expression uses unavailable references")
  | Project (rs, s) ->
    check_sub s (fun () ->
        if subset rs (refs s) then Ok ()
        else Error "projection references not all present")

let rec size = function
  | Unit | Get _ | MethodSource _ -> 1
  | Select (_, s) | Map (_, _, s) | Flat (_, _, s) | Project (_, s) -> 1 + size s
  | NaturalJoin (s1, s2) | Union (s1, s2) | Diff (s1, s2) | Join (_, s1, s2) ->
    1 + size s1 + size s2

let rec subexpressions t =
  t
  ::
  (match t with
  | Unit | Get _ | MethodSource _ -> []
  | Select (_, s) | Map (_, _, s) | Flat (_, _, s) | Project (_, s) ->
    subexpressions s
  | NaturalJoin (s1, s2) | Union (s1, s2) | Diff (s1, s2) | Join (_, s1, s2) ->
    subexpressions s1 @ subexpressions s2)

let rec rename_ref ~old_ref ~new_ref t =
  let rn = rename_ref ~old_ref ~new_ref in
  let rne = Expr.rename_ref ~old_ref ~new_ref in
  let rnr r = if String.equal r old_ref then new_ref else r in
  match t with
  | Unit -> Unit
  | Get (a, c) -> Get (rnr a, c)
  | MethodSource (a, e) -> MethodSource (rnr a, rne e)
  | NaturalJoin (s1, s2) -> NaturalJoin (rn s1, rn s2)
  | Union (s1, s2) -> Union (rn s1, rn s2)
  | Diff (s1, s2) -> Diff (rn s1, rn s2)
  | Select (c, s) -> Select (rne c, rn s)
  | Join (c, s1, s2) -> Join (rne c, rn s1, rn s2)
  | Map (a, e, s) -> Map (rnr a, rne e, rn s)
  | Flat (a, e, s) -> Flat (rnr a, rne e, rn s)
  | Project (rs, s) -> Project (List.map rnr rs, rn s)

let rec pp ppf = function
  | Unit -> Format.pp_print_string ppf "unit"
  | Get (a, c) -> Format.fprintf ppf "get<%s, %s>" a c
  | MethodSource (a, e) -> Format.fprintf ppf "source<%s, %a>" a Expr.pp e
  | NaturalJoin (s1, s2) ->
    Format.fprintf ppf "@[<v2>natural_join(@,%a,@,%a)@]" pp s1 pp s2
  | Union (s1, s2) -> Format.fprintf ppf "@[<v2>union(@,%a,@,%a)@]" pp s1 pp s2
  | Diff (s1, s2) -> Format.fprintf ppf "@[<v2>diff(@,%a,@,%a)@]" pp s1 pp s2
  | Select (c, s) -> Format.fprintf ppf "@[<v2>select<%a>(@,%a)@]" Expr.pp c pp s
  | Join (c, s1, s2) ->
    Format.fprintf ppf "@[<v2>join<%a>(@,%a,@,%a)@]" Expr.pp c pp s1 pp s2
  | Map (a, e, s) ->
    Format.fprintf ppf "@[<v2>map<%s, %a>(@,%a)@]" a Expr.pp e pp s
  | Flat (a, e, s) ->
    Format.fprintf ppf "@[<v2>flat<%s, %a>(@,%a)@]" a Expr.pp e pp s
  | Project (rs, s) ->
    Format.fprintf ppf "@[<v2>project<%s>(@,%a)@]" (String.concat ", " rs) pp s

let to_string t = Format.asprintf "%a" pp t
