(** Reference interpreter for the general algebra.

    Evaluates an algebra expression directly by its set-comprehension
    definition (Section 4.1) against a store.  This is the
    "straightforward evaluation of the query without transformation" the
    paper's worked example compares against, and the semantic oracle all
    rewrites and physical plans are tested against: [join<true>] really
    builds the Cartesian product, [select] calls every method in its
    condition once per input tuple, and nothing is indexed. *)

open Soqm_vml

exception Error of string

val run : Object_store.t -> General.t -> Relation.t
(** Evaluate the expression.  @raise Error on dynamic failure (including
    [Runtime.Error]s from expression parameters and ill-formed algebra
    terms). *)

val eval_expr : Object_store.t -> Relation.tuple -> Expr.t -> Value.t
(** Evaluate an operator-parameter expression with references bound by
    the given tuple. *)
