open Soqm_vml

type tuple = (string * Value.t) list

type t = { refs : string list; tuples : tuple list }

let tuple_make fields =
  List.sort (fun (a, _) (b, _) -> String.compare a b) fields

let rec compare_tuple (a : tuple) (b : tuple) =
  match a, b with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | (ra, va) :: a', (rb, vb) :: b' ->
    let c = String.compare ra rb in
    if c <> 0 then c
    else
      let c = Value.compare va vb in
      if c <> 0 then c else compare_tuple a' b'

let make ~refs tuples =
  let refs = List.sort_uniq String.compare refs in
  let tuples = List.map tuple_make tuples in
  List.iter
    (fun tup ->
      let names = List.map fst tup in
      if names <> refs then
        invalid_arg
          (Format.asprintf "Relation.make: tuple refs {%s} differ from {%s}"
             (String.concat ", " names) (String.concat ", " refs)))
    tuples;
  { refs; tuples = List.sort_uniq compare_tuple tuples }

let empty ~refs = make ~refs []
let refs t = t.refs
let tuples t = t.tuples
let cardinality t = List.length t.tuples
let field tup r = List.assoc r tup
let same_refs a b = a.refs = b.refs

let equal a b =
  same_refs a b
  && List.length a.tuples = List.length b.tuples
  && List.for_all2 (fun x y -> compare_tuple x y = 0) a.tuples b.tuples

let of_values a vs =
  make ~refs:[ a ] (List.map (fun v -> [ (a, v) ]) (List.sort_uniq Value.compare vs))

let column t r = List.map (fun tup -> field tup r) t.tuples

let pp ppf t =
  Format.fprintf ppf "@[<v>{%s} (%d tuples)@," (String.concat ", " t.refs)
    (cardinality t);
  List.iter
    (fun tup ->
      Format.fprintf ppf "  [%a]@,"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           (fun ppf (r, v) -> Format.fprintf ppf "%s: %a" r Value.pp v))
        tup)
    t.tuples;
  Format.fprintf ppf "@]"
