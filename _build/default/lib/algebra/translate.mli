(** Translation between the general and the restricted algebra.

    Section 6.1: "Both algebras have the same expressive power.  One can
    show this by translating expression composition which can take place
    on the parameter level in the general algebra to operator composition
    in the restricted algebra."  This module is that translation.

    Complex operator parameters are decomposed into chains of
    [map_property] / [map_method] / [map_operator] steps computing
    intermediate results in compiler-generated temporary references
    ({!Restricted.temp_ref}); the consuming operator then sees only
    atomic operands, and a final projection drops the temporaries so the
    translated term has exactly the references of the original.

    The inverse direction is {!Restricted.to_general}. *)

exception Unsupported of string
(** Raised on expressions outside the translatable fragment ([SELF],
    method parameters, [IF] in operator position, non-method closed
    sources). *)

val of_general : General.t -> Restricted.t
(** Translate a general-algebra term.  The result has the same references
    and, for every store, the same value (see the property tests).
    @raise Unsupported as documented above. *)

val compile_operand :
  Restricted.t -> Soqm_vml.Expr.t -> Restricted.t * Restricted.operand
(** [compile_operand plan e] extends [plan] with operators computing [e]
    and returns the operand holding its value.  Exposed for the rule
    derivation of Section 4.2, which compiles both sides of an
    equivalence specification over a pattern placeholder.  [Expr.Param]s
    compile to {!Restricted.OParam} operands. *)

val compile_map : target:string -> Restricted.t -> Soqm_vml.Expr.t -> Restricted.t
(** [compile_map ~target plan e] extends [plan] so that reference
    [target] holds the value of [e] (the outermost step writes directly
    to [target], as [map<target, e>] would). *)

val compile_flat : target:string -> Restricted.t -> Soqm_vml.Expr.t -> Restricted.t
(** Flat counterpart of {!compile_map}: one output tuple per member of
    [e]'s set value. *)

val compile_select : Restricted.t -> Soqm_vml.Expr.t -> Restricted.t
(** [compile_select plan cond] extends [plan] with the selection
    [select<cond>], decomposing conjunctions into select cascades and
    compiling comparison operands; temporaries are {e not} yet projected
    away (callers project once at the end). *)
