(** The general query algebra of Section 4.1.

    Operators are applied to complex values of type
    [{ [a1: D1, ..., an: Dn] }]; operator parameters (enclosed in [<...>]
    in the paper) may be arbitrarily complex expressions.  Methods enter
    the algebra as operator {e parameters} here (Section 3.1); methods as
    physical {e operators} appear in the physical algebra and through
    {!const:MethodSource}. *)

open Soqm_vml

type t =
  | Unit
      (** the relation [{[]}] over no references — one empty tuple; the
          neutral element of [join<true>], used to host tuple-independent
          operator chains *)
  | Get of string * string
      (** [get<a, class> = { [a: o] | o ∈ extension(class) }] *)
  | NaturalJoin of t * t
      (** join on the shared references; with equal reference sets this is
          set intersection (used by the implication rules of Section 4.2) *)
  | Union of t * t  (** same reference sets *)
  | Diff of t * t  (** same reference sets *)
  | Select of Expr.t * t
      (** [select<condition(a1,...,an)>(S)] — keep tuples whose condition
          evaluates to [TRUE] *)
  | Join of Expr.t * t * t
      (** theta-join of disjointly-referenced arguments; [Join (Const
          (Bool true))] is the Cartesian product used by the canonical
          VQL translation *)
  | Map of string * Expr.t * t
      (** [map<a, expression>(S)] — extend each tuple with [a] bound to
          the expression's value; [a ∉ Ref(S)] *)
  | Flat of string * Expr.t * t
      (** [flat<a, expression>(S)] — expression is set-valued; one output
          tuple per element (dual of map w.r.t. set nesting) *)
  | Project of string list * t  (** [project<a1,...,ai>(S)] *)
  | MethodSource of string * Expr.t
      (** [{ [a: v] | v ∈ eval(expression) }] for a closed, set-valued
          expression — a set-returning method call used as a source, e.g.
          a FROM range [p IN Paragraph→retrieve_by_string(s)] *)

val equal : t -> t -> bool
val compare : t -> t -> int

val refs : t -> string list
(** [Ref(S)] — output references, sorted.  Computed structurally:
    [Get]/[MethodSource] produce their reference, [Map]/[Flat] add one,
    [Project] restricts, joins merge.
    @raise Invalid_argument on ill-formed operands (e.g. [Union] of
    differently-referenced arguments, [Map] reusing an existing
    reference). *)

val well_formed : t -> (unit, string) result
(** Check all structural side conditions of Section 4.1 (reference
    disjointness/equality requirements, [a ∉ Ref(S)], condition references
    available, projection references present). *)

val size : t -> int
(** Operator count. *)

val subexpressions : t -> t list
(** The expression and all its operator subtrees (preorder). *)

val rename_ref : old_ref:string -> new_ref:string -> t -> t
(** Rename a reference throughout the tree, including inside expression
    parameters. *)

val pp : Format.formatter -> t -> unit
(** Multi-line, indented, paper-style rendering:
    [select<cond>(get<p, Paragraph>)]. *)

val to_string : t -> string
