open Soqm_vml

type operand = ORef of string | OConst of Value.t | OParam of string
type receiver = RRef of string | RClass of string
type cmp = CEq | CNeq | CLt | CLe | CGt | CGe | CIsIn | CIsSubset

type opname =
  | OpBin of Expr.binop
  | OpNot
  | OpIdent
  | OpTuple of string list
  | OpSet

type t =
  | Unit
  | Get of string * string
  | NaturalJoin of t * t
  | Union of t * t
  | Diff of t * t
  | Cross of t * t
  | SelectCmp of cmp * operand * operand * t
  | JoinCmp of cmp * string * string * t * t
  | MapProperty of string * string * string * t
  | MapMethod of string * string * receiver * operand list * t
  | FlatProperty of string * string * string * t
  | FlatMethod of string * string * receiver * operand list * t
  | MapOperator of string * opname * operand list * t
  | FlatOperator of string * opname * operand list * t
  | Project of string list * t
  | MethodSource of string * string * string * operand list

let compare = Stdlib.compare
let equal a b = compare a b = 0
let fail fmt = Format.kasprintf invalid_arg fmt

let cmp_to_binop = function
  | CEq -> Expr.Eq
  | CNeq -> Expr.Neq
  | CLt -> Expr.Lt
  | CLe -> Expr.Le
  | CGt -> Expr.Gt
  | CGe -> Expr.Ge
  | CIsIn -> Expr.IsIn
  | CIsSubset -> Expr.IsSubset

let binop_to_cmp = function
  | Expr.Eq -> Some CEq
  | Expr.Neq -> Some CNeq
  | Expr.Lt -> Some CLt
  | Expr.Le -> Some CLe
  | Expr.Gt -> Some CGt
  | Expr.Ge -> Some CGe
  | Expr.IsIn -> Some CIsIn
  | Expr.IsSubset -> Some CIsSubset
  | _ -> None

let operand_expr = function
  | ORef r -> Expr.Ref r
  | OConst v -> Expr.Const v
  | OParam p -> Expr.Param p
let receiver_expr = function RRef r -> Expr.Ref r | RClass c -> Expr.ClassObj c

let op_expr opname operands =
  match opname, operands with
  | OpBin b, [ x; y ] -> Expr.Binop (b, operand_expr x, operand_expr y)
  | OpNot, [ x ] -> Expr.Not (operand_expr x)
  | OpIdent, [ x ] -> operand_expr x
  | OpTuple labels, xs when List.length labels = List.length xs ->
    Expr.TupleE (List.map2 (fun l x -> (l, operand_expr x)) labels xs)
  | OpSet, xs -> Expr.SetE (List.map operand_expr xs)
  | _ -> fail "Restricted: operator arity mismatch"

let rec to_general = function
  | Unit -> General.Unit
  | Get (a, c) -> General.Get (a, c)
  | NaturalJoin (s1, s2) -> General.NaturalJoin (to_general s1, to_general s2)
  | Union (s1, s2) -> General.Union (to_general s1, to_general s2)
  | Diff (s1, s2) -> General.Diff (to_general s1, to_general s2)
  | Cross (s1, s2) ->
    General.Join (Expr.Const (Value.Bool true), to_general s1, to_general s2)
  | SelectCmp (c, x, y, s) ->
    General.Select
      (Expr.Binop (cmp_to_binop c, operand_expr x, operand_expr y), to_general s)
  | JoinCmp (c, a1, a2, s1, s2) ->
    General.Join
      ( Expr.Binop (cmp_to_binop c, Expr.Ref a1, Expr.Ref a2),
        to_general s1, to_general s2 )
  | MapProperty (a, p, a1, s) ->
    General.Map (a, Expr.Prop (Expr.Ref a1, p), to_general s)
  | MapMethod (a, m, recv, args, s) ->
    General.Map
      ( a,
        Expr.Call (receiver_expr recv, m, List.map operand_expr args),
        to_general s )
  | FlatProperty (a, p, a1, s) ->
    General.Flat (a, Expr.Prop (Expr.Ref a1, p), to_general s)
  | FlatMethod (a, m, recv, args, s) ->
    General.Flat
      ( a,
        Expr.Call (receiver_expr recv, m, List.map operand_expr args),
        to_general s )
  | MapOperator (a, op, xs, s) -> General.Map (a, op_expr op xs, to_general s)
  | FlatOperator (a, op, xs, s) -> General.Flat (a, op_expr op xs, to_general s)
  | Project (rs, s) -> General.Project (rs, to_general s)
  | MethodSource (a, cls, m, args) ->
    General.MethodSource
      (a, Expr.Call (Expr.ClassObj cls, m, List.map operand_expr args))

let refs t = General.refs (to_general t)

let rec size = function
  | Unit | Get _ | MethodSource _ -> 1
  | SelectCmp (_, _, _, s)
  | MapProperty (_, _, _, s)
  | MapMethod (_, _, _, _, s)
  | FlatProperty (_, _, _, s)
  | FlatMethod (_, _, _, _, s)
  | MapOperator (_, _, _, s)
  | FlatOperator (_, _, _, s)
  | Project (_, s) ->
    1 + size s
  | NaturalJoin (s1, s2)
  | Union (s1, s2)
  | Diff (s1, s2)
  | Cross (s1, s2)
  | JoinCmp (_, _, _, s1, s2) ->
    1 + size s1 + size s2

let inputs = function
  | Unit | Get _ | MethodSource _ -> []
  | SelectCmp (_, _, _, s)
  | MapProperty (_, _, _, s)
  | MapMethod (_, _, _, _, s)
  | FlatProperty (_, _, _, s)
  | FlatMethod (_, _, _, _, s)
  | MapOperator (_, _, _, s)
  | FlatOperator (_, _, _, s)
  | Project (_, s) ->
    [ s ]
  | NaturalJoin (s1, s2)
  | Union (s1, s2)
  | Diff (s1, s2)
  | Cross (s1, s2)
  | JoinCmp (_, _, _, s1, s2) ->
    [ s1; s2 ]

let with_inputs t new_inputs =
  match t, new_inputs with
  | (Unit | Get _ | MethodSource _), [] -> t
  | SelectCmp (c, x, y, _), [ s ] -> SelectCmp (c, x, y, s)
  | MapProperty (a, p, a1, _), [ s ] -> MapProperty (a, p, a1, s)
  | MapMethod (a, m, r, xs, _), [ s ] -> MapMethod (a, m, r, xs, s)
  | FlatProperty (a, p, a1, _), [ s ] -> FlatProperty (a, p, a1, s)
  | FlatMethod (a, m, r, xs, _), [ s ] -> FlatMethod (a, m, r, xs, s)
  | MapOperator (a, op, xs, _), [ s ] -> MapOperator (a, op, xs, s)
  | FlatOperator (a, op, xs, _), [ s ] -> FlatOperator (a, op, xs, s)
  | Project (rs, _), [ s ] -> Project (rs, s)
  | NaturalJoin _, [ s1; s2 ] -> NaturalJoin (s1, s2)
  | Union _, [ s1; s2 ] -> Union (s1, s2)
  | Diff _, [ s1; s2 ] -> Diff (s1, s2)
  | Cross _, [ s1; s2 ] -> Cross (s1, s2)
  | JoinCmp (c, a1, a2, _, _), [ s1; s2 ] -> JoinCmp (c, a1, a2, s1, s2)
  | _ -> fail "Restricted.with_inputs: arity mismatch"

let rec subtrees t = t :: List.concat_map subtrees (inputs t)

let temp_counter = ref 0

let temp_ref () =
  incr temp_counter;
  Printf.sprintf "$%d" !temp_counter

let is_temp_ref r = String.length r > 0 && r.[0] = '$'

let rename_operand old_ref new_ref = function
  | ORef r when String.equal r old_ref -> ORef new_ref
  | x -> x

let rename_receiver old_ref new_ref = function
  | RRef r when String.equal r old_ref -> RRef new_ref
  | x -> x

let rec rename_ref ~old_ref ~new_ref t =
  let rn = rename_ref ~old_ref ~new_ref in
  let rr r = if String.equal r old_ref then new_ref else r in
  let ro = rename_operand old_ref new_ref in
  let rv = rename_receiver old_ref new_ref in
  match t with
  | Unit -> Unit
  | Get (a, c) -> Get (rr a, c)
  | NaturalJoin (s1, s2) -> NaturalJoin (rn s1, rn s2)
  | Union (s1, s2) -> Union (rn s1, rn s2)
  | Diff (s1, s2) -> Diff (rn s1, rn s2)
  | Cross (s1, s2) -> Cross (rn s1, rn s2)
  | SelectCmp (c, x, y, s) -> SelectCmp (c, ro x, ro y, rn s)
  | JoinCmp (c, a1, a2, s1, s2) -> JoinCmp (c, rr a1, rr a2, rn s1, rn s2)
  | MapProperty (a, p, a1, s) -> MapProperty (rr a, p, rr a1, rn s)
  | MapMethod (a, m, r, xs, s) -> MapMethod (rr a, m, rv r, List.map ro xs, rn s)
  | FlatProperty (a, p, a1, s) -> FlatProperty (rr a, p, rr a1, rn s)
  | FlatMethod (a, m, r, xs, s) -> FlatMethod (rr a, m, rv r, List.map ro xs, rn s)
  | MapOperator (a, op, xs, s) -> MapOperator (rr a, op, List.map ro xs, rn s)
  | FlatOperator (a, op, xs, s) -> FlatOperator (rr a, op, List.map ro xs, rn s)
  | Project (rs, s) -> Project (List.map rr rs, rn s)
  | MethodSource (a, cls, m, xs) -> MethodSource (rr a, cls, m, List.map ro xs)

(* Temporary references of a term in a deterministic traversal order:
   bottom-up (inputs first), then the operator's own references.  A
   temporary's first occurrence is therefore where it is produced. *)
let temp_occurrence_order t =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  let note r =
    if is_temp_ref r && not (Hashtbl.mem seen r) then (
      Hashtbl.replace seen r ();
      order := r :: !order)
  in
  let note_operand = function ORef r -> note r | OConst _ | OParam _ -> () in
  let note_receiver = function RRef r -> note r | RClass _ -> () in
  let rec go t =
    List.iter go (inputs t);
    match t with
    | Unit -> ()
    | Get (a, _) -> note a
    | MethodSource (a, _, _, xs) ->
      List.iter note_operand xs;
      note a
    | NaturalJoin _ | Union _ | Diff _ | Cross _ -> ()
    | SelectCmp (_, x, y, _) ->
      note_operand x;
      note_operand y
    | JoinCmp (_, a1, a2, _, _) ->
      note a1;
      note a2
    | MapProperty (a, _, a1, _) | FlatProperty (a, _, a1, _) ->
      note a1;
      note a
    | MapMethod (a, _, r, xs, _) | FlatMethod (a, _, r, xs, _) ->
      note_receiver r;
      List.iter note_operand xs;
      note a
    | MapOperator (a, _, xs, _) | FlatOperator (a, _, xs, _) ->
      List.iter note_operand xs;
      note a
    | Project (rs, _) -> List.iter note rs
  in
  go t;
  List.rev !order

let alpha_canonical t =
  let temps = temp_occurrence_order t in
  (* two passes so that renaming cannot capture: first move everything to
     reserved names, then to the canonical ones *)
  let staged =
    List.mapi (fun i r -> (r, Printf.sprintf "$stage!%d" i)) temps
  in
  let t =
    List.fold_left
      (fun acc (old_ref, new_ref) -> rename_ref ~old_ref ~new_ref acc)
      t staged
  in
  List.fold_left
    (fun acc (i, (_, staged_name)) ->
      rename_ref ~old_ref:staged_name ~new_ref:(Printf.sprintf "$%d" (i + 1)) acc)
    t
    (List.mapi (fun i x -> (i, x)) staged)

(* Static typing of references, mirroring the set-lifted access
   semantics of the runtime. *)
let lifted_access prop_ty receiver_ty =
  match receiver_ty with
  | Vtype.TObj _ -> Some prop_ty
  | Vtype.TSet (Vtype.TObj _) -> (
    match prop_ty with
    | Vtype.TSet _ -> Some prop_ty
    | scalar -> Some (Vtype.TSet scalar))
  | _ -> None

let receiver_class env = function
  | RClass c -> Some (`Own c)
  | RRef r -> (
    match List.assoc_opt r env with
    | Some (Vtype.TObj c) -> Some (`Inst c)
    | Some (Vtype.TSet (Vtype.TObj c)) -> Some (`InstSet c)
    | _ -> None)

let method_return schema env recv m =
  match receiver_class env recv with
  | Some (`Own c) ->
    Option.map (fun s -> s.Schema.returns) (Schema.own_method schema ~cls:c ~meth:m)
  | Some (`Inst c) ->
    Option.map (fun s -> s.Schema.returns) (Schema.inst_method schema ~cls:c ~meth:m)
  | Some (`InstSet c) -> (
    match Schema.inst_method schema ~cls:c ~meth:m with
    | Some s -> (
      match s.Schema.returns with
      | Vtype.TSet _ as ty -> Some ty
      | scalar -> Some (Vtype.TSet scalar))
    | None -> None)
  | None -> None

let prop_type_via schema env a1 p =
  match List.assoc_opt a1 env with
  | Some (Vtype.TObj c) | Some (Vtype.TSet (Vtype.TObj c)) -> (
    match Schema.property_type schema ~cls:c ~prop:p with
    | Some ty -> lifted_access ty (List.assoc a1 env)
    | None -> None)
  | _ -> None

let operand_type env = function
  | ORef r -> List.assoc_opt r env
  | OConst v -> Vtype.of_value v
  | OParam _ -> None

let op_result_type env opname operands =
  match opname with
  | OpBin
      (Expr.Eq | Neq | Lt | Le | Gt | Ge | IsIn | IsSubset | And | Or) ->
    Some Vtype.TBool
  | OpNot -> Some Vtype.TBool
  | OpBin Expr.Concat -> Some Vtype.TString
  | OpBin (Expr.Add | Sub | Mul | Div) -> (
    match List.filter_map (operand_type env) operands with
    | [ Vtype.TInt; Vtype.TInt ] -> Some Vtype.TInt
    | _ -> Some Vtype.TReal)
  | OpBin Expr.IndexOp -> (
    match operands with
    | x :: _ -> (
      match operand_type env x with
      | Some (Vtype.TArray elt) -> Some elt
      | Some (Vtype.TDict (_, v)) -> Some v
      | _ -> None)
    | [] -> None)
  | OpBin (Expr.UnionOp | InterOp | DiffOp) -> (
    match operands with
    | x :: _ -> operand_type env x
    | [] -> None)
  | OpIdent -> ( match operands with [ x ] -> operand_type env x | _ -> None)
  | OpTuple labels ->
    let tys = List.map (operand_type env) operands in
    if List.for_all Option.is_some tys && List.length labels = List.length tys
    then Some (Vtype.ttuple (List.map2 (fun l t -> (l, Option.get t)) labels tys))
    else None
  | OpSet -> (
    match operands with
    | x :: _ -> Option.map (fun t -> Vtype.TSet t) (operand_type env x)
    | [] -> Some (Vtype.TSet Vtype.TAnyObj))

let rec infer schema t : (string * Vtype.t) list =
  match t with
  | Unit -> []
  | Get (a, c) -> [ (a, Vtype.TObj c) ]
  | MethodSource (a, cls, m, _) -> (
    match Schema.own_method schema ~cls ~meth:m with
    | Some { Schema.returns = Vtype.TSet elt; _ } -> [ (a, elt) ]
    | _ -> [])
  | NaturalJoin (s1, s2) | Cross (s1, s2) | JoinCmp (_, _, _, s1, s2) ->
    let e1 = infer schema s1 in
    let e2 = infer schema s2 in
    e1 @ List.filter (fun (r, _) -> not (List.mem_assoc r e1)) e2
  | Union (s1, s2) | Diff (s1, s2) ->
    let e1 = infer schema s1 in
    let e2 = infer schema s2 in
    (* keep only agreeing entries *)
    List.filter
      (fun (r, ty) ->
        match List.assoc_opt r e2 with
        | Some ty' -> Vtype.equal ty ty'
        | None -> false)
      e1
  | SelectCmp (_, _, _, s) -> infer schema s
  | MapProperty (a, p, a1, s) -> (
    let env = infer schema s in
    match prop_type_via schema env a1 p with
    | Some ty -> (a, ty) :: env
    | None -> env)
  | FlatProperty (a, p, a1, s) -> (
    let env = infer schema s in
    match prop_type_via schema env a1 p with
    | Some (Vtype.TSet elt) -> (a, elt) :: env
    | _ -> env)
  | MapMethod (a, m, recv, _, s) -> (
    let env = infer schema s in
    match method_return schema env recv m with
    | Some ty -> (a, ty) :: env
    | None -> env)
  | FlatMethod (a, m, recv, _, s) -> (
    let env = infer schema s in
    match method_return schema env recv m with
    | Some (Vtype.TSet elt) -> (a, elt) :: env
    | _ -> env)
  | MapOperator (a, op, xs, s) -> (
    let env = infer schema s in
    match op_result_type env op xs with
    | Some ty -> (a, ty) :: env
    | None -> env)
  | FlatOperator (a, op, xs, s) -> (
    let env = infer schema s in
    match op_result_type env op xs with
    | Some (Vtype.TSet elt) -> (a, elt) :: env
    | _ -> env)
  | Project (rs, s) ->
    List.filter (fun (r, _) -> List.mem r rs) (infer schema s)

let methods_used t =
  let rec go acc = function
    | Unit | Get _ -> acc
    | MethodSource (_, _, m, _) -> m :: acc
    | MapMethod (_, m, _, _, s) | FlatMethod (_, m, _, _, s) -> go (m :: acc) s
    | SelectCmp (_, _, _, s)
    | MapProperty (_, _, _, s)
    | FlatProperty (_, _, _, s)
    | MapOperator (_, _, _, s)
    | FlatOperator (_, _, _, s)
    | Project (_, s) ->
      go acc s
    | NaturalJoin (s1, s2)
    | Union (s1, s2)
    | Diff (s1, s2)
    | Cross (s1, s2)
    | JoinCmp (_, _, _, s1, s2) ->
      go (go acc s1) s2
  in
  List.sort_uniq String.compare (go [] t)

let cmp_name = function
  | CEq -> "=="
  | CNeq -> "!="
  | CLt -> "<"
  | CLe -> "<="
  | CGt -> ">"
  | CGe -> ">="
  | CIsIn -> "IS-IN"
  | CIsSubset -> "IS-SUBSET"

let pp_operand ppf = function
  | ORef r -> Format.pp_print_string ppf r
  | OConst v -> Value.pp ppf v
  | OParam p -> Format.fprintf ppf "?%s" p

let pp_receiver ppf = function
  | RRef r -> Format.pp_print_string ppf r
  | RClass c -> Format.pp_print_string ppf c

let opname_str = function
  | OpBin b -> Format.asprintf "%a" Expr.pp_binop b
  | OpNot -> "NOT"
  | OpIdent -> "ident"
  | OpTuple labels -> "tuple[" ^ String.concat "," labels ^ "]"
  | OpSet -> "set"

let pp_operands ppf xs =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
    pp_operand ppf xs

let rec pp ppf = function
  | Unit -> Format.pp_print_string ppf "unit"
  | Get (a, c) -> Format.fprintf ppf "get<%s, %s>" a c
  | NaturalJoin (s1, s2) ->
    Format.fprintf ppf "@[<v2>natural_join(@,%a,@,%a)@]" pp s1 pp s2
  | Union (s1, s2) -> Format.fprintf ppf "@[<v2>union(@,%a,@,%a)@]" pp s1 pp s2
  | Diff (s1, s2) -> Format.fprintf ppf "@[<v2>diff(@,%a,@,%a)@]" pp s1 pp s2
  | Cross (s1, s2) ->
    Format.fprintf ppf "@[<v2>join<true>(@,%a,@,%a)@]" pp s1 pp s2
  | SelectCmp (c, x, y, s) ->
    Format.fprintf ppf "@[<v2>select<%a %s %a>(@,%a)@]" pp_operand x
      (cmp_name c) pp_operand y pp s
  | JoinCmp (c, a1, a2, s1, s2) ->
    Format.fprintf ppf "@[<v2>join<%s %s %s>(@,%a,@,%a)@]" a1 (cmp_name c) a2 pp
      s1 pp s2
  | MapProperty (a, p, a1, s) ->
    Format.fprintf ppf "@[<v2>map_property<%s, %s, %s>(@,%a)@]" a p a1 pp s
  | MapMethod (a, m, r, xs, s) ->
    Format.fprintf ppf "@[<v2>map_method<%s, %s, %a, <%a>>(@,%a)@]" a m
      pp_receiver r pp_operands xs pp s
  | FlatProperty (a, p, a1, s) ->
    Format.fprintf ppf "@[<v2>flat_property<%s, %s, %s>(@,%a)@]" a p a1 pp s
  | FlatMethod (a, m, r, xs, s) ->
    Format.fprintf ppf "@[<v2>flat_method<%s, %s, %a, <%a>>(@,%a)@]" a m
      pp_receiver r pp_operands xs pp s
  | MapOperator (a, op, xs, s) ->
    Format.fprintf ppf "@[<v2>map_operator<%s, %s, %a>(@,%a)@]" a
      (opname_str op) pp_operands xs pp s
  | FlatOperator (a, op, xs, s) ->
    Format.fprintf ppf "@[<v2>flat_operator<%s, %s, %a>(@,%a)@]" a
      (opname_str op) pp_operands xs pp s
  | Project (rs, s) ->
    Format.fprintf ppf "@[<v2>project<%s>(@,%a)@]" (String.concat ", " rs) pp s
  | MethodSource (a, cls, m, xs) ->
    Format.fprintf ppf "source<%s, %s->%s(%a)>" a cls m pp_operands xs

let to_string t = Format.asprintf "%a" pp t
