(** The restricted algebra of Section 6.1.

    Volcano's rule matching works on operator patterns only: "the content
    of operator arguments can only be checked in the condition code, thus
    no pattern matching on the arguments is supported".  The paper
    therefore simplifies the operator arguments: specialized operators
    carry parameters restricted to {e atomic} expressions — a reference, a
    constant, a single property or method name, a single built-in
    operation — and expression composition is turned into operator
    composition.  Both algebras have the same expressive power
    ({!Translate} implements the two directions).

    Beyond the paper's substitution table we add {!const:FlatOperator}
    (the flat counterpart of [map_operator]) and {!const:Cross} (the
    paper's [join<true>]) so the translation is total. *)

open Soqm_vml

type operand =
  | ORef of string
  | OConst of Value.t
  | OParam of string
      (** placeholder for a parameter of an equivalence specification
          (Section 4.2, "one can impose additional conditions on
          parameters"); appears only in rule-derivation intermediates,
          never in executable terms *)

type receiver =
  | RRef of string  (** instance receiver: value of a reference *)
  | RClass of string  (** class-object receiver (OWNTYPE method) *)

type cmp = CEq | CNeq | CLt | CLe | CGt | CGe | CIsIn | CIsSubset

(** Built-in operations usable as [map_operator] parameters. *)
type opname =
  | OpBin of Expr.binop  (** binary built-in *)
  | OpNot
  | OpIdent  (** identity — copies its single operand *)
  | OpTuple of string list  (** tuple construction with the given labels *)
  | OpSet  (** set construction *)

type t =
  | Unit  (** the one-empty-tuple relation; hosts constant chains *)
  | Get of string * string  (** [get<a, class>] *)
  | NaturalJoin of t * t
  | Union of t * t
  | Diff of t * t
  | Cross of t * t  (** [join<true>] of disjointly-referenced inputs *)
  | SelectCmp of cmp * operand * operand * t  (** [select<x θ y>(S)] *)
  | JoinCmp of cmp * string * string * t * t
      (** [join<a1 θ a2>(S1, S2)], [a1 ∈ Ref(S1)], [a2 ∈ Ref(S2)] *)
  | MapProperty of string * string * string * t
      (** [map_property<anew, p, a1>(S)] *)
  | MapMethod of string * string * receiver * operand list * t
      (** [map_method<anew, m, recv, <args>>(S)] *)
  | FlatProperty of string * string * string * t
  | FlatMethod of string * string * receiver * operand list * t
  | MapOperator of string * opname * operand list * t
  | FlatOperator of string * opname * operand list * t
  | Project of string list * t
  | MethodSource of string * string * string * operand list
      (** [source<a> = class→m(consts)] — a set-returning OWNTYPE method
          call as a leaf; arguments must be constants *)

val equal : t -> t -> bool
val compare : t -> t -> int

val cmp_to_binop : cmp -> Expr.binop
val binop_to_cmp : Expr.binop -> cmp option

val operand_expr : operand -> Expr.t
val receiver_expr : receiver -> Expr.t

val to_general : t -> General.t
(** The meaning of a restricted term, by translation into the general
    algebra (the paper's substitution table read right-to-left). *)

val refs : t -> string list
(** [Ref(S)] of the term (sorted). *)

val size : t -> int
val subtrees : t -> t list

val inputs : t -> t list
(** Direct operator inputs (0, 1 or 2). *)

val with_inputs : t -> t list -> t
(** Replace the direct inputs; [with_inputs t (inputs t) = t].
    @raise Invalid_argument on arity mismatch. *)

val temp_ref : unit -> string
(** Fresh compiler-generated reference name ([$1], [$2], ...); used by
    {!Translate} and by rule templates that must introduce new
    references.  Fresh names never collide with user references, which
    are parser identifiers. *)

val is_temp_ref : string -> bool

val rename_ref : old_ref:string -> new_ref:string -> t -> t
(** Rename a reference throughout the term (targets, operands, receivers,
    join and projection lists). *)

val alpha_canonical : t -> t
(** Rename every compiler-generated temporary reference to [$1], [$2], ...
    in first-occurrence order of a deterministic traversal.  Two terms that
    differ only in the names of their temporaries canonicalize to the same
    term; the optimizer's search deduplicates modulo this renaming.  User
    references (parser identifiers) are left untouched. *)

val infer : Schema.t -> t -> (string * Vtype.t) list
(** Best-effort static types of the term's references, for
    class-constrained rule patterns ([?A<?a1, Paragraph>] — "an algebraic
    expression that returns object identifiers of instances of class C").
    References whose type cannot be derived are absent from the result. *)

val methods_used : t -> string list
(** All method names appearing in the term, sorted, duplicate-free. *)

val pp : Format.formatter -> t -> unit
val pp_operand : Format.formatter -> operand -> unit
val pp_receiver : Format.formatter -> receiver -> unit
val to_string : t -> string
