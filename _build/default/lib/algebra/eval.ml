open Soqm_vml

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let eval_expr store tuple e =
  let binding r = List.assoc_opt r tuple in
  try Runtime.eval (Runtime.env ~binding store) e
  with Runtime.Error msg -> error "expression %s: %s" (Expr.to_string e) msg

let rec run store (t : General.t) : Relation.t =
  let refs_of t = try General.refs t with Invalid_argument msg -> error "%s" msg in
  match t with
  | Unit -> Relation.make ~refs:[] [ [] ]
  | Get (a, cls) ->
    let oids =
      try Object_store.extent store cls
      with Invalid_argument msg -> error "%s" msg
    in
    Relation.of_values a (List.map (fun o -> Value.Obj o) oids)
  | MethodSource (a, e) -> (
    match eval_expr store [] e with
    | Value.Set vs -> Relation.of_values a vs
    | v -> error "source expression produced non-set %s" (Value.to_string v))
  | Select (cond, s) ->
    let input = run store s in
    let keep tup = Value.truthy (eval_expr store tup cond) in
    Relation.make ~refs:(Relation.refs input)
      (List.filter keep (Relation.tuples input))
  | NaturalJoin (s1, s2) ->
    let r1 = run store s1 and r2 = run store s2 in
    let shared =
      List.filter (fun r -> List.mem r (Relation.refs r2)) (Relation.refs r1)
    in
    let out_refs =
      List.sort_uniq String.compare (Relation.refs r1 @ Relation.refs r2)
    in
    let joins t1 t2 =
      List.for_all
        (fun r -> Value.equal (Relation.field t1 r) (Relation.field t2 r))
        shared
    in
    let merge t1 t2 =
      let extra =
        List.filter (fun (r, _) -> not (List.mem_assoc r t1)) t2
      in
      Relation.tuple_make (t1 @ extra)
    in
    Relation.make ~refs:out_refs
      (List.concat_map
         (fun t1 ->
           List.filter_map
             (fun t2 -> if joins t1 t2 then Some (merge t1 t2) else None)
             (Relation.tuples r2))
         (Relation.tuples r1))
  | Union (s1, s2) ->
    let r1 = run store s1 and r2 = run store s2 in
    if not (Relation.same_refs r1 r2) then
      error "union arguments have differing references";
    Relation.make ~refs:(Relation.refs r1)
      (Relation.tuples r1 @ Relation.tuples r2)
  | Diff (s1, s2) ->
    let r1 = run store s1 and r2 = run store s2 in
    if not (Relation.same_refs r1 r2) then
      error "diff arguments have differing references";
    let in_r2 tup = List.exists (fun t2 -> t2 = tup) (Relation.tuples r2) in
    Relation.make ~refs:(Relation.refs r1)
      (List.filter (fun tup -> not (in_r2 tup)) (Relation.tuples r1))
  | Join (cond, s1, s2) ->
    let r1 = run store s1 and r2 = run store s2 in
    let out_refs =
      List.sort_uniq String.compare (Relation.refs r1 @ Relation.refs r2)
    in
    if
      List.length out_refs
      <> List.length (Relation.refs r1) + List.length (Relation.refs r2)
    then error "join arguments share references";
    Relation.make ~refs:out_refs
      (List.concat_map
         (fun t1 ->
           List.filter_map
             (fun t2 ->
               let merged = Relation.tuple_make (t1 @ t2) in
               if Value.truthy (eval_expr store merged cond) then Some merged
               else None)
             (Relation.tuples r2))
         (Relation.tuples r1))
  | Map (a, e, s) ->
    let input = run store s in
    if List.mem a (Relation.refs input) then
      error "map target reference %S already present" a;
    Relation.make ~refs:(a :: Relation.refs input)
      (List.map
         (fun tup -> Relation.tuple_make ((a, eval_expr store tup e) :: tup))
         (Relation.tuples input))
  | Flat (a, e, s) ->
    let input = run store s in
    if List.mem a (Relation.refs input) then
      error "flat target reference %S already present" a;
    Relation.make ~refs:(a :: Relation.refs input)
      (List.concat_map
         (fun tup ->
           match eval_expr store tup e with
           | Value.Set vs ->
             List.map (fun v -> Relation.tuple_make ((a, v) :: tup)) vs
           | Value.Null -> []
           | v ->
             error "flat expression produced non-set %s" (Value.to_string v))
         (Relation.tuples input))
  | Project (rs, s) ->
    let input = run store s in
    let rs = List.sort_uniq String.compare rs in
    List.iter
      (fun r ->
        if not (List.mem r (Relation.refs input)) then
          error "projection reference %S not present" r)
      rs;
    ignore (refs_of t);
    Relation.make ~refs:rs
      (List.map
         (fun tup -> List.filter (fun (r, _) -> List.mem r rs) tup)
         (Relation.tuples input))
