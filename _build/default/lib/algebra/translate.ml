open Soqm_vml

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

open Restricted

(* Ensure an operand is a reference, materializing constants/parameters
   through an identity map step. *)
let as_ref plan operand =
  match operand with
  | ORef r -> (plan, r)
  | OConst _ | OParam _ ->
    let t = temp_ref () in
    (MapOperator (t, OpIdent, [ operand ], plan), t)

let rec compile_operand plan (e : Expr.t) : Restricted.t * operand =
  match e with
  | Expr.Const v -> (plan, OConst v)
  | Expr.Ref r -> (plan, ORef r)
  | Expr.Param p -> (plan, OParam p)
  | Expr.ClassObj c -> (plan, OConst (Value.Cls c))
  | Expr.Self -> unsupported "SELF cannot appear in an operator parameter"
  | Expr.If _ -> unsupported "IF cannot appear in an operator parameter"
  | Expr.Prop (e', p) ->
    let plan, x = compile_operand plan e' in
    let plan, r = as_ref plan x in
    let t = temp_ref () in
    (MapProperty (t, p, r, plan), ORef t)
  | Expr.Call (Expr.ClassObj c, m, args) ->
    let plan, xs = compile_operands plan args in
    let t = temp_ref () in
    (MapMethod (t, m, RClass c, xs, plan), ORef t)
  | Expr.Call (recv, m, args) ->
    let plan, rx = compile_operand plan recv in
    let plan, r = as_ref plan rx in
    let plan, xs = compile_operands plan args in
    let t = temp_ref () in
    (MapMethod (t, m, RRef r, xs, plan), ORef t)
  | Expr.Binop (op, e1, e2) ->
    let plan, x1 = compile_operand plan e1 in
    let plan, x2 = compile_operand plan e2 in
    let t = temp_ref () in
    (MapOperator (t, OpBin op, [ x1; x2 ], plan), ORef t)
  | Expr.Not e' ->
    let plan, x = compile_operand plan e' in
    let t = temp_ref () in
    (MapOperator (t, OpNot, [ x ], plan), ORef t)
  | Expr.TupleE fields ->
    let labels = List.map fst fields in
    let plan, xs = compile_operands plan (List.map snd fields) in
    let t = temp_ref () in
    (MapOperator (t, OpTuple labels, xs, plan), ORef t)
  | Expr.SetE es ->
    let plan, xs = compile_operands plan es in
    let t = temp_ref () in
    (MapOperator (t, OpSet, xs, plan), ORef t)

and compile_operands plan args =
  List.fold_left
    (fun (plan, acc) arg ->
      let plan, x = compile_operand plan arg in
      (plan, acc @ [ x ]))
    (plan, []) args

let compile_map ~target plan (e : Expr.t) =
  match e with
  | Expr.Prop (e', p) ->
    let plan, x = compile_operand plan e' in
    let plan, r = as_ref plan x in
    MapProperty (target, p, r, plan)
  | Expr.Call (Expr.ClassObj c, m, args) ->
    let plan, xs = compile_operands plan args in
    MapMethod (target, m, RClass c, xs, plan)
  | Expr.Call (recv, m, args) ->
    let plan, rx = compile_operand plan recv in
    let plan, r = as_ref plan rx in
    let plan, xs = compile_operands plan args in
    MapMethod (target, m, RRef r, xs, plan)
  | Expr.Binop (op, e1, e2) ->
    let plan, x1 = compile_operand plan e1 in
    let plan, x2 = compile_operand plan e2 in
    MapOperator (target, OpBin op, [ x1; x2 ], plan)
  | Expr.Not e' ->
    let plan, x = compile_operand plan e' in
    MapOperator (target, OpNot, [ x ], plan)
  | Expr.TupleE fields ->
    let labels = List.map fst fields in
    let plan, xs = compile_operands plan (List.map snd fields) in
    MapOperator (target, OpTuple labels, xs, plan)
  | Expr.SetE es ->
    let plan, xs = compile_operands plan es in
    MapOperator (target, OpSet, xs, plan)
  | Expr.Const _ | Expr.Ref _ | Expr.Param _ | Expr.ClassObj _ ->
    let plan, x = compile_operand plan e in
    MapOperator (target, OpIdent, [ x ], plan)
  | Expr.Self | Expr.If _ ->
    let plan, x = compile_operand plan e in
    MapOperator (target, OpIdent, [ x ], plan)

let compile_flat ~target plan (e : Expr.t) =
  match e with
  | Expr.Prop (e', p) ->
    let plan, x = compile_operand plan e' in
    let plan, r = as_ref plan x in
    FlatProperty (target, p, r, plan)
  | Expr.Call (Expr.ClassObj c, m, args) ->
    let plan, xs = compile_operands plan args in
    FlatMethod (target, m, RClass c, xs, plan)
  | Expr.Call (recv, m, args) ->
    let plan, rx = compile_operand plan recv in
    let plan, r = as_ref plan rx in
    let plan, xs = compile_operands plan args in
    FlatMethod (target, m, RRef r, xs, plan)
  | _ ->
    (* General set-valued expression: compute it, then unnest through an
       identity flat_operator. *)
    let plan, x = compile_operand plan e in
    FlatOperator (target, OpIdent, [ x ], plan)

let rec compile_select plan (cond : Expr.t) =
  match cond with
  | Expr.Binop (Expr.And, c1, c2) ->
    compile_select (compile_select plan c1) c2
  | Expr.Const (Value.Bool true) -> plan
  | Expr.Binop (op, e1, e2) -> (
    match Restricted.binop_to_cmp op with
    | Some cmp ->
      let plan, x1 = compile_operand plan e1 in
      let plan, x2 = compile_operand plan e2 in
      SelectCmp (cmp, x1, x2, plan)
    | None ->
      (* e.g. an OR: compute the boolean and compare against TRUE *)
      let plan, x = compile_operand plan cond in
      SelectCmp (CEq, x, OConst (Value.Bool true), plan))
  | _ ->
    let plan, x = compile_operand plan cond in
    SelectCmp (CEq, x, OConst (Value.Bool true), plan)

(* Project away compiler temporaries when any were introduced, so the
   translated term keeps exactly the references of the general term. *)
let dropping_temps ~want plan =
  let have = Restricted.refs plan in
  if have = want then plan else Project (want, plan)

(* Find a conjunct [Ref a1 θ Ref a2] usable as a restricted join
   predicate between inputs with reference sets [r1] and [r2]; returns
   the join triple and the remaining condition. *)
let rec split_join_cond r1 r2 (cond : Expr.t) =
  match cond with
  | Expr.Binop (op, Expr.Ref a, Expr.Ref b) -> (
    match Restricted.binop_to_cmp op with
    | Some cmp ->
      if List.mem a r1 && List.mem b r2 then Some ((cmp, a, b), None)
      else if List.mem b r1 && List.mem a r2 then
        (* swap operands; only symmetric comparisons can be swapped
           directly, others flip *)
        let flipped =
          match cmp with
          | CEq -> Some CEq
          | CNeq -> Some CNeq
          | CLt -> Some CGt
          | CLe -> Some CGe
          | CGt -> Some CLt
          | CGe -> Some CLe
          | CIsIn | CIsSubset -> None
        in
        Option.map (fun c -> ((c, b, a), None)) flipped
      else None
    | None -> None)
  | Expr.Binop (Expr.And, c1, c2) -> (
    match split_join_cond r1 r2 c1 with
    | Some (j, rest) ->
      let rest' =
        match rest with None -> Some c2 | Some r -> Some (Expr.Binop (Expr.And, r, c2))
      in
      Some (j, rest')
    | None -> (
      match split_join_cond r1 r2 c2 with
      | Some (j, rest) ->
        let rest' =
          match rest with
          | None -> Some c1
          | Some r -> Some (Expr.Binop (Expr.And, c1, r))
        in
        Some (j, rest')
      | None -> None))
  | _ -> None

let rec of_general (g : General.t) : Restricted.t =
  match g with
  | General.Unit -> Unit
  | General.Get (a, c) -> Get (a, c)
  | General.MethodSource (a, Expr.Call (Expr.ClassObj c, m, args)) ->
    let consts =
      List.map
        (function
          | Expr.Const v -> OConst v
          | Expr.Param p -> OParam p
          | arg ->
            unsupported "source argument %s is not a constant"
              (Expr.to_string arg))
        args
    in
    MethodSource (a, c, m, consts)
  | General.MethodSource (a, e) when Expr.refs e = [] ->
    (* a complex closed set expression (e.g. the INTERSECTION of plan
       PQ): compute it once over [unit] and unnest into [a] *)
    dropping_temps ~want:[ a ] (compile_flat ~target:a Unit e)
  | General.MethodSource (_, e) ->
    unsupported "source expression %s is not closed" (Expr.to_string e)
  | General.NaturalJoin (s1, s2) -> NaturalJoin (of_general s1, of_general s2)
  | General.Union (s1, s2) -> Union (of_general s1, of_general s2)
  | General.Diff (s1, s2) -> Diff (of_general s1, of_general s2)
  | General.Select (cond, s) ->
    let want = General.refs s in
    dropping_temps ~want (compile_select (of_general s) cond)
  | General.Join (Expr.Const (Value.Bool true), s1, s2) ->
    Cross (of_general s1, of_general s2)
  | General.Join (cond, s1, s2) -> (
    let r1 = General.refs s1 and r2 = General.refs s2 in
    let want = List.sort_uniq String.compare (r1 @ r2) in
    let t1 = of_general s1 and t2 = of_general s2 in
    match split_join_cond r1 r2 cond with
    | Some ((cmp, a1, a2), rest) ->
      let joined = JoinCmp (cmp, a1, a2, t1, t2) in
      let with_rest =
        match rest with None -> joined | Some c -> compile_select joined c
      in
      dropping_temps ~want with_rest
    | None -> dropping_temps ~want (compile_select (Cross (t1, t2)) cond))
  | General.Map (a, e, s) ->
    let want = List.sort_uniq String.compare (a :: General.refs s) in
    dropping_temps ~want (compile_map ~target:a (of_general s) e)
  | General.Flat (a, e, s) ->
    let want = List.sort_uniq String.compare (a :: General.refs s) in
    dropping_temps ~want (compile_flat ~target:a (of_general s) e)
  | General.Project (rs, s) -> Project (List.sort_uniq String.compare rs, of_general s)
