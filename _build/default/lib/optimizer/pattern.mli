(** First-order operator patterns over the restricted algebra.

    Volcano's "rule matching algorithm can utilize operator patterns
    consisting of operator, operator argument and input variables"
    (Section 6); because the restricted algebra's arguments are atomic,
    a pattern variable can stand for a reference, a property/method/class
    name, a comparison, an operand, an argument list, or a whole input
    subtree — the paper's [?a1], [?p1], [?A].

    The same type doubles as the {e template} (rewrite) language: an
    instantiation substitutes bound variables and generates deterministic
    fresh names for reference variables the match left unbound (e.g. the
    [?a4] Example 8 introduces). *)

open Soqm_vml
open Soqm_algebra

type pref = PRef of string | PRefVar of string
type pname = PName of string | PNameVar of string
type pcmp = PCmp of Restricted.cmp | PCmpVar of string

type poperand =
  | POperand of Restricted.operand  (** exact operand (constants) *)
  | POperandVar of string  (** any operand *)
  | PORefOf of pref  (** an [ORef] whose reference matches *)

type precv = PRecvClass of pname | PRecvRef of pref
type pargs = PArgs of poperand list | PArgsVar of string
type prefs = PRefs of pref list | PRefsVar of string

type t =
  | PAny of string  (** input variable [?A]: binds any subtree *)
  | PAnyRanging of string * pref * string
      (** [?A<?a, C>]: any subtree among whose references is [?a], ranging
          over instances of class [C] (checked via {!Restricted.infer}) *)
  | PGet of pref * pname
  | PNaturalJoin of t * t
  | PUnion of t * t
  | PDiff of t * t
  | PCross of t * t
  | PSelectCmp of pcmp * poperand * poperand * t
  | PJoinCmp of pcmp * pref * pref * t * t
  | PMapProperty of pref * pname * pref * t
  | PMapMethod of pref * pname * precv * pargs * t
  | PFlatProperty of pref * pname * pref * t
  | PFlatMethod of pref * pname * precv * pargs * t
  | PMapOperator of pref * Restricted.opname * pargs * t
  | PFlatOperator of pref * Restricted.opname * pargs * t
  | PProject of prefs * t
  | PMethodSource of pref * pname * pname * pargs

type bindings = {
  plans : (string * Restricted.t) list;
  refs : (string * string) list;
  names : (string * string) list;
  cmps : (string * Restricted.cmp) list;
  operands : (string * Restricted.operand) list;
  arglists : (string * Restricted.operand list) list;
  reflists : (string * string list) list;
}

val empty : bindings

val matches : Schema.t -> t -> Restricted.t -> bindings list
(** All ways the pattern matches the term's {e root} (no descent: rules
    are applied at every node by the search, not by the matcher).
    Multiple results arise only from unbound ranging variables. *)

val match_with : Schema.t -> t -> Restricted.t -> bindings -> bindings list
(** Like {!matches} but extending existing bindings; used by the memo
    engine, which matches sub-patterns against input groups one level at
    a time. *)

val pattern_inputs : t -> t list
(** Sub-patterns at the operator's input positions (mirrors
    {!Soqm_algebra.Restricted.inputs}); [] for [PAny]/[PAnyRanging] and
    leaves. *)

val with_pattern_inputs : t -> t list -> t
(** Replace the input sub-patterns.  @raise Invalid_argument on arity
    mismatch. *)

val ref_vars : t -> string list
(** Reference variables occurring in the pattern (sorted, unique). *)

exception Unbound of string

val instantiate :
  rule:string -> fresh_seed:int -> bindings -> t -> Restricted.t
(** Build a term from a template.  Reference variables not present in the
    bindings become fresh temporaries named deterministically from
    [rule], the variable and [fresh_seed]; [PAny]/[PAnyRanging] splice the
    bound subtree.  @raise Unbound if a plan, name, comparison, operand
    or list variable is unbound. *)

val pp_bindings : Format.formatter -> bindings -> unit
