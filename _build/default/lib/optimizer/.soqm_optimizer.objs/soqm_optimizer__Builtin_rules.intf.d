lib/optimizer/builtin_rules.mli: Rule
