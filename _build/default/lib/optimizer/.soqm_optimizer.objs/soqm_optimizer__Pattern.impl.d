lib/optimizer/pattern.ml: Format Hashtbl List Option Printf Restricted Soqm_algebra Soqm_vml String Vtype
