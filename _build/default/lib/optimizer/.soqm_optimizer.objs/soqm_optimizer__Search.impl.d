lib/optimizer/search.ml: Array Cost Format General Hashtbl List Option Pattern Plan Restricted Rule Set Soqm_algebra Soqm_physical String
