lib/optimizer/dot.mli: Search Soqm_algebra Soqm_physical
