lib/optimizer/pattern.mli: Format Restricted Schema Soqm_algebra Soqm_vml
