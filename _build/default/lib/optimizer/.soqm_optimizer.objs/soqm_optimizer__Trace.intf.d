lib/optimizer/trace.mli: Format Search
