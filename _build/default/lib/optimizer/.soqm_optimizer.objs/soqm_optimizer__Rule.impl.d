lib/optimizer/rule.ml: Hashtbl List Pattern Restricted Schema Soqm_algebra Soqm_physical Soqm_storage Soqm_vml Statistics
