lib/optimizer/search.mli: Plan Restricted Rule Soqm_algebra Soqm_physical Soqm_vml
