lib/optimizer/builtin_rules.ml: Hashtbl List Option Pattern Printf Restricted Rule Soqm_algebra Soqm_physical Soqm_storage Soqm_vml String Vtype
