lib/optimizer/dot.ml: Buffer List Plan Printf Restricted Search Soqm_algebra Soqm_physical String
