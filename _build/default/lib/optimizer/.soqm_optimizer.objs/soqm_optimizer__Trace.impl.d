lib/optimizer/trace.ml: Format List Plan Restricted Search Soqm_algebra Soqm_physical
