lib/optimizer/memo.ml: Cost General Hashtbl List Option Pattern Plan Printf Restricted Rule Search Set Soqm_algebra Soqm_physical String
