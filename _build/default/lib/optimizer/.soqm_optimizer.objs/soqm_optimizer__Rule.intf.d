lib/optimizer/rule.mli: Pattern Restricted Schema Soqm_algebra Soqm_physical Soqm_storage Soqm_vml Statistics
