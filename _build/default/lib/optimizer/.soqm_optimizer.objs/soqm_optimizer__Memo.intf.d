lib/optimizer/memo.mli: Plan Restricted Rule Soqm_algebra Soqm_physical
