(** The predefined rule set (Section 6.1): "on the one hand many
    well-known rules from relational query optimization, e.g.
    associativity and commutativity of join or interchangeability of
    selection and join.  On the other hand, there are rules that involve
    the new operators, in particular map_property, map_method,
    flat_property and flat_method."

    The generic reorderings are native rules (one pattern per operator
    pair would be noise); Example 8 — transformation of path expressions,
    which are implicit joins, into explicit joins — is here too. *)

val commute_unary : Rule.transformation
(** Swap two adjacent unary operators (selects and the map/flat family)
    when neither uses the reference the other produces.  Subsumes
    interchange of selection with the new operators and select-cascade
    reordering. *)

val select_join_interchange : Rule.transformation
(** Push a selection into the join input that supplies all its operand
    references, and pull one back out — interchangeability of selection
    and join. *)

val select_project_interchange : Rule.transformation
(** Move a selection through a projection (both directions, when the
    selection's operands survive the projection). *)

val select_cross_to_join : Rule.transformation
(** [select<a θ b>(cross(S1, S2))] → [join<a θ b>(S1, S2)] when the two
    operands come from different sides (one direction: dissolving joins
    back into products only inflates the search space). *)

val join_commute : Rule.transformation
(** Commutativity of [cross], [join<θ>] and [natural_join]. *)

val join_associate : Rule.transformation
(** Associativity of [cross] (both directions). *)

val path_to_join : Rule.transformation
(** Example 8: two stacked [map_property] steps (an implicit join along a
    path) become an explicit join with a scan of the target class. *)

val natjoin_to_cascade : Rule.transformation
(** [natural_join(C1(Z), C2(Z))] of two operator chains over the same
    base is a semijoin on [Ref(Z)] and equals the cascade [C1(C2(Z))];
    turns the conjunctions introduced by implication rules into
    orderable predicate cascades. *)

val natjoin_idempotent : Rule.transformation
(** [natural_join(X, X) = X]. *)

val hoist_const_membership : Rule.transformation
(** [select<x IS-IN w>(Chain(get<x, C>))] with a tuple-independent
    [Chain] computing [w : {C}] becomes [flat<x ∈ w>(Chain(unit))] —
    eliminates the extent scan, completing the derivation of plan PQ. *)

val transformations : Rule.transformation list
(** All of the above. *)

val index_scan_impl : Rule.implementation
(** [select<t == const>(map_property<t, p, a>(get<a, C>))] implemented by
    a probe of a value index on [C.p], when one exists. *)

val range_scan_impl : Rule.implementation
(** [select<t θ const>] over a property map over a scan implemented by an
    ordered-index probe, for the ordering comparisons. *)

val nested_loop_impl : Rule.implementation
(** Alternative nested-loop implementation for [join<θ>]; competes with
    the default (hash join for equality). *)

val implementations : Rule.implementation list
