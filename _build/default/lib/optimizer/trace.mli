(** The optimization demonstrator (Section 7): "graphically illustrates
    how the VQL query optimizer works ... by tracing the single steps of
    the optimization process, i.e. by visualizing a query expression
    throughout the optimization process."  Here the visualization is a
    textual rendering of every derivation step of the winning variant,
    with the rule applied, plus the chosen plan and its estimated cost —
    usable as a debugging tool for examining the impact of
    schema-specific equivalences. *)

val pp_result : Format.formatter -> Search.result -> unit
(** Full trace: each derivation step with its rule name and term, then
    the chosen logical variant, physical plan and estimated cost. *)

val pp_summary : Format.formatter -> Search.result -> unit
(** One-line summary: variants explored, derivation length, cost. *)

val render : Search.result -> string
