(** Transformation and implementation rules.

    Following [13] (and Section 4.2), transformation rules rewrite one
    logical (restricted-algebra) expression into an equivalent one and
    may be applied in both directions; implementation rules map a logical
    expression to a physical plan and are applicable in one direction
    only.  Each rule may carry a condition.  The [!] marker of the
    implication rules — "may only be applied once, in order to avoid an
    infinite recursive application" — is the [apply_once] flag. *)

open Soqm_vml
open Soqm_algebra
open Soqm_storage

(** A transformation rule: either a pattern rewrite (the form
    schema-specific knowledge compiles to) or a native function (used for
    the generic reordering rules whose pattern form would need one
    pattern per operator pair). *)
type transformation = {
  t_name : string;
  t_apply_once : bool;
  t_body : body;
}

and body =
  | Rewrite of {
      lhs : Pattern.t;
      rhs : Pattern.t;
      bidirectional : bool;
      condition : Schema.t -> Pattern.bindings -> bool;
    }
  | Native of (Schema.t -> Restricted.t -> Restricted.t list)
      (** all single-step root rewrites of the given term *)

val rewrite :
  ?bidirectional:bool ->
  ?apply_once:bool ->
  ?condition:(Schema.t -> Pattern.bindings -> bool) ->
  string ->
  lhs:Pattern.t ->
  rhs:Pattern.t ->
  transformation
(** Defaults: bidirectional, not apply-once, no condition. *)

val native : ?apply_once:bool -> string -> (Schema.t -> Restricted.t -> Restricted.t list) -> transformation

val root_rewrites : Schema.t -> transformation -> Restricted.t -> Restricted.t list
(** All single-step rewrites of the term's root by the rule (both
    directions for bidirectional pattern rules).  Results are raw — the
    search validates, canonicalizes and deduplicates them. *)

(** Context available to implementation rules: statistics for costing and
    the available access paths. *)
type opt_ctx = {
  schema : Schema.t;
  stats : Statistics.t;
  has_index : cls:string -> prop:string -> bool;
  has_range_index : cls:string -> prop:string -> bool;
}

(** An implementation rule maps a logical expression whose root matches
    [i_lhs] to a physical plan; [i_build] receives the context, the match
    bindings, and a callback implementing logical subexpressions with the
    optimizer's current best plans. *)
type implementation = {
  i_name : string;
  i_lhs : Pattern.t;
  i_build :
    opt_ctx ->
    Pattern.bindings ->
    (Restricted.t -> Soqm_physical.Plan.t) ->
    Soqm_physical.Plan.t option;
}

val implementation :
  string ->
  lhs:Pattern.t ->
  build:
    (opt_ctx ->
    Pattern.bindings ->
    (Restricted.t -> Soqm_physical.Plan.t) ->
    Soqm_physical.Plan.t option) ->
  implementation
