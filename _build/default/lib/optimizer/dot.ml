open Soqm_algebra
open Soqm_physical

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Render a tree given a label function and an input function. *)
let tree_nodes ~prefix ~label ~inputs ~root buf =
  let counter = ref 0 in
  let rec go node =
    let id = Printf.sprintf "%s%d" prefix !counter in
    incr counter;
    Printf.bprintf buf "  %s [label=\"%s\"];\n" id (escape (label node));
    List.iter
      (fun input ->
        let child = go input in
        Printf.bprintf buf "  %s -> %s;\n" id child)
      (inputs node);
    id
  in
  go root

(* Operator labels: print the operator with its inputs replaced by the
   [unit] placeholder, then strip the placeholder suffix. *)
let strip_unit_suffix s =
  let patterns = [ "(\n  unit,\n  unit)"; "(\n  unit)"; "(unit, unit)"; "(unit)" ] in
  List.fold_left
    (fun acc pat ->
      let plen = String.length pat in
      let alen = String.length acc in
      if alen >= plen && String.sub acc (alen - plen) plen = pat then
        String.sub acc 0 (alen - plen)
      else acc)
    s patterns

let restricted_label t =
  match t with
  | Restricted.Unit -> "unit"
  | _ ->
    let shell =
      Restricted.with_inputs t
        (List.map (fun _ -> Restricted.Unit) (Restricted.inputs t))
    in
    strip_unit_suffix (Restricted.to_string shell)

let plan_label (p : Plan.t) =
  match p with
  | Plan.Unit -> "unit"
  | _ ->
    let shell =
      let unit_inputs = List.map (fun _ -> Plan.Unit) (Plan.inputs p) in
      match p, unit_inputs with
      | Plan.Filter (c, x, y, _), [ u ] -> Plan.Filter (c, x, y, u)
      | Plan.NestedLoop (pred, _, _), [ u1; u2 ] -> Plan.NestedLoop (pred, u1, u2)
      | Plan.HashJoin (a, b, _, _), [ u1; u2 ] -> Plan.HashJoin (a, b, u1, u2)
      | Plan.NaturalJoin (_, _), [ u1; u2 ] -> Plan.NaturalJoin (u1, u2)
      | Plan.Union (_, _), [ u1; u2 ] -> Plan.Union (u1, u2)
      | Plan.Diff (_, _), [ u1; u2 ] -> Plan.Diff (u1, u2)
      | Plan.MapProp (a, pr, r, _), [ u ] -> Plan.MapProp (a, pr, r, u)
      | Plan.MapMeth (a, m, r, xs, _), [ u ] -> Plan.MapMeth (a, m, r, xs, u)
      | Plan.FlatProp (a, pr, r, _), [ u ] -> Plan.FlatProp (a, pr, r, u)
      | Plan.FlatMeth (a, m, r, xs, _), [ u ] -> Plan.FlatMeth (a, m, r, xs, u)
      | Plan.MapOp (a, op, xs, _), [ u ] -> Plan.MapOp (a, op, xs, u)
      | Plan.FlatOp (a, op, xs, _), [ u ] -> Plan.FlatOp (a, op, xs, u)
      | Plan.Project (rs, _), [ u ] -> Plan.Project (rs, u)
      | leaf, _ -> leaf
    in
    strip_unit_suffix (Plan.to_string shell)

let of_restricted t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph logical {\n  node [shape=box, fontname=\"monospace\"];\n";
  ignore
    (tree_nodes ~prefix:"n" ~label:restricted_label ~inputs:Restricted.inputs
       ~root:t buf);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let of_plan p =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph plan {\n  node [shape=box, fontname=\"monospace\"];\n";
  ignore (tree_nodes ~prefix:"p" ~label:plan_label ~inputs:Plan.inputs ~root:p buf);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let of_derivation (r : Search.result) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "digraph derivation {\n\
    \  rankdir=TB;\n\
    \  node [shape=box, fontname=\"monospace\", fontsize=9];\n";
  List.iteri
    (fun i (s : Search.step) ->
      Printf.bprintf buf
        "  subgraph cluster_%d {\n    label=\"step %d: %s\";\n" i i
        (escape s.Search.rule);
      ignore
        (tree_nodes
           ~prefix:(Printf.sprintf "s%d_" i)
           ~label:restricted_label ~inputs:Restricted.inputs
           ~root:s.Search.term buf);
      Buffer.add_string buf "  }\n")
    r.Search.derivation;
  let n = List.length r.Search.derivation in
  Printf.bprintf buf
    "  subgraph cluster_plan {\n    label=\"chosen plan (cost %.1f)\";\n"
    r.Search.best_cost;
  ignore
    (tree_nodes ~prefix:"plan_" ~label:plan_label ~inputs:Plan.inputs
       ~root:r.Search.best_plan buf);
  Buffer.add_string buf "  }\n";
  (* chain the clusters through their root nodes *)
  for i = 0 to n - 2 do
    Printf.bprintf buf "  s%d_0 -> s%d_0 [style=dashed, constraint=false];\n" i
      (i + 1)
  done;
  if n > 0 then
    Printf.bprintf buf "  s%d_0 -> plan_0 [style=dashed, constraint=false];\n"
      (n - 1);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
