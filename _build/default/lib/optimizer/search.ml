open Soqm_algebra
open Soqm_physical

type config = { max_variants : int; max_size_slack : int }

let default_config = { max_variants = 2500; max_size_slack = 14 }

type step = { rule : string; term : Restricted.t }

type result = {
  best_plan : Plan.t;
  best_cost : float;
  best_logical : Restricted.t;
  variants_explored : int;
  truncated : bool;
  derivation : step list;
  rule_applications : (string * int) list;
}

(* All single-step rewrites of [term] by [f] applied at every node. *)
let rec rewrites_everywhere f term =
  let at_root = f term in
  let ins = Restricted.inputs term in
  let in_inputs =
    List.concat
      (List.mapi
         (fun i input ->
           List.map
             (fun input' ->
               Restricted.with_inputs term
                 (List.mapi (fun j x -> if i = j then input' else x) ins))
             (rewrites_everywhere f input))
         ins)
  in
  at_root @ in_inputs

(* A rewrite is admissible when the resulting tree is still well-formed
   and presents the same references to its consumer. *)
let admissible ~want_refs cand =
  match General.well_formed (Restricted.to_general cand) with
  | Ok () -> ( try Restricted.refs cand = want_refs with Invalid_argument _ -> false)
  | Error _ -> false
  | exception Invalid_argument _ -> false

module SSet = Set.Make (String)

type node = {
  term : Restricted.t;
  parent : (int * string) option;  (* index of parent node, rule name *)
  once_used : SSet.t;
}

let saturate_nodes ~config schema rules term0 =
  let term0 = Restricted.alpha_canonical term0 in
  let want_refs = Restricted.refs term0 in
  let size_limit = Restricted.size term0 + config.max_size_slack in
  let fired : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let seen = Hashtbl.create 256 in
  let nodes = ref [||] in
  let count = ref 0 in
  let truncated = ref false in
  let push node =
    if !count >= config.max_variants then truncated := true
    else if not (Hashtbl.mem seen node.term) then (
      Hashtbl.replace seen node.term ();
      if Array.length !nodes = !count then
        nodes :=
          Array.append !nodes (Array.make (max 64 (Array.length !nodes)) node);
      !nodes.(!count) <- node;
      incr count)
  in
  push { term = term0; parent = None; once_used = SSet.empty };
  let i = ref 0 in
  while !i < !count do
    let idx = !i in
    let node = !nodes.(idx) in
    List.iter
      (fun (rule : Rule.transformation) ->
        if not (rule.Rule.t_apply_once && SSet.mem rule.Rule.t_name node.once_used)
        then
          let results =
            rewrites_everywhere (Rule.root_rewrites schema rule) node.term
          in
          List.iter
            (fun cand ->
              let cand = Restricted.alpha_canonical cand in
              if Restricted.size cand <= size_limit && admissible ~want_refs cand
              then (
                Hashtbl.replace fired rule.Rule.t_name
                  (1 + Option.value ~default:0 (Hashtbl.find_opt fired rule.Rule.t_name));
                push
                  {
                    term = cand;
                    parent = Some (idx, rule.Rule.t_name);
                    once_used =
                      (if rule.Rule.t_apply_once then
                         SSet.add rule.Rule.t_name node.once_used
                       else node.once_used);
                  }))
            results)
      rules;
    incr i
  done;
  let rule_applications =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) fired []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  (Array.to_list (Array.sub !nodes 0 !count), !truncated, !nodes, rule_applications)

let saturate ?(config = default_config) schema rules term0 =
  let variants, truncated, _, _ = saturate_nodes ~config schema rules term0 in
  (List.map (fun n -> n.term) variants, truncated)

(* ------------------------------------------------------------------ *)
(* Implementation phase                                                *)
(* ------------------------------------------------------------------ *)

(* Default structural implementations of the root operator given best
   plans for the inputs; [JoinCmp] with equality yields both a hash join
   and (via the builtin rule) a nested loop, so alternatives compete. *)
let structural_roots (term : Restricted.t) (input_plans : Plan.t list) :
    Plan.t list =
  match term, input_plans with
  | Restricted.Unit, [] -> [ Plan.Unit ]
  | Restricted.Get (a, c), [] -> [ Plan.FullScan (a, c) ]
  | Restricted.MethodSource (a, cls, m, args), [] -> (
    match
      List.filter_map
        (function Restricted.OConst v -> Some v | _ -> None)
        args
    with
    | consts when List.length consts = List.length args ->
      [ Plan.MethodScan (a, cls, m, consts) ]
    | _ -> [])
  | Restricted.NaturalJoin _, [ p1; p2 ] -> [ Plan.NaturalJoin (p1, p2) ]
  | Restricted.Union _, [ p1; p2 ] -> [ Plan.Union (p1, p2) ]
  | Restricted.Diff _, [ p1; p2 ] -> [ Plan.Diff (p1, p2) ]
  | Restricted.Cross _, [ p1; p2 ] -> [ Plan.NestedLoop (None, p1, p2) ]
  | Restricted.SelectCmp (c, x, y, _), [ p ] -> [ Plan.Filter (c, x, y, p) ]
  | Restricted.JoinCmp (Restricted.CEq, a1, a2, _, _), [ p1; p2 ] ->
    [ Plan.HashJoin (a1, a2, p1, p2) ]
  | Restricted.JoinCmp (c, a1, a2, _, _), [ p1; p2 ] ->
    [ Plan.NestedLoop (Some (c, a1, a2), p1, p2) ]
  | Restricted.MapProperty (a, p, a1, _), [ pl ] -> [ Plan.MapProp (a, p, a1, pl) ]
  | Restricted.MapMethod (a, m, r, xs, _), [ pl ] ->
    [ Plan.MapMeth (a, m, r, xs, pl) ]
  | Restricted.FlatProperty (a, p, a1, _), [ pl ] ->
    [ Plan.FlatProp (a, p, a1, pl) ]
  | Restricted.FlatMethod (a, m, r, xs, _), [ pl ] ->
    [ Plan.FlatMeth (a, m, r, xs, pl) ]
  | Restricted.MapOperator (a, op, xs, _), [ pl ] -> [ Plan.MapOp (a, op, xs, pl) ]
  | Restricted.FlatOperator (a, op, xs, _), [ pl ] ->
    [ Plan.FlatOp (a, op, xs, pl) ]
  | Restricted.Project (rs, _), [ pl ] -> [ Plan.Project (rs, pl) ]
  | _ -> []

exception No_plan of string

let implement_memo (ctx : Rule.opt_ctx) impls memo =
  let rec best (term : Restricted.t) : Plan.t * float =
    match Hashtbl.find_opt memo term with
    | Some pc -> pc
    | None ->
      let input_plans = List.map (fun t -> fst (best t)) (Restricted.inputs term) in
      let structural = structural_roots term input_plans in
      let from_rules =
        List.concat_map
          (fun (r : Rule.implementation) ->
            List.filter_map
              (fun b ->
                try r.Rule.i_build ctx b (fun sub -> fst (best sub))
                with No_plan _ -> None)
              (Pattern.matches ctx.Rule.schema r.Rule.i_lhs term))
          impls
      in
      let candidates = structural @ from_rules in
      (* branch-and-bound over the candidate list: keep the cheapest *)
      let chosen =
        List.fold_left
          (fun acc plan ->
            let c = Cost.cost ctx.Rule.stats plan in
            match acc with
            | Some (_, best_c) when best_c <= c -> acc
            | _ -> Some (plan, c))
          None candidates
      in
      (match chosen with
      | Some pc ->
        Hashtbl.replace memo term pc;
        pc
      | None ->
        raise
          (No_plan
             (Format.asprintf "no implementation for %a" Restricted.pp term)))
  in
  best

let implement_only ctx impls term =
  let memo = Hashtbl.create 64 in
  implement_memo ctx impls memo term

let optimize ?(config = default_config) (ctx : Rule.opt_ctx) rules impls term0 =
  let nodes, truncated, arr, rule_applications =
    saturate_nodes ~config ctx.Rule.schema rules term0
  in
  let memo = Hashtbl.create 1024 in
  let best = implement_memo ctx impls memo in
  let best_result =
    List.fold_left
      (fun acc (idx, node) ->
        match best node.term with
        | plan, cost -> (
          match acc with
          | Some (_, _, best_cost) when best_cost <= cost -> acc
          | _ -> Some (idx, plan, cost))
        | exception No_plan _ -> acc)
      None
      (List.mapi (fun i n -> (i, n)) nodes)
  in
  match best_result with
  | None -> raise (No_plan "no variant could be implemented")
  | Some (winner_idx, best_plan, best_cost) ->
    (* reconstruct the derivation of the winning variant *)
    let rec path idx acc =
      let node = arr.(idx) in
      match node.parent with
      | None -> { rule = "(input)"; term = node.term } :: acc
      | Some (p, rule) -> path p ({ rule; term = node.term } :: acc)
    in
    {
      best_plan;
      best_cost;
      best_logical = arr.(winner_idx).term;
      variants_explored = List.length nodes;
      truncated;
      derivation = path winner_idx [];
      rule_applications;
    }
