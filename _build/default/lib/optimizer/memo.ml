open Soqm_algebra
open Soqm_physical
module SSet = Set.Make (String)

type mexpr = {
  shell : Restricted.t;  (* the operator with inputs replaced by Unit *)
  m_inputs : int list;  (* group ids (resolve through the union-find) *)
  mutable applied : SSet.t;  (* rules already tried on this mexpr *)
}

type best_state = Unknown | Computing | Done of (Plan.t * float) option

type group = {
  gid : int;
  mutable exprs : mexpr list;
  rep : Restricted.t;  (* one concrete member, fixed at creation *)
  grefs : string list;  (* Ref(S), invariant across members *)
  mutable once_used : SSet.t;
  mutable best : best_state;
}

type t = {
  ctx : Rule.opt_ctx;
  transforms : Rule.transformation list;
  impls : Rule.implementation list;
  mutable next_gid : int;
  groups : (int, group) Hashtbl.t;
  index : (string, int) Hashtbl.t;  (* mexpr key -> group *)
  parent : (int, int) Hashtbl.t;  (* union-find *)
  fired : (string, int) Hashtbl.t;
  mutable merges : int;
}

type stats = {
  groups : int;
  exprs : int;
  merges : int;
  fired : (string * int) list;
}

let create ctx transforms impls =
  {
    ctx;
    transforms;
    impls;
    next_gid = 0;
    groups = Hashtbl.create 128;
    index = Hashtbl.create 256;
    parent = Hashtbl.create 128;
    fired = Hashtbl.create 16;
    merges = 0;
  }

(* union-find with path compression *)
let rec find t g =
  match Hashtbl.find_opt t.parent g with
  | Some p when p <> g ->
    let root = find t p in
    Hashtbl.replace t.parent g root;
    root
  | _ -> g

let group (t : t) g = Hashtbl.find t.groups (find t g)

let mexpr_key t shell inputs =
  Printf.sprintf "%s@%s"
    (Restricted.to_string shell)
    (String.concat "," (List.map (fun g -> string_of_int (find t g)) inputs))

let unit_shell term =
  Restricted.with_inputs term
    (List.map (fun _ -> Restricted.Unit) (Restricted.inputs term))

(* Merge group [loser] into [winner]: move expressions (dedup by key) and
   reset the winner's plan cache. *)
let merge (t : t) winner loser =
  let w = find t winner and l = find t loser in
  if w <> l then (
    let gw = Hashtbl.find t.groups w and gl = Hashtbl.find t.groups l in
    Hashtbl.replace t.parent l w;
    t.merges <- t.merges + 1;
    let existing =
      List.map (fun m -> mexpr_key t m.shell m.m_inputs) gw.exprs
    in
    List.iter
      (fun m ->
        if not (List.mem (mexpr_key t m.shell m.m_inputs) existing) then
          gw.exprs <- gw.exprs @ [ m ])
      gl.exprs;
    gw.once_used <- SSet.union gw.once_used gl.once_used;
    gw.best <- Unknown;
    Hashtbl.remove t.groups l)

(* Register [shell(inputs)].  With [target] set, the expression is known
   to be equivalent to that group (it came from a rewrite there): an
   existing registration elsewhere triggers a merge. *)
let add_mexpr t ?target shell inputs ~rep =
  let inputs = List.map (find t) inputs in
  let key = mexpr_key t shell inputs in
  match Hashtbl.find_opt t.index key with
  | Some g0 -> (
    let g0 = find t g0 in
    match target with
    | Some tg when find t tg <> g0 ->
      merge t g0 tg;
      find t g0
    | _ -> g0)
  | None -> (
    match target with
    | Some tg ->
      let tg = find t tg in
      let g = Hashtbl.find t.groups tg in
      g.exprs <- g.exprs @ [ { shell; m_inputs = inputs; applied = SSet.empty } ];
      g.best <- Unknown;
      Hashtbl.replace t.index key tg;
      tg
    | None ->
      let gid = t.next_gid in
      t.next_gid <- gid + 1;
      Hashtbl.replace t.parent gid gid;
      Hashtbl.replace t.groups gid
        {
          gid;
          exprs = [ { shell; m_inputs = inputs; applied = SSet.empty } ];
          rep;
          grefs = (try Restricted.refs rep with Invalid_argument _ -> []);
          once_used = SSet.empty;
          best = Unknown;
        };
      Hashtbl.replace t.index key gid;
      gid)

let rec insert t (term : Restricted.t) : int =
  let input_gids = List.map (insert t) (Restricted.inputs term) in
  add_mexpr t (unit_shell term) input_gids ~rep:term

(* Insert a rewrite result as a new member of [target]. *)
let insert_into t ~target (term : Restricted.t) : int =
  let input_gids = List.map (insert t) (Restricted.inputs term) in
  add_mexpr t ~target (unit_shell term) input_gids ~rep:term

(* ------------------------------------------------------------------ *)
(* Trees of a group (bounded)                                          *)
(* ------------------------------------------------------------------ *)

let rec trees_limited t ~visiting ~limit gid : Restricted.t list =
  let gid = find t gid in
  if List.mem gid visiting then []
  else
    let g = group t gid in
    let visiting = gid :: visiting in
    let rec take n = function
      | [] -> []
      | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest
    in
    take limit
      (List.concat_map
         (fun m ->
           let input_alternatives =
             List.map (trees_limited t ~visiting ~limit:2) m.m_inputs
           in
           if List.exists (( = ) []) input_alternatives then
             if m.m_inputs = [] then [ m.shell ] else []
           else
             (* cartesian product, bounded by construction *)
             List.fold_left
               (fun acc alts ->
                 List.concat_map
                   (fun partial -> List.map (fun a -> partial @ [ a ]) alts)
                   acc)
               [ [] ] input_alternatives
             |> List.map (fun ins -> Restricted.with_inputs m.shell ins))
         g.exprs)

let trees t gid = trees_limited t ~visiting:[] ~limit:8 gid

let representative t gid = (group t gid).rep

(* ------------------------------------------------------------------ *)
(* Matching patterns against the memo                                  *)
(* ------------------------------------------------------------------ *)

(* Match [pat] against group [gid]: input variables bind the group's
   representative; operator patterns are tried against every member
   expression, their sub-patterns descending into the input groups. *)
let rec match_group t pat gid (b : Pattern.bindings) : Pattern.bindings list =
  match pat with
  | Pattern.PAny _ | Pattern.PAnyRanging _ ->
    Pattern.match_with t.ctx.Rule.schema pat (representative t gid) b
  | _ ->
    List.concat_map (fun m -> match_mexpr t pat m b) (group t gid).exprs

and match_mexpr t pat (m : mexpr) b : Pattern.bindings list =
  let subs = Pattern.pattern_inputs pat in
  if List.length subs <> List.length m.m_inputs then []
  else
    (* match the operator level against the shell (stub inputs bind the
       Unit placeholders and are ignored) *)
    let stubbed =
      Pattern.with_pattern_inputs pat
        (List.mapi (fun i _ -> Pattern.PAny (Printf.sprintf "!%d" i)) subs)
    in
    let roots = Pattern.match_with t.ctx.Rule.schema stubbed m.shell b in
    List.concat_map
      (fun b' ->
        List.fold_left2
          (fun bs sub gid ->
            List.concat_map (fun b'' -> match_group t sub gid b'') bs)
          [ b' ] subs m.m_inputs)
      roots

(* ------------------------------------------------------------------ *)
(* Exploration                                                         *)
(* ------------------------------------------------------------------ *)

let count_exprs (t : t) =
  Hashtbl.fold (fun _ (g : group) acc -> acc + List.length g.exprs) t.groups 0

let admissible g cand =
  match General.well_formed (Restricted.to_general cand) with
  | Ok () -> (
    try Restricted.refs cand = g.grefs with Invalid_argument _ -> false)
  | Error _ | (exception Invalid_argument _) -> false

let seed_of name term =
  Hashtbl.hash (name, Restricted.to_string term) land 0xFFFFFF

let rewrites_of_rule t (rule : Rule.transformation) gid m : Restricted.t list =
  match rule.Rule.t_body with
  | Rule.Native f ->
    (* natives need concrete trees rooted at this mexpr *)
    let input_alternatives =
      List.map (fun g -> trees_limited t ~visiting:[ find t gid ] ~limit:3 g) m.m_inputs
    in
    if List.exists (( = ) []) input_alternatives && m.m_inputs <> [] then []
    else
      let trees =
        List.fold_left
          (fun acc alts ->
            List.concat_map
              (fun partial -> List.map (fun a -> partial @ [ a ]) alts)
              acc)
          [ [] ] input_alternatives
        |> List.map (fun ins -> Restricted.with_inputs m.shell ins)
      in
      List.concat_map (f t.ctx.Rule.schema) trees
  | Rule.Rewrite { lhs; rhs; bidirectional; condition } ->
    let direction lhs rhs =
      List.filter_map
        (fun b ->
          if not (condition t.ctx.Rule.schema b) then None
          else
            match
              Pattern.instantiate ~rule:rule.Rule.t_name
                ~fresh_seed:(seed_of rule.Rule.t_name m.shell)
                b rhs
            with
            | tree -> Some tree
            | exception Pattern.Unbound _ -> None)
        (match_mexpr t lhs m Pattern.empty)
    in
    direction lhs rhs @ (if bidirectional then direction rhs lhs else [])

let explore ?(max_exprs = 5000) t =
  let changed = ref true in
  while !changed && count_exprs t < max_exprs do
    changed := false;
    let gids = Hashtbl.fold (fun gid _ acc -> gid :: acc) t.groups [] in
    List.iter
      (fun gid ->
        match Hashtbl.find_opt t.groups (find t gid) with
        | None -> ()
        | Some g ->
          List.iter
            (fun m ->
              List.iter
                (fun (rule : Rule.transformation) ->
                  let name = rule.Rule.t_name in
                  if
                    (not (SSet.mem name m.applied))
                    && not (rule.Rule.t_apply_once && SSet.mem name g.once_used)
                  then (
                    m.applied <- SSet.add name m.applied;
                    let results = rewrites_of_rule t rule gid m in
                    List.iter
                      (fun cand ->
                        (* note: no alpha-canonicalization here — group
                           references are concrete names, and renaming
                           temporaries would break the per-group Ref(S)
                           invariant *)
                        if admissible g cand then (
                          let before_exprs = count_exprs t in
                          let before_merges = t.merges in
                          ignore (insert_into t ~target:g.gid cand);
                          if
                            count_exprs t <> before_exprs
                            || t.merges <> before_merges
                          then (
                            changed := true;
                            Hashtbl.replace t.fired name
                              (1
                              + Option.value ~default:0
                                  (Hashtbl.find_opt t.fired name)));
                          if rule.Rule.t_apply_once then
                            g.once_used <- SSet.add name g.once_used))
                      results))
                t.transforms)
            g.exprs)
      gids
  done

(* ------------------------------------------------------------------ *)
(* Implementation                                                      *)
(* ------------------------------------------------------------------ *)

exception No_plan

let rec best_plan t gid : (Plan.t * float) option =
  let gid = find t gid in
  let g = group t gid in
  match g.best with
  | Done r -> r
  | Computing -> None (* cycle through a merge: cannot be optimal *)
  | Unknown ->
    g.best <- Computing;
    let implement_tree tree =
      match best_plan t (insert t tree) with
      | Some (p, _) -> p
      | None -> raise No_plan
    in
    let structural =
      List.concat_map
        (fun m ->
          match List.map (fun i -> best_plan t i) m.m_inputs with
          | plans when List.for_all Option.is_some plans ->
            Search.structural_roots m.shell (List.map (fun p -> fst (Option.get p)) plans)
          | _ -> [])
        g.exprs
    in
    let from_rules =
      List.concat_map
        (fun (r : Rule.implementation) ->
          List.filter_map
            (fun b ->
              try r.Rule.i_build t.ctx b implement_tree with No_plan -> None)
            (match_group t r.Rule.i_lhs gid Pattern.empty))
        t.impls
    in
    let result =
      List.fold_left
        (fun acc plan ->
          let c = Cost.cost t.ctx.Rule.stats plan in
          match acc with
          | Some (_, bc) when bc <= c -> acc
          | _ -> Some (plan, c))
        None (structural @ from_rules)
    in
    g.best <- Done result;
    result

let optimize ?max_exprs t term =
  let gid = insert t term in
  explore ?max_exprs t;
  match best_plan t gid with
  | Some r -> r
  | None -> failwith "Memo.optimize: no plan"

let stats (t : t) : stats =
  {
    groups = Hashtbl.length t.groups;
    exprs = count_exprs t;
    merges = t.merges;
    fired =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.fired []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
  }
