(** A Volcano-style memo: groups of equivalent logical expressions.

    The saturation engine ({!Search}) explores whole terms; this engine
    implements the search-space organization the Volcano optimizer
    generator actually uses [13]: a {e group} holds the set of equivalent
    expressions discovered so far, each expression ({e mexpr}) is an
    operator whose inputs are groups, identical subexpressions are shared
    between all the alternatives that contain them, each rule is applied
    at most once per mexpr (the per-expression rule mask), and groups
    that turn out to be equal are merged (union-find).

    Pattern rules match directly against the memo — input subpatterns
    enumerate the input group's expressions, and input variables ([?A])
    bind a representative tree of the group.  Native rules, which inspect
    whole subtrees, run against a bounded set of trees materialized from
    the group.

    {b Granularity limitation.}  A group's members must present the same
    references [Ref(S)]; rewrites that change them are rejected.  The
    schema-specific rules of Section 4.2 compile expression parameters
    into chains of temporaries (Section 6.2), so applying e.g. E2
    replaces the temporary holding [d.title] by one holding the
    [select_by_index] result — sound for the {e query} (the projection
    above discards both) but not reference-preserving for the
    {e subexpression group}.  Such rules therefore only act at whole-term
    granularity, which is what the saturation engine ({!Search}, the
    default) provides; this memo explores the reference-preserving space
    (operator reorderings, join alternatives, access-path implementation
    rules such as E5) with Volcano's cost profile — orders of magnitude
    fewer expressions thanks to sharing.  The experiment harness compares
    both.

    Both engines are sound: the tests cross-check every plan against the
    reference evaluator. *)

open Soqm_algebra
open Soqm_physical

type t

type stats = {
  groups : int;  (** live (canonical) groups *)
  exprs : int;  (** expressions across all groups *)
  merges : int;  (** group unifications performed *)
  fired : (string * int) list;  (** accepted rewrites per rule *)
}

val create : Rule.opt_ctx -> Rule.transformation list -> Rule.implementation list -> t

val insert : t -> Restricted.t -> int
(** Insert a term (shared with existing subexpressions) and return its
    group. *)

val explore : ?max_exprs:int -> t -> unit
(** Apply every transformation rule to every mexpr until fixpoint or
    until the memo holds [max_exprs] expressions (default 5000). *)

val best_plan : t -> int -> (Plan.t * float) option
(** Cheapest physical plan of a group: implementation rules compete with
    the structural implementations of every member expression, inputs
    recursively optimized; memoized per group; cyclic references (from
    merges) are skipped. *)

val optimize : ?max_exprs:int -> t -> Restricted.t -> Plan.t * float
(** [insert], [explore], then [best_plan].
    @raise Failure when no plan exists. *)

val stats : t -> stats

val trees : t -> int -> Restricted.t list
(** A bounded sample of concrete trees of a group (used by native rules
    and the tests). *)
