(** Graphviz rendering for the demonstrator (Section 7).

    The paper's prototype "graphically illustrates how the VQL query
    optimizer works"; these functions emit DOT source for the same
    visualizations: an operator tree (logical or physical) and the
    derivation chain of an optimization result.  Render with
    [dot -Tsvg]. *)

val of_restricted : Soqm_algebra.Restricted.t -> string
(** One node per operator, labelled with the operator and its atomic
    parameters; edges to the inputs. *)

val of_plan : Soqm_physical.Plan.t -> string

val of_derivation : Search.result -> string
(** The chain of derivation steps, each a boxed operator tree, connected
    by edges labelled with the rule applied; the chosen physical plan at
    the end. *)
