(** The optimizer's search engine.

    Mirrors the Volcano search strategy the paper relies on: "each
    generated optimizer contains a fixed search algorithm based on
    exhaustive search for all logical transformations and
    branch-and-bound pruning when applying implementation rules"
    (Section 6.1).

    Transformation closure: starting from the input term, every
    transformation rule is applied at every node position until no new
    terms appear (or a safety bound is hit).  Terms are deduplicated
    modulo renaming of compiler temporaries ({!Restricted.alpha_canonical})
    and rewrites that would leave the tree ill-formed or change its
    visible references are discarded.  Apply-once rules (the [!]-marked
    implication rules of Section 4.2) are applied at most once along any
    derivation.

    Implementation: for each logical variant, the cheapest physical plan
    is computed bottom-up — implementation rules compete with the default
    structural implementation per node — memoized across variants (which
    share subterms, recovering the sharing of Volcano's memo groups) and
    pruned against the best complete plan found so far. *)

open Soqm_algebra
open Soqm_physical

type config = {
  max_variants : int;  (** stop expanding after this many logical variants *)
  max_size_slack : int;  (** discard terms larger than input size + slack *)
}

val default_config : config

(** One derivation step, for the Section 7 demonstrator. *)
type step = { rule : string; term : Restricted.t }

type result = {
  best_plan : Plan.t;
  best_cost : float;
  best_logical : Restricted.t;
  variants_explored : int;
  truncated : bool;  (** true when a safety bound stopped the closure *)
  derivation : step list;
      (** rule applications leading from the input to the chosen variant,
          in order; the first step's [term] is the (canonicalized) input *)
  rule_applications : (string * int) list;
      (** how many accepted rewrites each transformation rule produced
          during the closure (rules that never fired are absent); sorted
          by rule name *)
}

val saturate :
  ?config:config ->
  Soqm_vml.Schema.t ->
  Rule.transformation list ->
  Restricted.t ->
  Restricted.t list * bool
(** All logical variants reachable from the (canonicalized) term, and
    whether the closure was truncated by a bound.  Exposed for tests and
    the optimizer-scaling experiment. *)

val optimize :
  ?config:config ->
  Rule.opt_ctx ->
  Rule.transformation list ->
  Rule.implementation list ->
  Restricted.t ->
  result

val structural_roots : Restricted.t -> Plan.t list -> Plan.t list
(** The default structural implementation(s) of a term's root operator
    given best plans for its inputs; shared with the memo engine. *)

val implement_only :
  Rule.opt_ctx -> Rule.implementation list -> Restricted.t -> Plan.t * float
(** Best physical plan of one logical term, without any transformation
    (used as the "no optimization" baseline and by the ablation
    experiments). *)
