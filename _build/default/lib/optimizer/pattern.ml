open Soqm_vml
open Soqm_algebra

type pref = PRef of string | PRefVar of string
type pname = PName of string | PNameVar of string
type pcmp = PCmp of Restricted.cmp | PCmpVar of string

type poperand =
  | POperand of Restricted.operand
  | POperandVar of string
  | PORefOf of pref

type precv = PRecvClass of pname | PRecvRef of pref
type pargs = PArgs of poperand list | PArgsVar of string
type prefs = PRefs of pref list | PRefsVar of string

type t =
  | PAny of string
  | PAnyRanging of string * pref * string
  | PGet of pref * pname
  | PNaturalJoin of t * t
  | PUnion of t * t
  | PDiff of t * t
  | PCross of t * t
  | PSelectCmp of pcmp * poperand * poperand * t
  | PJoinCmp of pcmp * pref * pref * t * t
  | PMapProperty of pref * pname * pref * t
  | PMapMethod of pref * pname * precv * pargs * t
  | PFlatProperty of pref * pname * pref * t
  | PFlatMethod of pref * pname * precv * pargs * t
  | PMapOperator of pref * Restricted.opname * pargs * t
  | PFlatOperator of pref * Restricted.opname * pargs * t
  | PProject of prefs * t
  | PMethodSource of pref * pname * pname * pargs

type bindings = {
  plans : (string * Restricted.t) list;
  refs : (string * string) list;
  names : (string * string) list;
  cmps : (string * Restricted.cmp) list;
  operands : (string * Restricted.operand) list;
  arglists : (string * Restricted.operand list) list;
  reflists : (string * string list) list;
}

let empty =
  {
    plans = [];
    refs = [];
    names = [];
    cmps = [];
    operands = [];
    arglists = [];
    reflists = [];
  }

(* Generic binder: bind variable [v] to [x] under accessor/updater,
   failing (None) on conflicting earlier binding. *)
let bind get set eq v x b =
  match List.assoc_opt v (get b) with
  | Some existing -> if eq existing x then Some b else None
  | None -> Some (set b ((v, x) :: get b))

let bind_ref = bind (fun b -> b.refs) (fun b refs -> { b with refs }) String.equal
let bind_name = bind (fun b -> b.names) (fun b names -> { b with names }) String.equal
let bind_cmp = bind (fun b -> b.cmps) (fun b cmps -> { b with cmps }) ( = )

let bind_operand =
  bind (fun b -> b.operands) (fun b operands -> { b with operands }) ( = )

let bind_arglist =
  bind (fun b -> b.arglists) (fun b arglists -> { b with arglists }) ( = )

let bind_reflist =
  bind (fun b -> b.reflists) (fun b reflists -> { b with reflists }) ( = )

let bind_plan =
  bind (fun b -> b.plans) (fun b plans -> { b with plans }) Restricted.equal

let match_pref p r b =
  match p with
  | PRef r' -> if String.equal r r' then Some b else None
  | PRefVar v -> bind_ref v r b

let match_pname p n b =
  match p with
  | PName n' -> if String.equal n n' then Some b else None
  | PNameVar v -> bind_name v n b

let match_pcmp p c b =
  match p with
  | PCmp c' -> if c = c' then Some b else None
  | PCmpVar v -> bind_cmp v c b

let match_poperand p (x : Restricted.operand) b =
  match p with
  | POperand x' -> if x = x' then Some b else None
  | POperandVar v -> bind_operand v x b
  | PORefOf pr -> ( match x with Restricted.ORef r -> match_pref pr r b | _ -> None)

let match_precv p (r : Restricted.receiver) b =
  match p, r with
  | PRecvClass pn, Restricted.RClass c -> match_pname pn c b
  | PRecvRef pr, Restricted.RRef rr -> match_pref pr rr b
  | _ -> None

let match_pargs p (xs : Restricted.operand list) b =
  match p with
  | PArgsVar v -> bind_arglist v xs b
  | PArgs ps ->
    if List.length ps <> List.length xs then None
    else
      List.fold_left2
        (fun acc p x -> Option.bind acc (match_poperand p x))
        (Some b) ps xs

let match_prefs p (rs : string list) b =
  match p with
  | PRefsVar v -> bind_reflist v rs b
  | PRefs ps ->
    if List.length ps <> List.length rs then None
    else
      List.fold_left2
        (fun acc p r -> Option.bind acc (match_pref p r))
        (Some b) ps rs

(* Monadic helpers over lists of alternative bindings. *)
let opt_to_list = function Some b -> [ b ] | None -> []

let rec matches schema (pat : t) (term : Restricted.t) : bindings list =
  match_at schema pat term empty

and match_at schema pat term b : bindings list =
  match pat, term with
  | PAny v, _ -> opt_to_list (bind_plan v term b)
  | PAnyRanging (v, pr, cls), _ -> (
    let env = Restricted.infer schema term in
    match pr with
    | PRef r ->
      if List.assoc_opt r env = Some (Vtype.TObj cls) then
        opt_to_list (bind_plan v term b)
      else []
    | PRefVar rv -> (
      match List.assoc_opt rv b.refs with
      | Some r ->
        if List.assoc_opt r env = Some (Vtype.TObj cls) then
          opt_to_list (bind_plan v term b)
        else []
      | None ->
        (* enumerate candidate references of the right class *)
        List.concat_map
          (fun (r, ty) ->
            if ty = Vtype.TObj cls then
              match bind_ref rv r b with
              | Some b' -> opt_to_list (bind_plan v term b')
              | None -> []
            else [])
          env))
  | PGet (pa, pc), Restricted.Get (a, c) ->
    opt_to_list
      (Option.bind (match_pref pa a b) (fun b -> match_pname pc c b))
  | PNaturalJoin (p1, p2), Restricted.NaturalJoin (s1, s2)
  | PUnion (p1, p2), Restricted.Union (s1, s2)
  | PDiff (p1, p2), Restricted.Diff (s1, s2)
  | PCross (p1, p2), Restricted.Cross (s1, s2) ->
    List.concat_map (fun b' -> match_at schema p2 s2 b') (match_at schema p1 s1 b)
  | PSelectCmp (pc, px, py, pi), Restricted.SelectCmp (c, x, y, s) ->
    (match
       Option.bind (match_pcmp pc c b) (fun b ->
           Option.bind (match_poperand px x b) (match_poperand py y))
     with
    | Some b' -> match_at schema pi s b'
    | None -> [])
  | PJoinCmp (pc, pa1, pa2, p1, p2), Restricted.JoinCmp (c, a1, a2, s1, s2) ->
    (match
       Option.bind (match_pcmp pc c b) (fun b ->
           Option.bind (match_pref pa1 a1 b) (match_pref pa2 a2))
     with
    | Some b' ->
      List.concat_map
        (fun b'' -> match_at schema p2 s2 b'')
        (match_at schema p1 s1 b')
    | None -> [])
  | PMapProperty (pa, pp, pa1, pi), Restricted.MapProperty (a, p, a1, s)
  | PFlatProperty (pa, pp, pa1, pi), Restricted.FlatProperty (a, p, a1, s) -> (
    match
      Option.bind (match_pref pa a b) (fun b ->
          Option.bind (match_pname pp p b) (match_pref pa1 a1))
    with
    | Some b' -> match_at schema pi s b'
    | None -> [])
  | PMapMethod (pa, pm, pr, pxs, pi), Restricted.MapMethod (a, m, r, xs, s)
  | PFlatMethod (pa, pm, pr, pxs, pi), Restricted.FlatMethod (a, m, r, xs, s) -> (
    match
      Option.bind (match_pref pa a b) (fun b ->
          Option.bind (match_pname pm m b) (fun b ->
              Option.bind (match_precv pr r b) (fun b -> match_pargs pxs xs b)))
    with
    | Some b' -> match_at schema pi s b'
    | None -> [])
  | PMapOperator (pa, op, pxs, pi), Restricted.MapOperator (a, op', xs, s)
  | PFlatOperator (pa, op, pxs, pi), Restricted.FlatOperator (a, op', xs, s) -> (
    if op <> op' then []
    else
      match Option.bind (match_pref pa a b) (fun b -> match_pargs pxs xs b) with
      | Some b' -> match_at schema pi s b'
      | None -> [])
  | PProject (prs, pi), Restricted.Project (rs, s) -> (
    match match_prefs prs rs b with
    | Some b' -> match_at schema pi s b'
    | None -> [])
  | PMethodSource (pa, pc, pm, pxs), Restricted.MethodSource (a, c, m, xs) ->
    opt_to_list
      (Option.bind (match_pref pa a b) (fun b ->
           Option.bind (match_pname pc c b) (fun b ->
               Option.bind (match_pname pm m b) (fun b -> match_pargs pxs xs b))))
  | _ -> []

let match_with schema pat term b = match_at schema pat term b

let pattern_inputs = function
  | PAny _ | PAnyRanging _ | PGet _ | PMethodSource _ -> []
  | PSelectCmp (_, _, _, p)
  | PMapProperty (_, _, _, p)
  | PMapMethod (_, _, _, _, p)
  | PFlatProperty (_, _, _, p)
  | PFlatMethod (_, _, _, _, p)
  | PMapOperator (_, _, _, p)
  | PFlatOperator (_, _, _, p)
  | PProject (_, p) ->
    [ p ]
  | PNaturalJoin (p1, p2) | PUnion (p1, p2) | PDiff (p1, p2) | PCross (p1, p2)
  | PJoinCmp (_, _, _, p1, p2) ->
    [ p1; p2 ]

let with_pattern_inputs pat ins =
  match pat, ins with
  | (PAny _ | PAnyRanging _ | PGet _ | PMethodSource _), [] -> pat
  | PSelectCmp (c, x, y, _), [ p ] -> PSelectCmp (c, x, y, p)
  | PMapProperty (a, n, r, _), [ p ] -> PMapProperty (a, n, r, p)
  | PMapMethod (a, n, rv, xs, _), [ p ] -> PMapMethod (a, n, rv, xs, p)
  | PFlatProperty (a, n, r, _), [ p ] -> PFlatProperty (a, n, r, p)
  | PFlatMethod (a, n, rv, xs, _), [ p ] -> PFlatMethod (a, n, rv, xs, p)
  | PMapOperator (a, op, xs, _), [ p ] -> PMapOperator (a, op, xs, p)
  | PFlatOperator (a, op, xs, _), [ p ] -> PFlatOperator (a, op, xs, p)
  | PProject (rs, _), [ p ] -> PProject (rs, p)
  | PNaturalJoin _, [ p1; p2 ] -> PNaturalJoin (p1, p2)
  | PUnion _, [ p1; p2 ] -> PUnion (p1, p2)
  | PDiff _, [ p1; p2 ] -> PDiff (p1, p2)
  | PCross _, [ p1; p2 ] -> PCross (p1, p2)
  | PJoinCmp (c, a1, a2, _, _), [ p1; p2 ] -> PJoinCmp (c, a1, a2, p1, p2)
  | _ -> invalid_arg "Pattern.with_pattern_inputs: arity mismatch"

let ref_vars pat =
  let acc = ref [] in
  let note_pref = function PRefVar v -> acc := v :: !acc | PRef _ -> () in
  let note_poperand = function
    | PORefOf pr -> note_pref pr
    | POperand _ | POperandVar _ -> ()
  in
  let note_pargs = function
    | PArgs ps -> List.iter note_poperand ps
    | PArgsVar _ -> ()
  in
  let note_precv = function PRecvRef pr -> note_pref pr | PRecvClass _ -> () in
  let rec go = function
    | PAny _ -> ()
    | PAnyRanging (_, pr, _) -> note_pref pr
    | PGet (pa, _) -> note_pref pa
    | PNaturalJoin (p1, p2) | PUnion (p1, p2) | PDiff (p1, p2) | PCross (p1, p2)
      ->
      go p1;
      go p2
    | PSelectCmp (_, px, py, pi) ->
      note_poperand px;
      note_poperand py;
      go pi
    | PJoinCmp (_, pa1, pa2, p1, p2) ->
      note_pref pa1;
      note_pref pa2;
      go p1;
      go p2
    | PMapProperty (pa, _, pa1, pi) | PFlatProperty (pa, _, pa1, pi) ->
      note_pref pa;
      note_pref pa1;
      go pi
    | PMapMethod (pa, _, pr, pxs, pi) | PFlatMethod (pa, _, pr, pxs, pi) ->
      note_pref pa;
      note_precv pr;
      note_pargs pxs;
      go pi
    | PMapOperator (pa, _, pxs, pi) | PFlatOperator (pa, _, pxs, pi) ->
      note_pref pa;
      note_pargs pxs;
      go pi
    | PProject (prs, pi) ->
      (match prs with PRefs ps -> List.iter note_pref ps | PRefsVar _ -> ());
      go pi
    | PMethodSource (pa, _, _, pxs) ->
      note_pref pa;
      note_pargs pxs
  in
  go pat;
  List.sort_uniq String.compare !acc

exception Unbound of string

let instantiate ~rule ~fresh_seed (b : bindings) (template : t) : Restricted.t =
  let fresh_names = Hashtbl.create 4 in
  let resolve_ref = function
    | PRef r -> r
    | PRefVar v -> (
      match List.assoc_opt v b.refs with
      | Some r -> r
      | None -> (
        match Hashtbl.find_opt fresh_names v with
        | Some r -> r
        | None ->
          let r = Printf.sprintf "$%s.%s.%d" rule v fresh_seed in
          Hashtbl.replace fresh_names v r;
          r))
  in
  let resolve_name = function
    | PName n -> n
    | PNameVar v -> (
      match List.assoc_opt v b.names with
      | Some n -> n
      | None -> raise (Unbound v))
  in
  let resolve_cmp = function
    | PCmp c -> c
    | PCmpVar v -> (
      match List.assoc_opt v b.cmps with
      | Some c -> c
      | None -> raise (Unbound v))
  in
  let resolve_operand = function
    | POperand x -> x
    | POperandVar v -> (
      match List.assoc_opt v b.operands with
      | Some x -> x
      | None -> raise (Unbound v))
    | PORefOf pr -> Restricted.ORef (resolve_ref pr)
  in
  let resolve_args = function
    | PArgs ps -> List.map resolve_operand ps
    | PArgsVar v -> (
      match List.assoc_opt v b.arglists with
      | Some xs -> xs
      | None -> raise (Unbound v))
  in
  let resolve_recv = function
    | PRecvClass pn -> Restricted.RClass (resolve_name pn)
    | PRecvRef pr -> Restricted.RRef (resolve_ref pr)
  in
  let resolve_refs = function
    | PRefs ps -> List.map resolve_ref ps
    | PRefsVar v -> (
      match List.assoc_opt v b.reflists with
      | Some rs -> rs
      | None -> raise (Unbound v))
  in
  let rec go = function
    | PAny v -> (
      match List.assoc_opt v b.plans with
      | Some plan -> plan
      | None -> raise (Unbound v))
    | PAnyRanging (v, _, _) -> (
      match List.assoc_opt v b.plans with
      | Some plan -> plan
      | None -> raise (Unbound v))
    | PGet (pa, pc) -> Restricted.Get (resolve_ref pa, resolve_name pc)
    | PNaturalJoin (p1, p2) -> Restricted.NaturalJoin (go p1, go p2)
    | PUnion (p1, p2) -> Restricted.Union (go p1, go p2)
    | PDiff (p1, p2) -> Restricted.Diff (go p1, go p2)
    | PCross (p1, p2) -> Restricted.Cross (go p1, go p2)
    | PSelectCmp (pc, px, py, pi) ->
      Restricted.SelectCmp
        (resolve_cmp pc, resolve_operand px, resolve_operand py, go pi)
    | PJoinCmp (pc, pa1, pa2, p1, p2) ->
      Restricted.JoinCmp
        (resolve_cmp pc, resolve_ref pa1, resolve_ref pa2, go p1, go p2)
    | PMapProperty (pa, pp, pa1, pi) ->
      Restricted.MapProperty (resolve_ref pa, resolve_name pp, resolve_ref pa1, go pi)
    | PMapMethod (pa, pm, pr, pxs, pi) ->
      Restricted.MapMethod
        (resolve_ref pa, resolve_name pm, resolve_recv pr, resolve_args pxs, go pi)
    | PFlatProperty (pa, pp, pa1, pi) ->
      Restricted.FlatProperty
        (resolve_ref pa, resolve_name pp, resolve_ref pa1, go pi)
    | PFlatMethod (pa, pm, pr, pxs, pi) ->
      Restricted.FlatMethod
        (resolve_ref pa, resolve_name pm, resolve_recv pr, resolve_args pxs, go pi)
    | PMapOperator (pa, op, pxs, pi) ->
      Restricted.MapOperator (resolve_ref pa, op, resolve_args pxs, go pi)
    | PFlatOperator (pa, op, pxs, pi) ->
      Restricted.FlatOperator (resolve_ref pa, op, resolve_args pxs, go pi)
    | PProject (prs, pi) -> Restricted.Project (resolve_refs prs, go pi)
    | PMethodSource (pa, pc, pm, pxs) ->
      Restricted.MethodSource
        (resolve_ref pa, resolve_name pc, resolve_name pm, resolve_args pxs)
  in
  go template

let pp_bindings ppf b =
  let pp_list name pp_val ppf xs =
    if xs <> [] then
      Format.fprintf ppf "%s: %a@ " name
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           (fun ppf (v, x) -> Format.fprintf ppf "?%s=%a" v pp_val x))
        xs
  in
  Format.fprintf ppf "@[<v>";
  pp_list "plans" (fun ppf t -> Format.fprintf ppf "<%d ops>" (Restricted.size t)) ppf b.plans;
  pp_list "refs" Format.pp_print_string ppf b.refs;
  pp_list "names" Format.pp_print_string ppf b.names;
  pp_list "operands" Restricted.pp_operand ppf b.operands;
  Format.fprintf ppf "@]"
