open Soqm_vml
open Soqm_algebra

(* ------------------------------------------------------------------ *)
(* Helpers over unary operators                                        *)
(* ------------------------------------------------------------------ *)

(* The reference produced by a unary extend operator, if any. *)
let produces = function
  | Restricted.MapProperty (a, _, _, _)
  | Restricted.MapMethod (a, _, _, _, _)
  | Restricted.FlatProperty (a, _, _, _)
  | Restricted.FlatMethod (a, _, _, _, _)
  | Restricted.MapOperator (a, _, _, _)
  | Restricted.FlatOperator (a, _, _, _) ->
    Some a
  | _ -> None

let operand_refs xs =
  List.filter_map
    (function Restricted.ORef r -> Some r | Restricted.OConst _ | Restricted.OParam _ -> None)
    xs

let receiver_refs = function
  | Restricted.RRef r -> [ r ]
  | Restricted.RClass _ -> []

(* References the root operator reads. *)
let uses = function
  | Restricted.SelectCmp (_, x, y, _) -> operand_refs [ x; y ]
  | Restricted.MapProperty (_, _, a1, _) | Restricted.FlatProperty (_, _, a1, _) ->
    [ a1 ]
  | Restricted.MapMethod (_, _, r, xs, _) | Restricted.FlatMethod (_, _, r, xs, _) ->
    receiver_refs r @ operand_refs xs
  | Restricted.MapOperator (_, _, xs, _) | Restricted.FlatOperator (_, _, xs, _) ->
    operand_refs xs
  | _ -> []

let is_reorderable_unary = function
  | Restricted.SelectCmp _ | Restricted.MapProperty _ | Restricted.MapMethod _
  | Restricted.FlatProperty _ | Restricted.FlatMethod _ | Restricted.MapOperator _
  | Restricted.FlatOperator _ ->
    true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Native transformations                                              *)
(* ------------------------------------------------------------------ *)

let commute_unary =
  Rule.native "commute-unary" (fun _schema term ->
      match Restricted.inputs term with
      | [ inner ] when is_reorderable_unary term && is_reorderable_unary inner -> (
        match Restricted.inputs inner with
        | [ base ] ->
          let outer_ok =
            match produces inner with
            | Some a -> not (List.mem a (uses term))
            | None -> true
          in
          if outer_ok then
            (* op1(op2(base)) -> op2(op1(base)) *)
            let new_inner = Restricted.with_inputs term [ base ] in
            [ Restricted.with_inputs inner [ new_inner ] ]
          else []
        | _ -> [])
      | _ -> [])

let join_inputs = function
  | Restricted.Cross (s1, s2) | Restricted.JoinCmp (_, _, _, s1, s2)
  | Restricted.NaturalJoin (s1, s2) ->
    Some (s1, s2)
  | _ -> None

let rebuild_join term s1 s2 =
  match term with
  | Restricted.Cross _ -> Restricted.Cross (s1, s2)
  | Restricted.JoinCmp (c, a1, a2, _, _) -> Restricted.JoinCmp (c, a1, a2, s1, s2)
  | Restricted.NaturalJoin _ -> Restricted.NaturalJoin (s1, s2)
  | _ -> assert false

let select_join_interchange =
  Rule.native "select-join-interchange" (fun _schema term ->
      let push =
        match term with
        | Restricted.SelectCmp (c, x, y, join) -> (
          match join_inputs join with
          | Some (s1, s2) ->
            let needed = operand_refs [ x; y ] in
            let into side other build =
              let refs = Restricted.refs side in
              if List.for_all (fun r -> List.mem r refs) needed then
                [ build (Restricted.SelectCmp (c, x, y, side)) other ]
              else []
            in
            into s1 s2 (fun s1' s2' -> rebuild_join join s1' s2')
            @ into s2 s1 (fun s2' s1' -> rebuild_join join s1' s2')
          | None -> [])
        | _ -> []
      in
      let pull =
        match join_inputs term with
        | Some (Restricted.SelectCmp (c, x, y, s1), s2) ->
          [ Restricted.SelectCmp (c, x, y, rebuild_join term s1 s2) ]
        | Some (s1, Restricted.SelectCmp (c, x, y, s2)) ->
          [ Restricted.SelectCmp (c, x, y, rebuild_join term s1 s2) ]
        | _ -> []
      in
      push @ pull)

let flip_cmp = function
  | Restricted.CEq -> Some Restricted.CEq
  | Restricted.CNeq -> Some Restricted.CNeq
  | Restricted.CLt -> Some Restricted.CGt
  | Restricted.CLe -> Some Restricted.CGe
  | Restricted.CGt -> Some Restricted.CLt
  | Restricted.CGe -> Some Restricted.CLe
  | Restricted.CIsIn | Restricted.CIsSubset -> None

(* select<a θ b>(cross(S1, S2)) with a and b from different sides is the
   explicit theta join — the form implementation rules for joins need. *)
let select_cross_to_join =
  Rule.native "select-cross-to-join" (fun _schema term ->
      match term with
      | Restricted.SelectCmp
          (c, Restricted.ORef a, Restricted.ORef b, Restricted.Cross (s1, s2)) ->
        let r1 = try Restricted.refs s1 with Invalid_argument _ -> [] in
        let r2 = try Restricted.refs s2 with Invalid_argument _ -> [] in
        if List.mem a r1 && List.mem b r2 then
          [ Restricted.JoinCmp (c, a, b, s1, s2) ]
        else if List.mem b r1 && List.mem a r2 then
          match flip_cmp c with
          | Some c' -> [ Restricted.JoinCmp (c', b, a, s1, s2) ]
          | None -> []
        else []
      (* one direction only: dissolving joins back into products inflates
         the search space without opening new plans (the join
         implementations already include the nested loop) *)
      | _ -> [])

let join_commute =
  Rule.native "join-commute" (fun _schema term ->
      match term with
      | Restricted.Cross (s1, s2) -> [ Restricted.Cross (s2, s1) ]
      | Restricted.NaturalJoin (s1, s2) -> [ Restricted.NaturalJoin (s2, s1) ]
      | Restricted.JoinCmp (c, a1, a2, s1, s2) -> (
        match flip_cmp c with
        | Some c' -> [ Restricted.JoinCmp (c', a2, a1, s2, s1) ]
        | None -> [])
      | _ -> [])

let join_associate =
  Rule.native "join-associate" (fun _schema term ->
      match term with
      | Restricted.Cross (Restricted.Cross (a, b), c) ->
        [ Restricted.Cross (a, Restricted.Cross (b, c)) ]
      | Restricted.Cross (a, Restricted.Cross (b, c)) ->
        [ Restricted.Cross (Restricted.Cross (a, b), c) ]
      | _ -> [])

(* Example 8.  map_property<a3, p2, a2>(map_property<a2, p1, a1>(A))
   becomes an explicit join of A's path step with a scan of the class C
   that a2 ranges over:
   project<old refs>(join<a2 == j>(map_property<a2,p1,a1>(A),
                                   map_property<a3, p2, j>(get<j, C>))) *)
let path_to_join =
  Rule.native "path-to-join" (fun schema term ->
      match term with
      | Restricted.MapProperty
          (a3, p2, a2, (Restricted.MapProperty (a2', _, _, _) as inner))
        when String.equal a2 a2' -> (
        let env = Restricted.infer schema inner in
        match List.assoc_opt a2 env with
        | Some (Vtype.TObj cls) ->
          let j =
            Printf.sprintf "$pj.%d"
              (Hashtbl.hash (Restricted.to_string term) land 0xFFFFFF)
          in
          let scan_side =
            Restricted.MapProperty (a3, p2, j, Restricted.Get (j, cls))
          in
          let joined = Restricted.JoinCmp (Restricted.CEq, a2, j, inner, scan_side) in
          [ Restricted.Project (Restricted.refs term, joined) ]
        | _ -> [])
      | _ -> [])

(* Peel the unary reorderable operators off a term: returns the operator
   stack (outermost first) and the base below it. *)
let unstack term =
  let rec go acc t =
    if is_reorderable_unary t then
      match Restricted.inputs t with [ s ] -> go (t :: acc) s | _ -> (acc, t)
    else (acc, t)
  in
  let rev_ops, base = go [] term in
  (List.rev rev_ops, base)

let restack ops base =
  (* ops outermost first *)
  List.fold_right (fun op acc -> Restricted.with_inputs op [ acc ]) ops base

(* natural_join(C1(Z), C2(Z)) -> C1(C2(Z)): when both join inputs are
   unary chains over the same base, the join (a semijoin on Ref(Z)) is a
   cascade — this is what turns the implication rules' conjunction into
   an orderable cascade of predicates.  The right chain may sit under a
   projection back to Ref(Z) (the shape the implication rule produces);
   then the cascade is projected back to the join's references. *)
let natjoin_to_cascade =
  Rule.native "natjoin-to-cascade" (fun _schema term ->
      match term with
      | Restricted.NaturalJoin (x, y) -> (
        let _, base1 = unstack x in
        let strip_project t =
          match t with
          | Restricted.Project (rs, inner)
            when (try List.sort_uniq String.compare rs = Restricted.refs base1
                  with Invalid_argument _ -> false) ->
            inner
          | _ -> t
        in
        let ops1, _ = unstack x in
        let ops2, base2 = unstack (strip_project y) in
        if Restricted.equal base1 base2 then
          let cascade = restack ops1 (restack ops2 base1) in
          match Restricted.refs term with
          | want ->
            if
              (try Restricted.refs cascade = want with Invalid_argument _ -> false)
            then [ cascade ]
            else [ Restricted.Project (want, cascade) ]
          | exception Invalid_argument _ -> []
        else [])
      | _ -> [])

(* select and project interchange when the selection's operands survive
   the projection; lets selections reach joins through the projections
   rules like path-to-join introduce. *)
let select_project_interchange =
  Rule.native "select-project-interchange" (fun _schema term ->
      match term with
      | Restricted.SelectCmp (c, x, y, Restricted.Project (rs, inner)) ->
        [ Restricted.Project (rs, Restricted.SelectCmp (c, x, y, inner)) ]
      | Restricted.Project (rs, Restricted.SelectCmp (c, x, y, inner)) ->
        let needed = operand_refs [ x; y ] in
        if List.for_all (fun r -> List.mem r rs) needed then
          [ Restricted.SelectCmp (c, x, y, Restricted.Project (rs, inner)) ]
        else []
      | _ -> [])

let natjoin_idempotent =
  Rule.native "natjoin-idempotent" (fun _schema term ->
      match term with
      | Restricted.NaturalJoin (x, y) when Restricted.equal x y -> [ x ]
      | _ -> [])

(* Hoist a tuple-independent membership test off a class scan:
   select<x IS-IN w>(Chain(get<x, C>)) where no operator of Chain depends
   on x and w : {C} becomes flat<x from w>(Chain(unit)) — the form whose
   implementation needs no extent scan at all (plan PQ evaluates two
   method calls and intersects). Sound because every live instance of C
   is in C's extent. *)
let hoist_const_membership =
  Rule.native "hoist-const-membership" (fun schema term ->
      match term with
      | Restricted.SelectCmp (Restricted.CIsIn, Restricted.ORef x, Restricted.ORef w, input)
        -> (
        let ops, base = unstack input in
        match base with
        | Restricted.Get (x', cls) when String.equal x x' ->
          let x_independent =
            List.for_all (fun op -> not (List.mem x (uses op))) ops
          in
          let env = Restricted.infer schema input in
          let w_is_c_set =
            List.assoc_opt w env = Some (Soqm_vml.Vtype.TSet (Soqm_vml.Vtype.TObj cls))
          in
          if x_independent && w_is_c_set then
            [
              Restricted.FlatOperator
                ( x,
                  Restricted.OpIdent,
                  [ Restricted.ORef w ],
                  restack ops Restricted.Unit );
            ]
          else []
        | _ -> [])
      | _ -> [])

let transformations =
  [
    commute_unary;
    select_join_interchange;
    select_project_interchange;
    select_cross_to_join;
    join_commute;
    join_associate;
    path_to_join;
    natjoin_to_cascade;
    natjoin_idempotent;
    hoist_const_membership;
  ]

(* ------------------------------------------------------------------ *)
(* Implementation rules                                                *)
(* ------------------------------------------------------------------ *)

let index_scan_impl =
  Rule.implementation "index-scan"
    ~lhs:
      (Pattern.PSelectCmp
         ( Pattern.PCmp Restricted.CEq,
           Pattern.PORefOf (Pattern.PRefVar "t"),
           Pattern.POperandVar "v",
           Pattern.PMapProperty
             ( Pattern.PRefVar "t",
               Pattern.PNameVar "p",
               Pattern.PRefVar "a",
               Pattern.PGet (Pattern.PRefVar "a", Pattern.PNameVar "C") ) ))
    ~build:(fun ctx b _implement ->
      let t = List.assoc "t" b.Pattern.refs in
      let a = List.assoc "a" b.Pattern.refs in
      let p = List.assoc "p" b.Pattern.names in
      let cls = List.assoc "C" b.Pattern.names in
      match List.assoc "v" b.Pattern.operands with
      | Restricted.OConst key when ctx.Rule.has_index ~cls ~prop:p ->
        Some
          (Soqm_physical.Plan.MapProp
             (t, p, a, Soqm_physical.Plan.IndexScan (a, cls, p, key)))
      | _ -> None)

let range_scan_impl =
  Rule.implementation "range-scan"
    ~lhs:
      (Pattern.PSelectCmp
         ( Pattern.PCmpVar "c",
           Pattern.PORefOf (Pattern.PRefVar "t"),
           Pattern.POperandVar "v",
           Pattern.PMapProperty
             ( Pattern.PRefVar "t",
               Pattern.PNameVar "p",
               Pattern.PRefVar "a",
               Pattern.PGet (Pattern.PRefVar "a", Pattern.PNameVar "C") ) ))
    ~build:(fun ctx b _implement ->
      let t = List.assoc "t" b.Pattern.refs in
      let a = List.assoc "a" b.Pattern.refs in
      let p = List.assoc "p" b.Pattern.names in
      let cls = List.assoc "C" b.Pattern.names in
      let c = List.assoc "c" b.Pattern.cmps in
      match List.assoc "v" b.Pattern.operands with
      | Restricted.OConst key when ctx.Rule.has_range_index ~cls ~prop:p ->
        let module B = Soqm_storage.Sorted_index in
        let bounds =
          match c with
          | Restricted.CLt -> Some (B.Unbounded, B.Exclusive key)
          | Restricted.CLe -> Some (B.Unbounded, B.Inclusive key)
          | Restricted.CGt -> Some (B.Exclusive key, B.Unbounded)
          | Restricted.CGe -> Some (B.Inclusive key, B.Unbounded)
          | Restricted.CEq -> Some (B.Inclusive key, B.Inclusive key)
          | Restricted.CNeq | Restricted.CIsIn | Restricted.CIsSubset -> None
        in
        Option.map
          (fun (lo, hi) ->
            Soqm_physical.Plan.MapProp
              (t, p, a, Soqm_physical.Plan.RangeScan (a, cls, p, lo, hi)))
          bounds
      | _ -> None)

let nested_loop_impl =
  Rule.implementation "nested-loop-join"
    ~lhs:
      (Pattern.PJoinCmp
         ( Pattern.PCmpVar "c",
           Pattern.PRefVar "a1",
           Pattern.PRefVar "a2",
           Pattern.PAny "A",
           Pattern.PAny "B" ))
    ~build:(fun _ctx b implement ->
      let c = List.assoc "c" b.Pattern.cmps in
      let a1 = List.assoc "a1" b.Pattern.refs in
      let a2 = List.assoc "a2" b.Pattern.refs in
      let pa = implement (List.assoc "A" b.Pattern.plans) in
      let pb = implement (List.assoc "B" b.Pattern.plans) in
      Some (Soqm_physical.Plan.NestedLoop (Some (c, a1, a2), pa, pb)))

let implementations = [ index_scan_impl; range_scan_impl; nested_loop_impl ]
