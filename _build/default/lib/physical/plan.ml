open Soqm_vml
open Soqm_algebra
open Soqm_storage

type t =
  | Unit
  | FullScan of string * string
  | IndexScan of string * string * string * Value.t
  | RangeScan of
      string * string * string * Sorted_index.bound * Sorted_index.bound
  | MethodScan of string * string * string * Value.t list
  | Filter of Restricted.cmp * Restricted.operand * Restricted.operand * t
  | NestedLoop of (Restricted.cmp * string * string) option * t * t
  | HashJoin of string * string * t * t
  | NaturalJoin of t * t
  | Union of t * t
  | Diff of t * t
  | MapProp of string * string * string * t
  | MapMeth of string * string * Restricted.receiver * Restricted.operand list * t
  | FlatProp of string * string * string * t
  | FlatMeth of string * string * Restricted.receiver * Restricted.operand list * t
  | MapOp of string * Restricted.opname * Restricted.operand list * t
  | FlatOp of string * Restricted.opname * Restricted.operand list * t
  | Project of string list * t

let compare = Stdlib.compare
let equal a b = compare a b = 0

let union_sorted a b = List.sort_uniq String.compare (a @ b)

let rec refs = function
  | Unit -> []
  | FullScan (a, _) | IndexScan (a, _, _, _) | RangeScan (a, _, _, _, _)
  | MethodScan (a, _, _, _) ->
    [ a ]
  | Filter (_, _, _, p) -> refs p
  | NestedLoop (_, p1, p2) | HashJoin (_, _, p1, p2) | NaturalJoin (p1, p2) ->
    union_sorted (refs p1) (refs p2)
  | Union (p1, _) | Diff (p1, _) -> refs p1
  | MapProp (a, _, _, p)
  | MapMeth (a, _, _, _, p)
  | FlatProp (a, _, _, p)
  | FlatMeth (a, _, _, _, p)
  | MapOp (a, _, _, p)
  | FlatOp (a, _, _, p) ->
    union_sorted [ a ] (refs p)
  | Project (rs, _) -> List.sort_uniq String.compare rs

let inputs = function
  | Unit | FullScan _ | IndexScan _ | RangeScan _ | MethodScan _ -> []
  | Filter (_, _, _, p)
  | MapProp (_, _, _, p)
  | MapMeth (_, _, _, _, p)
  | FlatProp (_, _, _, p)
  | FlatMeth (_, _, _, _, p)
  | MapOp (_, _, _, p)
  | FlatOp (_, _, _, p)
  | Project (_, p) ->
    [ p ]
  | NestedLoop (_, p1, p2)
  | HashJoin (_, _, p1, p2)
  | NaturalJoin (p1, p2)
  | Union (p1, p2)
  | Diff (p1, p2) ->
    [ p1; p2 ]

let rec size t = 1 + List.fold_left (fun n i -> n + size i) 0 (inputs t)

let rec default_implementation (r : Restricted.t) : t =
  match r with
  | Restricted.Unit -> Unit
  | Restricted.Get (a, c) -> FullScan (a, c)
  | Restricted.MethodSource (a, cls, m, args) ->
    let consts =
      List.map
        (function
          | Restricted.OConst v -> v
          | Restricted.ORef _ | Restricted.OParam _ ->
            invalid_arg "default_implementation: non-constant source argument")
        args
    in
    MethodScan (a, cls, m, consts)
  | Restricted.NaturalJoin (s1, s2) ->
    NaturalJoin (default_implementation s1, default_implementation s2)
  | Restricted.Union (s1, s2) ->
    Union (default_implementation s1, default_implementation s2)
  | Restricted.Diff (s1, s2) ->
    Diff (default_implementation s1, default_implementation s2)
  | Restricted.Cross (s1, s2) ->
    NestedLoop (None, default_implementation s1, default_implementation s2)
  | Restricted.SelectCmp (c, x, y, s) -> Filter (c, x, y, default_implementation s)
  | Restricted.JoinCmp (Restricted.CEq, a1, a2, s1, s2) ->
    HashJoin (a1, a2, default_implementation s1, default_implementation s2)
  | Restricted.JoinCmp (c, a1, a2, s1, s2) ->
    NestedLoop (Some (c, a1, a2), default_implementation s1, default_implementation s2)
  | Restricted.MapProperty (a, p, a1, s) -> MapProp (a, p, a1, default_implementation s)
  | Restricted.MapMethod (a, m, recv, args, s) ->
    MapMeth (a, m, recv, args, default_implementation s)
  | Restricted.FlatProperty (a, p, a1, s) ->
    FlatProp (a, p, a1, default_implementation s)
  | Restricted.FlatMethod (a, m, recv, args, s) ->
    FlatMeth (a, m, recv, args, default_implementation s)
  | Restricted.MapOperator (a, op, xs, s) -> MapOp (a, op, xs, default_implementation s)
  | Restricted.FlatOperator (a, op, xs, s) -> FlatOp (a, op, xs, default_implementation s)
  | Restricted.Project (rs, s) -> Project (rs, default_implementation s)

let pp_values ppf vs =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
    Value.pp ppf vs

let cmp_name c =
  Format.asprintf "%a" Expr.pp_binop (Restricted.cmp_to_binop c)

let rec pp ppf = function
  | Unit -> Format.pp_print_string ppf "unit"
  | FullScan (a, c) -> Format.fprintf ppf "full_scan<%s, %s>" a c
  | IndexScan (a, c, p, k) ->
    Format.fprintf ppf "index_scan<%s, %s.%s = %a>" a c p Value.pp k
  | RangeScan (a, c, p, lo, hi) ->
    let pp_bound what ppf = function
      | Sorted_index.Unbounded -> Format.fprintf ppf "%s unbounded" what
      | Sorted_index.Inclusive v -> Format.fprintf ppf "%s>= %a" what Value.pp v
      | Sorted_index.Exclusive v -> Format.fprintf ppf "%s> %a" what Value.pp v
    in
    Format.fprintf ppf "range_scan<%s, %s.%s, %a, %a>" a c p (pp_bound "") lo
      (pp_bound "") hi
  | MethodScan (a, c, m, args) ->
    Format.fprintf ppf "method_scan<%s, %s->%s(%a)>" a c m pp_values args
  | Filter (c, x, y, p) ->
    Format.fprintf ppf "@[<v2>filter<%a %s %a>(@,%a)@]" Restricted.pp_operand x
      (cmp_name c) Restricted.pp_operand y pp p
  | NestedLoop (None, p1, p2) ->
    Format.fprintf ppf "@[<v2>nested_loop<true>(@,%a,@,%a)@]" pp p1 pp p2
  | NestedLoop (Some (c, a1, a2), p1, p2) ->
    Format.fprintf ppf "@[<v2>nested_loop<%s %s %s>(@,%a,@,%a)@]" a1 (cmp_name c)
      a2 pp p1 pp p2
  | HashJoin (a1, a2, p1, p2) ->
    Format.fprintf ppf "@[<v2>hash_join<%s == %s>(@,%a,@,%a)@]" a1 a2 pp p1 pp p2
  | NaturalJoin (p1, p2) ->
    Format.fprintf ppf "@[<v2>natural_join_hash(@,%a,@,%a)@]" pp p1 pp p2
  | Union (p1, p2) -> Format.fprintf ppf "@[<v2>union(@,%a,@,%a)@]" pp p1 pp p2
  | Diff (p1, p2) -> Format.fprintf ppf "@[<v2>diff(@,%a,@,%a)@]" pp p1 pp p2
  | MapProp (a, p, a1, i) ->
    Format.fprintf ppf "@[<v2>map_property<%s, %s, %s>(@,%a)@]" a p a1 pp i
  | MapMeth (a, m, r, xs, i) ->
    Format.fprintf ppf "@[<v2>map_method<%s, %s, %a, <%a>>(@,%a)@]" a m
      Restricted.pp_receiver r
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         Restricted.pp_operand)
      xs pp i
  | FlatProp (a, p, a1, i) ->
    Format.fprintf ppf "@[<v2>flat_property<%s, %s, %s>(@,%a)@]" a p a1 pp i
  | FlatMeth (a, m, r, xs, i) ->
    Format.fprintf ppf "@[<v2>flat_method<%s, %s, %a, <%a>>(@,%a)@]" a m
      Restricted.pp_receiver r
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         Restricted.pp_operand)
      xs pp i
  | MapOp (a, op, xs, i) ->
    Format.fprintf ppf "@[<v2>map_operator<%s, %s, %a>(@,%a)@]" a
      (Format.asprintf "%a"
         (fun ppf () ->
           Format.pp_print_string ppf
             (match op with
             | Restricted.OpBin b -> Format.asprintf "%a" Expr.pp_binop b
             | Restricted.OpNot -> "NOT"
             | Restricted.OpIdent -> "ident"
             | Restricted.OpTuple ls -> "tuple[" ^ String.concat "," ls ^ "]"
             | Restricted.OpSet -> "set"))
         ())
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         Restricted.pp_operand)
      xs pp i
  | FlatOp (a, op, xs, i) ->
    Format.fprintf ppf "@[<v2>flat_operator<%s, %s, %a>(@,%a)@]" a
      (match op with
      | Restricted.OpBin b -> Format.asprintf "%a" Expr.pp_binop b
      | Restricted.OpNot -> "NOT"
      | Restricted.OpIdent -> "ident"
      | Restricted.OpTuple ls -> "tuple[" ^ String.concat "," ls ^ "]"
      | Restricted.OpSet -> "set")
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         Restricted.pp_operand)
      xs pp i
  | Project (rs, i) ->
    Format.fprintf ppf "@[<v2>project<%s>(@,%a)@]" (String.concat ", " rs) pp i

let to_string t = Format.asprintf "%a" pp t
