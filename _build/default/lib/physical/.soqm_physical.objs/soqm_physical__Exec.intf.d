lib/physical/exec.mli: Object_store Oid Plan Relation Soqm_algebra Soqm_storage Soqm_vml Value
