lib/physical/exec.ml: Counters Format Hashtbl Lazy List Object_store Oid Plan Relation Restricted Runtime Soqm_algebra Soqm_storage Soqm_vml String Value
