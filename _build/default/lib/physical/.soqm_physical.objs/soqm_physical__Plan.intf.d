lib/physical/plan.mli: Format Restricted Soqm_algebra Soqm_storage Soqm_vml Value
