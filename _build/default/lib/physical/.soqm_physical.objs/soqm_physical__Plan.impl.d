lib/physical/plan.ml: Expr Format List Restricted Soqm_algebra Soqm_storage Soqm_vml Sorted_index Stdlib String Value
