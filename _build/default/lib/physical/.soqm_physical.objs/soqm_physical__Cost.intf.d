lib/physical/cost.mli: Plan Soqm_storage Statistics
