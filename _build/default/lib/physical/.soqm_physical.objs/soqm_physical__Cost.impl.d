lib/physical/cost.ml: Float List Option Plan Restricted Schema Soqm_algebra Soqm_storage Soqm_vml Statistics String Value Vtype
