(** The physical algebra: query evaluation plans.

    In the Volcano architecture the physical algebra's operators are
    concrete algorithms with cost functions; implementation rules map
    logical (restricted-algebra) expressions onto them.  Methods appear
    here as {e operators} (Section 3.2): a set-returning class method
    like [Paragraph→retrieve_by_string] is an access path
    ({!const:MethodScan}), which is exactly how the equivalence-between-
    queries-and-method-calls knowledge of Section 4.2 becomes executable. *)

open Soqm_vml
open Soqm_algebra

type t =
  | Unit  (** the one-empty-tuple relation; hosts constant chains *)
  | FullScan of string * string  (** [ref, class] — extent scan *)
  | IndexScan of string * string * string * Value.t
      (** [ref, class, prop, key] — probe a value index *)
  | RangeScan of
      string * string * string * Soqm_storage.Sorted_index.bound
      * Soqm_storage.Sorted_index.bound
      (** [ref, class, prop, lo, hi] — probe an ordered index *)
  | MethodScan of string * string * string * Value.t list
      (** [ref, class, own-method, const args] — a set-returning OWNTYPE
          method as access path *)
  | Filter of Restricted.cmp * Restricted.operand * Restricted.operand * t
  | NestedLoop of (Restricted.cmp * string * string) option * t * t
      (** theta/cross join; the inner input is materialized once *)
  | HashJoin of string * string * t * t
      (** equi-join [left_ref == right_ref] *)
  | NaturalJoin of t * t
      (** hash join on all shared references; with equal reference sets
          this is set intersection — the INTERSECTION of plan PQ *)
  | Union of t * t
  | Diff of t * t
  | MapProp of string * string * string * t
  | MapMeth of string * string * Restricted.receiver * Restricted.operand list * t
  | FlatProp of string * string * string * t
  | FlatMeth of string * string * Restricted.receiver * Restricted.operand list * t
  | MapOp of string * Restricted.opname * Restricted.operand list * t
  | FlatOp of string * Restricted.opname * Restricted.operand list * t
  | Project of string list * t

val equal : t -> t -> bool
val compare : t -> t -> int

val refs : t -> string list
(** Output references (sorted). *)

val inputs : t -> t list
val size : t -> int

val default_implementation : Restricted.t -> t
(** The always-available structural implementation: every logical
    operator mapped to its direct physical counterpart ([get] → full
    scan, [select] → filter, [join] → nested loop, ...).  Semantic
    implementation rules compete against this baseline in the
    optimizer's branch-and-bound. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
