(** Execution of physical plans in the Volcano iterator model.

    Every operator compiles to an open/next/close iterator; materializing
    operators (hash builds, diff, projection dedup) buffer internally.
    Per-operator memo tables cache method invocations and property
    accesses keyed by receiver and argument {e values}: safe because
    optimized queries are side-effect free, and exactly what makes
    tuple-independent operator chains (a class-method call with constant
    arguments and the accesses hanging off it) cost one evaluation per
    execution instead of one per tuple. *)

open Soqm_vml
open Soqm_algebra

exception Error of string

type ctx = {
  store : Object_store.t;
  probe_index : cls:string -> prop:string -> Value.t -> Oid.t list option;
      (** probe a value index if one exists on [cls.prop]; implementations
          charge the index-probe counter themselves *)
  probe_range :
    cls:string ->
    prop:string ->
    lo:Soqm_storage.Sorted_index.bound ->
    hi:Soqm_storage.Sorted_index.bound ->
    Oid.t list option;
      (** probe an ordered index if one exists on [cls.prop] *)
}

val basic_ctx : Object_store.t -> ctx
(** A context with no indexes (index and range scans fail to resolve). *)

type iter = {
  next : unit -> Relation.tuple option;
  close : unit -> unit;
}

val open_plan : ctx -> Plan.t -> iter
(** Open the plan's root iterator.  @raise Error on dynamic failures. *)

val run : ctx -> Plan.t -> Relation.t
(** Exhaust the plan and canonicalize the result into a relation. *)
