(** Cost model for physical plans.

    "A simple cost model" (Section 7): cardinalities are propagated
    bottom-up from extent statistics, property fanouts and declared
    method selectivities; operator costs charge scans per object,
    methods at their declared per-call cost — once per input tuple, or
    once per execution when the operator is tuple-independent (constant
    receiver and arguments), mirroring the executor's memoization.  This
    non-uniform treatment of methods is what lets the optimizer prefer a
    single [retrieve_by_string] probe over thousands of
    [contains_string] calls. *)

open Soqm_storage

type estimate = {
  card : float;  (** estimated output cardinality *)
  cost : float;  (** estimated total cost, in object-fetch units *)
}

val estimate : Statistics.t -> Plan.t -> estimate

val cost : Statistics.t -> Plan.t -> float
(** [(estimate stats plan).cost] *)
