open Soqm_vml
open Soqm_semantics

type rule_class =
  | Path_methods
  | Index_equivalences
  | Inverse_links
  | Query_method_equivs
  | Implications

let all_classes =
  [ Path_methods; Index_equivalences; Inverse_links; Query_method_equivs; Implications ]

let class_name = function
  | Path_methods -> "path-methods"
  | Index_equivalences -> "index-equivalences"
  | Inverse_links -> "inverse-links"
  | Query_method_equivs -> "query-method-equivs"
  | Implications -> "implications"

(* E1: p->document() == p.section.document *)
let e1_document_path =
  Equivalence.Expr_equiv
    {
      name = "E1-document-path";
      cls = "Paragraph";
      var = "p";
      lhs = Expr.Call (Expr.Ref "p", "document", []);
      rhs = Expr.Prop (Expr.Prop (Expr.Ref "p", "section"), "document");
    }

(* d->paragraphs() == d.sections.paragraphs — same kind of knowledge as
   E1, for the document-side path method. *)
let paragraphs_path =
  Equivalence.Expr_equiv
    {
      name = "paragraphs-path";
      cls = "Document";
      var = "d";
      lhs = Expr.Call (Expr.Ref "d", "paragraphs", []);
      rhs = Expr.Prop (Expr.Prop (Expr.Ref "d", "sections"), "paragraphs");
    }

(* E2: d.title == s <=> d IS-IN Document->select_by_index(s) *)
let e2_title_index =
  Equivalence.Cond_equiv
    {
      name = "E2-title-index";
      cls = "Document";
      var = "d";
      lhs = Expr.Binop (Expr.Eq, Expr.Prop (Expr.Ref "d", "title"), Expr.Param "s");
      rhs =
        Expr.Binop
          ( Expr.IsIn,
            Expr.Ref "d",
            Expr.Call (Expr.ClassObj "Document", "select_by_index", [ Expr.Param "s" ])
          );
    }

(* E5: ACCESS p FROM p IN Paragraph WHERE p->contains_string(s)
       == Paragraph->retrieve_by_string(s) *)
let e5_retrieve =
  Equivalence.Query_method
    {
      name = "E5-retrieve-by-string";
      cls = "Paragraph";
      var = "p";
      cond = Expr.Call (Expr.Ref "p", "contains_string", [ Expr.Param "s" ]);
      meth_cls = "Paragraph";
      meth = "retrieve_by_string";
      args = [ Equivalence.Arg_param "s" ];
    }

(* p->wordCount() > 500 => p IS-IN p->document().largeParagraphs *)
let word_count_implication =
  Equivalence.Implication
    {
      name = "large-paragraphs";
      cls = "Paragraph";
      var = "p";
      antecedent =
        Expr.Binop
          (Expr.Gt, Expr.Call (Expr.Ref "p", "wordCount", []), Expr.Const (Value.Int 500));
      consequent =
        Expr.Binop
          ( Expr.IsIn,
            Expr.Ref "p",
            Expr.Prop (Expr.Call (Expr.Ref "p", "document", []), "largeParagraphs") );
    }

let specs ?(classes = all_classes) () =
  List.concat_map
    (function
      | Path_methods -> [ e1_document_path; paragraphs_path ]
      | Index_equivalences -> [ e2_title_index ]
      | Inverse_links -> Equivalence.from_inverse_links Doc_schema.schema
      | Query_method_equivs -> [ e5_retrieve ]
      | Implications -> [ word_count_implication ])
    classes
