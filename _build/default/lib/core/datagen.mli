(** Deterministic synthetic document corpus.

    Stands in for the "given typical database" of the worked example
    (Section 2.3): documents made of sections made of paragraphs, with
    the declared inverse links populated, a Zipf-ish vocabulary, and two
    tunable selectivities — the fraction of paragraphs containing the
    query word (driving [contains_string]/[retrieve_by_string]) and the
    fraction of "large" paragraphs (driving the implication-rule
    experiment).  Everything derives from [seed]; equal parameters give
    identical databases. *)

open Soqm_vml

type params = {
  n_docs : int;
  sections_per_doc : int;
  paras_per_section : int;
  vocab_size : int;  (** distinct ordinary words *)
  words_per_para : int;
  hit_probability : float;
      (** probability that a paragraph contains the {!query_word}; the
          first paragraph of every document's first section contains it
          unconditionally *)
  large_fraction : float;
      (** fraction of paragraphs with [word_count > 500] *)
  seed : int;
}

val default : params
(** 50 documents × 4 sections × 6 paragraphs, 5% hit probability, 10%
    large paragraphs, seed 42. *)

val query_word : string
(** The word the paper's query searches for: ["Implementation"]. *)

val query_title : string
(** The title the paper's query selects: ["Query Optimization"]; exactly
    one generated document (the first) carries it. *)

val populate : Object_store.t -> params -> unit
(** Create all objects in the store.  Inverse links are set through the
    scalar side ([Section.document], [Paragraph.section]); the store's
    inverse maintenance fills [Document.sections] and
    [Section.paragraphs].  [Document.largeParagraphs] is set to the
    paragraphs of the document with [word_count > 500]. *)
