lib/core/db.mli: Counters Datagen Hash_index Object_store Oid Soqm_ir Soqm_storage Soqm_vml Sorted_index Statistics
