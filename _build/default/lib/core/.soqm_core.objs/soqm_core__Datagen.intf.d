lib/core/datagen.mli: Object_store Soqm_vml
