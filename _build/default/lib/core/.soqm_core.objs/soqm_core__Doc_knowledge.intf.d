lib/core/doc_knowledge.mli: Equivalence Soqm_semantics
