lib/core/db.ml: Counters Datagen Doc_schema Hash_index List Object_store Oid Runtime Soqm_ir Soqm_storage Soqm_vml Sorted_index Statistics Value
