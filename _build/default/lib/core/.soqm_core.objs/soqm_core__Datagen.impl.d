lib/core/datagen.ml: Buffer Int64 Object_store Printf Soqm_vml Value
