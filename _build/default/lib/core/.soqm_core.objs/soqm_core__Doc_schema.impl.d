lib/core/doc_schema.ml: Expr Object_store Schema Soqm_vml Vtype
