lib/core/engine.mli: Counters Db Doc_knowledge Object_store Relation Restricted Rule Search Soqm_algebra Soqm_optimizer Soqm_physical Soqm_semantics Soqm_vml
