lib/core/doc_knowledge.ml: Doc_schema Equivalence Expr List Soqm_semantics Soqm_vml Value
