lib/core/doc_schema.mli: Object_store Schema Soqm_vml
