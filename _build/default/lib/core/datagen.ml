open Soqm_vml

type params = {
  n_docs : int;
  sections_per_doc : int;
  paras_per_section : int;
  vocab_size : int;
  words_per_para : int;
  hit_probability : float;
  large_fraction : float;
  seed : int;
}

let default =
  {
    n_docs = 50;
    sections_per_doc = 4;
    paras_per_section = 6;
    vocab_size = 500;
    words_per_para = 12;
    hit_probability = 0.05;
    large_fraction = 0.10;
    seed = 42;
  }

let query_word = "Implementation"
let query_title = "Query Optimization"

(* SplitMix64-style deterministic generator; independent of the global
   Random state so databases are reproducible across processes. *)
module Prng = struct
  type t = { mutable state : int64 }

  let create seed = { state = Int64.of_int (seed * 2654435761 + 1) }

  let next t =
    let open Int64 in
    t.state <- add t.state 0x9E3779B97F4A7C15L;
    let z = t.state in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)

  let float t =
    (* 53 random bits into [0, 1) *)
    let bits = Int64.shift_right_logical (next t) 11 in
    Int64.to_float bits /. 9007199254740992.0

  let int t bound = int_of_float (float t *. float_of_int bound)
end

(* Zipf-flavoured word pick: squaring the uniform skews towards low
   indexes, giving a few frequent and many rare words. *)
let pick_word rng vocab_size =
  let u = Prng.float rng in
  let idx = int_of_float (u *. u *. float_of_int vocab_size) in
  Printf.sprintf "w%d" (min idx (vocab_size - 1))

let paragraph_content rng p ~force_hit =
  let buf = Buffer.create 80 in
  for _ = 1 to p.words_per_para do
    Buffer.add_string buf (pick_word rng p.vocab_size);
    Buffer.add_char buf ' '
  done;
  if force_hit || Prng.float rng < p.hit_probability then (
    Buffer.add_string buf query_word;
    Buffer.add_char buf ' ');
  Buffer.contents buf

let populate store p =
  let rng = Prng.create p.seed in
  for d = 0 to p.n_docs - 1 do
    let title = if d = 0 then query_title else Printf.sprintf "Title %d" d in
    let author = Printf.sprintf "Author %d" (d mod 7) in
    let doc =
      Object_store.create_object store ~cls:"Document"
        [ ("title", Value.Str title); ("author", Value.Str author) ]
    in
    let large = ref [] in
    for s = 0 to p.sections_per_doc - 1 do
      let sec =
        Object_store.create_object store ~cls:"Section"
          [
            ("number", Value.Int s);
            ("title", Value.Str (Printf.sprintf "Section %d.%d" d s));
            ("document", Value.Obj doc);
          ]
      in
      for q = 0 to p.paras_per_section - 1 do
        (* the first paragraph of each document's first section always
           contains the query word, so the worked-example query is never
           vacuous regardless of parameters *)
        let content = paragraph_content rng p ~force_hit:(s = 0 && q = 0) in
        let word_count =
          if Prng.float rng < p.large_fraction then 501 + Prng.int rng 500
          else 20 + Prng.int rng 400
        in
        let para =
          Object_store.create_object store ~cls:"Paragraph"
            [
              ("number", Value.Int q);
              ("section", Value.Obj sec);
              ("content", Value.Str content);
              ("word_count", Value.Int word_count);
            ]
        in
        if word_count > 500 then large := Value.Obj para :: !large
      done
    done;
    Object_store.set_prop store doc "largeParagraphs" (Value.set !large)
  done
