(* The knowledge compiler: saturation-derived rewrites and bounded
   counterexample checking.  The two acceptance gates of the subsystem
   live here: a generated 100+-rule knowledge base must optimize
   correctly (optimized ≡ Naive), and the checker must refute every
   seeded-unsound mutation while accepting all shipped rules. *)

open Soqm_vml
open Soqm_semantics
open Soqm_knowledge

let schema = Soqm_core.Doc_schema.schema

let install store =
  Soqm_core.Doc_schema.install_internal_methods store;
  Soqm_core.Doc_schema.install_scan_methods store

let declared = Soqm_core.Doc_knowledge.specs ()

let saturated = lazy (Saturate.run schema declared)

(* ------------------------------------------------------------------ *)
(* saturation                                                          *)
(* ------------------------------------------------------------------ *)

let test_saturation_closes () =
  let facts, stats = Lazy.force saturated in
  Alcotest.(check int)
    "declared count" (List.length declared) stats.Saturate.declared;
  Alcotest.(check bool) "not truncated" false stats.Saturate.truncated;
  Alcotest.(check bool) "derived something" true (stats.Saturate.derived > 0);
  Alcotest.(check int)
    "facts = declared + derived"
    (stats.Saturate.declared + stats.Saturate.derived)
    (List.length facts)

let test_saturation_fixpoint () =
  (* closing the closure derives nothing new: every candidate is
     subsumed by an already-present fact *)
  let facts, _ = Lazy.force saturated in
  let _, stats = Saturate.run schema (Saturate.specs facts) in
  Alcotest.(check int) "no new derivations" 0 stats.Saturate.derived

(* fixpoint on arbitrary sub-bases, not just the shipped one: whatever
   subset of the declared knowledge we start from, closing the closure
   derives nothing new *)
let prop_fixpoint_random_subbase =
  let base = declared @ Rulegen.family () in
  QCheck2.Test.make ~count:15 ~name:"saturation is a fixpoint on random sub-bases"
    QCheck2.Gen.(list_repeat (List.length base) bool)
    (fun mask ->
      let specs =
        List.filteri
          (fun i _ -> List.nth mask i)
          base
      in
      let facts, _ = Saturate.run schema specs in
      let _, again = Saturate.run schema (Saturate.specs facts) in
      again.Saturate.derived = 0)

let test_saturation_provenance () =
  let facts, _ = Lazy.force saturated in
  let traces = Saturate.provenance_alist facts in
  Alcotest.(check bool) "derived facts carry traces" true (traces <> []);
  List.iter
    (fun (name, trace) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s has a real trace" name)
        true
        (String.length trace > 0 && name.[0] = 'K'))
    traces

let test_saturation_validates () =
  (* every derived specification passes schema validation *)
  let facts, _ = Lazy.force saturated in
  List.iter
    (fun spec ->
      match Equivalence.validate schema spec with
      | Ok () -> ()
      | Error msg ->
        Alcotest.failf "derived spec %s invalid: %s" (Equivalence.name spec) msg)
    (Saturate.specs facts)

let test_saturation_derives_path_composition () =
  (* E1 substituted into the large-paragraphs implication: the
     maintained set becomes reachable through the stored path *)
  let facts, _ = Lazy.force saturated in
  let stored_path =
    Expr.Prop
      (Expr.Prop (Expr.Prop (Expr.Ref "p", "section"), "document"),
       "largeParagraphs")
  in
  let found =
    List.exists
      (fun (f : Saturate.fact) ->
        match f.Saturate.spec with
        | Equivalence.Implication { consequent = Expr.Binop (Expr.IsIn, _, set); _ }
          ->
          Expr.equal set stored_path
        | _ -> false)
      facts
  in
  Alcotest.(check bool) "stored-path implication derived" true found

let test_rulegen_gate () =
  (* the 100+-rule gate: a 32-spec declared family saturates to well
     over 100 derived rules, without truncation *)
  let family = Rulegen.family () in
  let _, stats = Saturate.run schema family in
  Alcotest.(check bool) "family not truncated" false stats.Saturate.truncated;
  Alcotest.(check bool)
    (Printf.sprintf "derived %d >= 100" stats.Saturate.derived)
    true
    (stats.Saturate.derived >= 100)

let test_saturation_counters () =
  let c = Counters.create () in
  let _, stats = Saturate.run ~counters:c schema declared in
  Alcotest.(check int)
    "rules_derived counter" stats.Saturate.derived (Counters.rules_derived c);
  Alcotest.(check int)
    "rules_subsumed counter" stats.Saturate.subsumed (Counters.rules_subsumed c)

(* ------------------------------------------------------------------ *)
(* bounded checking                                                    *)
(* ------------------------------------------------------------------ *)

let check_config = { Check.default_config with models_per_size = 20 }

let test_checker_accepts_declared () =
  List.iter
    (fun spec ->
      match
        Check.check_spec ~config:check_config ~install ~trusted:declared schema
          spec
      with
      | Check.Sound _ -> ()
      | Check.Refuted w ->
        Alcotest.failf "declared rule %s refuted:\n%s\nat %s"
          (Equivalence.name spec) w.Check.store_text w.Check.detail
      | Check.Unsupported msg ->
        Alcotest.failf "declared rule %s unsupported: %s" (Equivalence.name spec)
          msg)
    declared

let test_checker_accepts_derived () =
  let facts, _ = Lazy.force saturated in
  List.iter
    (fun spec ->
      match
        Check.check_spec ~config:check_config ~install ~trusted:declared schema
          spec
      with
      | Check.Sound _ -> ()
      | Check.Refuted w ->
        Alcotest.failf "derived rule %s refuted:\n%s\nat %s"
          (Equivalence.name spec) w.Check.store_text w.Check.detail
      | Check.Unsupported msg ->
        Alcotest.failf "derived rule %s unsupported: %s" (Equivalence.name spec)
          msg)
    (Saturate.specs facts)

let test_checker_refutes_mutations () =
  (* every seeded-unsound rule must produce a counterexample *)
  List.iter
    (fun (label, spec) ->
      match
        Check.check_spec ~config:check_config ~install ~trusted:declared schema
          spec
      with
      | Check.Refuted _ -> ()
      | Check.Sound _ ->
        Alcotest.failf "mutation %s (%s) accepted as sound" label
          (Equivalence.name spec)
      | Check.Unsupported msg ->
        Alcotest.failf "mutation %s (%s) unsupported: %s" label
          (Equivalence.name spec) msg)
    (Rulegen.mutations ())

let test_checker_deterministic_across_jobs () =
  (* same seed, different fan-out: the witness model is identical *)
  let _, spec = List.hd (Rulegen.mutations ()) in
  let run jobs =
    Check.check_spec
      ~config:{ check_config with jobs }
      ~install ~trusted:declared schema spec
  in
  match (run 1, run 4) with
  | Check.Refuted w1, Check.Refuted w4 ->
    Alcotest.(check int)
      "same witness model" w1.Check.model_index w4.Check.model_index;
    Alcotest.(check string)
      "same witness store" w1.Check.store_text w4.Check.store_text
  | _ -> Alcotest.fail "mutation not refuted"

let test_checker_counters () =
  let c = Counters.create () in
  let _, spec = List.hd (Rulegen.mutations ()) in
  (match
     Check.check_spec ~config:check_config ~install ~counters:c
       ~trusted:declared schema spec
   with
  | Check.Refuted _ -> ()
  | _ -> Alcotest.fail "mutation not refuted");
  Alcotest.(check bool) "models charged" true (Counters.models_checked c > 0);
  Alcotest.(check int) "counterexample charged" 1 (Counters.counterexamples_found c)

(* ------------------------------------------------------------------ *)
(* end-to-end: saturated engines against the naive evaluator           *)
(* ------------------------------------------------------------------ *)

module Engine = Soqm_core.Engine
module Db = Soqm_core.Db
module F = Soqm_testlib.Fixtures
open Soqm_algebra

let e2e_db = lazy (F.tiny_db ())
let declared_engine = lazy (Engine.generate (Lazy.force e2e_db))

(* declared doc knowledge + the generated family, closed under
   saturation: the 100+-derived-rule optimizer of the acceptance gate.
   The variant budget is tightened — with ~300 rules the exhaustive
   closure is enormous, and these tests assert result equality, not
   plan quality. *)
let e2e_config =
  { Soqm_optimizer.Search.default_config with max_variants = 300 }

let family_engine =
  lazy
    (Engine.generate ~extra_specs:(Rulegen.family ()) ~saturate:true
       ~config:e2e_config (Lazy.force e2e_db))

(* the EXP-A mix, plus queries that hit the family's thresholds in both
   the method and the property form, on and next to the boundaries *)
let e2e_queries =
  [
    "ACCESS p FROM p IN Paragraph WHERE p->contains_string('Implementation') \
     AND (p->document()).title == 'Query Optimization'";
    "ACCESS d FROM d IN Document WHERE d.title == 'Query Optimization'";
    "ACCESS p FROM p IN Paragraph WHERE p->wordCount() > 500";
    "ACCESS [n: s.number, t: d.title] FROM s IN Section, d IN Document WHERE \
     s.document == d AND d.title == 'Query Optimization'";
    "ACCESS p FROM p IN Paragraph WHERE p->contains_string('Implementation')";
  ]
  @ List.concat_map
      (fun t ->
        [
          Printf.sprintf
            "ACCESS p FROM p IN Paragraph WHERE p->wordCount() > %d" t;
          Printf.sprintf
            "ACCESS p FROM p IN Paragraph WHERE p.word_count >= %d" (t + 1);
        ])
      [ 100; 500; 800 ]

let test_family_engine_consistent () =
  let db = Lazy.force e2e_db in
  let engine = Lazy.force family_engine in
  (match Engine.saturation_stats engine with
  | Some s ->
    Alcotest.(check bool)
      (Printf.sprintf "saturation derived %d >= 100" s.Saturate.derived)
      true
      (s.Saturate.derived >= 100)
  | None -> Alcotest.fail "saturation is off");
  List.iter
    (fun q ->
      let naive = (Engine.run_naive db q).Engine.result in
      let opt = (Engine.run_optimized engine q).Engine.result in
      Alcotest.check F.relation q naive opt)
    e2e_queries

(* Subsumption-deduped saturation must be invisible to query results:
   the saturated engine and the declared-only engine agree with the
   reference evaluator on random paragraph queries. *)
let prop_saturation_preserves_results =
  QCheck2.Test.make ~count:15
    ~name:"optimized(saturated) = optimized(declared) = reference"
    Soqm_testlib.Gen.para_query_gen
    (fun g ->
      let db = Lazy.force e2e_db in
      let term = General.Project ([ "p" ], g) in
      let logical = Translate.of_general term in
      let reference = Eval.run db.Db.store term in
      let run engine =
        let res = Engine.optimize engine logical in
        Soqm_physical.Exec.run (Engine.exec_ctx db)
          res.Soqm_optimizer.Search.best_plan
      in
      Relation.equal reference (run (Lazy.force declared_engine))
      && Relation.equal reference (run (Lazy.force family_engine)))

let test_epoch_across_knowledge_dml () =
  (* knowledge DML must epoch-invalidate cached plans: stale plans from
     the old rule set never serve, fresh results always match naive *)
  let db = F.tiny_db () in
  let engine = Engine.generate ~saturate:true db in
  let q = "ACCESS p FROM p IN Paragraph WHERE p->wordCount() > 500" in
  let naive () = (Engine.run_naive db q).Engine.result in
  let opt () = (Engine.run_optimized engine q).Engine.result in
  Alcotest.check F.relation "baseline agrees" (naive ()) (opt ());
  let h0, _ = Engine.cache_stats engine in
  Alcotest.check F.relation "re-run agrees" (naive ()) (opt ());
  let h1, m1 = Engine.cache_stats engine in
  Alcotest.(check bool) "unchanged knowledge: plan cache hit" true (h1 > h0);
  Engine.add_specs engine (Rulegen.family ~thresholds:2 ());
  Alcotest.check F.relation "after add_specs agrees" (naive ()) (opt ());
  let _, m2 = Engine.cache_stats engine in
  Alcotest.(check bool) "add_specs invalidated cached plans" true (m2 > m1);
  Alcotest.(check bool)
    "retract removes a declared spec" true
    (Engine.retract_spec engine "G-wc-gt-200-100");
  Alcotest.(check bool)
    "retract of unknown name is false" false
    (Engine.retract_spec engine "no-such-spec");
  Alcotest.check F.relation "after retract agrees" (naive ()) (opt ());
  let _, m3 = Engine.cache_stats engine in
  Alcotest.(check bool) "retract invalidated cached plans" true (m3 > m2)

let () =
  Alcotest.run "knowledge"
    [
      ( "saturate",
        [
          Soqm_testlib.Fixtures.case "closes" test_saturation_closes;
          Soqm_testlib.Fixtures.case "fixpoint" test_saturation_fixpoint;
          QCheck_alcotest.to_alcotest prop_fixpoint_random_subbase;
          Soqm_testlib.Fixtures.case "provenance" test_saturation_provenance;
          Soqm_testlib.Fixtures.case "validates" test_saturation_validates;
          Soqm_testlib.Fixtures.case "path composition"
            test_saturation_derives_path_composition;
          Soqm_testlib.Fixtures.case "100+-rule gate" test_rulegen_gate;
          Soqm_testlib.Fixtures.case "counters" test_saturation_counters;
        ] );
      ( "check",
        [
          Soqm_testlib.Fixtures.case "accepts declared" test_checker_accepts_declared;
          Soqm_testlib.Fixtures.case "accepts derived" test_checker_accepts_derived;
          Soqm_testlib.Fixtures.case "refutes mutations"
            test_checker_refutes_mutations;
          Soqm_testlib.Fixtures.case "deterministic across jobs"
            test_checker_deterministic_across_jobs;
          Soqm_testlib.Fixtures.case "counters" test_checker_counters;
        ] );
      ( "end-to-end",
        [
          Soqm_testlib.Fixtures.case "100+-rule engine optimizes correctly"
            test_family_engine_consistent;
          QCheck_alcotest.to_alcotest prop_saturation_preserves_results;
          Soqm_testlib.Fixtures.case "knowledge DML epoch-invalidates plans"
            test_epoch_across_knowledge_dml;
        ] );
    ]
