(* The serving subsystem end to end: a real TCP server on an ephemeral
   loopback port, driven by real client sockets from the test domain.
   One server instance carries all the cases; it is stopped (and its
   domain joined) at the end. *)

open Soqm_vml
module Db = Soqm_core.Db
module Server = Soqm_server.Server
module Protocol = Soqm_server.Protocol
module F = Soqm_testlib.Fixtures

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* protocol codec roundtrips (no sockets involved)                     *)
(* ------------------------------------------------------------------ *)

let test_codec_roundtrip () =
  let reqs =
    [
      Protocol.Query "ACCESS d FROM d IN Document";
      Protocol.Begin;
      Protocol.Commit;
      Protocol.Abort;
      Protocol.Insert
        ("Document", [ ("title", Value.Str "x"); ("length", Value.Int 3) ]);
      Protocol.Update
        (Oid.make ~cls:"Paragraph" ~id:7, "content", Value.Str "new");
      Protocol.Delete (Oid.make ~cls:"Section" ~id:0);
      Protocol.Get (Oid.make ~cls:"Document" ~id:12, "title");
      Protocol.Extent "Paragraph";
      Protocol.Ping;
    ]
  in
  List.iter
    (fun r ->
      check Alcotest.bool "request survives the codec" true
        (Protocol.decode_request (Protocol.encode_request r) = r))
    reqs;
  let resps =
    [
      Protocol.Rows
        ([ "d"; "n" ], [ [ Value.Str "a"; Value.Int 1 ]; [ Value.Null; Value.Bool true ] ]);
      Protocol.Started 4;
      Protocol.Committed 9;
      Protocol.Done;
      Protocol.Value (Value.Real 2.5);
      Protocol.Oid (Oid.make ~cls:"Paragraph" ~id:3);
      Protocol.Oids [ Oid.make ~cls:"Document" ~id:1; Oid.make ~cls:"Document" ~id:2 ];
      Protocol.Conflict "c";
      Protocol.Error "e";
    ]
  in
  List.iter
    (fun r ->
      check Alcotest.bool "response survives the codec" true
        (Protocol.decode_response (Protocol.encode_response r) = r))
    resps

(* ------------------------------------------------------------------ *)
(* the live server                                                     *)
(* ------------------------------------------------------------------ *)

let query_hits = "ACCESS p FROM p IN Paragraph WHERE p->wordCount() > 500"

let with_server f =
  let db = F.tiny_db () in
  (* the expected row count, computed before the server owns the db *)
  let expected =
    let engine = Soqm_core.Engine.generate db in
    Soqm_algebra.Relation.cardinality
      (Soqm_core.Engine.run_optimized engine query_hits).Soqm_core.Engine.result
  in
  let server = Server.create ~sessions:2 db in
  let d = Domain.spawn (fun () -> Server.serve server) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Domain.join d)
    (fun () -> f server expected)

let rt = Protocol.roundtrip

let test_server_end_to_end () =
  with_server (fun server expected ->
      let port = Server.port server in
      let c1 = Protocol.connect ~port () in
      let c2 = Protocol.connect ~port () in
      Fun.protect
        ~finally:(fun () ->
          Unix.close c1;
          Unix.close c2)
        (fun () ->
          (* ping *)
          check Alcotest.bool "ping" true (rt c1 Protocol.Ping = Protocol.Done);
          (* queries run through the optimizer at latest-committed state *)
          (match rt c1 (Protocol.Query query_hits) with
          | Protocol.Rows (_, rows) ->
            check Alcotest.int "query row count" expected (List.length rows)
          | r -> Alcotest.failf "query: unexpected %s" (Protocol.encode_response r));
          (match rt c1 (Protocol.Query "ACCESS d FROM d IN") with
          | Protocol.Error _ -> ()
          | _ -> Alcotest.fail "parse error must answer Error");
          (* extent + transactional read-your-writes over the wire *)
          let doc =
            match rt c1 (Protocol.Extent "Document") with
            | Protocol.Oids (o :: _) -> o
            | _ -> Alcotest.fail "extent"
          in
          (match rt c1 Protocol.Begin with
          | Protocol.Started _ -> ()
          | _ -> Alcotest.fail "begin");
          (match rt c1 (Protocol.Update (doc, "title", Value.Str "wire")) with
          | Protocol.Done -> ()
          | r -> Alcotest.failf "update: %s" (Protocol.encode_response r));
          check Alcotest.bool "own write over the wire" true
            (rt c1 (Protocol.Get (doc, "title")) = Protocol.Value (Value.Str "wire"));
          (* the other connection still sees the committed state *)
          check Alcotest.bool "uncommitted write invisible to c2" false
            (rt c2 (Protocol.Get (doc, "title")) = Protocol.Value (Value.Str "wire"));
          (match rt c1 Protocol.Commit with
          | Protocol.Committed _ -> ()
          | r -> Alcotest.failf "commit: %s" (Protocol.encode_response r));
          check Alcotest.bool "committed write visible to c2" true
            (rt c2 (Protocol.Get (doc, "title")) = Protocol.Value (Value.Str "wire"));
          (* first committer wins across connections *)
          ignore (rt c1 Protocol.Begin);
          ignore (rt c2 Protocol.Begin);
          ignore (rt c1 (Protocol.Update (doc, "title", Value.Str "one")));
          ignore (rt c2 (Protocol.Update (doc, "title", Value.Str "two")));
          (match rt c1 Protocol.Commit with
          | Protocol.Committed _ -> ()
          | _ -> Alcotest.fail "first commit");
          (match rt c2 Protocol.Commit with
          | Protocol.Conflict _ -> ()
          | r -> Alcotest.failf "second commit must conflict: %s"
                   (Protocol.encode_response r));
          (* auto-commit outside a transaction *)
          (match rt c2 (Protocol.Insert ("Document", [ ("title", Value.Str "auto") ])) with
          | Protocol.Oid oid ->
            check Alcotest.bool "auto-committed insert readable" true
              (rt c1 (Protocol.Get (oid, "title")) = Protocol.Value (Value.Str "auto"));
            (match rt c2 (Protocol.Delete oid) with
            | Protocol.Committed _ -> ()
            | r -> Alcotest.failf "delete: %s" (Protocol.encode_response r));
            (match rt c1 (Protocol.Get (oid, "title")) with
            | Protocol.Error _ -> ()
            | _ -> Alcotest.fail "deleted object must read as an error")
          | r -> Alcotest.failf "insert: %s" (Protocol.encode_response r));
          (* a nonsense request body answers Error, not a dropped line *)
          Protocol.write_frame c1 "\xffgarbage";
          (match Protocol.decode_response (Protocol.read_frame c1) with
          | Protocol.Error _ -> ()
          | _ -> Alcotest.fail "garbage frame must answer Error");
          check Alcotest.bool "connection survives garbage" true
            (rt c1 Protocol.Ping = Protocol.Done)))

let test_disconnect_aborts_txn () =
  with_server (fun server _ ->
      let port = Server.port server in
      let mgr = Server.manager server in
      let doc =
        List.hd (Object_store.extent (Server.db server).Db.store "Document")
      in
      let c = Protocol.connect ~port () in
      ignore (rt c Protocol.Begin);
      ignore (rt c (Protocol.Update (doc, "title", Value.Str "dropped")));
      check Alcotest.int "one active transaction" 1
        (Soqm_txn.Txn.active_count mgr);
      Unix.close c;
      (* the session notices on its next read and aborts *)
      let rec wait n =
        if Soqm_txn.Txn.active_count mgr > 0 && n > 0 then begin
          Unix.sleepf 0.01;
          wait (n - 1)
        end
      in
      wait 200;
      check Alcotest.int "disconnect aborted it" 0
        (Soqm_txn.Txn.active_count mgr);
      (* and the buffered write never applied *)
      let c2 = Protocol.connect ~port () in
      check Alcotest.bool "buffered write discarded" false
        (rt c2 (Protocol.Get (doc, "title")) = Protocol.Value (Value.Str "dropped"));
      Unix.close c2)

let test_concurrent_wire_increments () =
  (* several client connections hammer one counter through wire-level
     Begin/Get/Update/Commit with retries: no lost updates *)
  with_server (fun server _ ->
      let port = Server.port server in
      let cell =
        List.hd (Object_store.extent (Server.db server).Db.store "Paragraph")
      in
      (* seed the counter — and verify the seed actually applied *)
      let c0 = Protocol.connect ~port () in
      (match rt c0 (Protocol.Update (cell, "word_count", Value.Int 0)) with
      | Protocol.Committed _ -> ()
      | r -> Alcotest.failf "seed: %s" (Protocol.encode_response r));
      Unix.close c0;
      let per = 20 in
      let workers =
        List.init 2 (fun _ ->
            Domain.spawn (fun () ->
                let c = Protocol.connect ~port () in
                Fun.protect ~finally:(fun () -> Unix.close c) @@ fun () ->
                let rec incr tries =
                  if tries > 200 then failwith "too many conflicts";
                  ignore (rt c Protocol.Begin);
                  let v =
                    match rt c (Protocol.Get (cell, "word_count")) with
                    | Protocol.Value (Value.Int v) -> v
                    | r -> failwith ("get: " ^ Protocol.encode_response r)
                  in
                  ignore
                    (rt c (Protocol.Update (cell, "word_count", Value.Int (v + 1))));
                  match rt c Protocol.Commit with
                  | Protocol.Committed _ -> ()
                  | Protocol.Conflict _ -> incr (tries + 1)
                  | r -> failwith ("commit: " ^ Protocol.encode_response r)
                in
                for _ = 1 to per do
                  incr 0
                done))
      in
      List.iter Domain.join workers;
      let c = Protocol.connect ~port () in
      check Alcotest.bool "serial sum reached" true
        (rt c (Protocol.Get (cell, "word_count"))
        = Protocol.Value (Value.Int (2 * per)));
      Unix.close c)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "server"
    [
      ("protocol", [ F.case "codec roundtrips" test_codec_roundtrip ]);
      ( "wire",
        [
          F.case "end to end" test_server_end_to_end;
          F.case "disconnect aborts" test_disconnect_aborts_txn;
          F.case "no lost updates over the wire" test_concurrent_wire_increments;
        ] );
    ]
