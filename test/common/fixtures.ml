(* Shared test fixtures: document databases of various sizes, alcotest
   testables, and convenience accessors.  Used by every suite. *)

open Soqm_vml

let tiny_params =
  {
    Soqm_core.Datagen.default with
    n_docs = 6;
    sections_per_doc = 2;
    paras_per_section = 3;
    hit_probability = 0.2;
  }

let small_params =
  { Soqm_core.Datagen.default with n_docs = 20; hit_probability = 0.1 }

(* A fresh database per call: suites that reset counters or mutate data
   must not interfere with each other. *)
let tiny_db () = Soqm_core.Db.create ~params:tiny_params ()
let small_db () = Soqm_core.Db.create ~params:small_params ()

(* One shared read-only database for suites that only evaluate queries. *)
let shared = lazy (Soqm_core.Db.create ~params:small_params ())
let shared_db () = Lazy.force shared

let value : Value.t Alcotest.testable = Alcotest.testable Value.pp Value.equal
let oid_t : Oid.t Alcotest.testable = Alcotest.testable Oid.pp Oid.equal

let relation : Soqm_algebra.Relation.t Alcotest.testable =
  Alcotest.testable Soqm_algebra.Relation.pp Soqm_algebra.Relation.equal

let general : Soqm_algebra.General.t Alcotest.testable =
  Alcotest.testable Soqm_algebra.General.pp Soqm_algebra.General.equal

let restricted : Soqm_algebra.Restricted.t Alcotest.testable =
  Alcotest.testable Soqm_algebra.Restricted.pp Soqm_algebra.Restricted.equal

let case name f = Alcotest.test_case name `Quick f

(* A scratch directory for paged-database tests, removed (recursively,
   one level deep — database directories hold no subdirectories) when
   [f] returns or raises. *)
let with_temp_dir prefix f =
  let dir = Filename.temp_file prefix ".db" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun entry -> Sys.remove (Filename.concat dir entry))
          (Sys.readdir dir);
        Unix.rmdir dir
      end)
    (fun () -> f dir)

let first_paragraph db =
  List.hd (Object_store.extent db.Soqm_core.Db.store "Paragraph")

let first_document db =
  List.hd (Object_store.extent db.Soqm_core.Db.store "Document")
