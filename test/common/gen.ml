(* Random generators of well-typed algebra terms over the document
   schema.  Terms are correct by construction: every expression parameter
   only mentions references that exist and operations that type-check, so
   evaluating a generated term never raises.  Used by the
   semantics-preservation property tests of the translator, the rewrite
   rules and the optimizer. *)

open Soqm_vml
open Soqm_algebra
module G = QCheck2.Gen

(* The class a reference ranges over. *)
type rclass = Doc | Sec | Para

let class_name = function Doc -> "Document" | Sec -> "Section" | Para -> "Paragraph"

type env = (string * rclass) list

let fresh_ref =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Printf.sprintf "v%d" !counter

(* A boolean condition over a reference of the given class. *)
let cond_gen (r, c) : Expr.t G.t =
  let open Expr in
  match c with
  | Doc ->
    G.oneof
      [
        G.return (Binop (Eq, Prop (Ref r, "title"), Const (Value.Str "Query Optimization")));
        G.map
          (fun i ->
            Binop (Eq, Prop (Ref r, "author"), Const (Value.Str (Printf.sprintf "Author %d" i))))
          (G.int_range 0 6);
      ]
  | Sec ->
    G.map
      (fun i -> Binop (Lt, Prop (Ref r, "number"), Const (Value.Int i)))
      (G.int_range 0 4)
  | Para ->
    G.oneof
      [
        G.map
          (fun i -> Binop (Le, Prop (Ref r, "number"), Const (Value.Int i)))
          (G.int_range 0 5);
        G.return
          (Call (Ref r, "contains_string", [ Const (Value.Str "Implementation") ]));
        G.return
          (Binop
             ( Eq,
               Prop (Prop (Prop (Ref r, "section"), "document"), "title"),
               Const (Value.Str "Query Optimization") ));
        G.return (Binop (Gt, Call (Ref r, "wordCount", []), Const (Value.Int 500)));
      ]

(* A scalar expression over a reference, with the class of the result if
   it is an object. *)
let map_expr_gen (r, c) : (Expr.t * rclass option) G.t =
  let open Expr in
  match c with
  | Doc ->
    G.oneofl
      [ (Prop (Ref r, "title"), None); (Prop (Ref r, "author"), None) ]
  | Sec ->
    G.oneofl
      [
        (Prop (Ref r, "document"), Some Doc);
        (Prop (Prop (Ref r, "document"), "title"), None);
        (Prop (Ref r, "number"), None);
      ]
  | Para ->
    G.oneofl
      [
        (Prop (Ref r, "section"), Some Sec);
        (Call (Ref r, "document", []), Some Doc);
        (Prop (Prop (Ref r, "section"), "document"), Some Doc);
        (Prop (Ref r, "number"), None);
        (Binop (Add, Prop (Ref r, "number"), Const (Value.Int 1)), None);
      ]

(* A set-valued expression over a reference, with the member class. *)
let flat_expr_gen (r, c) : (Expr.t * rclass) G.t =
  let open Expr in
  match c with
  | Doc ->
    G.oneofl
      [
        (Prop (Ref r, "sections"), Sec);
        (Call (Ref r, "paragraphs", []), Para);
        (Prop (Prop (Ref r, "sections"), "paragraphs"), Para);
      ]
  | Sec -> G.return (Prop (Ref r, "paragraphs"), Para)
  | Para -> G.oneofl [ (Prop (Prop (Ref r, "section"), "paragraphs"), Para) ]

let pick_ref (env : env) : (string * rclass) G.t = G.oneofl env

(* A pipeline of n unary operators over a base Get. *)
let rec pipeline n (term : General.t) (env : env) : (General.t * env) G.t =
  if n <= 0 then G.return (term, env)
  else
    let open G in
    let step =
      oneof
        [
          (* select *)
          (pick_ref env >>= fun rc ->
           cond_gen rc >|= fun cond -> (General.Select (cond, term), env));
          (* map *)
          (pick_ref env >>= fun rc ->
           map_expr_gen rc >|= fun (e, cls) ->
           let a = fresh_ref () in
           let env' = match cls with Some c -> (a, c) :: env | None -> env in
           (General.Map (a, e, term), env'));
          (* flat *)
          (pick_ref env >>= fun rc ->
           flat_expr_gen rc >|= fun (e, cls) ->
           let a = fresh_ref () in
           (General.Flat (a, e, term), (a, cls) :: env));
        ]
    in
    step >>= fun (term', env') -> pipeline (n - 1) term' env'

let base_gen : (General.t * env) G.t =
  G.oneofl [ Doc; Sec; Para ]
  |> G.map (fun c ->
         let r = fresh_ref () in
         (General.Get (r, class_name c), [ (r, c) ]))

(* A complete random term: a pipeline, optionally joined with a second
   pipeline (dependent join through a comparison of two references, or a
   plain product), and optionally projected. *)
let term_gen : General.t G.t =
  let open G in
  let small_pipeline =
    base_gen >>= fun (t, env) ->
    int_range 0 3 >>= fun n -> pipeline n t env
  in
  small_pipeline >>= fun (t1, env1) ->
  bool >>= fun add_join ->
  (if not add_join then return (t1, env1)
   else
     small_pipeline >>= fun (t2, env2) ->
     (* references are globally fresh, so the sides are disjoint *)
     let same_class =
       List.concat_map
         (fun (r1, c1) ->
           List.filter_map
             (fun (r2, c2) -> if c1 = c2 then Some (r1, r2) else None)
             env2)
         env1
     in
     match same_class with
     | [] -> return (General.Join (Expr.Const (Value.Bool true), t1, t2), env1 @ env2)
     | pairs ->
       oneofl pairs >|= fun (r1, r2) ->
       ( General.Join (Expr.Binop (Expr.Eq, Expr.Ref r1, Expr.Ref r2), t1, t2),
         env1 @ env2 ))
  >>= fun (t, env) ->
  bool >>= fun project ->
  if project && List.length env > 1 then
    let refs = List.map fst env in
    int_range 1 (List.length refs) >|= fun k ->
    General.Project (List.filteri (fun i _ -> i < k) refs, t)
  else return t

(* ------------------------------------------------------------------ *)
(* Random relations                                                    *)
(* ------------------------------------------------------------------ *)

(* Small relations over a tiny value domain (many collisions, so joins,
   unions and diffs all exercise non-trivial matches), for the property
   tests comparing the hash-based [Relation] operators against the
   retained list-based [Naive] ones.  Floats are excluded: [Naive.diff]
   dates from the seed and uses polymorphic equality, which disagrees
   with [Value.equal] on NaN / negative zero. *)
let small_value_gen : Value.t G.t =
  G.oneof
    [
      G.map (fun i -> Value.Int i) (G.int_range 0 3);
      G.oneofl [ Value.Str "x"; Value.Str "y"; Value.Null; Value.Bool true ];
      G.map
        (fun is -> Value.set (List.map (fun i -> Value.Int i) is))
        (G.list_size (G.int_range 0 2) (G.int_range 0 2));
    ]

let relation_gen refs : Relation.t G.t =
  let tuple_gen =
    G.map
      (fun vs -> Relation.tuple_make (List.combine refs vs))
      (G.flatten_l (List.map (fun _ -> small_value_gen) refs))
  in
  G.map
    (fun tuples -> Relation.make ~refs tuples)
    (G.list_size (G.int_range 0 12) tuple_gen)

(* Reference-list overlap between the two generated relations: disjoint
   (natural join degenerates to a cross product), partial (the common
   case), identical (natural join degenerates to intersection) and the
   zero-reference edge case (relations with at most one empty tuple). *)
type ref_overlap = Disjoint | Partial | Identical | Empty_refs

let relation_pair_gen : (Relation.t * Relation.t) G.t =
  let open G in
  oneofl [ Disjoint; Partial; Identical; Empty_refs ] >>= fun mode ->
  let refs1, refs2 =
    match mode with
    | Disjoint -> ([ "a"; "b" ], [ "c"; "d" ])
    | Partial -> ([ "a"; "b" ], [ "b"; "c" ])
    | Identical -> ([ "a"; "b" ], [ "a"; "b" ])
    | Empty_refs -> ([], [])
  in
  pair (relation_gen refs1) (relation_gen refs2)

(* Union/diff require identical reference lists. *)
let same_refs_relation_pair_gen : (Relation.t * Relation.t) G.t =
  let open G in
  oneofl [ []; [ "a" ]; [ "a"; "b" ] ] >>= fun refs ->
  pair (relation_gen refs) (relation_gen refs)

(* A selection-only paragraph query in the style of the paper's Q, for
   optimizer result-equivalence tests. *)
let para_query_gen : General.t G.t =
  let open G in
  let r = "p" in
  list_size (int_range 1 3) (cond_gen (r, Para)) >|= fun conds ->
  let cond =
    match conds with
    | [] -> Expr.Const (Value.Bool true)
    | c :: cs -> List.fold_left (fun acc c' -> Expr.Binop (Expr.And, acc, c')) c cs
  in
  General.Select (cond, General.Get (r, "Paragraph"))
