(* The transaction subsystem: snapshot-isolation MVCC, multi-statement
   transactions with first-committer-wins validation, the
   readers/writer latch, and version-chain pruning.

   The centerpiece is the serial-oracle property: randomized interleaved
   schedules of read-modify-write transactions (with user aborts and
   conflict-refused commits mixed in) must leave the store in exactly
   the state a serial replay of the committed transactions, in commit
   order, produces — for any interleaving. *)

open Soqm_vml
module Db = Soqm_core.Db
module Txn = Soqm_txn.Txn
module Versions = Soqm_txn.Versions
module Rwlock = Soqm_txn.Rwlock
module F = Soqm_testlib.Fixtures

let check = Alcotest.check

(* K integer cells, no maintenance machinery: bare Paragraph objects
   carrying only their word_count (the document schema's one plain int
   property — Db.create_empty is wired to that schema) *)
let counter_db ~cells =
  let db = Db.create_empty ~maintain:false () in
  let oids =
    Array.init cells (fun i ->
        Object_store.create_object db.Db.store ~cls:"Paragraph"
          [ ("word_count", Value.Int (10 * i)) ])
  in
  (db, oids)

let commit_exn t =
  match Txn.commit t with
  | Ok ts -> ts
  | Error (`Conflict msg) -> Alcotest.failf "unexpected conflict: %s" msg

(* ------------------------------------------------------------------ *)
(* rwlock                                                              *)
(* ------------------------------------------------------------------ *)

let test_rwlock_exclusion () =
  let l = Rwlock.create () in
  let cell = ref 0 in
  let sum = Atomic.make 0 in
  let writers =
    List.init 2 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 500 do
              Rwlock.write l (fun () ->
                  (* non-atomic increment: only safe if truly exclusive *)
                  let v = !cell in
                  cell := v + 1)
            done))
  in
  let readers =
    List.init 2 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 500 do
              Rwlock.read l (fun () -> Atomic.fetch_and_add sum !cell |> ignore)
            done))
  in
  List.iter Domain.join writers;
  List.iter Domain.join readers;
  check Alcotest.int "no lost writer increments" 1000 !cell

let test_rwlock_reraises () =
  let l = Rwlock.create () in
  (try Rwlock.write l (fun () -> failwith "boom") with Failure _ -> ());
  (* the latch must have been released *)
  check Alcotest.int "write lock released on exception" 7
    (Rwlock.write l (fun () -> 7));
  check Alcotest.int "read lock still works" 8 (Rwlock.read l (fun () -> 8))

(* ------------------------------------------------------------------ *)
(* snapshots and read-your-writes                                      *)
(* ------------------------------------------------------------------ *)

let test_snapshot_reads () =
  let db, oids = counter_db ~cells:2 in
  let m = Txn.manager db in
  let t1 = Txn.begin_ m in
  check F.value "t1 sees initial" (Value.Int 0) (Txn.get_prop t1 oids.(0) "word_count");
  (* t2 commits an update while t1 is open *)
  let t2 = Txn.begin_ m in
  Txn.set_prop t2 oids.(0) "word_count" (Value.Int 42);
  let ts2 = commit_exn t2 in
  check Alcotest.bool "commit advanced the clock" true (ts2 > Txn.begin_ts t1);
  check F.value "t1 still sees its snapshot" (Value.Int 0)
    (Txn.get_prop t1 oids.(0) "word_count");
  check F.value "store itself is at latest" (Value.Int 42)
    (Object_store.peek_prop db.Db.store oids.(0) "word_count");
  (* a transaction begun after t2's commit sees the new value *)
  let t3 = Txn.begin_ m in
  check F.value "t3 sees t2's write" (Value.Int 42)
    (Txn.get_prop t3 oids.(0) "word_count");
  Txn.abort t3;
  (* read-only t1 commits trivially *)
  ignore (commit_exn t1)

let test_read_your_writes () =
  let db, oids = counter_db ~cells:1 in
  let m = Txn.manager db in
  let t = Txn.begin_ m in
  Txn.set_prop t oids.(0) "word_count" (Value.Int 5);
  check F.value "own write visible" (Value.Int 5) (Txn.get_prop t oids.(0) "word_count");
  let fresh = Txn.insert t ~cls:"Paragraph" [ ("word_count", Value.Int 99) ] in
  check F.value "own insert readable" (Value.Int 99)
    (Txn.get_prop t fresh "word_count");
  check Alcotest.int "own insert in extent" 2
    (List.length (Txn.extent t "Paragraph"));
  (* nothing leaked to the store pre-commit *)
  check F.value "store untouched before commit" (Value.Int 0)
    (Object_store.peek_prop db.Db.store oids.(0) "word_count");
  check Alcotest.int "store extent untouched" 1
    (Object_store.extent_size db.Db.store "Paragraph");
  ignore (commit_exn t);
  check F.value "write applied at commit" (Value.Int 5)
    (Object_store.peek_prop db.Db.store oids.(0) "word_count");
  check Alcotest.int "insert applied at commit" 2
    (Object_store.extent_size db.Db.store "Paragraph")

let test_delete_semantics () =
  let db, oids = counter_db ~cells:2 in
  let m = Txn.manager db in
  (* delete of an own insert unbuffers it entirely *)
  let t = Txn.begin_ m in
  let fresh = Txn.insert t ~cls:"Paragraph" [ ("word_count", Value.Int 1) ] in
  Txn.delete t fresh;
  check Alcotest.bool "unbuffered insert gone" false (Txn.exists t fresh);
  ignore (commit_exn t);
  check Alcotest.int "nothing reached the store" 2
    (Object_store.extent_size db.Db.store "Paragraph");
  (* a committed delete stays visible to older snapshots *)
  let old = Txn.begin_ m in
  let t2 = Txn.begin_ m in
  Txn.delete t2 oids.(1);
  ignore (commit_exn t2);
  check Alcotest.bool "old snapshot still sees the object" true
    (Txn.exists old oids.(1));
  check F.value "and can read its final value" (Value.Int 10)
    (Txn.get_prop old oids.(1) "word_count");
  check Alcotest.int "old snapshot extent" 2
    (List.length (Txn.extent old "Paragraph"));
  Txn.abort old;
  let now = Txn.begin_ m in
  check Alcotest.bool "new snapshot does not" false (Txn.exists now oids.(1));
  Txn.abort now

let test_abort_discards () =
  let db, oids = counter_db ~cells:1 in
  let m = Txn.manager db in
  let t = Txn.begin_ m in
  Txn.set_prop t oids.(0) "word_count" (Value.Int 777);
  ignore (Txn.insert t ~cls:"Paragraph" [ ("word_count", Value.Int 1) ]);
  Txn.abort t;
  check F.value "write discarded" (Value.Int 0)
    (Object_store.peek_prop db.Db.store oids.(0) "word_count");
  check Alcotest.int "insert discarded" 1
    (Object_store.extent_size db.Db.store "Paragraph");
  check Alcotest.bool "aborted txn is closed" false (Txn.is_active t);
  Alcotest.match_raises "aborted txn refuses work"
    (function Invalid_argument _ -> true | _ -> false)
    (fun () -> Txn.set_prop t oids.(0) "word_count" (Value.Int 1))

(* ------------------------------------------------------------------ *)
(* first-committer-wins                                                *)
(* ------------------------------------------------------------------ *)

let test_write_write_conflict () =
  let db, oids = counter_db ~cells:2 in
  let m = Txn.manager db in
  let t1 = Txn.begin_ m in
  let t2 = Txn.begin_ m in
  Txn.set_prop t1 oids.(0) "word_count" (Value.Int 1);
  Txn.set_prop t2 oids.(0) "word_count" (Value.Int 2);
  ignore (commit_exn t1);
  (match Txn.commit t2 with
  | Ok _ -> Alcotest.fail "second committer must lose"
  | Error (`Conflict _) -> ());
  check F.value "first committer's value stands" (Value.Int 1)
    (Object_store.peek_prop db.Db.store oids.(0) "word_count");
  check Alcotest.int "conflict charged" 1
    (Counters.txn_conflicts (Db.counters db));
  (* disjoint write sets never conflict *)
  let a = Txn.begin_ m in
  let b = Txn.begin_ m in
  Txn.set_prop a oids.(0) "word_count" (Value.Int 10);
  Txn.set_prop b oids.(1) "word_count" (Value.Int 20);
  ignore (commit_exn a);
  ignore (commit_exn b)

let test_write_delete_conflict () =
  let db, oids = counter_db ~cells:1 in
  let m = Txn.manager db in
  (* concurrent delete beats a later-committing update *)
  let upd = Txn.begin_ m in
  let del = Txn.begin_ m in
  Txn.set_prop upd oids.(0) "word_count" (Value.Int 5);
  Txn.delete del oids.(0);
  ignore (commit_exn del);
  (match Txn.commit upd with
  | Ok _ -> Alcotest.fail "update of a concurrently deleted object"
  | Error (`Conflict _) -> ());
  check Alcotest.bool "object stays deleted" false
    (Object_store.exists db.Db.store oids.(0))

let test_run_retries () =
  let db, oids = counter_db ~cells:1 in
  let m = Txn.manager db in
  let incr () =
    match
      Txn.run m (fun t ->
          match Txn.get_prop t oids.(0) "word_count" with
          | Value.Int v -> Txn.set_prop t oids.(0) "word_count" (Value.Int (v + 1))
          | _ -> assert false)
    with
    | Ok _ -> ()
    | Error (`Conflict msg) -> Alcotest.failf "retries exhausted: %s" msg
  in
  let domains =
    List.init 4 (fun _ -> Domain.spawn (fun () -> for _ = 1 to 25 do incr () done))
  in
  List.iter Domain.join domains;
  check F.value "no lost updates under contention" (Value.Int 100)
    (Object_store.peek_prop db.Db.store oids.(0) "word_count")

(* ------------------------------------------------------------------ *)
(* pruning                                                             *)
(* ------------------------------------------------------------------ *)

let test_prune_discards_dead_versions () =
  let db, oids = counter_db ~cells:1 in
  let m = Txn.manager db in
  for i = 1 to 200 do
    match Txn.run m (fun t -> Txn.set_prop t oids.(0) "word_count" (Value.Int i)) with
    | Ok _ -> ()
    | Error _ -> Alcotest.fail "uncontended commit conflicted"
  done;
  (* no active snapshots: the horizon is the clock, chains collapse *)
  Txn.prune m;
  check Alcotest.bool "version chains pruned" true
    (Versions.live_entries (Txn.versions m) <= 1);
  let t = Txn.begin_ m in
  check F.value "latest still readable" (Value.Int 200)
    (Txn.get_prop t oids.(0) "word_count");
  Txn.abort t

(* A stalled reader pins the pruning horizon, so without a cap a hot
   key's chain grows one entry per commit for as long as the reader
   lives.  With [set_max_chain] the chain stays bounded and the stalled
   reader is refused with [Snapshot_too_old] rather than fed a wrong
   value; untouched keys and fresh snapshots are unaffected. *)
let test_version_cap_refuses_stalled_reader () =
  let cap = 8 in
  let db, oids = counter_db ~cells:2 in
  let m = Txn.manager db in
  Txn.set_max_chain m (Some cap);
  let stalled = Txn.begin_ m in
  check F.value "stalled reads fine before churn" (Value.Int 0)
    (Txn.get_prop stalled oids.(0) "word_count");
  for i = 1 to 100 do
    match
      Txn.run m (fun t -> Txn.set_prop t oids.(0) "word_count" (Value.Int i))
    with
    | Ok _ -> ()
    | Error _ -> Alcotest.fail "uncontended commit conflicted"
  done;
  (* the stalled reader pinned the horizon through every auto-prune, yet
     the hot chain never grew past the cap *)
  check Alcotest.bool "chain bounded despite the stalled reader" true
    (Versions.live_entries (Txn.versions m) <= cap);
  Alcotest.match_raises "stalled reader refused, not lied to"
    (function Versions.Snapshot_too_old _ -> true | _ -> false)
    (fun () -> ignore (Txn.get_prop stalled oids.(0) "word_count"));
  (* the refusal is per-key: the cold cell is still readable at the old
     snapshot, and a fresh transaction reads the hot cell normally *)
  check F.value "cold key still readable at the old snapshot" (Value.Int 10)
    (Txn.get_prop stalled oids.(1) "word_count");
  Txn.abort stalled;
  let fresh = Txn.begin_ m in
  check F.value "fresh snapshot reads the latest value" (Value.Int 100)
    (Txn.get_prop fresh oids.(0) "word_count");
  Txn.abort fresh

(* ------------------------------------------------------------------ *)
(* the serial oracle: randomized interleaved schedules                 *)
(* ------------------------------------------------------------------ *)

(* Each transaction is a list of cell operations; every write is a
   read-modify-write or a blind store, so first-committer-wins makes
   the committed subset serializable in commit order.  The generator
   draws an interleaving as a shuffled step sequence, some transactions
   end in a user abort, and conflicted commits drop out — the final
   store state must equal a serial replay of exactly the committed
   transactions, in commit timestamp order. *)

type cell_op = Incr of int * int | Put of int * int | ReadOnly of int

type script = { ops : cell_op list; user_abort : bool }

let script_gen ~cells =
  let open QCheck2.Gen in
  let cell = int_range 0 (cells - 1) in
  let op =
    oneof
      [
        map2 (fun k d -> Incr (k, d)) cell (int_range 1 9);
        map2 (fun k v -> Put (k, v)) cell (int_range 100 999);
        map (fun k -> ReadOnly k) cell;
      ]
  in
  map2
    (fun ops user_abort -> { ops; user_abort })
    (list_size (int_range 1 4) op)
    (map (fun n -> n = 0) (int_range 0 5))

(* interleaving: for each transaction, as many step tokens as it has
   actions (ops + the final commit/abort), then a global shuffle *)
let schedule_gen =
  let open QCheck2.Gen in
  let cells = 4 in
  list_size (int_range 2 6) (script_gen ~cells) >>= fun scripts ->
  let tokens =
    List.concat
      (List.mapi
         (fun i s -> List.init (List.length s.ops + 1) (fun _ -> i))
         scripts)
  in
  map (fun order -> (scripts, order)) (shuffle_l tokens)

let apply_cell_op read write = function
  | Incr (k, d) -> write k (read k + d)
  | Put (k, v) -> write k v
  | ReadOnly k -> ignore (read k)

let prop_serial_oracle (scripts, order) =
  let cells = 4 in
  let db, oids = counter_db ~cells in
  let m = Txn.manager db in
  let n = List.length scripts in
  let scripts = Array.of_list scripts in
  let txns = Array.make n None in
  let remaining = Array.map (fun s -> s.ops) scripts in
  (* (commit_ts, script index) of every successful commit *)
  let committed = ref [] in
  let step i =
    let t =
      match txns.(i) with
      | Some t -> t
      | None ->
        let t = Txn.begin_ m in
        txns.(i) <- Some t;
        t
    in
    if Txn.is_active t then
      match remaining.(i) with
      | op :: rest ->
        remaining.(i) <- rest;
        let read k =
          match Txn.get_prop t oids.(k) "word_count" with
          | Value.Int v -> v
          | _ -> assert false
        in
        let write k v = Txn.set_prop t oids.(k) "word_count" (Value.Int v) in
        apply_cell_op read write op
      | [] ->
        if scripts.(i).user_abort then Txn.abort t
        else begin
          match Txn.commit t with
          | Ok ts -> committed := (ts, i) :: !committed
          | Error (`Conflict _) -> ()
        end
  in
  List.iter step order;
  (* any transaction whose tokens were exhausted before its commit
     token surfaced cannot exist — each txn gets ops+1 tokens *)
  Array.iteri
    (fun i t ->
      match t with
      | Some t when Txn.is_active t ->
        Alcotest.failf "transaction %d never finished" i
      | _ -> ())
    txns;
  (* serial replay of the committed transactions in commit order *)
  let model = Array.init cells (fun i -> 10 * i) in
  List.iter
    (fun (_, i) ->
      List.iter
        (apply_cell_op (fun k -> model.(k)) (fun k v -> model.(k) <- v))
        scripts.(i).ops)
    (List.sort compare (List.rev !committed));
  let ok = ref true in
  Array.iteri
    (fun k oid ->
      match Object_store.peek_prop db.Db.store oid "word_count" with
      | Value.Int v -> if v <> model.(k) then ok := false
      | _ -> ok := false)
    oids;
  if not !ok then
    QCheck2.Test.fail_reportf "store diverged from serial oracle: %s vs %s"
      (String.concat ","
         (List.map
            (fun oid ->
              match Object_store.peek_prop db.Db.store oid "word_count" with
              | Value.Int v -> string_of_int v
              | _ -> "?")
            (Array.to_list oids)))
      (String.concat "," (List.map string_of_int (Array.to_list model)));
  true

let prop_snapshot_isolation_oracle =
  QCheck2.Test.make ~count:120
    ~name:
      "any interleaving of RMW transactions replays serially in commit order"
    schedule_gen prop_serial_oracle

(* ------------------------------------------------------------------ *)
(* durability: transactions over a paged directory                     *)
(* ------------------------------------------------------------------ *)

(* The snapshot clock must lag the allocation clock while a commit is
   mid-replay: a transaction must never obtain a begin timestamp whose
   write set is not fully applied yet (it would read that commit torn,
   and strict first-committer-wins would let lost updates through). *)
let test_snapshot_clock_lags_commit () =
  let db = Db.create_empty ~maintain:false () in
  let v = Versions.create () in
  Versions.observe v db.Db.store;
  check Alcotest.int "fresh recorder at 0" 0 (Versions.now v);
  (* direct (non-recorded) writes self-publish immediately *)
  let oid =
    Object_store.create_object db.Db.store ~cls:"Paragraph"
      [ ("word_count", Value.Int 1) ]
  in
  let live = Versions.now v in
  check Alcotest.bool "direct writes are live immediately" true (live > 0);
  let ts = Versions.begin_recording v in
  check Alcotest.bool "allocated ts is ahead of the snapshot clock" true
    (ts > Versions.now v);
  Object_store.set_prop db.Db.store oid "word_count" (Value.Int 2);
  check Alcotest.int "mid-replay events do not advance the snapshot clock"
    live (Versions.now v);
  Versions.publish v ts;
  Versions.end_recording v;
  check Alcotest.int "publish makes the commit a legal snapshot" ts
    (Versions.now v)

(* Hammer: every commit writes the same value to two cells, a concurrent
   reader transaction must never see them disagree — a begin timestamp
   equal to an in-flight commit would do exactly that. *)
let test_no_torn_snapshots_across_commit () =
  let db, oids = counter_db ~cells:2 in
  let m = Txn.manager db in
  let a = oids.(0) and b = oids.(1) in
  (match
     Txn.run m (fun t ->
         Txn.set_prop t a "word_count" (Value.Int 0);
         Txn.set_prop t b "word_count" (Value.Int 0))
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "setup commit conflicted");
  let stop = Atomic.make false in
  let torn = Atomic.make 0 in
  let reader =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          let t = Txn.begin_ m in
          let va = Txn.get_prop t a "word_count" in
          let vb = Txn.get_prop t b "word_count" in
          ignore (Txn.commit t);
          if not (Value.equal va vb) then Atomic.incr torn
        done)
  in
  for i = 1 to 500 do
    match
      Txn.run m (fun t ->
          Txn.set_prop t a "word_count" (Value.Int i);
          Txn.set_prop t b "word_count" (Value.Int i))
    with
    | Ok _ | Error _ -> ()
  done;
  Atomic.set stop true;
  Domain.join reader;
  check Alcotest.int "no torn snapshots observed" 0 (Atomic.get torn)

let test_txn_durability () =
  F.with_temp_dir "soqm_txn" (fun dir ->
      let db0 = F.tiny_db () in
      Db.save db0 dir;
      let db = Db.open_disk dir in
      let m = Txn.manager db in
      let doc = List.hd (Object_store.extent db.Db.store "Document") in
      (match
         Txn.run m (fun t ->
             Txn.set_prop t doc "title" (Value.Str "Committed Durably"))
       with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "uncontended commit conflicted");
      (* an aborted transaction leaves no trace in the WAL *)
      let t = Txn.begin_ m in
      Txn.set_prop t doc "title" (Value.Str "Never Written");
      Txn.abort t;
      Db.close db;
      let db' = Db.load dir in
      check F.value "committed write survives reopen"
        (Value.Str "Committed Durably")
        (Object_store.peek_prop db'.Db.store doc "title"))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "txn"
    [
      ( "rwlock",
        [
          F.case "writers exclusive" test_rwlock_exclusion;
          F.case "released on exception" test_rwlock_reraises;
        ] );
      ( "snapshots",
        [
          F.case "readers keep their snapshot" test_snapshot_reads;
          F.case "read your writes" test_read_your_writes;
          F.case "delete visibility" test_delete_semantics;
          F.case "abort discards buffers" test_abort_discards;
          F.case "snapshot clock lags mid-replay commits"
            test_snapshot_clock_lags_commit;
          F.case "no torn snapshots across commits"
            test_no_torn_snapshots_across_commit;
        ] );
      ( "conflicts",
        [
          F.case "write-write refused" test_write_write_conflict;
          F.case "write-delete refused" test_write_delete_conflict;
          F.case "run retries lost updates away" test_run_retries;
        ] );
      ( "pruning",
        [
          F.case "dead versions collapse" test_prune_discards_dead_versions;
          F.case "version cap refuses stalled reader"
            test_version_cap_refuses_stalled_reader;
        ] );
      ( "oracle",
        [ QCheck_alcotest.to_alcotest prop_snapshot_isolation_oracle ] );
      ( "durability",
        [ F.case "commits survive reopen" test_txn_durability ] );
    ]
