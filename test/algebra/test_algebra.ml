(* Tests for the query algebra: relations, the general-algebra evaluator
   against the set-comprehension definitions of Section 4.1, the
   restricted algebra of Section 6.1, and the equi-expressiveness of the
   two (Translate). *)

open Soqm_vml
open Soqm_algebra
module F = Soqm_testlib.Fixtures

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Relations                                                           *)
(* ------------------------------------------------------------------ *)

let test_relation_canonical () =
  let r1 =
    Relation.make ~refs:[ "b"; "a" ]
      [
        [ ("a", Value.Int 1); ("b", Value.Int 2) ];
        [ ("b", Value.Int 2); ("a", Value.Int 1) ];
      ]
  in
  check Alcotest.int "duplicates removed" 1 (Relation.cardinality r1);
  check (Alcotest.list Alcotest.string) "refs sorted" [ "a"; "b" ] (Relation.refs r1)

let test_relation_ref_mismatch () =
  Alcotest.match_raises "tuple refs must match"
    (function Invalid_argument _ -> true | _ -> false)
    (fun () ->
      ignore (Relation.make ~refs:[ "a" ] [ [ ("b", Value.Int 1) ] ]))

let test_relation_of_values () =
  let r = Relation.of_values "x" [ Value.Int 2; Value.Int 1; Value.Int 2 ] in
  check Alcotest.int "dedup" 2 (Relation.cardinality r);
  check (Alcotest.list F.value) "column" [ Value.Int 1; Value.Int 2 ]
    (Relation.column r "x")

(* ------------------------------------------------------------------ *)
(* General algebra: operator semantics                                 *)
(* ------------------------------------------------------------------ *)

let db = lazy (F.tiny_db ())
let store () = (Lazy.force db).Soqm_core.Db.store
let run t = Eval.run (store ()) t

let n_paras () = Object_store.extent_size (store ()) "Paragraph"
let n_docs () = Object_store.extent_size (store ()) "Document"

let test_get () =
  let r = run (General.Get ("p", "Paragraph")) in
  check Alcotest.int "all paragraphs" (n_paras ()) (Relation.cardinality r);
  check (Alcotest.list Alcotest.string) "single ref" [ "p" ] (Relation.refs r)

let test_select () =
  let cond = Expr.(Binop (Eq, Prop (Ref "d", "title"), Const (Value.Str "Query Optimization"))) in
  let r = run (General.Select (cond, General.Get ("d", "Document"))) in
  check Alcotest.int "one title match" 1 (Relation.cardinality r)

let test_select_def () =
  (* select keeps exactly the tuples whose condition evaluates to TRUE *)
  let cond = Expr.(Binop (Lt, Prop (Ref "s", "number"), Const (Value.Int 1))) in
  let all = run (General.Get ("s", "Section")) in
  let sel = run (General.Select (cond, General.Get ("s", "Section"))) in
  let expected =
    List.filter
      (fun tup -> Value.truthy (Eval.eval_expr (store ()) tup cond))
      (Relation.tuples all)
  in
  check F.relation "comprehension definition"
    (Relation.make ~refs:[ "s" ] expected)
    sel

let test_join_true_is_product () =
  let r =
    run
      (General.Join
         ( Expr.Const (Value.Bool true),
           General.Get ("d", "Document"),
           General.Get ("s", "Section") ))
  in
  check Alcotest.int "cartesian product"
    (n_docs () * Object_store.extent_size (store ()) "Section")
    (Relation.cardinality r)

let test_join_theta () =
  let r =
    run
      (General.Join
         ( Expr.(Binop (Eq, Prop (Ref "s", "document"), Ref "d")),
           General.Get ("s", "Section"),
           General.Get ("d", "Document") ))
  in
  check Alcotest.int "one document per section"
    (Object_store.extent_size (store ()) "Section")
    (Relation.cardinality r)

let test_natural_join_intersection () =
  (* with equal reference sets natural_join behaves like intersection
     (Section 4.2, implication rules) *)
  let c1 = Expr.(Binop (Le, Prop (Ref "s", "number"), Const (Value.Int 0))) in
  let c2 = Expr.(Binop (Ge, Prop (Ref "s", "number"), Const (Value.Int 0))) in
  let s1 = General.Select (c1, General.Get ("s", "Section")) in
  let s2 = General.Select (c2, General.Get ("s", "Section")) in
  let joined = run (General.NaturalJoin (s1, s2)) in
  let both =
    run (General.Select (Expr.(Binop (And, c1, c2)), General.Get ("s", "Section")))
  in
  check F.relation "intersection" both joined

let test_natural_join_shared_subset () =
  (* natural_join on a proper shared subset of references *)
  let left =
    General.Map ("t", Expr.(Prop (Ref "d", "title")), General.Get ("d", "Document"))
  in
  let right =
    General.Map ("a", Expr.(Prop (Ref "d", "author")), General.Get ("d", "Document"))
  in
  let r = run (General.NaturalJoin (left, right)) in
  (* d is shared, so each document contributes exactly one tuple *)
  check Alcotest.int "one tuple per document" (n_docs ()) (Relation.cardinality r);
  check (Alcotest.list Alcotest.string) "merged refs" [ "a"; "d"; "t" ]
    (Relation.refs r)

let test_union_diff () =
  let c1 = Expr.(Binop (Le, Prop (Ref "s", "number"), Const (Value.Int 0))) in
  let s1 = General.Select (c1, General.Get ("s", "Section")) in
  let all = General.Get ("s", "Section") in
  check F.relation "union with subset" (run all) (run (General.Union (s1, all)));
  let diff = run (General.Diff (all, s1)) in
  let c2 = Expr.(Binop (Gt, Prop (Ref "s", "number"), Const (Value.Int 0))) in
  check F.relation "diff is complement"
    (run (General.Select (c2, all)))
    diff

let test_union_ref_mismatch () =
  Alcotest.match_raises "union needs equal refs"
    (function Eval.Error _ -> true | _ -> false)
    (fun () ->
      ignore
        (run (General.Union (General.Get ("a", "Document"), General.Get ("b", "Document")))))

let test_map () =
  let r =
    run
      (General.Map
         ("t", Expr.(Prop (Ref "d", "title")), General.Get ("d", "Document")))
  in
  check Alcotest.int "map preserves cardinality" (n_docs ()) (Relation.cardinality r);
  check (Alcotest.list Alcotest.string) "extended refs" [ "d"; "t" ] (Relation.refs r)

let test_map_duplicate_ref_error () =
  Alcotest.match_raises "map target must be fresh"
    (function Eval.Error _ -> true | _ -> false)
    (fun () ->
      ignore
        (run (General.Map ("d", Expr.(Prop (Ref "d", "title")), General.Get ("d", "Document")))))

let test_flat () =
  let r =
    run
      (General.Flat
         ("s", Expr.(Prop (Ref "d", "sections")), General.Get ("d", "Document")))
  in
  check Alcotest.int "one tuple per (doc, section)"
    (n_docs () * F.tiny_params.Soqm_core.Datagen.sections_per_doc)
    (Relation.cardinality r)

let test_flat_on_scalar_errors () =
  Alcotest.match_raises "flat needs set-valued expression"
    (function Eval.Error _ -> true | _ -> false)
    (fun () ->
      ignore
        (run (General.Flat ("t", Expr.(Prop (Ref "d", "title")), General.Get ("d", "Document")))))

let test_project () =
  let term =
    General.Project
      ( [ "t" ],
        General.Map
          ("t", Expr.(Prop (Ref "d", "author")), General.Get ("d", "Document")) )
  in
  let r = run term in
  (* authors repeat (mod 7), so projection shrinks the set *)
  check Alcotest.int "distinct authors" (min 7 (n_docs ())) (Relation.cardinality r)

let test_method_source () =
  let r =
    run
      (General.MethodSource
         ( "p",
           Expr.(
             Call
               ( ClassObj "Paragraph",
                 "retrieve_by_string",
                 [ Const (Value.Str "Implementation") ] )) ))
  in
  let scan =
    run
      (General.Select
         ( Expr.(Call (Ref "p", "contains_string", [ Const (Value.Str "Implementation") ])),
           General.Get ("p", "Paragraph") ))
  in
  check F.relation "E5 as relations" scan r

let test_dual_map_flat () =
  (* flat over a singleton set equals map of its element *)
  let flat =
    run
      (General.Flat
         ( "x",
           Expr.(SetE [ Prop (Ref "d", "title") ]),
           General.Get ("d", "Document") ))
  in
  let map =
    run
      (General.Map
         ("x", Expr.(Prop (Ref "d", "title")), General.Get ("d", "Document")))
  in
  check F.relation "map/flat duality on singletons" map flat

let test_worked_example_equivalence () =
  (* The queries Q and PQ of Section 2.3 produce the same result set. *)
  let q =
    General.Select
      ( Expr.(
          Binop
            ( And,
              Call (Ref "p", "contains_string", [ Const (Value.Str "Implementation") ]),
              Binop
                ( Eq,
                  Prop (Call (Ref "p", "document", []), "title"),
                  Const (Value.Str "Query Optimization") ) )),
        General.Get ("p", "Paragraph") )
  in
  let pq =
    General.MethodSource
      ( "p",
        Expr.(
          Binop
            ( InterOp,
              Call
                ( ClassObj "Paragraph",
                  "retrieve_by_string",
                  [ Const (Value.Str "Implementation") ] ),
              Prop
                ( Prop
                    ( Call
                        ( ClassObj "Document",
                          "select_by_index",
                          [ Const (Value.Str "Query Optimization") ] ),
                      "sections" ),
                  "paragraphs" ) )) )
  in
  check F.relation "Q == PQ" (run q) (run pq)

(* ------------------------------------------------------------------ *)
(* General algebra: structural helpers                                 *)
(* ------------------------------------------------------------------ *)

let test_refs_and_well_formed () =
  let t =
    General.Map
      ("t", Expr.(Prop (Ref "d", "title")), General.Get ("d", "Document"))
  in
  check (Alcotest.list Alcotest.string) "refs" [ "d"; "t" ] (General.refs t);
  check Alcotest.bool "well formed" true (General.well_formed t = Ok ());
  let bad =
    General.Select (Expr.(Binop (Eq, Ref "zz", Const (Value.Int 1))), General.Get ("d", "Document"))
  in
  check Alcotest.bool "detects unavailable refs" true
    (match General.well_formed bad with Error _ -> true | Ok () -> false)

let test_rename_ref () =
  let t =
    General.Select
      ( Expr.(Binop (Eq, Prop (Ref "d", "title"), Const (Value.Str "x"))),
        General.Get ("d", "Document") )
  in
  let t' = General.rename_ref ~old_ref:"d" ~new_ref:"e" t in
  check (Alcotest.list Alcotest.string) "renamed" [ "e" ] (General.refs t');
  check F.relation "same semantics under renaming"
    (Relation.make ~refs:[ "e" ]
       (List.map
          (fun tup -> [ ("e", Relation.field tup "d") ])
          (Relation.tuples (run t))))
    (run t')

(* ------------------------------------------------------------------ *)
(* Restricted algebra                                                  *)
(* ------------------------------------------------------------------ *)

let test_restricted_to_general_roundtrip () =
  let t =
    Restricted.SelectCmp
      ( Restricted.CEq,
        Restricted.ORef "t",
        Restricted.OConst (Value.Str "Query Optimization"),
        Restricted.MapProperty ("t", "title", "d", Restricted.Get ("d", "Document"))
      )
  in
  let g = Restricted.to_general t in
  let expected =
    General.Select
      ( Expr.(Binop (Eq, Ref "t", Const (Value.Str "Query Optimization"))),
        General.Map ("t", Expr.(Prop (Ref "d", "title")), General.Get ("d", "Document"))
      )
  in
  check F.general "substitution table" expected g

let test_restricted_refs () =
  let t =
    Restricted.Project
      ( [ "p" ],
        Restricted.FlatProperty ("p", "paragraphs", "s", Restricted.Get ("s", "Section"))
      )
  in
  check (Alcotest.list Alcotest.string) "refs" [ "p" ] (Restricted.refs t)

let test_restricted_infer () =
  let schema = Soqm_core.Doc_schema.schema in
  let t =
    Restricted.MapProperty
      ( "doc",
        "document",
        "s",
        Restricted.MapProperty ("s", "section", "p", Restricted.Get ("p", "Paragraph"))
      )
  in
  let env = Restricted.infer schema t in
  check Alcotest.bool "p : Paragraph" true
    (List.assoc_opt "p" env = Some (Vtype.TObj "Paragraph"));
  check Alcotest.bool "s : Section" true
    (List.assoc_opt "s" env = Some (Vtype.TObj "Section"));
  check Alcotest.bool "doc : Document" true
    (List.assoc_opt "doc" env = Some (Vtype.TObj "Document"))

let test_restricted_infer_lifted () =
  let schema = Soqm_core.Doc_schema.schema in
  (* select_by_index returns {Document}; .sections over it unions into a
     set of sections *)
  let t =
    Restricted.MapProperty
      ( "secs",
        "sections",
        "ds",
        Restricted.MapMethod
          ( "ds",
            "select_by_index",
            Restricted.RClass "Document",
            [ Restricted.OConst (Value.Str "x") ],
            Restricted.Get ("p", "Paragraph") ) )
  in
  let env = Restricted.infer schema t in
  check Alcotest.bool "ds : {Document}" true
    (List.assoc_opt "ds" env = Some (Vtype.TSet (Vtype.TObj "Document")));
  check Alcotest.bool "secs : {Section}" true
    (List.assoc_opt "secs" env = Some (Vtype.TSet (Vtype.TObj "Section")))

let test_inputs_with_inputs () =
  let base = Restricted.Get ("p", "Paragraph") in
  let t =
    Restricted.SelectCmp (Restricted.CEq, Restricted.ORef "p", Restricted.ORef "p", base)
  in
  check F.restricted "with_inputs round trip" t
    (Restricted.with_inputs t (Restricted.inputs t));
  Alcotest.match_raises "arity mismatch"
    (function Invalid_argument _ -> true | _ -> false)
    (fun () -> ignore (Restricted.with_inputs t []))

(* ------------------------------------------------------------------ *)
(* Translation: general -> restricted preserves semantics              *)
(* ------------------------------------------------------------------ *)

let eval_restricted t = Eval.run (store ()) (Restricted.to_general t)

let translate_preserves name g () =
  let r = Translate.of_general g in
  check F.relation name (run g) (eval_restricted r)

let test_translate_select_method_cond =
  translate_preserves "select with method condition"
    (General.Select
       ( Expr.(Call (Ref "p", "contains_string", [ Const (Value.Str "Implementation") ])),
         General.Get ("p", "Paragraph") ))

let test_translate_path_select =
  translate_preserves "select over a path expression"
    (General.Select
       ( Expr.(
           Binop
             ( Eq,
               Prop (Prop (Prop (Ref "p", "section"), "document"), "title"),
               Const (Value.Str "Query Optimization") )),
         General.Get ("p", "Paragraph") ))

let test_translate_conjunction =
  translate_preserves "conjunction becomes select cascade"
    (General.Select
       ( Expr.(
           Binop
             ( And,
               Binop (Le, Prop (Ref "s", "number"), Const (Value.Int 1)),
               Binop (Gt, Prop (Ref "s", "number"), Const (Value.Int 0)) )),
         General.Get ("s", "Section") ))

let test_translate_disjunction =
  translate_preserves "disjunction computed then compared to TRUE"
    (General.Select
       ( Expr.(
           Binop
             ( Or,
               Binop (Eq, Prop (Ref "s", "number"), Const (Value.Int 0)),
               Binop (Eq, Prop (Ref "s", "number"), Const (Value.Int 1)) )),
         General.Get ("s", "Section") ))

let test_translate_map_tuple =
  translate_preserves "map with tuple construction (Example 3 output)"
    (General.Map
       ( "out",
         Expr.(
           TupleE
             [ ("doc", Prop (Ref "d", "title")); ("n", Prop (Ref "d", "author")) ]),
         General.Get ("d", "Document") ))

let test_translate_flat_method =
  translate_preserves "flat over a method call (Example 2 FROM clause)"
    (General.Flat
       ("p", Expr.(Call (Ref "d", "paragraphs", [])), General.Get ("d", "Document")))

let test_translate_join =
  translate_preserves "theta join splits into join<cmp>"
    (General.Join
       ( Expr.(Binop (Eq, Prop (Ref "s", "document"), Ref "d")),
         General.Get ("s", "Section"),
         General.Get ("d", "Document") ))

let test_translate_method_join =
  translate_preserves "method join predicate (Example 1)"
    (General.Project
       ( [ "p"; "q" ],
         General.Join
           ( Expr.(Call (Ref "p", "sameDocument", [ Ref "q" ])),
             General.Get ("p", "Paragraph"),
             General.Get ("q", "Paragraph") ) ))

let test_translate_refs_preserved () =
  let g =
    General.Select
      ( Expr.(
          Binop
            ( Eq,
              Prop (Prop (Ref "p", "section"), "number"),
              Const (Value.Int 0) )),
        General.Get ("p", "Paragraph") )
  in
  let r = Translate.of_general g in
  check (Alcotest.list Alcotest.string) "same refs" (General.refs g)
    (Restricted.refs r)

let test_translate_unsupported () =
  Alcotest.match_raises "SELF rejected"
    (function Translate.Unsupported _ -> true | _ -> false)
    (fun () ->
      ignore
        (Translate.of_general
           (General.Select (Expr.(Binop (Eq, Self, Self)), General.Get ("p", "Paragraph")))))

(* ------------------------------------------------------------------ *)
(* More evaluator edge cases                                           *)
(* ------------------------------------------------------------------ *)

let test_eval_unknown_class () =
  Alcotest.match_raises "unknown class"
    (function Eval.Error _ -> true | _ -> false)
    (fun () -> ignore (run (General.Get ("x", "Nowhere"))))

let test_eval_join_shared_refs_error () =
  Alcotest.match_raises "join arguments share references"
    (function Eval.Error _ -> true | _ -> false)
    (fun () ->
      ignore
        (run
           (General.Join
              ( Expr.Const (Value.Bool true),
                General.Get ("d", "Document"),
                General.Get ("d", "Document") ))))

let test_eval_project_missing_ref () =
  Alcotest.match_raises "missing projection reference"
    (function Eval.Error _ -> true | _ -> false)
    (fun () -> ignore (run (General.Project ([ "zz" ], General.Get ("d", "Document")))))

let test_eval_unit () =
  let r = run General.Unit in
  check Alcotest.int "one empty tuple" 1 (Relation.cardinality r);
  check (Alcotest.list Alcotest.string) "no refs" [] (Relation.refs r);
  (* unit is neutral for join<true> *)
  let joined =
    run (General.Join (Expr.Const (Value.Bool true), General.Unit, General.Get ("d", "Document")))
  in
  check Alcotest.int "neutral element" (n_docs ()) (Relation.cardinality joined)

let test_select_conjunction_equals_cascade () =
  let c1 = Expr.(Binop (Le, Prop (Ref "s", "number"), Const (Value.Int 1))) in
  let c2 = Expr.(Binop (Gt, Prop (Ref "s", "number"), Const (Value.Int 0))) in
  let conj =
    run (General.Select (Expr.Binop (Expr.And, c1, c2), General.Get ("s", "Section")))
  in
  let cascade =
    run (General.Select (c2, General.Select (c1, General.Get ("s", "Section"))))
  in
  check F.relation "AND = cascade" conj cascade

let test_project_idempotent () =
  let base =
    General.Map ("t", Expr.(Prop (Ref "d", "title")), General.Get ("d", "Document"))
  in
  check F.relation "project twice = once"
    (run (General.Project ([ "t" ], base)))
    (run (General.Project ([ "t" ], General.Project ([ "t" ], base))))

let test_restricted_infer_union_disagreement () =
  let schema = Soqm_core.Doc_schema.schema in
  (* refs typed differently on the two sides are dropped *)
  let t =
    Restricted.Union
      ( Restricted.MapProperty ("x", "title", "d", Restricted.Get ("d", "Document")),
        Restricted.MapProperty ("x", "author", "d", Restricted.Get ("d", "Document")) )
  in
  let env = Restricted.infer schema t in
  check Alcotest.bool "agreeing d kept" true
    (List.assoc_opt "d" env = Some (Vtype.TObj "Document"));
  (* x : STRING on both sides — kept *)
  check Alcotest.bool "agreeing x kept" true
    (List.assoc_opt "x" env = Some Vtype.TString)

let test_translate_flips_join_comparison () =
  (* d == s.document written with the sides swapped still becomes an
     equality join between the two inputs *)
  let g =
    General.Join
      ( Expr.(Binop (Eq, Ref "d", Prop (Ref "s", "document"))),
        General.Get ("s", "Section"),
        General.Get ("d", "Document") )
  in
  check F.relation "swapped equality join" (run g)
    (eval_restricted (Translate.of_general g))

let test_translate_lt_join_flip () =
  let g =
    General.Join
      ( Expr.(Binop (Lt, Ref "b", Ref "a")),
        General.Map ("a", Expr.(Prop (Ref "s", "number")), General.Get ("s", "Section")),
        General.Map ("b", Expr.(Prop (Ref "q", "number")), General.Get ("q", "Paragraph")) )
  in
  let r = Translate.of_general g in
  (* the comparison is flipped so the left reference comes from S1 *)
  check Alcotest.bool "becomes a comparison join" true
    (List.exists
       (function Restricted.JoinCmp (Restricted.CGt, "a", "b", _, _) -> true | _ -> false)
       (Restricted.subtrees r));
  check F.relation "still correct" (run g) (eval_restricted r)

(* ------------------------------------------------------------------ *)
(* Null semantics (see DESIGN.md, "Null semantics")                    *)
(* ------------------------------------------------------------------ *)

let test_flat_null_is_empty_set () =
  (* Flat-Null: a Null set expression is read as the empty set, so the
     input tuple contributes zero output tuples *)
  let r =
    run (General.Flat ("x", Expr.Const Value.Null, General.Get ("d", "Document")))
  in
  check Alcotest.int "null flattens to nothing" 0 (Relation.cardinality r)

let test_map_null_binds_value () =
  (* Map-Null: Null is an ordinary scalar; every input tuple survives
     with [x] bound to Null *)
  let r =
    run (General.Map ("x", Expr.Const Value.Null, General.Get ("d", "Document")))
  in
  check Alcotest.int "cardinality preserved" (n_docs ()) (Relation.cardinality r);
  List.iter
    (fun v -> check F.value "binds NULL" Value.Null v)
    (Relation.column r "x")

let test_equi_join_null_never_matches () =
  (* the hash equi-join fast path must preserve [eval_binop Eq]'s null
     semantics: NULL == NULL is FALSE, so Null keys join with nothing *)
  let source a vs = General.MethodSource (a, Expr.(SetE (List.map (fun v -> Const v) vs))) in
  let r =
    run
      (General.Join
         ( Expr.(Binop (Eq, Ref "a", Ref "b")),
           source "a" [ Value.Null; Value.Int 1; Value.Int 2 ],
           source "b" [ Value.Null; Value.Int 1; Value.Int 3 ] ))
  in
  check F.relation "only the non-null match survives"
    (Relation.make ~refs:[ "a"; "b" ]
       [ [ ("a", Value.Int 1); ("b", Value.Int 1) ] ])
    r

(* ------------------------------------------------------------------ *)
(* Hash-based relation operators vs the retained naive ones            *)
(* ------------------------------------------------------------------ *)

let test_natural_join_disjoint_is_product () =
  let r1 = Relation.of_values "a" [ Value.Int 1; Value.Int 2 ] in
  let r2 = Relation.of_values "b" [ Value.Str "x"; Value.Str "y"; Value.Str "z" ] in
  let j = Relation.natural_join r1 r2 in
  check Alcotest.int "no shared refs: cross product" 6 (Relation.cardinality j);
  check F.relation "agrees with naive" (Naive.natural_join r1 r2) j

let test_natural_join_empty_refs () =
  (* zero-reference relations are the algebra's booleans: {} and {[]} *)
  let unit_r = Relation.make ~refs:[] [ [] ] in
  let zero_r = Relation.empty ~refs:[] in
  check F.relation "unit * unit" unit_r (Relation.natural_join unit_r unit_r);
  check F.relation "unit * zero" zero_r (Relation.natural_join unit_r zero_r);
  check F.relation "agrees with naive" (Naive.natural_join unit_r zero_r)
    (Relation.natural_join unit_r zero_r)

let test_union_diff_ref_mismatch_raises () =
  let r1 = Relation.of_values "a" [ Value.Int 1 ] in
  let r2 = Relation.of_values "b" [ Value.Int 1 ] in
  Alcotest.match_raises "union rejects differing refs"
    (function Invalid_argument _ -> true | _ -> false)
    (fun () -> ignore (Relation.union r1 r2));
  Alcotest.match_raises "diff rejects differing refs"
    (function Invalid_argument _ -> true | _ -> false)
    (fun () -> ignore (Relation.diff r1 r2))

let prop_natural_join_agrees =
  QCheck2.Test.make ~count:300
    ~name:"hash natural_join agrees with naive (all ref overlaps)"
    Soqm_testlib.Gen.relation_pair_gen
    (fun (r1, r2) ->
      Relation.equal (Naive.natural_join r1 r2) (Relation.natural_join r1 r2))

let prop_union_agrees =
  QCheck2.Test.make ~count:300 ~name:"hash union agrees with naive"
    Soqm_testlib.Gen.same_refs_relation_pair_gen
    (fun (r1, r2) -> Relation.equal (Naive.union r1 r2) (Relation.union r1 r2))

let prop_diff_agrees =
  QCheck2.Test.make ~count:300 ~name:"hash diff agrees with naive"
    Soqm_testlib.Gen.same_refs_relation_pair_gen
    (fun (r1, r2) -> Relation.equal (Naive.diff r1 r2) (Relation.diff r1 r2))

let prop_natural_join_identical_refs_is_intersection =
  QCheck2.Test.make ~count:200
    ~name:"natural_join with all refs shared = set intersection"
    Soqm_testlib.Gen.same_refs_relation_pair_gen
    (fun (r1, r2) ->
      let j = Relation.natural_join r1 r2 in
      let inter =
        Relation.make ~refs:(Relation.refs r1)
          (let in2 = Relation.mem_set r2 in
           List.filter in2 (Relation.tuples r1))
      in
      Relation.equal inter j)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_translate_preserves =
  QCheck2.Test.make ~count:60
    ~name:"of_general preserves evaluation on random terms"
    Soqm_testlib.Gen.term_gen
    (fun g ->
      match General.well_formed g with
      | Error _ -> QCheck2.assume_fail ()
      | Ok () ->
        let expected = run g in
        let got = eval_restricted (Translate.of_general g) in
        Relation.equal expected got)

let prop_translate_refs =
  QCheck2.Test.make ~count:60 ~name:"of_general preserves Ref(S)"
    Soqm_testlib.Gen.term_gen
    (fun g ->
      match General.well_formed g with
      | Error _ -> QCheck2.assume_fail ()
      | Ok () -> General.refs g = Restricted.refs (Translate.of_general g))

let prop_roundtrip_general =
  QCheck2.Test.make ~count:60
    ~name:"to_general of of_general evaluates like the original"
    Soqm_testlib.Gen.para_query_gen
    (fun g ->
      Relation.equal (run g)
        (run (Restricted.to_general (Translate.of_general g))))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_translate_preserves; prop_translate_refs; prop_roundtrip_general ]

let () =
  Alcotest.run "algebra"
    [
      ( "relation",
        [
          F.case "canonical form" test_relation_canonical;
          F.case "ref mismatch" test_relation_ref_mismatch;
          F.case "of_values" test_relation_of_values;
          F.case "disjoint natural_join" test_natural_join_disjoint_is_product;
          F.case "empty-refs natural_join" test_natural_join_empty_refs;
          F.case "union/diff ref mismatch" test_union_diff_ref_mismatch_raises;
          QCheck_alcotest.to_alcotest prop_natural_join_agrees;
          QCheck_alcotest.to_alcotest prop_union_agrees;
          QCheck_alcotest.to_alcotest prop_diff_agrees;
          QCheck_alcotest.to_alcotest prop_natural_join_identical_refs_is_intersection;
        ] );
      ( "general-eval",
        [
          F.case "get" test_get;
          F.case "select" test_select;
          F.case "select definition" test_select_def;
          F.case "join<true> is product" test_join_true_is_product;
          F.case "theta join" test_join_theta;
          F.case "natural_join as intersection" test_natural_join_intersection;
          F.case "natural_join shared subset" test_natural_join_shared_subset;
          F.case "union & diff" test_union_diff;
          F.case "union ref mismatch" test_union_ref_mismatch;
          F.case "map" test_map;
          F.case "map duplicate ref" test_map_duplicate_ref_error;
          F.case "flat" test_flat;
          F.case "flat on scalar" test_flat_on_scalar_errors;
          F.case "project" test_project;
          F.case "method source (E5)" test_method_source;
          F.case "map/flat duality" test_dual_map_flat;
          F.case "worked example Q == PQ" test_worked_example_equivalence;
        ] );
      ( "general-structure",
        [
          F.case "refs & well_formed" test_refs_and_well_formed;
          F.case "rename_ref" test_rename_ref;
        ] );
      ( "restricted",
        [
          F.case "to_general substitution" test_restricted_to_general_roundtrip;
          F.case "refs" test_restricted_refs;
          F.case "type inference" test_restricted_infer;
          F.case "set-lifted inference" test_restricted_infer_lifted;
          F.case "inputs/with_inputs" test_inputs_with_inputs;
        ] );
      ( "translate",
        [
          F.case "method condition" test_translate_select_method_cond;
          F.case "path select" test_translate_path_select;
          F.case "conjunction" test_translate_conjunction;
          F.case "disjunction" test_translate_disjunction;
          F.case "map tuple" test_translate_map_tuple;
          F.case "flat method" test_translate_flat_method;
          F.case "theta join" test_translate_join;
          F.case "method join" test_translate_method_join;
          F.case "refs preserved" test_translate_refs_preserved;
          F.case "unsupported constructs" test_translate_unsupported;
        ] );
      ( "edge-cases",
        [
          F.case "unknown class" test_eval_unknown_class;
          F.case "join shared refs" test_eval_join_shared_refs_error;
          F.case "project missing ref" test_eval_project_missing_ref;
          F.case "unit relation" test_eval_unit;
          F.case "AND = cascade" test_select_conjunction_equals_cascade;
          F.case "project idempotent" test_project_idempotent;
          F.case "union type disagreement" test_restricted_infer_union_disagreement;
          F.case "flat of NULL" test_flat_null_is_empty_set;
          F.case "map of NULL" test_map_null_binds_value;
          F.case "equi-join NULL keys" test_equi_join_null_never_matches;
          F.case "swapped equality join" test_translate_flips_join_comparison;
          F.case "ordering join flip" test_translate_lt_join_flip;
        ] );
      ("properties", qcheck_tests);
    ]
