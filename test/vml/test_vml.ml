(* Unit and property tests for the VML data-model substrate. *)

open Soqm_vml

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string

let value_testable = Alcotest.testable Value.pp Value.equal

(* ------------------------------------------------------------------ *)
(* Values                                                              *)
(* ------------------------------------------------------------------ *)

let test_set_canonical () =
  let s1 = Value.set [ Value.Int 3; Value.Int 1; Value.Int 3; Value.Int 2 ] in
  let s2 = Value.set [ Value.Int 1; Value.Int 2; Value.Int 3 ] in
  check value_testable "sets canonicalize" s1 s2

let test_tuple_canonical () =
  let t1 = Value.tuple [ ("b", Value.Int 2); ("a", Value.Int 1) ] in
  let t2 = Value.tuple [ ("a", Value.Int 1); ("b", Value.Int 2) ] in
  check value_testable "tuple labels are unordered" t1 t2

let test_tuple_duplicate_label () =
  Alcotest.check_raises "duplicate label rejected"
    (Invalid_argument "Value.tuple: duplicate label a") (fun () ->
      ignore (Value.tuple [ ("a", Value.Int 1); ("a", Value.Int 2) ]))

let test_is_in () =
  let s = Value.set [ Value.Int 1; Value.Int 2 ] in
  check tbool "1 in {1,2}" true (Value.is_in (Value.Int 1) s);
  check tbool "3 not in {1,2}" false (Value.is_in (Value.Int 3) s)

let test_is_subset () =
  let s12 = Value.set [ Value.Int 1; Value.Int 2 ] in
  let s123 = Value.set [ Value.Int 1; Value.Int 2; Value.Int 3 ] in
  check tbool "subset" true (Value.is_subset s12 s123);
  check tbool "not subset" false (Value.is_subset s123 s12)

let test_set_ops () =
  let a = Value.set [ Value.Int 1; Value.Int 2 ] in
  let b = Value.set [ Value.Int 2; Value.Int 3 ] in
  check value_testable "union"
    (Value.set [ Value.Int 1; Value.Int 2; Value.Int 3 ])
    (Value.set_union a b);
  check value_testable "inter" (Value.set [ Value.Int 2 ]) (Value.set_inter a b);
  check value_testable "diff" (Value.set [ Value.Int 1 ]) (Value.set_diff a b)

let test_tuple_get () =
  let t = Value.tuple [ ("x", Value.Int 1); ("y", Value.Str "s") ] in
  check value_testable "get x" (Value.Int 1) (Value.tuple_get t "x");
  check value_testable "get y" (Value.Str "s") (Value.tuple_get t "y")

let test_value_order_total () =
  let vs =
    [
      Value.Null;
      Value.Bool true;
      Value.Int 1;
      Value.Real 2.5;
      Value.Str "x";
      Value.Obj (Oid.make ~cls:"C" ~id:1);
      Value.Cls "C";
      Value.tuple [ ("a", Value.Int 1) ];
      Value.set [ Value.Int 1 ];
      Value.Arr [| Value.Int 1 |];
      Value.dict [ (Value.Int 1, Value.Str "a") ];
    ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let c1 = Value.compare a b and c2 = Value.compare b a in
          check tbool "antisymmetric" true
            ((c1 = 0 && c2 = 0) || (c1 > 0 && c2 < 0) || (c1 < 0 && c2 > 0)))
        vs)
    vs

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let test_check_primitives () =
  check tbool "int" true (Vtype.check Vtype.TInt (Value.Int 3));
  check tbool "int not string" false (Vtype.check Vtype.TInt (Value.Str "x"));
  check tbool "int widens to real" true (Vtype.check Vtype.TReal (Value.Int 3));
  check tbool "null anywhere" true (Vtype.check Vtype.TString Value.Null)

let test_check_obj () =
  let o = Value.Obj (Oid.make ~cls:"Document" ~id:0) in
  check tbool "exact class" true (Vtype.check (Vtype.TObj "Document") o);
  check tbool "wrong class" false (Vtype.check (Vtype.TObj "Section") o);
  check tbool "any obj" true (Vtype.check Vtype.TAnyObj o)

let test_check_complex () =
  let v = Value.set [ Value.Int 1; Value.Int 2 ] in
  check tbool "set of int" true (Vtype.check (Vtype.TSet Vtype.TInt) v);
  check tbool "set of string" false (Vtype.check (Vtype.TSet Vtype.TString) v);
  let tup = Value.tuple [ ("a", Value.Int 1); ("b", Value.Str "x") ] in
  check tbool "tuple type" true
    (Vtype.check (Vtype.ttuple [ ("b", Vtype.TString); ("a", Vtype.TInt) ]) tup)

let test_subtype () =
  check tbool "obj <= anyobj" true (Vtype.subtype (Vtype.TObj "C") Vtype.TAnyObj);
  check tbool "int <= real" true (Vtype.subtype Vtype.TInt Vtype.TReal);
  check tbool "covariant sets" true
    (Vtype.subtype (Vtype.TSet (Vtype.TObj "C")) (Vtype.TSet Vtype.TAnyObj));
  check tbool "not reflexively wrong" false
    (Vtype.subtype Vtype.TAnyObj (Vtype.TObj "C"))

let test_of_value () =
  let some_ty = Alcotest.testable
      (Fmt.option Vtype.pp)
      (Option.equal Vtype.equal)
  in
  check some_ty "int" (Some Vtype.TInt) (Vtype.of_value (Value.Int 1));
  check some_ty "obj"
    (Some (Vtype.TObj "Document"))
    (Vtype.of_value (Value.Obj (Oid.make ~cls:"Document" ~id:3)));
  check some_ty "set"
    (Some (Vtype.TSet Vtype.TInt))
    (Vtype.of_value (Value.set [ Value.Int 1 ]));
  check some_ty "null" None (Vtype.of_value Value.Null)

(* ------------------------------------------------------------------ *)
(* Schema validation                                                   *)
(* ------------------------------------------------------------------ *)

let test_schema_duplicate_class () =
  Alcotest.match_raises "duplicate class"
    (function Invalid_argument _ -> true | _ -> false)
    (fun () -> ignore (Schema.make [ Schema.cls "C"; Schema.cls "C" ]))

let test_schema_unknown_class_in_type () =
  Alcotest.match_raises "undeclared class"
    (function Invalid_argument _ -> true | _ -> false)
    (fun () ->
      ignore
        (Schema.make
           [ Schema.cls "C" ~properties:[ Schema.prop "x" (Vtype.TObj "D") ] ]))

let test_schema_inverse_must_be_mutual () =
  Alcotest.match_raises "non-mutual inverse"
    (function Invalid_argument _ -> true | _ -> false)
    (fun () ->
      ignore
        (Schema.make
           [
             Schema.cls "C"
               ~properties:
                 [ Schema.prop "d" (Vtype.TObj "D") ~inverse:("D", "cs") ];
             Schema.cls "D"
               ~properties:[ Schema.prop "cs" (Vtype.TSet (Vtype.TObj "C")) ];
           ]))

let test_schema_property_method_clash () =
  Alcotest.match_raises "property/method clash"
    (function Invalid_argument _ -> true | _ -> false)
    (fun () ->
      ignore
        (Schema.make
           [
             Schema.cls "C"
               ~properties:[ Schema.prop "x" Vtype.TInt ]
               ~inst_methods:[ Schema.meth "x" [] Vtype.TInt ];
           ]))

let test_schema_lookups () =
  let s = Soqm_core.Doc_schema.schema in
  check tbool "find Document" true (Option.is_some (Schema.find_class s "Document"));
  check tbool "property title" true
    (Option.is_some (Schema.property s ~cls:"Document" ~prop:"title"));
  check tbool "own method select_by_index" true
    (Option.is_some (Schema.own_method s ~cls:"Document" ~meth:"select_by_index"));
  check tbool "inst method contains_string" true
    (Option.is_some (Schema.inst_method s ~cls:"Paragraph" ~meth:"contains_string"));
  check (Alcotest.float 0.001) "declared cost"
    Soqm_core.Doc_schema.cost_contains_string
    (Schema.method_cost s ~cls:"Paragraph" ~meth:"contains_string");
  match Schema.inverse_of s ~cls:"Section" ~prop:"document" with
  | Some (c, p) ->
    check tstr "inverse class" "Document" c;
    check tstr "inverse prop" "sections" p
  | None -> Alcotest.fail "Section.document should declare an inverse"

(* ------------------------------------------------------------------ *)
(* Object store                                                        *)
(* ------------------------------------------------------------------ *)

let small_schema =
  Schema.make
    [
      Schema.cls "Doc"
        ~properties:
          [
            Schema.prop "title" Vtype.TString;
            Schema.prop "secs" (Vtype.TSet (Vtype.TObj "Sec"))
              ~inverse:("Sec", "doc");
          ];
      Schema.cls "Sec"
        ~properties:
          [ Schema.prop "doc" (Vtype.TObj "Doc") ~inverse:("Doc", "secs") ];
    ]

let test_store_create_extent () =
  let store = Object_store.create small_schema in
  let d1 = Object_store.create_object store ~cls:"Doc" [ ("title", Value.Str "a") ] in
  let d2 = Object_store.create_object store ~cls:"Doc" [ ("title", Value.Str "b") ] in
  check tint "extent size" 2 (Object_store.extent_size store "Doc");
  check tbool "extent contains both" true
    (List.mem d1 (Object_store.extent store "Doc")
    && List.mem d2 (Object_store.extent store "Doc"))

let test_store_typecheck_on_write () =
  let store = Object_store.create small_schema in
  let d = Object_store.create_object store ~cls:"Doc" [] in
  Alcotest.match_raises "ill-typed write"
    (function Invalid_argument _ -> true | _ -> false)
    (fun () -> Object_store.set_prop store d "title" (Value.Int 3))

let test_store_missing_prop_is_null () =
  let store = Object_store.create small_schema in
  let d = Object_store.create_object store ~cls:"Doc" [] in
  check value_testable "unset property" Value.Null
    (Object_store.get_prop store d "title")

let test_inverse_maintained_on_set () =
  let store = Object_store.create small_schema in
  let d = Object_store.create_object store ~cls:"Doc" [] in
  let s = Object_store.create_object store ~cls:"Sec" [ ("doc", Value.Obj d) ] in
  check value_testable "doc.secs contains sec"
    (Value.set [ Value.Obj s ])
    (Object_store.get_prop store d "secs")

let test_inverse_maintained_on_move () =
  let store = Object_store.create small_schema in
  let d1 = Object_store.create_object store ~cls:"Doc" [] in
  let d2 = Object_store.create_object store ~cls:"Doc" [] in
  let s = Object_store.create_object store ~cls:"Sec" [ ("doc", Value.Obj d1) ] in
  Object_store.set_prop store s "doc" (Value.Obj d2);
  check value_testable "old doc loses sec" (Value.Set [])
    (Object_store.get_prop store d1 "secs");
  check value_testable "new doc gains sec"
    (Value.set [ Value.Obj s ])
    (Object_store.get_prop store d2 "secs")

let test_inverse_maintained_on_delete () =
  let store = Object_store.create small_schema in
  let d = Object_store.create_object store ~cls:"Doc" [] in
  let s = Object_store.create_object store ~cls:"Sec" [ ("doc", Value.Obj d) ] in
  Object_store.delete_object store s;
  check value_testable "doc.secs emptied" (Value.Set [])
    (Object_store.get_prop store d "secs");
  check tbool "sec gone" false (Object_store.exists store s);
  check tint "extent shrunk" 0 (Object_store.extent_size store "Sec")

let test_counters_charged () =
  let store = Object_store.create small_schema in
  let d = Object_store.create_object store ~cls:"Doc" [ ("title", Value.Str "t") ] in
  let c = Object_store.counters store in
  Counters.reset c;
  ignore (Object_store.get_prop store d "title");
  check tint "one fetch" 1 (Counters.objects_fetched c);
  check tint "one read" 1 (Counters.property_reads c);
  ignore (Object_store.peek_prop store d "title");
  check tint "peek is free" 1 (Counters.objects_fetched c)

(* The parallel executor charges counters from several domains at once:
   hammer one counter set from two domains and check no increment is
   lost (the tallies are atomics, the method-call table is
   mutex-guarded). *)
let test_counters_domain_safe () =
  let c = Counters.create () in
  let rounds = 50_000 in
  let hammer () =
    for i = 1 to rounds do
      Counters.charge_tuple c;
      Counters.charge_tuples c 2;
      Counters.charge_object_fetch c;
      Counters.charge_index_probe c;
      Counters.charge_block c;
      Counters.charge_postings_touched c 1;
      if i mod 100 = 0 then
        Counters.charge_method_call c ~meth:"m" ~cost:1.0
    done
  in
  let other = Domain.spawn hammer in
  hammer ();
  Domain.join other;
  check tint "no lost tuple increments" (2 * 3 * rounds)
    (Counters.tuples_produced c);
  check tint "no lost fetches" (2 * rounds) (Counters.objects_fetched c);
  check tint "no lost probes" (2 * rounds) (Counters.index_probes c);
  check tint "no lost blocks" (2 * rounds) (Counters.blocks_produced c);
  check tint "no lost maintenance charges" (2 * rounds)
    (Counters.postings_touched c);
  check tint "no lost method calls" (2 * rounds / 100)
    (Counters.method_call_count c "m");
  (* reset semantics survive the rewrite: query counters zero, the
     maintenance side accumulates until reset_maintenance *)
  Counters.reset c;
  check tint "reset zeroes query counters" 0 (Counters.tuples_produced c);
  check tint "reset keeps maintenance counters" (2 * rounds)
    (Counters.postings_touched c);
  Counters.reset_maintenance c;
  check tint "reset_maintenance zeroes them" 0 (Counters.postings_touched c)

(* Server-style concurrency: N session domains, each issuing a mix of
   query-side charges (tuples, fetches, probes) and DML-side charges
   (postings, stats deltas, transaction lifecycle).  Every domain runs a
   different number of rounds so a lost increment cannot hide behind a
   symmetric miscount; the totals must equal the serial sum. *)
let test_counters_n_sessions () =
  let c = Counters.create () in
  let sessions = 6 in
  let rounds s = 5_000 + (1_000 * s) in
  let session s () =
    for i = 1 to rounds s do
      if i mod 3 = 0 then begin
        (* a DML round: txn lifecycle + maintenance charges *)
        Counters.charge_txn_begin c;
        if i mod 9 = 0 then begin
          Counters.charge_txn_conflict c;
          Counters.charge_txn_abort c
        end
        else Counters.charge_txn_commit c;
        Counters.charge_postings_touched c 2;
        Counters.charge_stats_delta c
      end
      else begin
        (* a query round: executor-side charges *)
        Counters.charge_block c;
        Counters.charge_tuples c 4;
        Counters.charge_object_fetch c;
        Counters.charge_index_probe c;
        if i mod 50 = 0 then Counters.charge_method_call c ~meth:"q" ~cost:0.5
      end
    done
  in
  let doms =
    List.init (sessions - 1) (fun s -> Domain.spawn (session (s + 1)))
  in
  session 0 ();
  List.iter Domain.join doms;
  (* the serial sums, computed the boring way *)
  let total = ref 0
  and dml = ref 0
  and conflicts = ref 0
  and queries = ref 0
  and methods_ = ref 0 in
  for s = 0 to sessions - 1 do
    for i = 1 to rounds s do
      incr total;
      if i mod 3 = 0 then begin
        incr dml;
        if i mod 9 = 0 then incr conflicts
      end
      else begin
        incr queries;
        if i mod 50 = 0 then incr methods_
      end
    done
  done;
  check tint "txn begins" !dml (Counters.txn_begins c);
  check tint "txn conflicts" !conflicts (Counters.txn_conflicts c);
  check tint "txn aborts" !conflicts (Counters.txn_aborts c);
  check tint "txn commits" (!dml - !conflicts) (Counters.txn_commits c);
  check tint "postings" (2 * !dml) (Counters.postings_touched c);
  check tint "stats deltas" !dml (Counters.stats_deltas c);
  check tint "blocks" !queries (Counters.blocks_produced c);
  check tint "tuples" (4 * !queries) (Counters.tuples_produced c);
  check tint "fetches" !queries (Counters.objects_fetched c);
  check tint "probes" !queries (Counters.index_probes c);
  check tint "method calls" !methods_ (Counters.method_call_count c "q")

(* ------------------------------------------------------------------ *)
(* Runtime                                                             *)
(* ------------------------------------------------------------------ *)

let doc_db () = Soqm_core.Db.create ~params:Soqm_core.Datagen.default ()

let test_runtime_path_method () =
  let db = doc_db () in
  let store = db.Soqm_core.Db.store in
  let p = List.hd (Object_store.extent store "Paragraph") in
  let via_method = Runtime.invoke store (Value.Obj p) "document" [] in
  let env = Runtime.env store in
  let via_path =
    Runtime.eval env
      Expr.(Prop (Prop (Const (Value.Obj p), "section"), "document"))
  in
  check value_testable "E1: document() == section.document" via_path via_method

let test_runtime_same_document () =
  let db = doc_db () in
  let store = db.Soqm_core.Db.store in
  let paras = Object_store.extent store "Paragraph" in
  let p1 = List.nth paras 0 and p2 = List.nth paras 1 in
  let same a b =
    Runtime.invoke store (Value.Obj a) "sameDocument" [ Value.Obj b ]
  in
  (* first two generated paragraphs share the first section *)
  check value_testable "same doc" (Value.Bool true) (same p1 p2);
  let last = List.nth paras (List.length paras - 1) in
  check value_testable "different docs" (Value.Bool false) (same p1 last)

let test_runtime_set_lifted_access () =
  let db = doc_db () in
  let store = db.Soqm_core.Db.store in
  let d = List.hd (Object_store.extent store "Document") in
  let env = Runtime.env store in
  (* D.sections.paragraphs = union of paragraph sets *)
  let v =
    Runtime.eval env
      Expr.(Prop (Prop (Const (Value.Obj d), "sections"), "paragraphs"))
  in
  let via_method = Runtime.invoke store (Value.Obj d) "paragraphs" [] in
  check value_testable "paragraphs() == sections.paragraphs" v via_method;
  let n = Soqm_core.Datagen.(default.sections_per_doc * default.paras_per_section) in
  check tint "fanout" n (List.length (Value.set_elements v))

let test_runtime_class_method () =
  let db = doc_db () in
  let store = db.Soqm_core.Db.store in
  let v =
    Runtime.invoke store (Value.Cls "Document") "select_by_index"
      [ Value.Str Soqm_core.Datagen.query_title ]
  in
  check tint "exactly one matching document" 1 (List.length (Value.set_elements v))

let test_runtime_contains_vs_retrieve () =
  (* E5 at the runtime level: the set retrieved by the class method equals
     the set of paragraphs whose contains_string is true. *)
  let db = doc_db () in
  let store = db.Soqm_core.Db.store in
  let word = Value.Str Soqm_core.Datagen.query_word in
  let by_scan =
    List.filter
      (fun p ->
        Value.truthy (Runtime.invoke store (Value.Obj p) "contains_string" [ word ]))
      (Object_store.extent store "Paragraph")
  in
  let by_index =
    Runtime.invoke store (Value.Cls "Paragraph") "retrieve_by_string" [ word ]
  in
  check value_testable "E5 holds on the generated corpus"
    (Value.set (List.map (fun p -> Value.Obj p) by_scan))
    by_index;
  check tbool "some paragraphs match" true (by_scan <> [])

let test_runtime_errors () =
  let db = doc_db () in
  let store = db.Soqm_core.Db.store in
  let p = List.hd (Object_store.extent store "Paragraph") in
  Alcotest.match_raises "unknown method"
    (function Runtime.Error _ -> true | _ -> false)
    (fun () -> ignore (Runtime.invoke store (Value.Obj p) "nope" []));
  Alcotest.match_raises "arity"
    (function Runtime.Error _ -> true | _ -> false)
    (fun () -> ignore (Runtime.invoke store (Value.Obj p) "contains_string" []));
  Alcotest.match_raises "unbound ref"
    (function Runtime.Error _ -> true | _ -> false)
    (fun () -> ignore (Runtime.eval (Runtime.env store) (Expr.Ref "x")))

let test_runtime_binops () =
  let v = Runtime.eval_binop Expr.Add (Value.Int 2) (Value.Int 3) in
  check value_testable "2+3" (Value.Int 5) v;
  check value_testable "mixed arith" (Value.Real 3.5)
    (Runtime.eval_binop Expr.Add (Value.Int 3) (Value.Real 0.5));
  check value_testable "concat" (Value.Str "ab")
    (Runtime.eval_binop Expr.Concat (Value.Str "a") (Value.Str "b"));
  check value_testable "null eq is false" (Value.Bool false)
    (Runtime.eval_binop Expr.Eq Value.Null (Value.Int 1));
  Alcotest.match_raises "div by zero"
    (function Runtime.Error _ -> true | _ -> false)
    (fun () -> ignore (Runtime.eval_binop Expr.Div (Value.Int 1) (Value.Int 0)))

let test_expr_helpers () =
  let e =
    Expr.(
      Binop
        ( And,
          Binop (Eq, Prop (Ref "p", "title"), Const (Value.Str "x")),
          Call (Ref "q", "contains_string", [ Const (Value.Str "y") ]) ))
  in
  check (Alcotest.list tstr) "refs" [ "p"; "q" ] (Expr.refs e);
  check (Alcotest.list tstr) "methods" [ "contains_string" ]
    (Expr.methods_called e);
  check tbool "boolean shape" true (Expr.is_boolean_shape e);
  let renamed = Expr.rename_ref ~old_ref:"p" ~new_ref:"z" e in
  check (Alcotest.list tstr) "renamed refs" [ "q"; "z" ] (Expr.refs renamed)

(* ------------------------------------------------------------------ *)
(* Property tests                                                      *)
(* ------------------------------------------------------------------ *)

let value_gen =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
      let base =
        oneof
          [
            return Value.Null;
            map (fun b -> Value.Bool b) bool;
            map (fun i -> Value.Int i) (int_range (-1000) 1000);
            map (fun f -> Value.Real (Float.of_int f /. 8.)) (int_range (-800) 800);
            map (fun s -> Value.Str s) (string_size ~gen:printable (int_range 0 8));
            map2
              (fun c i -> Value.Obj (Oid.make ~cls:(if c then "A" else "B") ~id:i))
              bool (int_range 0 50);
          ]
      in
      if n <= 1 then base
      else
        oneof
          [
            base;
            map Value.set (list_size (int_range 0 4) (self (n / 2)));
            map
              (fun vs ->
                Value.tuple (List.mapi (fun i v -> (Printf.sprintf "f%d" i, v)) vs))
              (list_size (int_range 0 4) (self (n / 2)));
          ])

let prop_compare_total =
  QCheck2.Test.make ~count:300 ~name:"Value.compare is a total order"
    QCheck2.Gen.(triple value_gen value_gen value_gen)
    (fun (a, b, c) ->
      let sign x = Stdlib.compare x 0 in
      (* antisymmetry *)
      sign (Value.compare a b) = -sign (Value.compare b a)
      (* transitivity on the <= relation *)
      && (not (Value.compare a b <= 0 && Value.compare b c <= 0)
         || Value.compare a c <= 0))

let prop_set_idempotent =
  QCheck2.Test.make ~count:300 ~name:"set construction is idempotent"
    QCheck2.Gen.(list_size (int_range 0 10) value_gen)
    (fun vs ->
      let s = Value.set vs in
      Value.equal s (Value.set (Value.set_elements s)))

let prop_union_commutative =
  QCheck2.Test.make ~count:300 ~name:"set union is commutative & associative"
    QCheck2.Gen.(
      triple
        (list_size (int_range 0 8) value_gen)
        (list_size (int_range 0 8) value_gen)
        (list_size (int_range 0 8) value_gen))
    (fun (a, b, c) ->
      let sa = Value.set a and sb = Value.set b and sc = Value.set c in
      Value.equal (Value.set_union sa sb) (Value.set_union sb sa)
      && Value.equal
           (Value.set_union sa (Value.set_union sb sc))
           (Value.set_union (Value.set_union sa sb) sc))

let prop_inter_subset =
  QCheck2.Test.make ~count:300 ~name:"intersection is a subset of both"
    QCheck2.Gen.(
      pair (list_size (int_range 0 8) value_gen) (list_size (int_range 0 8) value_gen))
    (fun (a, b) ->
      let sa = Value.set a and sb = Value.set b in
      let i = Value.set_inter sa sb in
      Value.is_subset i sa && Value.is_subset i sb)

let prop_typecheck_of_value =
  QCheck2.Test.make ~count:300 ~name:"of_value produces an inhabited type"
    value_gen (fun v ->
      match Vtype.of_value v with None -> true | Some t -> Vtype.check t v)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_compare_total;
      prop_set_idempotent;
      prop_union_commutative;
      prop_inter_subset;
      prop_typecheck_of_value;
    ]

let () =
  Alcotest.run "vml"
    [
      ( "values",
        [
          Alcotest.test_case "set canonical" `Quick test_set_canonical;
          Alcotest.test_case "tuple canonical" `Quick test_tuple_canonical;
          Alcotest.test_case "tuple duplicate label" `Quick test_tuple_duplicate_label;
          Alcotest.test_case "is_in" `Quick test_is_in;
          Alcotest.test_case "is_subset" `Quick test_is_subset;
          Alcotest.test_case "set ops" `Quick test_set_ops;
          Alcotest.test_case "tuple get" `Quick test_tuple_get;
          Alcotest.test_case "order total on samples" `Quick test_value_order_total;
        ] );
      ( "types",
        [
          Alcotest.test_case "primitives" `Quick test_check_primitives;
          Alcotest.test_case "objects" `Quick test_check_obj;
          Alcotest.test_case "complex" `Quick test_check_complex;
          Alcotest.test_case "subtype" `Quick test_subtype;
          Alcotest.test_case "of_value" `Quick test_of_value;
        ] );
      ( "schema",
        [
          Alcotest.test_case "duplicate class" `Quick test_schema_duplicate_class;
          Alcotest.test_case "unknown class in type" `Quick
            test_schema_unknown_class_in_type;
          Alcotest.test_case "inverse must be mutual" `Quick
            test_schema_inverse_must_be_mutual;
          Alcotest.test_case "property/method clash" `Quick
            test_schema_property_method_clash;
          Alcotest.test_case "doc schema lookups" `Quick test_schema_lookups;
        ] );
      ( "store",
        [
          Alcotest.test_case "create & extent" `Quick test_store_create_extent;
          Alcotest.test_case "typecheck on write" `Quick test_store_typecheck_on_write;
          Alcotest.test_case "missing prop is null" `Quick
            test_store_missing_prop_is_null;
          Alcotest.test_case "inverse on set" `Quick test_inverse_maintained_on_set;
          Alcotest.test_case "inverse on move" `Quick test_inverse_maintained_on_move;
          Alcotest.test_case "inverse on delete" `Quick
            test_inverse_maintained_on_delete;
          Alcotest.test_case "counters charged" `Quick test_counters_charged;
          Alcotest.test_case "counters domain-safe" `Quick
            test_counters_domain_safe;
          Alcotest.test_case "counters across N sessions" `Quick
            test_counters_n_sessions;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "path method E1" `Quick test_runtime_path_method;
          Alcotest.test_case "sameDocument" `Quick test_runtime_same_document;
          Alcotest.test_case "set-lifted access" `Quick test_runtime_set_lifted_access;
          Alcotest.test_case "class method" `Quick test_runtime_class_method;
          Alcotest.test_case "contains vs retrieve (E5)" `Quick
            test_runtime_contains_vs_retrieve;
          Alcotest.test_case "dynamic errors" `Quick test_runtime_errors;
          Alcotest.test_case "binops" `Quick test_runtime_binops;
          Alcotest.test_case "expr helpers" `Quick test_expr_helpers;
        ] );
      ("properties", qcheck_tests);
    ]
