(* Tests for the physical algebra: iterator execution against the logical
   evaluator, operator behaviour, memoization of tuple-independent
   operator chains, and the cost model's orderings. *)

open Soqm_vml
open Soqm_algebra
open Soqm_physical
module F = Soqm_testlib.Fixtures

let check = Alcotest.check

let db = lazy (F.tiny_db ())
let store () = (Lazy.force db).Soqm_core.Db.store
let stats () = (Lazy.force db).Soqm_core.Db.stats

let ctx () = Soqm_core.Engine.exec_ctx (Lazy.force db)

let run_phys p = Exec.run (ctx ()) p
let run_interp p = Exec.Interpreted.run (ctx ()) p
let run_logical g = Eval.run (store ()) g

(* A restricted term executed via its default physical implementation
   must agree with the logical evaluator. *)
let phys_agrees name (g : General.t) () =
  let r = Translate.of_general g in
  let plan = Plan.default_implementation r in
  check F.relation name (run_logical g) (run_phys plan)

(* ------------------------------------------------------------------ *)
(* Operator-level tests                                                *)
(* ------------------------------------------------------------------ *)

let test_full_scan () =
  let r = run_phys (Plan.FullScan ("p", "Paragraph")) in
  check Alcotest.int "cardinality"
    (Object_store.extent_size (store ()) "Paragraph")
    (Relation.cardinality r)

let test_index_scan () =
  let r =
    run_phys
      (Plan.IndexScan ("d", "Document", "title", Value.Str "Query Optimization"))
  in
  check Alcotest.int "one document" 1 (Relation.cardinality r);
  Alcotest.match_raises "missing index"
    (function Exec.Error _ -> true | _ -> false)
    (fun () ->
      ignore (run_phys (Plan.IndexScan ("s", "Section", "title", Value.Str "x"))))

let test_method_scan () =
  let r =
    run_phys
      (Plan.MethodScan
         ("p", "Paragraph", "retrieve_by_string", [ Value.Str "Implementation" ]))
  in
  let logical =
    run_logical
      (General.Select
         ( Expr.(Call (Ref "p", "contains_string", [ Const (Value.Str "Implementation") ])),
           General.Get ("p", "Paragraph") ))
  in
  check F.relation "method scan = filtered scan" logical r

let test_hash_join_vs_nested_loop () =
  let left = Plan.MapProp ("d2", "document", "s", Plan.FullScan ("s", "Section")) in
  let right = Plan.FullScan ("d", "Document") in
  let hj = Plan.HashJoin ("d2", "d", left, right) in
  let nl = Plan.NestedLoop (Some (Restricted.CEq, "d2", "d"), left, right) in
  check F.relation "hash join = nested loop" (run_phys nl) (run_phys hj)

let test_natural_join_intersection () =
  let lo = Plan.Filter (Restricted.CLe, Restricted.ORef "n", Restricted.OConst (Value.Int 0),
                        Plan.MapProp ("n", "number", "s", Plan.FullScan ("s", "Section"))) in
  let hi = Plan.Filter (Restricted.CGe, Restricted.ORef "n", Restricted.OConst (Value.Int 0),
                        Plan.MapProp ("n", "number", "s", Plan.FullScan ("s", "Section"))) in
  let r = run_phys (Plan.Project ([ "s" ], Plan.NaturalJoin (lo, hi))) in
  let expected =
    run_logical
      (General.Select
         ( Expr.(Binop (Eq, Prop (Ref "s", "number"), Const (Value.Int 0))),
           General.Get ("s", "Section") ))
  in
  check F.relation "natural join as intersection" expected r

let test_union_diff () =
  let lo = Plan.Filter (Restricted.CLe, Restricted.ORef "n", Restricted.OConst (Value.Int 0),
                        Plan.MapProp ("n", "number", "s", Plan.FullScan ("s", "Section"))) in
  let all = Plan.MapProp ("n", "number", "s", Plan.FullScan ("s", "Section")) in
  check F.relation "union with subset" (run_phys all) (run_phys (Plan.Union (lo, all)));
  let diff = run_phys (Plan.Project ([ "s" ], Plan.Diff (all, lo))) in
  let expected =
    run_logical
      (General.Select
         ( Expr.(Binop (Gt, Prop (Ref "s", "number"), Const (Value.Int 0))),
           General.Get ("s", "Section") ))
  in
  check F.relation "diff" expected diff

let test_flat_prop () =
  let r = run_phys (Plan.FlatProp ("s", "sections", "d", Plan.FullScan ("d", "Document"))) in
  check Alcotest.int "one tuple per (doc, section)"
    (Object_store.extent_size (store ()) "Section")
    (Relation.cardinality r)

let test_project_dedups () =
  let r =
    run_phys
      (Plan.Project ([ "a" ], Plan.MapProp ("a", "author", "d", Plan.FullScan ("d", "Document"))))
  in
  check Alcotest.bool "fewer authors than documents" true
    (Relation.cardinality r <= min 7 (Object_store.extent_size (store ()) "Document"))

(* The distinctness analysis behind the projection fast path: a
   projection keeping the scan binding (a key) provably needs no dedup;
   one dropping it (authors repeat) must keep the dedup table — and in
   both cases every executor agrees with the interpreted oracle. *)
let test_keyed_projection () =
  let keyed =
    Plan.Project
      ([ "d"; "a" ],
        Plan.MapProp ("a", "author", "d", Plan.FullScan ("d", "Document")))
  in
  let unkeyed =
    Plan.Project
      ([ "a" ], Plan.MapProp ("a", "author", "d", Plan.FullScan ("d", "Document")))
  in
  let analysis plan =
    match (Exec.compile ~fuse:false (ctx ()) plan).Plan.cop with
    | Plan.CProject (srcs, input) -> Plan.keyed_projection srcs input
    | _ -> Alcotest.fail "expected an unfused projection root"
  in
  check Alcotest.bool "scan binding kept -> keyed" true (analysis keyed);
  check Alcotest.bool "scan binding dropped -> not keyed" false
    (analysis unkeyed);
  let fkeyed plan =
    match (Exec.compile (ctx ()) plan).Plan.cop with
    | Plan.CFused (f, _) -> f.Plan.fkeyed
    | _ -> Alcotest.fail "expected a fused chain"
  in
  check Alcotest.bool "fused chain marks keyed" true (fkeyed keyed);
  check Alcotest.bool "fused chain keeps dedup" false (fkeyed unkeyed);
  List.iter
    (fun plan ->
      let reference = Exec.Interpreted.run (ctx ()) plan in
      check F.relation "serial fused = interpreted" reference
        (Exec.run (ctx ()) plan);
      check F.relation "serial unfused = interpreted" reference
        (Exec.run_compiled (ctx ()) (Exec.compile ~fuse:false (ctx ()) plan));
      check F.relation "parallel = interpreted" reference
        (Exec.run ~jobs:3 ~clamp:false (ctx ()) plan))
    [ keyed; unkeyed ]

(* ------------------------------------------------------------------ *)
(* Memoization of tuple-independent chains                             *)
(* ------------------------------------------------------------------ *)

let test_const_chain_memoized () =
  let d = Lazy.force db in
  let plan =
    (* select_by_index called with constant args over a full paragraph
       scan: must be invoked exactly once despite many input tuples *)
    Plan.MapMeth
      ( "ds",
        "select_by_index",
        Restricted.RClass "Document",
        [ Restricted.OConst (Value.Str "Query Optimization") ],
        Plan.FullScan ("p", "Paragraph") )
  in
  let _, counters = Soqm_core.Db.with_fresh_counters d (fun () -> run_phys plan) in
  check Alcotest.int "select_by_index invoked once" 1
    (Counters.method_call_count counters "Document->select_by_index")

let test_repeated_receiver_memoized () =
  let d = Lazy.force db in
  (* section.document per paragraph: distinct sections, not paragraphs,
     drive the number of property evaluations (memo on receiver value) *)
  let plan =
    Plan.MapProp ("doc", "document", "s",
                  Plan.MapProp ("s", "section", "p", Plan.FullScan ("p", "Paragraph")))
  in
  let _, counters = Soqm_core.Db.with_fresh_counters d (fun () -> run_phys plan) in
  let n_paras = Object_store.extent_size d.Soqm_core.Db.store "Paragraph" in
  let n_secs = Object_store.extent_size d.Soqm_core.Db.store "Section" in
  (* p.section: one read per paragraph; s.document: one per distinct section *)
  check Alcotest.int "property reads bounded by memo" (n_paras + n_secs)
    (Counters.property_reads counters)

(* ------------------------------------------------------------------ *)
(* Iterator protocol                                                   *)
(* ------------------------------------------------------------------ *)

let test_iterator_streams () =
  let iter = Exec.Interpreted.open_plan (ctx ()) (Plan.FullScan ("p", "Paragraph")) in
  let first = iter.Exec.next () in
  check Alcotest.bool "first tuple" true (Option.is_some first);
  let rec drain n =
    match iter.Exec.next () with Some _ -> drain (n + 1) | None -> n
  in
  let rest = drain 0 in
  check Alcotest.int "all tuples seen"
    (Object_store.extent_size (store ()) "Paragraph")
    (1 + rest);
  check Alcotest.bool "exhausted stays exhausted" true (iter.Exec.next () = None)

let test_iterator_close_stops () =
  let iter = Exec.Interpreted.open_plan (ctx ()) (Plan.FullScan ("p", "Paragraph")) in
  ignore (iter.Exec.next ());
  iter.Exec.close ();
  check Alcotest.bool "closed iterator yields nothing" true (iter.Exec.next () = None)

let test_filter_streams_lazily () =
  (* a filter pulls from its input only as far as needed *)
  let d = Lazy.force db in
  let plan =
    Plan.Filter
      ( Restricted.CEq,
        Restricted.ORef "n",
        Restricted.OConst (Value.Int 0),
        Plan.MapProp ("n", "number", "p", Plan.FullScan ("p", "Paragraph")) )
  in
  let _, counters =
    Soqm_core.Db.with_fresh_counters d (fun () ->
        let iter = Exec.Interpreted.open_plan (ctx ()) plan in
        let r = iter.Exec.next () in
        iter.Exec.close ();
        r)
  in
  (* scanning charges the whole extent up front (materialized source),
     but property reads happen per pulled tuple: far fewer than the
     extent when we stop after the first match *)
  check Alcotest.bool "did not evaluate the whole map" true
    (Counters.property_reads counters
    < Object_store.extent_size d.Soqm_core.Db.store "Paragraph")

(* ------------------------------------------------------------------ *)
(* Failure injection                                                   *)
(* ------------------------------------------------------------------ *)

let test_stale_index_dangling_oid () =
  (* deleting an object in an UNMAINTAINED database (maintenance off)
     leaves a dangling OID in the text index; dereferencing it is a clean
     dynamic error, and Db.refresh repairs the access path.  With
     maintenance attached (the default) the delete would have removed the
     postings — see test/maintenance. *)
  let d = Soqm_core.Db.create ~params:F.tiny_params ~maintain:false () in
  let victim_store = d.Soqm_core.Db.store in
  let victim_ctx = Soqm_core.Engine.exec_ctx d in
  let scan =
    Plan.MethodScan
      ("p", "Paragraph", "retrieve_by_string", [ Value.Str "Implementation" ])
  in
  let with_content = Plan.MapProp ("c", "content", "p", scan) in
  let victim =
    match Relation.tuples (Exec.run victim_ctx scan) with
    | ((_, Value.Obj oid) :: _) :: _ -> oid
    | _ -> Alcotest.fail "expected a hit"
  in
  Object_store.delete_object victim_store victim;
  Alcotest.match_raises "dangling OID surfaces as an error"
    (function Exec.Error _ -> true | _ -> false)
    (fun () -> ignore (Exec.run victim_ctx with_content));
  Soqm_core.Db.refresh d;
  let r = Exec.run victim_ctx with_content in
  check Alcotest.bool "refresh repairs the index" true
    (not
       (List.exists
          (fun tup -> Relation.field tup "p" = Value.Obj victim)
          (Relation.tuples r)))

let test_unbound_ref_is_error () =
  Alcotest.match_raises "unbound reference"
    (function Exec.Error _ -> true | _ -> false)
    (fun () ->
      ignore
        (run_phys
           (Plan.Filter
              ( Restricted.CEq,
                Restricted.ORef "nope",
                Restricted.OConst (Value.Int 1),
                Plan.FullScan ("p", "Paragraph") ))))

let test_param_operand_is_error () =
  Alcotest.match_raises "unresolved parameter"
    (function Exec.Error _ -> true | _ -> false)
    (fun () ->
      ignore
        (run_phys
           (Plan.Filter
              ( Restricted.CEq,
                Restricted.OParam "s",
                Restricted.OConst (Value.Int 1),
                Plan.FullScan ("p", "Paragraph") ))))

(* ------------------------------------------------------------------ *)
(* Agreement with the logical evaluator                                *)
(* ------------------------------------------------------------------ *)

let q_general =
  General.Select
    ( Expr.(
        Binop
          ( And,
            Call (Ref "p", "contains_string", [ Const (Value.Str "Implementation") ]),
            Binop
              ( Eq,
                Prop (Call (Ref "p", "document", []), "title"),
                Const (Value.Str "Query Optimization") ) )),
      General.Get ("p", "Paragraph") )

let test_exec_q = phys_agrees "query Q" q_general

let test_exec_dependent =
  phys_agrees "dependent flat"
    (General.Project
       ( [ "d" ],
         General.Select
           ( Expr.(Call (Ref "p", "contains_string", [ Const (Value.Str "Implementation") ])),
             General.Flat
               ("p", Expr.(Call (Ref "d", "paragraphs", [])), General.Get ("d", "Document"))
           ) ))

let test_exec_join =
  phys_agrees "theta join"
    (General.Join
       ( Expr.(Binop (Eq, Prop (Ref "s", "document"), Ref "d")),
         General.Get ("s", "Section"),
         General.Get ("d", "Document") ))

let prop_exec_agrees =
  QCheck2.Test.make ~count:40
    ~name:"default physical implementation agrees with logical evaluator"
    Soqm_testlib.Gen.term_gen
    (fun g ->
      match General.well_formed g with
      | Error _ -> QCheck2.assume_fail ()
      | Ok () ->
        let plan = Plan.default_implementation (Translate.of_general g) in
        Relation.equal (run_logical g) (run_phys plan))

(* Three-way parity on random plans: the slot-compiled batch executor,
   the tuple-at-a-time interpreter and the logical evaluator must agree
   on every well-formed term. *)
let prop_compiled_parity =
  QCheck2.Test.make ~count:40
    ~name:"compiled batch executor = interpreted = logical evaluator"
    Soqm_testlib.Gen.term_gen
    (fun g ->
      match General.well_formed g with
      | Error _ -> QCheck2.assume_fail ()
      | Ok () ->
        let plan = Plan.default_implementation (Translate.of_general g) in
        let reference = run_logical g in
        Relation.equal reference (run_interp plan)
        && Relation.equal reference (run_phys plan))

(* Fusion parity: fused select/map/project kernels must be row-for-row
   identical to the unfused compiled pipeline and the tuple interpreter,
   serially and across worker counts. *)
let prop_fusion_parity =
  QCheck2.Test.make ~count:40
    ~name:"fused kernels = unfused compiled = interpreted (jobs in {1,2,3,4})"
    Soqm_testlib.Gen.term_gen
    (fun g ->
      match General.well_formed g with
      | Error _ -> QCheck2.assume_fail ()
      | Ok () ->
        let plan = Plan.default_implementation (Translate.of_general g) in
        let fused = Exec.compile (ctx ()) plan in
        let unfused = Exec.compile ~fuse:false (ctx ()) plan in
        let reference = Exec.run_compiled (ctx ()) unfused in
        Relation.equal reference (run_interp plan)
        && List.for_all
             (fun jobs ->
               Relation.equal reference
                 (Exec.run_compiled ~jobs ~clamp:false (ctx ()) fused))
             [ 1; 2; 3; 4 ])

(* ------------------------------------------------------------------ *)
(* Batch executor: compilation, Null-key joins, block accounting       *)
(* ------------------------------------------------------------------ *)

(* Joins checked against the list-based Naive oracle on both executors. *)
let test_joins_match_naive_oracle () =
  let lo =
    Plan.Filter (Restricted.CLe, Restricted.ORef "n", Restricted.OConst (Value.Int 0),
                 Plan.MapProp ("n", "number", "s", Plan.FullScan ("s", "Section")))
  in
  let hi =
    Plan.Filter (Restricted.CGe, Restricted.ORef "n", Restricted.OConst (Value.Int 0),
                 Plan.MapProp ("n", "number", "s", Plan.FullScan ("s", "Section")))
  in
  let r_lo = run_phys lo and r_hi = run_phys hi in
  check F.relation "natural join = naive"
    (Naive.natural_join r_lo r_hi)
    (run_phys (Plan.NaturalJoin (lo, hi)));
  check F.relation "union = naive" (Naive.union r_lo r_hi)
    (run_phys (Plan.Union (lo, hi)));
  check F.relation "diff = naive" (Naive.diff r_lo r_hi)
    (run_phys (Plan.Diff (lo, hi)));
  check F.relation "interpreted natural join = naive"
    (Naive.natural_join r_lo r_hi)
    (run_interp (Plan.NaturalJoin (lo, hi)))

(* DESIGN.md §7: NULL == NULL is FALSE, so equi-joins (hash join and
   CEq nested loop) never match Null keys — on either executor — while
   the natural join's structural matching does unify shared Null
   columns. *)
let test_null_keys_pin () =
  let with_null a base =
    Plan.MapOp (a, Restricted.OpIdent, [ Restricted.OConst Value.Null ], base)
  in
  let left = with_null "k1" (Plan.FullScan ("d", "Document")) in
  let right = with_null "k2" (Plan.FullScan ("e", "Document")) in
  let hj = Plan.HashJoin ("k1", "k2", left, right) in
  let nl = Plan.NestedLoop (Some (Restricted.CEq, "k1", "k2"), left, right) in
  check Alcotest.int "hash join skips Null keys" 0 (Relation.cardinality (run_phys hj));
  check Alcotest.int "interpreted hash join agrees" 0
    (Relation.cardinality (run_interp hj));
  check Alcotest.int "CEq nested loop agrees" 0 (Relation.cardinality (run_phys nl));
  check Alcotest.int "interpreted nested loop agrees" 0
    (Relation.cardinality (run_interp nl));
  (* shared column [k], Null on both sides: intersection keeps them *)
  let l = with_null "k" (Plan.FullScan ("d", "Document")) in
  let nj = Plan.NaturalJoin (l, l) in
  let n_docs = Object_store.extent_size (store ()) "Document" in
  check Alcotest.int "natural join matches Nulls structurally" n_docs
    (Relation.cardinality (run_phys nj));
  check F.relation "both executors agree on Null natural join"
    (run_interp nj) (run_phys nj)

(* DESIGN.md §7 Null semantics inside a fused kernel: comparisons with
   Null registers are FALSE, and the fused projection dedup treats Null
   columns structurally — both exactly as the unfused operators do. *)
let test_fused_null_semantics () =
  let with_null a base =
    Plan.MapOp (a, Restricted.OpIdent, [ Restricted.OConst Value.Null ], base)
  in
  let filt =
    Plan.Filter
      ( Restricted.CEq,
        Restricted.ORef "k",
        Restricted.OConst Value.Null,
        with_null "k" (Plan.FullScan ("d", "Document")) )
  in
  let fused = Exec.compile (ctx ()) filt in
  check Alcotest.bool "filter chain fused" true (Plan.fused_count fused > 0);
  check Alcotest.int "NULL == NULL is FALSE inside the kernel" 0
    (Relation.cardinality (Exec.run_compiled (ctx ()) fused));
  let proj =
    Plan.Project ([ "k" ], with_null "k" (Plan.FullScan ("d", "Document")))
  in
  let pf = Exec.compile (ctx ()) proj in
  let pu = Exec.compile ~fuse:false (ctx ()) proj in
  check Alcotest.bool "projection fused" true (Plan.fused_count pf > 0);
  check F.relation "fused dedup = unfused dedup"
    (Exec.run_compiled (ctx ()) pu)
    (Exec.run_compiled (ctx ()) pf);
  check Alcotest.int "Null rows dedup to one" 1
    (Relation.cardinality (Exec.run_compiled (ctx ()) pf));
  List.iter
    (fun jobs ->
      check F.relation
        (Printf.sprintf "parallel fused dedup agrees (jobs=%d)" jobs)
        (Exec.run_compiled (ctx ()) pf)
        (Exec.run_compiled ~jobs ~clamp:false (ctx ()) pf))
    [ 2; 3; 4 ]

let test_block_accounting () =
  let d = Lazy.force db in
  let plan = Plan.FullScan ("p", "Paragraph") in
  let _, counters = Soqm_core.Db.with_fresh_counters d (fun () -> run_phys plan) in
  let n = Object_store.extent_size (store ()) "Paragraph" in
  let expected = (n + Exec.block_size - 1) / Exec.block_size in
  check Alcotest.int "one block per block_size rows" expected
    (Counters.blocks_produced counters);
  check Alcotest.int "well-typed plan has no slot misses" 0
    (Counters.slot_misses counters);
  let _, interp_counters =
    Soqm_core.Db.with_fresh_counters d (fun () -> run_interp plan)
  in
  check Alcotest.int "interpreted path emits no blocks" 0
    (Counters.blocks_produced interp_counters)

let test_slot_miss_charged () =
  let d = Lazy.force db in
  let bad =
    Plan.Filter
      ( Restricted.CEq,
        Restricted.ORef "nope",
        Restricted.OConst (Value.Int 1),
        Plan.FullScan ("p", "Paragraph") )
  in
  let _, counters =
    Soqm_core.Db.with_fresh_counters d (fun () ->
        try ignore (run_phys bad) with Exec.Error _ -> ())
  in
  check Alcotest.int "failed compilation charges a slot miss" 1
    (Counters.slot_misses counters)

let test_analyze_stats () =
  let plan =
    Plan.Project
      ([ "a" ], Plan.MapProp ("a", "author", "d", Plan.FullScan ("d", "Document")))
  in
  (* project + map fuse into one kernel over the scan *)
  let compiled = Exec.compile (ctx ()) plan in
  check Alcotest.int "fused: two operators" 2 (Plan.node_count compiled);
  check Alcotest.int "fused: root fuses map + project" 2
    (Plan.fused_count compiled);
  let stats = Exec.make_stats compiled in
  let r = Exec.run_compiled ~stats (ctx ()) compiled in
  (* node 0 is the root (preorder ids): its actual rows are the result *)
  check Alcotest.int "root actual rows = result cardinality"
    (Relation.cardinality r) stats.Exec.node_rows.(0);
  let n_docs = Object_store.extent_size (store ()) "Document" in
  check Alcotest.int "scan actual rows = extent" n_docs
    stats.Exec.node_rows.(1);
  (* the unfused tree keeps one node per operator and the same result *)
  let unfused = Exec.compile ~fuse:false (ctx ()) plan in
  check Alcotest.int "unfused: three operators" 3 (Plan.node_count unfused);
  let ustats = Exec.make_stats unfused in
  let ur = Exec.run_compiled ~stats:ustats (ctx ()) unfused in
  check Alcotest.bool "fused == unfused result" true (Relation.equal r ur);
  check Alcotest.int "unfused scan actual rows = extent" n_docs
    ustats.Exec.node_rows.(2)

let test_compile_layouts () =
  let plan =
    Plan.MapProp ("d2", "document", "s", Plan.FullScan ("s", "Section"))
  in
  let compiled = Exec.compile (ctx ()) plan in
  check (Alcotest.list Alcotest.string) "layout is sorted refs"
    [ "d2"; "s" ]
    (Relation.Layout.names compiled.Plan.layout);
  Alcotest.match_raises "union layout mismatch is a compile error"
    (function Plan.Compile_error _ -> true | _ -> false)
    (fun () ->
      ignore
        (Plan.compile
           (Plan.Union (Plan.FullScan ("a", "Document"), Plan.FullScan ("b", "Document")))))

(* ------------------------------------------------------------------ *)
(* Morsel-driven parallel execution                                    *)
(* ------------------------------------------------------------------ *)

let test_pool_protocol () =
  let pool = Pool.create () in
  check Alcotest.int "no helpers before first run" 0 (Pool.helpers pool);
  let hits = Array.make 8 0 in
  Pool.run pool ~jobs:8 (fun w -> hits.(w) <- hits.(w) + 1);
  Array.iteri
    (fun w h -> check Alcotest.int (Printf.sprintf "index %d ran once" w) 1 h)
    hits;
  check Alcotest.bool "helpers were spawned" true (Pool.helpers pool > 0);
  (* a worker exception is re-raised on the caller, after the join *)
  Alcotest.match_raises "worker failure propagates"
    (function Failure msg -> String.equal msg "boom" | _ -> false)
    (fun () -> Pool.run pool ~jobs:4 (fun w -> if w = 3 then failwith "boom"));
  (* the pool is reusable after a failed run *)
  let n = Atomic.make 0 in
  Pool.run pool ~jobs:4 (fun _ -> Atomic.incr n);
  check Alcotest.int "reusable after failure" 4 (Atomic.get n);
  Pool.shutdown pool;
  check Alcotest.int "shutdown joins all helpers" 0 (Pool.helpers pool)

(* jobs = 1 must be exactly the serial executor: no pool machinery, no
   domain ever spawned. *)
let test_serial_spawns_no_domains () =
  let plan =
    Plan.Project
      ([ "a" ], Plan.MapProp ("a", "author", "d", Plan.FullScan ("d", "Document")))
  in
  let before = Pool.total_spawned () in
  ignore (Exec.run ~jobs:1 (ctx ()) plan);
  ignore (Exec.run (ctx ()) plan);
  check Alcotest.int "jobs=1 spawns no helper domains" before
    (Pool.total_spawned ())

(* Parallel execution must equal the serial compiled executor on random
   well-formed plans, for several worker counts — including
   oversubscription (8 workers on any host, [recommended_domain_count]
   is 1 in CI). *)
let prop_parallel_parity =
  QCheck2.Test.make ~count:30
    ~name:"parallel executor (jobs in {2,3,4}) = serial compiled"
    Soqm_testlib.Gen.term_gen
    (fun g ->
      match General.well_formed g with
      | Error _ -> QCheck2.assume_fail ()
      | Ok () ->
        let plan = Plan.default_implementation (Translate.of_general g) in
        let serial = run_phys plan in
        List.for_all
          (fun jobs ->
            Relation.equal serial (Exec.run ~jobs ~clamp:false (ctx ()) plan))
          [ 2; 3; 4 ])

let test_parallel_oversubscribed () =
  let plan =
    Plan.HashJoin
      ( "d2", "d",
        Plan.MapProp ("d2", "document", "s", Plan.FullScan ("s", "Section")),
        Plan.FullScan ("d", "Document") )
  in
  check F.relation "jobs=8 (> cores) matches serial" (run_phys plan)
    (Exec.run ~jobs:8 ~clamp:false (ctx ()) plan)

(* The partitioned parallel joins must keep DESIGN.md §7 Null-key
   semantics: equi-joins drop Null keys while bucketing, natural joins
   match them structurally. *)
let test_parallel_null_keys () =
  let with_null a base =
    Plan.MapOp (a, Restricted.OpIdent, [ Restricted.OConst Value.Null ], base)
  in
  let left = with_null "k1" (Plan.FullScan ("d", "Document")) in
  let right = with_null "k2" (Plan.FullScan ("e", "Document")) in
  let hj = Plan.HashJoin ("k1", "k2", left, right) in
  check Alcotest.int "parallel hash join skips Null keys" 0
    (Relation.cardinality (Exec.run ~jobs:3 ~clamp:false (ctx ()) hj));
  let l = with_null "k" (Plan.FullScan ("d", "Document")) in
  let nj = Plan.NaturalJoin (l, l) in
  let n_docs = Object_store.extent_size (store ()) "Document" in
  check Alcotest.int "parallel natural join matches Nulls structurally"
    n_docs
    (Relation.cardinality (Exec.run ~jobs:3 ~clamp:false (ctx ()) nj));
  check F.relation "parallel = serial on Null natural join" (run_phys nj)
    (Exec.run ~jobs:3 ~clamp:false (ctx ()) nj)

(* Stronger than set equality: the materialized parallel output must be
   row-for-row identical to the serial executor's block stream (morsel
   results concatenate in morsel order, partitioned joins preserve
   build-input match order). *)
let test_parallel_row_order () =
  let plans =
    [
      Plan.FullScan ("p", "Paragraph");
      Plan.HashJoin
        ( "d2", "d",
          Plan.MapProp ("d2", "document", "s", Plan.FullScan ("s", "Section")),
          Plan.FullScan ("d", "Document") );
      Plan.NestedLoop
        (None, Plan.FullScan ("p", "Paragraph"), Plan.FullScan ("s", "Section"));
      Plan.Union
        ( Plan.FullScan ("p", "Paragraph"),
          Plan.FullScan ("p", "Paragraph") );
      Plan.FlatProp ("s", "sections", "d", Plan.FullScan ("d", "Document"));
    ]
  in
  List.iter
    (fun plan ->
      let compiled = Exec.compile (ctx ()) plan in
      let serial =
        Array.concat (Exec.drain_blocks (Exec.open_compiled (ctx ()) compiled))
      in
      List.iter
        (fun jobs ->
          let par = Exec.eval_parallel (ctx ()) ~jobs compiled in
          check Alcotest.int "same row count" (Array.length serial)
            (Array.length par);
          Array.iteri
            (fun i row ->
              if not (Relation.Row.equal row par.(i)) then
                Alcotest.failf "row %d differs under jobs=%d" i jobs)
            serial)
        [ 2; 4 ])
    plans

let test_parallel_analyze_stats () =
  let d = Lazy.force db in
  let plan =
    Plan.Project
      ([ "a" ], Plan.MapProp ("a", "author", "d", Plan.FullScan ("d", "Document")))
  in
  let compiled = Exec.compile (ctx ()) plan in
  let _, serial_counters =
    Soqm_core.Db.with_fresh_counters d (fun () ->
        Exec.run_compiled (ctx ()) compiled)
  in
  let stats = Exec.make_stats compiled in
  let (r, _), par_counters =
    Soqm_core.Db.with_fresh_counters d (fun () ->
        (Exec.run_compiled ~stats ~jobs:4 ~clamp:false (ctx ()) compiled, ()))
  in
  check Alcotest.int "root actual rows = result cardinality"
    (Relation.cardinality r) stats.Exec.node_rows.(0);
  (* map + project fused: the scan is the root's direct input (cid 1) *)
  let n_docs = Object_store.extent_size (store ()) "Document" in
  check Alcotest.int "scan actual rows = extent" n_docs
    stats.Exec.node_rows.(1);
  check Alcotest.bool "scan processed at least one morsel" true
    (stats.Exec.node_morsels.(1) >= 1);
  (* bulk charges from worker domains must not lose increments and must
     match the serial per-row accounting *)
  check Alcotest.int "tuples charged = serial"
    (Counters.tuples_produced serial_counters)
    (Counters.tuples_produced par_counters)

(* A build side under one morsel skips the two-phase partitioning: one
   shared table, reported as a single partition — and the output must
   stay row-for-row identical to the serial executor. *)
let test_parallel_tiny_build_bypass () =
  let join =
    Plan.HashJoin
      ( "d2", "d",
        Plan.MapProp ("d2", "document", "s", Plan.FullScan ("s", "Section")),
        Plan.FullScan ("d", "Document") )
  in
  let compiled = Exec.compile (ctx ()) join in
  check Alcotest.bool "build side is tiny" true
    (Object_store.extent_size (store ()) "Document" <= Exec.morsel_size);
  let serial =
    Array.concat (Exec.drain_blocks (Exec.open_compiled (ctx ()) compiled))
  in
  List.iter
    (fun jobs ->
      let stats = Exec.make_stats compiled in
      let par = Exec.eval_parallel ~stats (ctx ()) ~jobs compiled in
      check Alcotest.int
        (Printf.sprintf "tiny build collapses to one partition (jobs=%d)" jobs)
        1
        stats.Exec.node_partitions.(0);
      check Alcotest.int "same row count" (Array.length serial)
        (Array.length par);
      Array.iteri
        (fun i row ->
          if not (Relation.Row.equal row par.(i)) then
            Alcotest.failf "row %d differs under jobs=%d" i jobs)
        serial)
    [ 2; 4 ]

(* With a build side over one morsel the jobs-partition machinery stays
   on (one build table per worker). *)
let test_parallel_join_partition_stats () =
  let d =
    Soqm_core.Db.create
      ~params:{ Soqm_core.Datagen.default with n_docs = 48 }
      ()
  in
  let xctx = Soqm_core.Engine.exec_ctx d in
  let join =
    Plan.HashJoin
      ( "ps", "qs",
        Plan.MapProp ("ps", "section", "p", Plan.FullScan ("p", "Paragraph")),
        Plan.MapProp ("qs", "section", "q", Plan.FullScan ("q", "Paragraph")) )
  in
  let compiled = Exec.compile xctx join in
  check Alcotest.bool "build side spans several morsels" true
    (Object_store.extent_size d.Soqm_core.Db.store "Paragraph"
    > Exec.morsel_size);
  let stats = Exec.make_stats compiled in
  ignore (Exec.run_compiled ~stats ~jobs:4 ~clamp:false xctx compiled);
  (* root (cid 0) is the hash join: 4 jobs -> 4 build partitions *)
  check Alcotest.int "hash join used jobs partitions" 4
    stats.Exec.node_partitions.(0)

(* ------------------------------------------------------------------ *)
(* Cost model                                                          *)
(* ------------------------------------------------------------------ *)

let test_cost_scan_grows_with_extent () =
  let s = stats () in
  let para = Cost.estimate s (Plan.FullScan ("p", "Paragraph")) in
  let doc = Cost.estimate s (Plan.FullScan ("d", "Document")) in
  check Alcotest.bool "paragraph scan costs more" true (para.Cost.cost > doc.Cost.cost);
  check (Alcotest.float 0.5) "paragraph cardinality"
    (float_of_int (Object_store.extent_size (store ()) "Paragraph"))
    para.Cost.card

let test_cost_index_beats_scan_filter () =
  let s = stats () in
  let scan_filter =
    Plan.Filter
      ( Restricted.CEq,
        Restricted.ORef "t",
        Restricted.OConst (Value.Str "Query Optimization"),
        Plan.MapProp ("t", "title", "d", Plan.FullScan ("d", "Document")) )
  in
  let index = Plan.IndexScan ("d", "Document", "title", Value.Str "Query Optimization") in
  check Alcotest.bool "index scan is cheaper" true
    (Cost.cost s index < Cost.cost s scan_filter)

let test_cost_method_scan_beats_per_object_method () =
  let s = stats () in
  let per_object =
    Plan.Filter
      ( Restricted.CEq,
        Restricted.ORef "c",
        Restricted.OConst (Value.Bool true),
        Plan.MapMeth
          ( "c",
            "contains_string",
            Restricted.RRef "p",
            [ Restricted.OConst (Value.Str "Implementation") ],
            Plan.FullScan ("p", "Paragraph") ) )
  in
  let scan =
    Plan.MethodScan ("p", "Paragraph", "retrieve_by_string", [ Value.Str "Implementation" ])
  in
  check Alcotest.bool "retrieve_by_string beats contains_string scan" true
    (Cost.cost s scan < Cost.cost s per_object)

let test_cost_const_chain_cheap () =
  let s = stats () in
  let const_chain base =
    Plan.MapMeth
      ( "ds",
        "select_by_index",
        Restricted.RClass "Document",
        [ Restricted.OConst (Value.Str "x") ],
        base )
  in
  let base = Plan.FullScan ("p", "Paragraph") in
  let with_chain = Cost.cost s (const_chain base) in
  let base_cost = Cost.cost s base in
  let card = (Cost.estimate s base).Cost.card in
  (* the chain must cost roughly one method call, not one per tuple *)
  check Alcotest.bool "constant chain costs one call" true
    (with_chain -. base_cost
    < (Soqm_core.Doc_schema.cost_select_by_index *. 2.0) +. (card *. 0.2))

let test_cost_filter_selectivity () =
  let s = stats () in
  let base = Plan.MapMeth
      ( "c",
        "contains_string",
        Restricted.RRef "p",
        [ Restricted.OConst (Value.Str "Implementation") ],
        Plan.FullScan ("p", "Paragraph") )
  in
  let filtered =
    Plan.Filter (Restricted.CEq, Restricted.ORef "c", Restricted.OConst (Value.Bool true), base)
  in
  let all = Cost.estimate s base in
  let sel = Cost.estimate s filtered in
  check Alcotest.bool "selectivity applied" true
    (sel.Cost.card < all.Cost.card /. 2.0)

let () =
  Alcotest.run "physical"
    [
      ( "operators",
        [
          F.case "full scan" test_full_scan;
          F.case "index scan" test_index_scan;
          F.case "method scan" test_method_scan;
          F.case "hash join = nested loop" test_hash_join_vs_nested_loop;
          F.case "natural join" test_natural_join_intersection;
          F.case "union & diff" test_union_diff;
          F.case "flat property" test_flat_prop;
          F.case "project dedups" test_project_dedups;
          F.case "keyed projection skips dedup" test_keyed_projection;
        ] );
      ( "memoization",
        [
          F.case "constant chain" test_const_chain_memoized;
          F.case "repeated receivers" test_repeated_receiver_memoized;
        ] );
      ( "iterators",
        [
          F.case "streams tuple by tuple" test_iterator_streams;
          F.case "close stops the stream" test_iterator_close_stops;
          F.case "filters pull lazily" test_filter_streams_lazily;
        ] );
      ( "failure-injection",
        [
          F.case "stale index / dangling OID" test_stale_index_dangling_oid;
          F.case "unbound reference" test_unbound_ref_is_error;
          F.case "unresolved parameter" test_param_operand_is_error;
        ] );
      ( "agreement",
        [
          F.case "query Q" test_exec_q;
          F.case "dependent range" test_exec_dependent;
          F.case "theta join" test_exec_join;
          QCheck_alcotest.to_alcotest prop_exec_agrees;
          QCheck_alcotest.to_alcotest prop_compiled_parity;
        ] );
      ( "batch-executor",
        [
          F.case "joins match naive oracle" test_joins_match_naive_oracle;
          F.case "Null-key join semantics" test_null_keys_pin;
          QCheck_alcotest.to_alcotest prop_fusion_parity;
          F.case "Null semantics in fused kernels" test_fused_null_semantics;
          F.case "block accounting" test_block_accounting;
          F.case "slot miss on bad plan" test_slot_miss_charged;
          F.case "analyze stats" test_analyze_stats;
          F.case "compiled layouts" test_compile_layouts;
        ] );
      ( "parallel",
        [
          F.case "pool protocol" test_pool_protocol;
          F.case "jobs=1 spawns nothing" test_serial_spawns_no_domains;
          QCheck_alcotest.to_alcotest prop_parallel_parity;
          F.case "oversubscribed jobs > cores" test_parallel_oversubscribed;
          F.case "Null-key join semantics" test_parallel_null_keys;
          F.case "row-for-row determinism" test_parallel_row_order;
          F.case "analyze stats (parallel)" test_parallel_analyze_stats;
          F.case "tiny build bypass" test_parallel_tiny_build_bypass;
          F.case "join partition stats" test_parallel_join_partition_stats;
        ] );
      ( "cost",
        [
          F.case "scan grows with extent" test_cost_scan_grows_with_extent;
          F.case "index beats scan+filter" test_cost_index_beats_scan_filter;
          F.case "method scan beats per-object" test_cost_method_scan_beats_per_object_method;
          F.case "constant chain is cheap" test_cost_const_chain_cheap;
          F.case "filter selectivity" test_cost_filter_selectivity;
        ] );
    ]
