(* The paged disk storage subsystem: codec, slotted pages, buffer pool,
   WAL commit/recovery, and the store end to end.

   The centerpiece is the crash-recovery torture property: a random DML
   trace is committed batch by batch, the WAL is cut at a random byte
   offset (simulating a crash with a torn tail), the directory is
   reopened, and the recovered contents must equal an oracle replay of
   exactly the batches whose Commit frame survived the cut — for any
   offset. *)

open Soqm_vml
open Soqm_disk
module F = Soqm_testlib.Fixtures

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* codec                                                               *)
(* ------------------------------------------------------------------ *)

let roundtrip_value v =
  let buf = Buffer.create 64 in
  Codec.write_value buf v;
  Codec.read_value (Codec.cursor (Buffer.contents buf))

let test_codec_values () =
  let samples =
    [
      Value.Null;
      Value.Bool true;
      Value.Bool false;
      Value.Int 0;
      Value.Int (-1);
      Value.Int max_int;
      Value.Int min_int;
      Value.Real 3.25;
      Value.Real nan;
      Value.Real infinity;
      Value.Str "";
      Value.Str "héllo\x00world";
      Value.Obj (Oid.make ~cls:"Paragraph" ~id:42);
      Value.Cls "Document";
      Value.set [ Value.Int 3; Value.Int 1; Value.Int 2 ];
      Value.tuple [ ("b", Value.Int 2); ("a", Value.Str "x") ];
      Value.Arr [| Value.Int 1; Value.Null |];
      Value.dict [ (Value.Str "k", Value.Int 9) ];
    ]
  in
  List.iter
    (fun v ->
      check F.value "value roundtrips" v (roundtrip_value v);
      (* NaN breaks Value.equal reflexivity; spot-check the tag *)
      ())
    (List.filter (fun v -> Value.equal v v) samples);
  (match roundtrip_value (Value.Real nan) with
  | Value.Real r -> check Alcotest.bool "nan survives" true (Float.is_nan r)
  | _ -> Alcotest.fail "nan decoded to a different constructor")

let test_codec_rejects_garbage () =
  let rejects name s f =
    Alcotest.match_raises name
      (function Codec.Corrupt _ -> true | _ -> false)
      (fun () -> ignore (f (Codec.cursor s)))
  in
  rejects "truncated varint" "\xff\xff" Codec.read_uvarint;
  rejects "truncated string" "\x0aab" Codec.read_string;
  rejects "unknown value tag" "\x7f" Codec.read_value;
  rejects "empty input" "" Codec.read_value

let test_codec_schema_roundtrip () =
  let schema = Soqm_core.Doc_schema.schema in
  let buf = Buffer.create 256 in
  Codec.write_schema buf schema;
  let schema' = Codec.read_schema (Codec.cursor (Buffer.contents buf)) in
  check
    Alcotest.(list string)
    "class names survive" (Schema.class_names schema)
    (Schema.class_names schema');
  check Alcotest.bool "inverse links survive" true
    (Schema.inverse_of schema' ~cls:"Section" ~prop:"document"
    = Schema.inverse_of schema ~cls:"Section" ~prop:"document")

(* ------------------------------------------------------------------ *)
(* slotted pages                                                       *)
(* ------------------------------------------------------------------ *)

let test_page_ops () =
  let p = Bytes.create Page.size in
  Page.format p;
  check Alcotest.bool "formatted page is not blank" false (Page.is_blank p);
  check Alcotest.int "no slots yet" 0 (Page.nslots p);
  let s0 = Page.insert p "alpha" in
  let s1 = Page.insert p "beta" in
  let s2 = Page.insert p "gamma" in
  check Alcotest.(list int) "slot numbers ascend" [ 0; 1; 2 ] [ s0; s1; s2 ];
  check Alcotest.(option string) "read back" (Some "beta") (Page.read p s1);
  (* deletion marks the slot dead without renumbering the others *)
  Page.delete p s1;
  Page.delete p s1 (* idempotent *);
  Page.delete p 99 (* out of range: ignored *);
  check Alcotest.(option string) "dead slot" None (Page.read p s1);
  check Alcotest.(option string) "later slot stable" (Some "gamma")
    (Page.read p s2);
  let seen = ref [] in
  Page.iter p (fun slot r -> seen := (slot, r) :: !seen);
  check
    Alcotest.(list (pair int string))
    "iter skips dead slots"
    [ (0, "alpha"); (2, "gamma") ]
    (List.rev !seen)

let test_page_capacity () =
  let p = Bytes.create Page.size in
  Page.format p;
  let big = String.make Page.capacity 'x' in
  check Alcotest.bool "full-capacity record fits" true (Page.has_room p (String.length big));
  ignore (Page.insert p big);
  check Alcotest.bool "page now full" false (Page.has_room p 1);
  Alcotest.check_raises "overflow rejected"
    (Invalid_argument "Page.insert: record does not fit")
    (fun () -> ignore (Page.insert p "y"))

let test_page_compaction_reclaims_dead_space () =
  (* fill a page, delete every other record, then insert a record larger
     than the watermark gap: only in-page compaction can make room, and
     it must preserve surviving slot numbers and contents *)
  let p = Bytes.create Page.size in
  Page.format p;
  let payload i = Printf.sprintf "%02d-%s" i (String.make 120 (Char.chr (97 + (i mod 26)))) in
  let slots = ref [] in
  (try
     let i = ref 0 in
     while Page.has_room p (String.length (payload !i)) do
       slots := Page.insert p (payload !i) :: !slots;
       incr i
     done
   with Invalid_argument _ -> ());
  let slots = Array.of_list (List.rev !slots) in
  check Alcotest.bool "page filled" true (Array.length slots > 10);
  let gap_full = Page.free_space p in
  Array.iteri (fun i s -> if i mod 2 = 0 then Page.delete p s) slots;
  check Alcotest.bool "dead bytes accumulated" true (Page.dead_bytes p > 0);
  (* the watermark gap did not grow: deletion alone reclaims nothing *)
  check Alcotest.int "gap unchanged by deletes" gap_full (Page.free_space p);
  let big = String.make (gap_full + 100) 'Z' in
  check Alcotest.bool "room counts compactable space" true
    (Page.has_room p (String.length big));
  let bslot = Page.insert p big in
  check Alcotest.(option string) "compacted insert readable" (Some big)
    (Page.read p bslot);
  Array.iteri
    (fun i s ->
      if i mod 2 = 1 then
        check Alcotest.(option string)
          (Printf.sprintf "survivor slot %d intact" s)
          (Some (payload i)) (Page.read p s))
    slots;
  check Alcotest.bool "dead slot entry recycled" true
    (Array.exists (fun s -> s = bslot) slots)

(* ------------------------------------------------------------------ *)
(* column chunks: codec roundtrip, torture values, corruption          *)
(* ------------------------------------------------------------------ *)

let sorted_row props =
  (* canonical on-disk order; duplicate property names keep the last
     binding, mirroring the store's upsert semantics *)
  let tbl = Hashtbl.create 8 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) props;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let column_roundtrip recs =
  let chunk = Column.decode (Column.encode recs) in
  Array.to_list (Column.rows chunk)
  |> List.map (fun (id, props) -> (id, sorted_row props))

let test_column_torture_values () =
  (* one record per corner: min_int/max_int ints, huge and empty and
     NUL-bearing strings, explicit Nulls (generic-encoding fallback),
     absent properties, structured values *)
  let huge = String.make 100_000 'h' in
  let recs =
    [|
      (0, [ ("i", Value.Int min_int); ("s", Value.Str "") ]);
      (1, [ ("i", Value.Int max_int); ("s", Value.Str huge) ]);
      (2, [ ("i", Value.Null); ("s", Value.Str "a\x00b") ]);
      (5, [ ("s", Value.Str huge); ("extra", Value.Bool false) ]);
      (9, [ ("i", Value.Int 0) ]);
      ( 12,
        [
          ("set", Value.set [ Value.Int 2; Value.Int 1 ]);
          ("obj", Value.Obj (Oid.make ~cls:"Item" ~id:3));
        ] );
      (100, []);
    |]
  in
  let expect =
    Array.to_list recs |> List.map (fun (id, ps) -> (id, sorted_row ps))
  in
  check Alcotest.bool "torture rows roundtrip" true
    (expect = column_roundtrip recs);
  (* selective decode agrees with full reassembly *)
  let chunk = Column.decode (Column.encode recs) in
  (match Column.find chunk "i" with
  | None -> Alcotest.fail "column i missing from directory"
  | Some col ->
    check
      Alcotest.(list int)
      "presence bitmap" [ 0; 1; 2; 4 ]
      (Column.presence chunk col);
    let vals = Column.read_column chunk col in
    check Alcotest.bool "read_column values" true
      (vals
      = [|
          Some (Value.Int min_int);
          Some (Value.Int max_int);
          Some Value.Null;
          None;
          Some (Value.Int 0);
          None;
          None;
        |]));
  check Alcotest.bool "unknown property absent" true
    (Column.find chunk "nope" = None)

let test_column_empty_and_all_null () =
  (* the degenerate chunks: zero rows, and a column that is Null on
     every present row (generic encoding, full presence) *)
  check Alcotest.bool "empty chunk roundtrips" true ([] = column_roundtrip [||]);
  let all_null = Array.init 6 (fun i -> (i, [ ("n", Value.Null) ])) in
  check Alcotest.bool "all-null column roundtrips" true
    (Array.to_list all_null |> List.map (fun (id, ps) -> (id, sorted_row ps))
    = column_roundtrip all_null);
  Alcotest.check_raises "non-ascending ids rejected"
    (Invalid_argument "Column.encode: oids not ascending")
    (fun () -> ignore (Column.encode [| (3, []); (3, []) |]))

let value_gen =
  let open QCheck2.Gen in
  oneof
    [
      return Value.Null;
      map (fun b -> Value.Bool b) bool;
      map (fun n -> Value.Int n) (oneof [ small_signed_int; int ]);
      map (fun s -> Value.Str s) (string_size ~gen:printable (int_range 0 30));
      (* skewed strings exercise the dictionary encoding *)
      map
        (fun i -> Value.Str (Printf.sprintf "tag-%d" (i mod 3)))
        (int_range 0 9);
      map (fun id -> Value.Obj (Oid.make ~cls:"Item" ~id)) (int_range 0 99);
      map (fun xs -> Value.set (List.map (fun n -> Value.Int n) xs))
        (list_size (int_range 0 4) small_signed_int);
    ]

let chunk_gen =
  let open QCheck2.Gen in
  let props =
    (* distinct names per row: property lists are maps (the store upserts
       by name before any record reaches the codec) *)
    map
      (fun ps ->
        List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) ps)
      (list_size (int_range 0 5)
         (pair (oneofl [ "a"; "b"; "c"; "d"; "e" ]) value_gen))
  in
  (* strictly ascending ids via positive gaps *)
  map
    (fun rows ->
      let id = ref (-1) in
      Array.of_list
        (List.map
           (fun (gap, ps) ->
             id := !id + 1 + gap;
             (!id, ps))
           rows))
    (list_size (int_range 0 40) (pair (int_range 0 5) props))

let prop_column_roundtrip recs =
  let expect =
    Array.to_list recs |> List.map (fun (id, ps) -> (id, sorted_row ps))
  in
  let got = column_roundtrip recs in
  if expect <> got then
    QCheck2.Test.fail_reportf "chunk of %d rows did not roundtrip"
      (Array.length recs);
  true

let prop_column_chunk_roundtrip =
  QCheck2.Test.make ~count:200
    ~name:"column chunks roundtrip arbitrary records" chunk_gen
    prop_column_roundtrip

let prop_column_selective_parity recs =
  (* every column read selectively must agree with full reassembly *)
  let chunk = Column.decode (Column.encode recs) in
  let full = Column.rows chunk in
  Array.iter
    (fun (col : Column.column) ->
      let vals = Column.read_column chunk col in
      Array.iteri
        (fun row v ->
          let _, props = full.(row) in
          let expect = List.assoc_opt col.Column.cname props in
          if v <> expect then
            QCheck2.Test.fail_reportf "column %s row %d diverges"
              col.Column.cname row)
        vals)
    chunk.Column.columns;
  true

let prop_column_selective =
  QCheck2.Test.make ~count:200
    ~name:"selective column reads agree with full reassembly" chunk_gen
    prop_column_selective_parity

let prop_column_corruption (recs, pos, byte) =
  (* flip one byte anywhere in the payload: decode must either fail
     closed with Codec.Corrupt or still produce well-formed rows — it
     must never raise anything else *)
  let payload = Bytes.of_string (Column.encode recs) in
  if Bytes.length payload = 0 then true
  else begin
    let pos = pos mod Bytes.length payload in
    let flipped = Char.chr (Char.code (Bytes.get payload pos) lxor byte) in
    Bytes.set payload pos flipped;
    match Column.decode (Bytes.to_string payload) with
    | chunk ->
      (* survived the header checks; forcing the columns may still fail,
         but only with the typed error *)
      (try
         Array.iter
           (fun col -> ignore (Column.read_column chunk col))
           chunk.Column.columns
       with Codec.Corrupt _ -> ());
      true
    | exception Codec.Corrupt _ -> true
    | exception Invalid_argument _ -> true (* huge bogus length prefix *)
    | exception e ->
      QCheck2.Test.fail_reportf "byte %d flipped: escaped with %s" pos
        (Printexc.to_string e)
  end

let prop_column_fail_closed =
  QCheck2.Test.make ~count:300
    ~name:"corrupt chunk payloads fail closed with Codec.Corrupt"
    QCheck2.Gen.(triple chunk_gen (int_bound 10_000) (int_range 1 255))
    prop_column_corruption

(* ------------------------------------------------------------------ *)
(* buffer pool                                                         *)
(* ------------------------------------------------------------------ *)

(* a pool over an in-memory "disk" of formatted pages *)
let memory_pool ~pages =
  let disk = Hashtbl.create 16 in
  let counters = Counters.create () in
  let read_page ~cls ~page buf =
    match Hashtbl.find_opt disk (cls, page) with
    | Some img -> Bytes.blit img 0 buf 0 Page.size
    | None -> Bytes.fill buf 0 Page.size '\000'
  in
  let write_page ~cls ~page buf =
    Hashtbl.replace disk (cls, page) (Bytes.copy buf)
  in
  (Buffer_pool.create ~pages ~counters ~read_page ~write_page, disk, counters)

let test_pool_hits_and_evictions () =
  let pool, _, c = memory_pool ~pages:4 in
  check Alcotest.int "capacity respected" 4 (Buffer_pool.capacity pool);
  (* touch 4 pages: all cold misses *)
  for page = 1 to 4 do
    ignore (Buffer_pool.pin pool ~cls:"A" ~page);
    Buffer_pool.unpin pool ~cls:"A" ~page ~dirty:false
  done;
  check Alcotest.int "4 cold reads" 4 (Counters.pages_read c);
  check Alcotest.int "no hits yet" 0 (Counters.pool_hits c);
  (* touch them again: all hits, no traffic *)
  for page = 1 to 4 do
    ignore (Buffer_pool.pin pool ~cls:"A" ~page);
    Buffer_pool.unpin pool ~cls:"A" ~page ~dirty:false
  done;
  check Alcotest.int "re-reads hit" 4 (Counters.pool_hits c);
  check Alcotest.int "no extra reads" 4 (Counters.pages_read c);
  (* a 5th page forces one eviction *)
  ignore (Buffer_pool.pin pool ~cls:"A" ~page:5);
  Buffer_pool.unpin pool ~cls:"A" ~page:5 ~dirty:false;
  check Alcotest.int "one eviction" 1 (Counters.pool_evictions c);
  check Alcotest.int "still 4 resident" 4
    (List.length (Buffer_pool.resident pool))

let test_pool_dirty_writeback () =
  let pool, disk, c = memory_pool ~pages:4 in
  let data = Buffer_pool.pin pool ~cls:"A" ~page:1 in
  Page.format data;
  ignore (Page.insert data "persisted");
  Buffer_pool.unpin pool ~cls:"A" ~page:1 ~dirty:true;
  check Alcotest.int "not written yet" 0 (Counters.pages_written c);
  Buffer_pool.flush pool;
  check Alcotest.int "flushed once" 1 (Counters.pages_written c);
  (match Hashtbl.find_opt disk ("A", 1) with
  | Some img -> check Alcotest.(option string) "image holds the record"
      (Some "persisted")
      (Page.read (Bytes.copy img) 0)
  | None -> Alcotest.fail "dirty page never reached the disk");
  (* flushing again writes nothing: the frame is clean *)
  Buffer_pool.flush pool;
  check Alcotest.int "clean frames not rewritten" 1 (Counters.pages_written c)

let test_pool_pinned_never_evicted () =
  let pool, _, _ = memory_pool ~pages:4 in
  (* pin all frames and ask for one more *)
  for page = 1 to 4 do
    ignore (Buffer_pool.pin pool ~cls:"A" ~page)
  done;
  Alcotest.match_raises "all-pinned pool refuses"
    (function Failure _ -> true | _ -> false)
    (fun () -> ignore (Buffer_pool.pin pool ~cls:"A" ~page:5));
  (* release one; the next pin succeeds by evicting it *)
  Buffer_pool.unpin pool ~cls:"A" ~page:2 ~dirty:false;
  ignore (Buffer_pool.pin pool ~cls:"A" ~page:5);
  check Alcotest.bool "victim was the unpinned page" false
    (List.mem ("A", 2) (Buffer_pool.resident pool))

(* ------------------------------------------------------------------ *)
(* store: basics, reopen, parity with the in-memory path               *)
(* ------------------------------------------------------------------ *)

let item_schema =
  Schema.make
    [
      Schema.cls "Item"
        ~properties:
          [ Schema.prop "n" Vtype.TInt; Schema.prop "s" Vtype.TString ];
    ]

let item id = Oid.make ~cls:"Item" ~id

let sorted_props ps =
  List.sort (fun (a, _) (b, _) -> String.compare a b) ps

let store_image t =
  (* oid -> sorted props, via the page scan *)
  fst (Store.scan_all t)
  |> List.map (fun (oid, props) -> (oid, sorted_props props))

let test_store_roundtrip () =
  F.with_temp_dir "soqm_disk" (fun dir ->
      let t = Store.create ~schema:item_schema dir in
      Store.apply t
        [
          Wal.Insert { oid = item 0; props = [ ("n", Value.Int 1); ("s", Value.Str "a") ] };
          Wal.Insert { oid = item 1; props = [ ("n", Value.Int 2); ("s", Value.Str "b") ] };
        ];
      Store.apply t
        [
          Wal.Update
            { oid = item 0; prop = "n"; value = Value.Int 7; old_value = Value.Int 1 };
        ];
      Store.apply t [ Wal.Insert { oid = item 2; props = [ ("n", Value.Int 3) ] } ];
      Store.apply t [ Wal.Delete { oid = item 1; props = [] } ];
      check Alcotest.bool "mem sees live" true (Store.mem t (item 0));
      check Alcotest.bool "mem sees deleted" false (Store.mem t (item 1));
      check F.value "update applied" (Value.Int 7)
        (List.assoc "n" (Store.fetch t (item 0)));
      check Alcotest.int "next id past highest" 3 (Store.next_id t);
      let before = store_image t in
      Store.close t (* checkpoints: WAL empty, pages durable *);
      let t' = Store.open_dir dir in
      check Alcotest.int "clean reopen recovers nothing" 0
        (Store.recovered_batches t');
      check Alcotest.int "WAL empty after checkpoint" 0 (Store.wal_bytes t');
      check Alcotest.bool "contents survive reopen" true
        (before = store_image t');
      check
        Alcotest.(list int)
        "extent in allocation order" [ 0; 2 ]
        (List.map Oid.id (Store.extent t' "Item"));
      Store.close t')

let test_store_records_span_pages () =
  (* enough records that every class needs several pages, with updates
     relocating rows across them *)
  F.with_temp_dir "soqm_disk" (fun dir ->
      let t = Store.create ~schema:item_schema dir in
      let blob i = String.make 300 (Char.chr (65 + (i mod 26))) in
      for i = 0 to 99 do
        Store.apply t
          [
            Wal.Insert
              { oid = item i; props = [ ("n", Value.Int i); ("s", Value.Str (blob i)) ] };
          ]
      done;
      for i = 0 to 99 do
        if i mod 3 = 0 then
          Store.apply t
            [
              Wal.Update
                {
                  oid = item i;
                  prop = "n";
                  value = Value.Int (-i);
                  old_value = Value.Int i;
                };
            ]
      done;
      check Alcotest.bool "multiple pages allocated" true
        (Store.data_pages t "Item" > 5);
      let rows, pages = Store.scan t "Item" in
      check Alcotest.int "all rows survive relocation" 100 (List.length rows);
      check Alcotest.int "scan touched every page" (Store.data_pages t "Item")
        pages;
      List.iteri
        (fun i (oid, props) ->
          check Alcotest.int "allocation order" i (Oid.id oid);
          let expect = if i mod 3 = 0 then -i else i in
          check F.value "updated in place" (Value.Int expect)
            (List.assoc "n" props))
        rows;
      (* a record past the page capacity spills into an overflow chain
         and reads back whole *)
      Store.apply t
        [
          Wal.Insert
            {
              oid = item 999;
              props = [ ("s", Value.Str (String.make 5000 'x')) ];
            };
        ];
      check F.value "overflow record round-trips" (Value.Str (String.make 5000 'x'))
        (List.assoc "s" (Store.fetch t (item 999)));
      check Alcotest.bool "stored as a chain" true
        (Store.overflow_chains t "Item" >= 1);
      Store.close t)

let test_store_prefetch_parity () =
  F.with_temp_dir "soqm_disk" (fun dir ->
      let t = Store.create ~schema:item_schema dir in
      for i = 0 to 199 do
        Store.apply t
          [
            Wal.Insert
              {
                oid = item i;
                props =
                  [ ("n", Value.Int i); ("s", Value.Str (String.make 100 'p')) ];
              };
          ]
      done;
      let plain = Store.scan ~prefetch:false t "Item" in
      let pre = Store.scan ~prefetch:true t "Item" in
      check Alcotest.bool "prefetched scan returns identical rows" true
        (plain = pre);
      Store.close t)

let test_db_disk_attachment () =
  (* Db.open_disk keeps the store attached: DML reaches the WAL, full
     scans drive pool traffic, close checkpoints *)
  F.with_temp_dir "soqm_db" (fun dir ->
      let db0 = F.tiny_db () in
      Soqm_core.Db.save db0 dir;
      let db = Soqm_core.Db.open_disk dir in
      (match db.Soqm_core.Db.disk with
      | None -> Alcotest.fail "open_disk did not attach the store"
      | Some d ->
        check Alcotest.int "clean open" 0 (Store.recovered_batches d);
        let wal0 = Store.wal_bytes d in
        let store = db.Soqm_core.Db.store in
        let oid =
          Object_store.create_object store ~cls:"Document"
            [ ("title", Value.Str "Crash Consistency") ]
        in
        check Alcotest.bool "DML reached the WAL" true
          (Store.wal_bytes d > wal0);
        check Alcotest.bool "and the pages" true (Store.mem d oid);
        Object_store.set_prop store oid "title" (Value.Str "Recovery");
        check F.value "update reached the pages" (Value.Str "Recovery")
          (List.assoc "title" (Store.fetch d oid)));
      Soqm_core.Db.close db;
      check Alcotest.bool "close detaches" true
        (db.Soqm_core.Db.disk = None);
      (* reload: the change is durable, queries agree with memory *)
      let db' = Soqm_core.Db.load dir in
      let titles cls_db =
        List.map
          (fun o -> Object_store.peek_prop cls_db.Soqm_core.Db.store o "title")
          (Object_store.extent cls_db.Soqm_core.Db.store "Document")
      in
      check Alcotest.bool "documents survive the round trip" true
        (List.mem (Value.Str "Recovery") (titles db')))

(* ------------------------------------------------------------------ *)
(* columnar segments: vacuum, shadowing, tombstones, corruption        *)
(* ------------------------------------------------------------------ *)

let populate_items t n =
  for i = 0 to n - 1 do
    Store.apply t
      [
        Wal.Insert
          {
            oid = item i;
            props =
              [
                ("n", Value.Int i);
                (* three distinct strings: dictionary-friendly *)
                ("s", Value.Str (Printf.sprintf "tag-%d" (i mod 3)));
              ];
          };
      ]
  done

let test_vacuum_roundtrip_and_reopen () =
  F.with_temp_dir "soqm_vac" (fun dir ->
      let t = Store.create ~schema:item_schema dir in
      populate_items t 150;
      let before = store_image t in
      let heap_pages = Store.data_pages t "Item" in
      check Alcotest.bool "row format before vacuum" false
        (Store.is_columnar t "Item");
      let n = Store.vacuum t "Item" in
      check Alcotest.int "every row rewritten" 150 n;
      check Alcotest.bool "flagged columnar" true (Store.is_columnar t "Item");
      check Alcotest.(list string) "columnar class listed" [ "Item" ]
        (Store.columnar_classes t);
      check Alcotest.int "heap emptied" 0 (Store.data_pages t "Item");
      check Alcotest.int "columnar rows" 150 (Store.columnar_rows t "Item");
      check Alcotest.bool "columnar smaller than the heap it replaced" true
        (Store.columnar_bytes t "Item" < heap_pages * Page.size);
      check Alcotest.bool "contents identical after vacuum" true
        (before = store_image t);
      check F.value "point fetch served from columns" (Value.Int 42)
        (List.assoc "n" (Store.fetch t (item 42)));
      Store.close t;
      (* reopen: the columnar flag and image come back from meta *)
      let t' = Store.open_dir dir in
      check Alcotest.bool "columnar after reopen" true
        (Store.is_columnar t' "Item");
      check Alcotest.bool "contents identical after reopen" true
        (before = store_image t');
      Store.close t';
      (* vacuum is idempotent over an unchanged class *)
      let t'' = Store.open_dir dir in
      check Alcotest.int "re-vacuum rewrites the same rows" 150
        (Store.vacuum t'' "Item");
      check Alcotest.bool "contents stable" true (before = store_image t'');
      Store.close t'')

let test_vacuum_dml_shadowing () =
  F.with_temp_dir "soqm_vac" (fun dir ->
      let t = Store.create ~schema:item_schema dir in
      populate_items t 60;
      ignore (Store.vacuum t "Item");
      (* post-vacuum DML: update shadows, delete tombstones, insert lands
         in the heap *)
      Store.apply t
        [
          Wal.Update
            { oid = item 7; prop = "n"; value = Value.Int (-7); old_value = Value.Int 7 };
        ];
      Store.apply t [ Wal.Delete { oid = item 8; props = [] } ];
      Store.apply t
        [ Wal.Insert { oid = item 60; props = [ ("n", Value.Int 60) ] } ];
      let live () =
        List.map Oid.id (Store.extent t "Item") |> List.sort Int.compare
      in
      check Alcotest.bool "delete hides the columnar row" true
        (not (List.mem 8 (live ())));
      check Alcotest.bool "insert visible" true (List.mem 60 (live ()));
      check F.value "update shadows the columnar value" (Value.Int (-7))
        (List.assoc "n" (Store.fetch t (item 7)));
      (* two tombstones: the delete, and the update — relocating a
         columnar row into the heap tombstones its columnar copy so it
         can never resurrect *)
      check Alcotest.int "tombstones recorded" 2
        (Store.columnar_tombstones t "Item");
      (* the WAL alone carries the tombstone until a checkpoint persists
         the sidecar: both a crash-reopen (WAL replay) and a clean
         checkpointed close must restore it *)
      Store.close ~checkpoint:false t;
      let t' = Store.open_dir dir in
      check Alcotest.int "tombstones recovered from the WAL" 2
        (Store.columnar_tombstones t' "Item");
      check F.value "shadow recovered" (Value.Int (-7))
        (List.assoc "n" (Store.fetch t' (item 7)));
      Store.close t' (* checkpoint: sidecar + meta durable, WAL empty *);
      let t'' = Store.open_dir dir in
      check Alcotest.int "tombstones persisted via checkpoint" 2
        (Store.columnar_tombstones t'' "Item");
      check Alcotest.bool "deleted row stays hidden" false
        (Store.mem t'' (item 8));
      (* re-vacuum folds the shadow and drops the tombstone *)
      ignore (Store.vacuum t'' "Item");
      check Alcotest.int "tombstones folded away" 0
        (Store.columnar_tombstones t'' "Item");
      check F.value "folded value" (Value.Int (-7))
        (List.assoc "n" (Store.fetch t'' (item 7)));
      check Alcotest.int "row count excludes the deleted" 60
        (Store.columnar_rows t'' "Item");
      Store.close t'')

let test_vacuum_scan_costs_and_counters () =
  F.with_temp_dir "soqm_vac" (fun dir ->
      let t = Store.create ~schema:item_schema dir in
      populate_items t 200;
      let c = Store.counters t in
      (* row path: record bytes charged to bytes_read, every property
         decoded.  These live in the storage counter family, which
         accumulates across a workload — reset_storage, not the per-run
         reset, clears them *)
      Counters.reset_storage c;
      let rows, pages = Store.scan t "Item" in
      let row_bytes = Counters.bytes_read c in
      check Alcotest.bool "row scan: record bytes charged" true (row_bytes > 0);
      check Alcotest.bool "row scan: values decoded" true
        (Counters.values_decoded c >= 400);
      let row_pair = Store.scan_cost t "Item" in
      check Alcotest.bool "row scan_cost = pages * page size" true
        (row_pair = (pages, pages * Page.size));
      ignore (Store.vacuum t "Item");
      (* columnar full scan: chunk payloads, not pages *)
      Counters.reset_storage c;
      let crows, _ = Store.scan t "Item" in
      let full_bytes = Counters.bytes_read c in
      check Alcotest.bool "columnar scan rows identical" true
        (List.map snd rows |> List.map sorted_props
        = (List.map snd crows |> List.map sorted_props));
      check Alcotest.bool "columnar scan charges payload bytes" true
        (full_bytes > 0 && full_bytes < pages * Page.size);
      (* selective scan of the dictionary string column decodes fewer
         bytes than the full scan *)
      Counters.reset_storage c;
      let svals = Store.scan_columns t "Item" [ "s" ] in
      let sel_bytes = Counters.bytes_read c in
      check Alcotest.int "selective scan sees every row" 200
        (List.length svals);
      check Alcotest.bool
        (Printf.sprintf "selective < full decode (%d < %d)" sel_bytes
           full_bytes)
        true
        (sel_bytes < full_bytes);
      check Alcotest.bool "selective values correct" true
        (List.for_all
           (fun (oid, vs) ->
             vs = [ Some (Value.Str (Printf.sprintf "tag-%d" (Oid.id oid mod 3))) ])
           svals);
      (* the scan traffic model mirrors what explain --analyze charges *)
      Counters.reset_storage c;
      let _, meta_bytes = Store.scan_cost t "Item" in
      check Alcotest.int "scan_cost charges its own bytes" meta_bytes
        (Counters.bytes_read c);
      check Alcotest.bool "columnar meta cost below full decode" true
        (meta_bytes < full_bytes);
      Store.close t)

let test_colseg_corruption_fails_closed () =
  F.with_temp_dir "soqm_vac" (fun dir ->
      let t = Store.create ~schema:item_schema dir in
      populate_items t 80;
      ignore (Store.vacuum t "Item");
      Store.close t;
      let seg = Colseg.path ~dir ~cls:"Item" in
      let size = (Unix.stat seg).Unix.st_size in
      (* flip one byte in the last frame's CRC trailer *)
      let fd = Unix.openfile seg [ Unix.O_WRONLY ] 0 in
      ignore (Unix.lseek fd (size - 2) Unix.SEEK_SET);
      ignore (Unix.write_substring fd "\xaa" 0 1);
      Unix.close fd;
      Alcotest.match_raises "trailer damage detected on open"
        (function
          | Store.Format_error _ | Colseg.Format_error _ -> true | _ -> false)
        (fun () -> ignore (Store.open_dir dir));
      (* truncation mid-frame is equally fatal *)
      Unix.truncate seg (size - (size / 3));
      Alcotest.match_raises "truncated segment detected"
        (function
          | Store.Format_error _ | Colseg.Format_error _ -> true | _ -> false)
        (fun () -> ignore (Store.open_dir dir)))

let test_db_vacuum_plumbing () =
  (* Db.vacuum reaches the attached store; in-memory queries see no
     change; a reload serves the columnar image *)
  F.with_temp_dir "soqm_vacdb" (fun dir ->
      let db0 = F.tiny_db () in
      Soqm_core.Db.save db0 dir;
      let db = Soqm_core.Db.open_disk dir in
      let titles d =
        List.map
          (fun o -> Object_store.peek_prop d.Soqm_core.Db.store o "title")
          (Object_store.extent d.Soqm_core.Db.store "Document")
        |> List.sort compare
      in
      let before = titles db in
      let n = Soqm_core.Db.vacuum db "Document" in
      check Alcotest.bool "documents rewritten" true (n > 0);
      check Alcotest.bool "memory image unchanged" true (before = titles db);
      (match db.Soqm_core.Db.disk with
      | Some d ->
        check Alcotest.bool "store flagged" true (Store.is_columnar d "Document")
      | None -> Alcotest.fail "disk detached");
      Soqm_core.Db.close db;
      let db' = Soqm_core.Db.load dir in
      check Alcotest.bool "reload serves the columnar class" true
        (before = titles db');
      let mem = Soqm_core.Db.create_empty ~maintain:false () in
      Alcotest.check_raises "vacuum without a disk store refuses"
        (Invalid_argument "Db.vacuum: no attached disk store")
        (fun () -> ignore (Soqm_core.Db.vacuum mem "Document")))

(* ------------------------------------------------------------------ *)
(* clustered placement and the `Cluster vacuum                         *)
(* ------------------------------------------------------------------ *)

(* a minimal parent-child schema with a declared inverse: the placement
   policy derives [Kid -> par] as the clustering edge *)
let pc_schema =
  Schema.make
    [
      Schema.cls "Par"
        ~properties:
          [
            Schema.prop "name" Vtype.TString;
            Schema.prop "kids"
              (Vtype.TSet (Vtype.TObj "Kid"))
              ~inverse:("Kid", "par");
          ];
      Schema.cls "Kid"
        ~properties:
          [
            Schema.prop "n" Vtype.TInt;
            Schema.prop "pad" Vtype.TString;
            Schema.prop "par" (Vtype.TObj "Par") ~inverse:("Par", "kids");
          ];
    ]

let par id = Oid.make ~cls:"Par" ~id
let kid id = Oid.make ~cls:"Kid" ~id
let n_pars = 8
let n_kids = 400

(* kids assigned round-robin: consecutive OIDs belong to different
   parents, the worst case for path-expression locality *)
let populate_parents_round_robin t =
  for p = 0 to n_pars - 1 do
    Store.apply t
      [
        Wal.Insert
          {
            oid = par p;
            props = [ ("name", Value.Str (Printf.sprintf "par-%d" p)) ];
          };
      ]
  done;
  for k = 0 to n_kids - 1 do
    Store.apply t
      [
        Wal.Insert
          {
            oid = kid k;
            props =
              [
                ("n", Value.Int k);
                ("pad", Value.Str (String.make 150 'x'));
                ("par", Value.Obj (par (k mod n_pars)));
              ];
          };
      ]
  done

let kids_of p =
  List.init n_kids Fun.id
  |> List.filter (fun k -> k mod n_pars = p)
  |> List.map kid

let kid_image t =
  List.map (fun o -> (Oid.id o, sorted_props (Store.fetch t o)))
    (Store.extent t "Kid")
  |> List.sort compare

let test_insert_placement_clusters () =
  F.with_temp_dir "soqm_place" (fun dir ->
      let t = Store.create ~schema:pc_schema dir in
      check Alcotest.(option string) "policy derived from the inverse link"
        (Some "par")
        (Store.clustering_parent t "Kid");
      check Alcotest.bool "placement on by default" true
        (Store.placement_enabled t);
      populate_parents_round_robin t;
      let clustered = Store.locate_pages t (kids_of 0) in
      Store.close t;
      (* same trace with placement off: round-robin spreads each parent's
         kids over nearly every page *)
      F.with_temp_dir "soqm_noplace" (fun dir' ->
          let u = Store.create ~schema:pc_schema dir' in
          Store.set_placement u false;
          populate_parents_round_robin u;
          let scattered = Store.locate_pages u (kids_of 0) in
          check Alcotest.bool
            (Printf.sprintf "placement reads fewer pages (%d < %d)" clustered
               scattered)
            true
            (2 * clustered <= scattered);
          Store.close u))

let test_cluster_vacuum_improves_locality () =
  F.with_temp_dir "soqm_cluster" (fun dir ->
      let t = Store.create ~schema:pc_schema dir in
      Store.set_placement t false;
      populate_parents_round_robin t;
      let before_img = kid_image t in
      let scattered = Store.locate_pages t (kids_of 0) in
      let n = Store.vacuum ~mode:`Cluster t "Kid" in
      check Alcotest.int "every kid rewritten" n_kids n;
      check Alcotest.bool "heap stays row-format" false
        (Store.is_columnar t "Kid");
      let clustered = Store.locate_pages t (kids_of 0) in
      check Alcotest.bool
        (Printf.sprintf "clustering halves page reads (%d vs %d)" clustered
           scattered)
        true
        (2 * clustered <= scattered);
      check Alcotest.bool "contents identical after the rewrite" true
        (before_img = kid_image t);
      (* post-vacuum DML, then a crash: recovery replays over the
         re-clustered image *)
      Store.apply t
        [
          Wal.Insert
            {
              oid = kid n_kids;
              props =
                [
                  ("n", Value.Int n_kids);
                  ("pad", Value.Str "fresh");
                  ("par", Value.Obj (par 0));
                ];
            };
        ];
      Store.apply t
        [
          Wal.Update
            {
              oid = kid 0;
              prop = "n";
              value = Value.Int (-1);
              old_value = Value.Int 0;
            };
        ];
      Store.apply t [ Wal.Delete { oid = kid 1; props = [] } ];
      let after_dml = kid_image t in
      Store.close ~checkpoint:false t;
      let t' = Store.open_dir dir in
      check Alcotest.bool "crash recovery lands on the clustered image" true
        (after_dml = kid_image t');
      check F.value "update applied" (Value.Int (-1))
        (List.assoc "n" (Store.fetch t' (kid 0)));
      check Alcotest.bool "delete applied" false (Store.mem t' (kid 1));
      let still = Store.locate_pages t' (kids_of 0) in
      check Alcotest.bool "locality survives the reopen" true
        (2 * still <= scattered + 2);
      Store.close t';
      (* clean reopen after checkpoint: locality and contents stable *)
      let t'' = Store.open_dir dir in
      check Alcotest.bool "contents stable after checkpointed reopen" true
        (after_dml = kid_image t'');
      (* a columnar class accepts the `Cluster mode too: the rows are
         re-vacuumed with chunk boundaries aligned to parent groups *)
      ignore (Store.vacuum t'' "Kid");
      check Alcotest.bool "columnar now" true (Store.is_columnar t'' "Kid");
      let col_img = kid_image t'' in
      ignore (Store.vacuum ~mode:`Cluster t'' "Kid");
      check Alcotest.bool "still columnar after `Cluster" true
        (Store.is_columnar t'' "Kid");
      check Alcotest.bool "columnar contents unchanged" true
        (col_img = kid_image t'');
      Store.close t'')

(* ------------------------------------------------------------------ *)
(* overflow chains: records past one page, on heap and columnar paths  *)
(* ------------------------------------------------------------------ *)

let test_overflow_chains_roundtrip () =
  F.with_temp_dir "soqm_overflow" (fun dir ->
      let t = Store.create ~schema:item_schema dir in
      let big i = String.make (4000 + (i * 1700)) (Char.chr (97 + i)) in
      for i = 0 to 4 do
        Store.apply t
          [
            Wal.Insert
              {
                oid = item i;
                props = [ ("n", Value.Int i); ("s", Value.Str (big i)) ];
              };
          ]
      done;
      Store.apply t
        [ Wal.Insert { oid = item 5; props = [ ("n", Value.Int 5) ] } ];
      check Alcotest.bool "chains allocated" true
        (Store.overflow_chains t "Item" >= 4);
      let fetch_ok t' =
        List.for_all
          (fun i -> List.assoc "s" (Store.fetch t' (item i)) = Value.Str (big i))
          [ 0; 1; 2; 3; 4 ]
      in
      check Alcotest.bool "oversize records round-trip" true (fetch_ok t);
      (* the scan path must reassemble chains identically *)
      check Alcotest.int "scan sees every record" 6
        (List.length (fst (Store.scan_all t)));
      (* crash: chains are rebuilt from the WAL replay *)
      Store.close ~checkpoint:false t;
      let t' = Store.open_dir dir in
      check Alcotest.bool "chains recovered from the WAL" true (fetch_ok t');
      Store.close t' (* checkpoint *);
      let t'' = Store.open_dir dir in
      check Alcotest.bool "chains survive a checkpointed reopen" true
        (fetch_ok t'');
      (* an overwrite drops the old chain's continuation parts *)
      Store.apply t''
        [
          Wal.Update
            {
              oid = item 0;
              prop = "s";
              value = Value.Str "short now";
              old_value = Value.Str (big 0);
            };
        ];
      check F.value "shrunk record readable" (Value.Str "short now")
        (List.assoc "s" (Store.fetch t'' (item 0)));
      (* the columnar path carries the same oversize values *)
      ignore (Store.vacuum t'' "Item");
      check Alcotest.bool "columnar" true (Store.is_columnar t'' "Item");
      check Alcotest.bool "oversize values intact in columns" true
        (List.for_all
           (fun i -> List.assoc "s" (Store.fetch t'' (item i)) = Value.Str (big i))
           [ 1; 2; 3; 4 ]);
      Store.close t'';
      let t3 = Store.open_dir dir in
      check Alcotest.bool "columnar oversize survives reopen" true
        (List.for_all
           (fun i -> List.assoc "s" (Store.fetch t3 (item i)) = Value.Str (big i))
           [ 1; 2; 3; 4 ]);
      Store.close t3)

(* ------------------------------------------------------------------ *)
(* persistent derived state: derived.idx and the O(dirty) open         *)
(* ------------------------------------------------------------------ *)

module Db = Soqm_core.Db
module Persist = Soqm_maintenance.Persist

(* canonical dump of everything derived.idx covers — for equality
   between the image fast path and a from-scratch rebuild *)
let derived_signature (db : Db.t) =
  let hash =
    let acc = ref [] in
    Soqm_storage.Hash_index.iter db.Db.title_index (fun v oids ->
        acc := (v, List.sort Oid.compare oids) :: !acc);
    List.sort compare !acc
  in
  let sorted =
    let acc = ref [] in
    Soqm_storage.Sorted_index.iter_entries db.Db.word_count_index (fun v oid ->
        acc := (v, oid) :: !acc);
    List.rev !acc
  in
  let text =
    let acc = ref [] in
    Soqm_ir.Inverted_index.iter_postings db.Db.text_index (fun w keys ->
        acc := (w, List.sort Oid.compare keys) :: !acc);
    List.sort compare !acc
  in
  let sets =
    match Db.maintenance db with
    | None -> []
    | Some m ->
      List.map
        (fun (name, members) -> (name, List.sort compare members))
        (Soqm_maintenance.Maintenance.set_members m)
      |> List.sort compare
  in
  (hash, sorted, text, sets)

let base_image (db : Db.t) =
  List.concat_map
    (fun (cd : Schema.class_def) ->
      List.map
        (fun o ->
          ( o,
            List.map
              (fun (p : Schema.property) ->
                ( p.Schema.prop_name,
                  Object_store.peek_prop db.Db.store o p.Schema.prop_name ))
              cd.Schema.properties ))
        (Object_store.extent db.Db.store cd.Schema.cls_name))
    (Schema.classes (Object_store.schema db.Db.store))
  |> List.sort compare

(* abandon a Db mid-flight: close the paged files without checkpointing,
   exactly what a crash leaves behind *)
let crash_db (db : Db.t) =
  match db.Db.disk with
  | Some d ->
    db.Db.disk <- None;
    Store.close ~checkpoint:false d
  | None -> Alcotest.fail "no attached disk store to crash"

let some_title store =
  match Object_store.extent store "Document" with
  | d :: _ -> Object_store.peek_prop store d "title"
  | [] -> Alcotest.fail "no documents"

let dirty_up store =
  (* one of each op kind, all index-relevant *)
  let sec = List.hd (Object_store.extent store "Section") in
  let fresh =
    Object_store.create_object store ~cls:"Paragraph"
      [
        ("number", Value.Int 990);
        ("word_count", Value.Int 4096);
        ("content", Value.Str "replayed tail paragraph");
        ("section", Value.Obj sec);
      ]
  in
  let doc = List.hd (Object_store.extent store "Document") in
  Object_store.set_prop store doc "title" (Value.Str "Tail Title");
  (match
     List.find_opt
       (fun p -> not (Oid.equal p fresh))
       (Object_store.extent store "Paragraph")
   with
  | Some victim -> Object_store.delete_object store victim
  | None -> ())

let test_derived_fast_open_replays_tail () =
  F.with_temp_dir "soqm_derived" (fun dir ->
      let db0 = F.tiny_db () in
      Db.save db0 dir;
      check Alcotest.bool "save writes the image" true
        (Persist.read ~dir <> None);
      let db = Db.open_disk dir in
      dirty_up db.Db.store;
      crash_db db;
      (* the fast-path preconditions hold on disk: the image's stamp
         matches the store's checkpoint sequence and the crash left a
         WAL tail to replay *)
      (match Persist.read ~dir with
      | None -> Alcotest.fail "image unreadable after the crash"
      | Some img ->
        let t = Store.open_dir dir in
        check Alcotest.int "image stamped with the checkpoint seq"
          (Store.checkpoint_seq t) img.Persist.seq;
        check Alcotest.bool "WAL tail present" true
          (Store.recovered_ops t <> []);
        Store.close ~checkpoint:false t);
      let fast = Db.load dir in
      let fast_sig = derived_signature fast in
      let fast_base = base_image fast in
      (* the image is a pure cache: removing it forces the O(extent)
         rebuild, which must agree exactly *)
      Persist.remove ~dir;
      let rebuilt = Db.load dir in
      check Alcotest.bool "fast open = from-scratch rebuild" true
        (fast_sig = derived_signature rebuilt);
      check Alcotest.bool "base data agrees too" true
        (fast_base = base_image rebuilt);
      check F.value "tail update visible through the fast path"
        (Value.Str "Tail Title")
        (some_title fast.Db.store))

let test_derived_corrupt_or_stale_falls_back () =
  F.with_temp_dir "soqm_derived" (fun dir ->
      let db0 = F.tiny_db () in
      Db.save db0 dir;
      let oracle = Db.load dir in
      let oracle_sig = derived_signature oracle in
      (* flip a byte inside the image: CRC rejects it, load rebuilds *)
      let p = Persist.path ~dir in
      let size = (Unix.stat p).Unix.st_size in
      let fd = Unix.openfile p [ Unix.O_WRONLY ] 0 in
      ignore (Unix.lseek fd (size / 2) Unix.SEEK_SET);
      ignore (Unix.write_substring fd "\xff" 0 1);
      Unix.close fd;
      check Alcotest.(option reject) "corrupt image reads as None" None
        (Option.map ignore (Persist.read ~dir));
      let recovered = Db.load dir in
      check Alcotest.bool "corrupt image falls back to a full rebuild" true
        (oracle_sig = derived_signature recovered);
      (* stale stamp: checkpoint the store without rewriting the image *)
      Db.save db0 dir;
      let t = Store.open_dir dir in
      Store.apply t
        [
          Wal.Insert
            {
              oid = Oid.make ~cls:"Document" ~id:9999;
              props = [ ("title", Value.Str "Orphan") ];
            };
        ];
      Store.checkpoint t;
      Store.close t;
      (match Persist.read ~dir with
      | Some img ->
        let t' = Store.open_dir dir in
        check Alcotest.bool "stamp is stale now" true
          (img.Persist.seq <> Store.checkpoint_seq t');
        Store.close ~checkpoint:false t'
      | None -> Alcotest.fail "image vanished");
      let stale = Db.load dir in
      check Alcotest.bool "stale image ignored, document indexed" true
        (List.length
           (Soqm_storage.Hash_index.probe stale.Db.title_index
              (Object_store.counters stale.Db.store)
              (Value.Str "Orphan"))
        = 1))

(* torture: random DML against an attached store, crash at a random
   point, reopen through the image fast path — the derived state must
   equal a from-scratch rebuild, for any trace and any kill point. *)
type ddl =
  | SetWc of int * int
  | SetTitle of int * int
  | NewPara of int * int
  | DelPara of int

let ddl_gen =
  let open QCheck2.Gen in
  let ix = int_bound 999 in
  oneof
    [
      map2 (fun i wc -> SetWc (i, wc)) ix (int_range 0 2000);
      map2 (fun i s -> SetTitle (i, s)) ix (int_bound 9);
      map2 (fun i wc -> NewPara (i, wc)) ix (int_range 0 2000);
      map (fun i -> DelPara i) ix;
    ]

let apply_ddl store op =
  let pick cls i =
    match Object_store.extent store cls with
    | [] -> None
    | xs -> Some (List.nth xs (i mod List.length xs))
  in
  match op with
  | SetWc (i, wc) -> (
    match pick "Paragraph" i with
    | Some p -> Object_store.set_prop store p "word_count" (Value.Int wc)
    | None -> ())
  | SetTitle (i, s) -> (
    match pick "Document" i with
    | Some d ->
      Object_store.set_prop store d "title"
        (Value.Str (Printf.sprintf "Torture Title %d" s))
    | None -> ())
  | NewPara (i, wc) -> (
    match pick "Section" i with
    | Some sec ->
      ignore
        (Object_store.create_object store ~cls:"Paragraph"
           [
             ("number", Value.Int (1000 + i));
             ("word_count", Value.Int wc);
             ("content", Value.Str (Printf.sprintf "torture body %d" i));
             ("section", Value.Obj sec);
           ])
    | None -> ())
  | DelPara i -> (
    match pick "Paragraph" i with
    | Some p -> Object_store.delete_object store p
    | None -> ())

(* template database saved once; each case clones the directory *)
let derived_template =
  lazy
    (let dir =
       Filename.concat (Filename.get_temp_dir_name ())
         (Printf.sprintf "soqm_derived_template_%d" (Unix.getpid ()))
     in
     if not (Sys.file_exists dir) then begin
       let db0 = F.tiny_db () in
       Db.save db0 dir
     end;
     dir)

let clone_dir src dst =
  if not (Sys.file_exists dst) then Unix.mkdir dst 0o755;
  Array.iter
    (fun name ->
      let s = In_channel.with_open_bin (Filename.concat src name)
          In_channel.input_all
      in
      Out_channel.with_open_bin (Filename.concat dst name) (fun oc ->
          Out_channel.output_string oc s))
    (Sys.readdir src)

let prop_derived_torture (ops, kill_pct) =
  let template = Lazy.force derived_template in
  F.with_temp_dir "soqm_dtorture" (fun dir ->
      clone_dir template dir;
      let db = Db.open_disk dir in
      let keep = List.length ops * kill_pct / 100 in
      List.iteri
        (fun i op -> if i < keep then apply_ddl db.Db.store op)
        ops;
      crash_db db;
      let fast = Db.load dir in
      let fast_sig = derived_signature fast in
      let fast_base = base_image fast in
      Persist.remove ~dir;
      let rebuilt = Db.load dir in
      if
        fast_sig <> derived_signature rebuilt
        || fast_base <> base_image rebuilt
      then
        QCheck2.Test.fail_reportf
          "derived state diverged after %d/%d ops (kill %d%%)" keep
          (List.length ops) kill_pct;
      true)

let prop_derived_persistence_torture =
  QCheck2.Test.make ~count:15
    ~name:"image + WAL-tail replay = from-scratch rebuild, any kill point"
    QCheck2.Gen.(
      pair (list_size (int_range 1 25) ddl_gen) (int_range 0 100))
    prop_derived_torture

(* ------------------------------------------------------------------ *)
(* WAL recovery: deterministic cases                                   *)
(* ------------------------------------------------------------------ *)

let wal_path dir = Filename.concat dir "wal"

let test_recovery_replays_uncheckpointed () =
  F.with_temp_dir "soqm_disk" (fun dir ->
      let t = Store.create ~schema:item_schema dir in
      Store.apply t [ Wal.Insert { oid = item 0; props = [ ("n", Value.Int 1) ] } ];
      Store.apply t [ Wal.Insert { oid = item 1; props = [ ("n", Value.Int 2) ] } ];
      (* crash: dirty pages in the pool are lost, the WAL survives *)
      Store.close ~checkpoint:false t;
      let t' = Store.open_dir dir in
      check Alcotest.int "both batches redone" 2 (Store.recovered_batches t');
      check Alcotest.int "records restored" 2
        (List.length (Store.extent t' "Item"));
      check F.value "payload intact" (Value.Int 2)
        (List.assoc "n" (Store.fetch t' (item 1)));
      (* recovery is idempotent: reopening again replays the same WAL
         over the same (still unflushed) base image *)
      Store.close ~checkpoint:false t';
      let t'' = Store.open_dir dir in
      check Alcotest.int "stable under re-recovery" 2
        (List.length (Store.extent t'' "Item"));
      Store.close t'')

let test_recovery_discards_torn_tail () =
  F.with_temp_dir "soqm_disk" (fun dir ->
      let t = Store.create ~schema:item_schema dir in
      Store.apply t [ Wal.Insert { oid = item 0; props = [ ("n", Value.Int 1) ] } ];
      let committed = Store.wal_bytes t in
      (* the torn batch mixes every record kind, including the
         pre-imaged update ('V') and snapshotting delete ('E') frames *)
      Store.apply t
        [
          Wal.Insert { oid = item 1; props = [ ("n", Value.Int 2) ] };
          Wal.Update
            {
              oid = item 0;
              prop = "n";
              value = Value.Int 10;
              old_value = Value.Int 1;
            };
          Wal.Delete { oid = item 0; props = [ ("n", Value.Int 10) ] };
        ];
      let full = Store.wal_bytes t in
      Store.close ~checkpoint:false t;
      (* tear the second batch's tail *)
      Unix.truncate (wal_path dir) (committed + ((full - committed) / 2));
      let t' = Store.open_dir dir in
      check Alcotest.int "only the intact batch replays" 1
        (Store.recovered_batches t');
      check Alcotest.(list int) "its record is live" [ 0 ]
        (List.map Oid.id (Store.extent t' "Item"));
      check Alcotest.int "torn tail truncated away" committed
        (Store.wal_bytes t');
      (* corrupt a byte inside the surviving batch: checksum kills it *)
      Store.close ~checkpoint:false t';
      let fd = Unix.openfile (wal_path dir) [ Unix.O_WRONLY ] 0 in
      ignore (Unix.lseek fd (committed - 3) Unix.SEEK_SET);
      ignore (Unix.write_substring fd "\xff" 0 1);
      Unix.close fd;
      let t'' = Store.open_dir dir in
      check Alcotest.int "checksum failure discards the batch" 0
        (Store.recovered_batches t'');
      Store.close t'')

(* ------------------------------------------------------------------ *)
(* lock file: one process per database directory                       *)
(* ------------------------------------------------------------------ *)

let test_lock_blocks_second_process () =
  (* lockf locks are per-process, so the contender must be a real child
     process: fork, try to open the held directory, report via exit
     status.  (Forked before any domain is spawned.) *)
  F.with_temp_dir "soqm_lock" (fun dir ->
      let t = Store.create ~schema:item_schema dir in
      Store.apply t [ Wal.Insert { oid = item 0; props = [ ("n", Value.Int 1) ] } ];
      (match Unix.fork () with
      | 0 ->
        (* child: both open_dir and create must refuse *)
        let refused f =
          match f () with
          | (_ : Store.t) -> false
          | exception Store.Locked _ -> true
          | exception _ -> false
        in
        let ok =
          refused (fun () -> Store.open_dir dir)
          && refused (fun () -> Store.create ~schema:item_schema dir)
        in
        Unix._exit (if ok then 0 else 1)
      | pid ->
        let _, status = Unix.waitpid [] pid in
        check Alcotest.bool "second process fails fast with Locked" true
          (status = Unix.WEXITED 0));
      (* create-over-locked must not have destroyed the live store *)
      check Alcotest.bool "holder's data intact" true (Store.mem t (item 0));
      Store.close t;
      (* after close the lock is free again *)
      let t' = Store.open_dir dir in
      check Alcotest.bool "reopen after close" true (Store.mem t' (item 0));
      Store.close t')

(* ------------------------------------------------------------------ *)
(* group commit: commit_many batching and the leader/follower queue    *)
(* ------------------------------------------------------------------ *)

let test_commit_many_single_fsync () =
  F.with_temp_dir "soqm_group" (fun dir ->
      let t = Store.create ~schema:item_schema dir in
      let c = Store.counters t in
      let f0 = Counters.wal_fsyncs c in
      (* three batches through the group queue from one thread: each
         submit is its own flush here, but commit_many inside a flush
         of k batches costs one fsync *)
      let batches =
        List.init 3 (fun i ->
            [ Wal.Insert { oid = item i; props = [ ("n", Value.Int i) ] } ])
      in
      let tickets = List.map (Store.enqueue_group t) batches in
      Store.wait_group t (List.nth tickets 2);
      check Alcotest.int "three enqueued batches flush with one fsync"
        (f0 + 1) (Counters.wal_fsyncs c);
      check Alcotest.int "wal_commits counts every batch" 3
        (Counters.wal_commits c);
      check Alcotest.int "all records applied" 3
        (List.length (Store.extent t "Item"));
      (* waiting again on a flushed ticket is a no-op *)
      Store.wait_group t (List.hd tickets);
      (* crash without checkpoint: recovery replays all three batches *)
      Store.close ~checkpoint:false t;
      let t' = Store.open_dir dir in
      check Alcotest.int "grouped batches recover individually" 3
        (Store.recovered_batches t');
      check Alcotest.int "records restored" 3
        (List.length (Store.extent t' "Item"));
      Store.close t')

let test_group_commit_concurrent_coalescing () =
  F.with_temp_dir "soqm_group" (fun dir ->
      let t = Store.create ~schema:item_schema dir in
      Store.set_group_window t 0.005;
      let c = Store.counters t in
      let f0 = Counters.wal_fsyncs c in
      let n = 16 in
      let domains =
        List.init 4 (fun d ->
            Domain.spawn (fun () ->
                for i = 0 to (n / 4) - 1 do
                  let id = (d * n / 4) + i in
                  Store.apply_group t
                    [ Wal.Insert { oid = item id; props = [ ("n", Value.Int id) ] } ]
                done))
      in
      List.iter Domain.join domains;
      let fsyncs = Counters.wal_fsyncs c - f0 in
      check Alcotest.int "every batch committed" n (Counters.wal_commits c);
      check Alcotest.int "every record applied" n
        (List.length (Store.extent t "Item"));
      check Alcotest.bool
        (Printf.sprintf "fsyncs coalesced (%d < %d)" fsyncs n)
        true (fsyncs < n && fsyncs >= 1);
      Store.close t;
      let t' = Store.open_dir dir in
      check Alcotest.int "durable after checkpointed close" n
        (List.length (Store.extent t' "Item"));
      Store.close t')

(* A failing flush (WAL write or fsync error) must surface to every
   waiter in the drained group, not just the leader — a follower
   returning normally would report Committed on a batch that was never
   made durable. *)
let test_group_flush_failure_propagates () =
  let boom = Failure "fsync failed" in
  let g = Group_commit.create ~flush:(fun _ -> raise boom) () in
  let batch i = [ Wal.Insert { oid = item i; props = [] } ] in
  let t1 = Group_commit.enqueue g (batch 0) in
  let t2 = Group_commit.enqueue g (batch 1) in
  (* the first wait leads and drains both batches into the failing flush *)
  (match Group_commit.wait g t1 with
  | () -> Alcotest.fail "leader must see the flush failure"
  | exception Failure _ -> ());
  (* the second batch was in the same failed group: its (non-leading)
     wait must raise the same error instead of reporting durability *)
  (match Group_commit.wait g t2 with
  | () -> Alcotest.fail "follower must see the flush failure"
  | exception Failure _ -> ());
  check Alcotest.int "failed group leaves nothing pending" 0
    (Group_commit.pending g)

(* ------------------------------------------------------------------ *)
(* crash-recovery torture: random trace, random cut                    *)
(* ------------------------------------------------------------------ *)

(* oracle replay mirroring the store's idempotent upsert semantics *)
let oracle_apply tbl (op : Wal.op) =
  match op with
  | Wal.Insert { oid; props } -> Hashtbl.replace tbl oid props
  | Wal.Update { oid; prop; value; _ } ->
    let props =
      match Hashtbl.find_opt tbl oid with Some ps -> ps | None -> []
    in
    Hashtbl.replace tbl oid ((prop, value) :: List.remove_assoc prop props)
  | Wal.Delete { oid; _ } -> Hashtbl.remove tbl oid

let op_gen =
  let open QCheck2.Gen in
  let oid = map item (int_range 0 19) in
  let value =
    frequency
      [
        (4, map (fun n -> Value.Int n) small_signed_int);
        (4, map (fun s -> Value.Str s) (string_size ~gen:printable (int_range 0 40)));
        (* oversize: forces a head + continuation chain (v2 records),
           so torn-tail recovery also tortures chain reassembly *)
        (1, map (fun s -> Value.Str s) (string_size ~gen:printable (int_range 4200 9000)));
      ]
  in
  oneof
    [
      map2
        (fun o (n, s) ->
          Wal.Insert { oid = o; props = [ ("n", Value.Int n); ("s", s) ] })
        oid
        (pair small_signed_int value);
      map2
        (fun o v ->
          Wal.Update { oid = o; prop = "s"; value = v; old_value = Value.Null })
        oid value;
      map (fun o -> Wal.Delete { oid = o; props = [] }) oid;
    ]

let trace_gen =
  QCheck2.Gen.(
    pair
      (list_size (int_range 1 12) (list_size (int_range 1 5) op_gen))
      (* cut position as a fraction of the final WAL size, biased to
         land inside the log but covering both extremes *)
      (int_range 0 100))

let prop_torture (batches, cut_pct) =
  F.with_temp_dir "soqm_torture" (fun dir ->
      (* pool larger than the working set: no evictions before the
         crash, so the heap image stays at the (empty) base and recovery
         is driven by the WAL alone — the invariant that makes an
         arbitrary cut offset meaningful *)
      let t = Store.create ~pool_pages:512 ~schema:item_schema dir in
      let ends =
        List.map
          (fun ops ->
            Store.apply t ops;
            Store.wal_bytes t)
          batches
      in
      let total = Store.wal_bytes t in
      (* crash without flushing anything *)
      Store.close ~checkpoint:false t;
      let cut = total * cut_pct / 100 in
      Unix.truncate (wal_path dir) cut;
      let t' = Store.open_dir dir in
      let committed =
        List.concat
          (List.filteri (fun i _ -> List.nth ends i <= cut) batches)
      in
      let oracle = Hashtbl.create 32 in
      List.iter (oracle_apply oracle) committed;
      let expected =
        Hashtbl.fold (fun oid props acc -> (oid, sorted_props props) :: acc)
          oracle []
        |> List.sort (fun (a, _) (b, _) -> Int.compare (Oid.id a) (Oid.id b))
      in
      let actual = store_image t' in
      let batches_committed =
        List.length (List.filter (fun e -> e <= cut) ends)
      in
      let recovered_ok = Store.recovered_batches t' = batches_committed in
      let truncated_ok = Store.wal_bytes t' <= cut in
      Store.close ~checkpoint:false t';
      if not (expected = actual && recovered_ok && truncated_ok) then
        QCheck2.Test.fail_reportf
          "cut %d/%d bytes: %d/%d batches committed, store has %d records, \
           oracle %d, recovered=%d"
          cut total batches_committed (List.length ends) (List.length actual)
          (List.length expected) (Store.recovered_batches t');
      true)

let prop_crash_recovery_torture =
  QCheck2.Test.make ~count:60
    ~name:"WAL cut at any offset recovers the committed prefix exactly"
    trace_gen prop_torture

(* Grouped variant: batches reach the WAL through the group-commit
   queue, several per physical write, so a cut can now land in the
   middle of a coalesced write.  Recovery must still restore exactly
   the prefix of batches whose Commit frame survived — never a torn
   suffix of a group, never out of order. *)
let group_trace_gen =
  QCheck2.Gen.(
    pair
      (list_size (int_range 1 8)
         (list_size (int_range 1 4) (list_size (int_range 1 4) op_gen)))
      (int_range 0 100))

let prop_group_torture (groups, cut_pct) =
  F.with_temp_dir "soqm_gtorture" (fun dir ->
      let t = Store.create ~pool_pages:512 ~schema:item_schema dir in
      let group_ends =
        List.map
          (fun batches ->
            let tickets = List.map (Store.enqueue_group t) batches in
            Store.wait_group t (List.nth tickets (List.length tickets - 1));
            Store.wal_bytes t)
          groups
      in
      let total = Store.wal_bytes t in
      Store.close ~checkpoint:false t;
      let cut = total * cut_pct / 100 in
      Unix.truncate (wal_path dir) cut;
      let t' = Store.open_dir dir in
      let r = Store.recovered_batches t' in
      let all_batches = List.concat groups in
      (* a group whose write ended at or before the cut is fully
         committed; a group that started after the cut contributes
         nothing; a group torn by the cut contributes some prefix *)
      let sizes = List.map List.length groups in
      let low =
        List.fold_left2
          (fun acc size e -> if e <= cut then acc + size else acc)
          0 sizes group_ends
      in
      let starts = 0 :: List.filteri (fun i _ -> i < List.length group_ends - 1) group_ends in
      let high =
        List.fold_left2
          (fun acc size s -> if s < cut then acc + size else acc)
          0 sizes starts
      in
      let oracle = Hashtbl.create 32 in
      List.iteri
        (fun i ops -> if i < r then List.iter (oracle_apply oracle) ops)
        all_batches;
      let expected =
        Hashtbl.fold (fun oid props acc -> (oid, sorted_props props) :: acc)
          oracle []
        |> List.sort (fun (a, _) (b, _) -> Int.compare (Oid.id a) (Oid.id b))
      in
      let actual = store_image t' in
      let bounds_ok = low <= r && r <= high in
      let truncated_ok = Store.wal_bytes t' <= cut in
      Store.close ~checkpoint:false t';
      if not (expected = actual && bounds_ok && truncated_ok) then
        QCheck2.Test.fail_reportf
          "cut %d/%d bytes: recovered %d batches (bounds %d..%d), store has \
           %d records, prefix oracle %d"
          cut total r low high (List.length actual) (List.length expected);
      true)

let prop_group_crash_recovery_torture =
  QCheck2.Test.make ~count:60
    ~name:"cut inside a coalesced group-commit write recovers a clean prefix"
    group_trace_gen prop_group_torture

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "disk"
    [
      (* first: Unix.fork is only legal before any domain is spawned,
         and the pool/store tests below start domains *)
      ( "lock",
        [ F.case "second process refused" test_lock_blocks_second_process ] );
      ( "codec",
        [
          F.case "values roundtrip" test_codec_values;
          F.case "garbage rejected" test_codec_rejects_garbage;
          F.case "schema roundtrips" test_codec_schema_roundtrip;
        ] );
      ( "pages",
        [
          F.case "slot ops" test_page_ops;
          F.case "capacity" test_page_capacity;
          F.case "compaction reclaims dead space"
            test_page_compaction_reclaims_dead_space;
        ] );
      ( "columns",
        [
          F.case "torture values" test_column_torture_values;
          F.case "empty and all-null chunks" test_column_empty_and_all_null;
          QCheck_alcotest.to_alcotest prop_column_chunk_roundtrip;
          QCheck_alcotest.to_alcotest prop_column_selective;
          QCheck_alcotest.to_alcotest prop_column_fail_closed;
        ] );
      ( "pool",
        [
          F.case "hits and evictions" test_pool_hits_and_evictions;
          F.case "dirty write-back" test_pool_dirty_writeback;
          F.case "pins block eviction" test_pool_pinned_never_evicted;
        ] );
      ( "store",
        [
          F.case "roundtrip and reopen" test_store_roundtrip;
          F.case "records span pages" test_store_records_span_pages;
          F.case "prefetch parity" test_store_prefetch_parity;
          F.case "db attachment" test_db_disk_attachment;
        ] );
      ( "columnar",
        [
          F.case "vacuum roundtrip and reopen" test_vacuum_roundtrip_and_reopen;
          F.case "DML shadows, tombstones persist" test_vacuum_dml_shadowing;
          F.case "scan costs and counters" test_vacuum_scan_costs_and_counters;
          F.case "corrupt segments fail closed"
            test_colseg_corruption_fails_closed;
          F.case "Db.vacuum plumbing" test_db_vacuum_plumbing;
        ] );
      ( "clustering",
        [
          F.case "insert-time placement clusters siblings"
            test_insert_placement_clusters;
          F.case "`Cluster vacuum improves locality"
            test_cluster_vacuum_improves_locality;
        ] );
      ( "overflow",
        [ F.case "chains round-trip, recover, vacuum" test_overflow_chains_roundtrip ] );
      ( "derived-image",
        [
          F.case "fast open replays the WAL tail"
            test_derived_fast_open_replays_tail;
          F.case "corrupt or stale image falls back"
            test_derived_corrupt_or_stale_falls_back;
          QCheck_alcotest.to_alcotest prop_derived_persistence_torture;
        ] );
      ( "group-commit",
        [
          F.case "commit_many costs one fsync" test_commit_many_single_fsync;
          F.case "concurrent commits coalesce"
            test_group_commit_concurrent_coalescing;
          F.case "flush failure reaches every waiter"
            test_group_flush_failure_propagates;
        ] );
      ( "recovery",
        [
          F.case "uncheckpointed batches replay" test_recovery_replays_uncheckpointed;
          F.case "torn tails discarded" test_recovery_discards_torn_tail;
          QCheck_alcotest.to_alcotest prop_crash_recovery_torture;
          QCheck_alcotest.to_alcotest prop_group_crash_recovery_torture;
        ] );
    ]
