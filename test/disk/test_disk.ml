(* The paged disk storage subsystem: codec, slotted pages, buffer pool,
   WAL commit/recovery, and the store end to end.

   The centerpiece is the crash-recovery torture property: a random DML
   trace is committed batch by batch, the WAL is cut at a random byte
   offset (simulating a crash with a torn tail), the directory is
   reopened, and the recovered contents must equal an oracle replay of
   exactly the batches whose Commit frame survived the cut — for any
   offset. *)

open Soqm_vml
open Soqm_disk
module F = Soqm_testlib.Fixtures

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* codec                                                               *)
(* ------------------------------------------------------------------ *)

let roundtrip_value v =
  let buf = Buffer.create 64 in
  Codec.write_value buf v;
  Codec.read_value (Codec.cursor (Buffer.contents buf))

let test_codec_values () =
  let samples =
    [
      Value.Null;
      Value.Bool true;
      Value.Bool false;
      Value.Int 0;
      Value.Int (-1);
      Value.Int max_int;
      Value.Int min_int;
      Value.Real 3.25;
      Value.Real nan;
      Value.Real infinity;
      Value.Str "";
      Value.Str "héllo\x00world";
      Value.Obj (Oid.make ~cls:"Paragraph" ~id:42);
      Value.Cls "Document";
      Value.set [ Value.Int 3; Value.Int 1; Value.Int 2 ];
      Value.tuple [ ("b", Value.Int 2); ("a", Value.Str "x") ];
      Value.Arr [| Value.Int 1; Value.Null |];
      Value.dict [ (Value.Str "k", Value.Int 9) ];
    ]
  in
  List.iter
    (fun v ->
      check F.value "value roundtrips" v (roundtrip_value v);
      (* NaN breaks Value.equal reflexivity; spot-check the tag *)
      ())
    (List.filter (fun v -> Value.equal v v) samples);
  (match roundtrip_value (Value.Real nan) with
  | Value.Real r -> check Alcotest.bool "nan survives" true (Float.is_nan r)
  | _ -> Alcotest.fail "nan decoded to a different constructor")

let test_codec_rejects_garbage () =
  let rejects name s f =
    Alcotest.match_raises name
      (function Codec.Corrupt _ -> true | _ -> false)
      (fun () -> ignore (f (Codec.cursor s)))
  in
  rejects "truncated varint" "\xff\xff" Codec.read_uvarint;
  rejects "truncated string" "\x0aab" Codec.read_string;
  rejects "unknown value tag" "\x7f" Codec.read_value;
  rejects "empty input" "" Codec.read_value

let test_codec_schema_roundtrip () =
  let schema = Soqm_core.Doc_schema.schema in
  let buf = Buffer.create 256 in
  Codec.write_schema buf schema;
  let schema' = Codec.read_schema (Codec.cursor (Buffer.contents buf)) in
  check
    Alcotest.(list string)
    "class names survive" (Schema.class_names schema)
    (Schema.class_names schema');
  check Alcotest.bool "inverse links survive" true
    (Schema.inverse_of schema' ~cls:"Section" ~prop:"document"
    = Schema.inverse_of schema ~cls:"Section" ~prop:"document")

(* ------------------------------------------------------------------ *)
(* slotted pages                                                       *)
(* ------------------------------------------------------------------ *)

let test_page_ops () =
  let p = Bytes.create Page.size in
  Page.format p;
  check Alcotest.bool "formatted page is not blank" false (Page.is_blank p);
  check Alcotest.int "no slots yet" 0 (Page.nslots p);
  let s0 = Page.insert p "alpha" in
  let s1 = Page.insert p "beta" in
  let s2 = Page.insert p "gamma" in
  check Alcotest.(list int) "slot numbers ascend" [ 0; 1; 2 ] [ s0; s1; s2 ];
  check Alcotest.(option string) "read back" (Some "beta") (Page.read p s1);
  (* deletion marks the slot dead without renumbering the others *)
  Page.delete p s1;
  Page.delete p s1 (* idempotent *);
  Page.delete p 99 (* out of range: ignored *);
  check Alcotest.(option string) "dead slot" None (Page.read p s1);
  check Alcotest.(option string) "later slot stable" (Some "gamma")
    (Page.read p s2);
  let seen = ref [] in
  Page.iter p (fun slot r -> seen := (slot, r) :: !seen);
  check
    Alcotest.(list (pair int string))
    "iter skips dead slots"
    [ (0, "alpha"); (2, "gamma") ]
    (List.rev !seen)

let test_page_capacity () =
  let p = Bytes.create Page.size in
  Page.format p;
  let big = String.make Page.capacity 'x' in
  check Alcotest.bool "full-capacity record fits" true (Page.has_room p (String.length big));
  ignore (Page.insert p big);
  check Alcotest.bool "page now full" false (Page.has_room p 1);
  Alcotest.check_raises "overflow rejected"
    (Invalid_argument "Page.insert: record does not fit")
    (fun () -> ignore (Page.insert p "y"))

let test_page_compaction_reclaims_dead_space () =
  (* fill a page, delete every other record, then insert a record larger
     than the watermark gap: only in-page compaction can make room, and
     it must preserve surviving slot numbers and contents *)
  let p = Bytes.create Page.size in
  Page.format p;
  let payload i = Printf.sprintf "%02d-%s" i (String.make 120 (Char.chr (97 + (i mod 26)))) in
  let slots = ref [] in
  (try
     let i = ref 0 in
     while Page.has_room p (String.length (payload !i)) do
       slots := Page.insert p (payload !i) :: !slots;
       incr i
     done
   with Invalid_argument _ -> ());
  let slots = Array.of_list (List.rev !slots) in
  check Alcotest.bool "page filled" true (Array.length slots > 10);
  let gap_full = Page.free_space p in
  Array.iteri (fun i s -> if i mod 2 = 0 then Page.delete p s) slots;
  check Alcotest.bool "dead bytes accumulated" true (Page.dead_bytes p > 0);
  (* the watermark gap did not grow: deletion alone reclaims nothing *)
  check Alcotest.int "gap unchanged by deletes" gap_full (Page.free_space p);
  let big = String.make (gap_full + 100) 'Z' in
  check Alcotest.bool "room counts compactable space" true
    (Page.has_room p (String.length big));
  let bslot = Page.insert p big in
  check Alcotest.(option string) "compacted insert readable" (Some big)
    (Page.read p bslot);
  Array.iteri
    (fun i s ->
      if i mod 2 = 1 then
        check Alcotest.(option string)
          (Printf.sprintf "survivor slot %d intact" s)
          (Some (payload i)) (Page.read p s))
    slots;
  check Alcotest.bool "dead slot entry recycled" true
    (Array.exists (fun s -> s = bslot) slots)

(* ------------------------------------------------------------------ *)
(* column chunks: codec roundtrip, torture values, corruption          *)
(* ------------------------------------------------------------------ *)

let sorted_row props =
  (* canonical on-disk order; duplicate property names keep the last
     binding, mirroring the store's upsert semantics *)
  let tbl = Hashtbl.create 8 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) props;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let column_roundtrip recs =
  let chunk = Column.decode (Column.encode recs) in
  Array.to_list (Column.rows chunk)
  |> List.map (fun (id, props) -> (id, sorted_row props))

let test_column_torture_values () =
  (* one record per corner: min_int/max_int ints, huge and empty and
     NUL-bearing strings, explicit Nulls (generic-encoding fallback),
     absent properties, structured values *)
  let huge = String.make 100_000 'h' in
  let recs =
    [|
      (0, [ ("i", Value.Int min_int); ("s", Value.Str "") ]);
      (1, [ ("i", Value.Int max_int); ("s", Value.Str huge) ]);
      (2, [ ("i", Value.Null); ("s", Value.Str "a\x00b") ]);
      (5, [ ("s", Value.Str huge); ("extra", Value.Bool false) ]);
      (9, [ ("i", Value.Int 0) ]);
      ( 12,
        [
          ("set", Value.set [ Value.Int 2; Value.Int 1 ]);
          ("obj", Value.Obj (Oid.make ~cls:"Item" ~id:3));
        ] );
      (100, []);
    |]
  in
  let expect =
    Array.to_list recs |> List.map (fun (id, ps) -> (id, sorted_row ps))
  in
  check Alcotest.bool "torture rows roundtrip" true
    (expect = column_roundtrip recs);
  (* selective decode agrees with full reassembly *)
  let chunk = Column.decode (Column.encode recs) in
  (match Column.find chunk "i" with
  | None -> Alcotest.fail "column i missing from directory"
  | Some col ->
    check
      Alcotest.(list int)
      "presence bitmap" [ 0; 1; 2; 4 ]
      (Column.presence chunk col);
    let vals = Column.read_column chunk col in
    check Alcotest.bool "read_column values" true
      (vals
      = [|
          Some (Value.Int min_int);
          Some (Value.Int max_int);
          Some Value.Null;
          None;
          Some (Value.Int 0);
          None;
          None;
        |]));
  check Alcotest.bool "unknown property absent" true
    (Column.find chunk "nope" = None)

let test_column_empty_and_all_null () =
  (* the degenerate chunks: zero rows, and a column that is Null on
     every present row (generic encoding, full presence) *)
  check Alcotest.bool "empty chunk roundtrips" true ([] = column_roundtrip [||]);
  let all_null = Array.init 6 (fun i -> (i, [ ("n", Value.Null) ])) in
  check Alcotest.bool "all-null column roundtrips" true
    (Array.to_list all_null |> List.map (fun (id, ps) -> (id, sorted_row ps))
    = column_roundtrip all_null);
  Alcotest.check_raises "non-ascending ids rejected"
    (Invalid_argument "Column.encode: oids not ascending")
    (fun () -> ignore (Column.encode [| (3, []); (3, []) |]))

let value_gen =
  let open QCheck2.Gen in
  oneof
    [
      return Value.Null;
      map (fun b -> Value.Bool b) bool;
      map (fun n -> Value.Int n) (oneof [ small_signed_int; int ]);
      map (fun s -> Value.Str s) (string_size ~gen:printable (int_range 0 30));
      (* skewed strings exercise the dictionary encoding *)
      map
        (fun i -> Value.Str (Printf.sprintf "tag-%d" (i mod 3)))
        (int_range 0 9);
      map (fun id -> Value.Obj (Oid.make ~cls:"Item" ~id)) (int_range 0 99);
      map (fun xs -> Value.set (List.map (fun n -> Value.Int n) xs))
        (list_size (int_range 0 4) small_signed_int);
    ]

let chunk_gen =
  let open QCheck2.Gen in
  let props =
    (* distinct names per row: property lists are maps (the store upserts
       by name before any record reaches the codec) *)
    map
      (fun ps ->
        List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) ps)
      (list_size (int_range 0 5)
         (pair (oneofl [ "a"; "b"; "c"; "d"; "e" ]) value_gen))
  in
  (* strictly ascending ids via positive gaps *)
  map
    (fun rows ->
      let id = ref (-1) in
      Array.of_list
        (List.map
           (fun (gap, ps) ->
             id := !id + 1 + gap;
             (!id, ps))
           rows))
    (list_size (int_range 0 40) (pair (int_range 0 5) props))

let prop_column_roundtrip recs =
  let expect =
    Array.to_list recs |> List.map (fun (id, ps) -> (id, sorted_row ps))
  in
  let got = column_roundtrip recs in
  if expect <> got then
    QCheck2.Test.fail_reportf "chunk of %d rows did not roundtrip"
      (Array.length recs);
  true

let prop_column_chunk_roundtrip =
  QCheck2.Test.make ~count:200
    ~name:"column chunks roundtrip arbitrary records" chunk_gen
    prop_column_roundtrip

let prop_column_selective_parity recs =
  (* every column read selectively must agree with full reassembly *)
  let chunk = Column.decode (Column.encode recs) in
  let full = Column.rows chunk in
  Array.iter
    (fun (col : Column.column) ->
      let vals = Column.read_column chunk col in
      Array.iteri
        (fun row v ->
          let _, props = full.(row) in
          let expect = List.assoc_opt col.Column.cname props in
          if v <> expect then
            QCheck2.Test.fail_reportf "column %s row %d diverges"
              col.Column.cname row)
        vals)
    chunk.Column.columns;
  true

let prop_column_selective =
  QCheck2.Test.make ~count:200
    ~name:"selective column reads agree with full reassembly" chunk_gen
    prop_column_selective_parity

let prop_column_corruption (recs, pos, byte) =
  (* flip one byte anywhere in the payload: decode must either fail
     closed with Codec.Corrupt or still produce well-formed rows — it
     must never raise anything else *)
  let payload = Bytes.of_string (Column.encode recs) in
  if Bytes.length payload = 0 then true
  else begin
    let pos = pos mod Bytes.length payload in
    let flipped = Char.chr (Char.code (Bytes.get payload pos) lxor byte) in
    Bytes.set payload pos flipped;
    match Column.decode (Bytes.to_string payload) with
    | chunk ->
      (* survived the header checks; forcing the columns may still fail,
         but only with the typed error *)
      (try
         Array.iter
           (fun col -> ignore (Column.read_column chunk col))
           chunk.Column.columns
       with Codec.Corrupt _ -> ());
      true
    | exception Codec.Corrupt _ -> true
    | exception Invalid_argument _ -> true (* huge bogus length prefix *)
    | exception e ->
      QCheck2.Test.fail_reportf "byte %d flipped: escaped with %s" pos
        (Printexc.to_string e)
  end

let prop_column_fail_closed =
  QCheck2.Test.make ~count:300
    ~name:"corrupt chunk payloads fail closed with Codec.Corrupt"
    QCheck2.Gen.(triple chunk_gen (int_bound 10_000) (int_range 1 255))
    prop_column_corruption

(* ------------------------------------------------------------------ *)
(* buffer pool                                                         *)
(* ------------------------------------------------------------------ *)

(* a pool over an in-memory "disk" of formatted pages *)
let memory_pool ~pages =
  let disk = Hashtbl.create 16 in
  let counters = Counters.create () in
  let read_page ~cls ~page buf =
    match Hashtbl.find_opt disk (cls, page) with
    | Some img -> Bytes.blit img 0 buf 0 Page.size
    | None -> Bytes.fill buf 0 Page.size '\000'
  in
  let write_page ~cls ~page buf =
    Hashtbl.replace disk (cls, page) (Bytes.copy buf)
  in
  (Buffer_pool.create ~pages ~counters ~read_page ~write_page, disk, counters)

let test_pool_hits_and_evictions () =
  let pool, _, c = memory_pool ~pages:4 in
  check Alcotest.int "capacity respected" 4 (Buffer_pool.capacity pool);
  (* touch 4 pages: all cold misses *)
  for page = 1 to 4 do
    ignore (Buffer_pool.pin pool ~cls:"A" ~page);
    Buffer_pool.unpin pool ~cls:"A" ~page ~dirty:false
  done;
  check Alcotest.int "4 cold reads" 4 (Counters.pages_read c);
  check Alcotest.int "no hits yet" 0 (Counters.pool_hits c);
  (* touch them again: all hits, no traffic *)
  for page = 1 to 4 do
    ignore (Buffer_pool.pin pool ~cls:"A" ~page);
    Buffer_pool.unpin pool ~cls:"A" ~page ~dirty:false
  done;
  check Alcotest.int "re-reads hit" 4 (Counters.pool_hits c);
  check Alcotest.int "no extra reads" 4 (Counters.pages_read c);
  (* a 5th page forces one eviction *)
  ignore (Buffer_pool.pin pool ~cls:"A" ~page:5);
  Buffer_pool.unpin pool ~cls:"A" ~page:5 ~dirty:false;
  check Alcotest.int "one eviction" 1 (Counters.pool_evictions c);
  check Alcotest.int "still 4 resident" 4
    (List.length (Buffer_pool.resident pool))

let test_pool_dirty_writeback () =
  let pool, disk, c = memory_pool ~pages:4 in
  let data = Buffer_pool.pin pool ~cls:"A" ~page:1 in
  Page.format data;
  ignore (Page.insert data "persisted");
  Buffer_pool.unpin pool ~cls:"A" ~page:1 ~dirty:true;
  check Alcotest.int "not written yet" 0 (Counters.pages_written c);
  Buffer_pool.flush pool;
  check Alcotest.int "flushed once" 1 (Counters.pages_written c);
  (match Hashtbl.find_opt disk ("A", 1) with
  | Some img -> check Alcotest.(option string) "image holds the record"
      (Some "persisted")
      (Page.read (Bytes.copy img) 0)
  | None -> Alcotest.fail "dirty page never reached the disk");
  (* flushing again writes nothing: the frame is clean *)
  Buffer_pool.flush pool;
  check Alcotest.int "clean frames not rewritten" 1 (Counters.pages_written c)

let test_pool_pinned_never_evicted () =
  let pool, _, _ = memory_pool ~pages:4 in
  (* pin all frames and ask for one more *)
  for page = 1 to 4 do
    ignore (Buffer_pool.pin pool ~cls:"A" ~page)
  done;
  Alcotest.match_raises "all-pinned pool refuses"
    (function Failure _ -> true | _ -> false)
    (fun () -> ignore (Buffer_pool.pin pool ~cls:"A" ~page:5));
  (* release one; the next pin succeeds by evicting it *)
  Buffer_pool.unpin pool ~cls:"A" ~page:2 ~dirty:false;
  ignore (Buffer_pool.pin pool ~cls:"A" ~page:5);
  check Alcotest.bool "victim was the unpinned page" false
    (List.mem ("A", 2) (Buffer_pool.resident pool))

(* ------------------------------------------------------------------ *)
(* store: basics, reopen, parity with the in-memory path               *)
(* ------------------------------------------------------------------ *)

let item_schema =
  Schema.make
    [
      Schema.cls "Item"
        ~properties:
          [ Schema.prop "n" Vtype.TInt; Schema.prop "s" Vtype.TString ];
    ]

let item id = Oid.make ~cls:"Item" ~id

let sorted_props ps =
  List.sort (fun (a, _) (b, _) -> String.compare a b) ps

let store_image t =
  (* oid -> sorted props, via the page scan *)
  fst (Store.scan_all t)
  |> List.map (fun (oid, props) -> (oid, sorted_props props))

let test_store_roundtrip () =
  F.with_temp_dir "soqm_disk" (fun dir ->
      let t = Store.create ~schema:item_schema dir in
      Store.apply t
        [
          Wal.Insert { oid = item 0; props = [ ("n", Value.Int 1); ("s", Value.Str "a") ] };
          Wal.Insert { oid = item 1; props = [ ("n", Value.Int 2); ("s", Value.Str "b") ] };
        ];
      Store.apply t [ Wal.Update { oid = item 0; prop = "n"; value = Value.Int 7 } ];
      Store.apply t [ Wal.Insert { oid = item 2; props = [ ("n", Value.Int 3) ] } ];
      Store.apply t [ Wal.Delete { oid = item 1 } ];
      check Alcotest.bool "mem sees live" true (Store.mem t (item 0));
      check Alcotest.bool "mem sees deleted" false (Store.mem t (item 1));
      check F.value "update applied" (Value.Int 7)
        (List.assoc "n" (Store.fetch t (item 0)));
      check Alcotest.int "next id past highest" 3 (Store.next_id t);
      let before = store_image t in
      Store.close t (* checkpoints: WAL empty, pages durable *);
      let t' = Store.open_dir dir in
      check Alcotest.int "clean reopen recovers nothing" 0
        (Store.recovered_batches t');
      check Alcotest.int "WAL empty after checkpoint" 0 (Store.wal_bytes t');
      check Alcotest.bool "contents survive reopen" true
        (before = store_image t');
      check
        Alcotest.(list int)
        "extent in allocation order" [ 0; 2 ]
        (List.map Oid.id (Store.extent t' "Item"));
      Store.close t')

let test_store_records_span_pages () =
  (* enough records that every class needs several pages, with updates
     relocating rows across them *)
  F.with_temp_dir "soqm_disk" (fun dir ->
      let t = Store.create ~schema:item_schema dir in
      let blob i = String.make 300 (Char.chr (65 + (i mod 26))) in
      for i = 0 to 99 do
        Store.apply t
          [
            Wal.Insert
              { oid = item i; props = [ ("n", Value.Int i); ("s", Value.Str (blob i)) ] };
          ]
      done;
      for i = 0 to 99 do
        if i mod 3 = 0 then
          Store.apply t
            [ Wal.Update { oid = item i; prop = "n"; value = Value.Int (-i) } ]
      done;
      check Alcotest.bool "multiple pages allocated" true
        (Store.data_pages t "Item" > 5);
      let rows, pages = Store.scan t "Item" in
      check Alcotest.int "all rows survive relocation" 100 (List.length rows);
      check Alcotest.int "scan touched every page" (Store.data_pages t "Item")
        pages;
      List.iteri
        (fun i (oid, props) ->
          check Alcotest.int "allocation order" i (Oid.id oid);
          let expect = if i mod 3 = 0 then -i else i in
          check F.value "updated in place" (Value.Int expect)
            (List.assoc "n" props))
        rows;
      (* oversized record rejected with a typed error *)
      Alcotest.match_raises "page-capacity overflow"
        (function Store.Format_error _ -> true | _ -> false)
        (fun () ->
          Store.apply t
            [
              Wal.Insert
                {
                  oid = item 999;
                  props = [ ("s", Value.Str (String.make 5000 'x')) ];
                };
            ]);
      Store.close t)

let test_store_prefetch_parity () =
  F.with_temp_dir "soqm_disk" (fun dir ->
      let t = Store.create ~schema:item_schema dir in
      for i = 0 to 199 do
        Store.apply t
          [
            Wal.Insert
              {
                oid = item i;
                props =
                  [ ("n", Value.Int i); ("s", Value.Str (String.make 100 'p')) ];
              };
          ]
      done;
      let plain = Store.scan ~prefetch:false t "Item" in
      let pre = Store.scan ~prefetch:true t "Item" in
      check Alcotest.bool "prefetched scan returns identical rows" true
        (plain = pre);
      Store.close t)

let test_db_disk_attachment () =
  (* Db.open_disk keeps the store attached: DML reaches the WAL, full
     scans drive pool traffic, close checkpoints *)
  F.with_temp_dir "soqm_db" (fun dir ->
      let db0 = F.tiny_db () in
      Soqm_core.Db.save db0 dir;
      let db = Soqm_core.Db.open_disk dir in
      (match db.Soqm_core.Db.disk with
      | None -> Alcotest.fail "open_disk did not attach the store"
      | Some d ->
        check Alcotest.int "clean open" 0 (Store.recovered_batches d);
        let wal0 = Store.wal_bytes d in
        let store = db.Soqm_core.Db.store in
        let oid =
          Object_store.create_object store ~cls:"Document"
            [ ("title", Value.Str "Crash Consistency") ]
        in
        check Alcotest.bool "DML reached the WAL" true
          (Store.wal_bytes d > wal0);
        check Alcotest.bool "and the pages" true (Store.mem d oid);
        Object_store.set_prop store oid "title" (Value.Str "Recovery");
        check F.value "update reached the pages" (Value.Str "Recovery")
          (List.assoc "title" (Store.fetch d oid)));
      Soqm_core.Db.close db;
      check Alcotest.bool "close detaches" true
        (db.Soqm_core.Db.disk = None);
      (* reload: the change is durable, queries agree with memory *)
      let db' = Soqm_core.Db.load dir in
      let titles cls_db =
        List.map
          (fun o -> Object_store.peek_prop cls_db.Soqm_core.Db.store o "title")
          (Object_store.extent cls_db.Soqm_core.Db.store "Document")
      in
      check Alcotest.bool "documents survive the round trip" true
        (List.mem (Value.Str "Recovery") (titles db')))

(* ------------------------------------------------------------------ *)
(* columnar segments: vacuum, shadowing, tombstones, corruption        *)
(* ------------------------------------------------------------------ *)

let populate_items t n =
  for i = 0 to n - 1 do
    Store.apply t
      [
        Wal.Insert
          {
            oid = item i;
            props =
              [
                ("n", Value.Int i);
                (* three distinct strings: dictionary-friendly *)
                ("s", Value.Str (Printf.sprintf "tag-%d" (i mod 3)));
              ];
          };
      ]
  done

let test_vacuum_roundtrip_and_reopen () =
  F.with_temp_dir "soqm_vac" (fun dir ->
      let t = Store.create ~schema:item_schema dir in
      populate_items t 150;
      let before = store_image t in
      let heap_pages = Store.data_pages t "Item" in
      check Alcotest.bool "row format before vacuum" false
        (Store.is_columnar t "Item");
      let n = Store.vacuum t "Item" in
      check Alcotest.int "every row rewritten" 150 n;
      check Alcotest.bool "flagged columnar" true (Store.is_columnar t "Item");
      check Alcotest.(list string) "columnar class listed" [ "Item" ]
        (Store.columnar_classes t);
      check Alcotest.int "heap emptied" 0 (Store.data_pages t "Item");
      check Alcotest.int "columnar rows" 150 (Store.columnar_rows t "Item");
      check Alcotest.bool "columnar smaller than the heap it replaced" true
        (Store.columnar_bytes t "Item" < heap_pages * Page.size);
      check Alcotest.bool "contents identical after vacuum" true
        (before = store_image t);
      check F.value "point fetch served from columns" (Value.Int 42)
        (List.assoc "n" (Store.fetch t (item 42)));
      Store.close t;
      (* reopen: the columnar flag and image come back from meta *)
      let t' = Store.open_dir dir in
      check Alcotest.bool "columnar after reopen" true
        (Store.is_columnar t' "Item");
      check Alcotest.bool "contents identical after reopen" true
        (before = store_image t');
      Store.close t';
      (* vacuum is idempotent over an unchanged class *)
      let t'' = Store.open_dir dir in
      check Alcotest.int "re-vacuum rewrites the same rows" 150
        (Store.vacuum t'' "Item");
      check Alcotest.bool "contents stable" true (before = store_image t'');
      Store.close t'')

let test_vacuum_dml_shadowing () =
  F.with_temp_dir "soqm_vac" (fun dir ->
      let t = Store.create ~schema:item_schema dir in
      populate_items t 60;
      ignore (Store.vacuum t "Item");
      (* post-vacuum DML: update shadows, delete tombstones, insert lands
         in the heap *)
      Store.apply t
        [ Wal.Update { oid = item 7; prop = "n"; value = Value.Int (-7) } ];
      Store.apply t [ Wal.Delete { oid = item 8 } ];
      Store.apply t
        [ Wal.Insert { oid = item 60; props = [ ("n", Value.Int 60) ] } ];
      let live () =
        List.map Oid.id (Store.extent t "Item") |> List.sort Int.compare
      in
      check Alcotest.bool "delete hides the columnar row" true
        (not (List.mem 8 (live ())));
      check Alcotest.bool "insert visible" true (List.mem 60 (live ()));
      check F.value "update shadows the columnar value" (Value.Int (-7))
        (List.assoc "n" (Store.fetch t (item 7)));
      (* two tombstones: the delete, and the update — relocating a
         columnar row into the heap tombstones its columnar copy so it
         can never resurrect *)
      check Alcotest.int "tombstones recorded" 2
        (Store.columnar_tombstones t "Item");
      (* the WAL alone carries the tombstone until a checkpoint persists
         the sidecar: both a crash-reopen (WAL replay) and a clean
         checkpointed close must restore it *)
      Store.close ~checkpoint:false t;
      let t' = Store.open_dir dir in
      check Alcotest.int "tombstones recovered from the WAL" 2
        (Store.columnar_tombstones t' "Item");
      check F.value "shadow recovered" (Value.Int (-7))
        (List.assoc "n" (Store.fetch t' (item 7)));
      Store.close t' (* checkpoint: sidecar + meta durable, WAL empty *);
      let t'' = Store.open_dir dir in
      check Alcotest.int "tombstones persisted via checkpoint" 2
        (Store.columnar_tombstones t'' "Item");
      check Alcotest.bool "deleted row stays hidden" false
        (Store.mem t'' (item 8));
      (* re-vacuum folds the shadow and drops the tombstone *)
      ignore (Store.vacuum t'' "Item");
      check Alcotest.int "tombstones folded away" 0
        (Store.columnar_tombstones t'' "Item");
      check F.value "folded value" (Value.Int (-7))
        (List.assoc "n" (Store.fetch t'' (item 7)));
      check Alcotest.int "row count excludes the deleted" 60
        (Store.columnar_rows t'' "Item");
      Store.close t'')

let test_vacuum_scan_costs_and_counters () =
  F.with_temp_dir "soqm_vac" (fun dir ->
      let t = Store.create ~schema:item_schema dir in
      populate_items t 200;
      let c = Store.counters t in
      (* row path: record bytes charged to bytes_read, every property
         decoded.  These live in the storage counter family, which
         accumulates across a workload — reset_storage, not the per-run
         reset, clears them *)
      Counters.reset_storage c;
      let rows, pages = Store.scan t "Item" in
      let row_bytes = Counters.bytes_read c in
      check Alcotest.bool "row scan: record bytes charged" true (row_bytes > 0);
      check Alcotest.bool "row scan: values decoded" true
        (Counters.values_decoded c >= 400);
      let row_pair = Store.scan_cost t "Item" in
      check Alcotest.bool "row scan_cost = pages * page size" true
        (row_pair = (pages, pages * Page.size));
      ignore (Store.vacuum t "Item");
      (* columnar full scan: chunk payloads, not pages *)
      Counters.reset_storage c;
      let crows, _ = Store.scan t "Item" in
      let full_bytes = Counters.bytes_read c in
      check Alcotest.bool "columnar scan rows identical" true
        (List.map snd rows |> List.map sorted_props
        = (List.map snd crows |> List.map sorted_props));
      check Alcotest.bool "columnar scan charges payload bytes" true
        (full_bytes > 0 && full_bytes < pages * Page.size);
      (* selective scan of the dictionary string column decodes fewer
         bytes than the full scan *)
      Counters.reset_storage c;
      let svals = Store.scan_columns t "Item" [ "s" ] in
      let sel_bytes = Counters.bytes_read c in
      check Alcotest.int "selective scan sees every row" 200
        (List.length svals);
      check Alcotest.bool
        (Printf.sprintf "selective < full decode (%d < %d)" sel_bytes
           full_bytes)
        true
        (sel_bytes < full_bytes);
      check Alcotest.bool "selective values correct" true
        (List.for_all
           (fun (oid, vs) ->
             vs = [ Some (Value.Str (Printf.sprintf "tag-%d" (Oid.id oid mod 3))) ])
           svals);
      (* the scan traffic model mirrors what explain --analyze charges *)
      Counters.reset_storage c;
      let _, meta_bytes = Store.scan_cost t "Item" in
      check Alcotest.int "scan_cost charges its own bytes" meta_bytes
        (Counters.bytes_read c);
      check Alcotest.bool "columnar meta cost below full decode" true
        (meta_bytes < full_bytes);
      Store.close t)

let test_colseg_corruption_fails_closed () =
  F.with_temp_dir "soqm_vac" (fun dir ->
      let t = Store.create ~schema:item_schema dir in
      populate_items t 80;
      ignore (Store.vacuum t "Item");
      Store.close t;
      let seg = Colseg.path ~dir ~cls:"Item" in
      let size = (Unix.stat seg).Unix.st_size in
      (* flip one byte in the last frame's CRC trailer *)
      let fd = Unix.openfile seg [ Unix.O_WRONLY ] 0 in
      ignore (Unix.lseek fd (size - 2) Unix.SEEK_SET);
      ignore (Unix.write_substring fd "\xaa" 0 1);
      Unix.close fd;
      Alcotest.match_raises "trailer damage detected on open"
        (function
          | Store.Format_error _ | Colseg.Format_error _ -> true | _ -> false)
        (fun () -> ignore (Store.open_dir dir));
      (* truncation mid-frame is equally fatal *)
      Unix.truncate seg (size - (size / 3));
      Alcotest.match_raises "truncated segment detected"
        (function
          | Store.Format_error _ | Colseg.Format_error _ -> true | _ -> false)
        (fun () -> ignore (Store.open_dir dir)))

let test_db_vacuum_plumbing () =
  (* Db.vacuum reaches the attached store; in-memory queries see no
     change; a reload serves the columnar image *)
  F.with_temp_dir "soqm_vacdb" (fun dir ->
      let db0 = F.tiny_db () in
      Soqm_core.Db.save db0 dir;
      let db = Soqm_core.Db.open_disk dir in
      let titles d =
        List.map
          (fun o -> Object_store.peek_prop d.Soqm_core.Db.store o "title")
          (Object_store.extent d.Soqm_core.Db.store "Document")
        |> List.sort compare
      in
      let before = titles db in
      let n = Soqm_core.Db.vacuum db "Document" in
      check Alcotest.bool "documents rewritten" true (n > 0);
      check Alcotest.bool "memory image unchanged" true (before = titles db);
      (match db.Soqm_core.Db.disk with
      | Some d ->
        check Alcotest.bool "store flagged" true (Store.is_columnar d "Document")
      | None -> Alcotest.fail "disk detached");
      Soqm_core.Db.close db;
      let db' = Soqm_core.Db.load dir in
      check Alcotest.bool "reload serves the columnar class" true
        (before = titles db');
      let mem = Soqm_core.Db.create_empty ~maintain:false () in
      Alcotest.check_raises "vacuum without a disk store refuses"
        (Invalid_argument "Db.vacuum: no attached disk store")
        (fun () -> ignore (Soqm_core.Db.vacuum mem "Document")))

(* ------------------------------------------------------------------ *)
(* WAL recovery: deterministic cases                                   *)
(* ------------------------------------------------------------------ *)

let wal_path dir = Filename.concat dir "wal"

let test_recovery_replays_uncheckpointed () =
  F.with_temp_dir "soqm_disk" (fun dir ->
      let t = Store.create ~schema:item_schema dir in
      Store.apply t [ Wal.Insert { oid = item 0; props = [ ("n", Value.Int 1) ] } ];
      Store.apply t [ Wal.Insert { oid = item 1; props = [ ("n", Value.Int 2) ] } ];
      (* crash: dirty pages in the pool are lost, the WAL survives *)
      Store.close ~checkpoint:false t;
      let t' = Store.open_dir dir in
      check Alcotest.int "both batches redone" 2 (Store.recovered_batches t');
      check Alcotest.int "records restored" 2
        (List.length (Store.extent t' "Item"));
      check F.value "payload intact" (Value.Int 2)
        (List.assoc "n" (Store.fetch t' (item 1)));
      (* recovery is idempotent: reopening again replays the same WAL
         over the same (still unflushed) base image *)
      Store.close ~checkpoint:false t';
      let t'' = Store.open_dir dir in
      check Alcotest.int "stable under re-recovery" 2
        (List.length (Store.extent t'' "Item"));
      Store.close t'')

let test_recovery_discards_torn_tail () =
  F.with_temp_dir "soqm_disk" (fun dir ->
      let t = Store.create ~schema:item_schema dir in
      Store.apply t [ Wal.Insert { oid = item 0; props = [ ("n", Value.Int 1) ] } ];
      let committed = Store.wal_bytes t in
      Store.apply t [ Wal.Insert { oid = item 1; props = [ ("n", Value.Int 2) ] } ];
      let full = Store.wal_bytes t in
      Store.close ~checkpoint:false t;
      (* tear the second batch's tail *)
      Unix.truncate (wal_path dir) (committed + ((full - committed) / 2));
      let t' = Store.open_dir dir in
      check Alcotest.int "only the intact batch replays" 1
        (Store.recovered_batches t');
      check Alcotest.(list int) "its record is live" [ 0 ]
        (List.map Oid.id (Store.extent t' "Item"));
      check Alcotest.int "torn tail truncated away" committed
        (Store.wal_bytes t');
      (* corrupt a byte inside the surviving batch: checksum kills it *)
      Store.close ~checkpoint:false t';
      let fd = Unix.openfile (wal_path dir) [ Unix.O_WRONLY ] 0 in
      ignore (Unix.lseek fd (committed - 3) Unix.SEEK_SET);
      ignore (Unix.write_substring fd "\xff" 0 1);
      Unix.close fd;
      let t'' = Store.open_dir dir in
      check Alcotest.int "checksum failure discards the batch" 0
        (Store.recovered_batches t'');
      Store.close t'')

(* ------------------------------------------------------------------ *)
(* lock file: one process per database directory                       *)
(* ------------------------------------------------------------------ *)

let test_lock_blocks_second_process () =
  (* lockf locks are per-process, so the contender must be a real child
     process: fork, try to open the held directory, report via exit
     status.  (Forked before any domain is spawned.) *)
  F.with_temp_dir "soqm_lock" (fun dir ->
      let t = Store.create ~schema:item_schema dir in
      Store.apply t [ Wal.Insert { oid = item 0; props = [ ("n", Value.Int 1) ] } ];
      (match Unix.fork () with
      | 0 ->
        (* child: both open_dir and create must refuse *)
        let refused f =
          match f () with
          | (_ : Store.t) -> false
          | exception Store.Locked _ -> true
          | exception _ -> false
        in
        let ok =
          refused (fun () -> Store.open_dir dir)
          && refused (fun () -> Store.create ~schema:item_schema dir)
        in
        Unix._exit (if ok then 0 else 1)
      | pid ->
        let _, status = Unix.waitpid [] pid in
        check Alcotest.bool "second process fails fast with Locked" true
          (status = Unix.WEXITED 0));
      (* create-over-locked must not have destroyed the live store *)
      check Alcotest.bool "holder's data intact" true (Store.mem t (item 0));
      Store.close t;
      (* after close the lock is free again *)
      let t' = Store.open_dir dir in
      check Alcotest.bool "reopen after close" true (Store.mem t' (item 0));
      Store.close t')

(* ------------------------------------------------------------------ *)
(* group commit: commit_many batching and the leader/follower queue    *)
(* ------------------------------------------------------------------ *)

let test_commit_many_single_fsync () =
  F.with_temp_dir "soqm_group" (fun dir ->
      let t = Store.create ~schema:item_schema dir in
      let c = Store.counters t in
      let f0 = Counters.wal_fsyncs c in
      (* three batches through the group queue from one thread: each
         submit is its own flush here, but commit_many inside a flush
         of k batches costs one fsync *)
      let batches =
        List.init 3 (fun i ->
            [ Wal.Insert { oid = item i; props = [ ("n", Value.Int i) ] } ])
      in
      let tickets = List.map (Store.enqueue_group t) batches in
      Store.wait_group t (List.nth tickets 2);
      check Alcotest.int "three enqueued batches flush with one fsync"
        (f0 + 1) (Counters.wal_fsyncs c);
      check Alcotest.int "wal_commits counts every batch" 3
        (Counters.wal_commits c);
      check Alcotest.int "all records applied" 3
        (List.length (Store.extent t "Item"));
      (* waiting again on a flushed ticket is a no-op *)
      Store.wait_group t (List.hd tickets);
      (* crash without checkpoint: recovery replays all three batches *)
      Store.close ~checkpoint:false t;
      let t' = Store.open_dir dir in
      check Alcotest.int "grouped batches recover individually" 3
        (Store.recovered_batches t');
      check Alcotest.int "records restored" 3
        (List.length (Store.extent t' "Item"));
      Store.close t')

let test_group_commit_concurrent_coalescing () =
  F.with_temp_dir "soqm_group" (fun dir ->
      let t = Store.create ~schema:item_schema dir in
      Store.set_group_window t 0.005;
      let c = Store.counters t in
      let f0 = Counters.wal_fsyncs c in
      let n = 16 in
      let domains =
        List.init 4 (fun d ->
            Domain.spawn (fun () ->
                for i = 0 to (n / 4) - 1 do
                  let id = (d * n / 4) + i in
                  Store.apply_group t
                    [ Wal.Insert { oid = item id; props = [ ("n", Value.Int id) ] } ]
                done))
      in
      List.iter Domain.join domains;
      let fsyncs = Counters.wal_fsyncs c - f0 in
      check Alcotest.int "every batch committed" n (Counters.wal_commits c);
      check Alcotest.int "every record applied" n
        (List.length (Store.extent t "Item"));
      check Alcotest.bool
        (Printf.sprintf "fsyncs coalesced (%d < %d)" fsyncs n)
        true (fsyncs < n && fsyncs >= 1);
      Store.close t;
      let t' = Store.open_dir dir in
      check Alcotest.int "durable after checkpointed close" n
        (List.length (Store.extent t' "Item"));
      Store.close t')

(* A failing flush (WAL write or fsync error) must surface to every
   waiter in the drained group, not just the leader — a follower
   returning normally would report Committed on a batch that was never
   made durable. *)
let test_group_flush_failure_propagates () =
  let boom = Failure "fsync failed" in
  let g = Group_commit.create ~flush:(fun _ -> raise boom) () in
  let batch i = [ Wal.Insert { oid = item i; props = [] } ] in
  let t1 = Group_commit.enqueue g (batch 0) in
  let t2 = Group_commit.enqueue g (batch 1) in
  (* the first wait leads and drains both batches into the failing flush *)
  (match Group_commit.wait g t1 with
  | () -> Alcotest.fail "leader must see the flush failure"
  | exception Failure _ -> ());
  (* the second batch was in the same failed group: its (non-leading)
     wait must raise the same error instead of reporting durability *)
  (match Group_commit.wait g t2 with
  | () -> Alcotest.fail "follower must see the flush failure"
  | exception Failure _ -> ());
  check Alcotest.int "failed group leaves nothing pending" 0
    (Group_commit.pending g)

(* ------------------------------------------------------------------ *)
(* crash-recovery torture: random trace, random cut                    *)
(* ------------------------------------------------------------------ *)

(* oracle replay mirroring the store's idempotent upsert semantics *)
let oracle_apply tbl (op : Wal.op) =
  match op with
  | Wal.Insert { oid; props } -> Hashtbl.replace tbl oid props
  | Wal.Update { oid; prop; value } ->
    let props =
      match Hashtbl.find_opt tbl oid with Some ps -> ps | None -> []
    in
    Hashtbl.replace tbl oid ((prop, value) :: List.remove_assoc prop props)
  | Wal.Delete { oid } -> Hashtbl.remove tbl oid

let op_gen =
  let open QCheck2.Gen in
  let oid = map item (int_range 0 19) in
  let value =
    oneof
      [
        map (fun n -> Value.Int n) small_signed_int;
        map (fun s -> Value.Str s) (string_size ~gen:printable (int_range 0 40));
      ]
  in
  oneof
    [
      map2
        (fun o (n, s) ->
          Wal.Insert { oid = o; props = [ ("n", Value.Int n); ("s", s) ] })
        oid
        (pair small_signed_int value);
      map2 (fun o v -> Wal.Update { oid = o; prop = "s"; value = v }) oid value;
      map (fun o -> Wal.Delete { oid = o }) oid;
    ]

let trace_gen =
  QCheck2.Gen.(
    pair
      (list_size (int_range 1 12) (list_size (int_range 1 5) op_gen))
      (* cut position as a fraction of the final WAL size, biased to
         land inside the log but covering both extremes *)
      (int_range 0 100))

let prop_torture (batches, cut_pct) =
  F.with_temp_dir "soqm_torture" (fun dir ->
      (* pool larger than the working set: no evictions before the
         crash, so the heap image stays at the (empty) base and recovery
         is driven by the WAL alone — the invariant that makes an
         arbitrary cut offset meaningful *)
      let t = Store.create ~pool_pages:512 ~schema:item_schema dir in
      let ends =
        List.map
          (fun ops ->
            Store.apply t ops;
            Store.wal_bytes t)
          batches
      in
      let total = Store.wal_bytes t in
      (* crash without flushing anything *)
      Store.close ~checkpoint:false t;
      let cut = total * cut_pct / 100 in
      Unix.truncate (wal_path dir) cut;
      let t' = Store.open_dir dir in
      let committed =
        List.concat
          (List.filteri (fun i _ -> List.nth ends i <= cut) batches)
      in
      let oracle = Hashtbl.create 32 in
      List.iter (oracle_apply oracle) committed;
      let expected =
        Hashtbl.fold (fun oid props acc -> (oid, sorted_props props) :: acc)
          oracle []
        |> List.sort (fun (a, _) (b, _) -> Int.compare (Oid.id a) (Oid.id b))
      in
      let actual = store_image t' in
      let batches_committed =
        List.length (List.filter (fun e -> e <= cut) ends)
      in
      let recovered_ok = Store.recovered_batches t' = batches_committed in
      let truncated_ok = Store.wal_bytes t' <= cut in
      Store.close ~checkpoint:false t';
      if not (expected = actual && recovered_ok && truncated_ok) then
        QCheck2.Test.fail_reportf
          "cut %d/%d bytes: %d/%d batches committed, store has %d records, \
           oracle %d, recovered=%d"
          cut total batches_committed (List.length ends) (List.length actual)
          (List.length expected) (Store.recovered_batches t');
      true)

let prop_crash_recovery_torture =
  QCheck2.Test.make ~count:60
    ~name:"WAL cut at any offset recovers the committed prefix exactly"
    trace_gen prop_torture

(* Grouped variant: batches reach the WAL through the group-commit
   queue, several per physical write, so a cut can now land in the
   middle of a coalesced write.  Recovery must still restore exactly
   the prefix of batches whose Commit frame survived — never a torn
   suffix of a group, never out of order. *)
let group_trace_gen =
  QCheck2.Gen.(
    pair
      (list_size (int_range 1 8)
         (list_size (int_range 1 4) (list_size (int_range 1 4) op_gen)))
      (int_range 0 100))

let prop_group_torture (groups, cut_pct) =
  F.with_temp_dir "soqm_gtorture" (fun dir ->
      let t = Store.create ~pool_pages:512 ~schema:item_schema dir in
      let group_ends =
        List.map
          (fun batches ->
            let tickets = List.map (Store.enqueue_group t) batches in
            Store.wait_group t (List.nth tickets (List.length tickets - 1));
            Store.wal_bytes t)
          groups
      in
      let total = Store.wal_bytes t in
      Store.close ~checkpoint:false t;
      let cut = total * cut_pct / 100 in
      Unix.truncate (wal_path dir) cut;
      let t' = Store.open_dir dir in
      let r = Store.recovered_batches t' in
      let all_batches = List.concat groups in
      (* a group whose write ended at or before the cut is fully
         committed; a group that started after the cut contributes
         nothing; a group torn by the cut contributes some prefix *)
      let sizes = List.map List.length groups in
      let low =
        List.fold_left2
          (fun acc size e -> if e <= cut then acc + size else acc)
          0 sizes group_ends
      in
      let starts = 0 :: List.filteri (fun i _ -> i < List.length group_ends - 1) group_ends in
      let high =
        List.fold_left2
          (fun acc size s -> if s < cut then acc + size else acc)
          0 sizes starts
      in
      let oracle = Hashtbl.create 32 in
      List.iteri
        (fun i ops -> if i < r then List.iter (oracle_apply oracle) ops)
        all_batches;
      let expected =
        Hashtbl.fold (fun oid props acc -> (oid, sorted_props props) :: acc)
          oracle []
        |> List.sort (fun (a, _) (b, _) -> Int.compare (Oid.id a) (Oid.id b))
      in
      let actual = store_image t' in
      let bounds_ok = low <= r && r <= high in
      let truncated_ok = Store.wal_bytes t' <= cut in
      Store.close ~checkpoint:false t';
      if not (expected = actual && bounds_ok && truncated_ok) then
        QCheck2.Test.fail_reportf
          "cut %d/%d bytes: recovered %d batches (bounds %d..%d), store has \
           %d records, prefix oracle %d"
          cut total r low high (List.length actual) (List.length expected);
      true)

let prop_group_crash_recovery_torture =
  QCheck2.Test.make ~count:60
    ~name:"cut inside a coalesced group-commit write recovers a clean prefix"
    group_trace_gen prop_group_torture

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "disk"
    [
      (* first: Unix.fork is only legal before any domain is spawned,
         and the pool/store tests below start domains *)
      ( "lock",
        [ F.case "second process refused" test_lock_blocks_second_process ] );
      ( "codec",
        [
          F.case "values roundtrip" test_codec_values;
          F.case "garbage rejected" test_codec_rejects_garbage;
          F.case "schema roundtrips" test_codec_schema_roundtrip;
        ] );
      ( "pages",
        [
          F.case "slot ops" test_page_ops;
          F.case "capacity" test_page_capacity;
          F.case "compaction reclaims dead space"
            test_page_compaction_reclaims_dead_space;
        ] );
      ( "columns",
        [
          F.case "torture values" test_column_torture_values;
          F.case "empty and all-null chunks" test_column_empty_and_all_null;
          QCheck_alcotest.to_alcotest prop_column_chunk_roundtrip;
          QCheck_alcotest.to_alcotest prop_column_selective;
          QCheck_alcotest.to_alcotest prop_column_fail_closed;
        ] );
      ( "pool",
        [
          F.case "hits and evictions" test_pool_hits_and_evictions;
          F.case "dirty write-back" test_pool_dirty_writeback;
          F.case "pins block eviction" test_pool_pinned_never_evicted;
        ] );
      ( "store",
        [
          F.case "roundtrip and reopen" test_store_roundtrip;
          F.case "records span pages" test_store_records_span_pages;
          F.case "prefetch parity" test_store_prefetch_parity;
          F.case "db attachment" test_db_disk_attachment;
        ] );
      ( "columnar",
        [
          F.case "vacuum roundtrip and reopen" test_vacuum_roundtrip_and_reopen;
          F.case "DML shadows, tombstones persist" test_vacuum_dml_shadowing;
          F.case "scan costs and counters" test_vacuum_scan_costs_and_counters;
          F.case "corrupt segments fail closed"
            test_colseg_corruption_fails_closed;
          F.case "Db.vacuum plumbing" test_db_vacuum_plumbing;
        ] );
      ( "group-commit",
        [
          F.case "commit_many costs one fsync" test_commit_many_single_fsync;
          F.case "concurrent commits coalesce"
            test_group_commit_concurrent_coalescing;
          F.case "flush failure reaches every waiter"
            test_group_flush_failure_propagates;
        ] );
      ( "recovery",
        [
          F.case "uncheckpointed batches replay" test_recovery_replays_uncheckpointed;
          F.case "torn tails discarded" test_recovery_discards_torn_tail;
          QCheck_alcotest.to_alcotest prop_crash_recovery_torture;
          QCheck_alcotest.to_alcotest prop_group_crash_recovery_torture;
        ] );
    ]
