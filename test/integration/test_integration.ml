(* End-to-end integration tests: VQL in, results out, across the whole
   pipeline (parse → typecheck → translate → optimize → execute), on the
   paper's example queries, with ablation checks. *)

open Soqm_vml
open Soqm_algebra
open Soqm_core
module F = Soqm_testlib.Fixtures

let check = Alcotest.check

let db = lazy (F.shared_db ())
let engine = lazy (Engine.generate (Lazy.force db))

let assert_consistent ?(min_speedup = 1.0) name q =
  let d = Lazy.force db in
  let reference = Engine.run_logical_reference d q in
  let naive = Engine.run_naive d q in
  let opt = Engine.run_optimized (Lazy.force engine) q in
  check F.relation (name ^ ": naive = reference") reference naive.Engine.result;
  check F.relation (name ^ ": optimized = reference") reference opt.Engine.result;
  let naive_cost = Counters.total_cost naive.Engine.counters in
  let opt_cost = Counters.total_cost opt.Engine.counters in
  if opt_cost *. min_speedup > naive_cost then
    Alcotest.failf "%s: expected ≥%.0fx speedup, got naive %.1f vs optimized %.1f"
      name min_speedup naive_cost opt_cost

let query_q =
  "ACCESS p FROM p IN Paragraph WHERE p->contains_string('Implementation') AND \
   (p->document()).title == 'Query Optimization'"

let test_worked_example () = assert_consistent ~min_speedup:10.0 "Q" query_q

let test_example1_join () =
  (* method call as join predicate; quadratic naive evaluation *)
  assert_consistent "example 1"
    "ACCESS [a: p.number, b: q.number] FROM p IN Paragraph, q IN Paragraph \
     WHERE p->sameDocument(q) AND p.number < 1 AND q.number < 1"

let test_example2_dependent_range () =
  assert_consistent "example 2"
    "ACCESS d.title FROM d IN Document, p IN d->paragraphs() WHERE \
     p->contains_string('Implementation')"

let test_example3_access_methods () =
  assert_consistent "example 3"
    "ACCESS [doc: d.title, paras: d->paragraphs()] FROM d IN Document"

let test_title_only_query_uses_index () =
  let q = "ACCESS d FROM d IN Document WHERE d.title == 'Query Optimization'" in
  assert_consistent ~min_speedup:2.0 "title query" q;
  let opt = Engine.optimize_query (Lazy.force engine) q in
  let rec has_cheap_access = function
    | Soqm_physical.Plan.IndexScan _ | Soqm_physical.Plan.MapMeth (_, "select_by_index", _, _, _)
    | Soqm_physical.Plan.MethodScan (_, _, "select_by_index", _) ->
      true
    | p -> List.exists has_cheap_access (Soqm_physical.Plan.inputs p)
  in
  check Alcotest.bool "index or select_by_index used" true
    (has_cheap_access opt.Soqm_optimizer.Search.best_plan)

let test_word_count_implication () =
  (* wordCount > 500: the implication introduces the largeParagraphs
     membership, and the optimizer orders it before the expensive
     wordCount predicate *)
  let q = "ACCESS p FROM p IN Paragraph WHERE p->wordCount() > 500" in
  let d = Lazy.force db in
  let with_impl = Engine.run_optimized (Lazy.force engine) q in
  let without =
    Engine.run_optimized
      (Engine.generate
         ~classes:
           Doc_knowledge.
             [ Path_methods; Index_equivalences; Inverse_links; Query_method_equivs ]
         d)
      q
  in
  check F.relation "same result" without.Engine.result with_impl.Engine.result;
  check Alcotest.bool "nonempty" true
    (Relation.cardinality with_impl.Engine.result > 0);
  let c_with = Counters.total_cost with_impl.Engine.counters in
  let c_without = Counters.total_cost without.Engine.counters in
  if c_with >= c_without then
    Alcotest.failf "implication should pay off: with %.1f, without %.1f" c_with
      c_without;
  (* the expensive method must be called far less often *)
  check Alcotest.bool "fewer wordCount calls" true
    (Counters.method_call_count with_impl.Engine.counters "Paragraph.wordCount"
    < Counters.method_call_count without.Engine.counters "Paragraph.wordCount" / 2)

let test_ablation_monotone () =
  (* removing all knowledge classes must not beat the full optimizer on
     the worked example, and the full optimizer must beat the naive
     plan *)
  let d = Lazy.force db in
  let run eng = Engine.run_optimized eng query_q in
  let full = run (Lazy.force engine) in
  let bare = run (Engine.generate ~classes:[] d) in
  let naive = Engine.run_naive d query_q in
  check F.relation "bare = full result" full.Engine.result bare.Engine.result;
  let c_full = Counters.total_cost full.Engine.counters in
  let c_bare = Counters.total_cost bare.Engine.counters in
  let c_naive = Counters.total_cost naive.Engine.counters in
  check Alcotest.bool "semantic knowledge pays off" true (c_full < c_bare);
  check Alcotest.bool "bare optimizer no worse than 2x naive" true
    (c_bare <= c_naive *. 2.0)

let test_each_class_ablation_sound () =
  (* dropping any one knowledge class must preserve correctness *)
  let d = Lazy.force db in
  let reference = Engine.run_logical_reference d query_q in
  List.iter
    (fun dropped ->
      let classes =
        List.filter (fun c -> c <> dropped) Doc_knowledge.all_classes
      in
      let eng = Engine.generate ~classes d in
      let r = Engine.run_optimized eng query_q in
      check F.relation
        ("without " ^ Doc_knowledge.class_name dropped)
        reference r.Engine.result)
    Doc_knowledge.all_classes

let test_intermediate_queries_same_plan_cost_band () =
  (* Q and its manual rewritings Q'..Q'''' from Section 2.3 must all
     optimize to plans within a small cost band: the optimizer erases
     the difference in query formulation *)
  let eng = Lazy.force engine in
  let costs =
    List.map
      (fun q -> (Engine.optimize_query eng q).Soqm_optimizer.Search.best_cost)
      [
        query_q;
        "ACCESS p FROM p IN Paragraph WHERE p->contains_string('Implementation') \
         AND p->document() IS-IN Document->select_by_index('Query Optimization')";
        "ACCESS p FROM p IN Paragraph WHERE p->contains_string('Implementation') \
         AND p.section.document IS-IN Document->select_by_index('Query \
         Optimization')";
      ]
  in
  let lo = List.fold_left Float.min infinity costs in
  let hi = List.fold_left Float.max 0. costs in
  if hi > lo *. 2.0 then
    Alcotest.failf "formulation-dependent plans: costs %s"
      (String.concat ", " (List.map (Printf.sprintf "%.1f") costs))

let test_set_operations_via_vql () =
  assert_consistent "PQ written literally"
    "ACCESS p FROM p IN Paragraph->retrieve_by_string('Implementation') \
     INTERSECTION (Document->select_by_index('Query \
     Optimization')).sections.paragraphs"

let test_report_fields () =
  let opt = Engine.run_optimized (Lazy.force engine) query_q in
  check Alcotest.bool "has optimization result" true (Option.is_some opt.Engine.opt);
  check Alcotest.bool "elapsed nonnegative" true (opt.Engine.elapsed_s >= 0.);
  match opt.Engine.opt with
  | Some o ->
    check Alcotest.bool "explored variants" true
      (o.Soqm_optimizer.Search.variants_explored > 1)
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Custom schemas through the text front-ends                          *)
(* ------------------------------------------------------------------ *)

let library_schema_text =
  {|
CLASS Author
  INSTTYPE OBJECTTYPE
    PROPERTIES:
      name: STRING;
      books: {Book} INVERSE Book.author;
  END;
END;
CLASS Book
  OWNTYPE OBJECTTYPE
    METHODS:
      by_author_name(n: STRING): {Book} EXTERNAL COST 3.0 SELECTIVITY 0.02;
  END;
  INSTTYPE OBJECTTYPE
    PROPERTIES:
      title: STRING;
      author: Author INVERSE Author.books;
    METHODS:
      author_name(): STRING { RETURN author.name; };
  END;
END;
|}

let library_knowledge_text =
  {|
[AuthorIndex] FORALL b IN Book (n: STRING):
  b.author.name == n <=> b IS-IN Book->by_author_name(n)
[AuthorPath] FORALL b IN Book: b->author_name() == b.author.name
|}

let make_library () =
  let store = Soqm_vql.Schema_parser.load library_schema_text in
  let index = Soqm_storage.Hash_index.create ~cls:"Book" ~prop:"author" in
  Object_store.register_own_method store ~cls:"Book" ~meth:"by_author_name"
    (Object_store.Native
       (fun store _recv args ->
         match args with
         | [ (Value.Str _ as name) ] ->
           Value.set
             (List.map
                (fun o -> Value.Obj o)
                (Soqm_storage.Hash_index.probe index
                   (Object_store.counters store) name))
         | _ -> raise (Runtime.Error "by_author_name expects a string")));
  List.iter
    (fun name ->
      let a =
        Object_store.create_object store ~cls:"Author" [ ("name", Value.Str name) ]
      in
      for k = 0 to 9 do
        let b =
          Object_store.create_object store ~cls:"Book"
            [
              ("title", Value.Str (Printf.sprintf "%s-%d" name k));
              ("author", Value.Obj a);
            ]
        in
        Soqm_storage.Hash_index.insert index (Value.Str name) b
      done)
    [ "Knuth"; "Liskov"; "Hopper" ];
  store

let test_custom_engine_end_to_end () =
  let store = make_library () in
  let schema = Object_store.schema store in
  let specs = Soqm_semantics.Spec_lang.parse_specs schema library_knowledge_text in
  let engine =
    Engine.generate_custom ~specs ~store
      ~exec_ctx:(Soqm_physical.Exec.basic_ctx store)
      ~has_index:(fun ~cls:_ ~prop:_ -> false)
      ()
  in
  let q = "ACCESS b.title FROM b IN Book WHERE b->author_name() == 'Liskov'" in
  let naive = Engine.run_query engine q in
  let opt = Engine.run_optimized engine q in
  check F.relation "custom engine sound" naive.Engine.result opt.Engine.result;
  check Alcotest.int "ten books" 10 (Relation.cardinality opt.Engine.result);
  check Alcotest.bool "knowledge used" true
    (Counters.total_cost opt.Engine.counters
    < Counters.total_cost naive.Engine.counters);
  (* the index access path appears in the plan *)
  match opt.Engine.opt with
  | Some o ->
    let rec uses_method m = function
      | Soqm_physical.Plan.MethodScan (_, _, m', _)
      | Soqm_physical.Plan.MapMeth (_, m', _, _, _)
      | Soqm_physical.Plan.FlatMeth (_, m', _, _, _)
        when String.equal m m' ->
        true
      | p -> List.exists (uses_method m) (Soqm_physical.Plan.inputs p)
    in
    check Alcotest.bool "by_author_name used" true
      (uses_method "by_author_name" o.Soqm_optimizer.Search.best_plan)
  | None -> Alcotest.fail "expected an optimization result"

let test_custom_engine_inverse_links () =
  (* custom engines derive inverse-link equivalences automatically *)
  let store = make_library () in
  let engine =
    Engine.generate_custom ~store
      ~exec_ctx:(Soqm_physical.Exec.basic_ctx store)
      ~has_index:(fun ~cls:_ ~prop:_ -> false)
      ()
  in
  let q =
    "ACCESS b FROM b IN Book WHERE b.author IS-IN Author"
  in
  (* every book's author is in the extent: sanity of membership over a
     class object *)
  let r = Engine.run_optimized engine q in
  check Alcotest.int "all books" 30 (Relation.cardinality r.Engine.result)

let test_derived_data_knowledge_enables_range_scan () =
  (* §5.1: "the return values of methods constitute derived data" — told
     that wordCount() equals the stored word_count property, the
     optimizer turns the expensive method predicate into an ordered-index
     probe.  No knowledge class ships this spec; it is supplied
     explicitly. *)
  let d = F.small_db () in
  let derived =
    Soqm_semantics.Spec_lang.parse_spec (Object_store.schema d.Db.store)
      "[WordCountStored] FORALL p IN Paragraph: p->wordCount() == p.word_count"
  in
  let eng = Engine.generate ~extra_specs:[ derived ] d in
  let q = "ACCESS p FROM p IN Paragraph WHERE p->wordCount() > 500" in
  let without = Engine.run_optimized (Engine.generate d) q in
  let with_derived = Engine.run_optimized eng q in
  check F.relation "same result" without.Engine.result with_derived.Engine.result;
  check Alcotest.int "zero method calls" 0
    (Counters.method_call_count with_derived.Engine.counters "Paragraph.wordCount");
  check Alcotest.bool "far cheaper" true
    (Counters.total_cost with_derived.Engine.counters
    < Counters.total_cost without.Engine.counters /. 10.);
  match with_derived.Engine.opt with
  | Some o ->
    let rec uses_range_scan = function
      | Soqm_physical.Plan.RangeScan _ -> true
      | p -> List.exists uses_range_scan (Soqm_physical.Plan.inputs p)
    in
    check Alcotest.bool "range scan chosen" true
      (uses_range_scan o.Soqm_optimizer.Search.best_plan)
  | None -> Alcotest.fail "expected optimization"

let test_plan_cache () =
  (* re-optimizing the same query (whose translation is an alpha-variant
     of the first) hits the engine's plan cache *)
  let eng = Engine.generate (Lazy.force db) in
  let r1 = Engine.optimize_query eng query_q in
  let t0 = Unix.gettimeofday () in
  let r2 = Engine.optimize_query eng query_q in
  let dt = Unix.gettimeofday () -. t0 in
  check Alcotest.bool "cache hit returns the same result" true (r1 == r2);
  check Alcotest.bool "and is immediate" true (dt < 0.05);
  (* a different query misses *)
  let r3 = Engine.optimize_query eng "ACCESS p FROM p IN Paragraph" in
  check Alcotest.bool "different query, different plan" true (not (r1 == r3))

let test_snapshot_roundtrip () =
  let d = F.tiny_db () in
  F.with_temp_dir "soqm" (fun path ->
      Db.save d path;
      let d' = Db.load path in
      (* same data *)
      check Alcotest.int "paragraph extent"
        (Object_store.extent_size d.Db.store "Paragraph")
        (Object_store.extent_size d'.Db.store "Paragraph");
      check Alcotest.bool "extent order preserved" true
        (Object_store.extent d.Db.store "Paragraph"
        = Object_store.extent d'.Db.store "Paragraph");
      (* same query results, methods and access paths rewired *)
      let reference = Engine.run_logical_reference d query_q in
      let eng = Engine.generate d' in
      let opt = Engine.run_optimized eng query_q in
      check F.relation "loaded db answers identically" reference opt.Engine.result;
      (* mutating the copy does not affect the original *)
      let p = List.hd (Object_store.extent d'.Db.store "Paragraph") in
      Object_store.delete_object d'.Db.store p;
      check Alcotest.bool "independent stores" true
        (Object_store.exists d.Db.store p))

let test_snapshot_rejects_garbage () =
  (* a directory that is not a database: no meta file *)
  F.with_temp_dir "soqm" (fun path ->
      let oc = open_out (Filename.concat path "noise") in
      output_string oc "not a database at all";
      close_out oc;
      Alcotest.match_raises "rejected"
        (function Soqm_disk.Store.Format_error _ -> true | _ -> false)
        (fun () -> ignore (Db.load path)));
  (* a foreign meta file *)
  F.with_temp_dir "soqm" (fun path ->
      let oc = open_out (Filename.concat path "meta") in
      output_string oc "not a meta file";
      close_out oc;
      Alcotest.match_raises "foreign meta rejected"
        (function Soqm_disk.Store.Format_error _ -> true | _ -> false)
        (fun () -> ignore (Db.load path)))

(* The legacy single-file dump codec: magic + version word guard the
   Marshal body, so foreign and truncated files fail deterministically
   with [Dump_format_error] instead of undefined [Marshal] behavior. *)
let test_dump_format_guard () =
  let with_temp_file f =
    let path = Filename.temp_file "soqm" ".dump" in
    Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)
  in
  let rejects name path =
    Alcotest.match_raises name
      (function Object_store.Dump_format_error _ -> true | _ -> false)
      (fun () -> ignore (Object_store.load_dump path))
  in
  let d = F.tiny_db () in
  let dump = Object_store.export d.Db.store in
  (* roundtrip through the guarded file codec *)
  with_temp_file (fun path ->
      Object_store.save_dump dump path;
      let dump' = Object_store.load_dump path in
      check Alcotest.int "objects preserved"
        (List.length (Object_store.dump_objects dump))
        (List.length (Object_store.dump_objects dump'));
      check Alcotest.int "allocation counter preserved"
        (Object_store.dump_next_id dump)
        (Object_store.dump_next_id dump'));
  (* a foreign file of unrelated bytes *)
  with_temp_file (fun path ->
      let oc = open_out_bin path in
      output_string oc "#!/bin/sh\necho this is not a dump\n";
      close_out oc;
      rejects "foreign file" path);
  (* empty file: shorter than the header itself *)
  with_temp_file (fun path ->
      close_out (open_out_bin path);
      rejects "empty file" path);
  (* right magic, unsupported version *)
  with_temp_file (fun path ->
      let oc = open_out_bin path in
      output_string oc "SOQM-DUMP\x7f\x00\x00\x00";
      close_out oc;
      rejects "version mismatch" path);
  (* valid header, body truncated mid-Marshal *)
  with_temp_file (fun path ->
      Object_store.save_dump dump path;
      let full = In_channel.with_open_bin path In_channel.input_all in
      let oc = open_out_bin path in
      output_string oc (String.sub full 0 (String.length full * 2 / 3));
      close_out oc;
      rejects "truncated body" path)

let test_dot_renders () =
  let res = Engine.optimize_query (Lazy.force engine) query_q in
  let deriv = Soqm_optimizer.Dot.of_derivation res in
  check Alcotest.bool "derivation graph" true
    (String.length deriv > 200
    && String.sub deriv 0 7 = "digraph"
    && String.length (Soqm_optimizer.Dot.of_plan res.Soqm_optimizer.Search.best_plan) > 50
    && String.length (Soqm_optimizer.Dot.of_restricted res.Soqm_optimizer.Search.best_logical) > 50)

let test_rule_statistics () =
  let res = Engine.optimize_query (Lazy.force engine) query_q in
  let stats = res.Soqm_optimizer.Search.rule_applications in
  check Alcotest.bool "statistics nonempty" true (stats <> []);
  check Alcotest.bool "commute fired" true
    (List.mem_assoc "commute-unary" stats);
  List.iter (fun (_, n) -> check Alcotest.bool "positive counts" true (n > 0)) stats

let test_impure_method_not_optimized () =
  let schema = Doc_schema.make ~pure_word_count:false () in
  let db = Db.create ~schema ~params:F.tiny_params () in
  let eng = Engine.generate db in
  let q = "ACCESS p FROM p IN Paragraph WHERE p->wordCount() > 500" in
  let logical = Engine.logical_of_query db q in
  check Alcotest.bool "flagged unsafe" true
    (Result.is_error (Engine.safe_to_optimize db logical));
  let r = Engine.run_optimized eng q in
  check Alcotest.bool "executed without optimization" true (r.Engine.opt = None);
  check F.relation "still correct" (Engine.run_naive db q).Engine.result
    r.Engine.result

let prop_pipeline_sound =
  QCheck2.Test.make ~count:20
    ~name:"pipeline: optimized = naive on random paragraph queries"
    Soqm_testlib.Gen.para_query_gen
    (fun g ->
      let d = Lazy.force db in
      let logical = Translate.of_general (General.Project ([ "p" ], g)) in
      let res = Engine.optimize (Lazy.force engine) logical in
      let reference = Eval.run d.Db.store (General.Project ([ "p" ], g)) in
      let got =
        Soqm_physical.Exec.run (Engine.exec_ctx d) res.Soqm_optimizer.Search.best_plan
      in
      Relation.equal reference got)

let () =
  Alcotest.run "integration"
    [
      ( "worked-example",
        [
          F.case "Q optimizes and agrees" test_worked_example;
          F.case "Q formulations equal cost" test_intermediate_queries_same_plan_cost_band;
          F.case "PQ literal" test_set_operations_via_vql;
        ] );
      ( "paper-examples",
        [
          F.case "example 1 (method join)" test_example1_join;
          F.case "example 2 (dependent range)" test_example2_dependent_range;
          F.case "example 3 (access methods)" test_example3_access_methods;
        ] );
      ( "optimizations",
        [
          F.case "title query uses access path" test_title_only_query_uses_index;
          F.case "wordCount implication" test_word_count_implication;
        ] );
      ( "ablation",
        [
          F.case "knowledge pays off" test_ablation_monotone;
          F.case "each class droppable" test_each_class_ablation_sound;
        ] );
      ( "custom-schemas",
        [
          F.case "library engine end to end" test_custom_engine_end_to_end;
          F.case "inverse links derived" test_custom_engine_inverse_links;
        ] );
      ( "tooling",
        [
          F.case "plan cache" test_plan_cache;
          F.case "snapshot roundtrip" test_snapshot_roundtrip;
          F.case "snapshot rejects garbage" test_snapshot_rejects_garbage;
          F.case "legacy dump format guard" test_dump_format_guard;
          F.case "derived data enables range scan"
            test_derived_data_knowledge_enables_range_scan;
          F.case "dot renders" test_dot_renders;
          F.case "rule statistics" test_rule_statistics;
          F.case "impure methods not optimized" test_impure_method_not_optimized;
        ] );
      ( "reports",
        [
          F.case "report fields" test_report_fields;
          QCheck_alcotest.to_alcotest prop_pipeline_sound;
        ] );
    ]
