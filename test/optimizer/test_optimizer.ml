(* Tests for the optimizer: pattern matching/instantiation, the builtin
   rule set, the saturation search and the cost-based implementation
   phase. *)

open Soqm_vml
open Soqm_algebra
open Soqm_optimizer
module F = Soqm_testlib.Fixtures
module R = Restricted

let check = Alcotest.check
let schema = Soqm_core.Doc_schema.schema

let db = lazy (F.tiny_db ())
let opt_ctx () = Soqm_core.Engine.opt_ctx_of (Lazy.force db)
let exec_ctx () = Soqm_core.Engine.exec_ctx (Lazy.force db)

let eval_restricted t =
  Eval.run (Lazy.force db).Soqm_core.Db.store (R.to_general t)

(* ------------------------------------------------------------------ *)
(* Pattern matching                                                    *)
(* ------------------------------------------------------------------ *)

let para_scan = R.Get ("p", "Paragraph")

let title_select =
  R.SelectCmp
    ( R.CEq,
      R.ORef "t",
      R.OConst (Value.Str "x"),
      R.MapProperty ("t", "title", "d", R.Get ("d", "Document")) )

let test_match_concrete () =
  let pat =
    Pattern.PSelectCmp
      ( Pattern.PCmp R.CEq,
        Pattern.PORefOf (Pattern.PRefVar "t"),
        Pattern.POperandVar "v",
        Pattern.PMapProperty
          ( Pattern.PRefVar "t",
            Pattern.PName "title",
            Pattern.PRefVar "d",
            Pattern.PAny "A" ) )
  in
  match Pattern.matches schema pat title_select with
  | [ b ] ->
    check Alcotest.string "t bound" "t" (List.assoc "t" b.Pattern.refs);
    check Alcotest.string "d bound" "d" (List.assoc "d" b.Pattern.refs);
    check Alcotest.bool "v bound to the constant" true
      (List.assoc "v" b.Pattern.operands = R.OConst (Value.Str "x"))
  | bs -> Alcotest.failf "expected 1 match, got %d" (List.length bs)

let test_match_rejects_wrong_name () =
  let pat =
    Pattern.PMapProperty
      (Pattern.PRefVar "t", Pattern.PName "author", Pattern.PRefVar "d", Pattern.PAny "A")
  in
  check Alcotest.int "no match" 0
    (List.length
       (Pattern.matches schema pat
          (R.MapProperty ("t", "title", "d", R.Get ("d", "Document")))))

let test_match_ranging_class () =
  let pat = Pattern.PAnyRanging ("A", Pattern.PRefVar "x", "Paragraph") in
  check Alcotest.int "paragraph scan matches" 1
    (List.length (Pattern.matches schema pat para_scan));
  check Alcotest.int "document scan does not" 0
    (List.length (Pattern.matches schema pat (R.Get ("d", "Document"))));
  (* deep input: the ranging variable is found through inference *)
  let deep = R.MapProperty ("s", "section", "p", para_scan) in
  check Alcotest.int "matches through map" 1
    (List.length (Pattern.matches schema pat deep))

let test_match_conflicting_binding () =
  (* same ref variable in two positions must bind consistently *)
  let pat =
    Pattern.PSelectCmp
      ( Pattern.PCmp R.CEq,
        Pattern.PORefOf (Pattern.PRefVar "x"),
        Pattern.PORefOf (Pattern.PRefVar "x"),
        Pattern.PAny "A" )
  in
  let same = R.SelectCmp (R.CEq, R.ORef "a", R.ORef "a", para_scan) in
  let diff = R.SelectCmp (R.CEq, R.ORef "a", R.ORef "b", para_scan) in
  check Alcotest.int "same ref matches" 1 (List.length (Pattern.matches schema pat same));
  check Alcotest.int "different refs rejected" 0
    (List.length (Pattern.matches schema pat diff))

let test_instantiate_fresh_refs () =
  let template =
    Pattern.PMapProperty
      (Pattern.PRefVar "new1", Pattern.PName "title", Pattern.PRefVar "d", Pattern.PAny "A")
  in
  let b = { Pattern.empty with plans = [ ("A", para_scan) ]; refs = [ ("d", "p") ] } in
  let t1 = Pattern.instantiate ~rule:"r" ~fresh_seed:7 b template in
  let t2 = Pattern.instantiate ~rule:"r" ~fresh_seed:7 b template in
  check F.restricted "deterministic" t1 t2;
  (match t1 with
  | R.MapProperty (fresh, "title", "p", R.Get ("p", "Paragraph")) ->
    check Alcotest.bool "fresh is a temp" true (R.is_temp_ref fresh)
  | _ -> Alcotest.fail "unexpected instantiation");
  Alcotest.match_raises "unbound plan"
    (function Pattern.Unbound _ -> true | _ -> false)
    (fun () ->
      ignore (Pattern.instantiate ~rule:"r" ~fresh_seed:0 Pattern.empty template))

(* ------------------------------------------------------------------ *)
(* Alpha canonicalization                                              *)
(* ------------------------------------------------------------------ *)

let test_alpha_canonical () =
  let mk temp =
    R.SelectCmp
      ( R.CEq,
        R.ORef temp,
        R.OConst (Value.Str "x"),
        R.MapProperty (temp, "title", "d", R.Get ("d", "Document")) )
  in
  check F.restricted "same modulo temp names"
    (R.alpha_canonical (mk "$17"))
    (R.alpha_canonical (mk "$4"));
  check F.restricted "user refs untouched"
    (R.alpha_canonical para_scan)
    para_scan

let test_alpha_preserves_semantics () =
  let t =
    R.SelectCmp
      ( R.CEq,
        R.ORef "$42",
        R.OConst (Value.Str "Query Optimization"),
        R.MapProperty ("$42", "title", "d", R.Get ("d", "Document")) )
  in
  let t' = R.alpha_canonical t in
  check Alcotest.int "same cardinality"
    (Relation.cardinality (eval_restricted t))
    (Relation.cardinality (eval_restricted t'))

(* ------------------------------------------------------------------ *)
(* Builtin rules: every rewrite preserves semantics                    *)
(* ------------------------------------------------------------------ *)

let semantics_preserved rule term =
  let rewrites = Rule.root_rewrites schema rule term in
  List.for_all
    (fun t' -> Relation.equal (eval_restricted term) (eval_restricted t'))
    rewrites

let chain_with_select =
  (* select over two maps over a scan; the select's operand comes from
     the lower map, so the root pair is independent and commutable *)
  R.SelectCmp
    ( R.CLe,
      R.ORef "n",
      R.OConst (Value.Int 0),
      R.MapProperty
        ( "s",
          "section",
          "p",
          R.MapProperty ("n", "number", "p", para_scan) ) )

let test_commute_unary_rewrites () =
  let rewrites = Rule.root_rewrites schema Builtin_rules.commute_unary chain_with_select in
  check Alcotest.bool "commutes independent ops" true (rewrites <> []);
  check Alcotest.bool "preserves semantics" true
    (semantics_preserved Builtin_rules.commute_unary chain_with_select)

let test_commute_unary_respects_dependency () =
  (* select uses n which the map below produces: no rewrite *)
  let dependent =
    R.SelectCmp
      ( R.CLe,
        R.ORef "n",
        R.OConst (Value.Int 0),
        R.MapProperty ("n", "number", "p", para_scan) )
  in
  check Alcotest.int "dependent not commuted" 0
    (List.length (Rule.root_rewrites schema Builtin_rules.commute_unary dependent))

let test_join_commute_preserves () =
  let join =
    R.JoinCmp
      ( R.CEq,
        "sd",
        "d",
        R.MapProperty ("sd", "document", "s", R.Get ("s", "Section")),
        R.Get ("d", "Document") )
  in
  check Alcotest.bool "join commute" true
    (semantics_preserved Builtin_rules.join_commute join);
  let lt =
    R.JoinCmp (R.CLt, "a", "b",
               R.MapProperty ("a", "number", "s", R.Get ("s", "Section")),
               R.MapProperty ("b", "number", "q", R.Get ("q", "Paragraph")))
  in
  check Alcotest.bool "ordering joins flip the comparison" true
    (semantics_preserved Builtin_rules.join_commute lt)

let test_select_join_interchange () =
  let term =
    R.SelectCmp
      ( R.CLe,
        R.ORef "n",
        R.OConst (Value.Int 0),
        R.Cross
          ( R.MapProperty ("n", "number", "s", R.Get ("s", "Section")),
            R.Get ("d", "Document") ) )
  in
  let rewrites = Rule.root_rewrites schema Builtin_rules.select_join_interchange term in
  check Alcotest.bool "pushes into left input" true
    (List.exists
       (function R.Cross (R.SelectCmp _, _) -> true | _ -> false)
       rewrites);
  check Alcotest.bool "preserves semantics" true
    (semantics_preserved Builtin_rules.select_join_interchange term)

let test_path_to_join () =
  let term =
    R.MapProperty
      ("doc", "document", "sec", R.MapProperty ("sec", "section", "p", para_scan))
  in
  let rewrites = Rule.root_rewrites schema Builtin_rules.path_to_join term in
  check Alcotest.int "one rewrite" 1 (List.length rewrites);
  (match rewrites with
  | [ R.Project (_, R.JoinCmp (R.CEq, _, _, _, _)) ] -> ()
  | _ -> Alcotest.fail "expected project over explicit join");
  check Alcotest.bool "preserves semantics" true
    (semantics_preserved Builtin_rules.path_to_join term)

let test_select_cross_to_join () =
  let term =
    R.SelectCmp
      ( R.CEq,
        R.ORef "sd",
        R.ORef "d",
        R.Cross
          ( R.MapProperty ("sd", "document", "s", R.Get ("s", "Section")),
            R.Get ("d", "Document") ) )
  in
  (match Rule.root_rewrites schema Builtin_rules.select_cross_to_join term with
  | [ R.JoinCmp (R.CEq, "sd", "d", _, _) ] -> ()
  | rs -> Alcotest.failf "expected one equality join, got %d rewrites" (List.length rs));
  check Alcotest.bool "preserves semantics" true
    (semantics_preserved Builtin_rules.select_cross_to_join term);
  (* swapped operands flip the comparison *)
  let swapped =
    R.SelectCmp
      ( R.CLt,
        R.ORef "d0",
        R.ORef "n",
        R.Cross
          ( R.MapProperty ("n", "number", "s", R.Get ("s", "Section")),
            R.MapProperty ("d0", "number", "q", R.Get ("q", "Paragraph")) ) )
  in
  (match Rule.root_rewrites schema Builtin_rules.select_cross_to_join swapped with
  | [ R.JoinCmp (R.CGt, "n", "d0", _, _) ] -> ()
  | _ -> Alcotest.fail "expected a flipped comparison join");
  check Alcotest.bool "flip preserves semantics" true
    (semantics_preserved Builtin_rules.select_cross_to_join swapped)

let test_natjoin_idempotent () =
  let t = R.NaturalJoin (para_scan, para_scan) in
  check Alcotest.bool "X nat-join X = X" true
    (Rule.root_rewrites schema Builtin_rules.natjoin_idempotent t = [ para_scan ])

let test_natjoin_to_cascade () =
  let c1 =
    R.SelectCmp (R.CLe, R.ORef "n", R.OConst (Value.Int 0),
                 R.MapProperty ("n", "number", "s", R.Get ("s", "Section")))
  in
  let c2 =
    R.SelectCmp (R.CGe, R.ORef "m", R.OConst (Value.Int 0),
                 R.MapProperty ("m", "number", "s", R.Get ("s", "Section")))
  in
  let t = R.NaturalJoin (c1, c2) in
  let rewrites = Rule.root_rewrites schema Builtin_rules.natjoin_to_cascade t in
  check Alcotest.bool "cascade produced" true (rewrites <> []);
  check Alcotest.bool "preserves semantics" true
    (semantics_preserved Builtin_rules.natjoin_to_cascade t)

let test_hoist_const_membership () =
  let term =
    R.SelectCmp
      ( R.CIsIn,
        R.ORef "p",
        R.ORef "w",
        R.FlatOperator
          ( "w0",
            R.OpSet,
            [],
            para_scan ) )
  in
  (* ill-typed chain: no rewrite expected *)
  check Alcotest.int "requires a proper constant chain" 0
    (List.length (Rule.root_rewrites schema Builtin_rules.hoist_const_membership term));
  let proper =
    R.SelectCmp
      ( R.CIsIn,
        R.ORef "p",
        R.ORef "w",
        R.MapMethod
          ( "w",
            "retrieve_by_string",
            R.RClass "Paragraph",
            [ R.OConst (Value.Str "Implementation") ],
            para_scan ) )
  in
  let rewrites =
    Rule.root_rewrites schema Builtin_rules.hoist_const_membership proper
  in
  check Alcotest.int "hoists" 1 (List.length rewrites);
  (match rewrites with
  | [ R.FlatOperator ("p", R.OpIdent, [ R.ORef "w" ], R.MapMethod (_, _, _, _, R.Unit)) ] -> ()
  | _ -> Alcotest.fail "unexpected hoist shape");
  check Alcotest.bool "preserves semantics" true
    (semantics_preserved Builtin_rules.hoist_const_membership proper)

(* ------------------------------------------------------------------ *)
(* Saturation                                                          *)
(* ------------------------------------------------------------------ *)

let test_saturate_contains_input () =
  let variants, truncated =
    Search.saturate schema Builtin_rules.transformations chain_with_select
  in
  check Alcotest.bool "not truncated" false truncated;
  check Alcotest.bool "input present" true
    (List.exists (R.equal (R.alpha_canonical chain_with_select)) variants);
  check Alcotest.bool "multiple variants" true (List.length variants > 1)

let test_saturate_all_equivalent () =
  let variants, _ =
    Search.saturate schema Builtin_rules.transformations chain_with_select
  in
  let reference = eval_restricted chain_with_select in
  List.iter
    (fun v ->
      if not (Relation.equal reference (eval_restricted v)) then
        Alcotest.failf "variant not equivalent:@.%s" (R.to_string v))
    variants

let test_saturate_respects_limits () =
  let config = { Search.max_variants = 2; max_size_slack = 14 } in
  let variants, truncated =
    Search.saturate ~config schema Builtin_rules.transformations chain_with_select
  in
  check Alcotest.int "at most 2" 2 (List.length variants);
  check Alcotest.bool "reported truncated" true truncated

let test_saturate_truncation_not_spurious () =
  (* [chain_with_select] saturates to exactly 3 unique variants, but the
     rules regenerate them many times over.  With the cap set exactly at
     the unique count every variant is kept and no genuinely new term is
     dropped, so [truncated] must be false — the seed reported true here
     because duplicates of already-seen terms tripped the limit check. *)
  let variants, truncated =
    Search.saturate schema Builtin_rules.transformations chain_with_select
  in
  check Alcotest.bool "unbounded run not truncated" false truncated;
  let unique = List.length variants in
  let config = { Search.max_variants = unique; max_size_slack = 14 } in
  let variants', truncated' =
    Search.saturate ~config schema Builtin_rules.transformations chain_with_select
  in
  check Alcotest.int "all unique variants kept" unique (List.length variants');
  check Alcotest.bool "duplicates do not report truncation" false truncated'

(* ------------------------------------------------------------------ *)
(* Implementation phase                                                *)
(* ------------------------------------------------------------------ *)

let test_implement_only_default () =
  let plan, cost = Search.implement_only (opt_ctx ()) [] para_scan in
  check Alcotest.bool "full scan chosen" true
    (plan = Soqm_physical.Plan.FullScan ("p", "Paragraph"));
  check Alcotest.bool "positive cost" true (cost > 0.)

let test_implement_prefers_index () =
  let plan, _ =
    Search.implement_only (opt_ctx ())
      [ Builtin_rules.index_scan_impl ]
      (R.SelectCmp
         ( R.CEq,
           R.ORef "t",
           R.OConst (Value.Str "Query Optimization"),
           R.MapProperty ("t", "title", "d", R.Get ("d", "Document")) ))
  in
  match plan with
  | Soqm_physical.Plan.MapProp (_, _, _, Soqm_physical.Plan.IndexScan _) -> ()
  | p -> Alcotest.failf "expected index scan, got:@.%s" (Soqm_physical.Plan.to_string p)

let test_implement_no_index_no_rule () =
  (* no index on Section.title: the rule must not fire *)
  let plan, _ =
    Search.implement_only (opt_ctx ())
      [ Builtin_rules.index_scan_impl ]
      (R.SelectCmp
         ( R.CEq,
           R.ORef "t",
           R.OConst (Value.Str "x"),
           R.MapProperty ("t", "title", "s", R.Get ("s", "Section")) ))
  in
  match plan with
  | Soqm_physical.Plan.Filter (_, _, _, _) -> ()
  | p -> Alcotest.failf "expected filter, got:@.%s" (Soqm_physical.Plan.to_string p)

let test_optimized_plan_agrees_with_naive () =
  let eng = Soqm_core.Engine.generate (Lazy.force db) in
  let q =
    "ACCESS p FROM p IN Paragraph WHERE p->contains_string('Implementation') \
     AND (p->document()).title == 'Query Optimization'"
  in
  let naive = Soqm_core.Engine.run_naive (Lazy.force db) q in
  let opt = Soqm_core.Engine.run_optimized eng q in
  check F.relation "same result" naive.Soqm_core.Engine.result
    opt.Soqm_core.Engine.result;
  check Alcotest.bool "nonempty" true
    (Relation.cardinality naive.Soqm_core.Engine.result > 0);
  check Alcotest.bool "cheaper" true
    (Counters.total_cost opt.Soqm_core.Engine.counters
    < Counters.total_cost naive.Soqm_core.Engine.counters /. 5.)

let test_worked_example_plan_shape () =
  (* the chosen plan must be the paper's PQ: an intersection of the
     retrieve_by_string method scan with the select_by_index-driven
     paragraph set, with no Paragraph extent scan.  On a very small
     database the optimizer correctly prefers skipping the title index
     (cost-based!), so this uses the larger shared fixture. *)
  let eng = Soqm_core.Engine.generate (F.shared_db ()) in
  let q =
    "ACCESS p FROM p IN Paragraph WHERE p->contains_string('Implementation') \
     AND (p->document()).title == 'Query Optimization'"
  in
  let res = Soqm_core.Engine.optimize_query eng q in
  let plan = res.Search.best_plan in
  let rec has_full_scan = function
    | Soqm_physical.Plan.FullScan _ -> true
    | p -> List.exists has_full_scan (Soqm_physical.Plan.inputs p)
  in
  let rec uses_method m = function
    | Soqm_physical.Plan.MethodScan (_, _, m', _)
    | Soqm_physical.Plan.MapMeth (_, m', _, _, _)
    | Soqm_physical.Plan.FlatMeth (_, m', _, _, _)
      when String.equal m m' ->
      true
    | p -> List.exists (uses_method m) (Soqm_physical.Plan.inputs p)
  in
  check Alcotest.bool "no extent scan" false (has_full_scan plan);
  check Alcotest.bool "uses retrieve_by_string" true
    (uses_method "retrieve_by_string" plan);
  check Alcotest.bool "uses select_by_index" true
    (uses_method "select_by_index" plan)

let test_trace_derivation_rules () =
  (* the winning derivation must use the semantic knowledge: E2 and the
     inverse-link rules appear in the trace *)
  let eng = Soqm_core.Engine.generate (F.shared_db ()) in
  let q =
    "ACCESS p FROM p IN Paragraph WHERE p->contains_string('Implementation') \
     AND (p->document()).title == 'Query Optimization'"
  in
  let res = Soqm_core.Engine.optimize_query eng q in
  let rules = List.map (fun (s : Search.step) -> s.Search.rule) res.Search.derivation in
  let used prefix = List.exists (fun r -> String.length r >= String.length prefix
                                          && String.sub r 0 (String.length prefix) = prefix) rules in
  check Alcotest.bool "E2 used" true (used "E2-title-index");
  check Alcotest.bool "E1 used" true (used "E1-document-path");
  check Alcotest.bool "inverse links used" true (used "inverse-");
  check Alcotest.bool "trace renders" true
    (String.length (Trace.render res) > 100)

(* every builtin rule, applied anywhere in a random translated query,
   preserves the projected result set *)
let prop_builtin_rules_sound =
  QCheck2.Test.make ~count:25
    ~name:"builtin rules preserve semantics on random terms"
    Soqm_testlib.Gen.term_gen
    (fun g ->
      match General.well_formed g with
      | Error _ -> QCheck2.assume_fail ()
      | Ok () ->
        let logical =
          Translate.of_general (General.Project (General.refs g, g))
        in
        let reference = eval_restricted logical in
        List.for_all
          (fun rule ->
            let config = { Search.max_variants = 40; max_size_slack = 10 } in
            let variants, _ =
              Search.saturate ~config schema [ rule ] logical
            in
            List.for_all
              (fun v -> Relation.equal reference (eval_restricted v))
              variants)
          Builtin_rules.transformations)

let prop_alpha_idempotent =
  QCheck2.Test.make ~count:40 ~name:"alpha canonicalization is idempotent"
    Soqm_testlib.Gen.term_gen
    (fun g ->
      match General.well_formed g with
      | Error _ -> QCheck2.assume_fail ()
      | Ok () ->
        let r = Translate.of_general g in
        let once = R.alpha_canonical r in
        R.equal once (R.alpha_canonical once))

(* ------------------------------------------------------------------ *)
(* The memo engine                                                     *)
(* ------------------------------------------------------------------ *)

let memo_parts () =
  let d = Lazy.force db in
  let schema' = Object_store.schema d.Soqm_core.Db.store in
  let dt, di =
    Soqm_semantics.Derive.rules_of_specs schema' (Soqm_core.Doc_knowledge.specs ())
  in
  ( opt_ctx (),
    Builtin_rules.transformations @ dt,
    Builtin_rules.implementations @ di )

let fresh_memo () =
  let ctx, ts, is_ = memo_parts () in
  Memo.create ctx ts is_

(* one fixed translation: [Translate] generates fresh temporaries per
   call, so re-translating would yield an alpha-variant term *)
let q_logical =
  let memoized =
    lazy
      (Soqm_core.Engine.logical_of_query (Lazy.force db)
         "ACCESS p FROM p IN Paragraph WHERE \
          p->contains_string('Implementation') AND (p->document()).title == \
          'Query Optimization'")
  in
  fun () -> Lazy.force memoized

let test_memo_shares_subexpressions () =
  let memo = fresh_memo () in
  let g1 = Memo.insert memo (q_logical ()) in
  let before = (Memo.stats memo).Memo.exprs in
  (* inserting the same term again creates nothing new *)
  let g2 = Memo.insert memo (q_logical ()) in
  check Alcotest.int "same group" g1 g2;
  check Alcotest.int "no new expressions" before ((Memo.stats memo).Memo.exprs);
  (* a term sharing a subtree adds only the new operators *)
  let extended =
    R.Project ([ "p" ], q_logical ())
  in
  ignore (Memo.insert memo extended);
  check Alcotest.int "only the new project added" (before + 1)
    ((Memo.stats memo).Memo.exprs)

let test_memo_explore_grows_and_fires () =
  let memo = fresh_memo () in
  ignore (Memo.insert memo (q_logical ()));
  let before = (Memo.stats memo).Memo.exprs in
  Memo.explore memo;
  let st = Memo.stats memo in
  check Alcotest.bool "expressions added" true (st.Memo.exprs > before);
  check Alcotest.bool "rules fired" true (st.Memo.fired <> [])

let test_memo_plan_sound_and_semantic () =
  let memo = fresh_memo () in
  let plan, cost = Memo.optimize memo (q_logical ()) in
  let reference =
    Eval.run (Lazy.force db).Soqm_core.Db.store (R.to_general (q_logical ()))
  in
  let got = Soqm_physical.Exec.run (exec_ctx ()) plan in
  check F.relation "memo plan sound" reference got;
  (* E5's implementation rule works at memo granularity: the plan uses
     the retrieve_by_string access path instead of an extent scan *)
  let rec uses_retrieve = function
    | Soqm_physical.Plan.MethodScan (_, _, "retrieve_by_string", _) -> true
    | p -> List.exists uses_retrieve (Soqm_physical.Plan.inputs p)
  in
  check Alcotest.bool "E5 applied" true (uses_retrieve plan);
  check Alcotest.bool "positive cost" true (cost > 0.)

let test_memo_vs_saturation () =
  (* the saturation engine's whole-term semantic rules can only improve
     on the memo's reference-preserving space *)
  let memo = fresh_memo () in
  let _, memo_cost = Memo.optimize memo (q_logical ()) in
  let sat = Soqm_core.Engine.optimize (Soqm_core.Engine.generate (Lazy.force db)) (q_logical ()) in
  check Alcotest.bool "saturation at least as good" true
    (sat.Search.best_cost <= memo_cost +. 0.001);
  (* and the memo holds far fewer expressions than saturation explores
     variants, thanks to sharing *)
  check Alcotest.bool "memo is compact" true
    ((Memo.stats memo).Memo.exprs * 5 < sat.Search.variants_explored)

let prop_memo_sound =
  QCheck2.Test.make ~count:20 ~name:"memo plans compute the reference result"
    Soqm_testlib.Gen.para_query_gen
    (fun g ->
      let logical = Translate.of_general (General.Project ([ "p" ], g)) in
      let memo = fresh_memo () in
      let plan, _ = Memo.optimize memo logical in
      let reference =
        Eval.run (Lazy.force db).Soqm_core.Db.store (General.Project ([ "p" ], g))
      in
      Relation.equal reference (Soqm_physical.Exec.run (exec_ctx ()) plan))

(* property: for random paragraph queries, the optimized plan computes
   the same result as the reference evaluator *)
let prop_optimizer_sound =
  QCheck2.Test.make ~count:25 ~name:"optimized plans compute the reference result"
    Soqm_testlib.Gen.para_query_gen
    (fun g ->
      let eng = Soqm_core.Engine.generate (Lazy.force db) in
      let logical = Translate.of_general (General.Project ([ "p" ], g)) in
      let res = Soqm_core.Engine.optimize eng logical in
      let reference =
        Eval.run (Lazy.force db).Soqm_core.Db.store (General.Project ([ "p" ], g))
      in
      let got = Soqm_physical.Exec.run (exec_ctx ()) res.Search.best_plan in
      Relation.equal reference got)

let () =
  Alcotest.run "optimizer"
    [
      ( "patterns",
        [
          F.case "concrete match" test_match_concrete;
          F.case "wrong name rejected" test_match_rejects_wrong_name;
          F.case "class-ranging" test_match_ranging_class;
          F.case "conflicting bindings" test_match_conflicting_binding;
          F.case "instantiation & fresh refs" test_instantiate_fresh_refs;
        ] );
      ( "alpha",
        [
          F.case "canonicalization" test_alpha_canonical;
          F.case "preserves semantics" test_alpha_preserves_semantics;
        ] );
      ( "builtin-rules",
        [
          F.case "commute unary" test_commute_unary_rewrites;
          F.case "dependency respected" test_commute_unary_respects_dependency;
          F.case "join commute" test_join_commute_preserves;
          F.case "select/join interchange" test_select_join_interchange;
          F.case "path to join (Example 8)" test_path_to_join;
          F.case "select-cross to join" test_select_cross_to_join;
          F.case "natjoin idempotent" test_natjoin_idempotent;
          F.case "natjoin to cascade" test_natjoin_to_cascade;
          F.case "hoist const membership" test_hoist_const_membership;
        ] );
      ( "saturation",
        [
          F.case "contains input" test_saturate_contains_input;
          F.case "all variants equivalent" test_saturate_all_equivalent;
          F.case "limits respected" test_saturate_respects_limits;
          F.case "truncation not spurious" test_saturate_truncation_not_spurious;
          QCheck_alcotest.to_alcotest prop_builtin_rules_sound;
          QCheck_alcotest.to_alcotest prop_alpha_idempotent;
        ] );
      ( "memo",
        [
          F.case "shares subexpressions" test_memo_shares_subexpressions;
          F.case "explore grows and fires" test_memo_explore_grows_and_fires;
          F.case "plan sound, E5 applied" test_memo_plan_sound_and_semantic;
          F.case "vs saturation" test_memo_vs_saturation;
          QCheck_alcotest.to_alcotest prop_memo_sound;
        ] );
      ( "implementation",
        [
          F.case "default structural" test_implement_only_default;
          F.case "prefers index" test_implement_prefers_index;
          F.case "no index, no rule" test_implement_no_index_no_rule;
          F.case "optimized agrees with naive" test_optimized_plan_agrees_with_naive;
          F.case "worked example yields PQ" test_worked_example_plan_shape;
          F.case "trace shows semantic rules" test_trace_derivation_rules;
          QCheck_alcotest.to_alcotest prop_optimizer_sound;
        ] );
    ]
