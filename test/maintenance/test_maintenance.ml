(* Tests for the incremental knowledge-maintenance subsystem: store
   change events, index maintainers (including Inverted_index.replace),
   implication-set upkeep, statistics deltas with staleness-triggered
   recollects, the epoch-guarded LRU plan cache, and a property test
   interleaving DML with queries against a rebuild-from-scratch oracle. *)

open Soqm_vml
open Soqm_storage
open Soqm_core
module F = Soqm_testlib.Fixtures
module Maint = Soqm_maintenance.Maintenance

let check = Alcotest.check

let queries =
  [
    "ACCESS p FROM p IN Paragraph WHERE p->contains_string('Implementation') \
     AND (p->document()).title == 'Query Optimization'";
    "ACCESS d FROM d IN Document WHERE d.title == 'Query Optimization'";
    "ACCESS p FROM p IN Paragraph WHERE p->wordCount() > 500";
    "ACCESS [n: s.number, t: d.title] FROM s IN Section, d IN Document WHERE \
     s.document == d AND d.title == 'Query Optimization'";
    "ACCESS p FROM p IN Paragraph WHERE p->contains_string('Implementation')";
  ]

let some_paragraph db =
  match Object_store.extent db.Db.store "Paragraph" with
  | p :: _ -> p
  | [] -> Alcotest.fail "no paragraphs"

let doc_of db p =
  match Object_store.peek_prop db.Db.store p "section" with
  | Value.Obj s -> (
    match Object_store.peek_prop db.Db.store s "document" with
    | Value.Obj d -> d
    | _ -> Alcotest.fail "paragraph's section has no document")
  | _ -> Alcotest.fail "paragraph has no section"

let in_large_set db p =
  match Object_store.peek_prop db.Db.store (doc_of db p) "largeParagraphs" with
  | Value.Set xs -> List.exists (Value.equal (Value.Obj p)) xs
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Change events                                                       *)
(* ------------------------------------------------------------------ *)

let test_change_events () =
  let db = Db.create ~params:F.tiny_params ~maintain:false () in
  let store = db.Db.store in
  let events = ref [] in
  Object_store.subscribe store (fun ev -> events := ev :: !events);
  let sec =
    match Object_store.extent store "Section" with
    | s :: _ -> s
    | [] -> Alcotest.fail "no sections"
  in
  let oid =
    Object_store.create_object store ~cls:"Paragraph"
      [
        ("number", Value.Int 99);
        ("word_count", Value.Int 42);
        ("content", Value.Str "event test");
        ("section", Value.Obj sec);
      ]
  in
  let created =
    List.exists
      (function Object_store.Created o -> Oid.equal o oid | _ -> false)
      !events
  in
  check Alcotest.bool "Created event observed" true created;
  let user_sets, derived_sets =
    List.partition
      (function
        | Object_store.Prop_set { origin = Object_store.User; _ } -> true
        | _ -> false)
      (List.filter
         (function Object_store.Prop_set _ -> true | _ -> false)
         !events)
  in
  check Alcotest.bool "user writes observed" true (List.length user_sets >= 4);
  (* setting [section] maintains the inverse Section.paragraphs link as a
     Derived write, visible to observers but marked as such *)
  check Alcotest.bool "backlink write is Derived" true
    (List.exists
       (function
         | Object_store.Prop_set
             { origin = Object_store.Derived; prop = "paragraphs"; _ } ->
           true
         | _ -> false)
       derived_sets);
  events := [];
  Object_store.delete_object store oid;
  let deleted_props =
    List.find_map
      (function
        | Object_store.Deleted { oid = o; props } when Oid.equal o oid ->
          Some props
        | _ -> None)
      !events
  in
  match deleted_props with
  | None -> Alcotest.fail "no Deleted event"
  | Some props ->
    check Alcotest.bool "snapshot carries final values" true
      (match List.assoc_opt "word_count" props with
      | Some (Value.Int 42) -> true
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Inverted_index.replace                                              *)
(* ------------------------------------------------------------------ *)

let test_replace_no_duplicate_postings () =
  let idx : int Soqm_ir.Inverted_index.t = Soqm_ir.Inverted_index.create () in
  Soqm_ir.Inverted_index.add idx ~key:1 ~text:"alpha beta gamma";
  Soqm_ir.Inverted_index.replace idx ~key:1 ~old_text:"alpha beta gamma"
    ~text:"beta gamma delta";
  check (Alcotest.list Alcotest.int) "kept word, single posting" [ 1 ]
    (Soqm_ir.Inverted_index.lookup_all idx "beta");
  check (Alcotest.list Alcotest.int) "new word indexed" [ 1 ]
    (Soqm_ir.Inverted_index.lookup_all idx "delta");
  check (Alcotest.list Alcotest.int) "old word gone" []
    (Soqm_ir.Inverted_index.lookup_all idx "alpha");
  (* replaying the same replace must stay idempotent *)
  Soqm_ir.Inverted_index.replace idx ~key:1 ~old_text:"beta gamma delta"
    ~text:"beta gamma delta";
  check (Alcotest.list Alcotest.int) "idempotent" [ 1 ]
    (Soqm_ir.Inverted_index.lookup_all idx "beta")

let test_dml_no_duplicate_postings () =
  let db = Db.create ~params:F.tiny_params () in
  let engine = Engine.generate db in
  let p = some_paragraph db in
  (* several rewrites sharing words must leave exactly one posting *)
  Engine.update engine p ~prop:"content"
    (Value.Str "shared words one two three");
  Engine.update engine p ~prop:"content" (Value.Str "shared words two four");
  Engine.update engine p ~prop:"content" (Value.Str "shared words two five");
  let hits = Soqm_ir.Inverted_index.lookup_all db.Db.text_index "shared" in
  check Alcotest.int "single posting for kept word" 1
    (List.length (List.filter (Oid.equal p) hits));
  check (Alcotest.list Alcotest.bool) "dropped words gone" [ true; true ]
    (List.map
       (fun w ->
         not
           (List.exists (Oid.equal p)
              (Soqm_ir.Inverted_index.lookup_all db.Db.text_index w)))
       [ "one"; "four" ])

(* ------------------------------------------------------------------ *)
(* Index maintainers                                                   *)
(* ------------------------------------------------------------------ *)

let test_index_maintenance () =
  let db = Db.create ~params:F.tiny_params () in
  let engine = Engine.generate db in
  let store = db.Db.store in
  let c = Object_store.counters store in
  Counters.reset_maintenance c;
  let doc =
    Engine.insert engine ~cls:"Document"
      [ ("title", Value.Str "Maintained Title"); ("author", Value.Str "A") ]
  in
  check
    (Alcotest.list F.oid_t)
    "hash index sees the insert" [ doc ]
    (Hash_index.probe db.Db.title_index c (Value.Str "Maintained Title"));
  Engine.update engine doc ~prop:"title" (Value.Str "Renamed");
  check (Alcotest.list F.oid_t) "old key vacated" []
    (Hash_index.probe db.Db.title_index c (Value.Str "Maintained Title"));
  check (Alcotest.list F.oid_t) "new key found" [ doc ]
    (Hash_index.probe db.Db.title_index c (Value.Str "Renamed"));
  let p = some_paragraph db in
  let before = Sorted_index.entries db.Db.word_count_index in
  Engine.update engine p ~prop:"word_count" (Value.Int 123456);
  check Alcotest.int "sorted index size stable under update" before
    (Sorted_index.entries db.Db.word_count_index);
  check (Alcotest.list F.oid_t) "range probe finds the moved entry" [ p ]
    (Sorted_index.probe_range db.Db.word_count_index c
       ~lo:(Sorted_index.Inclusive (Value.Int 100000))
       ~hi:Sorted_index.Unbounded);
  Engine.delete engine p;
  check (Alcotest.list F.oid_t) "deleted entry leaves the sorted index" []
    (Sorted_index.probe_range db.Db.word_count_index c
       ~lo:(Sorted_index.Inclusive (Value.Int 100000))
       ~hi:Sorted_index.Unbounded);
  check Alcotest.bool "postings were counted" true
    (Counters.postings_touched (Counters.snapshot c) > 0)

(* ------------------------------------------------------------------ *)
(* Implication sets                                                    *)
(* ------------------------------------------------------------------ *)

let test_implication_set_threshold () =
  let db = Db.create ~params:F.tiny_params () in
  let engine = Engine.generate db in
  let p = some_paragraph db in
  Engine.update engine p ~prop:"word_count" (Value.Int 700);
  check Alcotest.bool "crossing up joins largeParagraphs" true
    (in_large_set db p);
  Engine.update engine p ~prop:"word_count" (Value.Int 300);
  check Alcotest.bool "crossing down leaves largeParagraphs" false
    (in_large_set db p);
  Engine.update engine p ~prop:"word_count" (Value.Int 501);
  check Alcotest.bool "boundary is strict (501 joins)" true (in_large_set db p);
  Engine.update engine p ~prop:"word_count" (Value.Int 500);
  check Alcotest.bool "boundary is strict (500 leaves)" false
    (in_large_set db p)

let test_implication_set_moves_with_reparent () =
  let db = Db.create ~params:F.tiny_params () in
  let engine = Engine.generate db in
  let store = db.Db.store in
  let p = some_paragraph db in
  Engine.update engine p ~prop:"word_count" (Value.Int 800);
  let d1 = doc_of db p in
  let other_sec =
    List.find
      (fun s ->
        match Object_store.peek_prop store s "document" with
        | Value.Obj d -> not (Oid.equal d d1)
        | _ -> false)
      (Object_store.extent store "Section")
  in
  Engine.update engine p ~prop:"section" (Value.Obj other_sec);
  let d2 = doc_of db p in
  check Alcotest.bool "documents differ" false (Oid.equal d1 d2);
  check Alcotest.bool "member of the new document's set" true
    (in_large_set db p);
  check Alcotest.bool "gone from the old document's set" false
    (match Object_store.peek_prop store d1 "largeParagraphs" with
    | Value.Set xs -> List.exists (Value.equal (Value.Obj p)) xs
    | _ -> false)

let test_implication_set_delete_member () =
  let db = Db.create ~params:F.tiny_params () in
  let engine = Engine.generate db in
  let p = some_paragraph db in
  Engine.update engine p ~prop:"word_count" (Value.Int 900);
  let d = doc_of db p in
  Engine.delete engine p;
  check Alcotest.bool "deleted member removed from the set" false
    (match Object_store.peek_prop db.Db.store d "largeParagraphs" with
    | Value.Set xs -> List.exists (Value.equal (Value.Obj p)) xs
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Statistics deltas                                                   *)
(* ------------------------------------------------------------------ *)

let test_stats_deltas () =
  let db = Db.create ~params:F.tiny_params () in
  let engine = Engine.generate db in
  let stats = db.Db.stats in
  let card0 = Statistics.cardinality stats "Paragraph" in
  let sec =
    match Object_store.extent db.Db.store "Section" with
    | s :: _ -> s
    | [] -> Alcotest.fail "no sections"
  in
  let p =
    Engine.insert engine ~cls:"Paragraph"
      [
        ("number", Value.Int 77);
        ("word_count", Value.Int 700);
        ("content", Value.Str "statistics delta paragraph");
        ("section", Value.Obj sec);
      ]
  in
  check (Alcotest.float 0.01) "cardinality tracked the insert" (card0 +. 1.)
    (Statistics.cardinality stats "Paragraph");
  check Alcotest.bool "staleness grew" true (Statistics.staleness stats > 0.);
  Engine.delete engine p;
  check (Alcotest.float 0.01) "cardinality tracked the delete" card0
    (Statistics.cardinality stats "Paragraph")

let test_staleness_triggers_recollect_and_epoch () =
  let db = Db.create ~params:F.tiny_params () in
  let engine = Engine.generate db in
  let m = Option.get (Db.maintenance db) in
  let e0 = Maint.epoch m in
  let r0 = Maint.recollects m in
  let paras = Array.of_list (Object_store.extent db.Db.store "Paragraph") in
  (* hammer scalar writes until staleness crosses the 10% threshold *)
  for i = 0 to Array.length paras - 1 do
    Engine.update engine
      paras.(i mod Array.length paras)
      ~prop:"number" (Value.Int i)
  done;
  check Alcotest.bool "recollect ran" true (Maint.recollects m > r0);
  check Alcotest.bool "epoch bumped" true (Maint.epoch m > e0);
  check Alcotest.bool "staleness reset below threshold" true
    (Maint.staleness m < Maint.default_policy.Maint.staleness_threshold)

(* ------------------------------------------------------------------ *)
(* Plan cache                                                          *)
(* ------------------------------------------------------------------ *)

let test_plan_cache_epoch_invalidation () =
  let db = Db.create ~params:F.tiny_params () in
  let engine = Engine.generate db in
  let m = Option.get (Db.maintenance db) in
  let q = List.hd queries in
  let r1 = Engine.optimize_query engine q in
  let r2 = Engine.optimize_query engine q in
  check Alcotest.bool "same epoch: physically identical" true (r1 == r2);
  let hits, misses = Engine.cache_stats engine in
  check Alcotest.int "one hit" 1 hits;
  check Alcotest.int "one miss" 1 misses;
  Maint.bump_epoch m;
  let r3 = Engine.optimize_query engine q in
  check Alcotest.bool "stale epoch: re-optimized" true (not (r3 == r1));
  let r4 = Engine.optimize_query engine q in
  check Alcotest.bool "fresh entry hits again" true (r3 == r4)

let test_plan_cache_knowledge_preserving_dml_keeps_plans () =
  let db = Db.create ~params:F.tiny_params () in
  let engine = Engine.generate db in
  let q = List.hd queries in
  let r1 = Engine.optimize_query engine q in
  (* one small update: well under the staleness threshold, so the epoch
     must not move and the cached plan stays valid *)
  Engine.update engine (some_paragraph db) ~prop:"word_count" (Value.Int 750);
  let r2 = Engine.optimize_query engine q in
  check Alcotest.bool "plan survived knowledge-preserving DML" true (r1 == r2)

let test_plan_cache_lru_eviction () =
  let db = Db.create ~params:F.tiny_params () in
  let engine = Engine.generate ~cache_capacity:2 db in
  let q1 = List.nth queries 1 in
  let q2 = List.nth queries 2 in
  let q3 = List.nth queries 3 in
  ignore (Engine.optimize_query engine q1);
  ignore (Engine.optimize_query engine q2);
  ignore (Engine.optimize_query engine q1);
  (* capacity 2: inserting q3 evicts the least recently used (q2) *)
  ignore (Engine.optimize_query engine q3);
  check Alcotest.bool "cache stays bounded" true (Engine.cache_size engine <= 2);
  let _, m0 = Engine.cache_stats engine in
  ignore (Engine.optimize_query engine q1);
  let h1, m1 = Engine.cache_stats engine in
  check Alcotest.int "q1 survived (hit)" m0 m1;
  ignore (Engine.optimize_query engine q2);
  let h2, m2 = Engine.cache_stats engine in
  check Alcotest.int "q2 was evicted (miss)" (m1 + 1) m2;
  ignore (h1, h2)

(* ------------------------------------------------------------------ *)
(* Property: random DML/query interleavings vs scratch rebuild          *)
(* ------------------------------------------------------------------ *)

type dml_op =
  | Set_wc of int * int  (* paragraph picker, new word count *)
  | Rewrite of int * bool  (* paragraph picker, keep the query word? *)
  | Reparent of int * int  (* paragraph picker, section picker *)
  | Insert_para of int * int  (* section picker, word count *)
  | Delete_para of int
  | Run_query of int

let op_gen =
  let open QCheck2.Gen in
  oneof
    [
      map2 (fun i wc -> Set_wc (i, wc)) (int_range 0 1000) (int_range 0 1000);
      map2 (fun i kw -> Rewrite (i, kw)) (int_range 0 1000) bool;
      map2 (fun i s -> Reparent (i, s)) (int_range 0 1000) (int_range 0 1000);
      map2 (fun s wc -> Insert_para (s, wc)) (int_range 0 1000)
        (int_range 0 1000);
      map (fun i -> Delete_para i) (int_range 0 1000);
      map (fun i -> Run_query i) (int_range 0 (List.length queries - 1));
    ]

let ops_gen = QCheck2.Gen.(list_size (int_range 10 40) op_gen)

let pick arr i =
  if Array.length arr = 0 then None else Some arr.(i mod Array.length arr)

let apply_op db engine op =
  let store = db.Db.store in
  let paras () = Array.of_list (Object_store.extent store "Paragraph") in
  let secs () = Array.of_list (Object_store.extent store "Section") in
  match op with
  | Set_wc (i, wc) -> (
    match pick (paras ()) i with
    | Some p -> Engine.update engine p ~prop:"word_count" (Value.Int wc)
    | None -> ())
  | Rewrite (i, keep_word) -> (
    match pick (paras ()) i with
    | Some p ->
      let text =
        if keep_word then
          Printf.sprintf "rewritten %d keeps Implementation" i
        else Printf.sprintf "rewritten %d other words" i
      in
      Engine.update engine p ~prop:"content" (Value.Str text)
    | None -> ())
  | Reparent (i, s) -> (
    match pick (paras ()) i, pick (secs ()) s with
    | Some p, Some sec -> Engine.update engine p ~prop:"section" (Value.Obj sec)
    | _ -> ())
  | Insert_para (s, wc) -> (
    match pick (secs ()) s with
    | Some sec ->
      ignore
        (Engine.insert engine ~cls:"Paragraph"
           [
             ("number", Value.Int 1000);
             ("word_count", Value.Int wc);
             ("content", Value.Str "inserted paragraph Implementation");
             ("section", Value.Obj sec);
           ])
    | None -> ())
  | Delete_para i -> (
    match pick (paras ()) i with
    | Some p -> Engine.delete engine p
    | None -> ())
  | Run_query i -> ignore (Engine.run_optimized engine (List.nth queries i))

let large_sets_ok db =
  let store = db.Db.store in
  let want = Hashtbl.create 32 in
  List.iter
    (fun p ->
      match Object_store.peek_prop store p "word_count" with
      | Value.Int n when n > 500 -> (
        match Object_store.peek_prop store p "section" with
        | Value.Obj s -> (
          match Object_store.peek_prop store s "document" with
          | Value.Obj d ->
            Hashtbl.replace want d
              (Value.Obj p
              :: Option.value ~default:[] (Hashtbl.find_opt want d))
          | _ -> ())
        | _ -> ())
      | _ -> ())
    (Object_store.extent store "Paragraph");
  List.for_all
    (fun d ->
      let expected =
        Value.set (Option.value ~default:[] (Hashtbl.find_opt want d))
      in
      let actual =
        match Object_store.peek_prop store d "largeParagraphs" with
        | Value.Set _ as v -> v
        | _ -> Value.Set []
      in
      Value.equal expected actual)
    (Object_store.extent store "Document")

let prop_dml_interleaving_matches_oracle =
  QCheck2.Test.make ~count:12
    ~name:"random DML/query interleavings: optimized = scratch rebuild" ops_gen
    (fun ops ->
      let db = Db.create ~params:F.tiny_params () in
      let engine = Engine.generate db in
      List.iter (apply_op db engine) ops;
      (* rebuild-from-scratch oracle: save to a paged database directory,
         reload, re-derive everything *)
      let oracle_db =
        F.with_temp_dir "soqm_maint" (fun dir ->
            Db.save db dir;
            Db.load dir)
      in
      let oracle_engine = Engine.generate oracle_db in
      large_sets_ok db
      && List.for_all
           (fun q ->
             let live = (Engine.run_optimized engine q).Engine.result in
             let oracle =
               (Engine.run_optimized oracle_engine q).Engine.result
             in
             let reference = Engine.run_logical_reference db q in
             Soqm_algebra.Relation.equal live oracle
             && Soqm_algebra.Relation.equal live reference)
           queries)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "maintenance"
    [
      ( "events",
        [
          F.case "change events and origins" test_change_events;
        ] );
      ( "indexes",
        [
          F.case "replace has no duplicate postings"
            test_replace_no_duplicate_postings;
          F.case "DML path has no duplicate postings"
            test_dml_no_duplicate_postings;
          F.case "hash and sorted maintainers" test_index_maintenance;
        ] );
      ( "implication-sets",
        [
          F.case "threshold crossings" test_implication_set_threshold;
          F.case "membership moves on reparent"
            test_implication_set_moves_with_reparent;
          F.case "delete removes membership"
            test_implication_set_delete_member;
        ] );
      ( "statistics",
        [
          F.case "exact deltas" test_stats_deltas;
          F.case "staleness recollect bumps epoch"
            test_staleness_triggers_recollect_and_epoch;
        ] );
      ( "plan-cache",
        [
          F.case "epoch invalidation" test_plan_cache_epoch_invalidation;
          F.case "knowledge-preserving DML keeps plans"
            test_plan_cache_knowledge_preserving_dml_keeps_plans;
          F.case "LRU eviction" test_plan_cache_lru_eviction;
        ] );
      ( "property",
        [ QCheck_alcotest.to_alcotest prop_dml_interleaving_matches_oracle ] );
    ]
