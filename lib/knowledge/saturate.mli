(** Saturation of the semantic knowledge base — derived rewrites.

    The paper's four knowledge kinds are declared one by one and applied
    one rewrite step at a time, so the optimizer is only as rich as the
    handful of rules a human wrote.  This module closes the declared
    specification set under three mechanical derivation steps, in the
    spirit of resolution-based semantic query answering:

    - {b implication transitivity} — from [∀x: a ⇒ b] and [∀x: b ⇒ c]
      (same class, consequent alpha-equal to antecedent), derive
      [∀x: a ⇒ c];
    - {b equivalence composition} — from [∀x IN C: e1 == e2] whose sides
      type as a scalar object of class [C'], and [∀y IN C': f1 == f2],
      derive [∀x IN C: f1[y := e1] == f2[y := e2]] (e.g. composing the
      two path-method equivalences into
      [p→document()→paragraphs() == p.section.document.sections.paragraphs]);
    - {b substitution} — rewriting one side of an equivalence inside the
      body of an implication (in either direction), e.g. replacing
      [p→document()] by [p.section.document] in the large-paragraphs
      implication.

    Derived specifications are subsumption-deduped modulo alpha-renaming
    of the quantified variable (and side order, for the symmetric kinds):
    a candidate alpha-equal to a known specification — or a trivial
    identity — is discarded, not re-derived.  Every surviving derivation
    carries a {!provenance} trace naming the parents it was combined
    from, which the engine surfaces in [explain] output.

    Termination: each derived expression is bounded in size, the round
    count and the total number of derivations are capped, and the
    fixpoint is reached when a round derives nothing new (tested as a
    QCheck property).  A truncated closure is still sound — every
    derived rule is individually justified — it is merely incomplete. *)

open Soqm_vml
open Soqm_semantics

type provenance =
  | Declared
  | Derived of string
      (** derivation trace over parent specification names:
          ["A∘B"] for transitivity/composition of [A] with [B],
          ["A\[B\]"] for substitution of equivalence [B] into [A]'s
          body.  Parents may themselves be derived, so traces nest,
          e.g. ["large-paragraphs\[E1-document-path\]∘K3"]. *)

type fact = { spec : Equivalence.t; prov : provenance; depth : int }
(** One element of the closed knowledge base.  [depth] is 0 for declared
    specifications and [1 + max (parent depths)] for derived ones. *)

type config = {
  max_rounds : int;  (** fixpoint rounds before giving up *)
  max_derived : int;  (** total derived specifications retained *)
  max_expr_size : int;  (** per-side {!Expr.size} bound on derivations *)
}

val default_config : config
(** [{ max_rounds = 6; max_derived = 2000; max_expr_size = 48 }] —
    roomy enough to close the generated 100+-rule families without
    truncation, small enough to terminate instantly on hand-written
    knowledge bases. *)

type stats = {
  declared : int;
  derived : int;  (** specifications added by the closure *)
  subsumed : int;  (** candidates dropped as alpha-duplicates/trivial *)
  rounds : int;  (** rounds run, including the final empty one *)
  truncated : bool;  (** a cap stopped the closure before the fixpoint *)
}

val run :
  ?config:config ->
  ?counters:Counters.t ->
  Schema.t ->
  Equivalence.t list ->
  fact list * stats
(** Close the declared specifications.  The returned facts list the
    declared specifications first (provenance {!Declared}, in input
    order) followed by the derivations in derivation order; derived
    specifications are named [K1], [K2], ... in that order, so names are
    deterministic.  [counters] (when given) is charged
    [rules_derived]/[rules_subsumed].
    @raise Invalid_argument when a {e declared} specification fails
    {!Equivalence.validate} — derived candidates that fail validation
    are silently dropped instead. *)

val specs : fact list -> Equivalence.t list
(** The specifications of the facts, in order. *)

val provenance_alist : fact list -> (string * string) list
(** [spec name → derivation trace] for the derived facts only. *)

val canonical_key : Equivalence.t -> string
(** The subsumption key: kind, class and both sides with the quantified
    variable alpha-renamed (sides sorted for the symmetric kinds).  Two
    specifications with equal keys are the same knowledge.  Exposed for
    the subsumption QCheck properties. *)
