(** Bounded counterexample checking of semantic rules — a small-scope
    model finder in the Alloy tradition.

    A semantic rule is an {e invariant the database promises}, and the
    optimizer rewrites queries assuming it; an unsound rule silently
    corrupts answers.  This checker enumerates candidate object stores
    up to a configurable bound ([k] objects per class, [k] ascending so
    the first counterexample found is a smallest one), populates base
    properties from small value domains mined off the rule constants
    (each integer constant [c] contributes [c-1, c, c+1], so threshold
    boundaries are always exercised), derives maintained implication
    sets from the {e trusted} knowledge base exactly as the live
    system's maintenance would, and evaluates both sides of the
    candidate rule under the reference {!Soqm_semantics.Runtime}
    evaluator over every object binding and a capped set of parameter
    valuations.  A store and binding where the sides disagree is a
    counterexample, rendered as a minimal witness.

    Passing is {e evidence}, not proof — the bound is small — but a
    refutation is definitive: the printed store really does violate the
    rule.  Model checking fans out on the worker pool; the witness is
    deterministic for a given seed regardless of [jobs]. *)

open Soqm_vml
open Soqm_semantics

type config = {
  bound : int;  (** max objects per class; sizes [1..bound] are tried *)
  models_per_size : int;  (** random stores generated per size *)
  seed : int;
  jobs : int;  (** worker-pool fan-out across models *)
  max_valuations : int;  (** parameter-valuation cap per model *)
}

val default_config : config
(** [{ bound = 3; models_per_size = 30; seed = 42; jobs = 1;
      max_valuations = 64 }] *)

type witness = {
  model_index : int;  (** global model number, for reproduction *)
  model_size : int;  (** objects per class in the refuting store *)
  store_text : string;  (** rendered witness store *)
  detail : string;  (** the binding and side values that disagree *)
}

type verdict =
  | Sound of { models : int }  (** no counterexample in [models] stores *)
  | Refuted of witness
  | Unsupported of string
      (** no generated model could evaluate the rule at all — reported
          instead of a vacuous [Sound] *)

val check_spec :
  ?config:config ->
  ?install:(Object_store.t -> unit) ->
  ?counters:Counters.t ->
  trusted:Equivalence.t list ->
  Schema.t ->
  Equivalence.t ->
  verdict
(** Check one rule.  [install] registers method implementations on each
    candidate store (the engine passes scan-based natives — candidate
    stores have no indexes).  [trusted] is the knowledge base assumed
    sound: maintained-shape implications in it define the derived set
    properties of every candidate store, so a declared maintained rule
    holds by construction while a candidate claiming a different
    membership condition is refutable.  [counters] is charged
    [models_checked]/[counterexamples_found]. *)

val check_specs :
  ?config:config ->
  ?install:(Object_store.t -> unit) ->
  ?counters:Counters.t ->
  trusted:Equivalence.t list ->
  Schema.t ->
  Equivalence.t list ->
  (Equivalence.t * verdict) list
(** {!check_spec} over a list, in order. *)

val pp_verdict : Format.formatter -> verdict -> unit
