open Soqm_vml
open Soqm_semantics

type provenance = Declared | Derived of string

type fact = { spec : Equivalence.t; prov : provenance; depth : int }

type config = { max_rounds : int; max_derived : int; max_expr_size : int }

let default_config = { max_rounds = 6; max_derived = 2000; max_expr_size = 48 }

type stats = {
  declared : int;
  derived : int;
  subsumed : int;
  rounds : int;
  truncated : bool;
}

(* ------------------------------------------------------------------ *)
(* expression utilities                                                *)
(* ------------------------------------------------------------------ *)

(* Replace every occurrence of [from] (as a whole subterm) by [to_]. *)
let rec replace_subterm ~from ~to_ e =
  if Expr.equal e from then to_
  else
    let go e = replace_subterm ~from ~to_ e in
    match e with
    | Expr.Const _ | Expr.Self | Expr.Param _ | Expr.Ref _ | Expr.ClassObj _ ->
      e
    | Expr.Prop (e1, p) -> Expr.Prop (go e1, p)
    | Expr.Call (r, m, args) -> Expr.Call (go r, m, List.map go args)
    | Expr.Binop (op, a, b) -> Expr.Binop (op, go a, go b)
    | Expr.Not a -> Expr.Not (go a)
    | Expr.TupleE fields -> Expr.TupleE (List.map (fun (l, x) -> (l, go x)) fields)
    | Expr.SetE xs -> Expr.SetE (List.map go xs)
    | Expr.If (a, b, c) -> Expr.If (go a, go b, go c)

(* A small structural type inferencer over specification sides, enough
   to direct equivalence composition: the quantified variable has type
   [TObj cls]; parameters and anything dynamic infer to [None]. *)
let type_of_value = function
  | Value.Bool _ -> Some Vtype.TBool
  | Value.Int _ -> Some Vtype.TInt
  | Value.Real _ -> Some Vtype.TReal
  | Value.Str _ -> Some Vtype.TString
  | Value.Obj oid -> Some (Vtype.TObj (Oid.cls oid))
  | _ -> None

let rec infer schema ~cls ~var e =
  let lift base = function
    | Vtype.TSet t -> Some (Vtype.TSet t)
    | t -> if base then Some t else Some (Vtype.TSet t)
  in
  match e with
  | Expr.Ref r when String.equal r var -> Some (Vtype.TObj cls)
  | Expr.Ref _ | Expr.Param _ | Expr.Self -> None
  | Expr.ClassObj _ -> None
  | Expr.Const v -> type_of_value v
  | Expr.Prop (e1, p) -> (
    match infer schema ~cls ~var e1 with
    | Some (Vtype.TObj c) ->
      Option.bind (Schema.property_type schema ~cls:c ~prop:p) (lift true)
    | Some (Vtype.TSet (Vtype.TObj c)) ->
      (* set-lifted access: scalar results collect into a set, set
         results union *)
      Option.bind (Schema.property_type schema ~cls:c ~prop:p) (lift false)
    | _ -> None)
  | Expr.Call (Expr.ClassObj c, m, _) ->
    Option.map
      (fun (ms : Schema.method_sig) -> ms.Schema.returns)
      (Schema.own_method schema ~cls:c ~meth:m)
  | Expr.Call (recv, m, _) -> (
    match infer schema ~cls ~var recv with
    | Some (Vtype.TObj c) ->
      Option.map
        (fun (ms : Schema.method_sig) -> ms.Schema.returns)
        (Schema.inst_method schema ~cls:c ~meth:m)
    | _ -> None)
  | Expr.Binop ((Eq | Neq | Lt | Le | Gt | Ge | IsIn | IsSubset | And | Or), _, _)
  | Expr.Not _ ->
    Some Vtype.TBool
  | Expr.Binop _ | Expr.TupleE _ | Expr.SetE _ | Expr.If _ -> None

(* ------------------------------------------------------------------ *)
(* alpha-canonical subsumption                                         *)
(* ------------------------------------------------------------------ *)

let canon_var = "%x"

let canonical_key spec =
  let canon var e = Expr.rename_ref ~old_ref:var ~new_ref:canon_var e in
  let sorted a b =
    if Expr.compare a b <= 0 then (a, b) else (b, a)
  in
  match (spec : Equivalence.t) with
  | Equivalence.Expr_equiv { cls; var; lhs; rhs; _ } ->
    let a, b = sorted (canon var lhs) (canon var rhs) in
    Printf.sprintf "E|%s|%s|%s" cls (Expr.to_string a) (Expr.to_string b)
  | Equivalence.Cond_equiv { cls; var; lhs; rhs; _ } ->
    let a, b = sorted (canon var lhs) (canon var rhs) in
    Printf.sprintf "C|%s|%s|%s" cls (Expr.to_string a) (Expr.to_string b)
  | Equivalence.Implication { cls; var; antecedent; consequent; _ } ->
    Printf.sprintf "I|%s|%s|%s" cls
      (Expr.to_string (canon var antecedent))
      (Expr.to_string (canon var consequent))
  | Equivalence.Query_method { cls; var; cond; meth_cls; meth; args; _ } ->
    Printf.sprintf "Q|%s|%s|%s->%s(%s)" cls
      (Expr.to_string (canon var cond))
      meth_cls meth
      (String.concat ","
         (List.map
            (function
              | Equivalence.Arg_param p -> "?" ^ p
              | Equivalence.Arg_const v -> Value.to_string v)
            args))

let trivial = function
  | Equivalence.Expr_equiv { lhs; rhs; _ }
  | Equivalence.Cond_equiv { lhs; rhs; _ } ->
    Expr.equal lhs rhs
  | Equivalence.Implication { antecedent; consequent; _ } ->
    Expr.equal antecedent consequent
  | Equivalence.Query_method _ -> false

(* ------------------------------------------------------------------ *)
(* derivation steps                                                    *)
(* ------------------------------------------------------------------ *)

let spec_name (f : fact) = Equivalence.name f.spec

let sides = function
  | Equivalence.Expr_equiv { lhs; rhs; _ }
  | Equivalence.Cond_equiv { lhs; rhs; _ }
  | Equivalence.Implication { antecedent = lhs; consequent = rhs; _ } ->
    [ lhs; rhs ]
  | Equivalence.Query_method { cond; _ } -> [ cond ]

let max_side_size spec =
  List.fold_left (fun acc e -> max acc (Expr.size e)) 0 (sides spec)

(* [∀x: a ⇒ b] + [∀x: b ⇒ c]  ↦  [∀x: a ⇒ c] *)
let imp_trans (f1 : fact) (f2 : fact) =
  match (f1.spec, f2.spec) with
  | ( Equivalence.Implication { cls = c1; var = v1; antecedent = a1; consequent = b1; _ },
      Equivalence.Implication { cls = c2; var = v2; antecedent = a2; consequent = b2; _ } )
    when String.equal c1 c2 ->
    let a2 = Expr.rename_ref ~old_ref:v2 ~new_ref:v1 a2 in
    let b2 = Expr.rename_ref ~old_ref:v2 ~new_ref:v1 b2 in
    if Expr.equal b1 a2 then
      [
        ( (fun name ->
            Equivalence.Implication
              { name; cls = c1; var = v1; antecedent = a1; consequent = b2 }),
          Printf.sprintf "%s∘%s" (spec_name f1) (spec_name f2) );
      ]
    else []
  | _ -> []

(* [∀x IN C: e1 == e2] with [e1 : TObj C'] + [∀y IN C': f1 == f2]
   ↦  [∀x IN C: f1[y := e1] == f2[y := e2]] *)
let compose schema (f1 : fact) (f2 : fact) =
  match (f1.spec, f2.spec) with
  | ( Equivalence.Expr_equiv { cls = c1; var = v1; lhs = e1; rhs = e2; _ },
      Equivalence.Expr_equiv { cls = c2; var = v2; lhs = g1; rhs = g2; _ } ) -> (
    match infer schema ~cls:c1 ~var:v1 e1 with
    | Some (Vtype.TObj c) when String.equal c c2 ->
      let lhs = Expr.subst_ref v2 e1 g1 in
      let rhs = Expr.subst_ref v2 e2 g2 in
      [
        ( (fun name -> Equivalence.Expr_equiv { name; cls = c1; var = v1; lhs; rhs }),
          Printf.sprintf "%s∘%s" (spec_name f1) (spec_name f2) );
      ]
    | _ -> [])
  | _ -> []

(* Rewrite an equivalence's side occurrences inside an implication body
   (both directions).  Condition equivalences rewrite whole boolean
   subterms the same way — a side equal to the antecedent or consequent
   is replaced at the root. *)
let subst_into (feq : fact) (fimp : fact) =
  match (feq.spec, fimp.spec) with
  | ( ( Equivalence.Expr_equiv { cls = ce; var = ve; lhs = l; rhs = r; _ }
      | Equivalence.Cond_equiv { cls = ce; var = ve; lhs = l; rhs = r; _ } ),
      Equivalence.Implication { cls = ci; var = vi; antecedent = a; consequent = c; _ } )
    when String.equal ce ci ->
    let l = Expr.rename_ref ~old_ref:ve ~new_ref:vi l in
    let r = Expr.rename_ref ~old_ref:ve ~new_ref:vi r in
    let directions = [ (l, r); (r, l) ] in
    List.filter_map
      (fun (from, to_) ->
        let a' = replace_subterm ~from ~to_ a in
        let c' = replace_subterm ~from ~to_ c in
        if Expr.equal a a' && Expr.equal c c' then None
        else
          Some
            ( (fun name ->
                Equivalence.Implication
                  { name; cls = ci; var = vi; antecedent = a'; consequent = c' }),
              Printf.sprintf "%s[%s]" (spec_name fimp) (spec_name feq) ))
      directions
  | _ -> []

(* ------------------------------------------------------------------ *)
(* the closure                                                         *)
(* ------------------------------------------------------------------ *)

let run ?(config = default_config) ?counters schema declared =
  List.iter
    (fun spec ->
      match Equivalence.validate schema spec with
      | Ok () -> ()
      | Error msg -> invalid_arg ("Saturate.run: " ^ msg))
    declared;
  let seen = Hashtbl.create 256 in
  let facts = ref [] (* reversed *) in
  let n_derived = ref 0 in
  let n_subsumed = ref 0 in
  let next_name = ref 0 in
  let truncated = ref false in
  let add spec prov depth =
    let key = canonical_key spec in
    if trivial spec || Hashtbl.mem seen key then begin
      incr n_subsumed;
      None
    end
    else begin
      Hashtbl.replace seen key ();
      let f = { spec; prov; depth } in
      facts := f :: !facts;
      Some f
    end
  in
  List.iter (fun spec -> ignore (add spec Declared 0)) declared;
  let n_declared = List.length !facts in
  (* candidate from a pair of facts: validated, size-bounded, named on
     acceptance so K-numbers stay dense and deterministic *)
  let consider (f1 : fact) (f2 : fact) acc (mk, trace) =
    if !n_derived >= config.max_derived then begin
      truncated := true;
      acc
    end
    else
      let probe = mk "%candidate" in
      if trivial probe then begin
        incr n_subsumed;
        acc
      end
      else if max_side_size probe > config.max_expr_size then acc
      else if Hashtbl.mem seen (canonical_key probe) then begin
        incr n_subsumed;
        acc
      end
      else
        match Equivalence.validate schema probe with
        | Error _ -> acc
        | Ok () -> (
          incr next_name;
          let name = Printf.sprintf "K%d" !next_name in
          let spec = mk name in
          match add spec (Derived trace) (1 + max f1.depth f2.depth) with
          | Some f ->
            incr n_derived;
            f :: acc
          | None -> acc)
  in
  (* semi-naive rounds: a pair is only re-examined when at least one of
     its facts entered the base in the previous round, so candidates are
     generated (and counted) once, not once per round *)
  let rounds = ref 0 in
  let continue = ref true in
  let frontier = ref (List.rev !facts) in
  while !continue && !rounds < config.max_rounds do
    incr rounds;
    let all = List.rev !facts in
    let fresh = Hashtbl.create 64 in
    List.iter (fun f -> Hashtbl.replace fresh (spec_name f) ()) !frontier;
    let is_new f = Hashtbl.mem fresh (spec_name f) in
    let added =
      List.fold_left
        (fun acc f1 ->
          List.fold_left
            (fun acc f2 ->
              if not (is_new f1 || is_new f2) then acc
              else
                let acc =
                  List.fold_left (consider f1 f2) acc (imp_trans f1 f2)
                in
                let acc =
                  List.fold_left (consider f1 f2) acc (compose schema f1 f2)
                in
                List.fold_left (consider f1 f2) acc (subst_into f1 f2))
            acc all)
        [] all
    in
    frontier := added;
    if added = [] then continue := false
  done;
  if !continue && !rounds >= config.max_rounds then truncated := true;
  (match counters with
  | Some c ->
    Counters.charge_rules_derived c !n_derived;
    Counters.charge_rules_subsumed c !n_subsumed
  | None -> ());
  ( List.rev !facts,
    {
      declared = n_declared;
      derived = !n_derived;
      subsumed = !n_subsumed;
      rounds = !rounds;
      truncated = !truncated;
    } )

let specs facts = List.map (fun f -> f.spec) facts

let provenance_alist facts =
  List.filter_map
    (fun f ->
      match f.prov with
      | Declared -> None
      | Derived trace -> Some (Equivalence.name f.spec, trace))
    facts
