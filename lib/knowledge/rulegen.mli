(** Generated specification families for the document schema — the
    "datagen for knowledge" behind the 100+-rule saturation gate, and a
    matrix of deliberately unsound rules the bounded checker must
    refute.

    {!family} declares only O(n) specifications (a chain of adjacent
    word-count threshold implications, one [>] ⇔ [>=] boundary
    equivalence per threshold, and the wordCount-method/property
    equivalence); saturation closes the chain transitively and
    substitutes the method form into every implication, growing the set
    to O(n²) derived rules no human wrote. *)

open Soqm_semantics

val wc_method_equiv : Equivalence.t
(** [∀p IN Paragraph: p→wordCount() == p.word_count] — sound for the
    document database, whose external [wordCount] returns the
    precomputed property. *)

val family : ?thresholds:int -> ?step:int -> unit -> Equivalence.t list
(** The declared family: [1 + (thresholds-1) + thresholds]
    specifications over [Paragraph.word_count] with thresholds
    [step, 2·step, ...].  The defaults (8 thresholds, step 100)
    saturate to well over 100 derived rules within
    {!Saturate.default_config}'s caps. *)

val mutations : unit -> (string * Equivalence.t) list
(** Labeled seeded-unsound specifications — flipped comparison, wrong
    class, off-by-one thresholds, a negated index equivalence and a
    wrong query/method pairing.  Every one of them must be refuted by
    the bounded checker at the default bound (the test matrix of the
    acceptance criteria). *)
