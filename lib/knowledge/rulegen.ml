open Soqm_vml
open Soqm_semantics

let wc p = Expr.Prop (Expr.Ref p, "word_count")
let wc_call p = Expr.Call (Expr.Ref p, "wordCount", [])
let int_ n = Expr.Const (Value.Int n)

(* wordCount() returns the precomputed word_count property, so the
   method/property equivalence is sound for the document database's
   external implementation. *)
let wc_method_equiv =
  Equivalence.Expr_equiv
    {
      name = "G-wc-method";
      cls = "Paragraph";
      var = "p";
      lhs = wc_call "p";
      rhs = wc "p";
    }

let family ?(thresholds = 8) ?(step = 100) () =
  let ts = List.init thresholds (fun i -> (i + 1) * step) in
  (* adjacent threshold implications: wc > 200 ⇒ wc > 100, ... — the
     saturation pass closes the chain into all O(n²) pairs *)
  let chain =
    List.filter_map
      (fun i ->
        if i = 0 then None
        else
          let hi = List.nth ts i and lo = List.nth ts (i - 1) in
          Some
            (Equivalence.Implication
               {
                 name = Printf.sprintf "G-wc-gt-%d-%d" hi lo;
                 cls = "Paragraph";
                 var = "p";
                 antecedent = Expr.Binop (Expr.Gt, wc "p", int_ hi);
                 consequent = Expr.Binop (Expr.Gt, wc "p", int_ lo);
               }))
      (List.init thresholds Fun.id)
  in
  (* integer off-by-one equivalences: wc > t ⇔ wc >= t+1 *)
  let ge_equivs =
    List.map
      (fun t ->
        Equivalence.Cond_equiv
          {
            name = Printf.sprintf "G-wc-ge-%d" t;
            cls = "Paragraph";
            var = "p";
            lhs = Expr.Binop (Expr.Gt, wc "p", int_ t);
            rhs = Expr.Binop (Expr.Ge, wc "p", int_ (t + 1));
          })
      ts
  in
  (wc_method_equiv :: chain) @ ge_equivs

(* ------------------------------------------------------------------ *)
(* seeded-unsound mutations                                            *)
(* ------------------------------------------------------------------ *)

let large_paragraphs p =
  Expr.Binop
    ( Expr.IsIn,
      Expr.Ref p,
      Expr.Prop (Expr.Call (Expr.Ref p, "document", []), "largeParagraphs") )

let mutations () =
  [
    ( "off-by-threshold",
      (* the maintained set holds wc > 500 members; claiming it for
         wc > 400 is refuted by any paragraph in (400, 500] *)
      Equivalence.Implication
        {
          name = "M-threshold-400";
          cls = "Paragraph";
          var = "p";
          antecedent = Expr.Binop (Expr.Gt, wc_call "p", int_ 400);
          consequent = large_paragraphs "p";
        } );
    ( "flipped-comparison",
      Equivalence.Implication
        {
          name = "M-flipped-lt";
          cls = "Paragraph";
          var = "p";
          antecedent = Expr.Binop (Expr.Lt, wc_call "p", int_ 500);
          consequent = large_paragraphs "p";
        } );
    ( "wrong-class-path",
      (* p->document() is a Document, not the paragraph's section *)
      Equivalence.Expr_equiv
        {
          name = "M-wrong-class";
          cls = "Paragraph";
          var = "p";
          lhs = Expr.Call (Expr.Ref "p", "document", []);
          rhs = Expr.Prop (Expr.Ref "p", "section");
        } );
    ( "off-by-one-boundary",
      (* false exactly at wc = 500 *)
      Equivalence.Cond_equiv
        {
          name = "M-boundary-500";
          cls = "Paragraph";
          var = "p";
          lhs = Expr.Binop (Expr.Gt, wc "p", int_ 500);
          rhs = Expr.Binop (Expr.Ge, wc "p", int_ 500);
        } );
    ( "negated-index",
      Equivalence.Cond_equiv
        {
          name = "M-negated-index";
          cls = "Document";
          var = "d";
          lhs =
            Expr.Binop
              (Expr.Neq, Expr.Prop (Expr.Ref "d", "title"), Expr.Param "s");
          rhs =
            Expr.Binop
              ( Expr.IsIn,
                Expr.Ref "d",
                Expr.Call
                  (Expr.ClassObj "Document", "select_by_index", [ Expr.Param "s" ])
              );
        } );
    ( "wrong-query-method",
      (* retrieve_by_string returns the paragraphs containing s, not the
         ones with a nonempty content *)
      Equivalence.Query_method
        {
          name = "M-wrong-query";
          cls = "Paragraph";
          var = "p";
          cond =
            Expr.Binop
              (Expr.Neq, Expr.Prop (Expr.Ref "p", "content"), Expr.Param "s");
          meth_cls = "Paragraph";
          meth = "retrieve_by_string";
          args = [ Equivalence.Arg_param "s" ];
        } );
  ]
