open Soqm_vml
open Soqm_semantics

type config = {
  bound : int;
  models_per_size : int;
  seed : int;
  jobs : int;
  max_valuations : int;
}

let default_config =
  { bound = 3; models_per_size = 30; seed = 42; jobs = 1; max_valuations = 64 }

type witness = {
  model_index : int;
  model_size : int;
  store_text : string;
  detail : string;
}

type verdict =
  | Sound of { models : int }
  | Refuted of witness
  | Unsupported of string

(* ------------------------------------------------------------------ *)
(* expression walks                                                    *)
(* ------------------------------------------------------------------ *)

let rec fold_expr f acc e =
  let acc = f acc e in
  match e with
  | Expr.Const _ | Expr.Self | Expr.Param _ | Expr.Ref _ | Expr.ClassObj _ ->
    acc
  | Expr.Prop (e1, _) -> fold_expr f acc e1
  | Expr.Call (r, _, args) ->
    List.fold_left (fold_expr f) (fold_expr f acc r) args
  | Expr.Binop (_, a, b) -> fold_expr f (fold_expr f acc a) b
  | Expr.Not a -> fold_expr f acc a
  | Expr.TupleE fs -> List.fold_left (fun acc (_, x) -> fold_expr f acc x) acc fs
  | Expr.SetE xs -> List.fold_left (fold_expr f) acc xs
  | Expr.If (a, b, c) -> fold_expr f (fold_expr f (fold_expr f acc a) b) c

let sides_of = function
  | Equivalence.Expr_equiv { lhs; rhs; _ } | Equivalence.Cond_equiv { lhs; rhs; _ }
    ->
    [ lhs; rhs ]
  | Equivalence.Implication { antecedent; consequent; _ } ->
    [ antecedent; consequent ]
  | Equivalence.Query_method { cond; _ } -> [ cond ]

let params_of_spec spec =
  let of_expr acc e =
    fold_expr
      (fun acc -> function Expr.Param p -> p :: acc | _ -> acc)
      acc e
  in
  let base = List.fold_left of_expr [] (sides_of spec) in
  let all =
    match spec with
    | Equivalence.Query_method { args; _ } ->
      List.fold_left
        (fun acc -> function
          | Equivalence.Arg_param p -> p :: acc
          | Equivalence.Arg_const _ -> acc)
        base args
    | _ -> base
  in
  List.sort_uniq String.compare all

(* Small value domains mined from the rule constants: integer constants
   contribute an off-by-one neighborhood (c-1, c, c+1) so threshold
   boundaries are always exercised. *)
let mine_domains specs =
  let ints = ref [] and strs = ref [] and reals = ref [] in
  List.iter
    (fun spec ->
      List.iter
        (fun e ->
          ignore
            (fold_expr
               (fun () -> function
                 | Expr.Const (Value.Int n) -> ints := (n - 1) :: n :: (n + 1) :: !ints
                 | Expr.Const (Value.Str s) -> strs := s :: !strs
                 | Expr.Const (Value.Real r) -> reals := r :: !reals
                 | _ -> ())
               () e))
        (sides_of spec))
    specs;
  let ints = List.sort_uniq Int.compare (0 :: 1 :: !ints) in
  let strs = List.sort_uniq String.compare ("alpha" :: "beta" :: "gamma" :: !strs) in
  let reals = List.sort_uniq Float.compare (0.0 :: 1.0 :: !reals) in
  (ints, strs, reals)

(* ------------------------------------------------------------------ *)
(* candidate stores                                                    *)
(* ------------------------------------------------------------------ *)

let pick rng xs = List.nth xs (Random.State.int rng (List.length xs))

(* The maintained-implication shape [Maintenance.compile_implication]
   recognizes: consequent [x IS-IN target(x).set_prop]. *)
let maintained_shape = function
  | Equivalence.Implication
      {
        cls;
        var;
        antecedent;
        consequent = Expr.Binop (Expr.IsIn, Expr.Ref v, Expr.Prop (target_expr, set_prop));
        _;
      }
    when String.equal v var ->
    Some (cls, var, antecedent, target_expr, set_prop)
  | _ -> None

let eval_for store var oid ~params e =
  let env =
    Runtime.env ~params
      ~binding:(fun r ->
        if String.equal r var then Some (Value.Obj oid) else None)
      store
  in
  Runtime.eval env e

(* Derived implication sets are not base data: candidate stores derive
   them from the *trusted* knowledge base, exactly as the live system's
   maintenance does — so a declared maintained set holds by
   construction, while a candidate rule claiming a different membership
   condition is refutable. *)
let reconcile_derived store trusted =
  let schema = Object_store.schema store in
  List.iter
    (fun spec ->
      match maintained_shape spec with
      | None -> ()
      | Some (cls, var, antecedent, target_expr, set_prop) ->
        let desired = Hashtbl.create 16 in
        List.iter
          (fun oid ->
            let truthy_antecedent =
              try Value.truthy (eval_for store var oid ~params:[] antecedent)
              with Runtime.Error _ | Invalid_argument _ -> false
            in
            if truthy_antecedent then
              match
                try Some (eval_for store var oid ~params:[] target_expr)
                with Runtime.Error _ | Invalid_argument _ -> None
              with
              | Some (Value.Obj t) ->
                let cur = Option.value ~default:[] (Hashtbl.find_opt desired t) in
                Hashtbl.replace desired t (Value.Obj oid :: cur)
              | _ -> ())
          (Object_store.extent store cls);
        List.iter
          (fun (cd : Schema.class_def) ->
            let holds (p : Schema.property) =
              String.equal p.Schema.prop_name set_prop
              && p.Schema.prop_type = Vtype.TSet (Vtype.TObj cls)
            in
            if List.exists holds cd.Schema.properties then
              List.iter
                (fun t ->
                  let members =
                    Option.value ~default:[] (Hashtbl.find_opt desired t)
                  in
                  Object_store.set_prop_derived store t set_prop
                    (Value.set members))
                (Object_store.extent store cd.Schema.cls_name))
          (Schema.classes schema))
    trusted

let build_model ~schema ~install ~trusted ~ints ~strs ~reals ~k rng =
  let store = Object_store.create schema in
  install store;
  let objs = Hashtbl.create 8 in
  List.iter
    (fun (cd : Schema.class_def) ->
      Hashtbl.replace objs cd.Schema.cls_name
        (Array.init k (fun _ ->
             Object_store.create_object store ~cls:cd.Schema.cls_name [])))
    (Schema.classes schema);
  (* base properties: scalar object references always point somewhere
     (inverse links are maintained by the store), primitives draw from
     the mined domains; set-valued properties are left to inverse
     maintenance and the trusted-implication reconcile below *)
  List.iter
    (fun (cd : Schema.class_def) ->
      Array.iter
        (fun oid ->
          List.iter
            (fun (p : Schema.property) ->
              let set v = Object_store.set_prop store oid p.Schema.prop_name v in
              match p.Schema.prop_type with
              | Vtype.TObj c ->
                let targets = Hashtbl.find objs c in
                set (Value.Obj targets.(Random.State.int rng (Array.length targets)))
              | Vtype.TInt -> set (Value.Int (pick rng ints))
              | Vtype.TString ->
                let s =
                  if Random.State.int rng 3 = 0 then
                    pick rng strs ^ " " ^ pick rng strs
                  else pick rng strs
                in
                set (Value.Str s)
              | Vtype.TBool -> set (Value.Bool (Random.State.bool rng))
              | Vtype.TReal -> set (Value.Real (pick rng reals))
              | _ -> ())
            cd.Schema.properties)
        (Hashtbl.find objs cd.Schema.cls_name))
    (Schema.classes schema);
  reconcile_derived store trusted;
  store

let render_store store =
  let schema = Object_store.schema store in
  let buf = Buffer.create 256 in
  List.iter
    (fun (cd : Schema.class_def) ->
      List.iter
        (fun oid ->
          Buffer.add_string buf ("  " ^ Oid.to_string oid ^ " {");
          List.iteri
            (fun i (p : Schema.property) ->
              if i > 0 then Buffer.add_string buf ";";
              Buffer.add_string buf
                (Printf.sprintf " %s=%s" p.Schema.prop_name
                   (Value.to_string (Object_store.peek_prop store oid p.Schema.prop_name))))
            cd.Schema.properties;
          Buffer.add_string buf " }\n")
        (Object_store.extent store cd.Schema.cls_name))
    (Schema.classes schema);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* parameter valuations                                                *)
(* ------------------------------------------------------------------ *)

(* Per-model parameter domain: the mined constants plus objects and
   small object sets of the model itself (inverse-link equivalences
   quantify over object-set parameters). *)
let param_values store ~ints ~strs ~reals =
  let consts =
    List.map (fun n -> Value.Int n) ints
    @ List.map (fun s -> Value.Str s) strs
    @ List.map (fun r -> Value.Real r) reals
  in
  let schema = Object_store.schema store in
  let per_class =
    List.concat_map
      (fun (cd : Schema.class_def) ->
        let ext = Object_store.extent store cd.Schema.cls_name in
        let objs = List.map (fun o -> Value.Obj o) ext in
        let sets =
          match objs with
          | [] -> [ Value.Set [] ]
          | first :: _ -> [ Value.set objs; Value.set [ first ]; Value.Set [] ]
        in
        objs @ sets)
      (Schema.classes schema)
  in
  consts @ per_class

let valuations rng params domain max_v =
  match params with
  | [] -> [ [] ]
  | _ ->
    let n = List.length domain in
    let total =
      List.fold_left
        (fun acc _ -> if acc > max_v then acc else acc * n)
        1 params
    in
    if total <= max_v then
      (* full cartesian product *)
      List.fold_left
        (fun acc p ->
          List.concat_map (fun tail -> List.map (fun v -> (p, v) :: tail) domain) acc)
        [ [] ] params
    else
      List.init max_v (fun _ ->
          List.map (fun p -> (p, pick rng domain)) params)

(* ------------------------------------------------------------------ *)
(* one rule on one model                                               *)
(* ------------------------------------------------------------------ *)

let pp_binding var oid params =
  String.concat ", "
    ((Printf.sprintf "%s := %s" var (Oid.to_string oid))
    :: List.map
         (fun (p, v) -> Printf.sprintf "%s := %s" p (Value.to_string v))
         params)

(* [Some detail] when the model refutes the rule; counts successful
   side evaluations into [evaluated] so a rule no model can evaluate is
   reported as unsupported rather than vacuously sound. *)
let check_on_model ~evaluated store spec vals =
  let exception Found of string in
  try
    (match spec with
    | Equivalence.Expr_equiv { cls; var; lhs; rhs; _ } ->
      List.iter
        (fun oid ->
          List.iter
            (fun params ->
              match
                ( (try Some (eval_for store var oid ~params lhs)
                   with Runtime.Error _ | Invalid_argument _ -> None),
                  try Some (eval_for store var oid ~params rhs)
                  with Runtime.Error _ | Invalid_argument _ -> None )
              with
              | Some lv, Some rv ->
                Atomic.incr evaluated;
                if not (Value.equal lv rv) then
                  raise
                    (Found
                       (Printf.sprintf "%s: lhs = %s, rhs = %s"
                          (pp_binding var oid params) (Value.to_string lv)
                          (Value.to_string rv)))
              | _ -> ())
            vals)
        (Object_store.extent store cls)
    | Equivalence.Cond_equiv { cls; var; lhs; rhs; _ } ->
      List.iter
        (fun oid ->
          List.iter
            (fun params ->
              match
                ( (try Some (eval_for store var oid ~params lhs)
                   with Runtime.Error _ | Invalid_argument _ -> None),
                  try Some (eval_for store var oid ~params rhs)
                  with Runtime.Error _ | Invalid_argument _ -> None )
              with
              | Some lv, Some rv ->
                Atomic.incr evaluated;
                if Value.truthy lv <> Value.truthy rv then
                  raise
                    (Found
                       (Printf.sprintf "%s: lhs %s, rhs %s"
                          (pp_binding var oid params)
                          (if Value.truthy lv then "holds" else "fails")
                          (if Value.truthy rv then "holds" else "fails")))
              | _ -> ())
            vals)
        (Object_store.extent store cls)
    | Equivalence.Implication { cls; var; antecedent; consequent; _ } ->
      List.iter
        (fun oid ->
          List.iter
            (fun params ->
              match
                ( (try Some (eval_for store var oid ~params antecedent)
                   with Runtime.Error _ | Invalid_argument _ -> None),
                  try Some (eval_for store var oid ~params consequent)
                  with Runtime.Error _ | Invalid_argument _ -> None )
              with
              | Some av, Some cv ->
                Atomic.incr evaluated;
                if Value.truthy av && not (Value.truthy cv) then
                  raise
                    (Found
                       (Printf.sprintf
                          "%s: antecedent holds but consequent fails"
                          (pp_binding var oid params)))
              | _ -> ())
            vals)
        (Object_store.extent store cls)
    | Equivalence.Query_method { cls; var; cond; meth_cls; meth; args; _ } ->
      List.iter
        (fun params ->
          let arg_values =
            List.map
              (function
                | Equivalence.Arg_const v -> Some v
                | Equivalence.Arg_param p -> List.assoc_opt p params)
              args
          in
          if List.for_all Option.is_some arg_values then begin
            let arg_values = List.map Option.get arg_values in
            let selected =
              List.filter
                (fun oid ->
                  try Value.truthy (eval_for store var oid ~params cond)
                  with Runtime.Error _ | Invalid_argument _ -> false)
                (Object_store.extent store cls)
            in
            match
              try
                Some (Runtime.invoke store (Value.Cls meth_cls) meth arg_values)
              with Runtime.Error _ | Invalid_argument _ -> None
            with
            | Some rv ->
              Atomic.incr evaluated;
              let lv = Value.set (List.map (fun o -> Value.Obj o) selected) in
              if not (Value.equal lv rv) then
                raise
                  (Found
                     (Printf.sprintf
                        "%s: selection yields %s but %s->%s yields %s"
                        (String.concat ", "
                           (List.map
                              (fun (p, v) ->
                                Printf.sprintf "%s := %s" p (Value.to_string v))
                              params))
                        (Value.to_string lv) meth_cls meth (Value.to_string rv)))
            | None -> ()
          end)
        vals);
    None
  with Found detail -> Some detail

(* ------------------------------------------------------------------ *)
(* the search                                                          *)
(* ------------------------------------------------------------------ *)

let check_spec ?(config = default_config) ?(install = fun _ -> ()) ?counters
    ~trusted schema spec =
  let ints, strs, reals = mine_domains (spec :: trusted) in
  let params = params_of_spec spec in
  let evaluated = Atomic.make 0 in
  let models_run = ref 0 in
  let verdict = ref None in
  let witness_m = Mutex.create () in
  let best = Atomic.make max_int in
  let best_witness = ref None in
  let jobs = max 1 config.jobs in
  let k = ref 1 in
  while !verdict = None && !k <= config.bound do
    let size = !k in
    let cursor = Atomic.make 0 in
    let worker _w =
      let rec loop () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < config.models_per_size then begin
          (* indices above an already found counterexample need no work,
             but smaller ones still run — the reported witness is the
             smallest model regardless of worker interleaving *)
          if i < Atomic.get best then begin
            let index = ((size - 1) * config.models_per_size) + i in
            let rng = Random.State.make [| config.seed; index; 0x5eed |] in
            let store =
              build_model ~schema ~install ~trusted ~ints ~strs ~reals ~k:size
                rng
            in
            let domain = param_values store ~ints ~strs ~reals in
            let vals = valuations rng params domain config.max_valuations in
            (match check_on_model ~evaluated store spec vals with
            | Some detail ->
              Mutex.lock witness_m;
              if index < Atomic.get best then begin
                Atomic.set best index;
                best_witness :=
                  Some
                    {
                      model_index = index;
                      model_size = size;
                      store_text = render_store store;
                      detail;
                    }
              end;
              Mutex.unlock witness_m
            | None -> ())
          end;
          loop ()
        end
      in
      loop ()
    in
    Soqm_physical.Pool.run (Soqm_physical.Pool.global ()) ~jobs worker;
    models_run := !models_run + config.models_per_size;
    (match counters with
    | Some c -> Counters.charge_models_checked c config.models_per_size
    | None -> ());
    (match !best_witness with
    | Some w ->
      verdict := Some (Refuted w);
      (match counters with
      | Some c -> Counters.charge_counterexample c
      | None -> ())
    | None -> ());
    incr k
  done;
  match !verdict with
  | Some v -> v
  | None ->
    if Atomic.get evaluated = 0 then
      Unsupported
        "no generated model could evaluate the rule (missing method \
         implementations or parameter domain)"
    else Sound { models = !models_run }

let check_specs ?config ?install ?counters ~trusted schema specs =
  List.map
    (fun spec ->
      (spec, check_spec ?config ?install ?counters ~trusted schema spec))
    specs

let pp_verdict ppf = function
  | Sound { models } -> Format.fprintf ppf "sound (%d bounded models)" models
  | Unsupported msg -> Format.fprintf ppf "unsupported: %s" msg
  | Refuted w ->
    Format.fprintf ppf
      "REFUTED by model %d (%d object(s) per class)@,witness store:@,%s  at %s"
      w.model_index w.model_size w.store_text w.detail
