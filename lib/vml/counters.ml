type t = {
  mutable objects_fetched : int;
  mutable property_reads : int;
  mutable index_probes : int;
  mutable tuples_produced : int;
  mutable blocks_produced : int;
  mutable slot_misses : int;
  mutable charged_cost : float;
  calls : (string, int) Hashtbl.t;
  (* maintenance-side counters: work done keeping derived data and the
     plan cache consistent, as opposed to work done answering queries *)
  mutable postings_touched : int;
  mutable implication_updates : int;
  mutable stats_deltas : int;
  mutable plan_cache_hits : int;
  mutable plan_cache_misses : int;
}

let create () =
  {
    objects_fetched = 0;
    property_reads = 0;
    index_probes = 0;
    tuples_produced = 0;
    blocks_produced = 0;
    slot_misses = 0;
    charged_cost = 0.;
    calls = Hashtbl.create 16;
    postings_touched = 0;
    implication_updates = 0;
    stats_deltas = 0;
    plan_cache_hits = 0;
    plan_cache_misses = 0;
  }

(* resets only the query-cost side: per-run reports reset around every
   execution, and that must not wipe the cumulative maintenance metrics *)
let reset t =
  t.objects_fetched <- 0;
  t.property_reads <- 0;
  t.index_probes <- 0;
  t.tuples_produced <- 0;
  t.blocks_produced <- 0;
  t.slot_misses <- 0;
  t.charged_cost <- 0.;
  Hashtbl.reset t.calls

let reset_maintenance t =
  t.postings_touched <- 0;
  t.implication_updates <- 0;
  t.stats_deltas <- 0;
  t.plan_cache_hits <- 0;
  t.plan_cache_misses <- 0

let charge_object_fetch t = t.objects_fetched <- t.objects_fetched + 1
let charge_property_read t = t.property_reads <- t.property_reads + 1

let charge_method_call t ~meth ~cost =
  let n = Option.value ~default:0 (Hashtbl.find_opt t.calls meth) in
  Hashtbl.replace t.calls meth (n + 1);
  t.charged_cost <- t.charged_cost +. cost

let charge_index_probe t = t.index_probes <- t.index_probes + 1
let charge_index_probes t n = t.index_probes <- t.index_probes + n
let charge_tuple t = t.tuples_produced <- t.tuples_produced + 1
let charge_tuples t n = t.tuples_produced <- t.tuples_produced + n
let charge_block t = t.blocks_produced <- t.blocks_produced + 1
let charge_slot_miss t = t.slot_misses <- t.slot_misses + 1

let charge_postings_touched t n = t.postings_touched <- t.postings_touched + n

let charge_implication_update t =
  t.implication_updates <- t.implication_updates + 1

let charge_stats_delta t = t.stats_deltas <- t.stats_deltas + 1
let charge_plan_cache_hit t = t.plan_cache_hits <- t.plan_cache_hits + 1
let charge_plan_cache_miss t = t.plan_cache_misses <- t.plan_cache_misses + 1
let postings_touched t = t.postings_touched
let implication_updates t = t.implication_updates
let stats_deltas t = t.stats_deltas
let plan_cache_hits t = t.plan_cache_hits
let plan_cache_misses t = t.plan_cache_misses
let objects_fetched t = t.objects_fetched
let property_reads t = t.property_reads
let index_probes t = t.index_probes
let tuples_produced t = t.tuples_produced
let blocks_produced t = t.blocks_produced
let slot_misses t = t.slot_misses

let method_calls t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.calls []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let method_call_count t meth =
  Option.value ~default:0 (Hashtbl.find_opt t.calls meth)

let total_method_calls t = Hashtbl.fold (fun _ n acc -> acc + n) t.calls 0
let charged_cost t = t.charged_cost

(* Uniform weights for the structural operations: an object fetch is the
   unit, property reads and probes are cheaper, tuple production cheaper
   still.  Declared method costs are expressed in the same unit. *)
let total_cost t =
  t.charged_cost
  +. (1.0 *. float_of_int t.objects_fetched)
  +. (0.2 *. float_of_int t.property_reads)
  +. (0.5 *. float_of_int t.index_probes)
  +. (0.05 *. float_of_int t.tuples_produced)

let snapshot t =
  let copy = create () in
  copy.objects_fetched <- t.objects_fetched;
  copy.property_reads <- t.property_reads;
  copy.index_probes <- t.index_probes;
  copy.tuples_produced <- t.tuples_produced;
  copy.blocks_produced <- t.blocks_produced;
  copy.slot_misses <- t.slot_misses;
  copy.charged_cost <- t.charged_cost;
  Hashtbl.iter (Hashtbl.replace copy.calls) t.calls;
  copy.postings_touched <- t.postings_touched;
  copy.implication_updates <- t.implication_updates;
  copy.stats_deltas <- t.stats_deltas;
  copy.plan_cache_hits <- t.plan_cache_hits;
  copy.plan_cache_misses <- t.plan_cache_misses;
  copy

let pp ppf t =
  Format.fprintf ppf
    "@[<v>objects fetched: %d@ property reads: %d@ index probes: %d@ tuples: \
     %d@ blocks: %d@ method calls: %a@ charged cost: %.1f@ total cost: %.1f@]"
    t.objects_fetched t.property_reads t.index_probes t.tuples_produced
    t.blocks_produced
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf (m, n) -> Format.fprintf ppf "%s=%d" m n))
    (method_calls t) t.charged_cost (total_cost t)

let pp_maintenance ppf t =
  Format.fprintf ppf
    "@[<v>index postings touched: %d@ implication-set updates: %d@ \
     statistics deltas: %d@ plan cache: %d hit(s), %d miss(es)@]"
    t.postings_touched t.implication_updates t.stats_deltas t.plan_cache_hits
    t.plan_cache_misses
