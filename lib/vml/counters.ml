(* Domain-safe counters: the scalar tallies are [Atomic.t]s so parallel
   kernels on several domains never lose increments; the method-call
   tally (a hashtable) and the float cost accumulator are guarded by one
   mutex — they are charged per method invocation, orders of magnitude
   rarer than per-tuple charges, so the lock is off every hot path. *)

type t = {
  objects_fetched : int Atomic.t;
  property_reads : int Atomic.t;
  index_probes : int Atomic.t;
  tuples_produced : int Atomic.t;
  blocks_produced : int Atomic.t;
  slot_misses : int Atomic.t;
  m : Mutex.t;  (* guards [charged_cost] and [calls] *)
  mutable charged_cost : float;
  calls : (string, int) Hashtbl.t;
  (* maintenance-side counters: work done keeping derived data and the
     plan cache consistent, as opposed to work done answering queries *)
  postings_touched : int Atomic.t;
  implication_updates : int Atomic.t;
  stats_deltas : int Atomic.t;
  plan_cache_hits : int Atomic.t;
  plan_cache_misses : int Atomic.t;
  (* storage-side counters: page traffic through the disk subsystem's
     buffer pool and write-ahead log.  Like the maintenance counters they
     accumulate across a workload and are excluded from [reset]. *)
  pages_read : int Atomic.t;
  pages_written : int Atomic.t;
  pool_hits : int Atomic.t;
  pool_evictions : int Atomic.t;
  wal_records : int Atomic.t;
  wal_commits : int Atomic.t;
  wal_fsyncs : int Atomic.t;
  bytes_read : int Atomic.t;
  values_decoded : int Atomic.t;
  (* transaction-side counters: sessions driving the MVCC layer.  Like
     the storage counters they accumulate across a workload; the group
     commit gate reads [wal_fsyncs]/[wal_commits] off this family. *)
  txn_begins : int Atomic.t;
  txn_commits : int Atomic.t;
  txn_conflicts : int Atomic.t;
  txn_aborts : int Atomic.t;
  (* knowledge-side counters: the saturation pass over the declared
     specifications and the bounded soundness checker.  Accumulate across
     a workload like the other non-query families. *)
  rules_derived : int Atomic.t;
  rules_subsumed : int Atomic.t;
  models_checked : int Atomic.t;
  counterexamples_found : int Atomic.t;
}

let create () =
  {
    objects_fetched = Atomic.make 0;
    property_reads = Atomic.make 0;
    index_probes = Atomic.make 0;
    tuples_produced = Atomic.make 0;
    blocks_produced = Atomic.make 0;
    slot_misses = Atomic.make 0;
    m = Mutex.create ();
    charged_cost = 0.;
    calls = Hashtbl.create 16;
    postings_touched = Atomic.make 0;
    implication_updates = Atomic.make 0;
    stats_deltas = Atomic.make 0;
    plan_cache_hits = Atomic.make 0;
    plan_cache_misses = Atomic.make 0;
    pages_read = Atomic.make 0;
    pages_written = Atomic.make 0;
    pool_hits = Atomic.make 0;
    pool_evictions = Atomic.make 0;
    wal_records = Atomic.make 0;
    wal_commits = Atomic.make 0;
    wal_fsyncs = Atomic.make 0;
    bytes_read = Atomic.make 0;
    values_decoded = Atomic.make 0;
    txn_begins = Atomic.make 0;
    txn_commits = Atomic.make 0;
    txn_conflicts = Atomic.make 0;
    txn_aborts = Atomic.make 0;
    rules_derived = Atomic.make 0;
    rules_subsumed = Atomic.make 0;
    models_checked = Atomic.make 0;
    counterexamples_found = Atomic.make 0;
  }

(* resets only the query-cost side: per-run reports reset around every
   execution, and that must not wipe the cumulative maintenance metrics *)
let reset t =
  Atomic.set t.objects_fetched 0;
  Atomic.set t.property_reads 0;
  Atomic.set t.index_probes 0;
  Atomic.set t.tuples_produced 0;
  Atomic.set t.blocks_produced 0;
  Atomic.set t.slot_misses 0;
  Mutex.lock t.m;
  t.charged_cost <- 0.;
  Hashtbl.reset t.calls;
  Mutex.unlock t.m

let reset_maintenance t =
  Atomic.set t.postings_touched 0;
  Atomic.set t.implication_updates 0;
  Atomic.set t.stats_deltas 0;
  Atomic.set t.plan_cache_hits 0;
  Atomic.set t.plan_cache_misses 0

let reset_storage t =
  Atomic.set t.pages_read 0;
  Atomic.set t.pages_written 0;
  Atomic.set t.pool_hits 0;
  Atomic.set t.pool_evictions 0;
  Atomic.set t.wal_records 0;
  Atomic.set t.wal_commits 0;
  Atomic.set t.wal_fsyncs 0;
  Atomic.set t.bytes_read 0;
  Atomic.set t.values_decoded 0

let reset_txn t =
  Atomic.set t.txn_begins 0;
  Atomic.set t.txn_commits 0;
  Atomic.set t.txn_conflicts 0;
  Atomic.set t.txn_aborts 0

let reset_knowledge t =
  Atomic.set t.rules_derived 0;
  Atomic.set t.rules_subsumed 0;
  Atomic.set t.models_checked 0;
  Atomic.set t.counterexamples_found 0

let charge_object_fetch t = Atomic.incr t.objects_fetched

let charge_object_fetches t n =
  ignore (Atomic.fetch_and_add t.objects_fetched n)

let charge_property_read t = Atomic.incr t.property_reads

let charge_method_call t ~meth ~cost =
  Mutex.lock t.m;
  let n = Option.value ~default:0 (Hashtbl.find_opt t.calls meth) in
  Hashtbl.replace t.calls meth (n + 1);
  t.charged_cost <- t.charged_cost +. cost;
  Mutex.unlock t.m

let charge_index_probe t = Atomic.incr t.index_probes
let charge_index_probes t n = ignore (Atomic.fetch_and_add t.index_probes n)
let charge_tuple t = Atomic.incr t.tuples_produced
let charge_tuples t n = ignore (Atomic.fetch_and_add t.tuples_produced n)
let charge_block t = Atomic.incr t.blocks_produced
let charge_blocks t n = ignore (Atomic.fetch_and_add t.blocks_produced n)
let charge_slot_miss t = Atomic.incr t.slot_misses

let charge_postings_touched t n =
  ignore (Atomic.fetch_and_add t.postings_touched n)

let charge_implication_update t = Atomic.incr t.implication_updates
let charge_stats_delta t = Atomic.incr t.stats_deltas
let charge_plan_cache_hit t = Atomic.incr t.plan_cache_hits
let charge_plan_cache_miss t = Atomic.incr t.plan_cache_misses
let postings_touched t = Atomic.get t.postings_touched
let implication_updates t = Atomic.get t.implication_updates
let stats_deltas t = Atomic.get t.stats_deltas
let plan_cache_hits t = Atomic.get t.plan_cache_hits
let plan_cache_misses t = Atomic.get t.plan_cache_misses
let charge_page_read t = Atomic.incr t.pages_read
let charge_page_write t = Atomic.incr t.pages_written
let charge_pool_hit t = Atomic.incr t.pool_hits
let charge_pool_eviction t = Atomic.incr t.pool_evictions
let charge_wal_records t n = ignore (Atomic.fetch_and_add t.wal_records n)
let charge_wal_commit t = Atomic.incr t.wal_commits
let charge_wal_fsync t = Atomic.incr t.wal_fsyncs
let charge_bytes_read t n = ignore (Atomic.fetch_and_add t.bytes_read n)

let charge_values_decoded t n =
  ignore (Atomic.fetch_and_add t.values_decoded n)
let charge_txn_begin t = Atomic.incr t.txn_begins
let charge_txn_commit t = Atomic.incr t.txn_commits
let charge_txn_conflict t = Atomic.incr t.txn_conflicts
let charge_txn_abort t = Atomic.incr t.txn_aborts
let charge_rules_derived t n = ignore (Atomic.fetch_and_add t.rules_derived n)
let charge_rules_subsumed t n = ignore (Atomic.fetch_and_add t.rules_subsumed n)
let charge_models_checked t n = ignore (Atomic.fetch_and_add t.models_checked n)
let charge_counterexample t = Atomic.incr t.counterexamples_found
let pages_read t = Atomic.get t.pages_read
let pages_written t = Atomic.get t.pages_written
let pool_hits t = Atomic.get t.pool_hits
let pool_evictions t = Atomic.get t.pool_evictions
let wal_records t = Atomic.get t.wal_records
let wal_commits t = Atomic.get t.wal_commits
let wal_fsyncs t = Atomic.get t.wal_fsyncs
let bytes_read t = Atomic.get t.bytes_read
let values_decoded t = Atomic.get t.values_decoded
let txn_begins t = Atomic.get t.txn_begins
let txn_commits t = Atomic.get t.txn_commits
let txn_conflicts t = Atomic.get t.txn_conflicts
let txn_aborts t = Atomic.get t.txn_aborts
let rules_derived t = Atomic.get t.rules_derived
let rules_subsumed t = Atomic.get t.rules_subsumed
let models_checked t = Atomic.get t.models_checked
let counterexamples_found t = Atomic.get t.counterexamples_found
let objects_fetched t = Atomic.get t.objects_fetched
let property_reads t = Atomic.get t.property_reads
let index_probes t = Atomic.get t.index_probes
let tuples_produced t = Atomic.get t.tuples_produced
let blocks_produced t = Atomic.get t.blocks_produced
let slot_misses t = Atomic.get t.slot_misses

let method_calls t =
  Mutex.lock t.m;
  let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.calls [] in
  Mutex.unlock t.m;
  List.sort (fun (a, _) (b, _) -> String.compare a b) entries

let method_call_count t meth =
  Mutex.lock t.m;
  let n = Option.value ~default:0 (Hashtbl.find_opt t.calls meth) in
  Mutex.unlock t.m;
  n

let total_method_calls t =
  Mutex.lock t.m;
  let n = Hashtbl.fold (fun _ n acc -> acc + n) t.calls 0 in
  Mutex.unlock t.m;
  n

let charged_cost t =
  Mutex.lock t.m;
  let c = t.charged_cost in
  Mutex.unlock t.m;
  c

(* Uniform weights for the structural operations: an object fetch is the
   unit, property reads and probes are cheaper, tuple production cheaper
   still.  Declared method costs are expressed in the same unit. *)
let total_cost t =
  charged_cost t
  +. (1.0 *. float_of_int (objects_fetched t))
  +. (0.2 *. float_of_int (property_reads t))
  +. (0.5 *. float_of_int (index_probes t))
  +. (0.05 *. float_of_int (tuples_produced t))

let snapshot t =
  let copy = create () in
  Atomic.set copy.objects_fetched (Atomic.get t.objects_fetched);
  Atomic.set copy.property_reads (Atomic.get t.property_reads);
  Atomic.set copy.index_probes (Atomic.get t.index_probes);
  Atomic.set copy.tuples_produced (Atomic.get t.tuples_produced);
  Atomic.set copy.blocks_produced (Atomic.get t.blocks_produced);
  Atomic.set copy.slot_misses (Atomic.get t.slot_misses);
  Mutex.lock t.m;
  copy.charged_cost <- t.charged_cost;
  Hashtbl.iter (Hashtbl.replace copy.calls) t.calls;
  Mutex.unlock t.m;
  Atomic.set copy.postings_touched (Atomic.get t.postings_touched);
  Atomic.set copy.implication_updates (Atomic.get t.implication_updates);
  Atomic.set copy.stats_deltas (Atomic.get t.stats_deltas);
  Atomic.set copy.plan_cache_hits (Atomic.get t.plan_cache_hits);
  Atomic.set copy.plan_cache_misses (Atomic.get t.plan_cache_misses);
  Atomic.set copy.pages_read (Atomic.get t.pages_read);
  Atomic.set copy.pages_written (Atomic.get t.pages_written);
  Atomic.set copy.pool_hits (Atomic.get t.pool_hits);
  Atomic.set copy.pool_evictions (Atomic.get t.pool_evictions);
  Atomic.set copy.wal_records (Atomic.get t.wal_records);
  Atomic.set copy.wal_commits (Atomic.get t.wal_commits);
  Atomic.set copy.wal_fsyncs (Atomic.get t.wal_fsyncs);
  Atomic.set copy.bytes_read (Atomic.get t.bytes_read);
  Atomic.set copy.values_decoded (Atomic.get t.values_decoded);
  Atomic.set copy.txn_begins (Atomic.get t.txn_begins);
  Atomic.set copy.txn_commits (Atomic.get t.txn_commits);
  Atomic.set copy.txn_conflicts (Atomic.get t.txn_conflicts);
  Atomic.set copy.txn_aborts (Atomic.get t.txn_aborts);
  Atomic.set copy.rules_derived (Atomic.get t.rules_derived);
  Atomic.set copy.rules_subsumed (Atomic.get t.rules_subsumed);
  Atomic.set copy.models_checked (Atomic.get t.models_checked);
  Atomic.set copy.counterexamples_found (Atomic.get t.counterexamples_found);
  copy

let pp ppf t =
  Format.fprintf ppf
    "@[<v>objects fetched: %d@ property reads: %d@ index probes: %d@ tuples: \
     %d@ blocks: %d@ method calls: %a@ charged cost: %.1f@ total cost: %.1f@]"
    (objects_fetched t) (property_reads t) (index_probes t)
    (tuples_produced t) (blocks_produced t)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf (m, n) -> Format.fprintf ppf "%s=%d" m n))
    (method_calls t) (charged_cost t) (total_cost t)

let pp_storage ppf t =
  Format.fprintf ppf
    "@[<v>pages read: %d@ pages written: %d@ pool hits: %d@ pool evictions: \
     %d@ wal records: %d@ wal commits: %d@ wal fsyncs: %d@ bytes read: %d@ \
     values decoded: %d@]"
    (pages_read t) (pages_written t) (pool_hits t) (pool_evictions t)
    (wal_records t) (wal_commits t) (wal_fsyncs t) (bytes_read t)
    (values_decoded t)

let pp_txn ppf t =
  Format.fprintf ppf
    "@[<v>transactions begun: %d@ committed: %d@ conflict aborts: %d@ \
     explicit aborts: %d@]"
    (txn_begins t) (txn_commits t) (txn_conflicts t) (txn_aborts t)

let pp_knowledge ppf t =
  Format.fprintf ppf
    "@[<v>rules derived: %d@ rules subsumed: %d@ models checked: %d@ \
     counterexamples found: %d@]"
    (rules_derived t) (rules_subsumed t) (models_checked t)
    (counterexamples_found t)

let pp_maintenance ppf t =
  Format.fprintf ppf
    "@[<v>index postings touched: %d@ implication-set updates: %d@ \
     statistics deltas: %d@ plan cache: %d hit(s), %d miss(es)@]"
    (postings_touched t) (implication_updates t) (stats_deltas t)
    (plan_cache_hits t) (plan_cache_misses t)
