type t = {
  mutable objects_fetched : int;
  mutable property_reads : int;
  mutable index_probes : int;
  mutable tuples_produced : int;
  mutable charged_cost : float;
  calls : (string, int) Hashtbl.t;
}

let create () =
  {
    objects_fetched = 0;
    property_reads = 0;
    index_probes = 0;
    tuples_produced = 0;
    charged_cost = 0.;
    calls = Hashtbl.create 16;
  }

let reset t =
  t.objects_fetched <- 0;
  t.property_reads <- 0;
  t.index_probes <- 0;
  t.tuples_produced <- 0;
  t.charged_cost <- 0.;
  Hashtbl.reset t.calls

let charge_object_fetch t = t.objects_fetched <- t.objects_fetched + 1
let charge_property_read t = t.property_reads <- t.property_reads + 1

let charge_method_call t ~meth ~cost =
  let n = Option.value ~default:0 (Hashtbl.find_opt t.calls meth) in
  Hashtbl.replace t.calls meth (n + 1);
  t.charged_cost <- t.charged_cost +. cost

let charge_index_probe t = t.index_probes <- t.index_probes + 1
let charge_index_probes t n = t.index_probes <- t.index_probes + n
let charge_tuple t = t.tuples_produced <- t.tuples_produced + 1
let charge_tuples t n = t.tuples_produced <- t.tuples_produced + n
let objects_fetched t = t.objects_fetched
let property_reads t = t.property_reads
let index_probes t = t.index_probes
let tuples_produced t = t.tuples_produced

let method_calls t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.calls []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let method_call_count t meth =
  Option.value ~default:0 (Hashtbl.find_opt t.calls meth)

let total_method_calls t = Hashtbl.fold (fun _ n acc -> acc + n) t.calls 0
let charged_cost t = t.charged_cost

(* Uniform weights for the structural operations: an object fetch is the
   unit, property reads and probes are cheaper, tuple production cheaper
   still.  Declared method costs are expressed in the same unit. *)
let total_cost t =
  t.charged_cost
  +. (1.0 *. float_of_int t.objects_fetched)
  +. (0.2 *. float_of_int t.property_reads)
  +. (0.5 *. float_of_int t.index_probes)
  +. (0.05 *. float_of_int t.tuples_produced)

let snapshot t =
  let copy = create () in
  copy.objects_fetched <- t.objects_fetched;
  copy.property_reads <- t.property_reads;
  copy.index_probes <- t.index_probes;
  copy.tuples_produced <- t.tuples_produced;
  copy.charged_cost <- t.charged_cost;
  Hashtbl.iter (Hashtbl.replace copy.calls) t.calls;
  copy

let pp ppf t =
  Format.fprintf ppf
    "@[<v>objects fetched: %d@ property reads: %d@ index probes: %d@ tuples: \
     %d@ method calls: %a@ charged cost: %.1f@ total cost: %.1f@]"
    t.objects_fetched t.property_reads t.index_probes t.tuples_produced
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf (m, n) -> Format.fprintf ppf "%s=%d" m n))
    (method_calls t) t.charged_cost (total_cost t)
