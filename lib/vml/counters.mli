(** Execution cost accounting.

    The paper notes (Section 2.3) that, unlike attributes, methods are not
    obtained at uniform access cost; external methods in particular may
    dominate query evaluation.  Every store carries a set of counters that
    the runtime, the indexes and the physical operators charge, so that
    benchmarks can report deterministic logical costs alongside wall-clock
    time. *)

type t

val create : unit -> t
val reset : t -> unit

val charge_object_fetch : t -> unit
(** One object dereferenced in the store. *)

val charge_property_read : t -> unit

val charge_method_call : t -> meth:string -> cost:float -> unit
(** One invocation of [meth], with its schema-declared cost weight. *)

val charge_index_probe : t -> unit
val charge_tuple : t -> unit
(** One tuple produced by a physical operator. *)

val charge_index_probes : t -> int -> unit
val charge_tuples : t -> int -> unit
(** Bulk variants, used by the set-at-a-time logical evaluator to charge
    a whole operator's probes / produced tuples at once. *)

val objects_fetched : t -> int
val property_reads : t -> int
val index_probes : t -> int
val tuples_produced : t -> int

val method_calls : t -> (string * int) list
(** Invocation count per method name, sorted by name. *)

val method_call_count : t -> string -> int
val total_method_calls : t -> int

val charged_cost : t -> float
(** Sum of declared per-call costs over all method invocations — the
    deterministic "work" metric used by the experiment harness. *)

val total_cost : t -> float
(** [charged_cost] plus small uniform weights for fetches, property reads,
    probes and tuples; a single scalar summary of execution effort. *)

val snapshot : t -> t
(** Independent copy (for before/after deltas). *)

val pp : Format.formatter -> t -> unit
