(** Execution cost accounting.

    The paper notes (Section 2.3) that, unlike attributes, methods are not
    obtained at uniform access cost; external methods in particular may
    dominate query evaluation.  Every store carries a set of counters that
    the runtime, the indexes and the physical operators charge, so that
    benchmarks can report deterministic logical costs alongside wall-clock
    time. *)

type t

val create : unit -> t
(** Counters are domain-safe: the scalar tallies are atomics and the
    method-call tally is mutex-guarded, so physical operators running on
    several domains (the morsel-driven executor) never lose
    increments. *)

val reset : t -> unit
(** Zero the query-cost counters.  Maintenance counters are {e not}
    touched: per-run reports reset around every execution, while
    maintenance metrics accumulate across a whole workload — zero them
    explicitly with {!reset_maintenance}. *)

val reset_maintenance : t -> unit
(** Zero the maintenance counters only. *)

val reset_storage : t -> unit
(** Zero the storage counters only (page traffic, pool and WAL tallies —
    see {!charge_page_read} and friends).  Like the maintenance side,
    storage counters accumulate across a workload and are excluded from
    {!reset}. *)

val reset_txn : t -> unit
(** Zero the transaction counters only (begins, commits, conflict and
    explicit aborts — see {!charge_txn_begin} and friends). *)

val reset_knowledge : t -> unit
(** Zero the knowledge counters only (saturation and bounded-checker
    tallies — see {!charge_rules_derived} and friends). *)

val charge_object_fetch : t -> unit
(** One object dereferenced in the store. *)

val charge_property_read : t -> unit

val charge_method_call : t -> meth:string -> cost:float -> unit
(** One invocation of [meth], with its schema-declared cost weight. *)

val charge_index_probe : t -> unit
val charge_tuple : t -> unit
(** One tuple produced by a physical operator. *)

val charge_index_probes : t -> int -> unit
val charge_tuples : t -> int -> unit
val charge_object_fetches : t -> int -> unit
(** Bulk variants, used by the set-at-a-time logical evaluator and the
    batch executor to charge a whole operator's / block's probes, fetches
    and produced tuples at once. *)

val charge_block : t -> unit
(** One block of rows emitted by a batch operator (the compiled
    executor's unit of dispatch; rows within are charged via
    {!charge_tuples}). *)

val charge_blocks : t -> int -> unit
(** Bulk variant: [n] blocks' worth of rows at once (the parallel
    executor charges a materialized operator output in one go). *)

val charge_slot_miss : t -> unit
(** One failed compile-time name-to-slot resolution: plan compilation
    found a reference or parameter the operator's input layout cannot
    supply and gave up on the plan.  Always zero for plans produced from
    well-typed queries. *)

(** {1 Maintenance counters}

    Work done keeping derived data consistent under DML — charged by the
    incremental maintainers ([Soqm_maintenance]) and the engine's plan
    cache, so mixed read/write experiments can report maintenance effort
    next to query effort.  Not part of {!total_cost}: they account a
    different activity. *)

val charge_postings_touched : t -> int -> unit
(** [n] index entries added/removed while maintaining an access path
    (inverted-index postings, hash/sorted index entries). *)

val charge_implication_update : t -> unit
(** One membership change of a maintained implication set (e.g. a
    paragraph entering or leaving [Document.largeParagraphs]). *)

val charge_stats_delta : t -> unit
(** One incremental statistics adjustment (cardinality, fanout total or
    staleness tick). *)

val charge_plan_cache_hit : t -> unit
val charge_plan_cache_miss : t -> unit
val postings_touched : t -> int
val implication_updates : t -> int
val stats_deltas : t -> int
val plan_cache_hits : t -> int
val plan_cache_misses : t -> int

(** {1 Storage counters}

    Page traffic through the disk subsystem ([Soqm_disk]): buffer-pool
    service rates and write-ahead-log activity.  Charged by the buffer
    pool and WAL, not by query operators, and excluded from {!reset} so a
    workload's cumulative I/O picture survives per-query resets. *)

val charge_page_read : t -> unit
(** One 4 KiB page fetched from a heap segment into the buffer pool
    (a pool miss that reached the file). *)

val charge_page_write : t -> unit
(** One dirty page written back to its heap segment (eviction or
    checkpoint flush). *)

val charge_pool_hit : t -> unit
(** One page request served from a resident buffer-pool frame. *)

val charge_pool_eviction : t -> unit
(** One resident frame reassigned by the clock hand to make room. *)

val charge_wal_records : t -> int -> unit
(** [n] framed records appended to the write-ahead log. *)

val charge_wal_commit : t -> unit
(** One committed WAL batch (group commit may cover several batches with
    a single fsync — see {!charge_wal_fsync}). *)

val charge_wal_fsync : t -> unit
(** One [fsync] of the write-ahead log.  The group-commit coalescing
    ratio is [wal_fsyncs / wal_commits]; under concurrent committers it
    drops below 1. *)

val charge_bytes_read : t -> int -> unit
(** [n] payload bytes decoded from storage by a scan — row records pulled
    out of slotted pages, or column-chunk bytes actually read by a
    columnar scan.  Unlike {!charge_page_read} this counts what the codec
    touched, not what the pool staged, so it exposes the columnar win of
    skipping untouched columns. *)

val charge_values_decoded : t -> int -> unit
(** [n] individual [Value.t]s (or record fields) materialized from their
    storage encoding by a scan. *)

val pages_read : t -> int
val pages_written : t -> int
val pool_hits : t -> int
val pool_evictions : t -> int
val wal_records : t -> int
val wal_commits : t -> int
val wal_fsyncs : t -> int
val bytes_read : t -> int
val values_decoded : t -> int

(** {1 Transaction counters}

    Sessions driving the MVCC layer ([Soqm_txn]): transaction lifecycle
    tallies, charged by the transaction manager.  Accumulate across a
    workload like the maintenance and storage families; zero them with
    {!reset_txn}. *)

val charge_txn_begin : t -> unit
val charge_txn_commit : t -> unit

val charge_txn_conflict : t -> unit
(** One commit refused by first-committer-wins validation. *)

val charge_txn_abort : t -> unit
(** One explicit [abort] (conflict aborts are counted separately). *)

val txn_begins : t -> int
val txn_commits : t -> int
val txn_conflicts : t -> int
val txn_aborts : t -> int

(** {1 Knowledge counters}

    The knowledge compiler ([Soqm_knowledge]): rules the saturation pass
    derived from the declared specifications, alpha-variants it dropped
    as subsumed, and the bounded soundness checker's model/counterexample
    tallies.  Accumulate across a workload; zero with
    {!reset_knowledge}. *)

val charge_rules_derived : t -> int -> unit
(** [n] new specifications produced by a saturation round (transitive
    implications, composed equivalences, substituted bodies). *)

val charge_rules_subsumed : t -> int -> unit
(** [n] candidate derivations discarded as alpha-variants of an already
    known specification (or as trivial identities). *)

val charge_models_checked : t -> int -> unit
(** [n] candidate object stores the bounded checker evaluated a rule
    on. *)

val charge_counterexample : t -> unit
(** One rule refuted: a candidate store where the rule's two sides
    disagree under naive evaluation. *)

val rules_derived : t -> int
val rules_subsumed : t -> int
val models_checked : t -> int
val counterexamples_found : t -> int

val objects_fetched : t -> int
val property_reads : t -> int
val index_probes : t -> int
val tuples_produced : t -> int
val blocks_produced : t -> int
val slot_misses : t -> int

val method_calls : t -> (string * int) list
(** Invocation count per method name, sorted by name. *)

val method_call_count : t -> string -> int
val total_method_calls : t -> int

val charged_cost : t -> float
(** Sum of declared per-call costs over all method invocations — the
    deterministic "work" metric used by the experiment harness. *)

val total_cost : t -> float
(** [charged_cost] plus small uniform weights for fetches, property reads,
    probes and tuples; a single scalar summary of execution effort. *)

val snapshot : t -> t
(** Independent copy (for before/after deltas). *)

val pp : Format.formatter -> t -> unit

val pp_maintenance : Format.formatter -> t -> unit
(** Print only the maintenance counters (the [soqm stats] report). *)

val pp_storage : Format.formatter -> t -> unit
(** Print only the storage counters (pool and WAL activity). *)

val pp_txn : Format.formatter -> t -> unit
(** Print only the transaction counters. *)

val pp_knowledge : Format.formatter -> t -> unit
(** Print only the knowledge counters (saturation and bounded-checker
    activity). *)
