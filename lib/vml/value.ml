type t =
  | Null
  | Bool of bool
  | Int of int
  | Real of float
  | Str of string
  | Obj of Oid.t
  | Cls of string
  | Tuple of (string * t) list
  | Set of t list
  | Arr of t array
  | Dict of (t * t) list

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Real _ -> 3
  | Str _ -> 4
  | Obj _ -> 5
  | Cls _ -> 6
  | Tuple _ -> 7
  | Set _ -> 8
  | Arr _ -> 9
  | Dict _ -> 10

let rec compare a b =
  match a, b with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Real x, Real y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | Obj x, Obj y -> Oid.compare x y
  | Cls x, Cls y -> String.compare x y
  | Tuple x, Tuple y ->
    compare_lists (fun (la, va) (lb, vb) ->
        let c = String.compare la lb in
        if c <> 0 then c else compare va vb)
      x y
  | Set x, Set y -> compare_lists compare x y
  | Arr x, Arr y ->
    let c = Int.compare (Array.length x) (Array.length y) in
    if c <> 0 then c
    else compare_lists compare (Array.to_list x) (Array.to_list y)
  | Dict x, Dict y ->
    compare_lists (fun (ka, va) (kb, vb) ->
        let c = compare ka kb in
        if c <> 0 then c else compare va vb)
      x y
  | _ -> Int.compare (rank a) (rank b)

and compare_lists : 'a. ('a -> 'a -> int) -> 'a list -> 'a list -> int =
  fun cmp xs ys ->
  match xs, ys with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs', y :: ys' ->
    let c = cmp x y in
    if c <> 0 then c else compare_lists cmp xs' ys'

let equal a b = compare a b = 0

let set elems =
  let sorted = List.sort_uniq compare elems in
  Set sorted

let tuple fields =
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) fields in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
      if String.equal a b then invalid_arg ("Value.tuple: duplicate label " ^ a)
      else check rest
    | _ -> ()
  in
  check sorted;
  Tuple sorted

let dict pairs =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) pairs in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
      if equal a b then invalid_arg "Value.dict: duplicate key" else check rest
    | _ -> ()
  in
  check sorted;
  Dict sorted

let set_elements = function
  | Set xs -> xs
  | v ->
    invalid_arg
      (Format.asprintf "Value.set_elements: not a set: constructor rank %d"
         (rank v))

let tuple_get v label =
  match v with
  | Tuple fields -> List.assoc label fields
  | _ -> invalid_arg "Value.tuple_get: not a tuple"

let is_in x = function
  | Set xs -> List.exists (equal x) xs
  | _ -> false

(* Hash set over canonical values, keyed by [equal] and the generic hash
   (consistent on canonically-constructed values), so membership via
   hashing agrees with [is_in].  Small sets stay on the list path —
   building a table would cost more than the scan it saves. *)
module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash (v : t) = Hashtbl.hash_param 64 256 v
end)

let mem_tbl ys =
  let tbl = Tbl.create (List.length ys) in
  List.iter (fun y -> Tbl.replace tbl y ()) ys;
  fun x -> Tbl.mem tbl x

let small = 8

let is_subset s1 s2 =
  match s1, s2 with
  | Set xs, Set ys ->
    if List.length ys <= small then List.for_all (fun x -> is_in x s2) xs
    else
      let mem = mem_tbl ys in
      List.for_all mem xs
  | _ -> false

let set_union a b = set (set_elements a @ set_elements b)

let set_inter a b =
  let xs = set_elements a and ys = set_elements b in
  if List.length ys <= small then Set (List.filter (fun x -> is_in x b) xs)
  else
    let mem = mem_tbl ys in
    Set (List.filter mem xs)

let set_diff a b =
  let xs = set_elements a and ys = set_elements b in
  if List.length ys <= small then
    Set (List.filter (fun x -> not (is_in x b)) xs)
  else
    let mem = mem_tbl ys in
    Set (List.filter (fun x -> not (mem x)) xs)

let truthy = function Bool true -> true | _ -> false

let rec pp ppf = function
  | Null -> Format.pp_print_string ppf "NULL"
  | Bool b -> Format.pp_print_string ppf (if b then "TRUE" else "FALSE")
  | Int i -> Format.pp_print_int ppf i
  | Real r -> Format.fprintf ppf "%g" r
  | Str s -> Format.fprintf ppf "%S" s
  | Obj o -> Oid.pp ppf o
  | Cls c -> Format.fprintf ppf "%s(class)" c
  | Tuple fields ->
    let pp_field ppf (l, v) = Format.fprintf ppf "%s: %a" l pp v in
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_field)
      fields
  | Set xs ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp)
      xs
  | Arr xs ->
    Format.fprintf ppf "ARRAY(%a)"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp)
      (Array.to_list xs)
  | Dict pairs ->
    let pp_pair ppf (k, v) = Format.fprintf ppf "%a -> %a" pp k pp v in
    Format.fprintf ppf "DICT(%a)"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_pair)
      pairs

let to_string v = Format.asprintf "%a" pp v

(* Canonical construction makes structural equality coincide with physical
   structure, so the generic hash is consistent with [equal]. *)
let hash v = Hashtbl.hash v
