type origin = User | Derived

type change =
  | Created of Oid.t
  | Prop_set of {
      oid : Oid.t;
      prop : string;
      old_value : Value.t;
      new_value : Value.t;
      origin : origin;
    }
  | Deleted of { oid : Oid.t; props : (string * Value.t) list }

type t = {
  schema : Schema.t;
  counters : Counters.t;
  next_id : int Atomic.t;
      (* atomic: reservation (any transaction, no latch) races commit
         replay's floor-raising in [insert_reserved] *)
  objects : (Oid.t, (string, Value.t) Hashtbl.t) Hashtbl.t;
  extents : (string, Oid.t list ref) Hashtbl.t;
  inst_impls : (string * string, impl) Hashtbl.t;
  own_impls : (string * string, impl) Hashtbl.t;
  mutable observers : (change -> unit) list;  (* in subscription order *)
}

and impl = Body of Expr.t | Native of (t -> Value.t -> Value.t list -> Value.t)

let fail fmt = Format.kasprintf invalid_arg fmt

let notify t ev = List.iter (fun f -> f ev) t.observers
let subscribe t f = t.observers <- t.observers @ [ f ]

let schema t = t.schema
let counters t = t.counters

let extent_ref t cls =
  match Hashtbl.find_opt t.extents cls with
  | Some r -> r
  | None -> fail "Object_store: unknown class %S" cls

let extent t cls = List.rev !(extent_ref t cls)
let extent_size t cls = List.length !(extent_ref t cls)
let exists t oid = Hashtbl.mem t.objects oid

let record t oid =
  match Hashtbl.find_opt t.objects oid with
  | Some r -> r
  | None -> raise Not_found

let prop_def t oid prop =
  match Schema.property t.schema ~cls:(Oid.cls oid) ~prop with
  | Some p -> p
  | None -> fail "Object_store: class %s has no property %S" (Oid.cls oid) prop

(* Raw reads/writes that bypass accounting and change notification; used
   internally by the inverse-link bookkeeping itself. *)
let raw_get t oid prop =
  match Hashtbl.find_opt (record t oid) prop with
  | Some v -> v
  | None -> Value.Null

let raw_set t oid prop v = Hashtbl.replace (record t oid) prop v

(* A backlink write is a real state change, so it is published to the
   observers as a [Derived] property set — but it must not re-enter the
   inverse bookkeeping itself (the inverse observer skips [Derived]
   events), or setting [s.document] would clobber itself through the
   [d.sections] round trip. *)
let derived_set t oid prop v =
  let old_value = raw_get t oid prop in
  raw_set t oid prop v;
  notify t (Prop_set { oid; prop; old_value; new_value = v; origin = Derived })

(* Inverse maintenance.  When [cls.prop] has inverse [(cls', prop')]:
   - if prop is object-valued, the linked object's prop' gains/loses us;
   - the inverse side may be object-valued or set-valued.  *)
let add_backlink t ~target ~inv_prop ~me =
  if exists t target then
    match raw_get t target inv_prop with
    | Value.Set xs -> derived_set t target inv_prop (Value.set (Value.Obj me :: xs))
    | Value.Null -> (
      match
        Schema.property_type t.schema ~cls:(Oid.cls target) ~prop:inv_prop
      with
      | Some (Vtype.TSet _) ->
        derived_set t target inv_prop (Value.set [ Value.Obj me ])
      | _ -> derived_set t target inv_prop (Value.Obj me))
    | _ -> derived_set t target inv_prop (Value.Obj me)

let remove_backlink t ~target ~inv_prop ~me =
  if exists t target then
    match raw_get t target inv_prop with
    | Value.Set xs ->
      derived_set t target inv_prop
        (Value.Set (List.filter (fun v -> not (Value.equal v (Value.Obj me))) xs))
    | Value.Obj o when Oid.equal o me -> derived_set t target inv_prop Value.Null
    | _ -> ()

let targets_of = function
  | Value.Obj o -> [ o ]
  | Value.Set xs ->
    List.filter_map (function Value.Obj o -> Some o | _ -> None) xs
  | _ -> []

let maintain_inverse t oid prop ~old_value ~new_value =
  match Schema.inverse_of t.schema ~cls:(Oid.cls oid) ~prop with
  | None -> ()
  | Some (_cls', inv_prop) ->
    List.iter
      (fun target -> remove_backlink t ~target ~inv_prop ~me:oid)
      (targets_of old_value);
    List.iter
      (fun target -> add_backlink t ~target ~inv_prop ~me:oid)
      (targets_of new_value)

(* Inverse links are one maintainer of redundant data among several
   (Section 5.1); it is builtin and registered first so that any external
   maintainer observes a store whose inverses are already consistent. *)
let inverse_observer t = function
  | Prop_set { origin = Derived; _ } -> ()
  | Prop_set { oid; prop; old_value; new_value; origin = User } ->
    maintain_inverse t oid prop ~old_value ~new_value
  | Created _ -> ()
  | Deleted { oid; props } ->
    let cd = Schema.class_exn t.schema (Oid.cls oid) in
    List.iter
      (fun (p : Schema.property) ->
        if Option.is_some p.inverse then
          let old_value =
            Option.value ~default:Value.Null (List.assoc_opt p.prop_name props)
          in
          maintain_inverse t oid p.prop_name ~old_value ~new_value:Value.Null)
      cd.Schema.properties

let create ?counters schema =
  let extents = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace extents c (ref [])) (Schema.class_names schema);
  let t =
    {
      schema;
      counters = Option.value ~default:(Counters.create ()) counters;
      next_id = Atomic.make 0;
      objects = Hashtbl.create 1024;
      extents;
      inst_impls = Hashtbl.create 32;
      own_impls = Hashtbl.create 32;
      observers = [];
    }
  in
  t.observers <- [ inverse_observer t ];
  t

let set_prop_origin t origin oid prop v =
  let def = prop_def t oid prop in
  if not (Vtype.check def.Schema.prop_type v) then
    fail "Object_store: value %s ill-typed for %s.%s : %s" (Value.to_string v)
      (Oid.cls oid) prop
      (Vtype.to_string def.Schema.prop_type);
  let old_value = raw_get t oid prop in
  raw_set t oid prop v;
  notify t (Prop_set { oid; prop; old_value; new_value = v; origin })

let set_prop t oid prop v = set_prop_origin t User oid prop v
let set_prop_derived t oid prop v = set_prop_origin t Derived oid prop v

let get_prop t oid prop =
  let _def = prop_def t oid prop in
  Counters.charge_object_fetch t.counters;
  Counters.charge_property_read t.counters;
  raw_get t oid prop

let peek_prop t oid prop =
  let _def = prop_def t oid prop in
  raw_get t oid prop

let reserve_oid t ~cls =
  ignore (Schema.class_exn t.schema cls);
  Oid.make ~cls ~id:(Atomic.fetch_and_add t.next_id 1)

(* CAS-max: never regress the counter, whoever raced us. *)
let rec raise_next_id t floor =
  let cur = Atomic.get t.next_id in
  if cur < floor && not (Atomic.compare_and_set t.next_id cur floor) then
    raise_next_id t floor

let insert_reserved t oid props =
  let cls = Oid.cls oid in
  let cd = Schema.class_exn t.schema cls in
  if exists t oid then
    fail "Object_store: OID %s is already live" (Oid.to_string oid);
  let tbl = Hashtbl.create (List.length cd.Schema.properties) in
  Hashtbl.replace t.objects oid tbl;
  (* extents keep insertion order; reserved OIDs inserted out of
     reservation order (transactions committing in a different order than
     they began) land in commit order, which is fine — disk scans and
     dumps sort by serial anyway *)
  let ext = extent_ref t cls in
  ext := oid :: !ext;
  raise_next_id t (Oid.id oid + 1);
  (* set-valued properties start as the empty set, not NULL, so that
     inverse maintenance and set-lifted access work without special
     cases *)
  List.iter
    (fun (p : Schema.property) ->
      match p.Schema.prop_type with
      | Vtype.TSet _ when not (List.mem_assoc p.Schema.prop_name props) ->
        raw_set t oid p.Schema.prop_name (Value.Set [])
      | _ -> ())
    cd.Schema.properties;
  notify t (Created oid);
  List.iter (fun (p, v) -> set_prop t oid p v) props

let create_object t ~cls props =
  let oid = reserve_oid t ~cls in
  insert_reserved t oid props;
  oid

let delete_object t oid =
  let props =
    Hashtbl.fold (fun p v acc -> (p, v) :: acc) (record t oid) []
  in
  Hashtbl.remove t.objects oid;
  let ext = extent_ref t (Oid.cls oid) in
  ext := List.filter (fun o -> not (Oid.equal o oid)) !ext;
  (* the snapshot of the final property values travels with the event so
     that observers (inverse links, indexes, implication sets) can
     un-derive without dereferencing the now-dead OID *)
  notify t (Deleted { oid; props })

type dump = {
  d_schema : Schema.t;
  d_objects : (Oid.t * (string * Value.t) list) list;
  d_next_id : int;
}

let export t =
  {
    d_schema = t.schema;
    d_objects =
      List.concat_map
        (fun cls ->
          List.map
            (fun oid ->
              ( oid,
                Hashtbl.fold (fun p v acc -> (p, v) :: acc) (record t oid) [] ))
            (extent t cls))
        (Schema.class_names t.schema);
    d_next_id = Atomic.get t.next_id;
  }

let dump_schema d = d.d_schema

let import ?counters d =
  let t = create ?counters d.d_schema in
  List.iter
    (fun (oid, props) ->
      let tbl = Hashtbl.create (List.length props) in
      List.iter (fun (p, v) -> Hashtbl.replace tbl p v) props;
      Hashtbl.replace t.objects oid tbl;
      let ext = extent_ref t (Oid.cls oid) in
      (* the dump lists each extent in allocation order; prepending keeps
         the internal most-recent-first representation *)
      ext := oid :: !ext)
    d.d_objects;
  Atomic.set t.next_id d.d_next_id;
  t

let make_dump ~schema ~next_id objects =
  { d_schema = schema; d_objects = objects; d_next_id = next_id }

let dump_objects d = d.d_objects
let dump_next_id d = d.d_next_id

exception Dump_format_error of string

(* Magic + a little-endian format-version word precede the Marshal body:
   [Marshal.from_channel] on a foreign or truncated file is undefined
   behavior, so everything that could go wrong before or during the
   unmarshal is converted into [Dump_format_error]. *)
let magic = "SOQM-DUMP"
let dump_version = 2

let dump_error path msg = raise (Dump_format_error (path ^ ": " ^ msg))

let save_dump d path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      let v = Bytes.create 4 in
      Bytes.set_int32_le v 0 (Int32.of_int dump_version);
      output_bytes oc v;
      Marshal.to_channel oc d [])

let load_dump path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let tag =
        try really_input_string ic (String.length magic)
        with End_of_file -> dump_error path "truncated dump (no header)"
      in
      if not (String.equal tag magic) then
        dump_error path "not a soqm dump (bad magic)";
      let v =
        try really_input_string ic 4
        with End_of_file -> dump_error path "truncated dump (no version word)"
      in
      let version = Int32.to_int (String.get_int32_le v 0) in
      if version <> dump_version then
        dump_error path
          (Printf.sprintf "unsupported dump version %d (want %d)" version
             dump_version);
      try (Marshal.from_channel ic : dump)
      with End_of_file | Failure _ ->
        dump_error path "truncated or corrupt dump body")

let register_inst_method t ~cls ~meth impl =
  if Option.is_none (Schema.inst_method t.schema ~cls ~meth) then
    fail "Object_store: schema declares no instance method %s.%s" cls meth;
  Hashtbl.replace t.inst_impls (cls, meth) impl

let register_own_method t ~cls ~meth impl =
  if Option.is_none (Schema.own_method t.schema ~cls ~meth) then
    fail "Object_store: schema declares no own method %s.%s" cls meth;
  Hashtbl.replace t.own_impls (cls, meth) impl

let find_inst_impl t ~cls ~meth = Hashtbl.find_opt t.inst_impls (cls, meth)
let find_own_impl t ~cls ~meth = Hashtbl.find_opt t.own_impls (cls, meth)
