(** The in-memory object store: objects, class extents, property access,
    method implementations.

    This is the data-model substrate standing in for the VODAK store.  It
    keeps one extent per class, dereferences typed OIDs to property
    records, and holds the registered method implementations.

    Every write ({!create_object}, {!set_prop}, {!delete_object}) emits a
    typed {!change} event to the subscribed observers.  This is how the
    paper's "redundant data ... easily kept consistent by encapsulating
    the consistency check into corresponding methods" (Section 5.1) is
    realised: declared inverse links are maintained by a builtin observer
    registered at {!create}, and the external derived artifacts (value
    indexes, the inverted text index, implication sets, statistics
    deltas) hang off the same mechanism via [Soqm_maintenance].  A store
    with no external subscribers behaves exactly as before — inverse
    links are still maintained. *)

type t

(** {1 Change events} *)

(** Who performed a write: [User] writes come through {!set_prop} and
    trigger inverse-link maintenance; [Derived] writes are performed by
    consistency maintainers (backlink updates, implication-set updates)
    and are published but do not re-enter inverse bookkeeping. *)
type origin = User | Derived

type change =
  | Created of Oid.t
      (** emitted after extent insertion, before the initial property
          values are set (each of which emits its own [Prop_set]) *)
  | Prop_set of {
      oid : Oid.t;
      prop : string;
      old_value : Value.t;
      new_value : Value.t;
      origin : origin;
    }
  | Deleted of { oid : Oid.t; props : (string * Value.t) list }
      (** emitted after removal; [props] snapshots the final property
          values so observers can un-derive without dereferencing the
          dead OID *)

val subscribe : t -> (change -> unit) -> unit
(** Register an observer, called synchronously on every subsequent write
    in subscription order (after the builtin inverse-link observer).
    Observers must not call {!subscribe} reentrantly.  Note that an
    observer writing through {!set_prop_derived} causes nested events:
    the [Derived] events of backlink updates reach observers before the
    [User] event that caused them completes its observer round. *)

(** A method implementation: an internal body in the expression language
    (evaluated with [SELF] and the declared parameters bound), or an
    external OCaml function of the store, the receiver value and the
    argument values. *)
type impl =
  | Body of Expr.t
  | Native of (t -> Value.t -> Value.t list -> Value.t)

(** [create ?counters schema] — a fresh store.  [counters] lets an
    embedding storage backend (e.g. a disk store) share one counter set
    with the in-memory store it materializes. *)
val create : ?counters:Counters.t -> Schema.t -> t
val schema : t -> Schema.t
val counters : t -> Counters.t

(** {1 Objects} *)

val create_object : t -> cls:string -> (string * Value.t) list -> Oid.t
(** Allocate a fresh instance of [cls] with the given initial property
    values (missing properties default to [Null]), insert it into the
    class extent, and maintain inverse links for the supplied values.
    @raise Invalid_argument on unknown class/property or ill-typed value. *)

val reserve_oid : t -> cls:string -> Oid.t
(** Allocate a fresh OID of [cls] {e without} creating the object: the
    allocation counter advances but no extent entry, record or event is
    produced.  Buffered transactional inserts reserve their OIDs at
    execution time (so the transaction can read its own inserts by OID)
    and materialize them at commit with {!insert_reserved}; an aborted
    transaction simply leaks the serial, which is harmless.
    @raise Invalid_argument on unknown class. *)

val insert_reserved : t -> Oid.t -> (string * Value.t) list -> unit
(** Materialize an object under a previously {!reserve_oid}-allocated
    OID: extent insertion, [Created] event, then the initial property
    writes exactly as {!create_object}.
    @raise Invalid_argument if the OID is already live. *)

val delete_object : t -> Oid.t -> unit
(** Remove the object from its extent and clear inverse links pointing to
    it.  Dereferencing a deleted OID afterwards raises [Not_found]. *)

val exists : t -> Oid.t -> bool

val extent : t -> string -> Oid.t list
(** Extent of the class, in allocation order.
    @raise Invalid_argument on unknown class. *)

val extent_size : t -> string -> int

val get_prop : t -> Oid.t -> string -> Value.t
(** Read a property through the default access method; charges an object
    fetch and a property read.
    @raise Not_found on dangling OID, [Invalid_argument] on unknown
    property. *)

val peek_prop : t -> Oid.t -> string -> Value.t
(** Like {!get_prop} but free of cost accounting; for administrative reads
    such as index builds and statistics collection. *)

val set_prop : t -> Oid.t -> string -> Value.t -> unit
(** Write a property; typechecks the value, emits a [User] {!change} and
    maintains declared inverse links: setting [Section#s.document := d]
    adds [s] to [d.sections] (and removes it from the previous document's
    set). *)

val set_prop_derived : t -> Oid.t -> string -> Value.t -> unit
(** Like {!set_prop} but the event carries origin [Derived]: for
    maintainers writing derived artifacts (e.g. implication sets such as
    [Document.largeParagraphs]).  Typechecks, but does {e not} maintain
    inverse links — derived properties must not declare inverses. *)

(** {1 Snapshots} *)

type dump
(** A serializable image of the store's data: schema, objects with their
    property values, allocation counter.  Method implementations (OCaml
    closures) are {e not} part of a dump; re-register them after
    {!import}. *)

val export : t -> dump
val dump_schema : dump -> Schema.t

val dump_objects : dump -> (Oid.t * (string * Value.t) list) list
(** The dumped objects in allocation order (ascending OID serial). *)

val dump_next_id : dump -> int

val make_dump :
  schema:Schema.t ->
  next_id:int ->
  (Oid.t * (string * Value.t) list) list ->
  dump
(** Assemble a dump from parts; [objects] must be listed in allocation
    order.  Used by external storage backends ([Soqm_disk]) to feed
    {!import}. *)

val import : ?counters:Counters.t -> dump -> t
(** Rebuild a store from a dump: same schema, same OIDs, same property
    values (restored verbatim, without re-running inverse maintenance),
    empty method registry. *)

exception Dump_format_error of string
(** A dump file is foreign, truncated, or of an unsupported version. *)

val save_dump : dump -> string -> unit
(** Write a dump to a file: magic header, format-version word, then the
    [Marshal]-encoded body (read it back only with the same binary). *)

val load_dump : string -> dump
(** @raise Dump_format_error on foreign, truncated or version-mismatched
    files (checked before any [Marshal] read — unmarshalling a foreign
    byte stream is undefined behavior).
    @raise Sys_error on unreadable files. *)

(** {1 Method implementations} *)

val register_inst_method : t -> cls:string -> meth:string -> impl -> unit
(** Attach the implementation of a declared INSTTYPE method.
    @raise Invalid_argument if the schema declares no such method. *)

val register_own_method : t -> cls:string -> meth:string -> impl -> unit

val find_inst_impl : t -> cls:string -> meth:string -> impl option
val find_own_impl : t -> cls:string -> meth:string -> impl option
