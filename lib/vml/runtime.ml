exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type env = {
  store : Object_store.t;
  self : Value.t option;
  params : (string * Value.t) list;
  binding : string -> Value.t option;
}

let env ?self ?(params = []) ?(binding = fun _ -> None) store =
  { store; self; params; binding }

let num_op name fi fr a b =
  match (a : Value.t), (b : Value.t) with
  | Int x, Int y -> Value.Int (fi x y)
  | (Int _ | Real _), (Int _ | Real _) ->
    let f = function Value.Int i -> float_of_int i | Real r -> r | _ -> 0. in
    Value.Real (fr (f a) (f b))
  | _ ->
    error "operator %s applied to non-numeric operands %s, %s" name
      (Value.to_string a) (Value.to_string b)

let cmp_op name f (a : Value.t) (b : Value.t) =
  match a, b with
  | (Int _ | Real _), (Int _ | Real _) ->
    let fl = function Value.Int i -> float_of_int i | Real r -> r | _ -> 0. in
    Value.Bool (f (Float.compare (fl a) (fl b)))
  | Str x, Str y -> Value.Bool (f (String.compare x y))
  | Bool x, Bool y -> Value.Bool (f (Bool.compare x y))
  | _ ->
    error "comparison %s applied to incomparable operands %s, %s" name
      (Value.to_string a) (Value.to_string b)

let eval_binop (op : Expr.binop) (a : Value.t) (b : Value.t) =
  match op with
  | Eq -> (
    (* Null equality yields FALSE (absent value), never an error. *)
    match a, b with
    | Value.Null, _ | _, Value.Null -> Value.Bool false
    | _ -> Value.Bool (Value.equal a b))
  | Neq -> (
    match a, b with
    | Value.Null, _ | _, Value.Null -> Value.Bool false
    | _ -> Value.Bool (not (Value.equal a b)))
  | Lt -> cmp_op "<" (fun c -> c < 0) a b
  | Le -> cmp_op "<=" (fun c -> c <= 0) a b
  | Gt -> cmp_op ">" (fun c -> c > 0) a b
  | Ge -> cmp_op ">=" (fun c -> c >= 0) a b
  | IsIn -> (
    match b with
    | Value.Set _ -> Value.Bool (Value.is_in a b)
    | Value.Null -> Value.Bool false
    | _ -> error "IS-IN: right operand %s is not a set" (Value.to_string b))
  | IsSubset -> (
    match a, b with
    | Value.Set _, Value.Set _ -> Value.Bool (Value.is_subset a b)
    | _ -> error "IS-SUBSET: operands must be sets")
  | And -> (
    match a, b with
    | Value.Bool x, Value.Bool y -> Value.Bool (x && y)
    | _ -> error "AND: operands must be boolean")
  | Or -> (
    match a, b with
    | Value.Bool x, Value.Bool y -> Value.Bool (x || y)
    | _ -> error "OR: operands must be boolean")
  | Add -> num_op "+" ( + ) ( +. ) a b
  | Sub -> num_op "-" ( - ) ( -. ) a b
  | Mul -> num_op "*" ( * ) ( *. ) a b
  | Div -> (
    match a, b with
    | _, Value.Int 0 -> error "division by zero"
    | _ -> num_op "/" ( / ) ( /. ) a b)
  | Concat -> (
    match a, b with
    | Value.Str x, Value.Str y -> Value.Str (x ^ y)
    | _ -> error "++: operands must be strings")
  | IndexOp -> (
    match a, b with
    | Value.Arr xs, Value.Int i ->
      if i >= 0 && i < Array.length xs then xs.(i)
      else error "array index %d out of bounds (length %d)" i (Array.length xs)
    | Value.Dict pairs, key -> (
      match List.find_opt (fun (k, _) -> Value.equal k key) pairs with
      | Some (_, v) -> v
      | None -> Value.Null)
    | Value.Null, _ -> Value.Null
    | _ ->
      error "[]: %s is neither an array nor a dictionary" (Value.to_string a))
  | UnionOp -> (
    match a, b with
    | Value.Set _, Value.Set _ -> Value.set_union a b
    | _ -> error "UNION: operands must be sets")
  | InterOp -> (
    match a, b with
    | Value.Set _, Value.Set _ -> Value.set_inter a b
    | _ -> error "INTERSECTION: operands must be sets")
  | DiffOp -> (
    match a, b with
    | Value.Set _, Value.Set _ -> Value.set_diff a b
    | _ -> error "DIFF: operands must be sets")

(* Property access on an object; lifted over sets as per Section 2.3:
   scalar results are collected into a set, set-valued results unioned. *)
let rec access store (v : Value.t) prop =
  match v with
  | Value.Cls cls ->
    (* classes are containers for their instances: lifted access over the
       extent, consistent with the typechecker's {TObj cls} view *)
    access store
      (Value.set (List.map (fun o -> Value.Obj o) (Object_store.extent store cls)))
      prop
  | Value.Obj oid -> (
    try Object_store.get_prop store oid prop
    with Not_found -> error "dangling object identifier %s" (Oid.to_string oid))
  | Value.Set xs ->
    let results = List.map (fun x -> access store x prop) xs in
    let all_sets =
      results <> [] && List.for_all (function Value.Set _ -> true | _ -> false) results
    in
    if all_sets then
      (* one canonicalizing pass, not a quadratic fold of pairwise unions *)
      Value.set (List.concat_map Value.set_elements results)
    else Value.set (List.filter (fun v -> v <> Value.Null) results)
  | Value.Tuple _ -> (
    try Value.tuple_get v prop
    with Not_found -> error "tuple has no component %S" prop)
  | Value.Null -> Value.Null
  | _ ->
    error "property access .%s on non-object value %s" prop (Value.to_string v)

and invoke store (receiver : Value.t) meth args =
  match receiver with
  | Value.Obj oid -> (
    let cls = Oid.cls oid in
    match Schema.inst_method (Object_store.schema store) ~cls ~meth with
    | Some msig ->
      if List.length msig.Schema.params <> List.length args then
        error "method %s.%s expects %d argument(s), got %d" cls meth
          (List.length msig.Schema.params)
          (List.length args);
      Counters.charge_method_call
        (Object_store.counters store)
        ~meth:(cls ^ "." ^ meth) ~cost:msig.Schema.cost_per_call;
      run_impl store ~cls ~meth ~own:false msig receiver args
    | None ->
      (* Default property access method. *)
      if Option.is_some (Schema.property (Object_store.schema store) ~cls ~prop:meth)
      then access store receiver meth
      else error "class %s has no method or property %S" cls meth)
  | Value.Cls cls -> (
    match Schema.own_method (Object_store.schema store) ~cls ~meth with
    | Some msig ->
      if List.length msig.Schema.params <> List.length args then
        error "method %s->%s expects %d argument(s), got %d" cls meth
          (List.length msig.Schema.params)
          (List.length args);
      Counters.charge_method_call
        (Object_store.counters store)
        ~meth:(cls ^ "->" ^ meth) ~cost:msig.Schema.cost_per_call;
      run_impl store ~cls ~meth ~own:true msig receiver args
    | None -> error "class object %s has no OWNTYPE method %S" cls meth)
  | Value.Set xs ->
    (* Member-wise lifting, consistent with property access on sets. *)
    let results = List.map (fun x -> invoke store x meth args) xs in
    let all_sets =
      results <> [] && List.for_all (function Value.Set _ -> true | _ -> false) results
    in
    if all_sets then Value.set (List.concat_map Value.set_elements results)
    else Value.set (List.filter (fun v -> v <> Value.Null) results)
  | _ ->
    error "method call ->%s on non-object value %s" meth
      (Value.to_string receiver)

and run_impl store ~cls ~meth ~own msig receiver args =
  let impl =
    if own then Object_store.find_own_impl store ~cls ~meth
    else Object_store.find_inst_impl store ~cls ~meth
  in
  match impl with
  | Some (Object_store.Body body) ->
    let params =
      List.map2 (fun (name, _) v -> (name, v)) msig.Schema.params args
    in
    eval { store; self = Some receiver; params; binding = (fun _ -> None) } body
  | Some (Object_store.Native f) -> f store receiver args
  | None ->
    error "method %s%s%s has no registered implementation" cls
      (if own then "->" else ".")
      meth

and eval env (e : Expr.t) : Value.t =
  match e with
  | Const v -> v
  | Self -> (
    match env.self with
    | Some v -> v
    | None -> error "SELF used outside a method body")
  | Param p -> (
    match List.assoc_opt p env.params with
    | Some v -> v
    | None -> error "unbound method parameter %S" p)
  | Ref r -> (
    match env.binding r with
    | Some v -> v
    | None -> error "unbound reference %S" r)
  | ClassObj c -> Value.Cls c
  | Prop (e, p) -> access env.store (eval env e) p
  | Call (recv, m, args) ->
    let rv = eval env recv in
    let avs = List.map (eval env) args in
    invoke env.store rv m avs
  | Binop (And, a, b) -> (
    (* Short-circuit, so that guards can protect partial operations. *)
    match eval env a with
    | Value.Bool false -> Value.Bool false
    | Value.Bool true -> (
      match eval env b with
      | Value.Bool _ as v -> v
      | _ -> error "AND: operands must be boolean")
    | _ -> error "AND: operands must be boolean")
  | Binop (Or, a, b) -> (
    match eval env a with
    | Value.Bool true -> Value.Bool true
    | Value.Bool false -> (
      match eval env b with
      | Value.Bool _ as v -> v
      | _ -> error "OR: operands must be boolean")
    | _ -> error "OR: operands must be boolean")
  | Binop (op, a, b) -> eval_binop op (eval env a) (eval env b)
  | Not e -> (
    match eval env e with
    | Value.Bool b -> Value.Bool (not b)
    | v -> error "NOT applied to non-boolean %s" (Value.to_string v))
  | TupleE fields -> Value.tuple (List.map (fun (l, e) -> (l, eval env e)) fields)
  | SetE es -> Value.set (List.map (eval env) es)
  | If (c, a, b) -> (
    match eval env c with
    | Value.Bool true -> eval env a
    | Value.Bool false -> eval env b
    | v -> error "IF condition is non-boolean %s" (Value.to_string v))
