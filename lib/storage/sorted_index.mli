(** Ordered index on a property: range probes over sorted values.

    Complements {!Hash_index} with the access path range predicates need
    ([x.prop < c], [BETWEEN]-style conjunctions): one probe returns the
    instances whose property value lies in an interval.  Backed by a
    sorted array rebuilt from the store ({!build}); point updates
    ({!insert}/{!delete}) keep it sorted. *)

open Soqm_vml

type t

val create : cls:string -> prop:string -> t
val cls : t -> string
val prop : t -> string

val insert : t -> Value.t -> Oid.t -> unit
val delete : t -> Value.t -> Oid.t -> unit

type bound = Unbounded | Inclusive of Value.t | Exclusive of Value.t

val probe_range : t -> Counters.t -> lo:bound -> hi:bound -> Oid.t list
(** Instances whose indexed value lies between the bounds (under
    {!Value.compare}); charges one index probe.  Duplicate-free, in
    ascending value order. *)

val probe_eq : t -> Counters.t -> Value.t -> Oid.t list

val entries : t -> int

val iter_entries : t -> (Value.t -> Oid.t -> unit) -> unit
(** Every entry in ascending (value, oid) order — the dump feed for
    index persistence. *)

val load_sorted : t -> (Value.t * Oid.t) array -> unit
(** Install a pre-sorted entry array wholesale (the persisted-image load
    path, O(n) instead of n point inserts).
    @raise Invalid_argument unless strictly ascending under the index
    order. *)

val build : t -> Object_store.t -> unit
(** (Re)build from the store's current extent. *)
