open Soqm_vml

(* Entries sorted by (value, oid).  Point updates splice a fresh array
   around a binary-searched position — O(n) copy per op, good enough for
   the incremental-maintenance workloads; bulk loads go through [build]. *)
type t = { cls : string; prop : string; mutable entries : (Value.t * Oid.t) array }

let create ~cls ~prop = { cls; prop; entries = [||] }
let cls t = t.cls
let prop t = t.prop

let compare_entry (v1, o1) (v2, o2) =
  let c = Value.compare v1 v2 in
  if c <> 0 then c else Oid.compare o1 o2

(* index of the first entry >= [entry] *)
let lower_bound t entry =
  let n = Array.length t.entries in
  let rec go l r =
    if l >= r then l
    else
      let m = (l + r) / 2 in
      if compare_entry t.entries.(m) entry < 0 then go (m + 1) r else go l m
  in
  go 0 n

let insert t v oid =
  let entry = (v, oid) in
  let i = lower_bound t entry in
  let n = Array.length t.entries in
  if i >= n || compare_entry t.entries.(i) entry <> 0 then (
    let a = Array.make (n + 1) entry in
    Array.blit t.entries 0 a 0 i;
    Array.blit t.entries i a (i + 1) (n - i);
    t.entries <- a)

let delete t v oid =
  let entry = (v, oid) in
  let i = lower_bound t entry in
  let n = Array.length t.entries in
  if i < n && compare_entry t.entries.(i) entry = 0 then (
    let a = Array.make (n - 1) entry in
    Array.blit t.entries 0 a 0 i;
    Array.blit t.entries (i + 1) a i (n - i - 1);
    t.entries <- a)

type bound = Unbounded | Inclusive of Value.t | Exclusive of Value.t

let above lo v =
  match lo with
  | Unbounded -> true
  | Inclusive b -> Value.compare v b >= 0
  | Exclusive b -> Value.compare v b > 0

let below hi v =
  match hi with
  | Unbounded -> true
  | Inclusive b -> Value.compare v b <= 0
  | Exclusive b -> Value.compare v b < 0

(* binary search for the first entry satisfying the lower bound *)
let first_index t lo =
  let n = Array.length t.entries in
  let rec go l r =
    if l >= r then l
    else
      let m = (l + r) / 2 in
      let v, _ = t.entries.(m) in
      if above lo v then go l m else go (m + 1) r
  in
  go 0 n

let probe_range t counters ~lo ~hi =
  Counters.charge_index_probe counters;
  let n = Array.length t.entries in
  let rec collect i acc =
    if i >= n then List.rev acc
    else
      let v, oid = t.entries.(i) in
      if below hi v then collect (i + 1) (oid :: acc) else List.rev acc
  in
  collect (first_index t lo) []

let probe_eq t counters v =
  probe_range t counters ~lo:(Inclusive v) ~hi:(Inclusive v)

let entries t = Array.length t.entries
let iter_entries t f = Array.iter (fun (v, oid) -> f v oid) t.entries

let load_sorted t arr =
  Array.iteri
    (fun i e ->
      if i > 0 && compare_entry arr.(i - 1) e >= 0 then
        invalid_arg "Sorted_index.load_sorted: entries not strictly ascending")
    arr;
  t.entries <- arr

let build t store =
  let items =
    List.filter_map
      (fun oid ->
        match Object_store.peek_prop store oid t.prop with
        | Value.Null -> None
        | v -> Some (v, oid))
      (Object_store.extent store t.cls)
  in
  let arr = Array.of_list items in
  Array.sort compare_entry arr;
  t.entries <- arr
