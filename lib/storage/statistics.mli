(** Database statistics for cost estimation.

    The optimizer's cost model needs extent cardinalities, per-property
    fanouts and distinct counts, and the declared method selectivities
    from the schema.

    Statistics live in two regimes.  A {e full collect} ({!collect},
    {!recollect}) scans every extent; afterwards, DML flows cheap deltas
    in through the [note_*] functions (the incremental maintainers of
    [Soqm_maintenance] call them on every store change event): extent
    cardinalities and set-valued fanout totals are maintained {e exactly},
    while distinct counts only drift.  Every delta bumps a staleness tick;
    once {!staleness} — accumulated writes over the population of the last
    full collect — crosses the maintenance policy's threshold, a full
    in-place {!recollect} refreshes the drifting estimates (and the plan
    cache's epoch is bumped, see [Engine]).  All scans use administrative
    reads, not charged to query counters. *)

open Soqm_vml

type t

val collect : Object_store.t -> t
(** Scan extents and properties and record:
    - cardinality of every class extent;
    - for every set-valued property, the total and average set size over
      live instances (the fanout);
    - for every scalar property, the number of distinct values. *)

val recollect : t -> Object_store.t -> unit
(** Repeat the full scan {e in place}, refreshing all estimates and
    resetting {!staleness} to 0.  In-place matters: generated optimizers
    capture the [t] at generation time, so a recollect reaches every
    cached cost model without regenerating. *)

val schema : t -> Schema.t

val cardinality : t -> string -> float
(** Extent cardinality of a class (0 for unknown classes). *)

val fanout : t -> cls:string -> prop:string -> float
(** Average set size of a set-valued property; 1.0 for scalar properties
    and unknown ones. *)

val distinct : t -> cls:string -> prop:string -> float
(** Distinct values of a scalar property (≥ 1).  Only refreshed by a full
    (re)collect — the estimate drifts between collects. *)

val eq_selectivity : t -> cls:string -> prop:string -> float
(** Estimated selectivity of [x.prop == const]: [1 / distinct]. *)

val method_selectivity : t -> cls:string -> meth:string -> float
(** Declared selectivity of a boolean method, default 0.5 (the classical
    unknown-predicate guess). *)

val method_cost : t -> cls:string -> meth:string -> float
(** Declared per-call cost of a method, default 1.0. *)

val method_result_card : t -> cls:string -> meth:string -> float
(** Estimated cardinality of a set-returning method's result.  For a
    class method declared with selectivity [s] returning a set of [C']
    instances, this is [s * cardinality C']; otherwise falls back to the
    average fanout heuristic. *)

(** {1 Incremental deltas}

    Cheap per-event adjustments; each bumps the staleness tick. *)

val note_created : t -> cls:string -> unit
(** One object added to the class extent: cardinality + 1. *)

val note_deleted : t -> cls:string -> unit
(** One object removed: cardinality - 1. *)

val note_set_size : t -> cls:string -> prop:string -> delta:int -> unit
(** A set-valued property changed size by [delta] elements; adjusts the
    fanout total (no-op, no tick, when [delta = 0]). *)

val note_scalar_write : t -> cls:string -> prop:string -> unit
(** A scalar property was written: distinct counts may have drifted. *)

val staleness : t -> float
(** Accumulated deltas since the last full collect, relative to the total
    object population at that collect.  0 right after a (re)collect. *)

(** {1 Snapshots}

    The persisted-image form: a snapshot taken at checkpoint restores to
    exactly the same estimates, and the [note_*] deltas replayed from the
    WAL tail bring cardinalities and fanout totals to the exact live
    values — no collect scan on the fast open path. *)

type snapshot = {
  snap_cards : (string * float) list;
  snap_set_totals : ((string * string) * float) list;
  snap_distincts : ((string * string) * float) list;
  snap_writes : int;
  snap_population : float;
}

val snapshot : t -> snapshot
val of_snapshot : Schema.t -> snapshot -> t

val pp : Format.formatter -> t -> unit
