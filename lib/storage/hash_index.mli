(** Hash index on a property: value → set of instances.

    Simulates the "user-defined index" behind
    [Document→select_by_index(t)] (Section 2.1): one probe returns all
    documents with a given title.  The index is maintained explicitly by
    the code that mutates the indexed property (the database facade in
    [lib/core] wires this up). *)

open Soqm_vml

type t

val create : cls:string -> prop:string -> t
(** An (initially empty) index on [cls.prop]. *)

val cls : t -> string
val prop : t -> string

val insert : t -> Value.t -> Oid.t -> unit
val delete : t -> Value.t -> Oid.t -> unit

val load_bucket : t -> Value.t -> Oid.t list -> unit
(** Install a whole bucket in one right-sized allocation, replacing any
    existing bucket for the value — the bulk path image restore takes
    instead of per-OID {!insert}. *)

val probe : t -> Counters.t -> Value.t -> Oid.t list
(** OIDs currently indexed under the value; charges one index probe.
    Duplicate-free, order unspecified. *)

val keys : t -> Value.t list
(** Distinct indexed values. *)

val distinct_keys : t -> int
val entries : t -> int

val iter : t -> (Value.t -> Oid.t list -> unit) -> unit
(** Every bucket: indexed value and the OIDs under it (order
    unspecified).  The dump feed for index persistence. *)

val build : t -> Object_store.t -> unit
(** (Re)build the index from the store: clears it, then inserts every
    live instance of [cls] under its current [prop] value. *)
