open Soqm_vml

type t = {
  cls : string;
  prop : string;
  table : (Value.t, (Oid.t, unit) Hashtbl.t) Hashtbl.t;
}

let create ~cls ~prop = { cls; prop; table = Hashtbl.create 256 }
let cls t = t.cls
let prop t = t.prop

let bucket t v =
  match Hashtbl.find_opt t.table v with
  | Some b -> b
  | None ->
    let b = Hashtbl.create 4 in
    Hashtbl.replace t.table v b;
    b

let insert t v oid = Hashtbl.replace (bucket t v) oid ()

let load_bucket t v oids =
  let b = Hashtbl.create (List.length oids) in
  List.iter (fun oid -> Hashtbl.replace b oid ()) oids;
  Hashtbl.replace t.table v b

let delete t v oid =
  match Hashtbl.find_opt t.table v with
  | None -> ()
  | Some b ->
    Hashtbl.remove b oid;
    if Hashtbl.length b = 0 then Hashtbl.remove t.table v

let probe t counters v =
  Counters.charge_index_probe counters;
  match Hashtbl.find_opt t.table v with
  | None -> []
  | Some b -> Hashtbl.fold (fun k () acc -> k :: acc) b []

let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t.table []
let distinct_keys t = Hashtbl.length t.table

let entries t =
  Hashtbl.fold (fun _ b acc -> acc + Hashtbl.length b) t.table 0

let iter t f =
  Hashtbl.iter
    (fun v b -> f v (Hashtbl.fold (fun oid () acc -> oid :: acc) b []))
    t.table

let build t store =
  Hashtbl.reset t.table;
  List.iter
    (fun oid ->
      let v =
        try Object_store.peek_prop store oid t.prop with Not_found -> Value.Null
      in
      insert t v oid)
    (Object_store.extent store t.cls)
