open Soqm_vml

(* Cardinalities and set-size totals are maintained exactly under DML
   (note_* deltas); distinct counts are only refreshed by a full
   [recollect], so every scalar write also bumps the staleness tick. *)
type t = {
  schema : Schema.t;
  cards : (string, float) Hashtbl.t;
  set_totals : (string * string, float) Hashtbl.t;
      (* total set size per set-valued property; fanout = total / card *)
  distincts : (string * string, float) Hashtbl.t;
  mutable writes_since_collect : int;
  mutable base_population : float;
      (* total objects at last full collect, the staleness denominator *)
}

let schema t = t.schema

let recollect t store =
  Hashtbl.reset t.cards;
  Hashtbl.reset t.set_totals;
  Hashtbl.reset t.distincts;
  let population = ref 0 in
  List.iter
    (fun (cd : Schema.class_def) ->
      let cls = cd.Schema.cls_name in
      let ext = Object_store.extent store cls in
      let n = List.length ext in
      population := !population + n;
      Hashtbl.replace t.cards cls (float_of_int n);
      List.iter
        (fun (p : Schema.property) ->
          match p.Schema.prop_type with
          | Vtype.TSet _ ->
            let total =
              List.fold_left
                (fun acc oid ->
                  match Object_store.peek_prop store oid p.Schema.prop_name with
                  | Value.Set xs -> acc + List.length xs
                  | _ -> acc)
                0 ext
            in
            Hashtbl.replace t.set_totals (cls, p.Schema.prop_name)
              (float_of_int total)
          | _ ->
            let seen = Hashtbl.create 64 in
            List.iter
              (fun oid ->
                let v = Object_store.peek_prop store oid p.Schema.prop_name in
                Hashtbl.replace seen v ())
              ext;
            Hashtbl.replace t.distincts (cls, p.Schema.prop_name)
              (float_of_int (max 1 (Hashtbl.length seen))))
        cd.Schema.properties)
    (Schema.classes (Object_store.schema store));
  t.writes_since_collect <- 0;
  t.base_population <- float_of_int !population

let collect store =
  let t =
    {
      schema = Object_store.schema store;
      cards = Hashtbl.create 16;
      set_totals = Hashtbl.create 32;
      distincts = Hashtbl.create 32;
      writes_since_collect = 0;
      base_population = 0.;
    }
  in
  recollect t store;
  t

let cardinality t cls = Option.value ~default:0. (Hashtbl.find_opt t.cards cls)

let fanout t ~cls ~prop =
  match Hashtbl.find_opt t.set_totals (cls, prop) with
  | None -> 1.0
  | Some total ->
    let n = cardinality t cls in
    if n <= 0. then 1.0 else total /. n

let distinct t ~cls ~prop =
  Option.value ~default:1.0 (Hashtbl.find_opt t.distincts (cls, prop))

let eq_selectivity t ~cls ~prop = 1.0 /. distinct t ~cls ~prop

let method_selectivity t ~cls ~meth =
  Option.value ~default:0.5 (Schema.method_selectivity t.schema ~cls ~meth)

let method_cost t ~cls ~meth = Schema.method_cost t.schema ~cls ~meth

let method_result_card t ~cls ~meth =
  let msig =
    match Schema.own_method t.schema ~cls ~meth with
    | Some m -> Some m
    | None -> Schema.inst_method t.schema ~cls ~meth
  in
  match msig with
  | Some { Schema.returns = Vtype.TSet (Vtype.TObj c'); selectivity; _ } ->
    let s = Option.value ~default:0.1 selectivity in
    Float.max 1.0 (s *. cardinality t c')
  | Some { Schema.returns = Vtype.TSet _; _ } -> 10.0
  | _ -> 1.0

(* ------------------------------------------------------------------ *)
(* Incremental deltas                                                  *)
(* ------------------------------------------------------------------ *)

let tick t = t.writes_since_collect <- t.writes_since_collect + 1

let note_created t ~cls =
  Hashtbl.replace t.cards cls (cardinality t cls +. 1.);
  tick t

let note_deleted t ~cls =
  Hashtbl.replace t.cards cls (Float.max 0. (cardinality t cls -. 1.));
  tick t

let note_set_size t ~cls ~prop ~delta =
  if delta <> 0 then (
    let total =
      Option.value ~default:0. (Hashtbl.find_opt t.set_totals (cls, prop))
    in
    Hashtbl.replace t.set_totals (cls, prop)
      (Float.max 0. (total +. float_of_int delta));
    tick t)

let note_scalar_write t ~cls:_ ~prop:_ = tick t

let staleness t =
  float_of_int t.writes_since_collect /. Float.max 1. t.base_population

(* ------------------------------------------------------------------ *)
(* Snapshots (the persisted-image form of the statistics)              *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  snap_cards : (string * float) list;
  snap_set_totals : ((string * string) * float) list;
  snap_distincts : ((string * string) * float) list;
  snap_writes : int;
  snap_population : float;
}

let snapshot t =
  {
    snap_cards = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.cards [];
    snap_set_totals =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.set_totals [];
    snap_distincts =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.distincts [];
    snap_writes = t.writes_since_collect;
    snap_population = t.base_population;
  }

let of_snapshot schema snap =
  let t =
    {
      schema;
      cards = Hashtbl.create 16;
      set_totals = Hashtbl.create 32;
      distincts = Hashtbl.create 32;
      writes_since_collect = snap.snap_writes;
      base_population = snap.snap_population;
    }
  in
  List.iter (fun (k, v) -> Hashtbl.replace t.cards k v) snap.snap_cards;
  List.iter (fun (k, v) -> Hashtbl.replace t.set_totals k v) snap.snap_set_totals;
  List.iter (fun (k, v) -> Hashtbl.replace t.distincts k v) snap.snap_distincts;
  t

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Hashtbl.iter (fun c n -> Format.fprintf ppf "|%s| = %.0f@ " c n) t.cards;
  Hashtbl.iter
    (fun (c, p) _ ->
      Format.fprintf ppf "fanout %s.%s = %.2f@ " c p (fanout t ~cls:c ~prop:p))
    t.set_totals;
  Hashtbl.iter
    (fun (c, p) d -> Format.fprintf ppf "distinct %s.%s = %.0f@ " c p d)
    t.distincts;
  Format.fprintf ppf "staleness = %.3f@ " (staleness t);
  Format.fprintf ppf "@]"
