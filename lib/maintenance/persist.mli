(** Persistent derived-state image: [derived.idx] in a database
    directory.

    Everything the Db derives from base data — hash / sorted / inverted
    index contents, maintained implication-set memberships, the
    statistics snapshot — serialized as one CRC-framed, atomically
    replaced file, stamped with the store's checkpoint sequence
    ([Soqm_disk.Store.checkpoint_seq]).

    Consistency protocol: the writer emits the image immediately after a
    checkpoint, carrying that checkpoint's sequence.  A reader accepts
    the image only when its stamp equals the just-opened store's
    sequence — which proves the image reflects exactly the checkpointed
    base state, so replaying the store's recovered WAL tail
    ([recovered_ops]) over it yields exactly the live derived state:
    an O(dirty) open instead of an O(extent) rebuild.  On any mismatch,
    corruption or absence the image reads as [None] and the caller
    rebuilds from base data — it is a cache, never the source of
    truth. *)

open Soqm_vml

type image = {
  seq : int;  (** checkpoint sequence of the base state covered *)
  hash : (string * string * (Value.t * int list) list) list;
      (** hash indexes: (cls, prop, buckets); OIDs as bare ids of cls *)
  sorted : (string * string * (Value.t * int) array) list;
      (** sorted indexes: entries in index order *)
  text : (string * string * (string * int list) list) list;
      (** inverted indexes: (cls, prop, word postings) *)
  sets : (string * ((string * int) * (string * int)) list) list;
      (** maintained sets: spec name, (member, target) as (cls, id) *)
  stats : Soqm_storage.Statistics.snapshot option;
}

val path : dir:string -> string

val write : dir:string -> image -> unit
(** Atomically replace [dir/derived.idx] (temp ∥ fsync ∥ rename). *)

val read : dir:string -> image option
(** [None] when the file is absent, foreign, truncated or fails its
    checksum — never raises on a damaged image. *)

val remove : dir:string -> unit
(** Delete the image (and any temp), if present. *)
