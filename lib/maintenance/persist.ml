(* The persistent derived-state image: [derived.idx] inside a database
   directory, holding every index the Db keeps in memory (hash, sorted,
   inverted), the maintained implication-set memberships and a
   statistics snapshot, stamped with the store's checkpoint sequence.

   Layout:

     "SOQM-IDX" ∥ u32le len ∥ payload ∥ u32le crc32(payload)

   — one frame over the whole body, same framing discipline as the WAL
   and the columnar segments, written atomically (temp ∥ fsync ∥
   rename).  The payload is codec-encoded; OIDs are stored as bare ids
   where the class is implied by the section and as (cls, id) pairs
   where it is not (set members can cross classes).

   The stamp is the consistency protocol: the image is valid iff its
   sequence equals the meta file's checkpoint sequence, which proves it
   reflects exactly the checkpointed base state — the WAL tail the open
   replays on the base is then the exact delta to replay on the derived
   state too.  Any mismatch, absence or corruption reads as [None] and
   the caller falls back to rebuilding from base data; the image is a
   pure cache, never the source of truth. *)

open Soqm_vml
module Codec = Soqm_disk.Codec

let magic = "SOQM-IDX"
let version = 1
let file = "derived.idx"
let path ~dir = Filename.concat dir file

type image = {
  seq : int;
  hash : (string * string * (Value.t * int list) list) list;
      (* (cls, prop, buckets); bucket oids are ids of cls *)
  sorted : (string * string * (Value.t * int) array) list;
      (* entries in index order *)
  text : (string * string * (string * int list) list) list;
      (* (cls, prop, postings); posting keys are ids of cls *)
  sets : (string * ((string * int) * (string * int)) list) list;
      (* spec name, (member, target) oid pairs as (cls, id) *)
  stats : Soqm_storage.Statistics.snapshot option;
}

(* ------------------------------------------------------------------ *)
(* encode                                                              *)
(* ------------------------------------------------------------------ *)

let add_u32le buf n =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int n);
  Buffer.add_bytes buf b

let write_float buf f =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.bits_of_float f);
  Buffer.add_bytes buf b

let read_float c =
  let b = Bytes.create 8 in
  for i = 0 to 7 do
    Bytes.set b i (Char.chr (Codec.read_byte c))
  done;
  Int64.float_of_bits (Bytes.get_int64_le b 0)

let write_list buf f xs =
  Codec.write_uvarint buf (List.length xs);
  List.iter (f buf) xs

let read_list c f = List.init (Codec.read_uvarint c) (fun _ -> f c)

let write_ids buf ids = write_list buf Codec.write_uvarint ids
let read_ids c = read_list c Codec.read_uvarint

let encode img =
  let buf = Buffer.create 65536 in
  Codec.write_uvarint buf version;
  Codec.write_uvarint buf img.seq;
  write_list buf
    (fun buf (cls, prop, buckets) ->
      Codec.write_string buf cls;
      Codec.write_string buf prop;
      write_list buf
        (fun buf (v, ids) ->
          Codec.write_value buf v;
          write_ids buf ids)
        buckets)
    img.hash;
  write_list buf
    (fun buf (cls, prop, entries) ->
      Codec.write_string buf cls;
      Codec.write_string buf prop;
      Codec.write_uvarint buf (Array.length entries);
      Array.iter
        (fun (v, id) ->
          Codec.write_value buf v;
          Codec.write_uvarint buf id)
        entries)
    img.sorted;
  write_list buf
    (fun buf (cls, prop, postings) ->
      Codec.write_string buf cls;
      Codec.write_string buf prop;
      write_list buf
        (fun buf (word, ids) ->
          Codec.write_string buf word;
          write_ids buf ids)
        postings)
    img.text;
  write_list buf
    (fun buf (name, members) ->
      Codec.write_string buf name;
      write_list buf
        (fun buf ((mcls, mid), (tcls, tid)) ->
          Codec.write_string buf mcls;
          Codec.write_uvarint buf mid;
          Codec.write_string buf tcls;
          Codec.write_uvarint buf tid)
        members)
    img.sets;
  (match img.stats with
  | None -> Codec.write_uvarint buf 0
  | Some snap ->
    let open Soqm_storage.Statistics in
    Codec.write_uvarint buf 1;
    write_list buf
      (fun buf (cls, v) ->
        Codec.write_string buf cls;
        write_float buf v)
      snap.snap_cards;
    let write_pair_floats buf xs =
      write_list buf
        (fun buf ((cls, prop), v) ->
          Codec.write_string buf cls;
          Codec.write_string buf prop;
          write_float buf v)
        xs
    in
    write_pair_floats buf snap.snap_set_totals;
    write_pair_floats buf snap.snap_distincts;
    Codec.write_uvarint buf snap.snap_writes;
    write_float buf snap.snap_population);
  Buffer.contents buf

let write ~dir img =
  let payload = encode img in
  let buf = Buffer.create (String.length payload + 16) in
  Buffer.add_string buf magic;
  add_u32le buf (String.length payload);
  Buffer.add_string buf payload;
  add_u32le buf (Soqm_disk.Wal.crc32 payload);
  let out = path ~dir in
  let tmp = out ^ ".tmp" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let s = Buffer.contents buf in
      let b = Bytes.unsafe_of_string s in
      let rec go off =
        if off < Bytes.length b then
          go (off + Unix.write fd b off (Bytes.length b - off))
      in
      go 0;
      Unix.fsync fd);
  Unix.rename tmp out

let remove ~dir =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path ~dir; path ~dir ^ ".tmp" ]

(* ------------------------------------------------------------------ *)
(* decode                                                              *)
(* ------------------------------------------------------------------ *)

let get_u32le s off = Int32.to_int (String.get_int32_le s off) land 0xffffffff

let decode payload =
  let c = Codec.cursor payload in
  let v = Codec.read_uvarint c in
  if v <> version then raise (Codec.Corrupt "unsupported derived-image version");
  let seq = Codec.read_uvarint c in
  let hash =
    read_list c (fun c ->
        let cls = Codec.read_string c in
        let prop = Codec.read_string c in
        let buckets =
          read_list c (fun c ->
              let v = Codec.read_value c in
              (v, read_ids c))
        in
        (cls, prop, buckets))
  in
  let sorted =
    read_list c (fun c ->
        let cls = Codec.read_string c in
        let prop = Codec.read_string c in
        let n = Codec.read_uvarint c in
        let entries =
          Array.init n (fun _ ->
              let v = Codec.read_value c in
              (v, Codec.read_uvarint c))
        in
        (cls, prop, entries))
  in
  let text =
    read_list c (fun c ->
        let cls = Codec.read_string c in
        let prop = Codec.read_string c in
        let postings =
          read_list c (fun c ->
              let w = Codec.read_string c in
              (w, read_ids c))
        in
        (cls, prop, postings))
  in
  let sets =
    read_list c (fun c ->
        let name = Codec.read_string c in
        let members =
          read_list c (fun c ->
              let mcls = Codec.read_string c in
              let mid = Codec.read_uvarint c in
              let tcls = Codec.read_string c in
              let tid = Codec.read_uvarint c in
              ((mcls, mid), (tcls, tid)))
        in
        (name, members))
  in
  let stats =
    match Codec.read_uvarint c with
    | 0 -> None
    | 1 ->
      let cards =
        read_list c (fun c ->
            let cls = Codec.read_string c in
            (cls, read_float c))
      in
      let pair_floats c =
        read_list c (fun c ->
            let cls = Codec.read_string c in
            let prop = Codec.read_string c in
            ((cls, prop), read_float c))
      in
      let totals = pair_floats c in
      let distincts = pair_floats c in
      let writes = Codec.read_uvarint c in
      let population = read_float c in
      Some
        {
          Soqm_storage.Statistics.snap_cards = cards;
          snap_set_totals = totals;
          snap_distincts = distincts;
          snap_writes = writes;
          snap_population = population;
        }
    | _ -> raise (Codec.Corrupt "bad stats flag")
  in
  { seq; hash; sorted; text; sets; stats }

(* A pure cache: any defect — absence, foreign file, bad frame, CRC
   mismatch, truncated body — reads as [None] and the caller rebuilds. *)
let read ~dir =
  let p = path ~dir in
  if not (Sys.file_exists p) then None
  else
    try
      let s = In_channel.with_open_bin p In_channel.input_all in
      let m = String.length magic in
      if not (String.length s >= m + 8 && String.equal (String.sub s 0 m) magic)
      then None
      else
        let len = get_u32le s m in
        if len < 0 || m + 4 + len + 4 <> String.length s then None
        else
          let payload = String.sub s (m + 4) len in
          if get_u32le s (m + 4 + len) <> Soqm_disk.Wal.crc32 payload then None
          else Some (decode payload)
    with Codec.Corrupt _ | Sys_error _ -> None
