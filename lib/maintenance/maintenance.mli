(** Incremental knowledge maintenance (Section 5.3 of the paper).

    The optimizer's semantic knowledge — implication sets such as
    [Document.largeParagraphs], inverse links, index contents and the
    statistics behind the cost model — is derived from base data, so DML
    must keep it consistent.  Instead of rebuilding after every write,
    this module {e attaches} to an {!Soqm_vml.Object_store}'s change
    events and routes each one through registered maintainers:

    - {b hash / sorted / inverted indexes} get point inserts, deletes and
      posting-diff replaces ([Inverted_index.replace]);
    - {b implication sets} are compiled straight from
      [Equivalence.Implication] specs whose consequent has the shape
      [x IS-IN target(x).set_prop] — the antecedent is re-evaluated for
      the touched object and its membership moved between targets;
    - {b statistics} receive cheap exact deltas (cardinalities, fanout
      totals); once accumulated writes cross the policy's staleness
      threshold a full in-place [Statistics.recollect] runs.

    Maintenance distinguishes {e knowledge-preserving} updates (the
    normal case: all derived artifacts patched in place, cached query
    plans stay valid) from events that change the cost landscape (a
    statistics recollect) — the latter bump the {!epoch}, which the
    engine's plan cache uses to invalidate (see [Engine]). *)

open Soqm_vml
open Soqm_storage

type policy = { staleness_threshold : float }
(** [staleness_threshold]: fraction of the base population that may be
    written between full statistics recollects (see
    [Statistics.staleness]). *)

val default_policy : policy
(** [{ staleness_threshold = 0.10 }]. *)

type t

val attach :
  ?policy:policy ->
  ?hash_indexes:Hash_index.t list ->
  ?sorted_indexes:Sorted_index.t list ->
  ?text_indexes:(string * string * Oid.t Soqm_ir.Inverted_index.t) list ->
  ?implications:Soqm_semantics.Equivalence.t list ->
  ?set_members:(string * (Oid.t * Oid.t) list) list ->
  stats:Statistics.t ->
  Object_store.t ->
  t
(** Register maintainers and subscribe to the store's change events.
    [text_indexes] entries are [(cls, prop, index)] triples.  Of the
    [implications], only [Equivalence.Implication] specs with a
    membership-shaped consequent are compiled into maintained sets; the
    rest are ignored.  Indexes and [stats] must already reflect the
    store's current contents (the caller builds them); maintained sets
    are reconciled against base data at attach time — unless
    [set_members] supplies a spec's [(member, target)] pairs (from
    {!set_members} persisted at checkpoint), in which case that set is
    seeded wholesale and the O(extent) reconcile skipped.  Inverse links
    need no registration — the store itself maintains them. *)

val observe : t -> Object_store.change -> unit
(** The observer attached to the store; exposed for replaying events. *)

val resync : t -> unit
(** Rebuild-from-scratch for everything this [t] owns: reconcile every
    maintained implication set against base data, recollect statistics,
    bump the epoch.  Used after bulk loads that bypass the observer. *)

val epoch : t -> int
(** Monotone counter of plan-invalidating knowledge changes.  Starts at
    0; bumped by statistics recollects (staleness-triggered or via
    {!resync}) and by explicit {!bump_epoch}. *)

val bump_epoch : t -> unit
(** Force invalidation of epoch-guarded caches, e.g. after out-of-band
    schema or specification changes. *)

val staleness : t -> float
(** Current [Statistics.staleness] of the maintained statistics. *)

val recollects : t -> int
(** Number of full statistics recollects performed so far. *)

val stats : t -> Statistics.t

val maintained_sets : t -> string list
(** Names of the implication specs compiled into maintained sets. *)

val set_members : t -> (string * (Oid.t * Oid.t) list) list
(** Every maintained set's current [(member, target)] pairs — the dump
    feed for index persistence; feed back through [attach
    ~set_members]. *)
