open Soqm_vml
open Soqm_storage

type policy = { staleness_threshold : float }

let default_policy = { staleness_threshold = 0.10 }

(* An implication spec whose consequent has the maintained-membership
   shape [x IS-IN target(x).set_prop]. *)
type maintained_set = {
  spec_name : string;
  member_cls : string;
  var : string;
  antecedent : Expr.t;
  target_expr : Expr.t;
  set_prop : string;
  members : (Oid.t, Oid.t) Hashtbl.t;  (* member -> target holding it *)
}

type t = {
  store : Object_store.t;
  stats : Statistics.t;
  policy : policy;
  hash_indexes : Hash_index.t list;
  sorted_indexes : Sorted_index.t list;
  text_indexes : (string * string * Oid.t Soqm_ir.Inverted_index.t) list;
  sets : maintained_set list;
  mutable epoch : int;
  mutable recollects : int;
}

let epoch t = t.epoch
let bump_epoch t = t.epoch <- t.epoch + 1
let staleness t = Statistics.staleness t.stats
let recollects t = t.recollects
let stats t = t.stats
let maintained_sets t = List.map (fun m -> m.spec_name) t.sets

let set_members t =
  List.map
    (fun m ->
      ( m.spec_name,
        Hashtbl.fold (fun mem tgt acc -> (mem, tgt) :: acc) m.members [] ))
    t.sets

(* ------------------------------------------------------------------ *)
(* Implication sets                                                    *)
(* ------------------------------------------------------------------ *)

let compile_implication (spec : Soqm_semantics.Equivalence.t) =
  match spec with
  | Soqm_semantics.Equivalence.Implication
      {
        name;
        cls;
        var;
        antecedent;
        consequent = Expr.Binop (Expr.IsIn, Expr.Ref v, Expr.Prop (target_expr, set_prop));
      }
    when String.equal v var ->
    Some
      {
        spec_name = name;
        member_cls = cls;
        var;
        antecedent;
        target_expr;
        set_prop;
        members = Hashtbl.create 256;
      }
  | _ -> None

let eval_on store m oid e =
  let env =
    Runtime.env
      ~binding:(fun r ->
        if String.equal r m.var then Some (Value.Obj oid) else None)
      store
  in
  Runtime.eval env e

(* A failed antecedent evaluation (NULL operand, dangling link) counts as
   FALSE — an object the antecedent cannot certify must not sit in the
   implied set. *)
let antecedent_holds store m oid =
  try Value.truthy (eval_on store m oid m.antecedent)
  with Runtime.Error _ | Not_found -> false

let target_of store m oid =
  try
    match eval_on store m oid m.target_expr with
    | Value.Obj o when Object_store.exists store o -> Some o
    | _ -> None
  with Runtime.Error _ | Not_found -> None

let charge_implication store =
  Counters.charge_implication_update (Object_store.counters store)

let member_add store m ~target ~member =
  let v = Value.Obj member in
  match Object_store.peek_prop store target m.set_prop with
  | Value.Set xs when List.exists (Value.equal v) xs -> ()
  | Value.Set xs ->
    Object_store.set_prop_derived store target m.set_prop (Value.set (v :: xs));
    charge_implication store
  | Value.Null ->
    Object_store.set_prop_derived store target m.set_prop (Value.set [ v ]);
    charge_implication store
  | _ -> ()

let member_remove store m ~target ~member =
  if Object_store.exists store target then
    let v = Value.Obj member in
    match Object_store.peek_prop store target m.set_prop with
    | Value.Set xs when List.exists (Value.equal v) xs ->
      Object_store.set_prop_derived store target m.set_prop
        (Value.Set (List.filter (fun x -> not (Value.equal x v)) xs));
      charge_implication store
    | _ -> ()

(* Re-derive one object's membership after any of its properties moved:
   covers threshold crossings ([wordCount] passing 500), moves (a
   paragraph re-parented to a section of another document) and links
   dying (the section deleted out from under it). *)
let refresh_member store m oid =
  let target =
    if antecedent_holds store m oid then target_of store m oid else None
  in
  let prev = Hashtbl.find_opt m.members oid in
  match prev, target with
  | Some told, Some tnew when Oid.equal told tnew -> ()
  | prev, target ->
    (match prev with
    | Some told ->
      member_remove store m ~target:told ~member:oid;
      Hashtbl.remove m.members oid
    | None -> ());
    (match target with
    | Some tnew ->
      member_add store m ~target:tnew ~member:oid;
      Hashtbl.replace m.members oid tnew
    | None -> ())

let drop_member store m oid =
  match Hashtbl.find_opt m.members oid with
  | Some told ->
    member_remove store m ~target:told ~member:oid;
    Hashtbl.remove m.members oid
  | None -> ()

(* Target classes of a maintained set: every class declaring [set_prop]
   as a set of the member class.  Needed to clear stale memberships on
   targets that end up with no desired members at all. *)
let target_classes store m =
  List.filter_map
    (fun (cd : Schema.class_def) ->
      let holds (p : Schema.property) =
        String.equal p.Schema.prop_name m.set_prop
        && p.Schema.prop_type = Vtype.TSet (Vtype.TObj m.member_cls)
      in
      if List.exists holds cd.Schema.properties then Some cd.Schema.cls_name
      else None)
    (Schema.classes (Object_store.schema store))

(* Full re-derivation of one maintained set from base data — the
   rebuild-from-scratch path used at attach time and by {!resync}. *)
let reconcile_set store m =
  Hashtbl.reset m.members;
  let desired = Hashtbl.create 256 in
  List.iter
    (fun oid ->
      if antecedent_holds store m oid then
        match target_of store m oid with
        | Some target ->
          Hashtbl.replace m.members oid target;
          let cur = Option.value ~default:[] (Hashtbl.find_opt desired target) in
          Hashtbl.replace desired target (Value.Obj oid :: cur)
        | None -> ())
    (Object_store.extent store m.member_cls);
  List.iter
    (fun cls ->
      List.iter
        (fun target ->
          let want =
            Value.set (Option.value ~default:[] (Hashtbl.find_opt desired target))
          in
          let have = Object_store.peek_prop store target m.set_prop in
          let have = match have with Value.Set _ -> have | _ -> Value.Set [] in
          if not (Value.equal want have) then (
            Object_store.set_prop_derived store target m.set_prop want;
            charge_implication store))
        (Object_store.extent store cls))
    (target_classes store m)

(* ------------------------------------------------------------------ *)
(* Index maintainers                                                   *)
(* ------------------------------------------------------------------ *)

let charge_postings store n =
  Counters.charge_postings_touched (Object_store.counters store) n

let hash_index_observer store idx ev =
  let cls = Hash_index.cls idx and prop = Hash_index.prop idx in
  match ev with
  | Object_store.Created oid when String.equal (Oid.cls oid) cls ->
    (* mirrors [build]: unset properties are indexed under Null until the
       first Prop_set moves them *)
    Hash_index.insert idx Value.Null oid;
    charge_postings store 1
  | Object_store.Prop_set { oid; prop = p; old_value; new_value; _ }
    when String.equal (Oid.cls oid) cls && String.equal p prop ->
    Hash_index.delete idx old_value oid;
    Hash_index.insert idx new_value oid;
    charge_postings store 2
  | Object_store.Deleted { oid; props } when String.equal (Oid.cls oid) cls ->
    let v = Option.value ~default:Value.Null (List.assoc_opt prop props) in
    Hash_index.delete idx v oid;
    charge_postings store 1
  | _ -> ()

let sorted_index_observer store idx ev =
  let cls = Sorted_index.cls idx and prop = Sorted_index.prop idx in
  match ev with
  | Object_store.Prop_set { oid; prop = p; old_value; new_value; _ }
    when String.equal (Oid.cls oid) cls && String.equal p prop ->
    let touched = ref 0 in
    (match old_value with
    | Value.Null -> ()
    | v ->
      Sorted_index.delete idx v oid;
      incr touched);
    (match new_value with
    | Value.Null -> ()
    | v ->
      Sorted_index.insert idx v oid;
      incr touched);
    charge_postings store !touched
  | Object_store.Deleted { oid; props } when String.equal (Oid.cls oid) cls -> (
    match Option.value ~default:Value.Null (List.assoc_opt prop props) with
    | Value.Null -> ()
    | v ->
      Sorted_index.delete idx v oid;
      charge_postings store 1)
  | _ -> ()

let vocab_size text = List.length (Soqm_ir.Tokenizer.vocabulary text)

let text_index_observer store (cls, prop, idx) ev =
  match ev with
  | Object_store.Prop_set { oid; prop = p; old_value; new_value; _ }
    when String.equal (Oid.cls oid) cls && String.equal p prop -> (
    match old_value, new_value with
    | Value.Str old_text, Value.Str text ->
      Soqm_ir.Inverted_index.replace idx ~key:oid ~old_text ~text;
      charge_postings store (vocab_size old_text + vocab_size text)
    | _, Value.Str text ->
      Soqm_ir.Inverted_index.add idx ~key:oid ~text;
      charge_postings store (vocab_size text)
    | Value.Str old_text, _ ->
      Soqm_ir.Inverted_index.remove idx ~key:oid ~text:old_text;
      charge_postings store (vocab_size old_text)
    | _ -> ())
  | Object_store.Deleted { oid; props } when String.equal (Oid.cls oid) cls -> (
    match List.assoc_opt prop props with
    | Some (Value.Str text) ->
      Soqm_ir.Inverted_index.remove idx ~key:oid ~text;
      charge_postings store (vocab_size text)
    | _ -> ())
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Statistics deltas                                                   *)
(* ------------------------------------------------------------------ *)

let set_size = function Value.Set xs -> List.length xs | _ -> 0

let stats_observer store stats ev =
  let charge () = Counters.charge_stats_delta (Object_store.counters store) in
  match ev with
  | Object_store.Created oid ->
    Statistics.note_created stats ~cls:(Oid.cls oid);
    charge ()
  | Object_store.Deleted { oid; props } ->
    let cls = Oid.cls oid in
    Statistics.note_deleted stats ~cls;
    charge ();
    List.iter
      (fun (p, v) ->
        let d = set_size v in
        if d > 0 then (
          Statistics.note_set_size stats ~cls ~prop:p ~delta:(-d);
          charge ()))
      props
  | Object_store.Prop_set { oid; prop; old_value; new_value; _ } -> (
    let cls = Oid.cls oid in
    match
      Schema.property_type (Object_store.schema store) ~cls ~prop
    with
    | Some (Vtype.TSet _) ->
      let d = set_size new_value - set_size old_value in
      if d <> 0 then (
        Statistics.note_set_size stats ~cls ~prop ~delta:d;
        charge ())
    | _ ->
      Statistics.note_scalar_write stats ~cls ~prop;
      charge ())

(* ------------------------------------------------------------------ *)
(* Assembly                                                            *)
(* ------------------------------------------------------------------ *)

let maybe_recollect t =
  if Statistics.staleness t.stats >= t.policy.staleness_threshold then (
    Statistics.recollect t.stats t.store;
    t.recollects <- t.recollects + 1;
    bump_epoch t)

let observe t ev =
  List.iter (fun idx -> hash_index_observer t.store idx ev) t.hash_indexes;
  List.iter (fun idx -> sorted_index_observer t.store idx ev) t.sorted_indexes;
  List.iter (fun ti -> text_index_observer t.store ti ev) t.text_indexes;
  List.iter
    (fun m ->
      match ev with
      | Object_store.Created oid when String.equal (Oid.cls oid) m.member_cls ->
        refresh_member t.store m oid
      | Object_store.Prop_set { oid; prop; _ }
        when String.equal (Oid.cls oid) m.member_cls
             && not (String.equal prop m.set_prop) ->
        (* own set-prop writes are skipped so a maintained set over its
           own member class cannot re-trigger itself *)
        refresh_member t.store m oid
      | Object_store.Deleted { oid; _ }
        when String.equal (Oid.cls oid) m.member_cls ->
        drop_member t.store m oid
      | _ -> ())
    t.sets;
  stats_observer t.store t.stats ev;
  maybe_recollect t

let resync t =
  List.iter (fun m -> reconcile_set t.store m) t.sets;
  Statistics.recollect t.stats t.store;
  t.recollects <- t.recollects + 1;
  bump_epoch t

let attach ?(policy = default_policy) ?(hash_indexes = [])
    ?(sorted_indexes = []) ?(text_indexes = []) ?(implications = [])
    ?set_members ~stats store =
  let sets = List.filter_map compile_implication implications in
  let t =
    {
      store;
      stats;
      policy;
      hash_indexes;
      sorted_indexes;
      text_indexes;
      sets;
      epoch = 0;
      recollects = 0;
    }
  in
  (* bring the maintained sets in line with base data before observing —
     attach is the rebuild-from-scratch moment; indexes and statistics
     are the caller's to have built (Db does both in [refresh]).  With
     [set_members] (the persisted-image fast path) a named set's members
     table is seeded wholesale instead: the base data's derived set
     props already hold these memberships, so the O(extent) reconcile
     (an antecedent evaluation per member-class instance) is skipped. *)
  List.iter
    (fun m ->
      match
        Option.bind set_members (fun seeds -> List.assoc_opt m.spec_name seeds)
      with
      | Some members ->
        List.iter
          (fun (mem, tgt) -> Hashtbl.replace m.members mem tgt)
          members
      | None -> reconcile_set store m)
    sets;
  Object_store.subscribe store (observe t);
  t
