(** One heap file per class extent — type-clustered placement.

    A segment is [<class>.heap] inside the database directory: page 0 is
    a header (magic, format version, class name), data pages 1..n hold
    that class's records and nothing else, so a class scan touches a
    contiguous, minimal run of pages (the clustering argument of Darmont
    & Gruenwald).  Reads past the current end yield blank images (the
    buffer pool formats them as empty pages); writes extend the file.

    Page reads and writes are serialized per segment (seek + I/O under a
    mutex), so a prefetcher domain can read while the pool evicts. *)

type t

exception Format_error of string
(** The heap file exists but is foreign, truncated, or the wrong class. *)

val open_seg : dir:string -> cls:string -> t
(** Open [dir/<cls>.heap], creating it (with its header page) if absent.
    @raise Format_error on a bad header. *)

val cls : t -> string

val data_pages : t -> int
(** Data pages on disk (excluding the header page).  Monotone under
    {!write_page}. *)

val read_page : t -> int -> bytes -> unit
(** [read_page t n buf] fills [buf] with data page [n >= 1]; pages past
    the end read as zeroes. *)

val write_page : t -> int -> bytes -> unit
(** Write data page [n >= 1], extending the file as needed. *)

val rewrite : t -> bytes array -> unit
(** [rewrite t pages] atomically replaces the whole heap with the given
    data-page images (page [i] of the array becomes data page [i+1]):
    header + pages go to a temp file, [fsync], then rename over the
    segment — a crash leaves the old heap or the complete new one.
    The clustering vacuum uses this to rewrite a class in traversal
    order.  Cached images of the old pages must be dropped by the
    caller ({!Buffer_pool.drop_class}) {e before} the rewrite, or stale
    dirty pages could later flush into the new file. *)

val reset : t -> unit
(** Truncate back to the bare header page (zero data pages) and [fsync] —
    the vacuum path empties the heap once its records have moved to the
    columnar segment.  Any cached images of the old pages must be
    invalidated by the caller ({!Buffer_pool.drop_class}). *)

val sync : t -> unit
(** [fsync] the heap file. *)

val close : t -> unit
