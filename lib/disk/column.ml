(* Column chunks: a batch of records decomposed into per-property
   columns, the unit of the columnar segment format.

   Payload layout (all integers LEB128 via [Codec]):

     uvarint nrows
     uvarint oid_bytes ∥ oid column      -- first id absolute, then deltas
     uvarint ncols
     ncols × (string name ∥ uvarint col_len)   -- the column directory
     concatenated column bytes                  -- offsets implied by lens

   Each column starts with one encoding byte and a presence bitmap of
   ceil(nrows/8) bytes (bit i set = row i carries the property; an absent
   property is distinct from an explicit Null).  Present values follow:

     enc 0 (generic)  tagged [Codec.write_value]s — the fallback for
                      mixed-type columns and any column holding explicit
                      Nulls;
     enc 1 (int)      zigzag varints, one per present row;
     enc 2 (dict)     uvarint table size, the distinct strings in first-
                      occurrence order, then one uvarint code per present
                      row.

   The directory-before-bytes layout lets a reader decode the chunk
   header (ids + directory) and then touch only the columns a scan needs
   — the byte and value counts it charges come from [col.clen] and the
   bitmap, never from whole-chunk decoding.  Framing (length prefix +
   CRC-32 trailer) belongs to [Colseg]; this module is the pure payload
   codec and fails closed with [Codec.Corrupt] on any malformed input. *)

open Soqm_vml

let corrupt fmt = Printf.ksprintf (fun s -> raise (Codec.Corrupt s)) fmt

type column = { cname : string; coff : int; clen : int }

type chunk = {
  nrows : int;
  ids : int array;  (** ascending OID ids, one per row *)
  columns : column array;  (** directory, sorted by [cname] *)
  payload : string;
  meta_bytes : int;
      (** bytes of header ∥ oid column ∥ directory — what any scan of the
          chunk must decode before touching column bytes *)
}

let enc_generic = 0
let enc_int = 1
let enc_dict = 2
let bitmap_bytes nrows = (nrows + 7) / 8

(* ------------------------------------------------------------------ *)
(* encoding                                                            *)
(* ------------------------------------------------------------------ *)

(* Pick the tightest encoding the present values allow.  Explicit Nulls
   force the generic encoding so typed columns never smuggle a Null
   through an int/string decoder. *)
let encoding_of values =
  let all p = List.for_all (fun (_, v) -> p v) values in
  if values = [] then enc_generic
  else if all (function Value.Int _ -> true | _ -> false) then enc_int
  else if all (function Value.Str _ -> true | _ -> false) then enc_dict
  else enc_generic

let encode_column ~nrows entries =
  (* [entries]: (row index, value) pairs, ascending by row *)
  let buf = Buffer.create 256 in
  let enc = encoding_of entries in
  Buffer.add_char buf (Char.chr enc);
  let bitmap = Bytes.make (bitmap_bytes nrows) '\000' in
  List.iter
    (fun (i, _) ->
      let b = Char.code (Bytes.get bitmap (i lsr 3)) in
      Bytes.set bitmap (i lsr 3) (Char.chr (b lor (1 lsl (i land 7)))))
    entries;
  Buffer.add_bytes buf bitmap;
  (if enc = enc_int then
     List.iter
       (fun (_, v) ->
         match v with
         | Value.Int n -> Codec.write_varint buf n
         | _ -> assert false)
       entries
   else if enc = enc_dict then (
     let table = Hashtbl.create 16 and order = ref [] and next = ref 0 in
     let code s =
       match Hashtbl.find_opt table s with
       | Some c -> c
       | None ->
         let c = !next in
         Hashtbl.add table s c;
         order := s :: !order;
         incr next;
         c
     in
     let codes =
       List.map
         (fun (_, v) ->
           match v with Value.Str s -> code s | _ -> assert false)
         entries
     in
     Codec.write_uvarint buf !next;
     List.iter (Codec.write_string buf) (List.rev !order);
     List.iter (Codec.write_uvarint buf) codes)
   else List.iter (fun (_, v) -> Codec.write_value buf v) entries);
  Buffer.contents buf

let encode rows =
  let nrows = Array.length rows in
  let buf = Buffer.create 4096 in
  Codec.write_uvarint buf nrows;
  (* oid column: first id absolute, then strictly positive deltas *)
  let ob = Buffer.create 64 in
  let prev = ref (-1) in
  Array.iteri
    (fun i (id, _) ->
      if id < 0 then invalid_arg "Column.encode: negative oid";
      if i = 0 then Codec.write_uvarint ob id
      else if id <= !prev then invalid_arg "Column.encode: oids not ascending"
      else Codec.write_uvarint ob (id - !prev);
      prev := id)
    rows;
  Codec.write_uvarint buf (Buffer.length ob);
  Buffer.add_buffer buf ob;
  (* decompose rows into columns, sorted by property name *)
  let by_name = Hashtbl.create 16 in
  Array.iteri
    (fun i (_, props) ->
      List.iter
        (fun (name, v) ->
          let prior =
            Option.value ~default:[] (Hashtbl.find_opt by_name name)
          in
          Hashtbl.replace by_name name ((i, v) :: prior))
        props)
    rows;
  let names =
    List.sort String.compare
      (Hashtbl.fold (fun name _ acc -> name :: acc) by_name [])
  in
  let cols =
    List.map
      (fun name ->
        let entries = List.rev (Hashtbl.find by_name name) in
        (name, encode_column ~nrows entries))
      names
  in
  Codec.write_uvarint buf (List.length cols);
  List.iter
    (fun (name, bytes) ->
      Codec.write_string buf name;
      Codec.write_uvarint buf (String.length bytes))
    cols;
  List.iter (fun (_, bytes) -> Buffer.add_string buf bytes) cols;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* decoding                                                            *)
(* ------------------------------------------------------------------ *)

let decode payload =
  let limit = String.length payload in
  let c = Codec.cursor payload in
  let nrows = Codec.read_uvarint c in
  if nrows < 0 || nrows > limit + 1 then corrupt "chunk row count %d" nrows;
  let oid_bytes = Codec.read_uvarint c in
  if oid_bytes < 0 || Codec.pos c + oid_bytes > limit then
    corrupt "truncated oid column";
  let oid_end = Codec.pos c + oid_bytes in
  let ids = Array.make nrows 0 in
  let prev = ref 0 in
  for i = 0 to nrows - 1 do
    if Codec.pos c >= oid_end then corrupt "short oid column";
    let d = Codec.read_uvarint c in
    let id = if i = 0 then d else !prev + d in
    if i > 0 && id <= !prev then corrupt "oid column not ascending";
    ids.(i) <- id;
    prev := id
  done;
  if Codec.pos c <> oid_end then corrupt "oid column trailing bytes";
  let ncols = Codec.read_uvarint c in
  if ncols < 0 || ncols > limit then corrupt "chunk column count %d" ncols;
  let dir =
    Array.init ncols (fun _ ->
        let name = Codec.read_string c in
        let len = Codec.read_uvarint c in
        if len < 0 then corrupt "negative column length";
        (name, len))
  in
  let meta_bytes = Codec.pos c in
  let off = ref meta_bytes in
  let columns =
    Array.map
      (fun (cname, clen) ->
        let coff = !off in
        if coff + clen > limit then corrupt "truncated column %s" cname;
        off := coff + clen;
        { cname; coff; clen })
      dir
  in
  if !off <> limit then corrupt "chunk trailing bytes";
  Array.iteri
    (fun i col ->
      if i > 0 && String.compare columns.(i - 1).cname col.cname >= 0 then
        corrupt "column directory not sorted")
    columns;
  { nrows; ids; columns; payload; meta_bytes }

let find chunk name =
  (* directory is sorted: binary search *)
  let cols = chunk.columns in
  let rec go lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let cmp = String.compare name cols.(mid).cname in
      if cmp = 0 then Some cols.(mid)
      else if cmp < 0 then go lo mid
      else go (mid + 1) hi
  in
  go 0 (Array.length cols)

(* Present-row indexes from a column's bitmap, ascending. *)
let presence chunk col =
  let base = col.coff + 1 in
  if col.clen < 1 + bitmap_bytes chunk.nrows then
    corrupt "column %s shorter than its bitmap" col.cname;
  let out = ref [] in
  for i = chunk.nrows - 1 downto 0 do
    let b = Char.code chunk.payload.[base + (i lsr 3)] in
    if b land (1 lsl (i land 7)) <> 0 then out := i :: !out
  done;
  !out

let read_column chunk col =
  let present = presence chunk col in
  let enc = Char.code chunk.payload.[col.coff] in
  let stop = col.coff + col.clen in
  let c =
    Codec.cursor ~pos:(col.coff + 1 + bitmap_bytes chunk.nrows) chunk.payload
  in
  let out = Array.make chunk.nrows None in
  let fill read = List.iter (fun i -> out.(i) <- Some (read ())) present in
  (if enc = enc_int then fill (fun () -> Value.Int (Codec.read_varint c))
   else if enc = enc_dict then (
     let n = Codec.read_uvarint c in
     if n < 0 || n > col.clen then corrupt "dictionary size %d" n;
     let table = Array.init n (fun _ -> Codec.read_string c) in
     fill (fun () ->
         let code = Codec.read_uvarint c in
         if code < 0 || code >= n then corrupt "dictionary code %d" code;
         Value.Str table.(code)))
   else if enc = enc_generic then fill (fun () -> Codec.read_value c)
   else corrupt "unknown column encoding %d" enc);
  if Codec.pos c > stop then corrupt "column %s overruns its extent" col.cname;
  out

(* Reassemble full records; properties come back sorted by name (the
   on-disk column order), which the store treats as canonical. *)
let rows chunk =
  let cols =
    Array.map (fun col -> (col.cname, read_column chunk col)) chunk.columns
  in
  Array.mapi
    (fun i id ->
      let props = ref [] in
      for k = Array.length cols - 1 downto 0 do
        let name, values = cols.(k) in
        match values.(i) with
        | Some v -> props := (name, v) :: !props
        | None -> ()
      done;
      (id, !props))
    chunk.ids
