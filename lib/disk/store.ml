open Soqm_vml
module Pool = Soqm_physical.Pool

exception Format_error of string
exception Locked of string

let format_error fmt = Printf.ksprintf (fun s -> raise (Format_error s)) fmt

type loc = { mutable lpage : int; mutable lslot : int }

type t = {
  dir : string;
  schema : Schema.t;
  counters : Counters.t;
  pool : Buffer_pool.t;
  wal : Wal.t;
  lockfd : Unix.file_descr;
  segments : (string, Segment.t) Hashtbl.t;
  locs : (Oid.t, loc) Hashtbl.t;
  alloc : (string, int) Hashtbl.t;  (* cls -> allocated data pages *)
  fill : (string, int) Hashtbl.t;  (* cls -> current append page *)
  mutable next_id : int;
  mutable recovered : int;
  mutable group : Group_commit.t option;
  m : Mutex.t;
}

let meta_magic = "SOQM-DISK"
let meta_version = 1
let meta_file dir = Filename.concat dir "meta"
let wal_file dir = Filename.concat dir "wal"
let lock_file dir = Filename.concat dir "lock"

(* POSIX record lock on [dir/lock]: held for the store's lifetime,
   released by [close] and — crucially — by the kernel when the process
   dies, so a crash never leaves a stale lock behind.  The lock is
   per-process (fcntl semantics), so the same process may reopen the
   directory after [close] (the crash-recovery tests do), while a second
   process fails fast with {!Locked}. *)
let acquire_lock dir =
  let path = lock_file dir in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  try
    Unix.lockf fd Unix.F_TLOCK 0;
    (* record the holder for the error message a second process sees *)
    Unix.ftruncate fd 0;
    ignore (Unix.lseek fd 0 Unix.SEEK_SET);
    let pid = Printf.sprintf "%d\n" (Unix.getpid ()) in
    ignore (Unix.write_substring fd pid 0 (String.length pid));
    fd
  with Unix.Unix_error ((EAGAIN | EACCES), _, _) ->
    let holder =
      try
        let ic = open_in path in
        let line =
          Fun.protect ~finally:(fun () -> close_in ic) (fun () -> input_line ic)
        in
        Printf.sprintf " (held by pid %s)" (String.trim line)
      with _ -> ""
    in
    Unix.close fd;
    raise
      (Locked
         (Printf.sprintf "%s: database is locked by another process%s" dir
            holder))

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let allocated t cls = Option.value ~default:0 (Hashtbl.find_opt t.alloc cls)

(* ------------------------------------------------------------------ *)
(* meta file                                                           *)
(* ------------------------------------------------------------------ *)

let write_meta ~dir ~schema ~next_id =
  let buf = Buffer.create 512 in
  Buffer.add_string buf meta_magic;
  Codec.write_uvarint buf meta_version;
  Codec.write_uvarint buf next_id;
  Codec.write_schema buf schema;
  let tmp = meta_file dir ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc buf);
  Sys.rename tmp (meta_file dir)

let read_meta dir =
  let path = meta_file dir in
  if not (Sys.file_exists path) then
    format_error "%s: not a soqm database directory (no meta file)" dir;
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  if
    not
      (String.length s >= String.length meta_magic
      && String.equal (String.sub s 0 (String.length meta_magic)) meta_magic)
  then format_error "%s: not a soqm database (bad meta magic)" dir;
  try
    let c = Codec.cursor ~pos:(String.length meta_magic) s in
    let v = Codec.read_uvarint c in
    if v <> meta_version then
      format_error "%s: unsupported database version %d (want %d)" dir v
        meta_version;
    let next_id = Codec.read_uvarint c in
    let schema = Codec.read_schema c in
    (schema, next_id)
  with Codec.Corrupt msg -> format_error "%s: corrupt meta file (%s)" dir msg

(* ------------------------------------------------------------------ *)
(* record codec: serial + properties; the class is the segment's        *)
(* ------------------------------------------------------------------ *)

let encode_record oid props =
  let buf = Buffer.create 128 in
  Codec.write_uvarint buf (Oid.id oid);
  Codec.write_props buf props;
  Buffer.contents buf

let decode_record ~cls s =
  let c = Codec.cursor s in
  let id = Codec.read_uvarint c in
  let props = Codec.read_props c in
  (Oid.make ~cls ~id, props)

let decode_id s = Codec.read_uvarint (Codec.cursor s)

(* ------------------------------------------------------------------ *)
(* construction                                                        *)
(* ------------------------------------------------------------------ *)

let make ~dir ~schema ~pool_pages ~counters ~wal ~lockfd =
  let segments = Hashtbl.create 8 in
  List.iter
    (fun cls -> Hashtbl.replace segments cls (Segment.open_seg ~dir ~cls))
    (Schema.class_names schema);
  let read_page ~cls ~page buf =
    match Hashtbl.find_opt segments cls with
    | Some s -> Segment.read_page s page buf
    | None -> format_error "%s: no segment for class %s" dir cls
  in
  let write_page ~cls ~page buf =
    match Hashtbl.find_opt segments cls with
    | Some s -> Segment.write_page s page buf
    | None -> format_error "%s: no segment for class %s" dir cls
  in
  let pool = Buffer_pool.create ~pages:pool_pages ~counters ~read_page ~write_page in
  let t =
    {
      dir;
      schema;
      counters;
      pool;
      wal;
      lockfd;
      segments;
      locs = Hashtbl.create 1024;
      alloc = Hashtbl.create 8;
      fill = Hashtbl.create 8;
      next_id = 0;
      recovered = 0;
      group = None;
      m = Mutex.create ();
    }
  in
  Hashtbl.iter
    (fun cls seg -> Hashtbl.replace t.alloc cls (Segment.data_pages seg))
    segments;
  t

let create ?(pool_pages = 256) ?counters ~schema dir =
  if Sys.file_exists dir && not (Sys.is_directory dir) then
    format_error "%s: exists and is not a directory" dir;
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  (* take the directory lock before dropping a previous database: a live
     store in this directory must not lose its files under it *)
  let lockfd = acquire_lock dir in
  (* overwrite semantics: drop any previous database in this directory *)
  Array.iter
    (fun f ->
      if
        String.equal f "meta" || String.equal f "wal"
        || Filename.check_suffix f ".heap"
      then Sys.remove (Filename.concat dir f))
    (Sys.readdir dir);
  let counters = Option.value ~default:(Counters.create ()) counters in
  let wal, _ = Wal.open_log ~counters (wal_file dir) in
  let t = make ~dir ~schema ~pool_pages ~counters ~wal ~lockfd in
  write_meta ~dir ~schema ~next_id:t.next_id;
  t

(* ------------------------------------------------------------------ *)
(* page placement                                                      *)
(* ------------------------------------------------------------------ *)

let insert_record t oid props =
  let cls = Oid.cls oid in
  let record = encode_record oid props in
  if String.length record > Page.capacity then
    format_error "record %s exceeds the page capacity (%d > %d bytes)"
      (Oid.to_string oid) (String.length record) Page.capacity;
  let place page =
    let data = Buffer_pool.pin t.pool ~cls ~page in
    if Page.has_room data (String.length record) then (
      let slot = Page.insert data record in
      Buffer_pool.unpin t.pool ~cls ~page ~dirty:true;
      Some slot)
    else (
      Buffer_pool.unpin t.pool ~cls ~page ~dirty:false;
      None)
  in
  let page, slot =
    let fillp = Option.value ~default:0 (Hashtbl.find_opt t.fill cls) in
    match if fillp >= 1 then place fillp else None with
    | Some slot -> (fillp, slot)
    | None ->
      let fresh = allocated t cls + 1 in
      Hashtbl.replace t.alloc cls fresh;
      Hashtbl.replace t.fill cls fresh;
      (match place fresh with
      | Some slot -> (fresh, slot)
      | None -> assert false (* an empty page holds any record <= capacity *))
  in
  Hashtbl.replace t.locs oid { lpage = page; lslot = slot };
  t.next_id <- max t.next_id (Oid.id oid + 1)

let delete_record t oid =
  match Hashtbl.find_opt t.locs oid with
  | None -> ()
  | Some loc ->
    let cls = Oid.cls oid in
    let data = Buffer_pool.pin t.pool ~cls ~page:loc.lpage in
    Page.delete data loc.lslot;
    Buffer_pool.unpin t.pool ~cls ~page:loc.lpage ~dirty:true;
    Hashtbl.remove t.locs oid

let read_record t oid =
  match Hashtbl.find_opt t.locs oid with
  | None -> None
  | Some loc ->
    let cls = Oid.cls oid in
    let data = Buffer_pool.pin t.pool ~cls ~page:loc.lpage in
    let r = Page.read data loc.lslot in
    Buffer_pool.unpin t.pool ~cls ~page:loc.lpage ~dirty:false;
    (match r with
    | None -> None
    | Some s -> Some (snd (decode_record ~cls s)))

(* idempotent redo application: an insert of a live OID replaces its
   record, an update of a dead OID creates it, deletes of absent OIDs
   are no-ops — any committed suffix may already be on the pages *)
let apply_op t (op : Wal.op) =
  match op with
  | Wal.Insert { oid; props } ->
    delete_record t oid;
    insert_record t oid props
  | Wal.Update { oid; prop; value } ->
    let props = Option.value ~default:[] (read_record t oid) in
    let props = (prop, value) :: List.remove_assoc prop props in
    delete_record t oid;
    insert_record t oid props
  | Wal.Delete { oid } -> delete_record t oid

let apply t ops =
  locked t (fun () ->
      Wal.commit t.wal ops;
      List.iter (apply_op t) ops)

(* ------------------------------------------------------------------ *)
(* group commit                                                        *)
(* ------------------------------------------------------------------ *)

(* The queue is created on first use; its flush takes the store mutex
   once per {e group}, writes every batch with a single WAL append +
   fsync, then applies them to the pooled pages in commit order. *)
let group t =
  locked t (fun () ->
      match t.group with
      | Some g -> g
      | None ->
        let g =
          Group_commit.create
            ~flush:(fun batches ->
              locked t (fun () ->
                  Wal.commit_many t.wal batches;
                  List.iter (fun ops -> List.iter (apply_op t) ops) batches))
            ()
        in
        t.group <- Some g;
        g)

let enqueue_group t ops = Group_commit.enqueue (group t) ops
let wait_group t ticket = Group_commit.wait (group t) ticket
let apply_group t ops = Group_commit.submit (group t) ops
let set_group_window t w = Group_commit.set_window (group t) w

(* ------------------------------------------------------------------ *)
(* open + recovery                                                     *)
(* ------------------------------------------------------------------ *)

(* Directory rebuild reads raw pages with a scratch buffer (physical
   reconstruction, not query traffic: the pool and its counters stay
   cold for the workload that follows). *)
let rebuild_directory t =
  let scratch = Bytes.create Page.size in
  Hashtbl.iter
    (fun cls seg ->
      for page = 1 to Segment.data_pages seg do
        Segment.read_page seg page scratch;
        if not (Page.is_blank scratch) then
          Page.iter scratch (fun slot record ->
              match decode_id record with
              | id ->
                let oid = Oid.make ~cls ~id in
                (* a relocated record can appear twice only if a crash hit
                   between page writes; the higher page wins deterministically *)
                (match Hashtbl.find_opt t.locs oid with
                | Some loc when loc.lpage > page -> ()
                | _ ->
                  Hashtbl.replace t.locs oid { lpage = page; lslot = slot });
                t.next_id <- max t.next_id (id + 1)
              | exception Codec.Corrupt msg ->
                format_error "%s/%s.heap page %d slot %d: %s" t.dir cls page
                  slot msg)
      done)
    t.segments

let open_dir ?(pool_pages = 256) ?counters dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    format_error "%s: not a soqm database directory" dir;
  let schema, meta_next_id = read_meta dir in
  let lockfd = acquire_lock dir in
  let counters = Option.value ~default:(Counters.create ()) counters in
  let wal, batches =
    try Wal.open_log ~counters (wal_file dir)
    with e ->
      Unix.close lockfd;
      raise e
  in
  let t = make ~dir ~schema ~pool_pages ~counters ~wal ~lockfd in
  rebuild_directory t;
  t.next_id <- max t.next_id meta_next_id;
  (* fill pointers resume at each segment's last page *)
  Hashtbl.iter (fun cls pages -> if pages > 0 then Hashtbl.replace t.fill cls pages) t.alloc;
  List.iter
    (fun ops ->
      List.iter (apply_op t) ops;
      t.recovered <- t.recovered + 1)
    batches;
  t

let checkpoint t =
  locked t (fun () ->
      Buffer_pool.flush t.pool;
      Hashtbl.iter (fun _ seg -> Segment.sync seg) t.segments;
      write_meta ~dir:t.dir ~schema:t.schema ~next_id:t.next_id;
      Wal.truncate t.wal)

let close ?(checkpoint = true) t =
  if checkpoint then
    locked t (fun () ->
        Buffer_pool.flush t.pool;
        Hashtbl.iter (fun _ seg -> Segment.sync seg) t.segments;
        write_meta ~dir:t.dir ~schema:t.schema ~next_id:t.next_id;
        Wal.truncate t.wal);
  Hashtbl.iter (fun _ seg -> Segment.close seg) t.segments;
  Wal.close t.wal;
  Unix.close t.lockfd

(* ------------------------------------------------------------------ *)
(* reads and scans                                                     *)
(* ------------------------------------------------------------------ *)

let fetch t oid =
  locked t (fun () ->
      match read_record t oid with Some props -> props | None -> raise Not_found)

let mem t oid = locked t (fun () -> Hashtbl.mem t.locs oid)

let extent t cls =
  locked t (fun () ->
      Hashtbl.fold
        (fun oid _ acc -> if String.equal (Oid.cls oid) cls then oid :: acc else acc)
        t.locs []
      |> List.sort (fun a b -> Int.compare (Oid.id a) (Oid.id b)))

(* One in-order pass over a class's pages through the pool.  [f] runs on
   the caller; with [prefetch] a helper domain pins pages ahead of the
   consumer inside a fixed window, so segment reads overlap decoding. *)
let prefetch_window = 8

let page_pass ?(prefetch = false) t cls ~f =
  let n = allocated t cls in
  if n = 0 then 0
  else begin
    let consume () =
      for page = 1 to n do
        let data = Buffer_pool.pin t.pool ~cls ~page in
        f page data;
        Buffer_pool.unpin t.pool ~cls ~page ~dirty:false
      done
    in
    if (not prefetch) || n <= 2 then consume ()
    else begin
      let next = Atomic.make 1 in
      let stop = Atomic.make false in
      Pool.run (Pool.global ()) ~jobs:2 (fun w ->
          if w = 0 then
            Fun.protect
              ~finally:(fun () -> Atomic.set stop true)
              (fun () ->
                for page = 1 to n do
                  let data = Buffer_pool.pin t.pool ~cls ~page in
                  f page data;
                  Buffer_pool.unpin t.pool ~cls ~page ~dirty:false;
                  Atomic.set next (page + 1)
                done)
          else
            (* read ahead of the consumer, never past the window *)
            let rec go page =
              if page <= n && not (Atomic.get stop) then
                if page < Atomic.get next + prefetch_window then begin
                  (try
                     ignore (Buffer_pool.pin t.pool ~cls ~page);
                     Buffer_pool.unpin t.pool ~cls ~page ~dirty:false
                   with Failure _ -> ());
                  go (page + 1)
                end
                else begin
                  Domain.cpu_relax ();
                  go page
                end
            in
            go 1)
    end;
    n
  end

let scan ?prefetch t cls =
  let rows = ref [] in
  let pages =
    page_pass ?prefetch t cls ~f:(fun page data ->
        Page.iter data (fun slot record ->
            match decode_record ~cls record with
            | oid, props -> (
              (* a crash between page writes can leave a stale copy of a
                 relocated record; only the slot the directory points at
                 is the live one *)
              match Hashtbl.find_opt t.locs oid with
              | Some loc when loc.lpage = page && loc.lslot = slot ->
                rows := (oid, props) :: !rows
              | _ -> ())
            | exception Codec.Corrupt msg ->
              format_error "%s/%s.heap page %d slot %d: %s" t.dir cls page slot
                msg))
  in
  (* page order is insertion order except for relocated (updated) rows;
     sorting by serial restores allocation order exactly *)
  let rows =
    List.sort (fun (a, _) (b, _) -> Int.compare (Oid.id a) (Oid.id b)) !rows
  in
  (rows, pages)

let scan_all ?prefetch t =
  let rows, pages =
    List.fold_left
      (fun (rows, pages) cls ->
        let r, p = scan ?prefetch t cls in
        (r :: rows, pages + p))
      ([], 0)
      (Schema.class_names t.schema)
  in
  let rows =
    List.concat rows
    |> List.sort (fun (a, _) (b, _) -> Int.compare (Oid.id a) (Oid.id b))
  in
  (rows, pages)

let touch_scan ?prefetch t cls = page_pass ?prefetch t cls ~f:(fun _ _ -> ())

let bulk_load t ~next_id objects =
  locked t (fun () ->
      List.iter (fun (oid, props) -> insert_record t oid props) objects;
      t.next_id <- max t.next_id next_id);
  checkpoint t

(* ------------------------------------------------------------------ *)
(* introspection                                                       *)
(* ------------------------------------------------------------------ *)

let schema t = t.schema
let counters t = t.counters
let next_id t = t.next_id
let data_pages t cls = allocated t cls
let total_data_pages t = Hashtbl.fold (fun _ n acc -> acc + n) t.alloc 0
let wal_bytes t = Wal.size t.wal
let pool_pages t = Buffer_pool.capacity t.pool
let recovered_batches t = t.recovered
