open Soqm_vml
module Pool = Soqm_physical.Pool

exception Format_error of string
exception Locked of string

let format_error fmt = Printf.ksprintf (fun s -> raise (Format_error s)) fmt

type loc = { mutable lpage : int; mutable lslot : int }

type t = {
  dir : string;
  schema : Schema.t;
  counters : Counters.t;
  pool : Buffer_pool.t;
  wal : Wal.t;
  lockfd : Unix.file_descr;
  segments : (string, Segment.t) Hashtbl.t;
  locs : (Oid.t, loc) Hashtbl.t;
  alloc : (string, int) Hashtbl.t;  (* cls -> allocated data pages *)
  fill : (string, int) Hashtbl.t;  (* cls -> current append page *)
  (* columnar side: flagged classes keep their vacuumed base image in a
     [Colseg]; the heap segment holds only post-vacuum DML (heap shadows
     columnar), and [dead] tombstones hide deleted columnar rows *)
  columnar : (string, unit) Hashtbl.t;
  cols : (string, Colseg.t) Hashtbl.t;
  dead : (string, (int, unit) Hashtbl.t) Hashtbl.t;
  mutable next_id : int;
  mutable recovered : int;
  mutable group : Group_commit.t option;
  m : Mutex.t;
}

let meta_magic = "SOQM-DISK"
let meta_version = 1
let meta_file dir = Filename.concat dir "meta"
let wal_file dir = Filename.concat dir "wal"
let lock_file dir = Filename.concat dir "lock"

(* POSIX record lock on [dir/lock]: held for the store's lifetime,
   released by [close] and — crucially — by the kernel when the process
   dies, so a crash never leaves a stale lock behind.  The lock is
   per-process (fcntl semantics), so the same process may reopen the
   directory after [close] (the crash-recovery tests do), while a second
   process fails fast with {!Locked}. *)
let acquire_lock dir =
  let path = lock_file dir in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  try
    Unix.lockf fd Unix.F_TLOCK 0;
    (* record the holder for the error message a second process sees *)
    Unix.ftruncate fd 0;
    ignore (Unix.lseek fd 0 Unix.SEEK_SET);
    let pid = Printf.sprintf "%d\n" (Unix.getpid ()) in
    ignore (Unix.write_substring fd pid 0 (String.length pid));
    fd
  with Unix.Unix_error ((EAGAIN | EACCES), _, _) ->
    let holder =
      try
        let ic = open_in path in
        let line =
          Fun.protect ~finally:(fun () -> close_in ic) (fun () -> input_line ic)
        in
        Printf.sprintf " (held by pid %s)" (String.trim line)
      with _ -> ""
    in
    Unix.close fd;
    raise
      (Locked
         (Printf.sprintf "%s: database is locked by another process%s" dir
            holder))

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let allocated t cls = Option.value ~default:0 (Hashtbl.find_opt t.alloc cls)

let dead_tbl t cls =
  match Hashtbl.find_opt t.dead cls with
  | Some d -> d
  | None ->
    let d = Hashtbl.create 16 in
    Hashtbl.replace t.dead cls d;
    d

(* A columnar row is live unless tombstoned or shadowed by a heap copy
   (post-vacuum updates re-insert into the heap; the heap always wins). *)
let col_live t cls id =
  (not (Hashtbl.mem (dead_tbl t cls) id))
  && not (Hashtbl.mem t.locs (Oid.make ~cls ~id))

(* ------------------------------------------------------------------ *)
(* meta file                                                           *)
(* ------------------------------------------------------------------ *)

let write_meta ~dir ~schema ~next_id ~columnar =
  let buf = Buffer.create 512 in
  Buffer.add_string buf meta_magic;
  Codec.write_uvarint buf meta_version;
  Codec.write_uvarint buf next_id;
  Codec.write_schema buf schema;
  (* the columnar-class list rides after the schema; metas written before
     columnar segments existed simply end here, which reads as "none" *)
  Codec.write_uvarint buf (List.length columnar);
  List.iter (Codec.write_string buf) (List.sort String.compare columnar);
  let tmp = meta_file dir ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc buf);
  Sys.rename tmp (meta_file dir)

let read_meta dir =
  let path = meta_file dir in
  if not (Sys.file_exists path) then
    format_error "%s: not a soqm database directory (no meta file)" dir;
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  if
    not
      (String.length s >= String.length meta_magic
      && String.equal (String.sub s 0 (String.length meta_magic)) meta_magic)
  then format_error "%s: not a soqm database (bad meta magic)" dir;
  try
    let c = Codec.cursor ~pos:(String.length meta_magic) s in
    let v = Codec.read_uvarint c in
    if v <> meta_version then
      format_error "%s: unsupported database version %d (want %d)" dir v
        meta_version;
    let next_id = Codec.read_uvarint c in
    let schema = Codec.read_schema c in
    let columnar =
      if Codec.pos c >= String.length s then [] (* pre-columnar meta *)
      else
        let n = Codec.read_uvarint c in
        List.init n (fun _ -> Codec.read_string c)
    in
    (schema, next_id, columnar)
  with Codec.Corrupt msg -> format_error "%s: corrupt meta file (%s)" dir msg

(* ------------------------------------------------------------------ *)
(* record codec: serial + properties; the class is the segment's        *)
(* ------------------------------------------------------------------ *)

let encode_record oid props =
  let buf = Buffer.create 128 in
  Codec.write_uvarint buf (Oid.id oid);
  Codec.write_props buf props;
  Buffer.contents buf

let decode_record ~cls s =
  let c = Codec.cursor s in
  let id = Codec.read_uvarint c in
  let props = Codec.read_props c in
  (Oid.make ~cls ~id, props)

let decode_id s = Codec.read_uvarint (Codec.cursor s)

(* ------------------------------------------------------------------ *)
(* construction                                                        *)
(* ------------------------------------------------------------------ *)

let make ~dir ~schema ~pool_pages ~counters ~wal ~lockfd =
  let segments = Hashtbl.create 8 in
  List.iter
    (fun cls -> Hashtbl.replace segments cls (Segment.open_seg ~dir ~cls))
    (Schema.class_names schema);
  let read_page ~cls ~page buf =
    match Hashtbl.find_opt segments cls with
    | Some s -> Segment.read_page s page buf
    | None -> format_error "%s: no segment for class %s" dir cls
  in
  let write_page ~cls ~page buf =
    match Hashtbl.find_opt segments cls with
    | Some s -> Segment.write_page s page buf
    | None -> format_error "%s: no segment for class %s" dir cls
  in
  let pool = Buffer_pool.create ~pages:pool_pages ~counters ~read_page ~write_page in
  let t =
    {
      dir;
      schema;
      counters;
      pool;
      wal;
      lockfd;
      segments;
      locs = Hashtbl.create 1024;
      alloc = Hashtbl.create 8;
      fill = Hashtbl.create 8;
      columnar = Hashtbl.create 4;
      cols = Hashtbl.create 4;
      dead = Hashtbl.create 4;
      next_id = 0;
      recovered = 0;
      group = None;
      m = Mutex.create ();
    }
  in
  Hashtbl.iter
    (fun cls seg -> Hashtbl.replace t.alloc cls (Segment.data_pages seg))
    segments;
  t

let create ?(pool_pages = 256) ?counters ~schema dir =
  if Sys.file_exists dir && not (Sys.is_directory dir) then
    format_error "%s: exists and is not a directory" dir;
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  (* take the directory lock before dropping a previous database: a live
     store in this directory must not lose its files under it *)
  let lockfd = acquire_lock dir in
  (* overwrite semantics: drop any previous database in this directory *)
  Array.iter
    (fun f ->
      if
        String.equal f "meta" || String.equal f "wal"
        || Filename.check_suffix f ".heap"
        || Filename.check_suffix f ".col"
        || Filename.check_suffix f ".dead"
        || Filename.check_suffix f ".tmp"
      then Sys.remove (Filename.concat dir f))
    (Sys.readdir dir);
  let counters = Option.value ~default:(Counters.create ()) counters in
  let wal, _ = Wal.open_log ~counters (wal_file dir) in
  let t = make ~dir ~schema ~pool_pages ~counters ~wal ~lockfd in
  write_meta ~dir ~schema ~next_id:t.next_id ~columnar:[];
  t

(* ------------------------------------------------------------------ *)
(* page placement                                                      *)
(* ------------------------------------------------------------------ *)

let insert_record t oid props =
  let cls = Oid.cls oid in
  let record = encode_record oid props in
  if String.length record > Page.capacity then
    format_error "record %s exceeds the page capacity (%d > %d bytes)"
      (Oid.to_string oid) (String.length record) Page.capacity;
  let place page =
    let data = Buffer_pool.pin t.pool ~cls ~page in
    if Page.has_room data (String.length record) then (
      let slot = Page.insert data record in
      Buffer_pool.unpin t.pool ~cls ~page ~dirty:true;
      Some slot)
    else (
      Buffer_pool.unpin t.pool ~cls ~page ~dirty:false;
      None)
  in
  let page, slot =
    let fillp = Option.value ~default:0 (Hashtbl.find_opt t.fill cls) in
    match if fillp >= 1 then place fillp else None with
    | Some slot -> (fillp, slot)
    | None ->
      let fresh = allocated t cls + 1 in
      Hashtbl.replace t.alloc cls fresh;
      Hashtbl.replace t.fill cls fresh;
      (match place fresh with
      | Some slot -> (fresh, slot)
      | None -> assert false (* an empty page holds any record <= capacity *))
  in
  Hashtbl.replace t.locs oid { lpage = page; lslot = slot };
  t.next_id <- max t.next_id (Oid.id oid + 1)

let delete_record t oid =
  let cls = Oid.cls oid in
  (* tombstone any columnar copy first: once an OID is deleted (or about
     to be replaced), the vacuumed row must never resurrect *)
  (match Hashtbl.find_opt t.cols cls with
  | Some cs when Colseg.mem cs (Oid.id oid) ->
    Hashtbl.replace (dead_tbl t cls) (Oid.id oid) ()
  | _ -> ());
  match Hashtbl.find_opt t.locs oid with
  | None -> ()
  | Some loc ->
    let data = Buffer_pool.pin t.pool ~cls ~page:loc.lpage in
    Page.delete data loc.lslot;
    Buffer_pool.unpin t.pool ~cls ~page:loc.lpage ~dirty:true;
    Hashtbl.remove t.locs oid

let read_record t oid =
  match Hashtbl.find_opt t.locs oid with
  | None -> (
    (* not in the heap: serve the columnar copy unless tombstoned *)
    let cls = Oid.cls oid in
    match Hashtbl.find_opt t.cols cls with
    | Some cs when not (Hashtbl.mem (dead_tbl t cls) (Oid.id oid)) ->
      Colseg.fetch cs (Oid.id oid)
    | _ -> None)
  | Some loc ->
    let cls = Oid.cls oid in
    let data = Buffer_pool.pin t.pool ~cls ~page:loc.lpage in
    let r = Page.read data loc.lslot in
    Buffer_pool.unpin t.pool ~cls ~page:loc.lpage ~dirty:false;
    (match r with
    | None -> None
    | Some s -> Some (snd (decode_record ~cls s)))

(* idempotent redo application: an insert of a live OID replaces its
   record, an update of a dead OID creates it, deletes of absent OIDs
   are no-ops — any committed suffix may already be on the pages *)
let apply_op t (op : Wal.op) =
  match op with
  | Wal.Insert { oid; props } ->
    delete_record t oid;
    insert_record t oid props
  | Wal.Update { oid; prop; value } ->
    let props = Option.value ~default:[] (read_record t oid) in
    let props = (prop, value) :: List.remove_assoc prop props in
    delete_record t oid;
    insert_record t oid props
  | Wal.Delete { oid } -> delete_record t oid

let apply t ops =
  locked t (fun () ->
      Wal.commit t.wal ops;
      List.iter (apply_op t) ops)

(* ------------------------------------------------------------------ *)
(* group commit                                                        *)
(* ------------------------------------------------------------------ *)

(* The queue is created on first use; its flush takes the store mutex
   once per {e group}, writes every batch with a single WAL append +
   fsync, then applies them to the pooled pages in commit order. *)
let group t =
  locked t (fun () ->
      match t.group with
      | Some g -> g
      | None ->
        let g =
          Group_commit.create
            ~flush:(fun batches ->
              locked t (fun () ->
                  Wal.commit_many t.wal batches;
                  List.iter (fun ops -> List.iter (apply_op t) ops) batches))
            ()
        in
        t.group <- Some g;
        g)

let enqueue_group t ops = Group_commit.enqueue (group t) ops
let wait_group t ticket = Group_commit.wait (group t) ticket
let apply_group t ops = Group_commit.submit (group t) ops
let set_group_window t w = Group_commit.set_window (group t) w

(* ------------------------------------------------------------------ *)
(* open + recovery                                                     *)
(* ------------------------------------------------------------------ *)

(* Directory rebuild reads raw pages with a scratch buffer (physical
   reconstruction, not query traffic: the pool and its counters stay
   cold for the workload that follows). *)
let rebuild_directory t =
  let scratch = Bytes.create Page.size in
  Hashtbl.iter
    (fun cls seg ->
      for page = 1 to Segment.data_pages seg do
        Segment.read_page seg page scratch;
        if not (Page.is_blank scratch) then
          Page.iter scratch (fun slot record ->
              match decode_id record with
              | id ->
                let oid = Oid.make ~cls ~id in
                (* a relocated record can appear twice only if a crash hit
                   between page writes; the higher page wins deterministically *)
                (match Hashtbl.find_opt t.locs oid with
                | Some loc when loc.lpage > page -> ()
                | _ ->
                  Hashtbl.replace t.locs oid { lpage = page; lslot = slot });
                t.next_id <- max t.next_id (id + 1)
              | exception Codec.Corrupt msg ->
                format_error "%s/%s.heap page %d slot %d: %s" t.dir cls page
                  slot msg)
      done)
    t.segments

let open_dir ?(pool_pages = 256) ?counters dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    format_error "%s: not a soqm database directory" dir;
  let schema, meta_next_id, columnar = read_meta dir in
  let lockfd = acquire_lock dir in
  let counters = Option.value ~default:(Counters.create ()) counters in
  let wal, batches =
    try Wal.open_log ~counters (wal_file dir)
    with e ->
      Unix.close lockfd;
      raise e
  in
  let t = make ~dir ~schema ~pool_pages ~counters ~wal ~lockfd in
  (* columnar segments load (and verify) before recovery: WAL redo may
     tombstone or shadow their rows *)
  List.iter
    (fun cls ->
      if not (List.mem cls (Schema.class_names schema)) then
        format_error "%s: columnar flag for unknown class %s" dir cls;
      Hashtbl.replace t.columnar cls ();
      (try Hashtbl.replace t.cols cls (Colseg.load ~counters ~dir ~cls)
       with Colseg.Format_error msg -> format_error "%s" msg);
      try Hashtbl.replace t.dead cls (Colseg.load_dead ~dir ~cls)
      with Colseg.Format_error msg -> format_error "%s" msg)
    columnar;
  rebuild_directory t;
  Hashtbl.iter
    (fun _ cs ->
      Colseg.iter_ids cs (fun id -> t.next_id <- max t.next_id (id + 1)))
    t.cols;
  t.next_id <- max t.next_id meta_next_id;
  (* fill pointers resume at each segment's last page *)
  Hashtbl.iter (fun cls pages -> if pages > 0 then Hashtbl.replace t.fill cls pages) t.alloc;
  List.iter
    (fun ops ->
      List.iter (apply_op t) ops;
      t.recovered <- t.recovered + 1)
    batches;
  t

let columnar_list t =
  Hashtbl.fold (fun cls () acc -> cls :: acc) t.columnar []

(* WAL truncation makes replay unavailable, so everything the WAL was
   covering must be durable first: dirty heap pages, and the columnar
   tombstones accumulated since the last checkpoint. *)
let checkpoint_locked t =
  Buffer_pool.flush t.pool;
  Hashtbl.iter (fun _ seg -> Segment.sync seg) t.segments;
  Hashtbl.iter
    (fun cls () -> Colseg.write_dead ~dir:t.dir ~cls (dead_tbl t cls))
    t.columnar;
  write_meta ~dir:t.dir ~schema:t.schema ~next_id:t.next_id
    ~columnar:(columnar_list t);
  Wal.truncate t.wal

let checkpoint t = locked t (fun () -> checkpoint_locked t)

let close ?(checkpoint = true) t =
  if checkpoint then locked t (fun () -> checkpoint_locked t);
  Hashtbl.iter (fun _ seg -> Segment.close seg) t.segments;
  Wal.close t.wal;
  Unix.close t.lockfd

(* ------------------------------------------------------------------ *)
(* reads and scans                                                     *)
(* ------------------------------------------------------------------ *)

let fetch t oid =
  locked t (fun () ->
      match read_record t oid with Some props -> props | None -> raise Not_found)

let mem t oid =
  locked t (fun () ->
      Hashtbl.mem t.locs oid
      ||
      let cls = Oid.cls oid in
      match Hashtbl.find_opt t.cols cls with
      | Some cs -> Colseg.mem cs (Oid.id oid) && col_live t cls (Oid.id oid)
      | None -> false)

let extent t cls =
  locked t (fun () ->
      let heap =
        Hashtbl.fold
          (fun oid _ acc ->
            if String.equal (Oid.cls oid) cls then oid :: acc else acc)
          t.locs []
      in
      let rows =
        match Hashtbl.find_opt t.cols cls with
        | None -> heap
        | Some cs ->
          let acc = ref heap in
          Colseg.iter_ids cs (fun id ->
              if col_live t cls id then acc := Oid.make ~cls ~id :: !acc);
          !acc
      in
      List.sort (fun a b -> Int.compare (Oid.id a) (Oid.id b)) rows)

(* One in-order pass over a class's pages through the pool.  [f] runs on
   the caller; with [prefetch] a helper domain pins pages ahead of the
   consumer inside a fixed window, so segment reads overlap decoding. *)
let prefetch_window = 8

let page_pass ?(prefetch = false) t cls ~f =
  let n = allocated t cls in
  if n = 0 then 0
  else begin
    let consume () =
      for page = 1 to n do
        let data = Buffer_pool.pin t.pool ~cls ~page in
        f page data;
        Buffer_pool.unpin t.pool ~cls ~page ~dirty:false
      done
    in
    if (not prefetch) || n <= 2 then consume ()
    else begin
      let next = Atomic.make 1 in
      let stop = Atomic.make false in
      Pool.run (Pool.global ()) ~jobs:2 (fun w ->
          if w = 0 then
            Fun.protect
              ~finally:(fun () -> Atomic.set stop true)
              (fun () ->
                for page = 1 to n do
                  let data = Buffer_pool.pin t.pool ~cls ~page in
                  f page data;
                  Buffer_pool.unpin t.pool ~cls ~page ~dirty:false;
                  Atomic.set next (page + 1)
                done)
          else
            (* read ahead of the consumer, never past the window *)
            let rec go page =
              if page <= n && not (Atomic.get stop) then
                if page < Atomic.get next + prefetch_window then begin
                  (try
                     ignore (Buffer_pool.pin t.pool ~cls ~page);
                     Buffer_pool.unpin t.pool ~cls ~page ~dirty:false
                   with Failure _ -> ());
                  go (page + 1)
                end
                else begin
                  Domain.cpu_relax ();
                  go page
                end
            in
            go 1)
    end;
    n
  end

let scan ?prefetch t cls =
  let rows = ref [] in
  let pages =
    page_pass ?prefetch t cls ~f:(fun page data ->
        Page.iter data (fun slot record ->
            match decode_record ~cls record with
            | oid, props -> (
              (* a crash between page writes can leave a stale copy of a
                 relocated record; only the slot the directory points at
                 is the live one *)
              match Hashtbl.find_opt t.locs oid with
              | Some loc when loc.lpage = page && loc.lslot = slot ->
                Counters.charge_bytes_read t.counters (String.length record);
                Counters.charge_values_decoded t.counters
                  (1 + List.length props);
                rows := (oid, props) :: !rows
              | _ -> ())
            | exception Codec.Corrupt msg ->
              format_error "%s/%s.heap page %d slot %d: %s" t.dir cls page slot
                msg))
  in
  (* merge in the columnar base image (heap shadows and tombstones win) *)
  let pages =
    match Hashtbl.find_opt t.cols cls with
    | None -> pages
    | Some cs ->
      Colseg.iter_rows cs (fun id props ->
          if col_live t cls id then
            rows := (Oid.make ~cls ~id, props) :: !rows);
      pages + ((Colseg.total_bytes cs + Page.size - 1) / Page.size)
  in
  (* page order is insertion order except for relocated (updated) rows;
     sorting by serial restores allocation order exactly *)
  let rows =
    List.sort (fun (a, _) (b, _) -> Int.compare (Oid.id a) (Oid.id b)) !rows
  in
  (rows, pages)

let scan_all ?prefetch t =
  let rows, pages =
    List.fold_left
      (fun (rows, pages) cls ->
        let r, p = scan ?prefetch t cls in
        (r :: rows, pages + p))
      ([], 0)
      (Schema.class_names t.schema)
  in
  let rows =
    List.concat rows
    |> List.sort (fun (a, _) (b, _) -> Int.compare (Oid.id a) (Oid.id b))
  in
  (rows, pages)

let touch_scan ?prefetch t cls = page_pass ?prefetch t cls ~f:(fun _ _ -> ())

(* Per-query scan traffic model: pages driven through the pool plus the
   bytes a scan of this class must decode — whole pages for the
   row-slotted heap, chunk meta (header + oid column + directory) for the
   columnar base image.  Charged to [bytes_read] so mixed workloads
   accumulate a per-format byte picture; [values_decoded] is left to the
   paths that actually decode. *)
let scan_cost ?prefetch t cls =
  let pages = page_pass ?prefetch t cls ~f:(fun _ _ -> ()) in
  let bytes = pages * Page.size in
  let bytes =
    match Hashtbl.find_opt t.cols cls with
    | None -> bytes
    | Some cs -> bytes + Colseg.meta_bytes cs
  in
  if bytes > 0 then Counters.charge_bytes_read t.counters bytes;
  (pages, bytes)

(* Selective scan: per live row, the values of exactly [props] (argument
   order, [None] = absent).  Columnar classes decode only those columns;
   heap rows must decode whole records — the asymmetry the columnar
   bench gate measures. *)
let scan_columns t cls props =
  let by_id (a, _) (b, _) = Int.compare (Oid.id a) (Oid.id b) in
  let heap = ref [] in
  ignore
    (page_pass t cls ~f:(fun page data ->
         Page.iter data (fun slot record ->
             match decode_record ~cls record with
             | oid, rprops -> (
               match Hashtbl.find_opt t.locs oid with
               | Some loc when loc.lpage = page && loc.lslot = slot ->
                 Counters.charge_bytes_read t.counters (String.length record);
                 Counters.charge_values_decoded t.counters
                   (1 + List.length rprops);
                 heap :=
                   (oid, List.map (fun p -> List.assoc_opt p rprops) props)
                   :: !heap
               | _ -> ())
             | exception Codec.Corrupt msg ->
               format_error "%s/%s.heap page %d slot %d: %s" t.dir cls page
                 slot msg)));
  let heap = List.sort by_id !heap in
  match Hashtbl.find_opt t.cols cls with
  | None -> heap
  | Some cs ->
    (* chunks and the ids within them are ascending, so collecting in
       reverse and reversing once restores allocation order without the
       O(n log n) sort of the heap path; the liveness probes hoist their
       common case — no tombstones, an empty (freshly vacuumed) heap
       that cannot shadow anything — out of the per-row loop, skipping
       the per-row [Oid] allocation and directory hash *)
    let dead = dead_tbl t cls in
    let no_dead = Hashtbl.length dead = 0 in
    let no_heap = allocated t cls = 0 in
    let acc = ref [] in
    Colseg.iter_columns cs props (fun id vals ->
        if
          (no_dead || not (Hashtbl.mem dead id))
          && (no_heap || not (Hashtbl.mem t.locs (Oid.make ~cls ~id)))
        then acc := (Oid.make ~cls ~id, vals) :: !acc);
    let cols_rows = List.rev !acc in
    if heap == [] then cols_rows else List.merge by_id heap cols_rows

(* ------------------------------------------------------------------ *)
(* vacuum: row segments -> columnar                                    *)
(* ------------------------------------------------------------------ *)

(* Rewrite one class columnar: snapshot its live rows, write them as a
   fresh [<cls>.col] (atomic rename), flag the class in [meta], then
   empty the heap segment.  Crash-safe at every boundary: before the
   meta write the flag is absent and the stale [.col] is ignored; after
   it the heap still holds shadow copies with identical content until
   the truncate, and the final checkpoint makes the whole move durable.
   Post-vacuum DML lands in the (now empty) heap and shadows the
   columnar image until the next vacuum folds it in. *)
let vacuum t cls =
  if not (List.mem cls (Schema.class_names t.schema)) then
    format_error "%s: cannot vacuum unknown class %s" t.dir cls;
  let rows, _ = scan t cls in
  let rows =
    Array.of_list (List.map (fun (oid, props) -> (Oid.id oid, props)) rows)
  in
  locked t (fun () ->
      Colseg.write ~dir:t.dir ~cls rows;
      Hashtbl.replace t.columnar cls ();
      (try Hashtbl.replace t.cols cls (Colseg.load ~counters:t.counters ~dir:t.dir ~cls)
       with Colseg.Format_error msg -> format_error "%s" msg);
      Hashtbl.replace t.dead cls (Hashtbl.create 16);
      Colseg.write_dead ~dir:t.dir ~cls (dead_tbl t cls);
      write_meta ~dir:t.dir ~schema:t.schema ~next_id:t.next_id
        ~columnar:(columnar_list t);
      (* the columnar image is durable and flagged: empty the heap *)
      Buffer_pool.drop_class t.pool ~cls;
      (match Hashtbl.find_opt t.segments cls with
      | Some seg -> Segment.reset seg
      | None -> ());
      Hashtbl.replace t.alloc cls 0;
      Hashtbl.remove t.fill cls;
      let stale =
        Hashtbl.fold
          (fun oid _ acc ->
            if String.equal (Oid.cls oid) cls then oid :: acc else acc)
          t.locs []
      in
      List.iter (Hashtbl.remove t.locs) stale;
      checkpoint_locked t);
  Array.length rows

let bulk_load t ~next_id objects =
  locked t (fun () ->
      List.iter (fun (oid, props) -> insert_record t oid props) objects;
      t.next_id <- max t.next_id next_id);
  checkpoint t

(* ------------------------------------------------------------------ *)
(* introspection                                                       *)
(* ------------------------------------------------------------------ *)

let schema t = t.schema
let counters t = t.counters
let next_id t = t.next_id
let data_pages t cls = allocated t cls
let total_data_pages t = Hashtbl.fold (fun _ n acc -> acc + n) t.alloc 0
let is_columnar t cls = Hashtbl.mem t.columnar cls
let columnar_classes t = List.sort String.compare (columnar_list t)

let columnar_bytes t cls =
  match Hashtbl.find_opt t.cols cls with
  | Some cs -> Colseg.total_bytes cs
  | None -> 0

let columnar_rows t cls =
  match Hashtbl.find_opt t.cols cls with
  | Some cs -> Colseg.row_count cs
  | None -> 0

let columnar_tombstones t cls =
  match Hashtbl.find_opt t.dead cls with
  | Some d -> Hashtbl.length d
  | None -> 0
let wal_bytes t = Wal.size t.wal
let pool_pages t = Buffer_pool.capacity t.pool
let recovered_batches t = t.recovered
